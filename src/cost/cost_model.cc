#include "cost/cost_model.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <utility>

namespace snakes {

namespace {

/// Full-precision double text (17 significant digits survive a parse
/// round-trip, which the coefficients JSON depends on).
std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// ---- Minimal strict JSON scanner (objects of numbers / nested objects) ----
//
// Just enough to read the coefficients file the calibration tool writes:
// one object whose values are numbers, strings, or one level of nested
// object. No dependencies, no recursion past what the format needs, and
// every malformed input becomes an error Status instead of UB.

class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  Status ParseObject(
      const std::function<Status(std::string_view key)>& on_key) {
    SNAKES_RETURN_IF_ERROR(Expect('{'));
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      std::string key;
      SNAKES_RETURN_IF_ERROR(ParseString(&key));
      SNAKES_RETURN_IF_ERROR(Expect(':'));
      SNAKES_RETURN_IF_ERROR(on_key(key));
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        SkipSpace();
        continue;
      }
      return Expect('}');
    }
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("cost model JSON: expected a number at " +
                                     std::to_string(start));
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Status::InvalidArgument("cost model JSON: bad number '" + token +
                                     "'");
    }
    *out = value;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SNAKES_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        return Status::InvalidArgument(
            "cost model JSON: escapes are not supported");
      }
      out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("cost model JSON: unterminated string");
    }
    ++pos_;  // closing quote
    return Status::OK();
  }

  /// Skips one value of any supported shape (string / number / object).
  Status SkipValue() {
    SkipSpace();
    if (Peek() == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (Peek() == '{') {
      return ParseObject([this](std::string_view) { return SkipValue(); });
    }
    double ignored = 0.0;
    return ParseNumber(&ignored);
  }

  Status AtEnd() {
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          "cost model JSON: trailing characters after the object");
    }
    return Status::OK();
  }

 private:
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  Status Expect(char c) {
    if (Peek() != c) {
      return Status::InvalidArgument(std::string("cost model JSON: expected '") +
                                     c + "' at position " +
                                     std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const std::vector<CostFeatureField>& CostFeatureFields() {
  static const std::vector<CostFeatureField> fields = {
      {"seeks", &CostFeatures::seeks},
      {"pages", &CostFeatures::pages},
      {"runs", &CostFeatures::runs},
      {"records", &CostFeatures::records},
      {"partitions_scanned", &CostFeatures::partitions_scanned},
      {"partitions_pruned", &CostFeatures::partitions_pruned},
  };
  return fields;
}

CostFeatures CostFeatures::FromQueryIo(const QueryIo& io) {
  CostFeatures f;
  f.seeks = static_cast<double>(io.seeks);
  f.pages = static_cast<double>(io.pages);
  f.records = static_cast<double>(io.records);
  return f;
}

CostFeatures CostFeatures::FromWorkloadIo(const WorkloadIoStats& io) {
  CostFeatures f;
  f.seeks = io.expected_seeks;
  f.pages = io.expected_pages;
  return f;
}

const char* CostModelKindName(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kAnalytic:
      return "analytic";
    case CostModelKind::kHdd:
      return "hdd";
    case CostModelKind::kSsd:
      return "ssd";
    case CostModelKind::kCalibrated:
      return "calibrated";
  }
  return "unknown";
}

Result<CostModelKind> ParseCostModelKind(std::string_view name) {
  if (name == "analytic") return CostModelKind::kAnalytic;
  if (name == "hdd") return CostModelKind::kHdd;
  if (name == "ssd") return CostModelKind::kSsd;
  if (name == "calibrated") return CostModelKind::kCalibrated;
  return Status::InvalidArgument(
      "unknown cost model '" + std::string(name) +
      "' (known: analytic, hdd, ssd, calibrated)");
}

std::string AnalyticDiskModel::ToJson() const {
  std::string out = "{\"model\": \"";
  out += CostModelKindName(kind_);
  out += "\", \"seek_ms\": " + JsonNumber(disk_.seek_ms) +
         ", \"transfer_bytes_per_ms\": " +
         JsonNumber(disk_.transfer_bytes_per_ms) + "}";
  return out;
}

double CalibratedLinearModel::EstimateMs(const CostFeatures& features,
                                         uint64_t page_size_bytes) const {
  (void)page_size_bytes;  // absorbed into the pages coefficient at fit time
  double ms = intercept_ms_;
  for (const CostFeatureField& nf : CostFeatureFields()) {
    ms += coef_.*(nf.member) * (features.*(nf.member));
  }
  return ms;
}

std::string CalibratedLinearModel::ToJson() const {
  std::string out = "{\"model\": \"calibrated\", \"intercept_ms\": " +
                    JsonNumber(intercept_ms_) + ", \"coefficients\": {";
  bool first = true;
  for (const CostFeatureField& nf : CostFeatureFields()) {
    if (!first) out += ", ";
    first = false;
    out += std::string("\"") + nf.name +
           "\": " + JsonNumber(coef_.*(nf.member));
  }
  out += "}}";
  return out;
}

Result<CalibratedLinearModel> CalibratedLinearModel::FromJson(
    std::string_view json) {
  double intercept = 0.0;
  bool saw_intercept = false;
  bool saw_coefficients = false;
  CostFeatures coef;
  JsonScanner scanner(json);
  const Status parsed =
      scanner.ParseObject([&](std::string_view key) -> Status {
        if (key == "intercept_ms") {
          saw_intercept = true;
          return scanner.ParseNumber(&intercept);
        }
        if (key == "coefficients") {
          saw_coefficients = true;
          return scanner.ParseObject([&](std::string_view feature) -> Status {
            for (const CostFeatureField& nf : CostFeatureFields()) {
              if (feature == nf.name) {
                return scanner.ParseNumber(&(coef.*(nf.member)));
              }
            }
            return Status::InvalidArgument("cost model JSON: unknown feature '" +
                                           std::string(feature) + "'");
          });
        }
        // Fit metadata (r_squared, samples, model, ...) rides along.
        return scanner.SkipValue();
      });
  SNAKES_RETURN_IF_ERROR(parsed);
  SNAKES_RETURN_IF_ERROR(scanner.AtEnd());
  if (!saw_intercept || !saw_coefficients) {
    return Status::InvalidArgument(
        "cost model JSON: needs intercept_ms and coefficients");
  }
  return CalibratedLinearModel(intercept, coef);
}

Result<std::shared_ptr<const CostModel>> MakeCostModel(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kAnalytic:
      return std::shared_ptr<const CostModel>(
          std::make_shared<AnalyticDiskModel>(CostModelKind::kAnalytic,
                                              "analytic", DiskModel{}));
    case CostModelKind::kHdd:
      // A current 7200rpm drive: ~8 ms average positioning, ~160 MB/s
      // sustained sequential transfer.
      return std::shared_ptr<const CostModel>(
          std::make_shared<AnalyticDiskModel>(
              CostModelKind::kHdd, "hdd", DiskModel{8.0, 160'000.0}));
    case CostModelKind::kSsd:
      // NVMe flash: positioning nearly free, ~2 GB/s transfer.
      return std::shared_ptr<const CostModel>(
          std::make_shared<AnalyticDiskModel>(
              CostModelKind::kSsd, "ssd", DiskModel{0.05, 2'000'000.0}));
    case CostModelKind::kCalibrated:
      return Status::InvalidArgument(
          "calibrated cost model needs fitted coefficients (use "
          "CostModelSpec with calibrated_json or "
          "CalibratedLinearModel::FromJson)");
  }
  return Status::InvalidArgument("unknown cost model kind");
}

Result<std::shared_ptr<const CostModel>> MakeCostModel(
    const CostModelSpec& spec) {
  if (spec.kind != CostModelKind::kCalibrated) return MakeCostModel(spec.kind);
  if (spec.calibrated_json.empty()) {
    return Status::InvalidArgument(
        "calibrated cost model needs coefficients JSON (or a path to it)");
  }
  std::string json = spec.calibrated_json;
  if (json.front() != '{') {
    std::ifstream in(json);
    if (!in) {
      return Status::NotFound("cannot read cost model coefficients from '" +
                              json + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    json = buffer.str();
  }
  SNAKES_ASSIGN_OR_RETURN(CalibratedLinearModel model,
                          CalibratedLinearModel::FromJson(json));
  return std::shared_ptr<const CostModel>(
      std::make_shared<CalibratedLinearModel>(std::move(model)));
}

const std::shared_ptr<const CostModel>& DefaultCostModel() {
  static const std::shared_ptr<const CostModel> model =
      MakeCostModel(CostModelKind::kAnalytic).value();
  return model;
}

}  // namespace snakes
