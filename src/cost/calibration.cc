#include "cost/calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "lattice/lattice.h"
#include "storage/executor.h"
#include "storage/file_store.h"
#include "storage/pager.h"
#include "util/rng.h"

namespace snakes {

namespace {

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Median of a (destructively sorted) non-empty vector.
double Median(std::vector<double>* values) {
  std::sort(values->begin(), values->end());
  const size_t n = values->size();
  return n % 2 == 1 ? (*values)[n / 2]
                    : 0.5 * ((*values)[n / 2 - 1] + (*values)[n / 2]);
}

/// Resolves a fit-option feature name against the canonical table.
Result<const CostFeatureField*> FindFeature(const std::string& name) {
  for (const CostFeatureField& field : CostFeatureFields()) {
    if (name == field.name) return &field;
  }
  return Status::InvalidArgument("calibration: unknown fit feature '" + name +
                                 "'");
}

}  // namespace

Result<std::vector<double>> SolveLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y) {
  if (rows.size() != y.size()) {
    return Status::InvalidArgument(
        "least squares: design matrix and targets disagree on sample count");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("least squares: no samples");
  }
  const size_t k = rows.front().size();
  if (k == 0) return Status::InvalidArgument("least squares: no features");
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != k) {
      return Status::InvalidArgument(
          "least squares: ragged design matrix row " + std::to_string(i));
    }
    if (!std::isfinite(y[i])) {
      return Status::InvalidArgument("least squares: non-finite target at row " +
                                     std::to_string(i));
    }
    for (const double v : rows[i]) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "least squares: non-finite feature at row " + std::to_string(i));
      }
    }
  }

  // Normal equations: A = X^T X (k x k, symmetric), b = X^T y.
  std::vector<std::vector<double>> a(k, std::vector<double>(k, 0.0));
  std::vector<double> b(k, 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t p = 0; p < k; ++p) {
      b[p] += rows[i][p] * y[i];
      for (size_t q = p; q < k; ++q) a[p][q] += rows[i][p] * rows[i][q];
    }
  }
  for (size_t p = 0; p < k; ++p) {
    for (size_t q = 0; q < p; ++q) a[p][q] = a[q][p];
  }

  // Relative pivot floor: scale-aware, so a matrix of tiny-but-consistent
  // magnitudes is not misread as singular.
  double scale = 0.0;
  for (size_t p = 0; p < k; ++p) scale = std::max(scale, std::fabs(a[p][p]));
  const double pivot_floor = std::max(scale, 1.0) * 1e-12;

  // Gaussian elimination with partial pivoting on [A | b].
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < k; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < pivot_floor) {
      return Status::InvalidArgument(
          "least squares: singular design matrix (feature " +
          std::to_string(col) +
          " is linearly dependent or never varies; drop it or add samples)");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t row = col + 1; row < k; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t q = col; q < k; ++q) a[row][q] -= factor * a[col][q];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> solution(k, 0.0);
  for (size_t col = k; col-- > 0;) {
    double acc = b[col];
    for (size_t q = col + 1; q < k; ++q) acc -= a[col][q] * solution[q];
    solution[col] = acc / a[col][col];
    if (!std::isfinite(solution[col])) {
      return Status::InvalidArgument(
          "least squares: non-finite solution (ill-conditioned system)");
    }
  }
  return solution;
}

Result<std::vector<CalibrationSample>> CollectCalibrationSamples(
    std::shared_ptr<const FactTable> facts,
    const std::vector<std::shared_ptr<const Linearization>>& strategies,
    const CalibrationSweepConfig& config, Clock* clock) {
  if (facts == nullptr) {
    return Status::InvalidArgument("calibration: fact table must be non-null");
  }
  if (strategies.empty()) {
    return Status::InvalidArgument("calibration: no strategies to sweep");
  }
  if (config.backends.empty()) {
    return Status::InvalidArgument("calibration: no backends to sweep");
  }
  if (config.queries_per_class <= 0 || config.repetitions <= 0) {
    return Status::InvalidArgument(
        "calibration: queries_per_class and repetitions must be >= 1");
  }
  const StarSchema& schema = facts->schema();
  const QueryClassLattice lattice(schema);
  Rng rng(config.seed);

  std::vector<CalibrationSample> samples;
  for (const std::shared_ptr<const Linearization>& lin : strategies) {
    if (lin == nullptr) {
      return Status::InvalidArgument("calibration: null strategy");
    }
    // One real file per strategy; every backend kind shares its page order.
    SNAKES_ASSIGN_OR_RETURN(
        PackedLayout packed,
        PackedLayout::Pack(lin, facts, config.storage));
    auto layout = std::make_shared<const PackedLayout>(std::move(packed));
    SNAKES_ASSIGN_OR_RETURN(FileStore store,
                            FileStore::Create(config.scratch_path, layout));
    for (const StorageBackendKind kind : config.backends) {
      SNAKES_ASSIGN_OR_RETURN(
          std::shared_ptr<const StorageBackend> backend,
          MakeStorageBackend(kind, lin, facts, config.storage));
      const IoSimulator simulator(*backend);
      for (uint64_t idx = 0; idx < lattice.size(); ++idx) {
        const QueryClass cls = lattice.ClassAt(idx);
        for (int q = 0; q < config.queries_per_class; ++q) {
          const GridQuery query = SampleQuery(schema, cls, &rng);
          CalibrationSample sample;
          sample.query_class = cls.ToString();
          sample.strategy = lin->name();
          sample.backend = StorageBackendKindName(kind);
          PruneStats prune;
          const QueryIo io = simulator.Measure(query, &prune);
          sample.features = CostFeatures::FromQueryIo(io);
          sample.features.partitions_scanned =
              static_cast<double>(prune.scanned);
          sample.features.partitions_pruned =
              static_cast<double>(prune.pruned);
          {
            std::vector<RankRun> runs;
            lin->AppendRuns(BoxOf(schema, query), &runs);
            sample.features.runs = static_cast<double>(runs.size());
          }
          uint64_t best_ns = UINT64_MAX;
          for (int rep = 0; rep < config.repetitions; ++rep) {
            SNAKES_ASSIGN_OR_RETURN(FileStore::TimedAnswer timed,
                                    store.ExecuteTimed(query, clock));
            if (timed.answer.io.pages != io.pages ||
                timed.answer.io.seeks != io.seeks) {
              return Status::Internal(
                  "calibration: file_store I/O diverged from the simulator "
                  "for " + query.ToString());
            }
            best_ns = std::min(best_ns, timed.elapsed_ns);
          }
          sample.measured_ns = static_cast<double>(best_ns);
          samples.push_back(std::move(sample));
        }
      }
    }
  }
  return samples;
}

Result<CalibrationFit> FitCalibration(
    const std::vector<CalibrationSample>& samples,
    const CalibrationFitOptions& options) {
  if (samples.empty()) {
    return Status::InvalidArgument("calibration: no samples to fit");
  }
  std::vector<const CostFeatureField*> fields;
  fields.reserve(options.features.size());
  for (const std::string& name : options.features) {
    SNAKES_ASSIGN_OR_RETURN(const CostFeatureField* field, FindFeature(name));
    fields.push_back(field);
  }

  // Design matrix: intercept column + the selected features; targets in ms.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(samples.size());
  y.reserve(samples.size());
  for (const CalibrationSample& sample : samples) {
    std::vector<double> row;
    row.reserve(fields.size() + 1);
    row.push_back(1.0);
    for (const CostFeatureField* field : fields) {
      row.push_back(sample.features.*(field->member));
    }
    rows.push_back(std::move(row));
    y.push_back(sample.measured_ns * 1e-6);
  }
  SNAKES_ASSIGN_OR_RETURN(std::vector<double> solution,
                          SolveLeastSquares(rows, y));

  CalibrationFit fit;
  fit.intercept_ms = solution[0];
  for (size_t i = 0; i < fields.size(); ++i) {
    fit.coefficients_ms.*(fields[i]->member) = solution[i + 1];
  }
  fit.num_samples = samples.size();

  // Goodness of fit: R^2 over all samples, relative error over the ones
  // with non-zero measured time (relative error of a zero is undefined).
  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  std::vector<double> rel_errors;
  std::map<std::string, std::vector<double>> per_class;
  const CalibratedLinearModel model = fit.ToModel();
  for (size_t i = 0; i < samples.size(); ++i) {
    const double predicted = model.EstimateMs(samples[i].features, 0);
    const double residual = predicted - y[i];
    ss_res += residual * residual;
    ss_tot += (y[i] - mean) * (y[i] - mean);
    if (y[i] > 0.0) {
      const double rel = std::fabs(residual) / y[i];
      rel_errors.push_back(rel);
      per_class[samples[i].query_class].push_back(rel);
    }
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  if (!rel_errors.empty()) fit.median_relative_error = Median(&rel_errors);
  for (auto& [cls, errors] : per_class) {
    fit.per_class_relative_error.emplace_back(cls, Median(&errors));
  }
  return fit;
}

CalibratedLinearModel CalibrationFit::ToModel() const {
  return CalibratedLinearModel(intercept_ms, coefficients_ms);
}

std::string CalibrationFit::ToJson() const {
  // The model's own JSON plus the fit report, one object — FromJson skips
  // the extra keys.
  std::string model_json = ToModel().ToJson();
  model_json.pop_back();  // strip the closing '}'
  std::string out = std::move(model_json);
  out += ", \"r_squared\": " + JsonNumber(r_squared);
  out += ", \"median_relative_error\": " + JsonNumber(median_relative_error);
  out += ", \"samples\": " + std::to_string(num_samples);
  out += ", \"per_class_relative_error\": {";
  bool first = true;
  for (const auto& [cls, error] : per_class_relative_error) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + cls + "\": " + JsonNumber(error);
  }
  out += "}}";
  return out;
}

std::string CalibrationSamplesToJson(
    const std::vector<CalibrationSample>& samples,
    const StorageConfig& config) {
  std::string out = "{\n  \"page_size_bytes\": " +
                    std::to_string(config.page_size_bytes) +
                    ",\n  \"record_size_bytes\": " +
                    std::to_string(config.record_size_bytes) +
                    ",\n  \"samples\": [\n";
  for (size_t i = 0; i < samples.size(); ++i) {
    const CalibrationSample& s = samples[i];
    out += "    {\"class\": \"" + s.query_class + "\", \"strategy\": \"" +
           s.strategy + "\", \"backend\": \"" + s.backend + "\"";
    for (const CostFeatureField& field : CostFeatureFields()) {
      out += std::string(", \"") + field.name +
             "\": " + JsonNumber(s.features.*(field.member));
    }
    out += ", \"measured_ns\": " + JsonNumber(s.measured_ns) + "}";
    if (i + 1 < samples.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace snakes
