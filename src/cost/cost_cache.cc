#include "cost/cost_cache.h"

#include "cost/edge_model.h"
#include "curves/rank_run.h"
#include "lattice/grid_query.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fraction.h"
#include "util/logging.h"

namespace snakes {

ClassCostCache::StrategyCosts* ClassCostCache::Strategy(
    const std::string& name, uint64_t num_classes) {
  std::lock_guard<std::mutex> lock(mu_);
  StrategyCosts& entry = strategies_[name];
  if (entry.known.empty()) {
    entry.fragments.assign(num_classes, 0);
    entry.queries.assign(num_classes, 1);
    entry.known.assign(num_classes, 0);
  }
  SNAKES_CHECK(entry.known.size() == num_classes)
      << "strategy '" << name << "' cached over a different lattice ("
      << entry.known.size() << " classes, now " << num_classes << ")";
  return &entry;
}

uint64_t ClassCostCache::NumStrategies() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strategies_.size();
}

void ClassCostCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  strategies_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

double MeasureExpectedCostCached(const Workload& mu, const Linearization& lin,
                                 ClassCostCache* cache, const ObsSink& obs,
                                 CostEvalMode mode, RunArena* arena) {
  SNAKES_CHECK(cache != nullptr)
      << "MeasureExpectedCostCached requires a cache";
  ScopedSpan span(obs.tracer, "cost/measure_cached", "cost");
  span.AddArg("strategy", lin.name());
  const QueryClassLattice& lat = mu.lattice();
  const StarSchema& schema = lin.schema();
  ClassCostCache::StrategyCosts* entry =
      cache->Strategy(lin.name(), lat.size());

  // Which non-zero classes still need their fragment counts measured?
  uint64_t hits = 0;
  std::vector<uint64_t> missing;
  for (uint64_t i = 0; i < lat.size(); ++i) {
    if (mu.probability_at(i) == 0.0) continue;
    if (entry->known[i]) {
      ++hits;
    } else {
      missing.push_back(i);
    }
  }

  if (!missing.empty()) {
    // Fill them the same way MeasureExpectedCost would: per-class run
    // counting when the strategy decomposes (identical integers to
    // RunCountClassCosts), otherwise one edge-walk histogram pass, which
    // costs every class at once — so fill the whole table. Both produce
    // the exact fragment/query integers, so later summations are
    // bit-identical no matter which path filled an entry.
    const bool per_class_runs =
        lin.HasRunDecomposition() && mode != CostEvalMode::kEdgeWalk;
    if (per_class_runs) {
      RunArena local;
      RunArena* fill_arena = arena != nullptr ? arena : &local;
      uint64_t total_runs = 0;
      for (const uint64_t i : missing) {
        const QueryClass cls = lat.ClassAt(i);
        const uint64_t num_queries = NumQueriesInClass(schema, cls);
        uint64_t class_fragments;
        if (lin.ClassRunsDegenerate(cls)) {
          // One cell per run over a grid-tiling class: the closed form.
          class_fragments = lin.num_cells();
        } else {
          lin.AppendClassRuns(cls, fill_arena);
          class_fragments = fill_arena->num_runs();
        }
        entry->fragments[i] = class_fragments;
        entry->queries[i] = num_queries;
        entry->known[i] = 1;
        total_runs += class_fragments;
      }
      if (obs.metrics != nullptr) {
        obs.metrics->GetCounter("curves.runs_emitted")->Inc(total_runs);
      }
    } else {
      const ClassCostTable table = MeasureClassCosts(lin);
      for (uint64_t j = 0; j < lat.size(); ++j) {
        if (entry->known[j]) continue;
        const QueryClass cls = lat.ClassAt(j);
        entry->fragments[j] = table.TotalFragments(cls);
        entry->queries[j] = table.NumQueries(cls);
        entry->known[j] = 1;
      }
      entry->full_table = true;
      if (obs.metrics != nullptr) {
        obs.metrics->GetCounter("cost.cells_scanned")->Inc(lin.num_cells());
      }
    }
  }
  cache->RecordHits(hits);
  cache->RecordMisses(missing.size());
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("cost.cache_hits")->Inc(hits);
    obs.metrics->GetCounter("cost.cache_misses")->Inc(missing.size());
  }
  span.AddArg("cache_hits", hits);
  span.AddArg("cache_misses", static_cast<uint64_t>(missing.size()));

  // The exact summation of ExpectedCost: index order, zero classes skipped,
  // the same Fraction-to-double conversion ClassCostTable::AvgDouble does.
  double total = 0.0;
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * Fraction(entry->fragments[i], entry->queries[i]).ToDouble();
  }
  return total;
}

}  // namespace snakes
