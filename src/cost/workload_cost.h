#ifndef SNAKES_COST_WORKLOAD_COST_H_
#define SNAKES_COST_WORKLOAD_COST_H_

#include "cost/class_cost.h"
#include "cost/edge_model.h"
#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/lattice_path.h"

namespace snakes {

/// cost_mu(S) (Section 4): the expected per-query seek cost of a strategy
/// whose per-class average costs are tabulated in `costs`, under workload mu.
double ExpectedCost(const Workload& mu, const ClassCostTable& costs);

/// Analytic cost_mu(P) for an unsnaked lattice path on the lattice cost
/// model: sum_u p_u * dist_P(u). This is the objective the Figure-4 DP
/// minimizes; exact for uniform hierarchies and defined for fractional
/// average fanouts.
double ExpectedPathCost(const Workload& mu, const LatticePath& path);

/// Analytic cost_mu of the snaked version of `path` on the lattice model.
double ExpectedSnakedPathCost(const Workload& mu, const LatticePath& path);

/// Expected cost of an arbitrary linearization under `mu`, measured exactly
/// with the edge model. O(cells * levels). `obs` (optional) wraps the
/// measurement in a "cost/measure" span and counts cost.cells_scanned.
double MeasureExpectedCost(const Workload& mu, const Linearization& lin,
                           const ObsSink& obs = {});

}  // namespace snakes

#endif  // SNAKES_COST_WORKLOAD_COST_H_
