#ifndef SNAKES_COST_WORKLOAD_COST_H_
#define SNAKES_COST_WORKLOAD_COST_H_

#include "cost/class_cost.h"
#include "cost/edge_model.h"
#include "curves/run_arena.h"
#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/lattice_path.h"

namespace snakes {

/// cost_mu(S) (Section 4): the expected per-query seek cost of a strategy
/// whose per-class average costs are tabulated in `costs`, under workload mu.
double ExpectedCost(const Workload& mu, const ClassCostTable& costs);

/// Analytic cost_mu(P) for an unsnaked lattice path on the lattice cost
/// model: sum_u p_u * dist_P(u). This is the objective the Figure-4 DP
/// minimizes; exact for uniform hierarchies and defined for fractional
/// average fanouts.
double ExpectedPathCost(const Workload& mu, const LatticePath& path);

/// Analytic cost_mu of the snaked version of `path` on the lattice model.
double ExpectedSnakedPathCost(const Workload& mu, const LatticePath& path);

/// How MeasureExpectedCost evaluates a strategy.
enum class CostEvalMode {
  /// Rank runs when the strategy decomposes and the workload's non-zero
  /// classes hold fewer queries than the grid holds cells; edge walk
  /// otherwise. The break-even is simple: the edge walk always costs
  /// O(cells * levels), the run path costs O(sum over queries of runs).
  kAuto,
  /// Always the seed's edge-histogram walk, O(cells * levels).
  kEdgeWalk,
  /// Always per-query rank-run counting (correct for any strategy; only
  /// fast for ones with HasRunDecomposition()).
  kRankRuns,
};

/// Expected cost of an arbitrary linearization under `mu`, measured exactly.
/// Both modes produce bit-identical results: a query's fragment count *is*
/// its rank-run count, and the run path feeds per-class totals through the
/// same ExpectedCost summation as the edge walk. `obs` (optional) wraps the
/// measurement in a "cost/measure" span and counts cost.cells_scanned (edge
/// walk) or curves.runs_emitted / curves.cells_per_run (run path; degenerate
/// classes short-circuit to their closed-form fragment count — num_cells()
/// — and contribute to runs_emitted but not to the per-run histogram).
/// `arena` (optional) is reused run storage for the run path — identical
/// results, fewer allocations; pass one per thread.
double MeasureExpectedCost(const Workload& mu, const Linearization& lin,
                           const ObsSink& obs = {},
                           CostEvalMode mode = CostEvalMode::kAuto,
                           RunArena* arena = nullptr);

}  // namespace snakes

#endif  // SNAKES_COST_WORKLOAD_COST_H_
