#include "cost/class_cost.h"

#include <vector>

#include "lattice/grid_query.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {

double DistToPath(const LatticePath& path, const QueryClass& cls) {
  const QueryClass anchor = path.MaxPointBelow(cls);
  return path.lattice().LenBetween(anchor, cls);
}

Result<ClassCostTable> AnalyticPathCosts(const StarSchema& schema,
                                         const LatticePath& path) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (!schema.dim(d).is_uniform()) {
      return Status::InvalidArgument(
          "AnalyticPathCosts requires uniform hierarchies");
    }
  }
  const QueryClassLattice lat(schema);
  std::vector<uint64_t> fragments(lat.size());
  std::vector<uint64_t> queries(lat.size());
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    const QueryClass anchor = path.MaxPointBelow(cls);
    // Integer form of LenBetween for uniform hierarchies.
    uint64_t dist = 1;
    for (int d = 0; d < schema.num_dims(); ++d) {
      for (int l = anchor.level(d) + 1; l <= cls.level(d); ++l) {
        dist = CheckedMul(dist, schema.dim(d).uniform_fanout(l));
      }
    }
    queries[i] = NumQueriesInClass(schema, cls);
    fragments[i] = CheckedMul(dist, queries[i]);
  }
  return ClassCostTable(lat, std::move(fragments), std::move(queries));
}

namespace {

struct Digit {
  int dim;
  int level;       // the loop enumerates level-1 children of level blocks
  uint64_t edges;  // number of curve edges contributed by this loop
};

// Loop digits of the snaked order for `path` over a uniform schema, with
// exact edge counts: digit t contributes (radix-1) * cells / (radix * place).
std::vector<Digit> SnakedDigits(const StarSchema& schema,
                                const LatticePath& path) {
  std::vector<Digit> digits;
  std::vector<int> level(static_cast<size_t>(schema.num_dims()), 0);
  uint64_t place = 1;
  const uint64_t cells = schema.num_cells();
  for (int d : path.steps()) {
    const int upper = ++level[static_cast<size_t>(d)];
    const uint64_t radix = schema.dim(d).uniform_fanout(upper);
    digits.push_back(
        {d, upper, (radix - 1) * (cells / (radix * place))});
    place = CheckedMul(place, radix);
  }
  return digits;
}

}  // namespace

Result<ClassCostTable> AnalyticSnakedPathCosts(const StarSchema& schema,
                                               const LatticePath& path) {
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (!schema.dim(d).is_uniform()) {
      return Status::InvalidArgument(
          "AnalyticSnakedPathCosts requires uniform hierarchies");
    }
  }
  const std::vector<Digit> digits = SnakedDigits(schema, path);
  const QueryClassLattice lat(schema);
  const uint64_t cells = schema.num_cells();
  std::vector<uint64_t> fragments(lat.size());
  std::vector<uint64_t> queries(lat.size());
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    uint64_t absorbed = 0;
    for (const Digit& digit : digits) {
      if (cls.level(digit.dim) >= digit.level) absorbed += digit.edges;
    }
    SNAKES_CHECK(absorbed < cells);
    queries[i] = NumQueriesInClass(schema, cls);
    fragments[i] = cells - absorbed;
  }
  return ClassCostTable(lat, std::move(fragments), std::move(queries));
}

double DistToSnakedPath(const LatticePath& path, const QueryClass& cls) {
  const QueryClassLattice& lat = path.lattice();
  // Real-valued mirror of AnalyticSnakedPathCosts for fractional fanouts.
  double cells = 1.0;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (int l = 1; l <= lat.levels(d); ++l) cells *= lat.fanout(d, l);
  }
  std::vector<int> level(static_cast<size_t>(lat.num_dims()), 0);
  double place = 1.0;
  double absorbed = 0.0;
  for (int d : path.steps()) {
    const int upper = ++level[static_cast<size_t>(d)];
    const double radix = lat.fanout(d, upper);
    if (cls.level(d) >= upper) {
      absorbed += (radix - 1.0) * (cells / (radix * place));
    }
    place *= radix;
  }
  double num_queries = 1.0;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (int l = cls.level(d) + 1; l <= lat.levels(d); ++l) {
      num_queries *= lat.fanout(d, l);
    }
  }
  return (cells - absorbed) / num_queries;
}

}  // namespace snakes
