#include "cost/workload_cost.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace snakes {

double ExpectedCost(const Workload& mu, const ClassCostTable& costs) {
  SNAKES_CHECK(mu.lattice() == costs.lattice())
      << "workload and cost table built over different lattices";
  double total = 0.0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * costs.AvgDouble(mu.lattice().ClassAt(i));
  }
  return total;
}

double ExpectedPathCost(const Workload& mu, const LatticePath& path) {
  SNAKES_CHECK(mu.lattice() == path.lattice())
      << "workload and path built over different lattices";
  double total = 0.0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * DistToPath(path, mu.lattice().ClassAt(i));
  }
  return total;
}

double ExpectedSnakedPathCost(const Workload& mu, const LatticePath& path) {
  SNAKES_CHECK(mu.lattice() == path.lattice())
      << "workload and path built over different lattices";
  double total = 0.0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * DistToSnakedPath(path, mu.lattice().ClassAt(i));
  }
  return total;
}

double MeasureExpectedCost(const Workload& mu, const Linearization& lin,
                           const ObsSink& obs) {
  ScopedSpan span(obs.tracer, "cost/measure", "cost");
  span.AddArg("strategy", lin.name());
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("cost.cells_scanned")->Inc(lin.num_cells());
  }
  return ExpectedCost(mu, MeasureClassCosts(lin));
}

}  // namespace snakes
