#include "cost/workload_cost.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace snakes {

double ExpectedCost(const Workload& mu, const ClassCostTable& costs) {
  SNAKES_CHECK(mu.lattice() == costs.lattice())
      << "workload and cost table built over different lattices";
  double total = 0.0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * costs.AvgDouble(mu.lattice().ClassAt(i));
  }
  return total;
}

double ExpectedPathCost(const Workload& mu, const LatticePath& path) {
  SNAKES_CHECK(mu.lattice() == path.lattice())
      << "workload and path built over different lattices";
  double total = 0.0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * DistToPath(path, mu.lattice().ClassAt(i));
  }
  return total;
}

double ExpectedSnakedPathCost(const Workload& mu, const LatticePath& path) {
  SNAKES_CHECK(mu.lattice() == path.lattice())
      << "workload and path built over different lattices";
  double total = 0.0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    total += p * DistToSnakedPath(path, mu.lattice().ClassAt(i));
  }
  return total;
}

namespace {

/// Per-class fragment totals from rank-run counting: a query's fragment
/// count equals the length of its run decomposition, so summing run counts
/// over a class reproduces the edge model's TotalFragments exactly. Classes
/// with zero probability are skipped (fragments 0 over 1 query) — ExpectedCost
/// never reads them.
ClassCostTable RunCountClassCosts(const Workload& mu,
                                  const Linearization& lin, const ObsSink& obs,
                                  RunArena* arena) {
  const StarSchema& schema = lin.schema();
  const QueryClassLattice& lat = mu.lattice();
  std::vector<uint64_t> fragments(lat.size(), 0);
  std::vector<uint64_t> queries(lat.size(), 1);
  Histogram* cells_per_run =
      obs.metrics != nullptr
          ? obs.metrics->GetHistogram("curves.cells_per_run")
          : nullptr;
  uint64_t total_runs = 0;
  for (uint64_t i = 0; i < lat.size(); ++i) {
    if (mu.probability_at(i) == 0.0) continue;
    const QueryClass cls = lat.ClassAt(i);
    const uint64_t num_queries = NumQueriesInClass(schema, cls);
    uint64_t class_fragments;
    if (lin.ClassRunsDegenerate(cls)) {
      // Every run is one cell and the class's queries tile the grid, so the
      // fragment total is num_cells() — no need to materialize anything.
      // (Single-cell runs are also not worth a histogram pass.)
      class_fragments = lin.num_cells();
    } else {
      lin.AppendClassRuns(cls, arena);
      class_fragments = arena->num_runs();
      if (cells_per_run != nullptr) {
        for (size_t r = 0; r < arena->num_runs(); ++r) {
          cells_per_run->Record(arena->run(r).len);
        }
      }
    }
    fragments[i] = class_fragments;
    queries[i] = num_queries;
    total_runs += class_fragments;
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("curves.runs_emitted")->Inc(total_runs);
  }
  return ClassCostTable(lat, std::move(fragments), std::move(queries));
}

/// Total queries across the workload's non-zero classes, saturating at
/// `cap` (the auto-mode break-even threshold needs no exact count beyond it).
uint64_t NonZeroQueries(const Workload& mu, const StarSchema& schema,
                        uint64_t cap) {
  uint64_t total = 0;
  for (uint64_t i = 0; i < mu.lattice().size(); ++i) {
    if (mu.probability_at(i) == 0.0) continue;
    total += NumQueriesInClass(schema, mu.lattice().ClassAt(i));
    if (total > cap) return total;
  }
  return total;
}

}  // namespace

double MeasureExpectedCost(const Workload& mu, const Linearization& lin,
                           const ObsSink& obs, CostEvalMode mode,
                           RunArena* arena) {
  ScopedSpan span(obs.tracer, "cost/measure", "cost");
  span.AddArg("strategy", lin.name());
  const bool use_runs =
      mode == CostEvalMode::kRankRuns ||
      (mode == CostEvalMode::kAuto && lin.HasRunDecomposition() &&
       NonZeroQueries(mu, lin.schema(), lin.num_cells()) <= lin.num_cells());
  span.AddArg("mode", use_runs ? "rank-runs" : "edge-walk");
  if (use_runs) {
    RunArena local;
    return ExpectedCost(
        mu, RunCountClassCosts(mu, lin, obs, arena != nullptr ? arena : &local));
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("cost.cells_scanned")->Inc(lin.num_cells());
  }
  return ExpectedCost(mu, MeasureClassCosts(lin));
}

}  // namespace snakes
