#ifndef SNAKES_COST_COST_CACHE_H_
#define SNAKES_COST_COST_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/workload_cost.h"
#include "curves/linearization.h"
#include "lattice/workload.h"
#include "obs/obs.h"

namespace snakes {

/// Memoized per-class strategy costs — the expensive half of re-advising.
///
/// A strategy's per-class average cost (fragments over queries) depends only
/// on the strategy and the schema, never on the workload; what the workload
/// changes is how the per-class averages are *weighted*. So across workload
/// epochs the fragment counts can be cached per (strategy, class) and a
/// re-advise only pays for classes it has never costed before — the
/// O(sum over queries of runs) or O(cells * levels) measurement work — while
/// the O(|L|) weighted summation is recomputed exactly every time, keeping
/// results bit-identical to an uncached evaluation.
///
/// Entries are exact integers (TotalFragments / NumQueries, the same values
/// ClassCostTable stores), so a cache hit reproduces the uncached AvgDouble
/// bit for bit regardless of which evaluation mode originally filled it
/// (run counting and the edge walk agree exactly; see tests/rank_run_test).
///
/// Thread-safety: the strategy map is mutex-guarded and the counters are
/// atomic, so concurrent Evaluate tasks may fill *different* strategies'
/// entries in parallel (the advisor's one-task-per-strategy decomposition).
/// Concurrent calls for the same strategy are not supported.
class ClassCostCache {
 public:
  /// Cumulative hit/miss counts. A miss is one per-class cost evaluation —
  /// the unit the bench/micro_incremental_advise guard counts.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Per-strategy memo: fragments/queries per dense lattice index, with a
  /// validity mask (a class is present once costed).
  struct StrategyCosts {
    std::vector<uint64_t> fragments;
    std::vector<uint64_t> queries;
    std::vector<char> known;
    /// Set once an edge-walk pass filled every class at once.
    bool full_table = false;
  };

  ClassCostCache() = default;

  /// The memo for `name`, created empty (sized `num_classes`) on first use.
  /// The returned pointer is stable for the cache's lifetime.
  StrategyCosts* Strategy(const std::string& name, uint64_t num_classes);

  /// Number of distinct strategies with at least one costed class.
  uint64_t NumStrategies() const;

  Stats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  void RecordHits(uint64_t n) { hits_.fetch_add(n, std::memory_order_relaxed); }
  void RecordMisses(uint64_t n) {
    misses_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Drops every memo and zeroes the counters.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, StrategyCosts> strategies_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// MeasureExpectedCost through the memo: bit-identical to
/// MeasureExpectedCost(mu, lin, obs, mode) on every input, but per-class
/// fragment counts are computed at most once per cache lifetime. Classes
/// with zero probability are neither computed nor charged. `cache` must not
/// be null; pass the same instance across epochs to amortize. `arena`
/// (optional) is per-thread reusable run storage for cache-miss fills —
/// identical fragment integers either way.
double MeasureExpectedCostCached(const Workload& mu, const Linearization& lin,
                                 ClassCostCache* cache, const ObsSink& obs = {},
                                 CostEvalMode mode = CostEvalMode::kAuto,
                                 RunArena* arena = nullptr);

}  // namespace snakes

#endif  // SNAKES_COST_COST_CACHE_H_
