#ifndef SNAKES_COST_EDGE_MODEL_H_
#define SNAKES_COST_EDGE_MODEL_H_

#include <cstdint>
#include <vector>

#include "curves/linearization.h"
#include "hierarchy/star_schema.h"
#include "lattice/lattice.h"
#include "lattice/query_class.h"
#include "util/fraction.h"

namespace snakes {

/// The generalized characteristic vector (Definition 4) of a clustering
/// strategy: for every pair of cells adjacent on the curve, the edge's type
/// is the vector of per-dimension "join levels" — the lowest hierarchy level
/// at which the two cells share an ancestor in that dimension (0 when the
/// coordinate is unchanged). Types are lattice points, so the histogram is
/// indexed by the query-class lattice.
///
/// In the paper's 2-D binary notation, type (i,0) is A_i, (0,j) is B_j and
/// (i,j) with i,j >= 1 is the diagonal type D_ij.
struct EdgeHistogram {
  QueryClassLattice lattice;
  /// count[lattice.Index(type)] = number of curve edges of that type.
  std::vector<uint64_t> count;

  /// Number of diagonal edges (types with >= 2 non-zero coordinates).
  uint64_t NumDiagonal() const;

  /// Total edges (= num_cells - 1 for a valid linearization).
  uint64_t Total() const;

  /// Edges of type `t`.
  uint64_t OfType(const QueryClass& t) const { return count[lattice.Index(t)]; }
};

/// Scans `lin` once and tallies every curve edge by type. O(cells * levels).
EdgeHistogram MeasureEdgeHistogram(const Linearization& lin);

/// Exact per-query-class average costs of a clustering strategy, in the
/// paper's seek-count surrogate: the average, over all grid queries of a
/// class, of the number of contiguous curve fragments needed to cover the
/// query. Stored as exact integers (total fragments over all queries of the
/// class / number of queries), matching the "total/num" entries of Table 1.
class ClassCostTable {
 public:
  ClassCostTable(QueryClassLattice lattice, std::vector<uint64_t> fragments,
                 std::vector<uint64_t> queries)
      : lattice_(std::move(lattice)),
        fragments_(std::move(fragments)),
        queries_(std::move(queries)) {}

  const QueryClassLattice& lattice() const { return lattice_; }

  /// Summed fragment count over every query of `cls`.
  uint64_t TotalFragments(const QueryClass& cls) const {
    return fragments_[lattice_.Index(cls)];
  }

  /// Number of grid queries in `cls`.
  uint64_t NumQueries(const QueryClass& cls) const {
    return queries_[lattice_.Index(cls)];
  }

  /// Average fragments per query of `cls`, exact.
  Fraction Avg(const QueryClass& cls) const {
    const uint64_t i = lattice_.Index(cls);
    return Fraction(fragments_[i], queries_[i]);
  }

  double AvgDouble(const QueryClass& cls) const { return Avg(cls).ToDouble(); }

 private:
  QueryClassLattice lattice_;
  std::vector<uint64_t> fragments_;
  std::vector<uint64_t> queries_;
};

/// Converts an edge histogram into exact per-class costs using the
/// internality identity (Section 5.1, extended cost definition): the summed
/// fragment count of class c equals num_cells minus the number of edges whose
/// type is dominated by c. Runs a k-pass subset-sum over the lattice.
ClassCostTable CostsFromHistogram(const StarSchema& schema,
                                  const EdgeHistogram& hist);

/// MeasureEdgeHistogram + CostsFromHistogram.
ClassCostTable MeasureClassCosts(const Linearization& lin);

}  // namespace snakes

#endif  // SNAKES_COST_EDGE_MODEL_H_
