#ifndef SNAKES_COST_COST_MODEL_H_
#define SNAKES_COST_COST_MODEL_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/backend.h"
#include "storage/disk_model.h"
#include "storage/executor.h"
#include "util/result.h"

namespace snakes {

/// The per-query I/O features every cost model prices. Everything the
/// simulator and the calibration sweep can observe about a query, as doubles
/// so workload expectations (fractional averages) fit the same vector as
/// single measured queries.
struct CostFeatures {
  double seeks = 0.0;               // non-sequential accesses (fragments)
  double pages = 0.0;               // distinct pages read
  double runs = 0.0;                // rank runs the query decomposed into
  double records = 0.0;             // records selected
  double partitions_scanned = 0.0;  // zone-map survivors consulted
  double partitions_pruned = 0.0;   // partitions skipped via zone maps

  /// Features of one measured query.
  static CostFeatures FromQueryIo(const QueryIo& io);
  /// Features of a workload expectation (per-query averages).
  static CostFeatures FromWorkloadIo(const WorkloadIoStats& io);
};

/// One named CostFeatures member — the table the coefficients JSON, the
/// calibration fit's feature selection, and the linear model's dot product
/// all share, so a feature added here flows through every layer.
struct CostFeatureField {
  const char* name;
  double CostFeatures::* member;
};

/// Canonical named features, in fit/JSON order.
const std::vector<CostFeatureField>& CostFeatureFields();

/// The cost-model implementations the stack can price time with.
enum class CostModelKind {
  /// The seed's DiskModel constants (9.5 ms seeks, late-90s transfer) — the
  /// bit-compatible default.
  kAnalytic,
  /// Modern rotating-disk preset.
  kHdd,
  /// NVMe flash preset (seeks nearly free; transfer dominates).
  kSsd,
  /// Linear model fitted to measured file_store executions
  /// (cost/calibration.h).
  kCalibrated,
};

/// Stable lowercase name ("analytic" / "hdd" / "ssd" / "calibrated").
const char* CostModelKindName(CostModelKind kind);

/// Inverse of CostModelKindName; InvalidArgument on unknown names.
Result<CostModelKind> ParseCostModelKind(std::string_view name);

/// Abstract time model: translates I/O features into estimated elapsed
/// milliseconds. One interface threads through every consumer — the advisor's
/// per-strategy reports, the recluster engine's net-benefit accounting, and
/// the service's per-tenant serving state — so swapping hand-set constants
/// for fitted coefficients is a construction-time choice, not a code path.
///
/// Models never participate in strategy *ranking*: expected_cost stays the
/// paper's model-independent seek surrogate (and the ClassCostCache keeps
/// memoizing model-independent per-class integers); models only convert the
/// measured/expected features into time at the edge.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual CostModelKind kind() const = 0;
  /// Human-readable label ("analytic", "hdd", "calibrated", ...).
  virtual const std::string& name() const = 0;

  /// Estimated elapsed milliseconds for the I/O in `features`. Transfer
  /// terms are priced against `page_size_bytes` (analytic models convert
  /// pages to bytes; fitted models absorbed the page size into their pages
  /// coefficient at calibration time and ignore it).
  virtual double EstimateMs(const CostFeatures& features,
                            uint64_t page_size_bytes) const = 0;

  /// Milliseconds one seek costs under this model — the conversion factor
  /// from the paper's seek-count surrogate (cost_mu, expected fragments per
  /// query) into time when no richer features were measured.
  virtual double SeekMs() const = 0;

  /// One-line JSON description of the model and its parameters.
  virtual std::string ToJson() const = 0;

  /// Convenience: one measured query / a workload expectation.
  double QueryMs(const QueryIo& io, uint64_t page_size_bytes) const {
    return EstimateMs(CostFeatures::FromQueryIo(io), page_size_bytes);
  }
  double ExpectedMs(const WorkloadIoStats& io, uint64_t page_size_bytes) const {
    return EstimateMs(CostFeatures::FromWorkloadIo(io), page_size_bytes);
  }
};

/// The DiskModel constants behind the CostModel interface: seeks plus
/// sequential transfer, nothing else. The kAnalytic instance reproduces the
/// seed's numbers bit-for-bit (same multiply/divide order as
/// DiskModel::ExpectedMs); kHdd / kSsd are the same formula with modern
/// constants.
class AnalyticDiskModel : public CostModel {
 public:
  AnalyticDiskModel(CostModelKind kind, std::string name, DiskModel disk)
      : kind_(kind), name_(std::move(name)), disk_(disk) {}

  CostModelKind kind() const override { return kind_; }
  const std::string& name() const override { return name_; }
  double EstimateMs(const CostFeatures& features,
                    uint64_t page_size_bytes) const override {
    return disk_.ExpectedMs(features.seeks, features.pages, page_size_bytes);
  }
  double SeekMs() const override { return disk_.seek_ms; }
  std::string ToJson() const override;

  const DiskModel& disk() const { return disk_; }

 private:
  CostModelKind kind_;
  std::string name_;
  DiskModel disk_;
};

/// Linear time model with fitted coefficients: estimated ms is
/// intercept + dot(coefficients, features). Produced by the calibration fit
/// (cost/calibration.h) or loaded from its coefficients JSON; the intercept
/// absorbs per-execution fixed costs (file open, setup) that no per-IO
/// feature explains.
class CalibratedLinearModel : public CostModel {
 public:
  CalibratedLinearModel(double intercept_ms, CostFeatures coefficients_ms,
                        std::string name = "calibrated")
      : name_(std::move(name)),
        intercept_ms_(intercept_ms),
        coef_(coefficients_ms) {}

  CostModelKind kind() const override { return CostModelKind::kCalibrated; }
  const std::string& name() const override { return name_; }
  double EstimateMs(const CostFeatures& features,
                    uint64_t page_size_bytes) const override;
  double SeekMs() const override { return coef_.seeks; }
  std::string ToJson() const override;

  double intercept_ms() const { return intercept_ms_; }
  const CostFeatures& coefficients_ms() const { return coef_; }

  /// Parses the coefficients JSON written by the calibration tool
  /// ({"intercept_ms": .., "coefficients": {"seeks": .., ...}}). Strict:
  /// malformed JSON, missing fields, or non-finite numbers are
  /// InvalidArgument, never NaN models.
  static Result<CalibratedLinearModel> FromJson(std::string_view json);

 private:
  std::string name_;
  double intercept_ms_ = 0.0;
  CostFeatures coef_;
};

/// How a consumer names the cost model it wants: a preset kind, plus the
/// coefficients JSON when the kind is kCalibrated. The service embeds one in
/// TenantSpec and the `costmodel` Dispatch verb round-trips it live.
struct CostModelSpec {
  CostModelKind kind = CostModelKind::kAnalytic;
  /// Required (non-empty) iff kind == kCalibrated: the coefficients JSON
  /// written by tools/calibrate_cost, or a path to it (payloads not starting
  /// with '{' are read as a file).
  std::string calibrated_json;
};

/// Builds the preset model of `kind`; InvalidArgument for kCalibrated (its
/// coefficients must come from a spec or FromJson).
Result<std::shared_ptr<const CostModel>> MakeCostModel(CostModelKind kind);

/// Builds the model a spec names, loading calibrated coefficients from the
/// embedded JSON (or the file it points at).
Result<std::shared_ptr<const CostModel>> MakeCostModel(
    const CostModelSpec& spec);

/// The process-wide kAnalytic instance — the default every consumer falls
/// back to when no model was selected, keeping seed behavior bit-identical.
const std::shared_ptr<const CostModel>& DefaultCostModel();

}  // namespace snakes

#endif  // SNAKES_COST_COST_MODEL_H_
