#ifndef SNAKES_COST_CLASS_COST_H_
#define SNAKES_COST_CLASS_COST_H_

#include "cost/edge_model.h"
#include "hierarchy/star_schema.h"
#include "lattice/lattice.h"
#include "path/lattice_path.h"
#include "util/result.h"

namespace snakes {

/// dist_P(u) (Section 4): the average seek cost of a class-u query under the
/// (unsnaked) path strategy P — the product of the fanouts between u and the
/// maximal path point dominated by u. Works on any lattice, including
/// fractional average fanouts; exact for uniform hierarchies.
double DistToPath(const LatticePath& path, const QueryClass& cls);

/// Per-class costs of the unsnaked path strategy, exact, for uniform
/// schemas: avg(c) = dist_P(c), total = dist * num_queries.
Result<ClassCostTable> AnalyticPathCosts(const StarSchema& schema,
                                         const LatticePath& path);

/// Per-class costs of the snaked path strategy, exact, for uniform schemas:
/// every curve edge is a loop-digit step of some (dim, level); class c
/// absorbs the edges with c.level(dim) >= level, and
/// avg(c) = (cells - absorbed) / num_queries (the paper's extended cost
/// formula specialized to snaked paths).
Result<ClassCostTable> AnalyticSnakedPathCosts(const StarSchema& schema,
                                               const LatticePath& path);

/// dist of a class under the snaked path, on the lattice cost model alone
/// (no physical schema; fanouts may be fractional). Mirrors
/// AnalyticSnakedPathCosts with real-valued edge counts.
double DistToSnakedPath(const LatticePath& path, const QueryClass& cls);

}  // namespace snakes

#endif  // SNAKES_COST_CLASS_COST_H_
