#include "cost/edge_model.h"

#include "lattice/grid_query.h"
#include "util/logging.h"

namespace snakes {

uint64_t EdgeHistogram::NumDiagonal() const {
  uint64_t total = 0;
  for (uint64_t i = 0; i < lattice.size(); ++i) {
    if (count[i] == 0) continue;
    const QueryClass t = lattice.ClassAt(i);
    int nonzero = 0;
    for (int d = 0; d < t.num_dims(); ++d) nonzero += t.level(d) > 0;
    if (nonzero >= 2) total += count[i];
  }
  return total;
}

uint64_t EdgeHistogram::Total() const {
  uint64_t total = 0;
  for (uint64_t c : count) total += c;
  return total;
}

EdgeHistogram MeasureEdgeHistogram(const Linearization& lin) {
  const StarSchema& schema = lin.schema();
  EdgeHistogram hist{QueryClassLattice(schema),
                     std::vector<uint64_t>(QueryClassLattice(schema).size(), 0)};
  const int k = schema.num_dims();
  bool have_prev = false;
  CellCoord prev;
  QueryClass type(k);
  lin.Walk([&](uint64_t rank, const CellCoord& coord) {
    (void)rank;
    if (have_prev) {
      for (int d = 0; d < k; ++d) {
        const uint64_t a = prev[static_cast<size_t>(d)];
        const uint64_t b = coord[static_cast<size_t>(d)];
        int level = 0;
        if (a != b) {
          const Hierarchy& h = schema.dim(d);
          level = 1;
          while (h.AncestorAt(a, level) != h.AncestorAt(b, level)) ++level;
        }
        type.set_level(d, level);
      }
      ++hist.count[hist.lattice.Index(type)];
    }
    prev = coord;
    have_prev = true;
  });
  return hist;
}

ClassCostTable CostsFromHistogram(const StarSchema& schema,
                                  const EdgeHistogram& hist) {
  const QueryClassLattice& lat = hist.lattice;
  const uint64_t size = lat.size();
  // internal[c] = number of edges whose type is dominated by c, computed by
  // the standard k-pass "sum over dominated points" sweep.
  std::vector<uint64_t> internal = hist.count;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (uint64_t i = 0; i < size; ++i) {
      const QueryClass c = lat.ClassAt(i);
      if (c.level(d) == 0) continue;
      QueryClass below = c;
      below.set_level(d, c.level(d) - 1);
      internal[i] += internal[lat.Index(below)];
    }
  }
  const uint64_t cells = schema.num_cells();
  std::vector<uint64_t> fragments(size);
  std::vector<uint64_t> queries(size);
  for (uint64_t i = 0; i < size; ++i) {
    SNAKES_CHECK(internal[i] < cells)
        << "edge counts exceed cell count; invalid linearization?";
    fragments[i] = cells - internal[i];
    queries[i] = NumQueriesInClass(schema, lat.ClassAt(i));
  }
  return ClassCostTable(lat, std::move(fragments), std::move(queries));
}

ClassCostTable MeasureClassCosts(const Linearization& lin) {
  return CostsFromHistogram(lin.schema(), MeasureEdgeHistogram(lin));
}

}  // namespace snakes
