#ifndef SNAKES_COST_CALIBRATION_H_
#define SNAKES_COST_CALIBRATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "curves/linearization.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "util/clock.h"
#include "util/result.h"

namespace snakes {

/// One calibration observation: a query's I/O features (from IoSimulator
/// against a storage backend) paired with the nanoseconds a real file_store
/// execution of the same query took. What the sweep records and the fit
/// consumes — the Hyrise-style "generate calibration queries, extract
/// features, fit" loop, in-repo.
struct CalibrationSample {
  std::string query_class;  // QueryClass::ToString of the sampled class
  std::string strategy;     // linearization name
  std::string backend;      // StorageBackendKindName
  CostFeatures features;
  double measured_ns = 0.0;
};

/// Knobs of the calibration sweep.
struct CalibrationSweepConfig {
  StorageConfig storage;
  /// Backends the features are measured against. The file_store timing is
  /// identical across kinds (all backends share the page packing); what
  /// differs is the pruning features.
  std::vector<StorageBackendKind> backends = {StorageBackendKind::kPacked};
  /// Queries drawn uniformly per (strategy, backend, class) triple.
  int queries_per_class = 4;
  /// Timed executions per query; the minimum is recorded (the standard
  /// noise floor estimator for in-memory-cached reads).
  int repetitions = 3;
  uint64_t seed = 19990601;
  /// Scratch file each strategy's PackedLayout is serialized into.
  std::string scratch_path = "snakes_calibration_scratch.bin";
};

/// Sweeps every (strategy, backend, lattice class) triple: serializes the
/// strategy's packed layout into a real file, measures each sampled query's
/// features through IoSimulator and its wall time through
/// FileStore::ExecuteTimed, and returns the (features -> measured ns)
/// samples. `clock` (null = steady clock) makes the timing injectable for
/// deterministic tests.
Result<std::vector<CalibrationSample>> CollectCalibrationSamples(
    std::shared_ptr<const FactTable> facts,
    const std::vector<std::shared_ptr<const Linearization>>& strategies,
    const CalibrationSweepConfig& config, Clock* clock = nullptr);

/// Feature selection for the least-squares fit. The default {seeks, pages}
/// plus the implicit intercept is deliberately small: on a single backend
/// sweep, runs is nearly collinear with seeks and records with pages, and a
/// near-singular design matrix fits noise.
struct CalibrationFitOptions {
  std::vector<std::string> features = {"seeks", "pages"};
};

/// A fitted linear time model with its goodness-of-fit report.
struct CalibrationFit {
  double intercept_ms = 0.0;
  /// Per-feature ms coefficients; exactly the fitted features are non-zero.
  CostFeatures coefficients_ms;
  /// Coefficient of determination on the fitted samples.
  double r_squared = 0.0;
  /// Median of |predicted - measured| / measured over samples with
  /// measured_ns > 0.
  double median_relative_error = 0.0;
  /// Median relative error per query class (class label -> median), sorted
  /// by label.
  std::vector<std::pair<std::string, double>> per_class_relative_error;
  uint64_t num_samples = 0;

  /// The fitted model, ready to thread through an EvaluationRequest.
  CalibratedLinearModel ToModel() const;

  /// Coefficients JSON (CalibratedLinearModel::FromJson-compatible; carries
  /// the fit report as extra keys).
  std::string ToJson() const;
};

/// Fits measured_ns (converted to ms) against the selected features by
/// ordinary least squares over the normal equations — no dependencies.
/// Returns InvalidArgument when the design matrix is singular (degenerate
/// sweeps: fewer samples than coefficients, or a feature that never varies),
/// or when any sample carries non-finite values; never NaN coefficients.
Result<CalibrationFit> FitCalibration(
    const std::vector<CalibrationSample>& samples,
    const CalibrationFitOptions& options = {});

/// Solves min ||X b - y||_2 via the normal equations (X^T X b = X^T y) with
/// Gaussian elimination + partial pivoting. `rows` are the rows of X (all
/// the same width, intercept column included by the caller). Exposed for
/// direct testing: singular systems are InvalidArgument, not NaN.
Result<std::vector<double>> SolveLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y);

/// Samples JSON: {"page_size_bytes": .., "record_size_bytes": ..,
/// "samples": [{..}, ...]}.
std::string CalibrationSamplesToJson(
    const std::vector<CalibrationSample>& samples, const StorageConfig& config);

}  // namespace snakes

#endif  // SNAKES_COST_CALIBRATION_H_
