#ifndef SNAKES_CV_GENERAL_TRANSFORM_H_
#define SNAKES_CV_GENERAL_TRANSFORM_H_

#include "cost/edge_model.h"
#include "hierarchy/star_schema.h"
#include "util/result.h"

namespace snakes {

/// Lemma 4 generalized to any dimensionality and fanout profile — the case
/// the paper claims but only proves for binary 2-D (Section 5: "the astute
/// reader will see how to extend our arguments to the more general case").
///
/// Works on the generalized characteristic vector (EdgeHistogram): an edge
/// type is a lattice point; a type is *diagonal* when two or more of its
/// coordinates are non-zero. Every diagonal type t is split into the
/// single-dimension types (d, t_d): a class c absorbs the single-dimension
/// edge whenever c_d >= t_d, which is implied by (and weaker than) t <= c,
/// so per-class covered counts only grow and the cost never increases on
/// any workload. Feasibility of each move is constrained by the generalized
/// Lemma-2 bounds internal(c) <= cells - queries(c); the splitter computes
/// the slack interval per dimension and distributes the diagonal mass
/// greedily (lowest-dimension first, matching Example 3's preference for
/// the A side).
///
/// Returns the rewritten histogram, or Internal if some diagonal mass cannot
/// be placed — which cannot happen for histograms measured from real
/// strategies (verified by the randomized suite), only for hand-built
/// inconsistent vectors.
Result<EdgeHistogram> EliminateDiagonalsGeneral(const StarSchema& schema,
                                                const EdgeHistogram& hist);

/// True when the histogram has no diagonal types.
bool IsNonDiagonalHistogram(const EdgeHistogram& hist);

}  // namespace snakes

#endif  // SNAKES_CV_GENERAL_TRANSFORM_H_
