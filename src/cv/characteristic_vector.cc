#include "cv/characteristic_vector.h"

#include "util/logging.h"

namespace snakes {

BinaryCV::BinaryCV(int n) : n_(n) {
  SNAKES_CHECK(n >= 1 && n <= 31) << "BinaryCV level count out of range";
  a_.assign(static_cast<size_t>(n), 0);
  b_.assign(static_cast<size_t>(n), 0);
  d_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0);
}

Result<BinaryCV> BinaryCV::Make(int n, std::vector<uint64_t> a,
                                std::vector<uint64_t> b,
                                std::vector<uint64_t> diag) {
  if (n < 1 || n > 31) {
    return Status::InvalidArgument("BinaryCV needs 1 <= n <= 31");
  }
  if (a.size() != static_cast<size_t>(n) || b.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("a and b need n entries each");
  }
  if (!diag.empty() && diag.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("diag needs n*n entries (or none)");
  }
  BinaryCV cv(n);
  cv.a_ = std::move(a);
  cv.b_ = std::move(b);
  if (!diag.empty()) cv.d_ = std::move(diag);
  return cv;
}

Result<BinaryCV> BinaryCV::FromHistogram(const EdgeHistogram& hist) {
  const QueryClassLattice& lat = hist.lattice;
  if (lat.num_dims() != 2 || lat.levels(0) != lat.levels(1)) {
    return Status::InvalidArgument(
        "BinaryCV needs a square 2-D lattice histogram");
  }
  const int n = lat.levels(0);
  for (int d = 0; d < 2; ++d) {
    for (int i = 1; i <= n; ++i) {
      if (lat.fanout(d, i) != 2.0) {
        return Status::InvalidArgument("BinaryCV needs all-binary fanouts");
      }
    }
  }
  BinaryCV cv(n);
  for (uint64_t idx = 0; idx < lat.size(); ++idx) {
    const uint64_t count = hist.count[idx];
    if (count == 0) continue;
    const QueryClass type = lat.ClassAt(idx);
    const int i = type.level(0);
    const int j = type.level(1);
    SNAKES_CHECK(i > 0 || j > 0) << "self-edge in histogram";
    if (j == 0) {
      cv.set_a(i, cv.a(i) + count);
    } else if (i == 0) {
      cv.set_b(j, cv.b(j) + count);
    } else {
      cv.set_d(i, j, cv.d(i, j) + count);
    }
  }
  return cv;
}

uint64_t BinaryCV::PrefixA(int l) const {
  SNAKES_DCHECK(l >= 0 && l <= n_);
  uint64_t sum = 0;
  for (int i = 1; i <= l; ++i) sum += a(i);
  return sum;
}

uint64_t BinaryCV::PrefixB(int q) const {
  SNAKES_DCHECK(q >= 0 && q <= n_);
  uint64_t sum = 0;
  for (int j = 1; j <= q; ++j) sum += b(j);
  return sum;
}

uint64_t BinaryCV::PrefixD(int l, int q) const {
  uint64_t sum = 0;
  for (int i = 1; i <= l; ++i) {
    for (int j = 1; j <= q; ++j) sum += d(i, j);
  }
  return sum;
}

uint64_t BinaryCV::TotalEdges() const {
  return PrefixA(n_) + PrefixB(n_) + PrefixD(n_, n_);
}

bool BinaryCV::IsNonDiagonal() const { return PrefixD(n_, n_) == 0; }

Fraction BinaryCV::AvgClassCost(int i, int j) const {
  SNAKES_CHECK(i >= 0 && i <= n_ && j >= 0 && j <= n_);
  const uint64_t covered = PrefixA(i) + PrefixB(j) + PrefixD(i, j);
  SNAKES_CHECK(covered < cells())
      << "inconsistent vector: covered edges exceed cells";
  const uint64_t queries = uint64_t{1} << (2 * n_ - i - j);
  return Fraction(cells() - covered, queries);
}

double BinaryCV::CostMu(const Workload& mu) const {
  const QueryClassLattice& lat = mu.lattice();
  SNAKES_CHECK(lat.num_dims() == 2 && lat.levels(0) == n_ &&
               lat.levels(1) == n_)
      << "workload lattice does not match the CV schema";
  double total = 0.0;
  for (uint64_t idx = 0; idx < lat.size(); ++idx) {
    const double p = mu.probability_at(idx);
    if (p == 0.0) continue;
    const QueryClass c = lat.ClassAt(idx);
    total += p * AvgClassCost(c.level(0), c.level(1)).ToDouble();
  }
  return total;
}

std::string BinaryCV::ToString() const {
  std::string out = "(";
  for (int i = 1; i <= n_; ++i) {
    if (i > 1) out += ",";
    out += std::to_string(a(i));
  }
  out += ";";
  for (int j = 1; j <= n_; ++j) {
    if (j > 1) out += ",";
    out += std::to_string(b(j));
  }
  if (!IsNonDiagonal()) {
    out += ";";
    for (int i = 1; i <= n_; ++i) {
      for (int j = 1; j <= n_; ++j) {
        if (i > 1 || j > 1) out += ",";
        out += std::to_string(d(i, j));
      }
    }
  }
  out += ")";
  return out;
}

}  // namespace snakes
