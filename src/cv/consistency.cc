#include "cv/consistency.h"

#include <algorithm>

#include "lattice/grid_query.h"
#include "util/logging.h"

namespace snakes {

namespace {

// RHS of the Lemma-2 constraint at (l, q): 2^(2n) - 2^(2n-l-q).
uint64_t Bound(int n, int l, int q) {
  return (uint64_t{1} << (2 * n)) - (uint64_t{1} << (2 * n - l - q));
}

}  // namespace

std::vector<std::string> ConsistencyViolations(const BinaryCV& cv) {
  const int n = cv.n();
  std::vector<std::string> violations;
  for (int l = 0; l <= n; ++l) {
    for (int q = 0; q <= n; ++q) {
      if (l == 0 && q == 0) continue;
      const uint64_t lhs = cv.PrefixA(l) + cv.PrefixB(q) + cv.PrefixD(l, q);
      const uint64_t rhs = Bound(n, l, q);
      if (lhs > rhs) {
        violations.push_back("prefix(" + std::to_string(l) + "," +
                             std::to_string(q) + ") = " + std::to_string(lhs) +
                             " > " + std::to_string(rhs));
      }
    }
  }
  const uint64_t total = cv.TotalEdges();
  const uint64_t need = (uint64_t{1} << (2 * n)) - 1;
  if (total != need) {
    violations.push_back("total edges " + std::to_string(total) + " != " +
                         std::to_string(need));
  }
  return violations;
}

bool IsConsistent(const BinaryCV& cv) {
  return ConsistencyViolations(cv).empty();
}

bool PrecedesOrEquals(const BinaryCV& u, const BinaryCV& v) {
  if (u.n() != v.n()) return false;
  const int n = u.n();
  auto side_ok = [n](auto get_u, auto get_v) {
    for (int i = 1; i <= n; ++i) {
      if (get_u(i) == get_v(i)) continue;
      return get_u(i) > get_v(i);  // first difference: u must exceed v
    }
    return true;  // identical
  };
  return side_ok([&](int i) { return u.a(i); },
                 [&](int i) { return v.a(i); }) &&
         side_ok([&](int j) { return u.b(j); },
                 [&](int j) { return v.b(j); });
}

Result<BinaryCV> Minimalize(const BinaryCV& cv) {
  if (!cv.IsNonDiagonal()) {
    return Status::FailedPrecondition(
        "Minimalize needs a non-diagonal vector (run EliminateDiagonals)");
  }
  if (!IsConsistent(cv)) {
    return Status::FailedPrecondition("Minimalize needs a consistent vector: " +
                                      ConsistencyViolations(cv).front());
  }
  const int n = cv.n();
  BinaryCV out = cv;

  // Lexicographically maximize one side's entries, holding the other side
  // and the side's total fixed. Constraints cap the prefix sums; caps grow
  // with the level, so saturating greedily stays completable.
  auto maximize = [n](uint64_t total, auto cap, auto get, auto set) {
    uint64_t prefix = 0;
    for (int l = 1; l <= n; ++l) {
      uint64_t best = std::min(cap(l) - prefix, total - prefix);
      set(l, best);
      prefix += best;
    }
    SNAKES_CHECK(prefix == total) << "minimalization lost edge mass";
    (void)get;
  };

  auto cap_a = [&](int l) {
    uint64_t cap = UINT64_MAX;
    for (int q = 0; q <= n; ++q) {
      cap = std::min(cap, Bound(n, l, q) - out.PrefixB(q));
    }
    return cap;
  };
  maximize(
      cv.PrefixA(n), cap_a, [&](int i) { return out.a(i); },
      [&](int i, uint64_t v) { out.set_a(i, v); });

  auto cap_b = [&](int q) {
    uint64_t cap = UINT64_MAX;
    for (int l = 0; l <= n; ++l) {
      cap = std::min(cap, Bound(n, l, q) - out.PrefixA(l));
    }
    return cap;
  };
  maximize(
      cv.PrefixB(n), cap_b, [&](int j) { return out.b(j); },
      [&](int j, uint64_t v) { out.set_b(j, v); });

  SNAKES_CHECK(IsConsistent(out)) << "minimalization broke consistency";
  SNAKES_CHECK(PrecedesOrEquals(out, cv)) << "minimalization did not descend";
  return out;
}

bool IsConsistentHistogram(const StarSchema& schema,
                           const EdgeHistogram& hist) {
  const QueryClassLattice& lat = hist.lattice;
  const uint64_t size = lat.size();
  // internal[c] = edges dominated by c (same sweep as CostsFromHistogram).
  std::vector<uint64_t> internal = hist.count;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (uint64_t i = 0; i < size; ++i) {
      const QueryClass c = lat.ClassAt(i);
      if (c.level(d) == 0) continue;
      QueryClass below = c;
      below.set_level(d, c.level(d) - 1);
      internal[i] += internal[lat.Index(below)];
    }
  }
  const uint64_t cells = schema.num_cells();
  for (uint64_t i = 0; i < size; ++i) {
    const uint64_t queries = NumQueriesInClass(schema, lat.ClassAt(i));
    if (internal[i] > cells - queries) return false;
  }
  // Equality at the top: a curve through all cells has exactly cells-1 edges.
  return internal[lat.Index(lat.Top())] == cells - 1;
}

}  // namespace snakes
