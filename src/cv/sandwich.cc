#include "cv/sandwich.h"

#include <algorithm>
#include <set>

#include "cv/consistency.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {

Result<LatticePath> SnakedPathFromCV(const BinaryCV& cv) {
  const int n = cv.n();
  if (!cv.IsNonDiagonal()) {
    return Status::InvalidArgument("snaked path CVs have no diagonal edges");
  }
  // Gather (count, dim, level); counts must be the distinct powers
  // 2^0 .. 2^(2n-1) and each dimension's counts strictly decreasing in the
  // level (inner loops carry more edges).
  struct Entry {
    uint64_t count;
    int dim;
  };
  std::vector<Entry> entries;
  for (int i = 1; i <= n; ++i) {
    if (!IsPowerOfTwo(cv.a(i)) || !IsPowerOfTwo(cv.b(i))) {
      return Status::InvalidArgument("entries must be powers of two: " +
                                     cv.ToString());
    }
    if (i > 1 && (cv.a(i) >= cv.a(i - 1) || cv.b(i) >= cv.b(i - 1))) {
      return Status::InvalidArgument(
          "per-dimension entries must strictly decrease: " + cv.ToString());
    }
    entries.push_back({cv.a(i), 0});
    entries.push_back({cv.b(i), 1});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.count > y.count; });
  for (int t = 0; t < 2 * n; ++t) {
    if (entries[static_cast<size_t>(t)].count !=
        (uint64_t{1} << (2 * n - 1 - t))) {
      return Status::InvalidArgument(
          "entries must be the distinct powers 2^0..2^(2n-1): " +
          cv.ToString());
    }
  }
  // Descending counts = innermost loop first = bottom-up path steps. The
  // strictly-decreasing check above makes each dimension's levels appear in
  // increasing order, as a monotone path requires.
  std::vector<int> steps;
  steps.reserve(entries.size());
  for (const Entry& e : entries) steps.push_back(e.dim);
  auto lattice = QueryClassLattice::FromFanouts(
      {std::vector<double>(static_cast<size_t>(n), 2.0),
       std::vector<double>(static_cast<size_t>(n), 2.0)});
  SNAKES_CHECK(lattice.ok());
  return LatticePath::FromSteps(lattice.value(), std::move(steps));
}

bool IsSnakedPathCV(const BinaryCV& cv) { return SnakedPathFromCV(cv).ok(); }

Result<std::pair<BinaryCV, BinaryCV>> SandwichOnce(const BinaryCV& cv) {
  if (!cv.IsNonDiagonal() || !IsConsistent(cv)) {
    return Status::FailedPrecondition(
        "SandwichOnce needs a consistent non-diagonal vector");
  }
  const int n = cv.n();
  int i = 0, j = 0;
  for (int l = 1; l <= n && i == 0; ++l) {
    if (!IsPowerOfTwo(cv.a(l))) i = l;
  }
  for (int q = 1; q <= n && j == 0; ++q) {
    if (!IsPowerOfTwo(cv.b(q))) j = q;
  }
  if (i == 0 && j == 0) {
    return Status::FailedPrecondition("every entry is a power of two");
  }
  if (i == 0 || j == 0) {
    return Status::FailedPrecondition(
        "exactly one side has a non-power-of-two entry; vector is not "
        "minimal: " +
        cv.ToString());
  }
  const uint64_t low = uint64_t{1} << (2 * n - i - j);
  if (cv.a(i) + cv.b(j) != 3 * low) {
    return Status::FailedPrecondition(
        "minimality saturation a_i + b_j = 3*2^(2n-i-j) fails for " +
        cv.ToString() + "; run Minimalize first");
  }
  BinaryCV v1 = cv;
  v1.set_a(i, low);
  v1.set_b(j, 2 * low);
  BinaryCV v2 = cv;
  v2.set_a(i, 2 * low);
  v2.set_b(j, low);
  return std::make_pair(v1, v2);
}

Result<std::vector<BinaryCV>> SandwichToSnakedPaths(const BinaryCV& cv,
                                                    size_t max_leaves) {
  std::vector<BinaryCV> frontier;
  frontier.push_back(cv);
  std::vector<BinaryCV> leaves;
  // Dedup by string form; the recursion often rediscovers the same vectors.
  std::set<std::string> seen;
  while (!frontier.empty()) {
    BinaryCV current = std::move(frontier.back());
    frontier.pop_back();
    // Minimalize before each split so the saturation precondition holds
    // (minimalizing never raises the cost on any workload).
    SNAKES_ASSIGN_OR_RETURN(BinaryCV minimal, Minimalize(current));
    if (!seen.insert(minimal.ToString()).second) continue;
    if (IsSnakedPathCV(minimal)) {
      leaves.push_back(std::move(minimal));
      continue;
    }
    SNAKES_ASSIGN_OR_RETURN(auto pair, SandwichOnce(minimal));
    if (leaves.size() + frontier.size() + 2 > max_leaves) {
      return Status::OutOfRange("sandwich recursion exceeded " +
                                std::to_string(max_leaves) + " vectors");
    }
    frontier.push_back(std::move(pair.first));
    frontier.push_back(std::move(pair.second));
  }
  return leaves;
}

}  // namespace snakes
