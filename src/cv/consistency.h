#ifndef SNAKES_CV_CONSISTENCY_H_
#define SNAKES_CV_CONSISTENCY_H_

#include <string>
#include <vector>

#include "cost/edge_model.h"
#include "cv/characteristic_vector.h"

namespace snakes {

/// Lemma 2: every clustering strategy's CV satisfies, for all
/// (l, q) != (0, 0),
///   PrefixA(l) + PrefixB(q) + PrefixD(l, q) <= 2^(2n) - 2^(2n-l-q),
/// with equality at (l, q) = (n, n) (a curve through 2^(2n) cells has exactly
/// 2^(2n) - 1 edges). Definition 6 calls a vector satisfying all of them
/// consistent.
bool IsConsistent(const BinaryCV& cv);

/// Human-readable list of violated Lemma-2 constraints (empty iff
/// consistent). Used by tests and error messages.
std::vector<std::string> ConsistencyViolations(const BinaryCV& cv);

/// The paper's partial order on consistent vectors (Section 5.1): u <= v iff
/// u's a-entries equal v's up to some i and exceed them at i+1 (or match
/// entirely), and likewise for b. Lower is better: pushing edges toward low
/// levels can only reduce cost.
bool PrecedesOrEquals(const BinaryCV& u, const BinaryCV& v);

/// Pushes edge counts toward low levels: lexicographically maximizes
/// (a_1, a_2, ..., a_n) subject to the Lemma-2 constraints with b and the
/// totals fixed, then does the same for b. The result is consistent,
/// precedes the input in the paper's order, and costs no more on any
/// workload (its prefix sums dominate the input's). Requires a non-diagonal
/// consistent input.
Result<BinaryCV> Minimalize(const BinaryCV& cv);

/// Generalized Lemma-2 check for measured edge histograms over arbitrary
/// schemas: for every class c, the edges internal to c-blocks can be at most
/// num_cells - num_queries(c), with equality forced at the top. Property
/// tests run this against every strategy in the library.
bool IsConsistentHistogram(const StarSchema& schema, const EdgeHistogram& hist);

}  // namespace snakes

#endif  // SNAKES_CV_CONSISTENCY_H_
