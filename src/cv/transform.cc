#include "cv/transform.h"

#include <algorithm>

#include "cv/consistency.h"
#include "util/logging.h"

namespace snakes {

Result<BinaryCV> EliminateDiagonals(const BinaryCV& cv) {
  if (!IsConsistent(cv)) {
    return Status::FailedPrecondition(
        "EliminateDiagonals needs a consistent vector: " +
        ConsistencyViolations(cv).front());
  }
  const int n = cv.n();
  const uint64_t cells = cv.cells();
  auto bound = [&](int l, int q) {
    return cells - (cells >> (l + q));
  };
  BinaryCV out = cv;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      const uint64_t dij = out.d(i, j);
      if (dij == 0) continue;
      // Split d_ij into x type-A_i and y = d_ij - x type-B_j edges. Only the
      // constraints covering exactly one side of the split move:
      //   l >= i, q <  j gain x;   l <  i, q >= j gain y;
      // constraints covering both gain x + y = d_ij, i.e. stay unchanged
      // (the mass just moves from PrefixD into PrefixA + PrefixB), and
      // constraints covering neither are untouched. The feasible interval is
      // therefore [d_ij - y_max, x_max]; Claim 1 guarantees it is non-empty.
      uint64_t x_max = dij;
      for (int l = i; l <= n; ++l) {
        for (int q = 0; q < j; ++q) {
          const uint64_t lhs =
              out.PrefixA(l) + out.PrefixB(q) + out.PrefixD(l, q);
          x_max = std::min(x_max, bound(l, q) - lhs);
        }
      }
      uint64_t y_max = dij;
      for (int l = 0; l < i; ++l) {
        for (int q = j; q <= n; ++q) {
          const uint64_t lhs =
              out.PrefixA(l) + out.PrefixB(q) + out.PrefixD(l, q);
          y_max = std::min(y_max, bound(l, q) - lhs);
        }
      }
      if (x_max + y_max < dij) {
        return Status::Internal(
            "no consistent split for d(" + std::to_string(i) + "," +
            std::to_string(j) + ") of " + cv.ToString() +
            " — input is not the CV of a real strategy");
      }
      // Prefer the A side, as in Example 3.
      const uint64_t x = x_max;
      const uint64_t y = dij - x;
      out.set_d(i, j, 0);
      out.set_a(i, out.a(i) + x);
      out.set_b(j, out.b(j) + y);
      SNAKES_DCHECK(IsConsistent(out));
    }
  }
  SNAKES_CHECK(IsConsistent(out)) << "diagonal elimination broke consistency";
  return out;
}

}  // namespace snakes
