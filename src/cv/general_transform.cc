#include "cv/general_transform.h"

#include <algorithm>
#include <vector>

#include "lattice/grid_query.h"
#include "util/logging.h"

namespace snakes {

namespace {

int NonZeroDims(const QueryClass& t) {
  int nonzero = 0;
  for (int d = 0; d < t.num_dims(); ++d) nonzero += t.level(d) > 0;
  return nonzero;
}

// internal[c] = number of edges whose type is dominated by c.
std::vector<uint64_t> InternalCounts(const QueryClassLattice& lat,
                                     const std::vector<uint64_t>& count) {
  std::vector<uint64_t> internal = count;
  for (int d = 0; d < lat.num_dims(); ++d) {
    for (uint64_t i = 0; i < lat.size(); ++i) {
      const QueryClass c = lat.ClassAt(i);
      if (c.level(d) == 0) continue;
      QueryClass below = c;
      below.set_level(d, c.level(d) - 1);
      internal[i] += internal[lat.Index(below)];
    }
  }
  return internal;
}

}  // namespace

bool IsNonDiagonalHistogram(const EdgeHistogram& hist) {
  return hist.NumDiagonal() == 0;
}

Result<EdgeHistogram> EliminateDiagonalsGeneral(const StarSchema& schema,
                                                const EdgeHistogram& hist) {
  const QueryClassLattice& lat = hist.lattice;
  const uint64_t size = lat.size();
  const uint64_t cells = schema.num_cells();

  // Generalized Lemma-2 bounds per class.
  std::vector<uint64_t> bound(size);
  for (uint64_t i = 0; i < size; ++i) {
    bound[i] = cells - NumQueriesInClass(schema, lat.ClassAt(i));
  }
  {
    const std::vector<uint64_t> internal = InternalCounts(lat, hist.count);
    for (uint64_t i = 0; i < size; ++i) {
      if (internal[i] > bound[i]) {
        return Status::FailedPrecondition(
            "histogram violates the generalized Lemma-2 bounds at class " +
            lat.ClassAt(i).ToString());
      }
    }
  }

  EdgeHistogram out{lat, hist.count};
  for (uint64_t ti = 0; ti < size; ++ti) {
    const QueryClass t = lat.ClassAt(ti);
    if (NonZeroDims(t) < 2) continue;
    uint64_t remaining = out.count[ti];
    if (remaining == 0) continue;

    for (int d = 0; d < lat.num_dims() && remaining > 0; ++d) {
      if (t.level(d) == 0) continue;
      // Single-dimension target type (0, ..., t_d, ..., 0).
      QueryClass target(lat.num_dims());
      target.set_level(d, t.level(d));
      // Slack: moving x units from t to target raises internal(c) for
      // exactly the classes with c_d >= t_d that do not dominate t.
      const std::vector<uint64_t> internal = InternalCounts(lat, out.count);
      uint64_t slack = UINT64_MAX;
      for (uint64_t ci = 0; ci < size; ++ci) {
        const QueryClass c = lat.ClassAt(ci);
        if (c.level(d) < t.level(d)) continue;
        if (t.DominatedBy(c)) continue;
        slack = std::min(slack, bound[ci] - internal[ci]);
      }
      const uint64_t x = std::min(remaining, slack);
      if (x == 0) continue;
      out.count[ti] -= x;
      out.count[lat.Index(target)] += x;
      remaining -= x;
    }
    if (remaining > 0) {
      return Status::Internal(
          "cannot place " + std::to_string(remaining) +
          " diagonal edges of type " + t.ToString() +
          " — histogram is not the CV of a real strategy");
    }
  }
  SNAKES_DCHECK(IsNonDiagonalHistogram(out));
  return out;
}

}  // namespace snakes
