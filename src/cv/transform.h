#ifndef SNAKES_CV_TRANSFORM_H_
#define SNAKES_CV_TRANSFORM_H_

#include "cv/characteristic_vector.h"
#include "util/result.h"

namespace snakes {

/// Lemma 4 (sub-optimality of diagonal strategies): rewrites a consistent
/// vector into a consistent *non-diagonal* vector that costs no more on any
/// workload, by splitting every diagonal entry d_ij into x type-A_i edges and
/// y = d_ij - x type-B_j edges while preserving consistency (Claim 1 applied
/// inductively, diagonals in lexicographic (i, j) order, preferring the A
/// side as in Example 3).
///
/// Every A_i or B_j edge is internal to every class a D_ij edge is internal
/// to (and more), so the per-class covered counts only grow.
Result<BinaryCV> EliminateDiagonals(const BinaryCV& cv);

}  // namespace snakes

#endif  // SNAKES_CV_TRANSFORM_H_
