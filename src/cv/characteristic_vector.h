#ifndef SNAKES_CV_CHARACTERISTIC_VECTOR_H_
#define SNAKES_CV_CHARACTERISTIC_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/edge_model.h"
#include "lattice/workload.h"
#include "util/fraction.h"
#include "util/result.h"

namespace snakes {

/// A characteristic vector over the paper's representative schema: two
/// dimensions with complete n-level binary hierarchies (Section 5). Entries
/// count curve edges by type: a(i) edges of type A_i, b(j) of type B_j, and
/// d(i, j) diagonal edges of type D_ij (1-based levels).
///
/// The vector need not come from an actual strategy — the sandwich machinery
/// manipulates "virtual" vectors — so costs are defined directly on vectors
/// via the paper's extended cost formula.
class BinaryCV {
 public:
  /// The all-zero vector for an n-level schema (n >= 1).
  explicit BinaryCV(int n);

  /// Builds from explicit entries; `a` and `b` have n entries, `diag` has
  /// n*n entries in row-major d_11, d_12, ..., d_nn order (or is empty for a
  /// non-diagonal vector).
  static Result<BinaryCV> Make(int n, std::vector<uint64_t> a,
                               std::vector<uint64_t> b,
                               std::vector<uint64_t> diag = {});

  /// Extracts the CV of a measured strategy. The histogram's lattice must be
  /// 2-dimensional with equal level counts and all-binary fanouts.
  static Result<BinaryCV> FromHistogram(const EdgeHistogram& hist);

  int n() const { return n_; }

  /// Number of grid cells, 2^(2n).
  uint64_t cells() const { return uint64_t{1} << (2 * n_); }

  uint64_t a(int i) const { return a_[static_cast<size_t>(i - 1)]; }
  uint64_t b(int j) const { return b_[static_cast<size_t>(j - 1)]; }
  uint64_t d(int i, int j) const {
    return d_[static_cast<size_t>((i - 1) * n_ + (j - 1))];
  }
  void set_a(int i, uint64_t v) { a_[static_cast<size_t>(i - 1)] = v; }
  void set_b(int j, uint64_t v) { b_[static_cast<size_t>(j - 1)] = v; }
  void set_d(int i, int j, uint64_t v) {
    d_[static_cast<size_t>((i - 1) * n_ + (j - 1))] = v;
  }

  /// Prefix sums sum_{i<=l} a(i) etc.; PrefixD sums d over the (l, q) box.
  uint64_t PrefixA(int l) const;
  uint64_t PrefixB(int q) const;
  uint64_t PrefixD(int l, int q) const;

  uint64_t TotalEdges() const;
  bool IsNonDiagonal() const;

  /// The paper's extended per-class average cost: for class (i, j),
  /// (2^(2n) - covered(i, j)) / 2^(2n-i-j), where covered counts the edges
  /// internal to (i, j) blocks. Levels may be 0..n.
  Fraction AvgClassCost(int i, int j) const;

  /// cost_mu of the vector: expectation of AvgClassCost under `mu`, whose
  /// lattice must match this schema shape.
  double CostMu(const Workload& mu) const;

  /// "(a1,..,an;b1,..,bn)" with the ";d11,..,dnn" tail only when diagonal.
  std::string ToString() const;

  bool operator==(const BinaryCV& o) const {
    return n_ == o.n_ && a_ == o.a_ && b_ == o.b_ && d_ == o.d_;
  }
  bool operator!=(const BinaryCV& o) const { return !(*this == o); }

 private:
  int n_;
  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
  std::vector<uint64_t> d_;  // row-major n x n
};

}  // namespace snakes

#endif  // SNAKES_CV_CHARACTERISTIC_VECTOR_H_
