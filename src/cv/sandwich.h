#ifndef SNAKES_CV_SANDWICH_H_
#define SNAKES_CV_SANDWICH_H_

#include <utility>
#include <vector>

#include "cv/characteristic_vector.h"
#include "path/lattice_path.h"
#include "util/result.h"

namespace snakes {

/// Lemma 3 construction: recovers the snaked lattice path whose CV is `cv`.
/// Succeeds iff the entries are the 2n distinct powers 2^0..2^(2n-1) with
/// each dimension's entries strictly decreasing (equivalently: cv is
/// consistent, non-diagonal, minimal, all entries powers of two). The
/// innermost loop is the entry with the largest count.
Result<LatticePath> SnakedPathFromCV(const BinaryCV& cv);

/// True iff `cv` is the CV of some snaked lattice path (SnakedPathFromCV
/// succeeds).
bool IsSnakedPathCV(const BinaryCV& cv);

/// One step of the Theorem-2 sandwich construction: for a consistent,
/// non-diagonal, minimal vector with some non-power-of-two entry, returns
/// the two bracketing vectors v1/v2 obtained by replacing the first
/// non-power-of-two a-entry (level i) and b-entry (level j) with the powers
/// 2^(2n-i-j) and 2^(2n-i-j+1), assigned either way. On every workload at
/// least one of the two costs no more than `cv` (verified exhaustively in
/// the test suite).
///
/// Fails if every entry is already a power of two, or if the minimality
/// saturation a_i + b_j = 3 * 2^(2n-i-j) does not hold (pass the vector
/// through Minimalize first).
Result<std::pair<BinaryCV, BinaryCV>> SandwichOnce(const BinaryCV& cv);

/// Full Theorem-2 recursion: starting from any consistent non-diagonal
/// vector, repeatedly minimalizes and sandwiches until every leaf vector is
/// the CV of a snaked lattice path. The returned set (deduplicated) always
/// contains, for every workload, a member whose cost is <= the input's —
/// the "sandwich" that proves snaked lattice paths globally optimal.
Result<std::vector<BinaryCV>> SandwichToSnakedPaths(const BinaryCV& cv,
                                                    size_t max_leaves = 4096);

}  // namespace snakes

#endif  // SNAKES_CV_SANDWICH_H_
