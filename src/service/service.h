#ifndef SNAKES_SERVICE_SERVICE_H_
#define SNAKES_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/advisor.h"
#include "core/query_parser.h"
#include "cost/cost_model.h"
#include "hierarchy/dimension_table.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "lattice/workload_delta.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/request_context.h"
#include "recluster/engine.h"
#include "service/telemetry.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "storage/query_engine.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace snakes {

class Counter;

/// Stable id of a registered tenant (dense, assigned at registration).
using TenantId = uint64_t;

/// Knobs of the always-on advisor service.
struct ServiceConfig {
  /// Workers serving advise/measure/query/ingest requests. Relayouts never
  /// run here — they go to a dedicated background worker so a long pack
  /// cannot occupy the serving pool.
  int request_threads = 1;
  /// Sliding window (epochs) of each tenant's WindowDriftEstimator.
  int window_epochs = 4;
  /// Ingested queries that automatically close a tenant epoch (0 = epochs
  /// close only via EndEpoch/SubmitEndEpoch).
  uint64_t ingests_per_epoch = 0;
  /// Fire a background recluster epoch whenever a tenant epoch closes.
  bool recluster_on_epoch_close = true;
  /// Per-tenant ReclusterEngine knobs. The engine advises on the workload
  /// the service feeds it — the window-smoothed estimate — so the default
  /// alpha of 1.0 avoids smoothing twice; obs and storage are overridden
  /// with the service's own below.
  ReclusterConfig recluster = [] {
    ReclusterConfig config;
    config.ewma_alpha = 1.0;
    return config;
  }();
  StorageConfig storage;
  /// Metrics/tracing backends shared by every tenant. Request handlers
  /// record per-type queue-wait and compute histograms
  /// (service.<type>.queue_ns / service.<type>.compute_ns), per-tenant
  /// counters (service.tenant.<name>.<type>), and spans nesting
  /// request/<verb> -> service/<type> -> the library's advisor/storage
  /// spans (every span under a request carries its "rid" arg).
  ObsSink obs;
  /// Always-on request telemetry: flight-recorder capacity, SLO-window
  /// shape, sampler cadence, recluster-audit depth, error-dump path.
  TelemetryConfig telemetry;
};

/// Everything the service needs to own one fact table.
struct TenantSpec {
  /// Unique name; doubles as the tenant key of the textual Dispatch surface.
  std::string name;
  std::shared_ptr<const StarSchema> schema;
  /// May be null: an analytic tenant (advise only; measure/query fail with
  /// FailedPrecondition).
  std::shared_ptr<const FactTable> facts;
  /// One table per schema dimension, in schema order; empty disables the
  /// textual query surface for this tenant (typed requests still work).
  std::vector<DimensionTable> tables;
  /// Storage representation the tenant's layouts are packed into. Switchable
  /// live via SetBackend / the `backend` Dispatch verb; QueryAnswers are
  /// bit-identical across backends.
  StorageBackendKind backend = StorageBackendKind::kPacked;
  /// Time model pricing this tenant's expected_ms and net-benefit scores
  /// (analytic default). Switchable live via SetCostModel / the `costmodel`
  /// Dispatch verb; rankings and cached per-class costs are model-independent
  /// and survive every switch.
  CostModelSpec cost_model;
  /// Seeds the drift window and drives the initial advise + pack, so the
  /// tenant serves queries from registration on. Unset = uniform workload.
  std::optional<Workload> initial_workload;
};

/// One published generation of a tenant's physical design. Readers pin the
/// epoch by holding the shared_ptr; a background relayout publishes a fresh
/// epoch by swapping the tenant's pointer under a mutex held only for the
/// swap, and the superseded epoch is destroyed when its last pinned reader
/// drains — the double-buffering that keeps readers block-free during
/// reclustering.
struct TenantEpoch {
  /// Publish count (1 = the registration layout).
  uint64_t sequence = 0;
  std::shared_ptr<const Linearization> linearization;
  /// The packed storage representation; null for analytic tenants.
  std::shared_ptr<const StorageBackend> backend;
};

/// Point-in-time view of one tenant's serving state.
struct TenantStatus {
  TenantId id = 0;
  std::string name;
  uint64_t epochs_closed = 0;
  uint64_t ingested_total = 0;
  uint64_t ingested_this_epoch = 0;
  uint64_t published_sequence = 0;
  uint64_t recluster_epochs = 0;
  uint64_t recluster_adoptions = 0;
  std::string current_strategy;
  /// Name of the tenant's storage backend ("packed" / "micropartition").
  std::string backend;
  /// Name of the tenant's cost model ("analytic" / "hdd" / "ssd" /
  /// "calibrated").
  std::string cost_model;

  std::string ToString() const;
};

/// A long-lived, multi-tenant advisor daemon over the library: registers
/// fact tables, ingests a stream of parsed GridQuerys per tenant, maintains
/// sliding-window workload estimates, and serves concurrent Advise /
/// Measure / Query traffic batched onto a ThreadPool while per-tenant
/// ReclusterEngine epochs fire on a background worker against double-
/// buffered StorageBackend epochs.
///
///   AdvisorService service(config);
///   TenantId t = service.RegisterTenant(spec).value();
///   auto answer = service.SubmitQuery(t, query);     // future<Result<...>>
///   service.Ingest(t, query); ...; service.EndEpoch(t);
///   auto rec = service.Advise(t);  // bit-identical to AdviseIncremental
///
/// Thread-safety: every public method is safe to call concurrently. Per
/// tenant, workload state (window + advise memo) is guarded by one mutex,
/// the recluster engine by another, and the published epoch pointer by a
/// third held only for pointer copies — readers never wait on an advise or
/// a relayout. Warm results are bit-identical to direct library calls
/// (BitIdenticalRecommendations): the service adds no numeric state of its
/// own, only memoization that is already exact.
class AdvisorService {
 public:
  explicit AdvisorService(ServiceConfig config = {});
  /// Drains both pools (pending requests and reclusters complete).
  ~AdvisorService();

  AdvisorService(const AdvisorService&) = delete;
  AdvisorService& operator=(const AdvisorService&) = delete;

  /// Registers a tenant: validates the spec, seeds the drift window with
  /// the initial workload, advises, packs (when facts are present), and
  /// publishes epoch 1. Names must be unique and non-empty.
  Result<TenantId> RegisterTenant(TenantSpec spec);

  uint64_t num_tenants() const;
  /// The id registered under `name`, or NotFound.
  Result<TenantId> FindTenant(std::string_view name) const;

  // ---- Synchronous request surface (also the task bodies of Submit*) ----

  /// Records one parsed query into the tenant's open epoch. Closes the
  /// epoch automatically when config.ingests_per_epoch is reached.
  Status Ingest(TenantId id, const GridQuery& query);

  /// Closes the tenant's open epoch: folds the ingested distribution into
  /// the sliding window and (per config) fires a background recluster.
  /// Returns the closed-epoch count; FailedPrecondition when no queries
  /// were ingested since the last close.
  Result<uint64_t> EndEpoch(TenantId id);

  /// Advises on the tenant's window-smoothed workload through its memoized
  /// incremental state. Bit-identical to ClusteringAdvisor::AdviseIncremental
  /// on SmoothedWorkload(id) — the contract service_test and service_sim
  /// verify with BitIdenticalRecommendations.
  Result<Recommendation> Advise(TenantId id);

  /// Executes an aggregate grid query against the pinned epoch's layout.
  Result<QueryAnswer> Query(TenantId id, const GridQuery& query);

  /// Measures the I/O footprint of one query against the pinned epoch.
  Result<QueryIo> Measure(TenantId id, const GridQuery& query);

  /// Runs one ReclusterEngine epoch on the calling thread and publishes the
  /// adopted layout (if any) as a new TenantEpoch.
  Result<EpochReport> ReclusterNow(TenantId id);

  /// Repacks the tenant's live clustering into `kind` and publishes the
  /// result as a new epoch. No-op when the tenant already serves from that
  /// representation. Later recluster adoptions pack into `kind` too.
  /// QueryAnswers before and after the switch are bit-identical.
  Status SetBackend(TenantId id, StorageBackendKind kind);

  /// Swaps the tenant's live cost model (advise expected_ms and recluster
  /// net-benefit pricing). Rankings, expected_cost, and the per-class memo
  /// are model-independent, so a warm re-advise after a switch still serves
  /// entirely from cache with bit-identical expected_cost.
  Status SetCostModel(TenantId id, const CostModelSpec& spec);

  // ---- Batched request surface ----------------------------------------

  /// Each Submit* enqueues the corresponding synchronous call onto the
  /// request pool and returns its future; queue-wait and compute times are
  /// recorded per request type. After Shutdown() the future is immediately
  /// ready with FailedPrecondition.
  std::future<Status> SubmitIngest(TenantId id, GridQuery query);
  std::future<Result<uint64_t>> SubmitEndEpoch(TenantId id);
  std::future<Result<Recommendation>> SubmitAdvise(TenantId id);
  std::future<Result<QueryAnswer>> SubmitQuery(TenantId id, GridQuery query);
  std::future<Result<QueryIo>> SubmitMeasure(TenantId id, GridQuery query);
  /// Queues a recluster epoch on the background worker.
  std::future<Result<EpochReport>> SubmitRecluster(TenantId id);

  // ---- Textual surface -------------------------------------------------

  /// Parses and serves one textual request against the named tenant:
  ///
  ///   advise                 | end-epoch | recluster | status
  ///   ingest <query text>    | query <query text> | measure <query text>
  ///   backend [packed|micropartition]   (no argument = report current)
  ///   costmodel [analytic|hdd|ssd | calibrated <json-or-path>]
  ///                                     (no argument = report current)
  ///
  /// Query text is the core/query_parser clause syntax and requires the
  /// tenant to have registered dimension tables. Every malformed input —
  /// unknown tenant, unknown verb, unparsable query — comes back as an
  /// error Status, never a crash (fuzzed by tests/service_fuzz_test.cc).
  Result<std::string> Dispatch(std::string_view tenant_name,
                               std::string_view request);

  /// Dispatch on the request pool.
  std::future<Result<std::string>> SubmitDispatch(std::string tenant_name,
                                                  std::string request);

  // ---- Telemetry -------------------------------------------------------

  /// Nanoseconds since the service was constructed (the service clock every
  /// request timestamp, epoch age, and audit entry is stamped on).
  uint64_t NowNs() const;

  /// Point-in-time view of the telemetry layer: the flight recorder's
  /// resident requests, per-tenant SLO windows / epoch age / recluster
  /// backlog, the recluster audit log, and tracer span accounting.
  TelemetrySnapshot Telemetry() const;

  /// The always-on ring of completed requests.
  const FlightRecorder& flight_recorder() const { return recorder_; }

  /// Every ReclusterDecision with the inputs that produced it.
  const ReclusterAuditLog& audit_log() const { return audit_; }

  /// Rotates every tenant's SLO window by one slice. Called by the sampler
  /// thread each config.telemetry.sampler_interval_ms; exposed so tests and
  /// tools with the sampler disabled can rotate deterministically.
  void AdvanceSloWindows();

  // ---- Introspection ---------------------------------------------------

  /// Pins the tenant's current epoch (never null once registered).
  Result<std::shared_ptr<const TenantEpoch>> PinEpoch(TenantId id) const;

  /// The tenant's current window-smoothed workload estimate.
  Result<Workload> SmoothedWorkload(TenantId id) const;

  Result<TenantStatus> StatusOf(TenantId id) const;

  /// Stops admission on both pools and drains them. Idempotent; in-flight
  /// requests finish, new submissions fail with FailedPrecondition.
  void Shutdown();

  const ServiceConfig& config() const { return config_; }

 private:
  struct Tenant;

  /// RAII per-request bookkeeping: assigns the request id, installs the
  /// thread's RequestContext, opens the "request/<verb>" span, and on
  /// destruction stamps the finish time and records the completed request
  /// into the flight recorder and the tenant's SLO window. Nested
  /// construction (a Dispatch verb calling the sync surface) is a no-op —
  /// the outermost guard owns the request.
  class RequestGuard;

  /// Looks a tenant up by id; NotFound past the registered range.
  Result<Tenant*> Find(TenantId id) const;

  // Un-instrumented bodies of the public request surface; the public
  // methods wrap them in a RequestGuard.
  Status IngestImpl(TenantId id, const GridQuery& query);
  Result<uint64_t> EndEpochImpl(TenantId id);
  Result<Recommendation> AdviseImpl(TenantId id);
  Result<QueryAnswer> QueryImpl(TenantId id, const GridQuery& query);
  Result<QueryIo> MeasureImpl(TenantId id, const GridQuery& query);
  Result<EpochReport> ReclusterNowImpl(TenantId id);
  Status SetBackendImpl(TenantId id, StorageBackendKind kind);
  Status SetCostModelImpl(TenantId id, const CostModelSpec& spec);
  Result<TenantId> RegisterTenantImpl(TenantSpec spec);
  Result<std::string> DispatchImpl(std::string_view tenant_name,
                                   std::string_view verb,
                                   std::string_view payload);

  /// Appends the decision of one engine epoch (with its inputs) to the
  /// audit log, attributed to the current request if any.
  void AuditDecision(const Tenant* tenant, const EpochReport& report);

  /// Body of the sampler thread: AdvanceSloWindows every interval.
  void SamplerLoop();
  void StopSampler();

  /// Closes the open epoch. Caller holds tenant->state_mu; returns the
  /// closed epoch's observed workload for the recluster trigger.
  Result<Workload> CloseEpochLocked(Tenant* tenant);

  /// Epoch-close follow-up: fire-and-forget background recluster.
  void MaybeScheduleRecluster(TenantId id);

  /// The OnEpoch + publish body shared by ReclusterNow and SubmitRecluster.
  Result<EpochReport> RunRecluster(Tenant* tenant);

  /// Builds a TenantEpoch around the adopted linearization/backend, stamps
  /// the next sequence number, and swaps it in as the tenant's published
  /// epoch (the pointer swap is the only step under epoch_mu).
  void Publish(Tenant* tenant, std::shared_ptr<const Linearization> lin,
               std::shared_ptr<const StorageBackend> backend);

  /// Wraps `fn` with queue-wait/compute instrumentation for `type` and
  /// submits it to `pool`; rejection surfaces as an immediately-ready
  /// future (built by the caller-supplied `rejected` value factory).
  template <typename R>
  std::future<R> SubmitInstrumented(ThreadPool* pool, const char* type,
                                    std::function<R()> fn);

  ServiceConfig config_;
  /// Epoch of the service clock (NowNs).
  const std::chrono::steady_clock::time_point clock_epoch_;
  FlightRecorder recorder_;
  ReclusterAuditLog audit_;
  std::atomic<uint64_t> next_request_id_{1};
  /// Resolved once when metrics are attached.
  Counter* requests_completed_ = nullptr;
  Counter* requests_errors_ = nullptr;

  std::unique_ptr<ThreadPool> request_pool_;
  /// One worker: relayouts for different tenants run serially in the
  /// background, never on the serving pool.
  std::unique_ptr<ThreadPool> background_pool_;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::thread sampler_thread_;

  mutable std::mutex tenants_mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::unordered_map<std::string, TenantId> by_name_;
};

}  // namespace snakes

#endif  // SNAKES_SERVICE_SERVICE_H_
