#include "service/telemetry.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace snakes {

namespace {

/// Shortest float text that survives a round-trip through a scraper.
std::string PromNumber(double v) {
  if (!(v == v)) return "NaN";
  if (v > 1.7e308) return "+Inf";
  if (v < -1.7e308) return "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
std::string PromEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string TenantVerbLabels(const TenantTelemetry& t, int verb) {
  return "{tenant=\"" + PromEscape(t.name) + "\",verb=\"" +
         RequestVerbName(static_cast<RequestVerb>(verb)) + "\"";
}

}  // namespace

std::string ReclusterAuditEntry::ToJson() const {
  std::string out = "{\"sequence\": " + std::to_string(sequence);
  out += ", \"timestamp_ns\": " + std::to_string(timestamp_ns);
  out += ", \"request_id\": " + std::to_string(request_id);
  out += ", \"tenant\": " + std::to_string(tenant);
  out += ", \"engine_epoch\": " + std::to_string(engine_epoch);
  out += ", \"decision\": \"" + std::string(ReclusterDecisionName(decision)) +
         "\"";
  out += ", \"drift\": " + PromNumber(drift);
  out += ", \"budget_pages\": " + std::to_string(budget_pages);
  out += ", \"current_cost\": " + PromNumber(current_cost);
  out += ", \"proposed_cost\": " + PromNumber(proposed_cost);
  out += ", \"relative_improvement\": " + PromNumber(relative_improvement);
  out += ", \"net_benefit\": " + PromNumber(net_benefit);
  out += ", \"pages_moved\": " + std::to_string(pages_moved);
  out += ", \"current_strategy\": \"" + JsonEscape(current_strategy) + "\"";
  out += ", \"proposed_strategy\": \"" + JsonEscape(proposed_strategy) + "\"";
  out += "}";
  return out;
}

ReclusterAuditLog::ReclusterAuditLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void ReclusterAuditLog::Record(ReclusterAuditEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = recorded_++;
  entries_.push_back(std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_front();
}

uint64_t ReclusterAuditLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::vector<ReclusterAuditEntry> ReclusterAuditLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<ReclusterAuditEntry>(entries_.begin(), entries_.end());
}

std::string TelemetrySnapshot::ToJson(bool pretty) const {
  const char* nl = pretty ? "\n" : "";
  const char* ind = pretty ? "  " : "";
  const char* ind2 = pretty ? "    " : "";
  std::string out = "{";
  out += nl;
  out += ind;
  out += "\"now_ns\": " + std::to_string(now_ns) + ",";
  out += nl;

  out += ind;
  out += "\"recorder\": {\"capacity\": " + std::to_string(recorder_capacity) +
         ", \"recorded\": " + std::to_string(recorder_recorded) +
         ", \"requests\": [";
  out += nl;
  for (size_t i = 0; i < requests.size(); ++i) {
    out += ind2;
    out += requests[i].ToJson();
    if (i + 1 < requests.size()) out += ",";
    out += nl;
  }
  out += ind;
  out += "]},";
  out += nl;

  out += ind;
  out += "\"tenants\": [";
  out += nl;
  for (size_t i = 0; i < tenants.size(); ++i) {
    const TenantTelemetry& t = tenants[i];
    out += ind2;
    out += "{\"tenant\": " + std::to_string(t.tenant) + ", \"name\": \"" +
           JsonEscape(t.name) + "\"";
    out += ", \"epoch_age_ns\": " + std::to_string(t.epoch_age_ns);
    out += ", \"published_sequence\": " +
           std::to_string(t.published_sequence);
    out += ", \"recluster_backlog\": " + std::to_string(t.recluster_backlog);
    out += ", \"cost_model\": \"" + JsonEscape(t.cost_model) + "\"";
    out += ", \"slo_advances\": " + std::to_string(t.slo.advances);
    out += ", \"slo\": {";
    bool first = true;
    for (int v = 0; v < kNumRequestVerbs; ++v) {
      const SloWindow::VerbStats& s = t.slo.verbs[static_cast<size_t>(v)];
      if (s.count == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "\"" +
             std::string(RequestVerbName(static_cast<RequestVerb>(v))) +
             "\": {\"count\": " + std::to_string(s.count) +
             ", \"errors\": " + std::to_string(s.errors) +
             ", \"error_rate\": " + PromNumber(s.error_rate) +
             ", \"p50_ns\": " + PromNumber(s.p50_ns) +
             ", \"p99_ns\": " + PromNumber(s.p99_ns) + "}";
    }
    out += "}}";
    if (i + 1 < tenants.size()) out += ",";
    out += nl;
  }
  out += ind;
  out += "],";
  out += nl;

  out += ind;
  out += "\"audit\": [";
  out += nl;
  for (size_t i = 0; i < audit.size(); ++i) {
    out += ind2;
    out += audit[i].ToJson();
    if (i + 1 < audit.size()) out += ",";
    out += nl;
  }
  out += ind;
  out += "],";
  out += nl;

  out += ind;
  out += "\"trace\": {\"spans\": " + std::to_string(trace_spans) +
         ", \"dropped_spans\": " + std::to_string(trace_dropped_spans) + "}";
  out += nl;
  out += "}";
  if (pretty) out += "\n";
  return out;
}

std::string TelemetrySnapshot::ToPrometheus() const {
  std::string out;

  out += "# TYPE snakes_flight_recorder_capacity gauge\n";
  out += "snakes_flight_recorder_capacity " +
         std::to_string(recorder_capacity) + "\n";
  out += "# TYPE snakes_flight_recorder_recorded_total counter\n";
  out += "snakes_flight_recorder_recorded_total " +
         std::to_string(recorder_recorded) + "\n";

  out += "# TYPE snakes_trace_spans gauge\n";
  out += "snakes_trace_spans " + std::to_string(trace_spans) + "\n";
  out += "# TYPE snakes_trace_dropped_spans_total counter\n";
  out += "snakes_trace_dropped_spans_total " +
         std::to_string(trace_dropped_spans) + "\n";

  out += "# TYPE snakes_slo_request_latency_ns summary\n";
  for (const TenantTelemetry& t : tenants) {
    for (int v = 0; v < kNumRequestVerbs; ++v) {
      const SloWindow::VerbStats& s = t.slo.verbs[static_cast<size_t>(v)];
      if (s.count == 0) continue;
      const std::string labels = TenantVerbLabels(t, v);
      out += "snakes_slo_request_latency_ns" + labels +
             ",quantile=\"0.5\"} " + PromNumber(s.p50_ns) + "\n";
      out += "snakes_slo_request_latency_ns" + labels +
             ",quantile=\"0.99\"} " + PromNumber(s.p99_ns) + "\n";
      out += "snakes_slo_request_latency_ns_sum" + labels + "} " +
             std::to_string(s.sum_ns) + "\n";
      out += "snakes_slo_request_latency_ns_count" + labels + "} " +
             std::to_string(s.count) + "\n";
    }
  }

  out += "# TYPE snakes_slo_request_errors_total counter\n";
  for (const TenantTelemetry& t : tenants) {
    for (int v = 0; v < kNumRequestVerbs; ++v) {
      const SloWindow::VerbStats& s = t.slo.verbs[static_cast<size_t>(v)];
      if (s.count == 0) continue;
      out += "snakes_slo_request_errors_total" + TenantVerbLabels(t, v) +
             "} " + std::to_string(s.errors) + "\n";
    }
  }
  out += "# TYPE snakes_slo_error_rate gauge\n";
  for (const TenantTelemetry& t : tenants) {
    for (int v = 0; v < kNumRequestVerbs; ++v) {
      const SloWindow::VerbStats& s = t.slo.verbs[static_cast<size_t>(v)];
      if (s.count == 0) continue;
      out += "snakes_slo_error_rate" + TenantVerbLabels(t, v) + "} " +
             PromNumber(s.error_rate) + "\n";
    }
  }

  out += "# TYPE snakes_epoch_age_ns gauge\n";
  for (const TenantTelemetry& t : tenants) {
    out += "snakes_epoch_age_ns{tenant=\"" + PromEscape(t.name) + "\"} " +
           std::to_string(t.epoch_age_ns) + "\n";
  }
  out += "# TYPE snakes_epoch_published_sequence counter\n";
  for (const TenantTelemetry& t : tenants) {
    out += "snakes_epoch_published_sequence{tenant=\"" + PromEscape(t.name) +
           "\"} " + std::to_string(t.published_sequence) + "\n";
  }
  out += "# TYPE snakes_recluster_backlog gauge\n";
  for (const TenantTelemetry& t : tenants) {
    out += "snakes_recluster_backlog{tenant=\"" + PromEscape(t.name) +
           "\"} " + std::to_string(t.recluster_backlog) + "\n";
  }
  out += "# TYPE snakes_cost_model_info gauge\n";
  for (const TenantTelemetry& t : tenants) {
    out += "snakes_cost_model_info{tenant=\"" + PromEscape(t.name) +
           "\",model=\"" + PromEscape(t.cost_model) + "\"} 1\n";
  }

  out += "# TYPE snakes_recluster_audit_decisions gauge\n";
  uint64_t by_decision[16] = {};
  for (const ReclusterAuditEntry& e : audit) {
    const auto d = static_cast<size_t>(e.decision);
    if (d < 16) ++by_decision[d];
  }
  for (size_t d = 0; d < 16; ++d) {
    if (by_decision[d] == 0) continue;
    out += "snakes_recluster_audit_decisions{decision=\"" +
           std::string(
               ReclusterDecisionName(static_cast<ReclusterDecision>(d))) +
           "\"} " + std::to_string(by_decision[d]) + "\n";
  }
  return out;
}

}  // namespace snakes
