#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <utility>

#include "lattice/lattice.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/executor.h"
#include "util/text_table.h"

namespace snakes {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Hand-off from SubmitInstrumented to the RequestGuard the task body
/// constructs: the enqueue timestamp (service clock) of the request this
/// pool thread is about to run, 0 when the running request was not batched.
thread_local uint64_t tls_pending_enqueue_ns = 0;

/// Attributes the innermost active request to `id` (no-op outside one).
void TagRequestTenant(TenantId id) {
  if (RequestContext* ctx = RequestContext::Current()) ctx->tenant = id;
}

/// Typed requests bypass the parser, so the service re-checks the geometry
/// a GridQuery claims before any storage code trusts it.
Status ValidateQuery(const StarSchema& schema, const GridQuery& query) {
  if (query.cls.num_dims() != schema.num_dims() ||
      query.block.size() != static_cast<size_t>(schema.num_dims())) {
    return Status::InvalidArgument(
        "query has " + std::to_string(query.cls.num_dims()) +
        " class dims / " + std::to_string(query.block.size()) +
        " blocks for a " + std::to_string(schema.num_dims()) + "-dim schema");
  }
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    const int level = query.cls.level(d);
    if (level < 0 || level > h.num_levels()) {
      return Status::OutOfRange("query level " + std::to_string(level) +
                                " outside [0, " +
                                std::to_string(h.num_levels()) +
                                "] in dimension " + h.name());
    }
    if (query.block[static_cast<size_t>(d)] >= h.num_blocks(level)) {
      return Status::OutOfRange(
          "query block " +
          std::to_string(query.block[static_cast<size_t>(d)]) +
          " outside level " + std::to_string(level) + " of dimension " +
          h.name() + " (" + std::to_string(h.num_blocks(level)) + " blocks)");
    }
  }
  return Status::OK();
}

std::string_view TrimWhitespace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string TenantStatus::ToString() const {
  std::string out = "tenant " + name + " (id " + std::to_string(id) + ")\n";
  out += "  epochs closed " + std::to_string(epochs_closed) + ", ingested " +
         std::to_string(ingested_total) + " (" +
         std::to_string(ingested_this_epoch) + " open)\n";
  out += "  published epoch " + std::to_string(published_sequence) +
         ", strategy " + (current_strategy.empty() ? "-" : current_strategy) +
         ", backend " + (backend.empty() ? "-" : backend) + ", cost model " +
         (cost_model.empty() ? "-" : cost_model) + "\n";
  out += "  recluster epochs " + std::to_string(recluster_epochs) +
         ", adoptions " + std::to_string(recluster_adoptions) + "\n";
  return out;
}

struct AdvisorService::Tenant {
  Tenant(TenantId id_in, TenantSpec spec, const ReclusterConfig& engine_config,
         int window_epochs, int slo_buckets)
      : id(id_in),
        name(std::move(spec.name)),
        schema(std::move(spec.schema)),
        facts(std::move(spec.facts)),
        tables(std::move(spec.tables)),
        lattice(*schema),
        advisor(schema),
        window(lattice, window_epochs),
        pending(lattice.size(), 0.0),
        cost_model(engine_config.cost_model != nullptr
                       ? engine_config.cost_model
                       : DefaultCostModel()),
        engine(schema, facts, engine_config),
        slo(slo_buckets) {}

  TenantId id;
  const std::string name;
  const std::shared_ptr<const StarSchema> schema;
  const std::shared_ptr<const FactTable> facts;
  const std::vector<DimensionTable> tables;
  const QueryClassLattice lattice;
  const ClusteringAdvisor advisor;

  /// Guards the workload state: window, advise memo, open-epoch counts.
  mutable std::mutex state_mu;
  WindowDriftEstimator window;
  IncrementalAdvisorState advise_state;
  std::vector<double> pending;
  uint64_t pending_ingests = 0;
  uint64_t ingested_total = 0;
  uint64_t epochs_closed = 0;
  /// The tenant's live time model (never null); prices advise expected_ms.
  /// Guarded by state_mu; SetCostModel also hands it to the engine under
  /// recluster_mu for net-benefit pricing.
  std::shared_ptr<const CostModel> cost_model;

  /// Serializes ReclusterEngine epochs (the engine is not thread-safe).
  std::mutex recluster_mu;
  ReclusterEngine engine;

  /// Held only to copy or swap the epoch pointer — never across an advise,
  /// a pack, or any I/O, which is what keeps readers block-free.
  mutable std::mutex epoch_mu;
  std::shared_ptr<const TenantEpoch> epoch;
  uint64_t published_sequence = 0;

  /// Sliding-window latency/error SLO tracker, rotated by the sampler.
  SloWindow slo;
  /// Service-clock time of the last Publish (epoch age in telemetry).
  std::atomic<uint64_t> last_publish_ns{0};
  /// Background reclusters scheduled vs finished; the difference is the
  /// tenant's recluster backlog.
  std::atomic<uint64_t> reclusters_scheduled{0};
  std::atomic<uint64_t> reclusters_completed{0};

  /// Resolved once at registration when metrics are attached.
  Counter* requests_counter = nullptr;
  Counter* ingested_counter = nullptr;
  Counter* reclusters_counter = nullptr;

  void CountRequest() const {
    if (requests_counter != nullptr) requests_counter->Inc();
  }
};

class AdvisorService::RequestGuard {
 public:
  RequestGuard(AdvisorService* service, RequestVerb verb)
      : service_(service),
        owner_(RequestContext::Current() == nullptr),
        ctx_(MakeContext(service, verb, owner_)),
        scope_(owner_ ? &ctx_ : nullptr),
        span_(owner_ ? service->config_.obs.tracer : nullptr,
              std::string("request/") + RequestVerbName(verb), "request") {}

  RequestGuard(const RequestGuard&) = delete;
  RequestGuard& operator=(const RequestGuard&) = delete;

  /// Stamps the handler's outcome on the innermost request. Nested guards
  /// write too, but the owner wraps them and writes last, so the recorded
  /// status is the one the caller saw.
  void Finish(const Status& status) {
    if (RequestContext* ctx = RequestContext::Current()) {
      ctx->status = status.code();
    }
  }

  ~RequestGuard() {
    if (!owner_) return;
    ctx_.finish_ns = service_->NowNs();
    RequestRecord record;
    record.id = ctx_.id;
    record.tenant = ctx_.tenant;
    record.verb = ctx_.verb;
    record.status = ctx_.status;
    record.enqueue_ns = ctx_.enqueue_ns;
    record.start_ns = ctx_.start_ns;
    record.finish_ns = ctx_.finish_ns;
    record.pages = ctx_.pages;
    record.partitions_pruned = ctx_.partitions_pruned;
    service_->recorder_.Record(record);
    if (ctx_.tenant != kNoTenant) {
      const Result<Tenant*> tenant = service_->Find(ctx_.tenant);
      if (tenant.ok()) {
        tenant.value()->slo.Record(ctx_.verb, record.compute_ns(),
                                   ctx_.status != StatusCode::kOk);
      }
    }
    if (service_->requests_completed_ != nullptr) {
      service_->requests_completed_->Inc();
      if (ctx_.status != StatusCode::kOk) service_->requests_errors_->Inc();
    }
  }

 private:
  static RequestContext MakeContext(AdvisorService* service, RequestVerb verb,
                                    bool owner) {
    RequestContext ctx;
    if (!owner) return ctx;
    ctx.id = service->next_request_id_.fetch_add(1, std::memory_order_relaxed);
    ctx.verb = verb;
    ctx.start_ns = service->NowNs();
    // A batched request left its submit time in the thread-local; a direct
    // sync call was never queued, so enqueue == start.
    ctx.enqueue_ns =
        tls_pending_enqueue_ns != 0 ? tls_pending_enqueue_ns : ctx.start_ns;
    tls_pending_enqueue_ns = 0;
    return ctx;
  }

  AdvisorService* service_;
  const bool owner_;
  RequestContext ctx_;
  // Order matters: the scope must be active before the span opens (the span
  // reads Current() for its "rid" arg) and must outlive it.
  RequestContextScope scope_;
  ScopedSpan span_;
};

AdvisorService::AdvisorService(ServiceConfig config)
    : config_(std::move(config)),
      clock_epoch_(std::chrono::steady_clock::now()),
      recorder_(config_.telemetry.recorder_capacity),
      audit_(config_.telemetry.audit_capacity),
      request_pool_(std::make_unique<ThreadPool>(
          config_.request_threads <= 0 ? 1 : config_.request_threads)),
      background_pool_(std::make_unique<ThreadPool>(1)) {
  if (config_.obs.metrics != nullptr) {
    requests_completed_ =
        config_.obs.metrics->GetCounter("service.requests.completed");
    requests_errors_ =
        config_.obs.metrics->GetCounter("service.requests.errors");
  }
  if (!config_.telemetry.error_dump_path.empty()) {
    // One-shot: on the first non-OK request the recorder dumps itself, so
    // the lead-up to the first failure is preserved without being asked.
    recorder_.SetErrorHook([this](const RequestRecord&) {
      std::ofstream out(config_.telemetry.error_dump_path);
      out << recorder_.ToJson(/*pretty=*/true);
    });
  }
  if (config_.telemetry.sampler_interval_ms > 0) {
    sampler_thread_ = std::thread(&AdvisorService::SamplerLoop, this);
  }
}

AdvisorService::~AdvisorService() { Shutdown(); }

uint64_t AdvisorService::NowNs() const { return ElapsedNs(clock_epoch_); }

void AdvisorService::SamplerLoop() {
  const auto interval =
      std::chrono::milliseconds(config_.telemetry.sampler_interval_ms);
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    if (sampler_cv_.wait_for(lock, interval,
                             [this] { return sampler_stop_; })) {
      break;
    }
    lock.unlock();
    AdvanceSloWindows();
    lock.lock();
  }
}

void AdvisorService::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_thread_.joinable()) sampler_thread_.join();
}

void AdvisorService::AdvanceSloWindows() {
  std::vector<Tenant*> tenants;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants.reserve(tenants_.size());
    for (const auto& tenant : tenants_) tenants.push_back(tenant.get());
  }
  // Tenant storage is stable (append-only vector of unique_ptrs), so the
  // rotation runs outside tenants_mu_.
  for (Tenant* tenant : tenants) tenant->slo.Advance();
}

void AdvisorService::Shutdown() {
  StopSampler();
  // Requests first: a draining request may still schedule a recluster,
  // which the background pool either runs (pre-shutdown) or rejects into
  // the service.recluster.rejected counter.
  request_pool_->Shutdown();
  background_pool_->Shutdown();
}

Result<AdvisorService::Tenant*> AdvisorService::Find(TenantId id) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (id >= tenants_.size()) {
    return Status::NotFound("no tenant with id " + std::to_string(id));
  }
  return tenants_[id].get();
}

Result<TenantId> AdvisorService::FindTenant(std::string_view name) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no tenant named '" + std::string(name) + "'");
  }
  return it->second;
}

uint64_t AdvisorService::num_tenants() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_.size();
}

Result<TenantId> AdvisorService::RegisterTenant(TenantSpec spec) {
  RequestGuard guard(this, RequestVerb::kRegister);
  Result<TenantId> out = RegisterTenantImpl(std::move(spec));
  guard.Finish(out.status());
  return out;
}

Result<TenantId> AdvisorService::RegisterTenantImpl(TenantSpec spec) {
  ScopedSpan span(config_.obs.tracer, "service/register", "service");
  if (spec.name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (spec.schema == nullptr) {
    return Status::InvalidArgument("tenant schema must be non-null");
  }
  if (spec.facts != nullptr && &spec.facts->schema() != spec.schema.get()) {
    return Status::InvalidArgument(
        "tenant fact table belongs to a different schema");
  }
  if (!spec.tables.empty() &&
      spec.tables.size() != static_cast<size_t>(spec.schema->num_dims())) {
    return Status::InvalidArgument(
        "tenant needs one dimension table per schema dimension (got " +
        std::to_string(spec.tables.size()) + " for " +
        std::to_string(spec.schema->num_dims()) + " dims)");
  }
  span.AddArg("tenant", spec.name);

  ReclusterConfig engine_config = config_.recluster;
  engine_config.storage = config_.storage;
  engine_config.backend = spec.backend;
  engine_config.obs = config_.obs;
  SNAKES_ASSIGN_OR_RETURN(engine_config.cost_model,
                          MakeCostModel(spec.cost_model));
  span.AddArg("cost_model", engine_config.cost_model->name());

  const QueryClassLattice lattice(*spec.schema);
  Workload initial = spec.initial_workload.has_value()
                         ? *spec.initial_workload
                         : Workload::Uniform(lattice);
  if (initial.size() != lattice.size()) {
    return Status::InvalidArgument(
        "initial workload lattice does not match the tenant schema");
  }

  auto tenant = std::make_unique<Tenant>(0, std::move(spec), engine_config,
                                         config_.window_epochs,
                                         config_.telemetry.slo_buckets);
  Tenant* t = tenant.get();
  SNAKES_RETURN_IF_ERROR(t->window.Observe(initial));

  // Advise + pack + publish epoch 1 before the tenant becomes visible, so a
  // registered tenant always serves from a live epoch.
  EpochReport initial_report;
  {
    std::lock_guard<std::mutex> lock(t->recluster_mu);
    SNAKES_ASSIGN_OR_RETURN(initial_report, t->engine.OnEpoch(initial));
    Publish(t, t->engine.current(), t->engine.current_backend());
  }

  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (by_name_.count(t->name) > 0) {
    return Status::InvalidArgument("tenant '" + t->name +
                                   "' is already registered");
  }
  const TenantId id = tenants_.size();
  t->id = id;
  TagRequestTenant(id);
  AuditDecision(t, initial_report);
  if (config_.obs.metrics != nullptr) {
    const std::string prefix = "service.tenant." + t->name;
    t->requests_counter = config_.obs.metrics->GetCounter(prefix + ".requests");
    t->ingested_counter = config_.obs.metrics->GetCounter(prefix + ".ingested");
    t->reclusters_counter =
        config_.obs.metrics->GetCounter(prefix + ".reclusters");
    config_.obs.metrics->GetCounter("service.tenants")->Inc();
  }
  by_name_.emplace(t->name, id);
  tenants_.push_back(std::move(tenant));
  return id;
}

void AdvisorService::AuditDecision(const Tenant* tenant,
                                   const EpochReport& report) {
  ReclusterAuditEntry entry;
  entry.timestamp_ns = NowNs();
  if (const RequestContext* ctx = RequestContext::Current()) {
    entry.request_id = ctx->id;
  }
  entry.tenant = tenant->id;
  entry.engine_epoch = report.epoch;
  entry.decision = report.decision;
  entry.drift = report.drift;
  entry.budget_pages = config_.recluster.movement_budget_pages;
  entry.current_cost = report.current_cost;
  entry.proposed_cost = report.proposed_cost;
  entry.relative_improvement = report.relative_improvement;
  entry.net_benefit = report.net_benefit;
  entry.pages_moved = report.movement.pages_moved();
  entry.current_strategy = report.current_strategy;
  entry.proposed_strategy = report.proposed_strategy;
  audit_.Record(std::move(entry));
}

void AdvisorService::Publish(Tenant* tenant,
                             std::shared_ptr<const Linearization> lin,
                             std::shared_ptr<const StorageBackend> backend) {
  auto epoch = std::make_shared<TenantEpoch>();
  epoch->linearization = std::move(lin);
  epoch->backend = std::move(backend);
  {
    std::lock_guard<std::mutex> lock(tenant->epoch_mu);
    epoch->sequence = ++tenant->published_sequence;
    tenant->epoch = std::move(epoch);
  }
  tenant->last_publish_ns.store(NowNs(), std::memory_order_relaxed);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("service.epochs_published")->Inc();
  }
}

Result<std::shared_ptr<const TenantEpoch>> AdvisorService::PinEpoch(
    TenantId id) const {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  const auto start = std::chrono::steady_clock::now();
  std::shared_ptr<const TenantEpoch> pinned;
  {
    std::lock_guard<std::mutex> lock(tenant->epoch_mu);
    pinned = tenant->epoch;
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetHistogram("service.epoch.pin_ns")
        ->Record(ElapsedNs(start));
  }
  if (pinned == nullptr) {
    return Status::Internal("tenant '" + tenant->name +
                            "' has no published epoch");
  }
  return pinned;
}

Result<Workload> AdvisorService::SmoothedWorkload(TenantId id) const {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  std::lock_guard<std::mutex> lock(tenant->state_mu);
  return tenant->window.Smoothed();
}

Status AdvisorService::Ingest(TenantId id, const GridQuery& query) {
  RequestGuard guard(this, RequestVerb::kIngest);
  const Status out = IngestImpl(id, query);
  guard.Finish(out);
  return out;
}

Status AdvisorService::IngestImpl(TenantId id, const GridQuery& query) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/ingest", "service");
  SNAKES_RETURN_IF_ERROR(ValidateQuery(*tenant->schema, query));
  tenant->CountRequest();
  if (tenant->ingested_counter != nullptr) tenant->ingested_counter->Inc();
  bool closed = false;
  {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    tenant->pending[tenant->lattice.Index(query.cls)] += 1.0;
    ++tenant->pending_ingests;
    ++tenant->ingested_total;
    if (config_.ingests_per_epoch > 0 &&
        tenant->pending_ingests >= config_.ingests_per_epoch) {
      const Result<Workload> closed_epoch = CloseEpochLocked(tenant);
      if (!closed_epoch.ok()) return closed_epoch.status();
      closed = true;
    }
  }
  if (closed) MaybeScheduleRecluster(id);
  return Status::OK();
}

Result<Workload> AdvisorService::CloseEpochLocked(Tenant* tenant) {
  if (tenant->pending_ingests == 0) {
    return Status::FailedPrecondition(
        "tenant '" + tenant->name +
        "': no queries ingested since the last epoch close");
  }
  SNAKES_ASSIGN_OR_RETURN(
      Workload epoch_mu_w,
      Workload::FromDense(tenant->lattice, tenant->pending,
                          /*normalize=*/true));
  SNAKES_RETURN_IF_ERROR(tenant->window.Observe(epoch_mu_w));
  std::fill(tenant->pending.begin(), tenant->pending.end(), 0.0);
  tenant->pending_ingests = 0;
  ++tenant->epochs_closed;
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("service.epochs_closed")->Inc();
    config_.obs.metrics->GetGauge("service.window.last_drift")
        ->Set(tenant->window.LastDrift());
  }
  return epoch_mu_w;
}

Result<uint64_t> AdvisorService::EndEpoch(TenantId id) {
  RequestGuard guard(this, RequestVerb::kEndEpoch);
  Result<uint64_t> out = EndEpochImpl(id);
  guard.Finish(out.status());
  return out;
}

Result<uint64_t> AdvisorService::EndEpochImpl(TenantId id) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/end_epoch", "service");
  tenant->CountRequest();
  uint64_t closed_count = 0;
  {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    const Result<Workload> closed_epoch = CloseEpochLocked(tenant);
    if (!closed_epoch.ok()) return closed_epoch.status();
    closed_count = tenant->epochs_closed;
  }
  MaybeScheduleRecluster(id);
  return closed_count;
}

void AdvisorService::MaybeScheduleRecluster(TenantId id) {
  if (!config_.recluster_on_epoch_close) return;
  MetricsRegistry* metrics = config_.obs.metrics;
  auto submitted = background_pool_->TrySubmit([this, id, metrics]() {
    // The background job is a request of its own: it gets the next id, its
    // spans nest under "request/recluster", and its completion lands in the
    // flight recorder like any foreground request.
    RequestGuard guard(this, RequestVerb::kRecluster);
    auto tenant = Find(id);
    if (!tenant.ok()) {
      guard.Finish(tenant.status());
      return;
    }
    TagRequestTenant(id);
    const auto report = RunRecluster(tenant.value());
    guard.Finish(report.status());
    tenant.value()->reclusters_completed.fetch_add(1,
                                                   std::memory_order_relaxed);
    if (!report.ok() && metrics != nullptr) {
      metrics->GetCounter("service.recluster.errors")->Inc();
    }
  });
  if (submitted.ok()) {
    const auto tenant = Find(id);
    if (tenant.ok()) {
      tenant.value()->reclusters_scheduled.fetch_add(
          1, std::memory_order_relaxed);
    }
  } else if (metrics != nullptr) {
    metrics->GetCounter("service.recluster.rejected")->Inc();
  }
}

Result<EpochReport> AdvisorService::RunRecluster(Tenant* tenant) {
  ScopedSpan span(config_.obs.tracer, "service/recluster", "service");
  span.AddArg("tenant", tenant->name);
  if (tenant->reclusters_counter != nullptr) tenant->reclusters_counter->Inc();
  Workload mu = [&] {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    return tenant->window.Smoothed();
  }();
  std::lock_guard<std::mutex> lock(tenant->recluster_mu);
  SNAKES_ASSIGN_OR_RETURN(EpochReport report, tenant->engine.OnEpoch(mu));
  AuditDecision(tenant, report);
  if (report.decision == ReclusterDecision::kAdopt ||
      report.decision == ReclusterDecision::kInitialAdopt) {
    // Double-buffer publish: readers pinned to the previous epoch keep it
    // alive; new pins see the fresh layout immediately.
    Publish(tenant, tenant->engine.current(),
            tenant->engine.current_backend());
  }
  return report;
}

Result<EpochReport> AdvisorService::ReclusterNow(TenantId id) {
  RequestGuard guard(this, RequestVerb::kRecluster);
  Result<EpochReport> out = ReclusterNowImpl(id);
  guard.Finish(out.status());
  return out;
}

Result<EpochReport> AdvisorService::ReclusterNowImpl(TenantId id) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  tenant->CountRequest();
  return RunRecluster(tenant);
}

Status AdvisorService::SetBackend(TenantId id, StorageBackendKind kind) {
  RequestGuard guard(this, RequestVerb::kBackend);
  const Status out = SetBackendImpl(id, kind);
  guard.Finish(out);
  return out;
}

Status AdvisorService::SetBackendImpl(TenantId id, StorageBackendKind kind) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/set_backend", "service");
  span.AddArg("tenant", tenant->name);
  span.AddArg("backend", StorageBackendKindName(kind));
  tenant->CountRequest();
  std::lock_guard<std::mutex> lock(tenant->recluster_mu);
  if (tenant->engine.backend_kind() == kind) return Status::OK();
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const StorageBackend> backend,
                          tenant->engine.SwitchBackend(kind));
  if (tenant->engine.current() != nullptr) {
    // Analytic tenants publish a null backend either way; fact-backed ones
    // double-buffer the repacked representation exactly like an adoption.
    Publish(tenant, tenant->engine.current(), std::move(backend));
  }
  return Status::OK();
}

Status AdvisorService::SetCostModel(TenantId id, const CostModelSpec& spec) {
  RequestGuard guard(this, RequestVerb::kCostModel);
  const Status out = SetCostModelImpl(id, spec);
  guard.Finish(out);
  return out;
}

Status AdvisorService::SetCostModelImpl(TenantId id,
                                        const CostModelSpec& spec) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/set_cost_model", "service");
  span.AddArg("tenant", tenant->name);
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const CostModel> model,
                          MakeCostModel(spec));
  span.AddArg("cost_model", model->name());
  tenant->CountRequest();
  // Two consumers, two locks: the advise path reads under state_mu, the
  // engine prices net benefit under recluster_mu. No cache is invalidated —
  // per-class costs are model-independent, so the next warm advise still
  // serves from the memo.
  {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    tenant->cost_model = model;
  }
  {
    std::lock_guard<std::mutex> lock(tenant->recluster_mu);
    tenant->engine.SetCostModel(model);
  }
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("service.costmodel_switches")->Inc();
  }
  return Status::OK();
}

Result<Recommendation> AdvisorService::Advise(TenantId id) {
  RequestGuard guard(this, RequestVerb::kAdvise);
  Result<Recommendation> out = AdviseImpl(id);
  guard.Finish(out.status());
  return out;
}

Result<Recommendation> AdvisorService::AdviseImpl(TenantId id) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/advise", "service");
  span.AddArg("tenant", tenant->name);
  tenant->CountRequest();
  std::lock_guard<std::mutex> lock(tenant->state_mu);
  EvaluationRequest request{tenant->window.Smoothed()};
  request.strategies = config_.recluster.strategies;
  request.num_threads = 1;  // the request pool is the parallelism
  request.cost_mode = config_.recluster.cost_mode;
  request.obs = config_.obs;
  request.cost_model = tenant->cost_model;
  return tenant->advisor.AdviseIncremental(request, &tenant->advise_state);
}

Result<QueryAnswer> AdvisorService::Query(TenantId id, const GridQuery& query) {
  RequestGuard guard(this, RequestVerb::kQuery);
  Result<QueryAnswer> out = QueryImpl(id, query);
  guard.Finish(out.status());
  return out;
}

Result<QueryAnswer> AdvisorService::QueryImpl(TenantId id,
                                              const GridQuery& query) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/query", "service");
  SNAKES_RETURN_IF_ERROR(ValidateQuery(*tenant->schema, query));
  tenant->CountRequest();
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const TenantEpoch> epoch,
                          PinEpoch(id));
  if (epoch->backend == nullptr) {
    return Status::FailedPrecondition("tenant '" + tenant->name +
                                      "' is analytic (no fact table)");
  }
  const QueryEngine engine(*epoch->backend, config_.obs);
  PruneStats prune;
  const QueryAnswer answer = engine.Execute(query, &prune);
  if (RequestContext* ctx = RequestContext::Current()) {
    ctx->pages += answer.io.pages;
    ctx->partitions_pruned += prune.pruned;
  }
  return answer;
}

Result<QueryIo> AdvisorService::Measure(TenantId id, const GridQuery& query) {
  RequestGuard guard(this, RequestVerb::kMeasure);
  Result<QueryIo> out = MeasureImpl(id, query);
  guard.Finish(out.status());
  return out;
}

Result<QueryIo> AdvisorService::MeasureImpl(TenantId id,
                                            const GridQuery& query) {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  ScopedSpan span(config_.obs.tracer, "service/measure", "service");
  SNAKES_RETURN_IF_ERROR(ValidateQuery(*tenant->schema, query));
  tenant->CountRequest();
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const TenantEpoch> epoch,
                          PinEpoch(id));
  if (epoch->backend == nullptr) {
    return Status::FailedPrecondition("tenant '" + tenant->name +
                                      "' is analytic (no fact table)");
  }
  const IoSimulator simulator(*epoch->backend, config_.obs);
  PruneStats prune;
  const QueryIo io = simulator.Measure(query, &prune);
  if (RequestContext* ctx = RequestContext::Current()) {
    ctx->pages += io.pages;
    ctx->partitions_pruned += prune.pruned;
  }
  return io;
}

Result<TenantStatus> AdvisorService::StatusOf(TenantId id) const {
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);
  TenantStatus status;
  status.id = tenant->id;
  status.name = tenant->name;
  {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    status.epochs_closed = tenant->epochs_closed;
    status.ingested_total = tenant->ingested_total;
    status.ingested_this_epoch = tenant->pending_ingests;
    status.cost_model = tenant->cost_model->name();
  }
  {
    std::lock_guard<std::mutex> lock(tenant->epoch_mu);
    status.published_sequence = tenant->published_sequence;
  }
  {
    std::lock_guard<std::mutex> lock(tenant->recluster_mu);
    status.recluster_epochs = tenant->engine.epochs_seen();
    status.recluster_adoptions = tenant->engine.adoptions();
    status.backend = StorageBackendKindName(tenant->engine.backend_kind());
    if (tenant->engine.current() != nullptr) {
      status.current_strategy = tenant->engine.current()->name();
    }
  }
  return status;
}

// ---- Batched request surface ------------------------------------------

template <typename R>
std::future<R> AdvisorService::SubmitInstrumented(ThreadPool* pool,
                                                  const char* type,
                                                  std::function<R()> fn) {
  Histogram* queue_hist = nullptr;
  Histogram* compute_hist = nullptr;
  if (config_.obs.metrics != nullptr) {
    const std::string prefix = std::string("service.") + type;
    queue_hist = config_.obs.metrics->GetHistogram(prefix + ".queue_ns");
    compute_hist = config_.obs.metrics->GetHistogram(prefix + ".compute_ns");
  }
  const auto submitted = std::chrono::steady_clock::now();
  const uint64_t enqueue_ns = NowNs();
  auto accepted = pool->TrySubmit(
      [submitted, enqueue_ns, queue_hist, compute_hist,
       fn = std::move(fn)]() -> R {
        const auto start = std::chrono::steady_clock::now();
        if (queue_hist != nullptr) queue_hist->Record(ElapsedNs(submitted));
        // Leave the submit time for the RequestGuard the handler constructs,
        // so batched requests record a real queue wait.
        tls_pending_enqueue_ns = enqueue_ns;
        R out = fn();
        tls_pending_enqueue_ns = 0;
        if (compute_hist != nullptr) compute_hist->Record(ElapsedNs(start));
        return out;
      });
  if (accepted.ok()) return std::move(accepted).value();
  std::promise<R> rejected;
  rejected.set_value(R(Status::FailedPrecondition(
      std::string("service: ") + type + " submitted after Shutdown()")));
  return rejected.get_future();
}

std::future<Status> AdvisorService::SubmitIngest(TenantId id, GridQuery query) {
  return SubmitInstrumented<Status>(
      request_pool_.get(), "ingest",
      [this, id, query = std::move(query)]() { return Ingest(id, query); });
}

std::future<Result<uint64_t>> AdvisorService::SubmitEndEpoch(TenantId id) {
  return SubmitInstrumented<Result<uint64_t>>(
      request_pool_.get(), "end_epoch", [this, id]() { return EndEpoch(id); });
}

std::future<Result<Recommendation>> AdvisorService::SubmitAdvise(TenantId id) {
  return SubmitInstrumented<Result<Recommendation>>(
      request_pool_.get(), "advise", [this, id]() { return Advise(id); });
}

std::future<Result<QueryAnswer>> AdvisorService::SubmitQuery(TenantId id,
                                                             GridQuery query) {
  return SubmitInstrumented<Result<QueryAnswer>>(
      request_pool_.get(), "query",
      [this, id, query = std::move(query)]() { return Query(id, query); });
}

std::future<Result<QueryIo>> AdvisorService::SubmitMeasure(TenantId id,
                                                           GridQuery query) {
  return SubmitInstrumented<Result<QueryIo>>(
      request_pool_.get(), "measure",
      [this, id, query = std::move(query)]() { return Measure(id, query); });
}

std::future<Result<EpochReport>> AdvisorService::SubmitRecluster(TenantId id) {
  return SubmitInstrumented<Result<EpochReport>>(
      background_pool_.get(), "recluster",
      [this, id]() { return ReclusterNow(id); });
}

std::future<Result<std::string>> AdvisorService::SubmitDispatch(
    std::string tenant_name, std::string request) {
  return SubmitInstrumented<Result<std::string>>(
      request_pool_.get(), "dispatch",
      [this, tenant_name = std::move(tenant_name),
       request = std::move(request)]() {
        return Dispatch(tenant_name, request);
      });
}

// ---- Textual surface ---------------------------------------------------

Result<std::string> AdvisorService::Dispatch(std::string_view tenant_name,
                                             std::string_view request) {
  const std::string_view trimmed = TrimWhitespace(request);
  const size_t space = trimmed.find(' ');
  const std::string_view verb = trimmed.substr(0, space);
  const std::string_view payload =
      space == std::string_view::npos
          ? std::string_view{}
          : TrimWhitespace(trimmed.substr(space + 1));
  // The verb is parsed before the guard so the recorded request carries it
  // even when the tenant lookup (or the request itself) fails.
  RequestGuard guard(this, ParseRequestVerb(verb));
  Result<std::string> out = DispatchImpl(tenant_name, verb, payload);
  guard.Finish(out.status());
  return out;
}

Result<std::string> AdvisorService::DispatchImpl(std::string_view tenant_name,
                                                 std::string_view verb,
                                                 std::string_view payload) {
  SNAKES_ASSIGN_OR_RETURN(TenantId id, FindTenant(tenant_name));
  SNAKES_ASSIGN_OR_RETURN(Tenant * tenant, Find(id));
  TagRequestTenant(id);

  const auto parse_query = [&]() -> Result<GridQuery> {
    if (tenant->tables.empty()) {
      return Status::FailedPrecondition(
          "tenant '" + tenant->name +
          "' registered no dimension tables; textual queries are disabled");
    }
    return ParseGridQuery(*tenant->schema, tenant->tables, payload);
  };

  if (verb == "advise") {
    SNAKES_ASSIGN_OR_RETURN(Recommendation rec, Advise(id));
    if (!rec.has_best()) {
      return Status::InvalidArgument("no strategy applies to the schema");
    }
    return "best " + rec.best().name + " cost " +
           FormatDouble(rec.best().expected_cost, 4) + " (" +
           std::to_string(rec.ranked.size()) + " strategies)";
  }
  if (verb == "ingest") {
    SNAKES_ASSIGN_OR_RETURN(GridQuery query, parse_query());
    SNAKES_RETURN_IF_ERROR(Ingest(id, query));
    return std::string("ingested " + query.ToString());
  }
  if (verb == "query") {
    SNAKES_ASSIGN_OR_RETURN(GridQuery query, parse_query());
    SNAKES_ASSIGN_OR_RETURN(QueryAnswer answer, Query(id, query));
    return "count " + std::to_string(answer.count) + " sum " +
           FormatDouble(answer.sum, 2) + " pages " +
           std::to_string(answer.io.pages) + " seeks " +
           std::to_string(answer.io.seeks);
  }
  if (verb == "measure") {
    SNAKES_ASSIGN_OR_RETURN(GridQuery query, parse_query());
    SNAKES_ASSIGN_OR_RETURN(QueryIo io, Measure(id, query));
    return "records " + std::to_string(io.records) + " pages " +
           std::to_string(io.pages) + " seeks " + std::to_string(io.seeks);
  }
  if (verb == "end-epoch") {
    SNAKES_ASSIGN_OR_RETURN(uint64_t epoch, EndEpoch(id));
    return "closed epoch " + std::to_string(epoch);
  }
  if (verb == "recluster") {
    SNAKES_ASSIGN_OR_RETURN(EpochReport report, ReclusterNow(id));
    return std::string(ReclusterDecisionName(report.decision)) + " " +
           report.proposed_strategy;
  }
  if (verb == "status") {
    SNAKES_ASSIGN_OR_RETURN(TenantStatus status, StatusOf(id));
    return status.ToString();
  }
  if (verb == "backend") {
    if (payload.empty()) {
      std::lock_guard<std::mutex> lock(tenant->recluster_mu);
      return "backend " +
             std::string(StorageBackendKindName(tenant->engine.backend_kind()));
    }
    SNAKES_ASSIGN_OR_RETURN(StorageBackendKind kind,
                            ParseStorageBackendKind(payload));
    SNAKES_RETURN_IF_ERROR(SetBackend(id, kind));
    return "backend " + std::string(StorageBackendKindName(kind));
  }
  if (verb == "costmodel") {
    //   costmodel                         -> report the live model's JSON
    //   costmodel analytic|hdd|ssd        -> switch to a preset
    //   costmodel calibrated <json|path>  -> load fitted coefficients
    if (payload.empty()) {
      std::lock_guard<std::mutex> lock(tenant->state_mu);
      return "costmodel " + tenant->cost_model->name() + " " +
             tenant->cost_model->ToJson();
    }
    const size_t space = payload.find(' ');
    CostModelSpec spec;
    SNAKES_ASSIGN_OR_RETURN(spec.kind,
                            ParseCostModelKind(payload.substr(0, space)));
    if (space != std::string_view::npos) {
      spec.calibrated_json =
          std::string(TrimWhitespace(payload.substr(space + 1)));
    }
    SNAKES_RETURN_IF_ERROR(SetCostModel(id, spec));
    return "costmodel " + std::string(CostModelKindName(spec.kind));
  }
  if (verb == "telemetry") {
    // Service-wide telemetry, reachable from any registered tenant:
    //   telemetry [json]   -> full snapshot as JSON
    //   telemetry prom     -> Prometheus text exposition
    //   telemetry recorder -> flight-recorder dump only
    //   telemetry advance  -> rotate the SLO windows (sampler-less mode)
    if (payload.empty() || payload == "json") {
      return Telemetry().ToJson(/*pretty=*/true);
    }
    if (payload == "prom" || payload == "prometheus") {
      return Telemetry().ToPrometheus();
    }
    if (payload == "recorder") return recorder_.ToJson(/*pretty=*/true);
    if (payload == "advance") {
      AdvanceSloWindows();
      return std::string("advanced slo windows");
    }
    return Status::InvalidArgument("unknown telemetry format '" +
                                   std::string(payload) + "'");
  }
  return Status::InvalidArgument("unknown request verb '" +
                                 std::string(verb) + "'");
}

TelemetrySnapshot AdvisorService::Telemetry() const {
  TelemetrySnapshot snap;
  snap.now_ns = NowNs();
  snap.recorder_capacity = recorder_.capacity();
  snap.recorder_recorded = recorder_.recorded();
  snap.requests = recorder_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    snap.tenants.reserve(tenants_.size());
    for (const auto& tenant : tenants_) {
      TenantTelemetry t;
      t.tenant = tenant->id;
      t.name = tenant->name;
      t.slo = tenant->slo.Snap();
      const uint64_t published =
          tenant->last_publish_ns.load(std::memory_order_relaxed);
      t.epoch_age_ns = snap.now_ns >= published ? snap.now_ns - published : 0;
      {
        std::lock_guard<std::mutex> epoch_lock(tenant->epoch_mu);
        t.published_sequence = tenant->published_sequence;
      }
      {
        std::lock_guard<std::mutex> state_lock(tenant->state_mu);
        t.cost_model = tenant->cost_model->name();
      }
      const uint64_t scheduled =
          tenant->reclusters_scheduled.load(std::memory_order_relaxed);
      const uint64_t completed =
          tenant->reclusters_completed.load(std::memory_order_relaxed);
      t.recluster_backlog = scheduled >= completed ? scheduled - completed : 0;
      snap.tenants.push_back(std::move(t));
    }
  }
  snap.audit = audit_.Snapshot();
  if (config_.obs.tracer != nullptr) {
    snap.trace_spans = config_.obs.tracer->num_events();
    snap.trace_dropped_spans = config_.obs.tracer->dropped_spans();
  }
  return snap;
}

}  // namespace snakes
