#ifndef SNAKES_SERVICE_TELEMETRY_H_
#define SNAKES_SERVICE_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/slo_window.h"
#include "recluster/engine.h"

namespace snakes {

/// Knobs of the advisor service's always-on telemetry layer.
struct TelemetryConfig {
  /// Completed requests the flight recorder retains.
  size_t recorder_capacity = FlightRecorder::kDefaultCapacity;
  /// Time slices per tenant SLO window.
  int slo_buckets = SloWindow::kDefaultBuckets;
  /// Sampler thread cadence: every interval it rotates the SLO windows and
  /// refreshes the per-tenant health gauges. 0 disables the thread —
  /// windows then rotate only via AdvisorService::AdvanceSloWindows() (the
  /// deterministic mode unit tests rely on).
  uint64_t sampler_interval_ms = 0;
  /// Recluster decisions the audit log retains.
  size_t audit_capacity = 1024;
  /// File the flight recorder dumps itself to when the first request
  /// finishes with a non-OK status. Empty disables the automatic dump (the
  /// one-shot error hook still counts via service.requests.errors).
  std::string error_dump_path;
};

/// One audited ReclusterDecision with the inputs that produced it — enough
/// to answer "why did (or didn't) tenant X recluster at epoch N" after the
/// fact, without re-running the engine.
struct ReclusterAuditEntry {
  uint64_t sequence = 0;    // audit-log order (stamped by Record)
  uint64_t timestamp_ns = 0;  // service clock
  /// Request the decision ran under (0 = none, e.g. registration).
  uint64_t request_id = 0;
  uint64_t tenant = 0;
  uint64_t engine_epoch = 0;
  ReclusterDecision decision = ReclusterDecision::kKeepDriftBelowThreshold;
  // ---- inputs ----
  double drift = 0.0;               // total-variation drift of the epoch
  uint64_t budget_pages = 0;        // movement_budget_pages in force
  // ---- outputs ----
  double current_cost = 0.0;
  double proposed_cost = 0.0;
  double relative_improvement = 0.0;
  double net_benefit = 0.0;
  uint64_t pages_moved = 0;
  std::string current_strategy;
  std::string proposed_strategy;

  /// One-line JSON object.
  std::string ToJson() const;
};

/// Bounded, mutex-protected log of recluster decisions, oldest dropped
/// first. Decisions are rare (one per tenant epoch) and already serialized
/// per tenant by recluster_mu, so a short lock is the right tool here — the
/// lock-free machinery stays reserved for the per-request recorder.
class ReclusterAuditLog {
 public:
  explicit ReclusterAuditLog(size_t capacity = 1024);
  ReclusterAuditLog(const ReclusterAuditLog&) = delete;
  ReclusterAuditLog& operator=(const ReclusterAuditLog&) = delete;

  /// Appends `entry`, stamping its sequence number.
  void Record(ReclusterAuditEntry entry);

  size_t capacity() const { return capacity_; }
  /// Entries ever recorded (>= Snapshot().size()).
  uint64_t recorded() const;

  /// Copy of the resident entries, oldest first.
  std::vector<ReclusterAuditEntry> Snapshot() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t recorded_ = 0;
  std::deque<ReclusterAuditEntry> entries_;
};

/// One tenant's health in a telemetry snapshot.
struct TenantTelemetry {
  uint64_t tenant = 0;
  std::string name;
  SloWindow::Snapshot slo;
  /// Nanoseconds since the tenant's epoch was last published.
  uint64_t epoch_age_ns = 0;
  uint64_t published_sequence = 0;
  /// Background reclusters scheduled but not yet finished.
  uint64_t recluster_backlog = 0;
  /// Name of the tenant's live cost model ("analytic" / "hdd" / ...).
  std::string cost_model;
};

/// Point-in-time view of the whole telemetry layer, detached from the
/// service. Serializes as JSON (machines) or Prometheus text exposition
/// (scrapers); both renderings come from the same snapshot, so they always
/// agree.
struct TelemetrySnapshot {
  uint64_t now_ns = 0;  // service clock at snapshot time
  // ---- flight recorder ----
  uint64_t recorder_capacity = 0;
  uint64_t recorder_recorded = 0;
  std::vector<RequestRecord> requests;  // sorted by id
  // ---- per-tenant SLO ----
  std::vector<TenantTelemetry> tenants;
  // ---- recluster audit ----
  std::vector<ReclusterAuditEntry> audit;
  // ---- tracer ----
  uint64_t trace_spans = 0;
  uint64_t trace_dropped_spans = 0;

  /// {"now_ns": .., "recorder": {..}, "tenants": [..], "audit": [..],
  ///  "trace": {..}}.
  std::string ToJson(bool pretty = true) const;

  /// Prometheus text exposition (one "# TYPE" line per metric family;
  /// summaries carry quantile labels). Tenant and verb label values are
  /// escaped per the exposition format.
  std::string ToPrometheus() const;
};

}  // namespace snakes

#endif  // SNAKES_SERVICE_TELEMETRY_H_
