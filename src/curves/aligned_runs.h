#ifndef SNAKES_CURVES_ALIGNED_RUNS_H_
#define SNAKES_CURVES_ALIGNED_RUNS_H_

#include <cstdint>
#include <vector>

#include "curves/linearization.h"

namespace snakes {
namespace curve_internal {

/// Per-depth geometry of a bit-hierarchical curve (Z, Gray, Hilbert): fixing
/// the `j` most significant rank bits pins an axis-aligned box whose
/// per-dimension widths are powers of two. `subtree_cells[j]` is the rank
/// count of a depth-j subtree (subtree_cells[0] == num_cells, back() == 1)
/// and `width[j]` its per-dimension box widths.
struct AlignedLevels {
  std::vector<uint64_t> subtree_cells;
  std::vector<CellCoord> width;
};

/// BIGMIN-style pruned subdivision: starting from the whole curve, descend
/// only into subtrees whose aligned box intersects `box`, emitting fully
/// contained subtrees as single rank runs. The subtree base box is recovered
/// from CellAt(first rank) by masking off the low bits, so the recursion
/// needs no per-curve geometry beyond `levels`. Children of a subtree are
/// rank-ordered, so runs come out sorted; O(runs * depth) CellAt calls.
void AppendAlignedRuns(const Linearization& lin, const AlignedLevels& levels,
                       const CellBox& box, std::vector<RankRun>* runs);

/// Batched form of the same subdivision for *all* queries of a lattice
/// class at once. The class's query boxes tile the grid, so a single
/// unpruned descent suffices: every subtree is either contained in exactly
/// one query box (all dimensions stay inside one hierarchy block at the
/// class level — emit one run for that query) or straddles a block boundary
/// (descend). Runs are emitted in global rank order, so per-query lists come
/// out sorted and coalesced in the arena; sibling boxes share all recursion
/// prefixes instead of re-descending from the root per box.
void AppendAlignedClassRuns(const Linearization& lin,
                            const AlignedLevels& levels, const QueryClass& cls,
                            RunArena* arena);

}  // namespace curve_internal
}  // namespace snakes

#endif  // SNAKES_CURVES_ALIGNED_RUNS_H_
