#ifndef SNAKES_CURVES_HILBERT_H_
#define SNAKES_CURVES_HILBERT_H_

#include <memory>
#include <string>
#include <vector>

#include "curves/aligned_runs.h"
#include "curves/bit_interleave.h"
#include "curves/linearization.h"

namespace snakes {

/// The Hilbert space-filling curve (Faloutsos & Roseman; Jagadish 1990) — the
/// strongest classical baseline in the paper's related work. Implemented with
/// Skilling's transpose algorithm, which supports any dimensionality k >= 2
/// with equal power-of-two extents (2^b per dimension).
///
/// Consecutive cells always differ by 1 in exactly one dimension, so the
/// Hilbert curve is a non-diagonal strategy in the paper's terminology.
///
/// `swap_first_two` reflects the curve by exchanging the roles of the first
/// two dimensions; the paper's Figure 2(b) orientation on the toy grid
/// corresponds to one of the two settings (pinned by the Table 1 tests).
class HilbertCurve : public Linearization {
 public:
  static Result<std::unique_ptr<HilbertCurve>> Make(
      std::shared_ptr<const StarSchema> schema, bool swap_first_two = false);

  std::string name() const override { return "hilbert"; }
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  /// Box-pruned subdivision one full level (k bits) at a time: each level-j
  /// subtree is one orthant box of width 2^(bits-j). Partial levels are not
  /// usable here — sub-orthant orientations rotate, so which dimension a
  /// lone bit halves varies per subtree.
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;
  bool HasRunDecomposition() const override { return true; }
  /// Same whole-level orthant subdivision as AppendRuns, batched over every
  /// query of the class in one pass. Degeneracy detection stays with the
  /// base single-cell-query test: sub-orthant rotations make a closed-form
  /// edge analysis per class unprofitable.
  void AppendClassRuns(const QueryClass& cls, RunArena* arena) const override;

 private:
  HilbertCurve(std::shared_ptr<const StarSchema> schema, int bits,
               bool swap_first_two);

  int bits_;   // bits per dimension (equal extents 2^bits_)
  bool swap_;  // exchange dimensions 0 and 1
  // pext/pdep masks for the rank <-> transpose bit redistribution and the
  // cached whole-level orthant geometry for run emission.
  curve_internal::TransposeMasks masks_;
  curve_internal::AlignedLevels levels_;
};

namespace curve_internal {

/// Skilling's TransposetoAxes: converts the transposed Hilbert index (one
/// word of `bits` bits per dimension) into axis coordinates, in place.
void HilbertTransposeToAxes(uint32_t* x, int bits, int dims);

/// Skilling's AxestoTranspose: inverse of HilbertTransposeToAxes.
void HilbertAxesToTranspose(uint32_t* x, int bits, int dims);

}  // namespace curve_internal

}  // namespace snakes

#endif  // SNAKES_CURVES_HILBERT_H_
