#ifndef SNAKES_CURVES_BIT_INTERLEAVE_H_
#define SNAKES_CURVES_BIT_INTERLEAVE_H_

#include <cstdint>
#include <vector>

#include "hierarchy/star_schema.h"

namespace snakes {
namespace curve_internal {

/// Bit scatter/gather kernels behind the interleaved curves (Z, Gray,
/// Hilbert). Interleaving a coordinate vector is exactly a parallel bit
/// deposit per dimension (pdep) and de-interleaving a parallel bit extract
/// (pext), so on x86 with BMI2 the whole CellAt/RankOf bit loop collapses to
/// k instructions. A bit-identical portable fallback is always compiled; the
/// choice is made once at runtime (see ActiveKernel below) and can be forced
/// to the fallback three ways, strongest first:
///
///   * building with -DSNAKES_FORCE_PORTABLE_KERNELS=ON (compile-time pin,
///     the tools/check.sh fallback leg);
///   * exporting SNAKES_FORCE_PORTABLE_KERNELS=1 in the environment;
///   * calling ForcePortableKernels(true) (the in-process test hook).
///
/// Every kernel produces the same bits on every path — the differential
/// suite in tests/bit_interleave_test.cc enforces it — so advisor
/// recommendations and simulator measurements never depend on the host CPU.

/// Reference bit-serial pdep: deposits the low bits of `src` into the set
/// positions of `mask`, lowest first.
uint64_t PortablePdep(uint64_t src, uint64_t mask);

/// Reference bit-serial pext: gathers the bits of `src` at the set positions
/// of `mask` into the low bits of the result, lowest first.
uint64_t PortablePext(uint64_t src, uint64_t mask);

/// True when the host CPU executes BMI2 (always false off x86-64).
bool Bmi2Supported();

#if defined(__x86_64__)
/// Hardware kernels, compiled with a function-level "bmi2" target so the
/// rest of the library keeps its baseline ISA. Call only when
/// Bmi2Supported(); exposed raw for the differential parity tests.
uint64_t Bmi2Pdep(uint64_t src, uint64_t mask);
uint64_t Bmi2Pext(uint64_t src, uint64_t mask);
#endif

enum class KernelKind { kPortable, kBmi2 };

/// The kernel the dispatched entry points below currently use.
KernelKind ActiveKernel();

/// Test hook: `true` pins the portable kernels; `false` re-derives the
/// default from the build pin, the environment variable and the CPU. Takes
/// effect process-wide, including already-constructed curves (they hold
/// masks, not kernel choices).
void ForcePortableKernels(bool force);

/// True when the build was configured with SNAKES_FORCE_PORTABLE_KERNELS=ON
/// (ForcePortableKernels(false) cannot re-enable BMI2 in that case).
bool KernelsForcedPortableAtBuild();

/// Per-dimension scatter masks for a round-robin interleaved code:
/// mask[d] has interleaved bit p set iff bit_owner[p] == d. Because each
/// dimension's bits appear in increasing significance, Interleave is exactly
/// sum_d pdep(coord[d], mask[d]) and Deinterleave coord[d] = pext(v, mask[d]).
struct InterleaveMasks {
  FixedVector<uint64_t, kMaxDimensions> mask;
  int total_bits = 0;
};

InterleaveMasks MakeInterleaveMasks(const std::vector<int>& bit_owner,
                                    int num_dims);

/// Kernel-dispatched Interleave/Deinterleave; bit-identical to the scalar
/// curve_internal::Interleave/Deinterleave reference on every input.
uint64_t InterleaveBits(const InterleaveMasks& masks, const CellCoord& coord);
CellCoord DeinterleaveBits(const InterleaveMasks& masks, uint64_t value);

/// Inverse of the binary-reflected Gray code by prefix-XOR doubling:
/// identical bits to the serial `while (g >>= 1) r ^= g` loop in O(log w).
uint64_t GrayCodeToRank(uint64_t gray);

/// Strided masks for the Hilbert transpose form: rank bit q belongs to
/// dimension (total - 1 - q) mod k, ascending q ascending local bit, so the
/// distribute/collect loops in CellAt/RankOf are one pext/pdep per dimension.
struct TransposeMasks {
  FixedVector<uint64_t, kMaxDimensions> mask;
  int total_bits = 0;
};

TransposeMasks MakeTransposeMasks(int bits, int dims);

/// rank -> transpose words x[0..dims) (each holding `bits` bits).
void RankToTranspose(const TransposeMasks& masks, uint64_t rank, uint32_t* x);

/// transpose words -> rank (inverse of RankToTranspose).
uint64_t TransposeToRank(const TransposeMasks& masks, const uint32_t* x);

}  // namespace curve_internal
}  // namespace snakes

#endif  // SNAKES_CURVES_BIT_INTERLEAVE_H_
