#ifndef SNAKES_CURVES_Z_CURVE_H_
#define SNAKES_CURVES_Z_CURVE_H_

#include <memory>
#include <string>
#include <vector>

#include "curves/aligned_runs.h"
#include "curves/bit_interleave.h"
#include "curves/linearization.h"

namespace snakes {

/// The Z-order (bit-interleaving / Morton) curve of Orenstein & Merrett,
/// one of the classical linearizations the paper compares against.
///
/// Requires every dimension extent to be a power of two. Unequal extents are
/// handled by round-robin bit allocation: bit positions cycle over the
/// dimensions that still have bits left, least significant first (dimension
/// k-1 owns the lowest bit so the innermost 2x..x2 block is ordered like
/// row-major, matching the paper's Figure 2(a)).
class ZCurve : public Linearization {
 public:
  static Result<std::unique_ptr<ZCurve>> Make(
      std::shared_ptr<const StarSchema> schema);

  std::string name() const override { return "z-curve"; }
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  /// Box-pruned per-bit subdivision (BIGMIN-style): a fixed high-bit prefix
  /// of the rank pins an aligned box, so subtrees outside the query are
  /// skipped and contained ones emit whole runs.
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;
  bool HasRunDecomposition() const override { return true; }

  void AppendClassRuns(const QueryClass& cls, RunArena* arena) const override;
  bool ClassRunsDegenerate(const QueryClass& cls) const override;

 private:
  ZCurve(std::shared_ptr<const StarSchema> schema, std::vector<int> bit_owner);

  // bit_owner_[p] = dimension owning interleaved bit p (p = 0 is the LSB);
  // bits of each dimension appear in increasing significance.
  std::vector<int> bit_owner_;
  // Kernel masks and aligned per-bit geometry derived from bit_owner_ once
  // at construction (the scalar reference path keeps using bit_owner_).
  curve_internal::InterleaveMasks masks_;
  curve_internal::AlignedLevels levels_;
};

/// The Gray-code curve (Faloutsos): cells are visited in the order of the
/// binary-reflected Gray code of their interleaved bit representation.
/// Same extent requirements and bit allocation as ZCurve.
class GrayCurve : public Linearization {
 public:
  static Result<std::unique_ptr<GrayCurve>> Make(
      std::shared_ptr<const StarSchema> schema);

  std::string name() const override { return "gray-curve"; }
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  /// Same per-bit subdivision as ZCurve: the top j Gray bits depend only on
  /// the top j rank bits, so fixed rank prefixes pin aligned boxes here too.
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;
  bool HasRunDecomposition() const override { return true; }

  void AppendClassRuns(const QueryClass& cls, RunArena* arena) const override;
  bool ClassRunsDegenerate(const QueryClass& cls) const override;

 private:
  GrayCurve(std::shared_ptr<const StarSchema> schema,
            std::vector<int> bit_owner);

  std::vector<int> bit_owner_;
  curve_internal::InterleaveMasks masks_;
  curve_internal::AlignedLevels levels_;
};

namespace curve_internal {

/// Round-robin interleaved bit ownership for power-of-two extents; shared by
/// ZCurve and GrayCurve. Returns an error if any extent is not a power of 2.
Result<std::vector<int>> AllocateBits(const StarSchema& schema);

/// Scatter per-dimension coordinates into an interleaved integer.
uint64_t Interleave(const std::vector<int>& bit_owner, const CellCoord& coord);

/// Inverse of Interleave.
CellCoord Deinterleave(const std::vector<int>& bit_owner, int num_dims,
                       uint64_t value);

}  // namespace curve_internal

}  // namespace snakes

#endif  // SNAKES_CURVES_Z_CURVE_H_
