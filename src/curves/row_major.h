#ifndef SNAKES_CURVES_ROW_MAJOR_H_
#define SNAKES_CURVES_ROW_MAJOR_H_

#include <memory>
#include <string>
#include <vector>

#include "curves/linearization.h"

namespace snakes {

/// Row-major clustering with an arbitrary axis order: the first dimension in
/// `outer_to_inner` varies slowest. The paper's Section 6 baseline family is
/// the k! row-major orders of a schema; on the lattice these are exactly the
/// "staircase-free" paths that exhaust one dimension at a time.
class RowMajorOrder : public Linearization {
 public:
  /// Fails unless `outer_to_inner` is a permutation of the dimensions.
  static Result<std::unique_ptr<RowMajorOrder>> Make(
      std::shared_ptr<const StarSchema> schema,
      std::vector<int> outer_to_inner);

  std::string name() const override;
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  void Walk(const std::function<void(uint64_t, const CellCoord&)>& fn)
      const override;
  /// Closed form: the box permuted into position space is itself a box of a
  /// plain row-major grid. O(runs).
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;
  bool HasRunDecomposition() const override { return true; }

  const std::vector<int>& outer_to_inner() const { return order_; }

 private:
  RowMajorOrder(std::shared_ptr<const StarSchema> schema,
                std::vector<int> order, std::vector<uint64_t> strides);

  std::vector<int> order_;        // outermost first
  std::vector<uint64_t> strides_; // stride of each position in order_
  RowMajorBoxEmitter emitter_;    // fixed position-space grid, set up once
};

/// All k! row-major orders of `schema` (the Section 6 baseline family).
std::vector<std::unique_ptr<RowMajorOrder>> AllRowMajorOrders(
    std::shared_ptr<const StarSchema> schema);

}  // namespace snakes

#endif  // SNAKES_CURVES_ROW_MAJOR_H_
