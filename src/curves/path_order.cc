#include "curves/path_order.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

namespace {

Status CheckPathMatchesSchema(const StarSchema& schema,
                              const LatticePath& path) {
  const QueryClassLattice& lat = path.lattice();
  if (lat.num_dims() != schema.num_dims()) {
    return Status::InvalidArgument("path lattice dimensionality mismatch");
  }
  for (int d = 0; d < schema.num_dims(); ++d) {
    if (lat.levels(d) != schema.dim(d).num_levels()) {
      return Status::InvalidArgument("path lattice level mismatch in dim " +
                                     schema.dim(d).name());
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PathOrder>> PathOrder::Make(
    std::shared_ptr<const StarSchema> schema, const LatticePath& path,
    bool snaked) {
  SNAKES_RETURN_IF_ERROR(CheckPathMatchesSchema(*schema, path));
  for (int d = 0; d < schema->num_dims(); ++d) {
    if (!schema->dim(d).is_uniform()) {
      return Status::InvalidArgument(
          "PathOrder requires uniform hierarchies; use MakePathOrder");
    }
  }
  // Walk the path bottom-up, tracking the level reached per dimension.
  std::vector<LoopDigit> digits;
  digits.reserve(path.steps().size());
  std::vector<int> level(static_cast<size_t>(schema->num_dims()), 0);
  uint64_t place = 1;
  for (int d : path.steps()) {
    const Hierarchy& h = schema->dim(d);
    LoopDigit digit;
    digit.dim = d;
    digit.level = level[static_cast<size_t>(d)] + 1;
    digit.radix = h.uniform_fanout(digit.level);
    digit.place = place;
    // Leaves covered by one step of this loop: the size of a block one level
    // below the edge's upper end.
    uint64_t unit = 1;
    for (int i = 1; i < digit.level; ++i) unit *= h.uniform_fanout(i);
    digit.coord_unit = unit;
    place = CheckedMul(place, digit.radix);
    digits.push_back(digit);
    ++level[static_cast<size_t>(d)];
  }
  SNAKES_CHECK(place == schema->num_cells())
      << "loop radices do not cover the grid";
  return std::unique_ptr<PathOrder>(
      new PathOrder(std::move(schema), path, snaked, std::move(digits)));
}

std::string PathOrder::name() const {
  return std::string(snaked_ ? "snaked-path " : "path ") + path_.ToString();
}

CellCoord PathOrder::CellAt(uint64_t rank) const {
  CellCoord coord;
  coord.resize(static_cast<size_t>(schema().num_dims()));
  for (const LoopDigit& digit : digits_) {
    uint64_t value = (rank / digit.place) % digit.radix;
    if (snaked_) {
      const uint64_t sweeps = rank / (digit.place * digit.radix);
      if (sweeps & 1) value = digit.radix - 1 - value;
    }
    coord[static_cast<size_t>(digit.dim)] += value * digit.coord_unit;
  }
  return coord;
}

uint64_t PathOrder::RankOf(const CellCoord& coord) const {
  // Per-digit values in grid terms: the block index at the digit's lower
  // level, relative to its parent block.
  if (!snaked_) {
    uint64_t rank = 0;
    for (const LoopDigit& digit : digits_) {
      const uint64_t value =
          (coord[static_cast<size_t>(digit.dim)] / digit.coord_unit) %
          digit.radix;
      rank += value * digit.place;
    }
    return rank;
  }
  // Snaked: recover raw digits outermost-first; the direction of each digit
  // depends on the parity of the integer formed by the raw digits above it.
  uint64_t q = 0;
  for (auto it = digits_.rbegin(); it != digits_.rend(); ++it) {
    const LoopDigit& digit = *it;
    const uint64_t value =
        (coord[static_cast<size_t>(digit.dim)] / digit.coord_unit) %
        digit.radix;
    const uint64_t raw = (q & 1) ? digit.radix - 1 - value : value;
    q = q * digit.radix + raw;
  }
  return q;
}

namespace {

/// Digit-prefix recursion shared state for PathOrder::AppendRuns. A node is
/// the set of cells whose raw digits above index `i` are fixed: a box
/// [base, base + width) of the grid occupying ranks [rank_base, rank_base +
/// place_{i} * radix_{i}). Children are visited in raw-digit order, which is
/// ascending rank order, so runs come out sorted.
class PathRunEmitter {
 public:
  PathRunEmitter(const std::vector<PathOrder::LoopDigit>& digits, bool snaked,
                 const CellBox& box, std::vector<RankRun>* out)
      : digits_(digits),
        snaked_(snaked),
        box_(box),
        out_(out),
        floor_(out->size()) {}

  void Emit(const CellCoord& extents) {
    const size_t k = box_.lo.size();
    for (size_t d = 0; d < k; ++d) {
      if (box_.hi[d] <= box_.lo[d]) return;
    }
    CellCoord base;
    base.resize(k);
    Recurse(static_cast<int>(digits_.size()) - 1, 0, base, extents,
            /*parity=*/false);
  }

 private:
  uint64_t SubtreeCells(int i) const {
    return i < 0 ? 1 : digits_[static_cast<size_t>(i)].place *
                           digits_[static_cast<size_t>(i)].radix;
  }

  /// `parity` is the parity of the integer formed by the raw digits above
  /// index `i` — exactly the sweep count CellAt uses for digit i.
  void Recurse(int i, uint64_t rank_base, const CellCoord& base,
               const CellCoord& width, bool parity) {
    const size_t k = base.size();
    bool contained = true;
    for (size_t d = 0; d < k; ++d) {
      const uint64_t node_lo = base[d];
      const uint64_t node_hi = base[d] + width[d];
      if (node_hi <= box_.lo[d] || node_lo >= box_.hi[d]) return;  // disjoint
      contained =
          contained && box_.lo[d] <= node_lo && node_hi <= box_.hi[d];
    }
    if (contained) {
      AppendRun(out_, floor_, rank_base, SubtreeCells(i));
      return;
    }
    SNAKES_DCHECK(i >= 0);  // a single cell is contained or disjoint
    const PathOrder::LoopDigit& digit = digits_[static_cast<size_t>(i)];
    const size_t dim = static_cast<size_t>(digit.dim);
    if (i == 0) {
      // Innermost digit: place == 1 and coord_unit == 1, so the node is a
      // row of consecutive ranks — emit its clipped stretch directly rather
      // than recursing per cell.
      const uint64_t lo = std::max(box_.lo[dim], base[dim]);
      const uint64_t hi = std::min(box_.hi[dim], base[dim] + digit.radix);
      const uint64_t start = (snaked_ && parity)
                                 ? rank_base + base[dim] + digit.radix - hi
                                 : rank_base + lo - base[dim];
      AppendRun(out_, floor_, start, hi - lo);
      return;
    }
    CellCoord child_base = base;
    CellCoord child_width = width;
    child_width[dim] = digit.coord_unit;
    for (uint64_t raw = 0; raw < digit.radix; ++raw) {
      const uint64_t value =
          (snaked_ && parity) ? digit.radix - 1 - raw : raw;
      child_base[dim] = base[dim] + value * digit.coord_unit;
      const bool child_parity =
          snaked_ && ((parity && (digit.radix & 1)) != ((raw & 1) != 0));
      Recurse(i - 1, rank_base + raw * digit.place, child_base, child_width,
              child_parity);
    }
  }

  const std::vector<PathOrder::LoopDigit>& digits_;
  const bool snaked_;
  const CellBox& box_;
  std::vector<RankRun>* out_;
  const size_t floor_;
};

/// Batched digit recursion for a whole lattice class. Digits above index `i`
/// being fixed pins a box whose per-dimension widths are hierarchy block
/// sizes, and uniform blocks nest, so node-in-one-query containment depends
/// only on `i`: every dimension's reached level must be at or below the
/// class level. The constructor finds that cut depth once; Recurse then
/// descends without any per-node box tests and emits one run per cut node
/// into the arena, which coalesces adjacent runs of the same query (snaked
/// sweeps re-enter a query from the far end, so cross-node coalescing does
/// happen).
class PathClassEmitter {
 public:
  PathClassEmitter(const StarSchema& schema,
                   const std::vector<PathOrder::LoopDigit>& digits, bool snaked,
                   const QueryClass& cls, RunArena* arena)
      : digits_(digits),
        snaked_(snaked),
        arena_(arena),
        k_(static_cast<size_t>(schema.num_dims())) {
    qstride_.resize(k_);
    block_leaves_.resize(k_);
    uint64_t s = 1;
    for (size_t d = k_; d-- > 0;) {
      const Hierarchy& h = schema.dim(static_cast<int>(d));
      const int level = cls.level(static_cast<int>(d));
      qstride_[d] = s;
      s *= h.num_blocks(level);
      block_leaves_[d] = h.BlockLeafCount(level, 0);
    }
    // Walk down from the root fixing digits outermost-first until every
    // dimension's level is within the class level.
    FixedVector<int, kMaxDimensions> lvl(k_, 0);
    for (size_t d = 0; d < k_; ++d) {
      lvl[d] = schema.dim(static_cast<int>(d)).num_levels();
    }
    auto contained = [&] {
      for (size_t d = 0; d < k_; ++d) {
        if (lvl[d] > cls.level(static_cast<int>(d))) return false;
      }
      return true;
    };
    int i = static_cast<int>(digits_.size()) - 1;
    while (i >= 0 && !contained()) {
      const PathOrder::LoopDigit& digit = digits_[static_cast<size_t>(i)];
      lvl[static_cast<size_t>(digit.dim)] = digit.level - 1;
      --i;
    }
    cut_ = i;  // with all digits fixed every level is 0, so cut_ >= -1 holds
  }

  void Emit() {
    CellCoord base;
    base.resize(k_);
    Recurse(static_cast<int>(digits_.size()) - 1, 0, base, /*parity=*/false);
  }

 private:
  uint64_t SubtreeCells(int i) const {
    return i < 0 ? 1 : digits_[static_cast<size_t>(i)].place *
                           digits_[static_cast<size_t>(i)].radix;
  }

  void Recurse(int i, uint64_t rank_base, const CellCoord& base, bool parity) {
    if (i == cut_) {
      uint64_t qid = 0;
      for (size_t d = 0; d < k_; ++d) {
        qid += (base[d] / block_leaves_[d]) * qstride_[d];
      }
      arena_->Append(qid, rank_base, SubtreeCells(i));
      return;
    }
    const PathOrder::LoopDigit& digit = digits_[static_cast<size_t>(i)];
    const size_t dim = static_cast<size_t>(digit.dim);
    CellCoord child_base = base;
    for (uint64_t raw = 0; raw < digit.radix; ++raw) {
      const uint64_t value =
          (snaked_ && parity) ? digit.radix - 1 - raw : raw;
      child_base[dim] = base[dim] + value * digit.coord_unit;
      const bool child_parity =
          snaked_ && ((parity && (digit.radix & 1)) != ((raw & 1) != 0));
      Recurse(i - 1, rank_base + raw * digit.place, child_base, child_parity);
    }
  }

  const std::vector<PathOrder::LoopDigit>& digits_;
  const bool snaked_;
  RunArena* arena_;
  const size_t k_;
  FixedVector<uint64_t, kMaxDimensions> qstride_;
  FixedVector<uint64_t, kMaxDimensions> block_leaves_;
  int cut_;
};

}  // namespace

void PathOrder::AppendRuns(const CellBox& box,
                           std::vector<RankRun>* runs) const {
  const size_t k = static_cast<size_t>(schema().num_dims());
  SNAKES_DCHECK(box.lo.size() == k);
  CellCoord extents;
  extents.resize(k);
  for (size_t d = 0; d < k; ++d) {
    extents[d] = schema().extent(static_cast<int>(d));
  }
  PathRunEmitter emitter(digits_, snaked_, box, runs);
  emitter.Emit(extents);
}

void PathOrder::AppendClassRuns(const QueryClass& cls, RunArena* arena) const {
  arena->BeginClass(NumQueriesInClass(schema(), cls));
  PathClassEmitter emitter(schema(), digits_, snaked_, cls, arena);
  emitter.Emit();
}

bool PathOrder::ClassRunsDegenerate(const QueryClass& cls) const {
  if (snaked_) {
    // Every edge steps exactly one loop digit by +-1 within its parent
    // block; the step stays inside one query iff the class level of the
    // digit's dimension is at least the digit's level.
    for (const LoopDigit& digit : digits_) {
      if (digit.radix > 1 && cls.level(digit.dim) >= digit.level) return false;
    }
    return true;
  }
  // Unsnaked: every edge increments some digit and wraps all (nontrivial)
  // digits below it, so every edge moves the innermost nontrivial digit's
  // dimension. If the class absorbs that digit the very edges that only
  // step it are absorbed; if not, no edge anywhere is.
  for (const LoopDigit& digit : digits_) {
    if (digit.radix > 1) return cls.level(digit.dim) < digit.level;
  }
  return true;  // single-cell grid: no edges at all
}

void PathOrder::Walk(
    const std::function<void(uint64_t, const CellCoord&)>& fn) const {
  // Odometer over raw digits with per-digit direction state: equivalent to
  // CellAt for every rank but with O(1) amortized work per step.
  const size_t t = digits_.size();
  std::vector<uint64_t> raw(t, 0);
  CellCoord coord;
  coord.resize(static_cast<size_t>(schema().num_dims()));
  // Direction of each loop: false = ascending. With all raw digits zero all
  // sweep counts are zero, so all loops start ascending.
  std::vector<bool> descending(t, false);
  const uint64_t n = num_cells();
  for (uint64_t rank = 0; rank < n; ++rank) {
    fn(rank, coord);
    if (rank + 1 == n) break;
    // Increment innermost digit; on wrap, flip that loop's direction and
    // carry outward.
    for (size_t i = 0; i < t; ++i) {
      const LoopDigit& digit = digits_[i];
      const uint64_t value = raw[i];
      if (value + 1 < digit.radix) {
        raw[i] = value + 1;
        if (snaked_) {
          const int64_t delta = descending[i] ? -1 : 1;
          coord[static_cast<size_t>(digit.dim)] = static_cast<uint64_t>(
              static_cast<int64_t>(coord[static_cast<size_t>(digit.dim)]) +
              delta * static_cast<int64_t>(digit.coord_unit));
        } else {
          coord[static_cast<size_t>(digit.dim)] += digit.coord_unit;
        }
        break;
      }
      // Wrap this digit.
      raw[i] = 0;
      if (snaked_) {
        // The loop completed a sweep: its scan direction flips; the
        // coordinate stays where the sweep ended.
        descending[i] = !descending[i];
      } else {
        coord[static_cast<size_t>(digit.dim)] -=
            (digit.radix - 1) * digit.coord_unit;
      }
    }
  }
}

namespace {

/// Generative nested-loop sweep for non-uniform hierarchies. Produces the
/// flattened cell ids in path order (optionally snaked) by recursing from the
/// outermost loop inward; loop directions flip per re-entry when snaking.
class GenerativeSweep {
 public:
  GenerativeSweep(const StarSchema& schema, const LatticePath& path,
                  bool snaked)
      : schema_(schema), snaked_(snaked) {
    // Edges outermost-first, with the level they descend to per dimension.
    std::vector<int> level(static_cast<size_t>(schema.num_dims()), 0);
    for (int d : path.steps()) {
      ++level[static_cast<size_t>(d)];
      edges_.push_back({d, level[static_cast<size_t>(d)]});
    }
    std::reverse(edges_.begin(), edges_.end());
    sweeps_.assign(edges_.size(), 0);
    order_.reserve(schema.num_cells());
    // Start with every dimension at its single top block.
    FixedVector<uint64_t, kMaxDimensions> block(
        static_cast<size_t>(schema.num_dims()), 0);
    Recurse(0, block);
    SNAKES_CHECK(order_.size() == schema.num_cells());
  }

  std::vector<CellId> Take() { return std::move(order_); }

 private:
  struct Edge {
    int dim;
    int upper_level;  // loop enumerates level (upper_level - 1) children
  };

  // `block[d]` is the current block id of dimension d at its current level
  // (top level minus the number of processed edges of that dimension).
  void Recurse(size_t e, FixedVector<uint64_t, kMaxDimensions> block) {
    if (e == edges_.size()) {
      CellCoord coord;
      coord.resize(block.size());
      for (size_t d = 0; d < block.size(); ++d) coord[d] = block[d];
      order_.push_back(schema_.Flatten(coord));
      return;
    }
    const Edge& edge = edges_[e];
    const Hierarchy& h = schema_.dim(edge.dim);
    // Children of the current block: the level-(upper-1) blocks covering the
    // same leaves.
    uint64_t first_leaf, last_leaf;
    h.BlockLeafRange(edge.upper_level, block[static_cast<size_t>(edge.dim)],
                     &first_leaf, &last_leaf);
    const uint64_t child_lo = h.AncestorAt(first_leaf, edge.upper_level - 1);
    const uint64_t child_hi = h.AncestorAt(last_leaf - 1, edge.upper_level - 1);
    const bool reverse = snaked_ && (sweeps_[e] & 1);
    ++sweeps_[e];
    if (!reverse) {
      for (uint64_t c = child_lo; c <= child_hi; ++c) {
        block[static_cast<size_t>(edge.dim)] = c;
        Recurse(e + 1, block);
      }
    } else {
      for (uint64_t c = child_hi;; --c) {
        block[static_cast<size_t>(edge.dim)] = c;
        Recurse(e + 1, block);
        if (c == child_lo) break;
      }
    }
  }

  const StarSchema& schema_;
  const bool snaked_;
  std::vector<Edge> edges_;
  std::vector<uint64_t> sweeps_;
  std::vector<CellId> order_;
};

}  // namespace

Result<std::unique_ptr<Linearization>> MakePathOrder(
    std::shared_ptr<const StarSchema> schema, const LatticePath& path,
    bool snaked) {
  SNAKES_RETURN_IF_ERROR(CheckPathMatchesSchema(*schema, path));
  bool uniform = true;
  for (int d = 0; d < schema->num_dims(); ++d) {
    uniform = uniform && schema->dim(d).is_uniform();
  }
  if (uniform) {
    SNAKES_ASSIGN_OR_RETURN(std::unique_ptr<PathOrder> order,
                            PathOrder::Make(schema, path, snaked));
    return std::unique_ptr<Linearization>(std::move(order));
  }
  GenerativeSweep sweep(*schema, path, snaked);
  const std::string name =
      std::string(snaked ? "snaked-path " : "path ") + path.ToString();
  SNAKES_ASSIGN_OR_RETURN(
      std::unique_ptr<MaterializedLinearization> order,
      MaterializedLinearization::Make(schema, name, sweep.Take()));
  return std::unique_ptr<Linearization>(std::move(order));
}

}  // namespace snakes
