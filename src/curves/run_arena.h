#ifndef SNAKES_CURVES_RUN_ARENA_H_
#define SNAKES_CURVES_RUN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "curves/rank_run.h"
#include "util/logging.h"

namespace snakes {

/// Reusable storage for the run decompositions of every query of one lattice
/// class. Batched emitters (Linearization::AppendClassRuns) walk the curve
/// once and append (query id, run) pairs in global rank order; the arena
/// coalesces per query and keeps per-query counts, so cost measurement needs
/// neither a vector per query nor a regrouping pass — each query's runs
/// already arrive in ascending rank order within the emission-order list.
///
/// Lifetime contract: one arena serves one thread. BeginClass() resets the
/// logical contents for the next class while keeping every allocation, so an
/// arena threaded through a measurement loop (IoSimulator, ClassCostCache,
/// the advisor's per-strategy tasks) amortizes run storage across all
/// classes of all strategies it scores; results are bit-identical to fresh
/// vectors because no state other than capacity survives BeginClass().
class RunArena {
 public:
  /// Starts a new class with `num_queries` query boxes, forgetting all
  /// previously emitted runs (capacity is retained).
  void BeginClass(uint64_t num_queries);

  /// Appends rank interval [start, start + len) to query `qid`, merging into
  /// that query's previous run when adjacent. Starts must be non-decreasing
  /// per query (emitters that walk the curve in rank order satisfy this
  /// globally).
  void Append(uint64_t qid, uint64_t start, uint64_t len) {
    SNAKES_DCHECK(qid < per_query_last_.size());
    SNAKES_DCHECK(len > 0);
    const int64_t last = per_query_last_[qid];
    if (last >= 0 && runs_[static_cast<size_t>(last)].end() == start) {
      runs_[static_cast<size_t>(last)].len += len;
      return;
    }
    SNAKES_DCHECK(last < 0 || runs_[static_cast<size_t>(last)].end() < start);
    per_query_last_[qid] = static_cast<int64_t>(runs_.size());
    ++per_query_runs_[qid];
    runs_.push_back(RankRun{start, len});
    qids_.push_back(qid);
  }

  uint64_t num_queries() const { return per_query_runs_.size(); }

  /// Emitted runs in emission (global rank) order, after coalescing.
  size_t num_runs() const { return runs_.size(); }
  const RankRun& run(size_t i) const { return runs_[i]; }
  uint64_t run_qid(size_t i) const { return qids_[i]; }

  /// Coalesced run count of one query — its fragment count.
  uint64_t query_run_count(uint64_t qid) const { return per_query_runs_[qid]; }

  /// A reusable scratch vector for per-box decompositions (the default
  /// AppendClassRuns and other callers that still want a plain run list).
  /// Contents are caller-managed; unrelated to the class emission state.
  std::vector<RankRun>& scratch() { return scratch_; }

 private:
  std::vector<RankRun> runs_;       // emission order
  std::vector<uint64_t> qids_;      // qids_[i] owns runs_[i]
  std::vector<int64_t> per_query_last_;   // index into runs_, -1 = none
  std::vector<uint64_t> per_query_runs_;  // coalesced count per query
  std::vector<RankRun> scratch_;
};

}  // namespace snakes

#endif  // SNAKES_CURVES_RUN_ARENA_H_
