#include "curves/bit_interleave.h"

#include <atomic>
#include <cstdlib>

#include "util/logging.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace snakes {
namespace curve_internal {

uint64_t PortablePdep(uint64_t src, uint64_t mask) {
  uint64_t result = 0;
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    if (src & 1) result |= m & ~(m - 1);
    src >>= 1;
  }
  return result;
}

uint64_t PortablePext(uint64_t src, uint64_t mask) {
  uint64_t result = 0;
  uint64_t out_bit = 1;
  for (uint64_t m = mask; m != 0; m &= m - 1) {
    if (src & m & ~(m - 1)) result |= out_bit;
    out_bit <<= 1;
  }
  return result;
}

#if defined(__x86_64__)

__attribute__((target("bmi2"))) uint64_t Bmi2Pdep(uint64_t src, uint64_t mask) {
  return _pdep_u64(src, mask);
}

__attribute__((target("bmi2"))) uint64_t Bmi2Pext(uint64_t src, uint64_t mask) {
  return _pext_u64(src, mask);
}

bool Bmi2Supported() { return __builtin_cpu_supports("bmi2") != 0; }

#else

bool Bmi2Supported() { return false; }

#endif  // defined(__x86_64__)

namespace {

// -1 = unresolved, 0 = portable, 1 = BMI2. Resolved lazily so the
// environment override is read after main()'s setenv calls in tests.
std::atomic<int> g_kernel{-1};

int ResolveKernel() {
#if defined(SNAKES_FORCE_PORTABLE_KERNELS)
  return 0;
#else
  const char* env = std::getenv("SNAKES_FORCE_PORTABLE_KERNELS");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') return 0;
  return Bmi2Supported() ? 1 : 0;
#endif
}

inline int KernelIndex() {
  int k = g_kernel.load(std::memory_order_relaxed);
  if (k < 0) {
    k = ResolveKernel();
    g_kernel.store(k, std::memory_order_relaxed);
  }
  return k;
}

inline uint64_t Pdep(uint64_t src, uint64_t mask) {
#if defined(__x86_64__)
  if (KernelIndex() == 1) return Bmi2Pdep(src, mask);
#endif
  return PortablePdep(src, mask);
}

inline uint64_t Pext(uint64_t src, uint64_t mask) {
#if defined(__x86_64__)
  if (KernelIndex() == 1) return Bmi2Pext(src, mask);
#endif
  return PortablePext(src, mask);
}

}  // namespace

KernelKind ActiveKernel() {
  return KernelIndex() == 1 ? KernelKind::kBmi2 : KernelKind::kPortable;
}

void ForcePortableKernels(bool force) {
  g_kernel.store(force ? 0 : ResolveKernel(), std::memory_order_relaxed);
}

bool KernelsForcedPortableAtBuild() {
#if defined(SNAKES_FORCE_PORTABLE_KERNELS)
  return true;
#else
  return false;
#endif
}

InterleaveMasks MakeInterleaveMasks(const std::vector<int>& bit_owner,
                                    int num_dims) {
  SNAKES_CHECK(bit_owner.size() <= 64);
  InterleaveMasks masks;
  masks.mask.resize(num_dims);
  for (int d = 0; d < num_dims; ++d) masks.mask[d] = 0;
  masks.total_bits = static_cast<int>(bit_owner.size());
  for (size_t p = 0; p < bit_owner.size(); ++p) {
    SNAKES_CHECK(bit_owner[p] >= 0 && bit_owner[p] < num_dims);
    masks.mask[bit_owner[p]] |= uint64_t{1} << p;
  }
  return masks;
}

uint64_t InterleaveBits(const InterleaveMasks& masks, const CellCoord& coord) {
  uint64_t value = 0;
  for (size_t d = 0; d < masks.mask.size(); ++d) {
    value |= Pdep(coord[d], masks.mask[d]);
  }
  return value;
}

CellCoord DeinterleaveBits(const InterleaveMasks& masks, uint64_t value) {
  CellCoord coord;
  coord.resize(masks.mask.size());
  for (size_t d = 0; d < masks.mask.size(); ++d) {
    coord[d] = Pext(value, masks.mask[d]);
  }
  return coord;
}

uint64_t GrayCodeToRank(uint64_t gray) {
  // Prefix XOR over all higher bits, by doubling: after step s, each bit
  // holds the XOR of itself and the next (1 << s) - 1 higher bits. Equals
  // the serial `rank = gray; while (gray >>= 1) rank ^= gray;` loop.
  gray ^= gray >> 1;
  gray ^= gray >> 2;
  gray ^= gray >> 4;
  gray ^= gray >> 8;
  gray ^= gray >> 16;
  gray ^= gray >> 32;
  return gray;
}

TransposeMasks MakeTransposeMasks(int bits, int dims) {
  SNAKES_CHECK(bits > 0 && dims > 0 && bits * dims <= 62);
  TransposeMasks masks;
  masks.mask.resize(dims);
  for (int d = 0; d < dims; ++d) masks.mask[d] = 0;
  masks.total_bits = bits * dims;
  // Rank bit q (q = 0 is the LSB) carries local bit q / dims of dimension
  // (dims - 1 - q % dims): the most significant rank bit belongs to
  // dimension 0's top bit, matching the scalar distribution loop.
  for (int q = 0; q < bits * dims; ++q) {
    masks.mask[dims - 1 - q % dims] |= uint64_t{1} << q;
  }
  return masks;
}

void RankToTranspose(const TransposeMasks& masks, uint64_t rank, uint32_t* x) {
  for (size_t d = 0; d < masks.mask.size(); ++d) {
    x[d] = static_cast<uint32_t>(Pext(rank, masks.mask[d]));
  }
}

uint64_t TransposeToRank(const TransposeMasks& masks, const uint32_t* x) {
  uint64_t rank = 0;
  for (size_t d = 0; d < masks.mask.size(); ++d) {
    rank |= Pdep(x[d], masks.mask[d]);
  }
  return rank;
}

}  // namespace curve_internal
}  // namespace snakes
