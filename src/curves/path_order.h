#ifndef SNAKES_CURVES_PATH_ORDER_H_
#define SNAKES_CURVES_PATH_ORDER_H_

#include <memory>
#include <string>
#include <vector>

#include "curves/linearization.h"
#include "path/lattice_path.h"

namespace snakes {

/// The clustering strategy of a monotone lattice path (Section 3), with or
/// without snaking (Definition 5).
///
/// Each path edge, bottom-up, is one nested loop (innermost first): the edge
/// from (.., i_d, ..) to (.., i_d+1, ..) loops over the level-i_d children of
/// the current level-(i_d+1) block of dimension d. Executing the loops yields
/// a linear order over all cells.
///
/// Snaking reverses the direction of each loop index on every re-entry of
/// that loop (a boustrophedon at every level). Consecutive cells of a snaked
/// path order then differ in exactly one loop digit by +-1, so a snaked
/// lattice path has no diagonal edges — the structural fact behind Theorem 2.
///
/// This class is the closed-form implementation for uniform hierarchies
/// (every fanout exact). For schemas with varying per-node fanouts use
/// MakePathOrder, which falls back to a materialized generative order with
/// identical loop semantics.
class PathOrder : public Linearization {
 public:
  /// Fails unless every dimension of `schema` is uniform and `path` belongs
  /// to the schema's lattice shape.
  static Result<std::unique_ptr<PathOrder>> Make(
      std::shared_ptr<const StarSchema> schema, const LatticePath& path,
      bool snaked);

  std::string name() const override;
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  void Walk(const std::function<void(uint64_t, const CellCoord&)>& fn)
      const override;
  /// Recursion over the loop digits, outermost first: a digit prefix pins a
  /// box of cells and a range of ranks, so subtrees disjoint from `box` are
  /// pruned and contained ones emit a single run. Snaked direction flips are
  /// tracked by the parity of the outer raw digits. O(runs * digits).
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;
  bool HasRunDecomposition() const override { return true; }
  /// One unpruned digit recursion for the whole class. Hierarchy blocks nest
  /// and every digit prefix pins a block-aligned box, so whether a subtree
  /// lies inside a single query depends only on the recursion depth — the
  /// emitter descends to a fixed cut depth and emits one run per node there.
  void AppendClassRuns(const QueryClass& cls, RunArena* arena) const override;
  /// Exact for path orders: an edge between consecutive ranks changes the
  /// grid only in its incrementing loop digit (plus, unsnaked, the wrapped
  /// digits below), and a digit step is absorbed into a longer run iff the
  /// class level of its dimension reaches the digit's level.
  bool ClassRunsDegenerate(const QueryClass& cls) const override;

  const LatticePath& path() const { return path_; }
  bool snaked() const { return snaked_; }

  /// Loop digit descriptors, innermost first. Exposed for the analytic cost
  /// model and the characteristic-vector extractor.
  struct LoopDigit {
    int dim;             // dimension stepped by this loop
    int level;           // the edge climbs level-1 -> level in `dim`
    uint64_t radix;      // loop count: uniform fanout f(dim, level)
    uint64_t place;      // product of radices of inner digits
    uint64_t coord_unit; // leaves per level-(level-1) block of `dim`
  };
  const std::vector<LoopDigit>& digits() const { return digits_; }

 private:
  PathOrder(std::shared_ptr<const StarSchema> schema, LatticePath path,
            bool snaked, std::vector<LoopDigit> digits)
      : Linearization(std::move(schema)),
        path_(std::move(path)),
        snaked_(snaked),
        digits_(std::move(digits)) {}

  LatticePath path_;
  bool snaked_;
  std::vector<LoopDigit> digits_;
};

/// Builds the (possibly snaked) order for `path` over any schema, choosing
/// the closed-form PathOrder when all dimensions are uniform and otherwise
/// materializing the recursive nested-loop sweep (identical semantics,
/// O(num_cells) memory).
Result<std::unique_ptr<Linearization>> MakePathOrder(
    std::shared_ptr<const StarSchema> schema, const LatticePath& path,
    bool snaked);

}  // namespace snakes

#endif  // SNAKES_CURVES_PATH_ORDER_H_
