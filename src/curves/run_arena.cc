#include "curves/run_arena.h"

#include <algorithm>

namespace snakes {

void RunArena::BeginClass(uint64_t num_queries) {
  runs_.clear();
  qids_.clear();
  per_query_last_.assign(num_queries, -1);
  per_query_runs_.assign(num_queries, 0);
}

}  // namespace snakes
