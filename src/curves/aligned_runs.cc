#include "curves/aligned_runs.h"

#include "util/logging.h"

namespace snakes {
namespace curve_internal {

namespace {

class AlignedEmitter {
 public:
  AlignedEmitter(const Linearization& lin, const AlignedLevels& levels,
                 const CellBox& box, std::vector<RankRun>* out)
      : lin_(lin),
        levels_(levels),
        box_(box),
        out_(out),
        floor_(out->size()),
        k_(box.lo.size()) {}

  void Recurse(size_t depth, uint64_t rank_base) {
    const uint64_t cells = levels_.subtree_cells[depth];
    const CellCoord& width = levels_.width[depth];
    // The subtree's aligned box, recovered by masking the first rank's
    // coordinates down to the (power-of-two) width alignment.
    const CellCoord cell = lin_.CellAt(rank_base);
    bool contained = true;
    for (size_t d = 0; d < k_; ++d) {
      const uint64_t lo = cell[d] & ~(width[d] - 1);
      const uint64_t hi = lo + width[d];
      if (hi <= box_.lo[d] || lo >= box_.hi[d]) return;  // disjoint
      contained = contained && box_.lo[d] <= lo && hi <= box_.hi[d];
    }
    if (contained) {
      AppendRun(out_, floor_, rank_base, cells);
      return;
    }
    SNAKES_DCHECK(depth + 1 < levels_.subtree_cells.size());
    const uint64_t child_cells = levels_.subtree_cells[depth + 1];
    for (uint64_t r = rank_base; r < rank_base + cells; r += child_cells) {
      Recurse(depth + 1, r);
    }
  }

 private:
  const Linearization& lin_;
  const AlignedLevels& levels_;
  const CellBox& box_;
  std::vector<RankRun>* out_;
  const size_t floor_;
  const size_t k_;
};

class AlignedClassEmitter {
 public:
  AlignedClassEmitter(const Linearization& lin, const AlignedLevels& levels,
                      const QueryClass& cls, RunArena* arena)
      : lin_(lin),
        levels_(levels),
        cls_(cls),
        arena_(arena),
        k_(static_cast<size_t>(lin.schema().num_dims())) {
    // Dense query-id strides matching QueryAt: dimension 0 slowest.
    stride_.resize(k_);
    uint64_t s = 1;
    for (size_t d = k_; d-- > 0;) {
      stride_[d] = s;
      s *= lin_.schema().dim(static_cast<int>(d)).num_blocks(
          cls_.level(static_cast<int>(d)));
    }
  }

  void Recurse(size_t depth, uint64_t rank_base) {
    const uint64_t cells = levels_.subtree_cells[depth];
    const CellCoord& width = levels_.width[depth];
    const CellCoord cell = lin_.CellAt(rank_base);
    uint64_t qid = 0;
    bool contained = true;
    for (size_t d = 0; d < k_; ++d) {
      const Hierarchy& h = lin_.schema().dim(static_cast<int>(d));
      const int level = cls_.level(static_cast<int>(d));
      const uint64_t lo = cell[d] & ~(width[d] - 1);
      const uint64_t block = h.AncestorAt(lo, level);
      if (width[d] > 1 && h.AncestorAt(lo + width[d] - 1, level) != block) {
        contained = false;
        break;
      }
      qid += block * stride_[d];
    }
    if (contained) {
      arena_->Append(qid, rank_base, cells);
      return;
    }
    SNAKES_DCHECK(depth + 1 < levels_.subtree_cells.size());
    const uint64_t child_cells = levels_.subtree_cells[depth + 1];
    for (uint64_t r = rank_base; r < rank_base + cells; r += child_cells) {
      Recurse(depth + 1, r);
    }
  }

 private:
  const Linearization& lin_;
  const AlignedLevels& levels_;
  const QueryClass& cls_;
  RunArena* arena_;
  const size_t k_;
  FixedVector<uint64_t, kMaxDimensions> stride_;
};

}  // namespace

void AppendAlignedRuns(const Linearization& lin, const AlignedLevels& levels,
                       const CellBox& box, std::vector<RankRun>* runs) {
  SNAKES_DCHECK(!levels.subtree_cells.empty());
  SNAKES_DCHECK(levels.subtree_cells.front() == lin.num_cells());
  SNAKES_DCHECK(levels.subtree_cells.back() == 1);
  for (size_t d = 0; d < box.lo.size(); ++d) {
    if (box.hi[d] <= box.lo[d]) return;
  }
  AlignedEmitter emitter(lin, levels, box, runs);
  emitter.Recurse(0, 0);
}

void AppendAlignedClassRuns(const Linearization& lin,
                            const AlignedLevels& levels, const QueryClass& cls,
                            RunArena* arena) {
  SNAKES_DCHECK(!levels.subtree_cells.empty());
  SNAKES_DCHECK(levels.subtree_cells.front() == lin.num_cells());
  SNAKES_DCHECK(levels.subtree_cells.back() == 1);
  arena->BeginClass(NumQueriesInClass(lin.schema(), cls));
  AlignedClassEmitter emitter(lin, levels, cls, arena);
  emitter.Recurse(0, 0);
}

}  // namespace curve_internal
}  // namespace snakes
