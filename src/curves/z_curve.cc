#include "curves/z_curve.h"

#include "curves/aligned_runs.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {
namespace curve_internal {

namespace {

/// Per-bit aligned geometry shared by ZCurve and GrayCurve: depth j fixes
/// the j most significant interleaved bits, freeing positions
/// [0, total - j); dimension d's width is 2^(free bits owned by d).
AlignedLevels BitLevels(const std::vector<int>& bit_owner, int num_dims) {
  const size_t total = bit_owner.size();
  AlignedLevels levels;
  levels.subtree_cells.resize(total + 1);
  levels.width.resize(total + 1);
  CellCoord width;
  width.resize(static_cast<size_t>(num_dims));
  for (size_t d = 0; d < width.size(); ++d) width[d] = 1;
  levels.subtree_cells[total] = 1;
  levels.width[total] = width;
  for (size_t j = total; j-- > 0;) {
    width[static_cast<size_t>(bit_owner[total - 1 - j])] <<= 1;
    levels.subtree_cells[j] = uint64_t{1} << (total - j);
    levels.width[j] = width;
  }
  return levels;
}

}  // namespace

Result<std::vector<int>> AllocateBits(const StarSchema& schema) {
  const int k = schema.num_dims();
  std::vector<int> bits_left(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) {
    const uint64_t extent = schema.extent(d);
    if (!IsPowerOfTwo(extent)) {
      return Status::InvalidArgument(
          "bit-interleaved curves require power-of-two extents; dimension " +
          schema.dim(d).name() + " has " + std::to_string(extent));
    }
    bits_left[static_cast<size_t>(d)] = FloorLog2(extent);
  }
  std::vector<int> owner;
  // Round-robin from the last dimension (innermost) upward, LSB first.
  bool any = true;
  while (any) {
    any = false;
    for (int d = k - 1; d >= 0; --d) {
      if (bits_left[static_cast<size_t>(d)] > 0) {
        owner.push_back(d);
        --bits_left[static_cast<size_t>(d)];
        any = true;
      }
    }
  }
  return owner;
}

uint64_t Interleave(const std::vector<int>& bit_owner, const CellCoord& coord) {
  // next_bit[d] = which bit of dimension d to emit next.
  FixedVector<int, kMaxDimensions> next_bit(coord.size(), 0);
  uint64_t value = 0;
  for (size_t p = 0; p < bit_owner.size(); ++p) {
    const int d = bit_owner[p];
    const uint64_t bit =
        (coord[static_cast<size_t>(d)] >> next_bit[static_cast<size_t>(d)]) &
        1u;
    value |= bit << p;
    ++next_bit[static_cast<size_t>(d)];
  }
  return value;
}

CellCoord Deinterleave(const std::vector<int>& bit_owner, int num_dims,
                       uint64_t value) {
  CellCoord coord;
  coord.resize(static_cast<size_t>(num_dims));
  FixedVector<int, kMaxDimensions> next_bit(static_cast<size_t>(num_dims), 0);
  for (size_t p = 0; p < bit_owner.size(); ++p) {
    const int d = bit_owner[p];
    const uint64_t bit = (value >> p) & 1u;
    coord[static_cast<size_t>(d)] |= bit << next_bit[static_cast<size_t>(d)];
    ++next_bit[static_cast<size_t>(d)];
  }
  return coord;
}

}  // namespace curve_internal

Result<std::unique_ptr<ZCurve>> ZCurve::Make(
    std::shared_ptr<const StarSchema> schema) {
  SNAKES_ASSIGN_OR_RETURN(std::vector<int> owner,
                          curve_internal::AllocateBits(*schema));
  return std::unique_ptr<ZCurve>(new ZCurve(std::move(schema), std::move(owner)));
}

CellCoord ZCurve::CellAt(uint64_t rank) const {
  return curve_internal::Deinterleave(bit_owner_, schema().num_dims(), rank);
}

uint64_t ZCurve::RankOf(const CellCoord& coord) const {
  return curve_internal::Interleave(bit_owner_, coord);
}

void ZCurve::AppendRuns(const CellBox& box, std::vector<RankRun>* runs) const {
  curve_internal::AppendAlignedRuns(
      *this, curve_internal::BitLevels(bit_owner_, schema().num_dims()), box,
      runs);
}

Result<std::unique_ptr<GrayCurve>> GrayCurve::Make(
    std::shared_ptr<const StarSchema> schema) {
  SNAKES_ASSIGN_OR_RETURN(std::vector<int> owner,
                          curve_internal::AllocateBits(*schema));
  return std::unique_ptr<GrayCurve>(
      new GrayCurve(std::move(schema), std::move(owner)));
}

CellCoord GrayCurve::CellAt(uint64_t rank) const {
  const uint64_t gray = rank ^ (rank >> 1);
  return curve_internal::Deinterleave(bit_owner_, schema().num_dims(), gray);
}

uint64_t GrayCurve::RankOf(const CellCoord& coord) const {
  uint64_t gray = curve_internal::Interleave(bit_owner_, coord);
  // Invert the binary-reflected Gray code.
  uint64_t rank = gray;
  while (gray >>= 1) rank ^= gray;
  return rank;
}

void GrayCurve::AppendRuns(const CellBox& box,
                           std::vector<RankRun>* runs) const {
  // Gray bit j is rank bit j xor rank bit j+1, so a fixed high-bit rank
  // prefix fixes the same high Gray bits: the per-bit geometry is identical
  // to the Z-curve's even though the order within each subtree differs.
  curve_internal::AppendAlignedRuns(
      *this, curve_internal::BitLevels(bit_owner_, schema().num_dims()), box,
      runs);
}

}  // namespace snakes
