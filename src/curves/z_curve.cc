#include "curves/z_curve.h"

#include "curves/aligned_runs.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {
namespace curve_internal {

namespace {

/// Per-bit aligned geometry shared by ZCurve and GrayCurve: depth j fixes
/// the j most significant interleaved bits, freeing positions
/// [0, total - j); dimension d's width is 2^(free bits owned by d).
AlignedLevels BitLevels(const std::vector<int>& bit_owner, int num_dims) {
  const size_t total = bit_owner.size();
  AlignedLevels levels;
  levels.subtree_cells.resize(total + 1);
  levels.width.resize(total + 1);
  CellCoord width;
  width.resize(static_cast<size_t>(num_dims));
  for (size_t d = 0; d < width.size(); ++d) width[d] = 1;
  levels.subtree_cells[total] = 1;
  levels.width[total] = width;
  for (size_t j = total; j-- > 0;) {
    width[static_cast<size_t>(bit_owner[total - 1 - j])] <<= 1;
    levels.subtree_cells[j] = uint64_t{1} << (total - j);
    levels.width[j] = width;
  }
  return levels;
}

/// Shared degenerate-class test for the interleaved curves. An edge
/// rank r -> r+1 where r has exactly `t` trailing one bits changes, in the
/// Z order, dimension owner(t) by +1 (carrying through its c_owner low bits)
/// and every dimension d with c_d > 0 interleaved bits below t by
/// -(2^c_d - 1); in the Gray order only owner(t)'s local bit c_owner flips.
/// With uniform power-of-two blocks of 2^sigma_d leaves at the class level,
/// the edge stays inside one query box iff every changed dimension keeps its
/// block index, i.e. all flipped coordinate bits sit below sigma_d. The
/// class is degenerate (every run one cell) iff no trailing-ones count t in
/// [0, total_bits) is absorbed. Exact for uniform power-of-two hierarchies;
/// anything else falls back to the base single-cell-query test.
bool InterleavedClassDegenerate(const Linearization& lin,
                                const std::vector<int>& bit_owner,
                                const QueryClass& cls, bool gray) {
  const StarSchema& schema = lin.schema();
  const int k = schema.num_dims();
  FixedVector<int, kMaxDimensions> sigma(static_cast<size_t>(k), 0);
  for (int d = 0; d < k; ++d) {
    const Hierarchy& h = schema.dim(d);
    const uint64_t block_leaves = h.is_uniform()
                                      ? h.BlockLeafCount(cls.level(d), 0)
                                      : uint64_t{0};
    if (block_leaves == 0 || !IsPowerOfTwo(block_leaves)) {
      return NumQueriesInClass(schema, cls) == lin.num_cells();
    }
    sigma[static_cast<size_t>(d)] = FloorLog2(block_leaves);
  }
  // c[d] = number of dimension-d bits at interleaved positions below t.
  FixedVector<int, kMaxDimensions> c(static_cast<size_t>(k), 0);
  for (size_t t = 0; t < bit_owner.size(); ++t) {
    const size_t o = static_cast<size_t>(bit_owner[t]);
    bool absorbed = sigma[o] >= c[o] + 1;
    if (!gray) {
      for (size_t d = 0; d < static_cast<size_t>(k) && absorbed; ++d) {
        if (d != o && c[d] > 0 && sigma[d] < c[d]) absorbed = false;
      }
    }
    if (absorbed) return false;  // some run spans this edge
    ++c[o];
  }
  return true;
}

}  // namespace

Result<std::vector<int>> AllocateBits(const StarSchema& schema) {
  const int k = schema.num_dims();
  std::vector<int> bits_left(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) {
    const uint64_t extent = schema.extent(d);
    if (!IsPowerOfTwo(extent)) {
      return Status::InvalidArgument(
          "bit-interleaved curves require power-of-two extents; dimension " +
          schema.dim(d).name() + " has " + std::to_string(extent));
    }
    bits_left[static_cast<size_t>(d)] = FloorLog2(extent);
  }
  std::vector<int> owner;
  // Round-robin from the last dimension (innermost) upward, LSB first.
  bool any = true;
  while (any) {
    any = false;
    for (int d = k - 1; d >= 0; --d) {
      if (bits_left[static_cast<size_t>(d)] > 0) {
        owner.push_back(d);
        --bits_left[static_cast<size_t>(d)];
        any = true;
      }
    }
  }
  return owner;
}

uint64_t Interleave(const std::vector<int>& bit_owner, const CellCoord& coord) {
  // next_bit[d] = which bit of dimension d to emit next.
  FixedVector<int, kMaxDimensions> next_bit(coord.size(), 0);
  uint64_t value = 0;
  for (size_t p = 0; p < bit_owner.size(); ++p) {
    const int d = bit_owner[p];
    const uint64_t bit =
        (coord[static_cast<size_t>(d)] >> next_bit[static_cast<size_t>(d)]) &
        1u;
    value |= bit << p;
    ++next_bit[static_cast<size_t>(d)];
  }
  return value;
}

CellCoord Deinterleave(const std::vector<int>& bit_owner, int num_dims,
                       uint64_t value) {
  CellCoord coord;
  coord.resize(static_cast<size_t>(num_dims));
  FixedVector<int, kMaxDimensions> next_bit(static_cast<size_t>(num_dims), 0);
  for (size_t p = 0; p < bit_owner.size(); ++p) {
    const int d = bit_owner[p];
    const uint64_t bit = (value >> p) & 1u;
    coord[static_cast<size_t>(d)] |= bit << next_bit[static_cast<size_t>(d)];
    ++next_bit[static_cast<size_t>(d)];
  }
  return coord;
}

}  // namespace curve_internal

ZCurve::ZCurve(std::shared_ptr<const StarSchema> schema,
               std::vector<int> bit_owner)
    : Linearization(std::move(schema)), bit_owner_(std::move(bit_owner)) {
  masks_ = curve_internal::MakeInterleaveMasks(bit_owner_,
                                               this->schema().num_dims());
  levels_ = curve_internal::BitLevels(bit_owner_, this->schema().num_dims());
}

Result<std::unique_ptr<ZCurve>> ZCurve::Make(
    std::shared_ptr<const StarSchema> schema) {
  SNAKES_ASSIGN_OR_RETURN(std::vector<int> owner,
                          curve_internal::AllocateBits(*schema));
  return std::unique_ptr<ZCurve>(new ZCurve(std::move(schema), std::move(owner)));
}

CellCoord ZCurve::CellAt(uint64_t rank) const {
  return curve_internal::DeinterleaveBits(masks_, rank);
}

uint64_t ZCurve::RankOf(const CellCoord& coord) const {
  return curve_internal::InterleaveBits(masks_, coord);
}

void ZCurve::AppendRuns(const CellBox& box, std::vector<RankRun>* runs) const {
  curve_internal::AppendAlignedRuns(*this, levels_, box, runs);
}

void ZCurve::AppendClassRuns(const QueryClass& cls, RunArena* arena) const {
  curve_internal::AppendAlignedClassRuns(*this, levels_, cls, arena);
}

bool ZCurve::ClassRunsDegenerate(const QueryClass& cls) const {
  return curve_internal::InterleavedClassDegenerate(*this, bit_owner_, cls,
                                                    /*gray=*/false);
}

GrayCurve::GrayCurve(std::shared_ptr<const StarSchema> schema,
                     std::vector<int> bit_owner)
    : Linearization(std::move(schema)), bit_owner_(std::move(bit_owner)) {
  masks_ = curve_internal::MakeInterleaveMasks(bit_owner_,
                                               this->schema().num_dims());
  levels_ = curve_internal::BitLevels(bit_owner_, this->schema().num_dims());
}

Result<std::unique_ptr<GrayCurve>> GrayCurve::Make(
    std::shared_ptr<const StarSchema> schema) {
  SNAKES_ASSIGN_OR_RETURN(std::vector<int> owner,
                          curve_internal::AllocateBits(*schema));
  return std::unique_ptr<GrayCurve>(
      new GrayCurve(std::move(schema), std::move(owner)));
}

CellCoord GrayCurve::CellAt(uint64_t rank) const {
  const uint64_t gray = rank ^ (rank >> 1);
  return curve_internal::DeinterleaveBits(masks_, gray);
}

uint64_t GrayCurve::RankOf(const CellCoord& coord) const {
  return curve_internal::GrayCodeToRank(
      curve_internal::InterleaveBits(masks_, coord));
}

void GrayCurve::AppendRuns(const CellBox& box,
                           std::vector<RankRun>* runs) const {
  // Gray bit j is rank bit j xor rank bit j+1, so a fixed high-bit rank
  // prefix fixes the same high Gray bits: the per-bit geometry is identical
  // to the Z-curve's even though the order within each subtree differs.
  curve_internal::AppendAlignedRuns(*this, levels_, box, runs);
}

void GrayCurve::AppendClassRuns(const QueryClass& cls, RunArena* arena) const {
  curve_internal::AppendAlignedClassRuns(*this, levels_, cls, arena);
}

bool GrayCurve::ClassRunsDegenerate(const QueryClass& cls) const {
  return curve_internal::InterleavedClassDegenerate(*this, bit_owner_, cls,
                                                    /*gray=*/true);
}

}  // namespace snakes
