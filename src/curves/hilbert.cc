#include "curves/hilbert.h"

#include <utility>

#include "curves/aligned_runs.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {
namespace curve_internal {

// Both routines are Skilling's public-domain algorithm ("Programming the
// Hilbert curve", AIP Conf. Proc. 707, 2004), operating on the "transpose"
// form of the Hilbert index: dimension i holds every (i mod dims)-th bit.

void HilbertTransposeToAxes(uint32_t* x, int bits, int dims) {
  const uint32_t big = uint32_t{2} << (bits - 1);
  uint32_t t = x[dims - 1] >> 1;
  for (int i = dims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  for (uint32_t q = 2; q != big; q <<= 1) {
    const uint32_t p = q - 1;
    for (int i = dims - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        t = (x[0] ^ x[i]) & p;  // exchange low bits of x[0] and x[i]
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

void HilbertAxesToTranspose(uint32_t* x, int bits, int dims) {
  const uint32_t most = uint32_t{1} << (bits - 1);
  uint32_t t;
  for (uint32_t q = most; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < dims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  for (int i = 1; i < dims; ++i) x[i] ^= x[i - 1];
  t = 0;
  for (uint32_t q = most; q > 1; q >>= 1) {
    if (x[dims - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < dims; ++i) x[i] ^= t;
}

}  // namespace curve_internal

HilbertCurve::HilbertCurve(std::shared_ptr<const StarSchema> schema, int bits,
                           bool swap_first_two)
    : Linearization(std::move(schema)), bits_(bits), swap_(swap_first_two) {
  const int k = this->schema().num_dims();
  masks_ = curve_internal::MakeTransposeMasks(bits_, k);
  levels_.subtree_cells.resize(static_cast<size_t>(bits_) + 1);
  levels_.width.resize(static_cast<size_t>(bits_) + 1);
  for (int j = 0; j <= bits_; ++j) {
    levels_.subtree_cells[static_cast<size_t>(j)] =
        uint64_t{1} << (static_cast<unsigned>(k) *
                        static_cast<unsigned>(bits_ - j));
    CellCoord width;
    width.resize(static_cast<size_t>(k));
    for (size_t d = 0; d < width.size(); ++d) {
      width[d] = uint64_t{1} << (bits_ - j);
    }
    levels_.width[static_cast<size_t>(j)] = width;
  }
}

Result<std::unique_ptr<HilbertCurve>> HilbertCurve::Make(
    std::shared_ptr<const StarSchema> schema, bool swap_first_two) {
  const int k = schema->num_dims();
  if (k < 2) {
    return Status::InvalidArgument("Hilbert curve needs >= 2 dimensions");
  }
  const uint64_t extent0 = schema->extent(0);
  if (!IsPowerOfTwo(extent0)) {
    return Status::InvalidArgument(
        "Hilbert curve requires power-of-two extents");
  }
  for (int d = 1; d < k; ++d) {
    if (schema->extent(d) != extent0) {
      return Status::InvalidArgument(
          "Hilbert curve requires equal extents in every dimension");
    }
  }
  const int bits = FloorLog2(extent0);
  if (bits == 0) {
    return Status::InvalidArgument("Hilbert curve needs extents >= 2");
  }
  if (bits * k > 62) {
    return Status::InvalidArgument("Hilbert grid too large (2^" +
                                   std::to_string(bits * k) + " cells)");
  }
  return std::unique_ptr<HilbertCurve>(
      new HilbertCurve(std::move(schema), bits, swap_first_two));
}

CellCoord HilbertCurve::CellAt(uint64_t rank) const {
  const int k = schema().num_dims();
  uint32_t x[kMaxDimensions] = {0};
  // Distribute rank bits into the transpose form (the most significant rank
  // bit is x[0]'s top bit, the next x[1]'s top bit, ...): one pext per
  // dimension through the strided masks.
  curve_internal::RankToTranspose(masks_, rank, x);
  curve_internal::HilbertTransposeToAxes(x, bits_, k);
  if (swap_) std::swap(x[0], x[1]);
  CellCoord coord;
  coord.resize(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) coord[static_cast<size_t>(d)] = x[d];
  return coord;
}

void HilbertCurve::AppendRuns(const CellBox& box,
                              std::vector<RankRun>* runs) const {
  curve_internal::AppendAlignedRuns(*this, levels_, box, runs);
}

void HilbertCurve::AppendClassRuns(const QueryClass& cls,
                                   RunArena* arena) const {
  curve_internal::AppendAlignedClassRuns(*this, levels_, cls, arena);
}

uint64_t HilbertCurve::RankOf(const CellCoord& coord) const {
  const int k = schema().num_dims();
  uint32_t x[kMaxDimensions];
  for (int d = 0; d < k; ++d) {
    x[d] = static_cast<uint32_t>(coord[static_cast<size_t>(d)]);
  }
  if (swap_) std::swap(x[0], x[1]);
  curve_internal::HilbertAxesToTranspose(x, bits_, k);
  return curve_internal::TransposeToRank(masks_, x);
}

}  // namespace snakes
