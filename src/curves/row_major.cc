#include "curves/row_major.h"

#include <algorithm>

#include "util/logging.h"

namespace snakes {

Result<std::unique_ptr<RowMajorOrder>> RowMajorOrder::Make(
    std::shared_ptr<const StarSchema> schema, std::vector<int> outer_to_inner) {
  const int k = schema->num_dims();
  if (static_cast<int>(outer_to_inner.size()) != k) {
    return Status::InvalidArgument("axis order must list every dimension");
  }
  std::vector<bool> used(static_cast<size_t>(k), false);
  for (int d : outer_to_inner) {
    if (d < 0 || d >= k || used[static_cast<size_t>(d)]) {
      return Status::InvalidArgument("axis order must be a permutation");
    }
    used[static_cast<size_t>(d)] = true;
  }
  std::vector<uint64_t> strides(static_cast<size_t>(k));
  uint64_t stride = 1;
  for (int pos = k - 1; pos >= 0; --pos) {
    strides[static_cast<size_t>(pos)] = stride;
    stride *= schema->extent(outer_to_inner[static_cast<size_t>(pos)]);
  }
  return std::unique_ptr<RowMajorOrder>(new RowMajorOrder(
      std::move(schema), std::move(outer_to_inner), std::move(strides)));
}

RowMajorOrder::RowMajorOrder(std::shared_ptr<const StarSchema> schema,
                             std::vector<int> order,
                             std::vector<uint64_t> strides)
    : Linearization(std::move(schema)),
      order_(std::move(order)),
      strides_(std::move(strides)) {
  uint64_t extents[kMaxRankRunDims];
  for (size_t pos = 0; pos < order_.size(); ++pos) {
    extents[pos] = this->schema().extent(order_[pos]);
  }
  emitter_.Reset(extents, static_cast<int>(order_.size()));
}

std::string RowMajorOrder::name() const {
  std::string out = "row-major(";
  for (size_t i = 0; i < order_.size(); ++i) {
    if (i) out += ",";
    out += schema().dim(order_[i]).name();
  }
  out += ")";
  return out;
}

CellCoord RowMajorOrder::CellAt(uint64_t rank) const {
  CellCoord coord;
  coord.resize(order_.size());
  for (size_t pos = 0; pos < order_.size(); ++pos) {
    const int d = order_[pos];
    coord[static_cast<size_t>(d)] = rank / strides_[pos];
    rank %= strides_[pos];
  }
  return coord;
}

uint64_t RowMajorOrder::RankOf(const CellCoord& coord) const {
  uint64_t rank = 0;
  for (size_t pos = 0; pos < order_.size(); ++pos) {
    rank += coord[static_cast<size_t>(order_[pos])] * strides_[pos];
  }
  return rank;
}

void RowMajorOrder::AppendRuns(const CellBox& box,
                               std::vector<RankRun>* runs) const {
  const size_t k = order_.size();
  SNAKES_DCHECK(box.lo.size() == k);
  uint64_t lo[kMaxRankRunDims];
  uint64_t hi[kMaxRankRunDims];
  for (size_t pos = 0; pos < k; ++pos) {
    const size_t d = static_cast<size_t>(order_[pos]);
    lo[pos] = box.lo[d];
    hi[pos] = box.hi[d];
  }
  emitter_.Append(lo, hi, /*base=*/0, runs->size(), runs);
}

void RowMajorOrder::Walk(
    const std::function<void(uint64_t, const CellCoord&)>& fn) const {
  // Odometer sweep: increment the innermost axis, carry outward.
  const size_t k = order_.size();
  CellCoord coord;
  coord.resize(k);
  const uint64_t n = num_cells();
  for (uint64_t rank = 0; rank < n; ++rank) {
    fn(rank, coord);
    for (size_t pos = k; pos-- > 0;) {
      const int d = order_[pos];
      if (++coord[static_cast<size_t>(d)] < schema().extent(d)) break;
      coord[static_cast<size_t>(d)] = 0;
    }
  }
}

std::vector<std::unique_ptr<RowMajorOrder>> AllRowMajorOrders(
    std::shared_ptr<const StarSchema> schema) {
  std::vector<int> perm(static_cast<size_t>(schema->num_dims()));
  for (size_t d = 0; d < perm.size(); ++d) perm[d] = static_cast<int>(d);
  std::vector<std::unique_ptr<RowMajorOrder>> all;
  do {
    auto order = RowMajorOrder::Make(schema, perm);
    SNAKES_CHECK(order.ok());
    all.push_back(std::move(order).value());
  } while (std::next_permutation(perm.begin(), perm.end()));
  return all;
}

}  // namespace snakes
