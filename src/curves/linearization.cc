#include "curves/linearization.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace snakes {

void Linearization::Walk(
    const std::function<void(uint64_t, const CellCoord&)>& fn) const {
  const uint64_t n = num_cells();
  for (uint64_t rank = 0; rank < n; ++rank) {
    fn(rank, CellAt(rank));
  }
}

void Linearization::AppendRuns(const CellBox& box,
                               std::vector<RankRun>* runs) const {
  AppendRunsByRankScan(box, runs);
}

void Linearization::AppendClassRuns(const QueryClass& cls,
                                    RunArena* arena) const {
  const uint64_t num_queries = NumQueriesInClass(schema(), cls);
  arena->BeginClass(num_queries);
  std::vector<RankRun>& scratch = arena->scratch();
  for (uint64_t q = 0; q < num_queries; ++q) {
    scratch.clear();
    AppendRuns(BoxOf(schema(), QueryAt(schema(), cls, q)), &scratch);
    for (const RankRun& r : scratch) arena->Append(q, r.start, r.len);
  }
}

bool Linearization::ClassRunsDegenerate(const QueryClass& cls) const {
  return NumQueriesInClass(schema(), cls) == num_cells();
}

void Linearization::AppendRunsByRankScan(const CellBox& box,
                                         std::vector<RankRun>* runs) const {
  const size_t k = box.lo.size();
  SNAKES_DCHECK(static_cast<int>(k) == schema().num_dims());
  for (size_t d = 0; d < k; ++d) {
    if (box.hi[d] <= box.lo[d]) return;
  }
  std::vector<uint64_t> ranks;
  ranks.reserve(box.NumCells());
  CellCoord coord = box.lo;
  for (;;) {
    ranks.push_back(RankOf(coord));
    int d = static_cast<int>(k) - 1;
    for (; d >= 0; --d) {
      const size_t dd = static_cast<size_t>(d);
      if (++coord[dd] < box.hi[dd]) break;
      coord[dd] = box.lo[dd];
    }
    if (d < 0) break;
  }
  std::sort(ranks.begin(), ranks.end());
  const size_t floor = runs->size();
  for (uint64_t rank : ranks) AppendRun(runs, floor, rank, 1);
}

Status Linearization::Validate() const {
  const uint64_t n = num_cells();
  std::vector<bool> seen(n, false);
  uint64_t expected_rank = 0;
  Status status = Status::OK();
  Walk([&](uint64_t rank, const CellCoord& coord) {
    if (!status.ok()) return;
    if (rank != expected_rank) {
      status = Status::Internal("Walk ranks not sequential");
      return;
    }
    ++expected_rank;
    const CellId id = schema().Flatten(coord);
    if (seen[id]) {
      status = Status::Internal("cell visited twice: id " + std::to_string(id));
      return;
    }
    seen[id] = true;
    if (RankOf(coord) != rank) {
      status = Status::Internal("RankOf(CellAt(r)) != r at rank " +
                                std::to_string(rank));
      return;
    }
    const CellCoord again = CellAt(rank);
    if (schema().Flatten(again) != id) {
      status = Status::Internal("CellAt(r) disagrees with Walk at rank " +
                                std::to_string(rank));
    }
  });
  SNAKES_RETURN_IF_ERROR(status);
  if (expected_rank != n) {
    return Status::Internal("Walk visited " + std::to_string(expected_rank) +
                            " of " + std::to_string(n) + " cells");
  }
  return Status::OK();
}

Result<std::unique_ptr<MaterializedLinearization>>
MaterializedLinearization::Make(std::shared_ptr<const StarSchema> schema,
                                std::string name, std::vector<CellId> order) {
  const uint64_t n = schema->num_cells();
  if (order.size() != n) {
    return Status::InvalidArgument("order has " + std::to_string(order.size()) +
                                   " cells, schema has " + std::to_string(n));
  }
  std::vector<uint64_t> inverse(n, UINT64_MAX);
  for (uint64_t rank = 0; rank < n; ++rank) {
    const CellId id = order[rank];
    if (id >= n) {
      return Status::InvalidArgument("cell id out of range: " +
                                     std::to_string(id));
    }
    if (inverse[id] != UINT64_MAX) {
      return Status::InvalidArgument("cell id repeated: " + std::to_string(id));
    }
    inverse[id] = rank;
  }
  return std::unique_ptr<MaterializedLinearization>(
      new MaterializedLinearization(std::move(schema), std::move(name),
                                    std::move(order), std::move(inverse)));
}

std::unique_ptr<MaterializedLinearization> MaterializedLinearization::From(
    const Linearization& other) {
  std::vector<CellId> order(other.num_cells());
  other.Walk([&](uint64_t rank, const CellCoord& coord) {
    order[rank] = other.schema().Flatten(coord);
  });
  auto result = Make(other.schema_ptr(), other.name(), std::move(order));
  SNAKES_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

CellCoord MaterializedLinearization::CellAt(uint64_t rank) const {
  SNAKES_DCHECK(rank < order_.size());
  return schema().Unflatten(order_[rank]);
}

uint64_t MaterializedLinearization::RankOf(const CellCoord& coord) const {
  return inverse_[schema().Flatten(coord)];
}

void MaterializedLinearization::Walk(
    const std::function<void(uint64_t, const CellCoord&)>& fn) const {
  for (uint64_t rank = 0; rank < order_.size(); ++rank) {
    fn(rank, schema().Unflatten(order_[rank]));
  }
}

void MaterializedLinearization::AppendRuns(const CellBox& box,
                                           std::vector<RankRun>* runs) const {
  const size_t k = box.lo.size();
  SNAKES_DCHECK(static_cast<int>(k) == schema().num_dims());
  for (size_t d = 0; d < k; ++d) {
    if (box.hi[d] <= box.lo[d]) return;
  }
  std::vector<uint64_t> ranks;
  ranks.reserve(box.NumCells());
  const uint64_t row_len = box.hi[k - 1] - box.lo[k - 1];
  CellCoord coord = box.lo;
  for (;;) {
    // Flattened ids along the innermost dimension are consecutive, so one
    // row is one contiguous slice of inverse_.
    const CellId row_start = schema().Flatten(coord);
    for (uint64_t j = 0; j < row_len; ++j) {
      ranks.push_back(inverse_[row_start + j]);
    }
    int d = static_cast<int>(k) - 2;
    for (; d >= 0; --d) {
      const size_t dd = static_cast<size_t>(d);
      if (++coord[dd] < box.hi[dd]) break;
      coord[dd] = box.lo[dd];
    }
    if (d < 0) break;
  }
  std::sort(ranks.begin(), ranks.end());
  const size_t floor = runs->size();
  for (uint64_t rank : ranks) AppendRun(runs, floor, rank, 1);
}

}  // namespace snakes
