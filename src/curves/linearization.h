#ifndef SNAKES_CURVES_LINEARIZATION_H_
#define SNAKES_CURVES_LINEARIZATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "curves/rank_run.h"
#include "curves/run_arena.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "util/result.h"

namespace snakes {

/// A clustering strategy: a bijection between grid cells and disk ranks
/// 0..num_cells()-1. Cells are laid out on disk in rank order; every cost
/// model in the library consumes this interface.
class Linearization {
 public:
  /// `schema` describes the grid being linearized; shared, immutable.
  explicit Linearization(std::shared_ptr<const StarSchema> schema)
      : schema_(std::move(schema)) {}
  virtual ~Linearization() = default;

  Linearization(const Linearization&) = delete;
  Linearization& operator=(const Linearization&) = delete;

  const StarSchema& schema() const { return *schema_; }
  std::shared_ptr<const StarSchema> schema_ptr() const { return schema_; }
  uint64_t num_cells() const { return schema_->num_cells(); }

  /// Human-readable strategy name ("row-major(A,B)", "hilbert", ...).
  virtual std::string name() const = 0;

  /// The cell stored at disk position `rank`.
  virtual CellCoord CellAt(uint64_t rank) const = 0;

  /// The disk position of `coord` (inverse of CellAt).
  virtual uint64_t RankOf(const CellCoord& coord) const = 0;

  /// Visits every cell in rank order. The default loops over CellAt;
  /// generative strategies override this with a cheaper sweep.
  virtual void Walk(
      const std::function<void(uint64_t rank, const CellCoord& coord)>& fn)
      const;

  /// Appends the rank-run decomposition of `box`: the unique sorted,
  /// disjoint, coalesced run list covering exactly the ranks of the box's
  /// cells. Entries already in `runs` are left untouched. The default is
  /// correct for any bijection but enumerates every cell
  /// (O(cells log cells)); strategies with structure override it with a
  /// closed form or a box-pruned recursion and report so via
  /// HasRunDecomposition.
  virtual void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const;

  /// True when AppendRuns costs roughly O(runs) rather than O(cells in box),
  /// so interval-based query evaluation is a win. Default false.
  virtual bool HasRunDecomposition() const { return false; }

  /// Emits the run decomposition of *every* query box of class `cls` into
  /// `arena` (which is BeginClass-reset here). Query ids follow the dense
  /// QueryAt order (dimension 0 slowest); each query's runs equal what
  /// AppendRuns on its box alone would produce. Because the queries of a
  /// class tile the grid, structured strategies override this with a single
  /// unpruned subdivision pass over the whole curve — sibling boxes share
  /// every recursion prefix instead of re-descending per box. The default
  /// loops AppendRuns per query through the arena's scratch vector.
  virtual void AppendClassRuns(const QueryClass& cls, RunArena* arena) const;

  /// True when every run of every query of `cls` is provably a single cell
  /// (the class "degenerates": fragment count == num_cells()), so callers
  /// can use the closed-form edge model instead of materializing runs.
  /// Soundness contract: a true return is a guarantee; false is always
  /// allowed. The default detects the one case sound for any bijection —
  /// every query of the class selects exactly one cell.
  virtual bool ClassRunsDegenerate(const QueryClass& cls) const;

  /// The reference decomposition the default AppendRuns delegates to:
  /// RankOf on every cell of the box, sort, coalesce. Public so tests can
  /// cross-check closed-form overrides against it.
  void AppendRunsByRankScan(const CellBox& box, std::vector<RankRun>* runs)
      const;

  /// Verifies that CellAt is a bijection consistent with RankOf and that
  /// Walk visits the same sequence. O(num_cells) time and bitmap space.
  Status Validate() const;

 private:
  std::shared_ptr<const StarSchema> schema_;
};

/// A linearization materialized as an explicit permutation (flattened cell
/// ids in rank order). Accepts any generator; also the adapter that gives
/// non-closed-form strategies (snaked paths over non-uniform hierarchies) a
/// RankOf.
class MaterializedLinearization : public Linearization {
 public:
  /// Takes the cells in rank order (flattened ids). Fails unless `order` is a
  /// permutation of 0..num_cells-1.
  static Result<std::unique_ptr<MaterializedLinearization>> Make(
      std::shared_ptr<const StarSchema> schema, std::string name,
      std::vector<CellId> order);

  /// Copies another linearization into materialized form.
  static std::unique_ptr<MaterializedLinearization> From(
      const Linearization& other);

  std::string name() const override { return name_; }
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  void Walk(const std::function<void(uint64_t, const CellCoord&)>& fn)
      const override;
  /// Gathers ranks row-wise from `inverse_` (cell ids along the innermost
  /// dimension are consecutive, so each row is one contiguous slice of the
  /// array), then sorts and coalesces. Same complexity as the default but
  /// with sequential array reads instead of virtual RankOf calls.
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;

 private:
  MaterializedLinearization(std::shared_ptr<const StarSchema> schema,
                            std::string name, std::vector<CellId> order,
                            std::vector<uint64_t> inverse)
      : Linearization(std::move(schema)),
        name_(std::move(name)),
        order_(std::move(order)),
        inverse_(std::move(inverse)) {}

  std::string name_;
  std::vector<CellId> order_;     // rank -> cell id
  std::vector<uint64_t> inverse_; // cell id -> rank
};

}  // namespace snakes

#endif  // SNAKES_CURVES_LINEARIZATION_H_
