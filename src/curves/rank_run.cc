#include "curves/rank_run.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace snakes {

void AppendRun(std::vector<RankRun>* runs, size_t floor, uint64_t start,
               uint64_t len) {
  if (len == 0) return;
  if (runs->size() > floor) {
    RankRun& back = runs->back();
    SNAKES_DCHECK(back.end() <= start);
    if (back.end() == start) {
      back.len += len;
      return;
    }
  }
  runs->push_back({start, len});
}

void SortAndCoalesce(std::vector<RankRun>* runs, size_t floor) {
  SNAKES_DCHECK(floor <= runs->size());
  const auto begin = runs->begin() + static_cast<ptrdiff_t>(floor);
  std::sort(begin, runs->end());
  size_t out = floor;
  for (size_t i = floor; i < runs->size(); ++i) {
    const RankRun& run = (*runs)[i];
    if (run.len == 0) continue;
    if (out > floor && (*runs)[out - 1].end() == run.start) {
      (*runs)[out - 1].len += run.len;
    } else {
      SNAKES_DCHECK(out == floor || (*runs)[out - 1].end() < run.start);
      (*runs)[out] = run;
      ++out;
    }
  }
  runs->resize(out);
}

uint64_t TotalRunCells(const std::vector<RankRun>& runs) {
  uint64_t total = 0;
  for (const RankRun& run : runs) total += run.len;
  return total;
}

Status ValidateRuns(const std::vector<RankRun>& runs) {
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].len == 0) {
      return Status::Internal("empty run at index " + std::to_string(i));
    }
    if (i > 0 && runs[i].start <= runs[i - 1].end()) {
      return Status::Internal(
          runs[i].start < runs[i - 1].end()
              ? "runs overlap or unsorted at index " + std::to_string(i)
              : "adjacent runs not coalesced at index " + std::to_string(i));
    }
  }
  return Status::OK();
}

void AppendRowMajorBoxRuns(const uint64_t* extents, const uint64_t* lo,
                           const uint64_t* hi, int k, uint64_t base,
                           size_t floor, std::vector<RankRun>* runs) {
  SNAKES_DCHECK(k > 0);
  for (int p = 0; p < k; ++p) {
    SNAKES_DCHECK(hi[p] <= extents[p]);
    if (hi[p] <= lo[p]) return;  // empty box
  }
  uint64_t stride[kMaxRankRunDims];
  SNAKES_CHECK(k <= kMaxRankRunDims);
  stride[k - 1] = 1;
  for (int p = k - 2; p >= 0; --p) stride[p] = stride[p + 1] * extents[p + 1];
  // Fully-covered fastest positions fold into one contiguous stretch per
  // setting of the remaining (outer) positions.
  int split = k - 1;
  while (split > 0 && lo[split] == 0 && hi[split] == extents[split]) --split;
  const uint64_t run_len = (hi[split] - lo[split]) * stride[split];
  // Odometer over positions 0..split-1 within [lo, hi).
  uint64_t coord[kMaxRankRunDims];
  uint64_t offset = base + lo[split] * stride[split];
  for (int p = 0; p < split; ++p) {
    coord[p] = lo[p];
    offset += lo[p] * stride[p];
  }
  for (;;) {
    AppendRun(runs, floor, offset, run_len);
    int p = split - 1;
    for (; p >= 0; --p) {
      offset += stride[p];
      if (++coord[p] < hi[p]) break;
      offset -= (hi[p] - lo[p]) * stride[p];
      coord[p] = lo[p];
    }
    if (p < 0) break;
  }
}

}  // namespace snakes
