#include "curves/rank_run.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace snakes {

void AppendRun(std::vector<RankRun>* runs, size_t floor, uint64_t start,
               uint64_t len) {
  if (len == 0) return;
  if (runs->size() > floor) {
    RankRun& back = runs->back();
    SNAKES_DCHECK(back.end() <= start);
    if (back.end() == start) {
      back.len += len;
      return;
    }
  }
  runs->push_back({start, len});
}

void SortAndCoalesce(std::vector<RankRun>* runs, size_t floor) {
  SNAKES_DCHECK(floor <= runs->size());
  const auto begin = runs->begin() + static_cast<ptrdiff_t>(floor);
  std::sort(begin, runs->end());
  size_t out = floor;
  for (size_t i = floor; i < runs->size(); ++i) {
    const RankRun& run = (*runs)[i];
    if (run.len == 0) continue;
    if (out > floor && (*runs)[out - 1].end() == run.start) {
      (*runs)[out - 1].len += run.len;
    } else {
      SNAKES_DCHECK(out == floor || (*runs)[out - 1].end() < run.start);
      (*runs)[out] = run;
      ++out;
    }
  }
  runs->resize(out);
}

uint64_t TotalRunCells(const std::vector<RankRun>& runs) {
  uint64_t total = 0;
  for (const RankRun& run : runs) total += run.len;
  return total;
}

Status ValidateRuns(const std::vector<RankRun>& runs) {
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].len == 0) {
      return Status::Internal("empty run at index " + std::to_string(i));
    }
    if (i > 0 && runs[i].start <= runs[i - 1].end()) {
      return Status::Internal(
          runs[i].start < runs[i - 1].end()
              ? "runs overlap or unsorted at index " + std::to_string(i)
              : "adjacent runs not coalesced at index " + std::to_string(i));
    }
  }
  return Status::OK();
}

void RowMajorBoxEmitter::Reset(const uint64_t* extents, int k) {
  SNAKES_CHECK(k > 0 && k <= kMaxRankRunDims);
  k_ = k;
  for (int p = 0; p < k; ++p) extents_[p] = extents[p];
  stride_[k - 1] = 1;
  for (int p = k - 2; p >= 0; --p) stride_[p] = stride_[p + 1] * extents[p + 1];
}

void RowMajorBoxEmitter::Append(const uint64_t* lo, const uint64_t* hi,
                                uint64_t base, size_t floor,
                                std::vector<RankRun>* runs) const {
  SNAKES_DCHECK(k_ > 0);
  for (int p = 0; p < k_; ++p) {
    SNAKES_DCHECK(hi[p] <= extents_[p]);
    if (hi[p] <= lo[p]) return;  // empty box
  }
  // Fully-covered fastest positions fold into one contiguous stretch per
  // setting of the remaining (outer) positions.
  int split = k_ - 1;
  while (split > 0 && lo[split] == 0 && hi[split] == extents_[split]) --split;
  const uint64_t run_len = (hi[split] - lo[split]) * stride_[split];
  // Odometer over positions 0..split-1 within [lo, hi).
  uint64_t coord[kMaxRankRunDims];
  uint64_t offset = base + lo[split] * stride_[split];
  for (int p = 0; p < split; ++p) {
    coord[p] = lo[p];
    offset += lo[p] * stride_[p];
  }
  for (;;) {
    AppendRun(runs, floor, offset, run_len);
    int p = split - 1;
    for (; p >= 0; --p) {
      offset += stride_[p];
      if (++coord[p] < hi[p]) break;
      offset -= (hi[p] - lo[p]) * stride_[p];
      coord[p] = lo[p];
    }
    if (p < 0) break;
  }
}

void AppendRowMajorBoxRuns(const uint64_t* extents, const uint64_t* lo,
                           const uint64_t* hi, int k, uint64_t base,
                           size_t floor, std::vector<RankRun>* runs) {
  RowMajorBoxEmitter emitter(extents, k);
  emitter.Append(lo, hi, base, floor, runs);
}

}  // namespace snakes
