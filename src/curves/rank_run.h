#ifndef SNAKES_CURVES_RANK_RUN_H_
#define SNAKES_CURVES_RANK_RUN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/result.h"

namespace snakes {

/// Dimension cap for the stack-allocated odometers below; comfortably above
/// the schema layer's kMaxDimensions without depending on it.
inline constexpr int kMaxRankRunDims = 16;

/// A maximal interval of consecutive disk ranks [start, start + len). The
/// rank-run decomposition of a query box under a linearization is the unique
/// sorted, disjoint, coalesced run list covering exactly the box's ranks;
/// its length equals the number of contiguous curve fragments the query
/// touches (the paper's seek-count cost surrogate).
struct RankRun {
  uint64_t start = 0;
  uint64_t len = 0;

  uint64_t end() const { return start + len; }

  friend bool operator==(const RankRun& a, const RankRun& b) {
    return a.start == b.start && a.len == b.len;
  }
  friend bool operator!=(const RankRun& a, const RankRun& b) {
    return !(a == b);
  }
  friend bool operator<(const RankRun& a, const RankRun& b) {
    return a.start != b.start ? a.start < b.start : a.len < b.len;
  }
};

/// Appends [start, start + len) to `runs`, merging into the last run when
/// adjacent. Only runs at index >= `floor` are merge candidates, so a caller
/// composing several decompositions into one vector never disturbs entries
/// that precede its own (capture floor = runs->size() on entry). Appended
/// starts must be non-decreasing past `floor`.
void AppendRun(std::vector<RankRun>* runs, size_t floor, uint64_t start,
               uint64_t len);

/// Sorts runs[floor..] by start and coalesces adjacent ones in place.
/// Requires the runs past `floor` to be disjoint.
void SortAndCoalesce(std::vector<RankRun>* runs, size_t floor);

/// Total ranks covered.
uint64_t TotalRunCells(const std::vector<RankRun>& runs);

/// OK iff every run is non-empty and the list is sorted, disjoint and
/// coalesced (consecutive runs are separated by at least one uncovered
/// rank).
Status ValidateRuns(const std::vector<RankRun>& runs);

/// Reusable row-major box decomposer. The position strides depend only on
/// the grid's extent vector, so a caller decomposing many boxes of the same
/// grid (a chunked order emits one box per partially-covered chunk) computes
/// them once here instead of per box. Append is otherwise identical to
/// AppendRowMajorBoxRuns — ascending, coalesced against index >= floor,
/// O(runs) per box.
class RowMajorBoxEmitter {
 public:
  RowMajorBoxEmitter() = default;
  RowMajorBoxEmitter(const uint64_t* extents, int k) { Reset(extents, k); }

  /// Re-targets the emitter at a k-position grid with the given extents
  /// (position 0 slowest, position k-1 fastest). k must be in (0,
  /// kMaxRankRunDims].
  void Reset(const uint64_t* extents, int k);

  /// Appends the runs of the half-open box [lo, hi), offset by `base`, to
  /// `runs`, coalescing only against entries at index >= `floor`.
  void Append(const uint64_t* lo, const uint64_t* hi, uint64_t base,
              size_t floor, std::vector<RankRun>* runs) const;

 private:
  uint64_t extents_[kMaxRankRunDims];
  uint64_t stride_[kMaxRankRunDims];
  int k_ = 0;
};

/// Decomposes the half-open box [lo, hi) of a k-dimensional row-major grid
/// with per-position extents `extents` (position 0 slowest, position k-1
/// fastest) into rank runs offset by `base`. Runs are appended in ascending
/// order and coalesced against entries at index >= `floor`. O(runs) time:
/// the fully-covered fastest positions fold into the per-row run length.
/// One-shot convenience over RowMajorBoxEmitter — callers with a fixed grid
/// and many boxes should hold an emitter instead.
void AppendRowMajorBoxRuns(const uint64_t* extents, const uint64_t* lo,
                           const uint64_t* hi, int k, uint64_t base,
                           size_t floor, std::vector<RankRun>* runs);

}  // namespace snakes

#endif  // SNAKES_CURVES_RANK_RUN_H_
