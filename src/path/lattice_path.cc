#include "path/lattice_path.h"

#include <algorithm>

#include "util/logging.h"

namespace snakes {

Result<LatticePath> LatticePath::FromSteps(const QueryClassLattice& lattice,
                                           std::vector<int> steps) {
  std::vector<int> seen(static_cast<size_t>(lattice.num_dims()), 0);
  for (int d : steps) {
    if (d < 0 || d >= lattice.num_dims()) {
      return Status::InvalidArgument("step dimension " + std::to_string(d) +
                                     " out of range");
    }
    ++seen[static_cast<size_t>(d)];
  }
  for (int d = 0; d < lattice.num_dims(); ++d) {
    if (seen[static_cast<size_t>(d)] != lattice.levels(d)) {
      return Status::InvalidArgument(
          "path must step dimension " + std::to_string(d) + " exactly " +
          std::to_string(lattice.levels(d)) + " times, got " +
          std::to_string(seen[static_cast<size_t>(d)]));
    }
  }
  return LatticePath(lattice, std::move(steps));
}

Result<LatticePath> LatticePath::FromPoints(
    const QueryClassLattice& lattice, const std::vector<QueryClass>& points) {
  if (points.empty() || points.front() != lattice.Bottom() ||
      points.back() != lattice.Top()) {
    return Status::InvalidArgument(
        "path must run from the bottom class to the top class");
  }
  std::vector<int> steps;
  steps.reserve(points.size() - 1);
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    if (!points[i].IsSuccessor(points[i + 1])) {
      return Status::InvalidArgument("point " + points[i + 1].ToString() +
                                     " is not a successor of " +
                                     points[i].ToString());
    }
    for (int d = 0; d < lattice.num_dims(); ++d) {
      if (points[i + 1].level(d) == points[i].level(d) + 1) {
        steps.push_back(d);
        break;
      }
    }
  }
  return FromSteps(lattice, std::move(steps));
}

Result<LatticePath> LatticePath::RowMajor(const QueryClassLattice& lattice,
                                          const std::vector<int>& outer_to_inner) {
  if (static_cast<int>(outer_to_inner.size()) != lattice.num_dims()) {
    return Status::InvalidArgument("axis order must list every dimension");
  }
  std::vector<bool> used(static_cast<size_t>(lattice.num_dims()), false);
  for (int d : outer_to_inner) {
    if (d < 0 || d >= lattice.num_dims() || used[static_cast<size_t>(d)]) {
      return Status::InvalidArgument("axis order must be a permutation");
    }
    used[static_cast<size_t>(d)] = true;
  }
  std::vector<int> steps;
  for (auto it = outer_to_inner.rbegin(); it != outer_to_inner.rend(); ++it) {
    for (int i = 0; i < lattice.levels(*it); ++i) steps.push_back(*it);
  }
  return FromSteps(lattice, std::move(steps));
}

LatticePath LatticePath::RoundRobin(const QueryClassLattice& lattice) {
  std::vector<int> remaining(static_cast<size_t>(lattice.num_dims()));
  int total = 0;
  for (int d = 0; d < lattice.num_dims(); ++d) {
    remaining[static_cast<size_t>(d)] = lattice.levels(d);
    total += lattice.levels(d);
  }
  std::vector<int> steps;
  steps.reserve(static_cast<size_t>(total));
  while (static_cast<int>(steps.size()) < total) {
    for (int d = 0; d < lattice.num_dims(); ++d) {
      if (remaining[static_cast<size_t>(d)] > 0) {
        steps.push_back(d);
        --remaining[static_cast<size_t>(d)];
      }
    }
  }
  auto path = FromSteps(lattice, std::move(steps));
  SNAKES_CHECK(path.ok());
  return std::move(path).value();
}

std::vector<QueryClass> LatticePath::Points() const {
  std::vector<QueryClass> points;
  points.reserve(steps_.size() + 1);
  QueryClass current = lattice_.Bottom();
  points.push_back(current);
  for (int d : steps_) {
    current = current.Successor(d);
    points.push_back(current);
  }
  return points;
}

bool LatticePath::Contains(const QueryClass& c) const {
  QueryClass current = lattice_.Bottom();
  if (current == c) return true;
  for (int d : steps_) {
    current = current.Successor(d);
    if (current == c) return true;
  }
  return false;
}

QueryClass LatticePath::MaxPointBelow(const QueryClass& c) const {
  QueryClass best = lattice_.Bottom();
  QueryClass current = best;
  for (int d : steps_) {
    current = current.Successor(d);
    if (current.DominatedBy(c)) best = current;
  }
  return best;
}

std::string LatticePath::ToString() const {
  std::string out;
  for (const auto& p : Points()) {
    if (!out.empty()) out += "-";
    out += p.ToString();
  }
  return out;
}

namespace {

void EnumerateRec(const QueryClassLattice& lattice, QueryClass* current,
                  std::vector<int>* steps, uint64_t max_paths,
                  std::vector<LatticePath>* out, Status* status) {
  if (!status->ok()) return;
  bool at_top = true;
  for (int d = 0; d < lattice.num_dims(); ++d) {
    if (current->level(d) < lattice.levels(d)) {
      at_top = false;
      break;
    }
  }
  if (at_top) {
    if (out->size() >= max_paths) {
      *status = Status::OutOfRange("more than " + std::to_string(max_paths) +
                                   " lattice paths");
      return;
    }
    auto path = LatticePath::FromSteps(lattice, *steps);
    SNAKES_CHECK(path.ok());
    out->push_back(std::move(path).value());
    return;
  }
  for (int d = 0; d < lattice.num_dims(); ++d) {
    if (current->level(d) >= lattice.levels(d)) continue;
    current->set_level(d, current->level(d) + 1);
    steps->push_back(d);
    EnumerateRec(lattice, current, steps, max_paths, out, status);
    steps->pop_back();
    current->set_level(d, current->level(d) - 1);
  }
}

}  // namespace

Result<std::vector<LatticePath>> EnumerateAllPaths(
    const QueryClassLattice& lattice, uint64_t max_paths) {
  std::vector<LatticePath> out;
  std::vector<int> steps;
  QueryClass current = lattice.Bottom();
  Status status = Status::OK();
  EnumerateRec(lattice, &current, &steps, max_paths, &out, &status);
  if (!status.ok()) return status;
  return out;
}

}  // namespace snakes
