#ifndef SNAKES_PATH_LATTICE_PATH_H_
#define SNAKES_PATH_LATTICE_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/lattice.h"
#include "lattice/query_class.h"
#include "util/result.h"

namespace snakes {

/// A monotone lattice path (Definition 3): a chain of d-successor steps from
/// the bottom query class (0,...,0) to the top (l_1,...,l_k). Each path is a
/// clustering strategy: its edges, read from the bottom up, are the nested
/// loops (innermost first) that linearize the data grid (Section 3).
///
/// Stored compactly as the step sequence (the dimension advanced by each
/// edge); the visited points are derived. The number of steps is
/// sum_d l_d, and each dimension d appears exactly l_d times.
class LatticePath {
 public:
  /// Builds a path from the per-step dimensions, bottom to top. Fails unless
  /// each dimension d appears exactly lattice.levels(d) times.
  static Result<LatticePath> FromSteps(const QueryClassLattice& lattice,
                                       std::vector<int> steps);

  /// Builds a path from its full point sequence (must start at bottom, end at
  /// top, and advance one dimension per step).
  static Result<LatticePath> FromPoints(const QueryClassLattice& lattice,
                                        const std::vector<QueryClass>& points);

  /// The row-major strategy with the given axis order: `outer_to_inner[0]`
  /// is the outermost (slowest varying) dimension. The path climbs all
  /// levels of the innermost dimension first. Passing {0, 1} on the 2-D toy
  /// schema yields the paper's P1.
  static Result<LatticePath> RowMajor(const QueryClassLattice& lattice,
                                      const std::vector<int>& outer_to_inner);

  /// The "balanced" path that cycles through dimensions round-robin, one
  /// level at a time (the paper's P2 on the toy schema). Dimensions whose
  /// levels are exhausted are skipped.
  static LatticePath RoundRobin(const QueryClassLattice& lattice);

  const QueryClassLattice& lattice() const { return lattice_; }

  /// Step dimensions, bottom to top; steps()[0] is the innermost loop.
  const std::vector<int>& steps() const { return steps_; }

  int num_steps() const { return static_cast<int>(steps_.size()); }

  /// The visited points, bottom first (num_steps() + 1 entries).
  std::vector<QueryClass> Points() const;

  /// True iff `c` lies on the path.
  bool Contains(const QueryClass& c) const;

  /// The maximal path point dominated by `c`. Every class dominates the
  /// bottom, so this always exists, and by monotonicity it is unique.
  QueryClass MaxPointBelow(const QueryClass& c) const;

  /// "(0,0)-(0,1)-(1,1)-(1,2)-(2,2)".
  std::string ToString() const;

  bool operator==(const LatticePath& o) const { return steps_ == o.steps_; }
  bool operator!=(const LatticePath& o) const { return steps_ != o.steps_; }

 private:
  LatticePath(QueryClassLattice lattice, std::vector<int> steps)
      : lattice_(std::move(lattice)), steps_(std::move(steps)) {}

  QueryClassLattice lattice_;
  std::vector<int> steps_;
};

/// Enumerates every monotone lattice path of `lattice`. The count is the
/// multinomial (sum l_d)! / prod(l_d!), so this is for small lattices only
/// (verification, exhaustive ablations); fails above `max_paths`.
Result<std::vector<LatticePath>> EnumerateAllPaths(
    const QueryClassLattice& lattice, uint64_t max_paths = 1'000'000);

}  // namespace snakes

#endif  // SNAKES_PATH_LATTICE_PATH_H_
