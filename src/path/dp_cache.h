#ifndef SNAKES_PATH_DP_CACHE_H_
#define SNAKES_PATH_DP_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace snakes {

/// Memoized lattice-path dynamic programs, keyed by workload fingerprint.
///
/// Unlike per-class strategy costs (workload-independent; see
/// cost/cost_cache.h), the two DP solutions depend on the entire probability
/// vector, so they can only be reused when the workload is *identical* —
/// which is exactly what happens when the drift estimator smooths away a
/// quiet epoch, or when the engine re-plans under an unchanged estimate.
/// Entries are verified against the stored probability vector on lookup, so
/// a 64-bit fingerprint collision degrades to a miss, never a wrong path.
class DpCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  DpCache() = default;

  /// FindOptimalLatticePath through the memo; bit-identical to the direct
  /// call (the DP itself is bit-identical at any thread count).
  Result<OptimalPathResult> OptimalPath(const Workload& mu,
                                        ThreadPool* pool = nullptr,
                                        const ObsSink& obs = {});

  /// FindOptimalSnakedLatticePath through the memo.
  Result<OptimalPathResult> OptimalSnakedPath(const Workload& mu,
                                              const ObsSink& obs = {});

  Stats stats() const { return stats_; }
  uint64_t size() const { return unsnaked_.size() + snaked_.size(); }
  void Clear();

 private:
  struct Entry {
    std::vector<double> probs;  // exact key verification
    OptimalPathResult result;
  };

  /// The cached entry for `mu` in `map`, or nullptr. Exact-verifies probs.
  const Entry* Lookup(const std::unordered_map<uint64_t, Entry>& map,
                      uint64_t fingerprint, const Workload& mu) const;
  static Entry MakeEntry(const Workload& mu, OptimalPathResult result);

  std::unordered_map<uint64_t, Entry> unsnaked_;
  std::unordered_map<uint64_t, Entry> snaked_;
  Stats stats_;
};

}  // namespace snakes

#endif  // SNAKES_PATH_DP_CACHE_H_
