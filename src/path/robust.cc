#include "path/robust.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cost/workload_cost.h"
#include "path/snaked_dp.h"
#include "util/logging.h"

namespace snakes {

namespace {

Status CheckScenarios(const std::vector<Workload>& scenarios) {
  if (scenarios.empty()) {
    return Status::InvalidArgument("need at least one workload scenario");
  }
  for (const Workload& mu : scenarios) {
    if (!(mu.lattice() == scenarios.front().lattice())) {
      return Status::InvalidArgument(
          "all scenarios must share one query-class lattice");
    }
  }
  return Status::OK();
}

std::vector<double> ScenarioCosts(const std::vector<Workload>& scenarios,
                                  const LatticePath& path) {
  std::vector<double> costs;
  costs.reserve(scenarios.size());
  for (const Workload& mu : scenarios) {
    costs.push_back(ExpectedSnakedPathCost(mu, path));
  }
  return costs;
}

RobustPathResult MakeResult(const std::vector<Workload>& scenarios,
                            LatticePath path) {
  std::vector<double> costs = ScenarioCosts(scenarios, path);
  const double worst = *std::max_element(costs.begin(), costs.end());
  return RobustPathResult{std::move(path), worst, std::move(costs)};
}

}  // namespace

Result<Workload> MixWorkloads(const std::vector<Workload>& scenarios,
                              const std::vector<double>& weights) {
  SNAKES_RETURN_IF_ERROR(CheckScenarios(scenarios));
  if (!weights.empty() && weights.size() != scenarios.size()) {
    return Status::InvalidArgument("need one weight per scenario");
  }
  const QueryClassLattice& lattice = scenarios.front().lattice();
  double total = 0.0;
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const double w = weights.empty() ? 1.0 : weights[i];
    if (w < 0.0) return Status::InvalidArgument("negative scenario weight");
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("scenario weights must sum to > 0");
  }
  std::vector<std::pair<QueryClass, double>> masses;
  for (uint64_t c = 0; c < lattice.size(); ++c) {
    double p = 0.0;
    for (size_t i = 0; i < scenarios.size(); ++i) {
      const double w = weights.empty() ? 1.0 : weights[i];
      p += w / total * scenarios[i].probability_at(c);
    }
    if (p > 0.0) masses.emplace_back(lattice.ClassAt(c), p);
  }
  return Workload::FromMasses(lattice, masses, /*normalize=*/true);
}

Result<RobustPathResult> RobustSnakedPath(
    const std::vector<Workload>& scenarios, int rounds) {
  SNAKES_RETURN_IF_ERROR(CheckScenarios(scenarios));
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");

  const size_t n = scenarios.size();
  std::vector<double> weights(n, 1.0);
  // Learning rate per the standard MW analysis; costs are rescaled to [0,1]
  // by the running maximum.
  const double eta = std::sqrt(std::log(static_cast<double>(n) + 1.0) /
                               static_cast<double>(rounds));

  // Seed with the round-robin path so the result is always a valid path
  // even if every DP answer ties it.
  RobustPathResult best =
      MakeResult(scenarios, LatticePath::RoundRobin(scenarios.front().lattice()));
  double scale = 1.0;
  for (int round = 0; round < rounds; ++round) {
    SNAKES_ASSIGN_OR_RETURN(Workload mixture,
                            MixWorkloads(scenarios, weights));
    SNAKES_ASSIGN_OR_RETURN(OptimalPathResult dp,
                            FindOptimalSnakedLatticePath(mixture));
    RobustPathResult candidate = MakeResult(scenarios, dp.path);
    if (candidate.minimax_cost < best.minimax_cost) best = candidate;
    scale = std::max(scale, candidate.minimax_cost);
    // Adversary shifts weight toward the scenarios this path serves worst.
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weights[i] *= std::exp(eta * candidate.scenario_costs[i] / scale);
      total += weights[i];
    }
    for (double& w : weights) w /= total;
  }
  return best;
}

Result<RobustPathResult> RobustSnakedPathBruteForce(
    const std::vector<Workload>& scenarios, uint64_t max_paths) {
  SNAKES_RETURN_IF_ERROR(CheckScenarios(scenarios));
  SNAKES_ASSIGN_OR_RETURN(
      std::vector<LatticePath> all,
      EnumerateAllPaths(scenarios.front().lattice(), max_paths));
  RobustPathResult best = MakeResult(scenarios, all.front());
  for (size_t i = 1; i < all.size(); ++i) {
    RobustPathResult candidate = MakeResult(scenarios, all[i]);
    if (candidate.minimax_cost < best.minimax_cost) best = candidate;
  }
  return best;
}

}  // namespace snakes
