#include "path/snaking.h"

#include <algorithm>
#include <cmath>

#include "cost/class_cost.h"
#include "cost/workload_cost.h"

namespace snakes {

double SnakingBenefit(const LatticePath& path, const QueryClass& cls) {
  return DistToPath(path, cls) / DistToSnakedPath(path, cls);
}

double MaxSnakingBenefit(const LatticePath& path) {
  const QueryClassLattice& lat = path.lattice();
  double best = 1.0;
  for (uint64_t i = 0; i < lat.size(); ++i) {
    best = std::max(best, SnakingBenefit(path, lat.ClassAt(i)));
  }
  return best;
}

double SnakingCostRatio(const Workload& mu, const LatticePath& path) {
  return ExpectedPathCost(mu, path) / ExpectedSnakedPathCost(mu, path);
}

double TheoremThreeBound(int n) {
  return 1.0 / (0.5 + std::pow(2.0, -(n + 1)));
}

}  // namespace snakes
