#ifndef SNAKES_PATH_ROBUST_H_
#define SNAKES_PATH_ROBUST_H_

#include <vector>

#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "util/result.h"

namespace snakes {

/// Robust clustering across workload scenarios — a natural extension of the
/// paper's single-workload optimization for deployments that must serve,
/// say, both month-end reporting and ad-hoc probing without re-clustering.
///
/// Because cost_mu(P) is linear in mu, optimizing an *average* of scenarios
/// is just the Section-4 DP on the mixture workload (see MixWorkloads). The
/// harder objective is minimax:
///
///   minimize over paths P   of   max over scenarios i of cost_{mu_i}(P),
///
/// which RobustSnakedPath approximates with multiplicative weights: the
/// adversary maintains a distribution over scenarios, the DP answers each
/// round with the best snaked path for the current mixture, and the weights
/// tilt toward the scenarios that path serves worst. The best path seen
/// (by true minimax value) is returned; for small lattices the exhaustive
/// reference is exact.
struct RobustPathResult {
  LatticePath path;
  /// max over scenarios of the snaked cost of `path`.
  double minimax_cost;
  /// Per-scenario snaked costs of `path`.
  std::vector<double> scenario_costs;
};

/// The mixture workload sum_i weight_i * mu_i (weights normalized). All
/// scenarios must share one lattice.
Result<Workload> MixWorkloads(const std::vector<Workload>& scenarios,
                              const std::vector<double>& weights = {});

/// Multiplicative-weights approximation of the minimax snaked path.
/// `rounds` ~ 50 suffices for the lattices in this repo.
Result<RobustPathResult> RobustSnakedPath(
    const std::vector<Workload>& scenarios, int rounds = 64);

/// Exhaustive reference (exponential; verification only).
Result<RobustPathResult> RobustSnakedPathBruteForce(
    const std::vector<Workload>& scenarios, uint64_t max_paths = 1'000'000);

}  // namespace snakes

#endif  // SNAKES_PATH_ROBUST_H_
