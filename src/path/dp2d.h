#ifndef SNAKES_PATH_DP2D_H_
#define SNAKES_PATH_DP2D_H_

#include <vector>

#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/lattice_path.h"
#include "util/result.h"

namespace snakes {

/// Result of the Figure-4 dynamic program: the optimal monotone lattice path
/// for a workload and its expected cost, plus the intermediate tables for
/// inspection and testing.
struct OptimalPath2DResult {
  LatticePath path;
  double cost;
  /// Row-major (i * (n+1) + j) tables over classes (i, j); i indexes
  /// dimension 0 (the paper's A), j dimension 1 (B).
  std::vector<double> cost_table;
  std::vector<double> raw_a;
  std::vector<double> raw_b;
};

/// Algorithm Find-Optimal-Lattice-Path (Figure 4), verbatim: computes the
/// optimal 2-D lattice path and its expected cost in
/// O((m+1)(n+1)) additions/multiplications/comparisons.
/// Fails unless the workload's lattice has exactly two dimensions.
/// `obs` (optional) records a "dp/2d" span, dp.cells_relaxed and the
/// dp.table_bytes gauge; the result is identical with or without it.
Result<OptimalPath2DResult> FindOptimalLatticePath2D(const Workload& mu,
                                                     const ObsSink& obs = {});

}  // namespace snakes

#endif  // SNAKES_PATH_DP2D_H_
