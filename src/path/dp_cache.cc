#include "path/dp_cache.h"

#include <cstring>
#include <utility>

#include "lattice/workload_delta.h"

namespace snakes {

const DpCache::Entry* DpCache::Lookup(
    const std::unordered_map<uint64_t, Entry>& map, uint64_t fingerprint,
    const Workload& mu) const {
  const auto it = map.find(fingerprint);
  if (it == map.end()) return nullptr;
  if (it->second.probs.size() != mu.size()) return nullptr;
  for (uint64_t i = 0; i < mu.size(); ++i) {
    // Bit-exact verification: a fingerprint collision must miss, not alias.
    uint64_t x, y;
    const double pa = it->second.probs[i], pb = mu.probability_at(i);
    std::memcpy(&x, &pa, sizeof(x));
    std::memcpy(&y, &pb, sizeof(y));
    if (x != y) return nullptr;
  }
  return &it->second;
}

DpCache::Entry DpCache::MakeEntry(const Workload& mu,
                                  OptimalPathResult result) {
  std::vector<double> probs(mu.size());
  for (uint64_t i = 0; i < mu.size(); ++i) probs[i] = mu.probability_at(i);
  return Entry{std::move(probs), std::move(result)};
}

Result<OptimalPathResult> DpCache::OptimalPath(const Workload& mu,
                                               ThreadPool* pool,
                                               const ObsSink& obs) {
  const uint64_t fp = WorkloadFingerprint(mu);
  if (const Entry* entry = Lookup(unsnaked_, fp, mu)) {
    ++stats_.hits;
    return entry->result;
  }
  ++stats_.misses;
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult result,
                          FindOptimalLatticePath(mu, pool, obs));
  const Entry& stored =
      unsnaked_.insert_or_assign(fp, MakeEntry(mu, std::move(result)))
          .first->second;
  return stored.result;
}

Result<OptimalPathResult> DpCache::OptimalSnakedPath(const Workload& mu,
                                                     const ObsSink& obs) {
  const uint64_t fp = WorkloadFingerprint(mu);
  if (const Entry* entry = Lookup(snaked_, fp, mu)) {
    ++stats_.hits;
    return entry->result;
  }
  ++stats_.misses;
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult result,
                          FindOptimalSnakedLatticePath(mu, obs));
  const Entry& stored =
      snaked_.insert_or_assign(fp, MakeEntry(mu, std::move(result)))
          .first->second;
  return stored.result;
}

void DpCache::Clear() {
  unsnaked_.clear();
  snaked_.clear();
  stats_ = Stats();
}

}  // namespace snakes
