#ifndef SNAKES_PATH_DPKD_H_
#define SNAKES_PATH_DPKD_H_

#include <vector>

#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/lattice_path.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace snakes {

/// Result of the k-dimensional optimal-lattice-path dynamic program.
struct OptimalPathResult {
  LatticePath path;
  double cost;
  /// cost_table[lattice.Index(u)] = optimal expected cost of the sublattice
  /// rooted at u (the DP value).
  std::vector<double> cost_table;
};

/// Generalizes the Figure-4 dynamic program to any number of dimensions
/// (the extension Section 4 sketches). Stepping dimension d at lattice point
/// u commits raw_d(u) = sum over {v >= u : v_d = u_d} of p_v * len(u -> v);
/// the raw_d tables are separable weighted suffix sums computed with k-1
/// passes per dimension, so the whole DP runs in O(k^2 * |L|) time —
/// linear in the lattice size and quadratic in the dimension count.
///
/// The k per-dimension raw_d passes are independent; passing a ThreadPool
/// computes them in parallel across dimensions (each dimension's table is
/// built by one task with identical arithmetic, so the result is
/// bit-identical to the serial run). nullptr = serial.
///
/// `obs` (optional) records dp.cells_relaxed / dp.raw_cells counters, a
/// dp.table_bytes gauge, and a "dp/kd" span with one "dp/raw_d" child per
/// dimension. Instrumentation never changes the computed result.
Result<OptimalPathResult> FindOptimalLatticePath(const Workload& mu,
                                                 ThreadPool* pool = nullptr,
                                                 const ObsSink& obs = {});

/// Exhaustive reference: minimizes ExpectedPathCost over every monotone
/// lattice path. Exponential; for verification on small lattices only.
Result<OptimalPathResult> FindOptimalLatticePathBruteForce(
    const Workload& mu, uint64_t max_paths = 1'000'000);

}  // namespace snakes

#endif  // SNAKES_PATH_DPKD_H_
