#include "path/dp2d.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace snakes {

Result<OptimalPath2DResult> FindOptimalLatticePath2D(const Workload& mu,
                                                     const ObsSink& obs) {
  const QueryClassLattice& lat = mu.lattice();
  if (lat.num_dims() != 2) {
    return Status::InvalidArgument(
        "FindOptimalLatticePath2D requires a 2-D lattice");
  }
  ScopedSpan span(obs.tracer, "dp/2d", "dp");
  const int m = lat.levels(0);  // dimension A
  const int n = lat.levels(1);  // dimension B
  const int w = n + 1;
  auto at = [w](int i, int j) { return static_cast<size_t>(i * w + j); };
  auto p = [&](int i, int j) {
    return mu.probability(QueryClass{i, j});
  };
  auto fA = [&](int i) { return lat.fanout(0, i); };
  auto fB = [&](int j) { return lat.fanout(1, j); };

  const size_t cells = static_cast<size_t>((m + 1) * w);
  std::vector<double> cost(cells, 0.0), raw_a(cells, 0.0), raw_b(cells, 0.0);
  // choice[(i,j)] = dimension stepped by the optimal path leaving (i, j).
  std::vector<int> choice(cells, -1);

  // The recurrences of Figure 4, in its exact sweep order.
  cost[at(m, n)] = p(m, n);
  for (int i = m; i >= 0; --i) raw_a[at(i, n)] = p(i, n);
  for (int j = n; j >= 0; --j) raw_b[at(m, j)] = p(m, j);
  for (int j = n; j >= 0; --j) {
    for (int i = m; i >= 1; --i) {
      raw_b[at(i - 1, j)] = p(i - 1, j) + fA(i) * raw_b[at(i, j)];
    }
  }
  for (int i = m; i >= 0; --i) {
    for (int j = n; j >= 1; --j) {
      raw_a[at(i, j - 1)] = p(i, j - 1) + fB(j) * raw_a[at(i, j)];
    }
  }
  for (int i = m; i >= 1; --i) {
    cost[at(i - 1, n)] = p(i - 1, n) + cost[at(i, n)];
    choice[at(i - 1, n)] = 0;
  }
  for (int j = n; j >= 1; --j) {
    cost[at(m, j - 1)] = p(m, j - 1) + cost[at(m, j)];
    choice[at(m, j - 1)] = 1;
  }
  uint64_t relaxations = 0;  // candidate steps examined (2 per inner cell)
  for (int i = m - 1; i >= 0; --i) {
    for (int j = n - 1; j >= 0; --j) {
      relaxations += 2;
      const double step_a = cost[at(i + 1, j)] + raw_a[at(i, j)];
      const double step_b = cost[at(i, j + 1)] + raw_b[at(i, j)];
      if (step_a < step_b) {
        choice[at(i, j)] = 0;
        cost[at(i, j)] = step_a;
      } else {
        choice[at(i, j)] = 1;
        cost[at(i, j)] = step_b;
      }
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("dp.cells_relaxed")->Inc(relaxations);
    obs.metrics->GetGauge("dp.table_bytes")
        ->Set(static_cast<double>(3 * cells * sizeof(double) +
                                  cells * sizeof(int)));
  }

  // Reconstruct opt_path(0, 0).
  std::vector<int> steps;
  int i = 0, j = 0;
  while (i < m || j < n) {
    const int d = choice[at(i, j)];
    SNAKES_CHECK(d == 0 || d == 1);
    steps.push_back(d);
    if (d == 0) {
      ++i;
    } else {
      ++j;
    }
  }
  SNAKES_ASSIGN_OR_RETURN(LatticePath path,
                          LatticePath::FromSteps(lat, std::move(steps)));
  OptimalPath2DResult result{std::move(path), cost[at(0, 0)], std::move(cost),
                             std::move(raw_a), std::move(raw_b)};
  return result;
}

}  // namespace snakes
