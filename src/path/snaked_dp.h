#ifndef SNAKES_PATH_SNAKED_DP_H_
#define SNAKES_PATH_SNAKED_DP_H_

#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/dpkd.h"
#include "path/lattice_path.h"
#include "util/result.h"

namespace snakes {

/// Finds the lattice path whose SNAKED clustering has the least expected
/// cost — the "optimal snaked lattice path" of Corollary 1, which the paper
/// only approximates by snaking the unsnaked optimum. An extension beyond
/// the paper, using the same machinery:
///
/// The snaked cost decomposes per path step. Every step taken at lattice
/// point u in dimension d contributes loop edges of type (d, u_d + 1); each
/// such edge is internal to exactly the classes c with c_d >= u_d + 1, and
/// the number of edges depends only on u (the loop's place value is the
/// current block volume). Hence
///
///   cost_snaked(P) = sum_c p_c * vol(c)            (no edges absorbed)
///                  - sum_{steps (u, d) of P} gain(u, d),
///   gain(u, d) = (f - 1)/f * (N / vol(u)) * sum_{c : c_d > u_d} p_c / q(c),
///
/// with f = f(d, u_d + 1), N the cell count, vol(x) the cells per class-x
/// query and q(c) the query count of class c ((f-1)/f * N/vol(u) is the
/// number of loop edges the step contributes). The gains are precomputed in
/// O(k |L|) and the maximum-gain monotone path found by the same sweep as
/// the Section-4 DP. The returned result's cost_table holds the
/// gain-to-top values (cost = total_volume - gain at the bottom).
///
/// By Theorem 2, on complete binary 2-D schemas the returned clustering is
/// globally optimal over ALL strategies, not just lattice paths.
///
/// `obs` (optional) records dp.cells_relaxed, a dp.snaked_table_bytes gauge
/// and a "dp/snaked" span; the result is identical with or without it.
Result<OptimalPathResult> FindOptimalSnakedLatticePath(const Workload& mu,
                                                       const ObsSink& obs = {});

/// Exhaustive reference (exponential; verification only).
Result<OptimalPathResult> FindOptimalSnakedLatticePathBruteForce(
    const Workload& mu, uint64_t max_paths = 1'000'000);

}  // namespace snakes

#endif  // SNAKES_PATH_SNAKED_DP_H_
