#ifndef SNAKES_PATH_SNAKING_H_
#define SNAKES_PATH_SNAKING_H_

#include "lattice/workload.h"
#include "path/lattice_path.h"

namespace snakes {

/// ben_P(c) (Section 5.2): the factor by which snaking improves the average
/// cost of class `c` under path P, dist_P(c) / dist_Ptilde(c). Always >= 1
/// and, by Theorem 3, < 2 for complete binary 2-D hierarchies.
double SnakingBenefit(const LatticePath& path, const QueryClass& cls);

/// The largest per-class snaking benefit of `path` over its whole lattice.
double MaxSnakingBenefit(const LatticePath& path);

/// cost_mu(P) / cost_mu(Ptilde): the workload-level improvement from
/// snaking. Theorem 3 bounds this below 2.
double SnakingCostRatio(const Workload& mu, const LatticePath& path);

/// The analytic upper bound of Theorem 3 for an n-level complete binary
/// 2-D hierarchy: 1 / (1/2 + 1/2^(n+1)).
double TheoremThreeBound(int n);

}  // namespace snakes

#endif  // SNAKES_PATH_SNAKING_H_
