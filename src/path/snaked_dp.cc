#include "path/snaked_dp.h"

#include <limits>
#include <vector>

#include "cost/workload_cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace snakes {

Result<OptimalPathResult> FindOptimalSnakedLatticePath(const Workload& mu,
                                                       const ObsSink& obs) {
  const QueryClassLattice& lat = mu.lattice();
  const int k = lat.num_dims();
  const uint64_t size = lat.size();
  ScopedSpan span(obs.tracer, "dp/snaked", "dp");
  span.AddArg("dims", static_cast<uint64_t>(k));
  span.AddArg("lattice_size", size);

  // Per-dimension block volumes and query-count factors.
  // block[d][l] = leaves per level-l block of dim d; queries_factor[d][l] =
  // blocks at level l of dim d.
  std::vector<std::vector<double>> block(static_cast<size_t>(k));
  std::vector<std::vector<double>> blocks_at(static_cast<size_t>(k));
  double total_cells = 1.0;
  for (int d = 0; d < k; ++d) {
    const int levels = lat.levels(d);
    auto& b = block[static_cast<size_t>(d)];
    b.resize(static_cast<size_t>(levels) + 1);
    b[0] = 1.0;
    for (int l = 1; l <= levels; ++l) b[l] = b[l - 1] * lat.fanout(d, l);
    total_cells *= b[static_cast<size_t>(levels)];
    auto& n = blocks_at[static_cast<size_t>(d)];
    n.resize(static_cast<size_t>(levels) + 1);
    for (int l = 0; l <= levels; ++l) {
      n[l] = b[static_cast<size_t>(levels)] / b[l];
    }
  }

  auto vol = [&](const QueryClass& c) {
    double v = 1.0;
    for (int d = 0; d < k; ++d) {
      v *= block[static_cast<size_t>(d)][static_cast<size_t>(c.level(d))];
    }
    return v;
  };
  auto queries = [&](const QueryClass& c) {
    double q = 1.0;
    for (int d = 0; d < k; ++d) {
      q *= blocks_at[static_cast<size_t>(d)][static_cast<size_t>(c.level(d))];
    }
    return q;
  };

  // Base cost (no absorption) and the per-(dim, level) absorption weights
  // w[d][l] = sum over classes with c_d >= l of p_c / q(c).
  double base = 0.0;
  std::vector<std::vector<double>> w(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) {
    w[static_cast<size_t>(d)].assign(static_cast<size_t>(lat.levels(d)) + 2,
                                     0.0);
  }
  for (uint64_t i = 0; i < size; ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    const QueryClass c = lat.ClassAt(i);
    base += p * vol(c);
    const double ratio = p / queries(c);
    for (int d = 0; d < k; ++d) {
      w[static_cast<size_t>(d)][static_cast<size_t>(c.level(d))] += ratio;
    }
  }
  // Suffix sums: w[d][l] <- sum_{v >= l}.
  for (int d = 0; d < k; ++d) {
    auto& wd = w[static_cast<size_t>(d)];
    for (int l = static_cast<int>(wd.size()) - 2; l >= 0; --l) {
      wd[static_cast<size_t>(l)] += wd[static_cast<size_t>(l) + 1];
    }
  }

  // Maximum-gain DP over the lattice (same sweep as FindOptimalLatticePath).
  std::vector<double> gain(size, 0.0);
  std::vector<int> choice(size, -1);
  uint64_t relaxations = 0;  // candidate steps examined by the sweep
  for (uint64_t i = size; i-- > 0;) {
    const QueryClass u = lat.ClassAt(i);
    double u_vol = vol(u);
    double best = -1.0;
    int best_dim = -1;
    for (int d = 0; d < k; ++d) {
      if (u.level(d) >= lat.levels(d)) continue;
      ++relaxations;
      const double f = lat.fanout(d, u.level(d) + 1);
      const double edges = (f - 1.0) / f * (total_cells / u_vol);
      const double step_gain =
          edges * w[static_cast<size_t>(d)][static_cast<size_t>(u.level(d)) + 1];
      const double candidate = step_gain + gain[lat.Index(u.Successor(d))];
      if (candidate > best) {
        best = candidate;
        best_dim = d;
      }
    }
    if (best_dim >= 0) {
      gain[i] = best;
      choice[i] = best_dim;
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("dp.cells_relaxed")->Inc(relaxations);
    obs.metrics->GetGauge("dp.snaked_table_bytes")
        ->Set(static_cast<double>(size * sizeof(double) + size * sizeof(int)));
  }

  std::vector<int> steps;
  QueryClass u = lat.Bottom();
  while (u != lat.Top()) {
    const int d = choice[lat.Index(u)];
    SNAKES_CHECK(d >= 0) << "no choice recorded at " << u.ToString();
    steps.push_back(d);
    u = u.Successor(d);
  }
  SNAKES_ASSIGN_OR_RETURN(LatticePath path,
                          LatticePath::FromSteps(lat, std::move(steps)));
  const double cost = base - gain[lat.Index(lat.Bottom())];
  OptimalPathResult result{std::move(path), cost, std::move(gain)};
  return result;
}

Result<OptimalPathResult> FindOptimalSnakedLatticePathBruteForce(
    const Workload& mu, uint64_t max_paths) {
  SNAKES_ASSIGN_OR_RETURN(std::vector<LatticePath> all,
                          EnumerateAllPaths(mu.lattice(), max_paths));
  SNAKES_CHECK(!all.empty());
  double best_cost = std::numeric_limits<double>::infinity();
  const LatticePath* best = nullptr;
  for (const LatticePath& path : all) {
    const double c = ExpectedSnakedPathCost(mu, path);
    if (c < best_cost) {
      best_cost = c;
      best = &path;
    }
  }
  OptimalPathResult result{*best, best_cost, {}};
  return result;
}

}  // namespace snakes
