#include "path/dpkd.h"

#include <limits>

#include "cost/workload_cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace snakes {

Result<OptimalPathResult> FindOptimalLatticePath(const Workload& mu,
                                                 ThreadPool* pool,
                                                 const ObsSink& obs) {
  const QueryClassLattice& lat = mu.lattice();
  const int k = lat.num_dims();
  const uint64_t size = lat.size();
  ScopedSpan span(obs.tracer, "dp/kd", "dp");
  span.AddArg("dims", static_cast<uint64_t>(k));
  span.AddArg("lattice_size", size);

  // raw[d][index(u)] = cost committed when the path steps dimension d at u.
  // Built by composing, over every other dimension d', the suffix transform
  //   h(u) += f(d', u_{d'} + 1) * h(u + e_{d'}),
  // applied in decreasing u_{d'} order, starting from h = p. The transforms
  // are separable (each telescopes one dimension), so their composition
  // yields the weighted box sum over {v >= u : v_d = u_d}.
  //
  // The k tables are independent (each task reads only the shared lattice
  // and workload and writes only raw[d]), so they fan out across the pool,
  // one dimension per task.
  std::vector<std::vector<double>> raw(static_cast<size_t>(k));
  const auto build_raw = [&](uint64_t d_index) {
    ScopedSpan raw_span(obs.tracer, "dp/raw_d", "dp");
    raw_span.AddArg("dim", d_index);
    const int d = static_cast<int>(d_index);
    auto& h = raw[d_index];
    h.resize(size);
    for (uint64_t i = 0; i < size; ++i) h[i] = mu.probability_at(i);
    for (int other = 0; other < k; ++other) {
      if (other == d) continue;
      // Decreasing dense index visits decreasing u_other (with ties ordered
      // arbitrarily, which is fine: the transform only couples points that
      // differ in `other`).
      for (uint64_t i = size; i-- > 0;) {
        const QueryClass u = lat.ClassAt(i);
        if (u.level(other) >= lat.levels(other)) continue;
        const QueryClass up = u.Successor(other);
        h[i] += lat.EdgeWeight(u, other) * h[lat.Index(up)];
      }
    }
  };
  if (pool != nullptr && k > 1) {
    pool->ParallelFor(static_cast<uint64_t>(k), build_raw);
  } else {
    for (int d = 0; d < k; ++d) build_raw(static_cast<uint64_t>(d));
  }

  std::vector<double> cost(size, std::numeric_limits<double>::infinity());
  std::vector<int> choice(size, -1);
  // Dense index of a successor is strictly larger, so a single decreasing
  // sweep sees every successor before its predecessor.
  uint64_t relaxations = 0;  // candidate edges examined by the sweep
  {
    ScopedSpan sweep_span(obs.tracer, "dp/sweep", "dp");
    for (uint64_t i = size; i-- > 0;) {
      const QueryClass u = lat.ClassAt(i);
      bool at_top = true;
      double best = std::numeric_limits<double>::infinity();
      int best_dim = -1;
      for (int d = 0; d < k; ++d) {
        if (u.level(d) >= lat.levels(d)) continue;
        at_top = false;
        ++relaxations;
        const double candidate =
            cost[lat.Index(u.Successor(d))] + raw[static_cast<size_t>(d)][i];
        if (candidate < best) {
          best = candidate;
          best_dim = d;
        }
      }
      if (at_top) {
        cost[i] = mu.probability_at(i);
      } else {
        cost[i] = best;
        choice[i] = best_dim;
      }
    }
    sweep_span.AddArg("relaxations", relaxations);
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("dp.cells_relaxed")->Inc(relaxations);
    obs.metrics->GetCounter("dp.raw_cells")
        ->Inc(size * static_cast<uint64_t>(k));
    obs.metrics->GetGauge("dp.table_bytes")
        ->Set(static_cast<double>(
            size * (static_cast<uint64_t>(k) + 1) * sizeof(double) +
            size * sizeof(int)));
  }

  // Reconstruct the optimal path from the bottom.
  std::vector<int> steps;
  QueryClass u = lat.Bottom();
  while (u != lat.Top()) {
    const int d = choice[lat.Index(u)];
    SNAKES_CHECK(d >= 0) << "no choice recorded at " << u.ToString();
    steps.push_back(d);
    u = u.Successor(d);
  }
  SNAKES_ASSIGN_OR_RETURN(LatticePath path,
                          LatticePath::FromSteps(lat, std::move(steps)));
  const double total = cost[lat.Index(lat.Bottom())];
  OptimalPathResult result{std::move(path), total, std::move(cost)};
  return result;
}

Result<OptimalPathResult> FindOptimalLatticePathBruteForce(
    const Workload& mu, uint64_t max_paths) {
  SNAKES_ASSIGN_OR_RETURN(std::vector<LatticePath> all,
                          EnumerateAllPaths(mu.lattice(), max_paths));
  SNAKES_CHECK(!all.empty());
  double best_cost = std::numeric_limits<double>::infinity();
  const LatticePath* best = nullptr;
  for (const LatticePath& path : all) {
    const double c = ExpectedPathCost(mu, path);
    if (c < best_cost) {
      best_cost = c;
      best = &path;
    }
  }
  OptimalPathResult result{*best, best_cost, {}};
  return result;
}

}  // namespace snakes
