#ifndef SNAKES_UTIL_LOGGING_H_
#define SNAKES_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace snakes {
namespace internal {

/// Terminates the process after streaming a fatal message. Used by the CHECK
/// family; streaming into the returned object appends to the message.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line << " CHECK failed: "
            << condition << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed FatalLogMessage chain to void so that the CHECK
/// macro's ternary has matching branch types (the glog "voidify" idiom;
/// `&` binds looser than `<<`).
struct Voidify {
  void operator&(FatalLogMessage&) {}
  void operator&(FatalLogMessage&&) {}
};

}  // namespace internal
}  // namespace snakes

/// Aborts the process with a message when `cond` is false. Streaming extra
/// context is supported: SNAKES_CHECK(n > 0) << "n=" << n;
/// Internal-invariant checks only; user-input validation must return Status.
#define SNAKES_CHECK(cond)                               \
  (cond) ? (void)0                                       \
         : ::snakes::internal::Voidify() &               \
               ::snakes::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define SNAKES_CHECK_OK(expr)                                            \
  do {                                                                   \
    const ::snakes::Status _s = (expr);                                  \
    if (!_s.ok()) {                                                      \
      ::snakes::internal::FatalLogMessage(__FILE__, __LINE__, #expr)     \
          << _s.ToString();                                              \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define SNAKES_DCHECK(cond) SNAKES_CHECK(cond)
#else
#define SNAKES_DCHECK(cond) SNAKES_CHECK(true || (cond))
#endif

#endif  // SNAKES_UTIL_LOGGING_H_
