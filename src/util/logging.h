#ifndef SNAKES_UTIL_LOGGING_H_
#define SNAKES_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace snakes {

/// Small dense id of the calling thread (1 for the first thread that asks,
/// 2 for the next, ...). Stable for the thread's lifetime; used by log
/// lines and trace events, where std::thread::id's opaque hash would make
/// output unreadable.
uint64_t ThisThreadId();

namespace internal {

/// Where finished log lines go. The default sink writes to stderr; tests
/// install a capturing sink to assert on fatal/check output. The sink
/// receives one complete line (no trailing newline).
using LogSink = std::function<void(std::string_view line)>;

/// Replaces the global log sink, returning the previous one. Passing
/// nullptr restores the stderr default. Not thread-safe against concurrent
/// logging — install sinks at test setup, not mid-run.
LogSink SetLogSink(LogSink sink);

/// Sends one finished line through the current sink.
void EmitLogLine(std::string_view line);

/// "<severity> <monotonic seconds> t<thread id> <file>:<line>] " — the
/// shared prefix of every log line, fatal or not. The timestamp is seconds
/// since process start on the monotonic clock, so lines correlate with
/// trace spans and never jump on wall-clock adjustments.
std::string LogPrefix(char severity, const char* file, int line);

/// Streams one non-fatal log line, emitted on destruction.
class LogMessage {
 public:
  LogMessage(char severity, const char* file, int line) {
    stream_ << LogPrefix(severity, file, line);
  }
  ~LogMessage() { EmitLogLine(stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Terminates the process after streaming a fatal message. Used by the CHECK
/// family; streaming into the returned object appends to the message. The
/// finished line goes through the same sink as every other log line (so
/// capturing test sinks see it) before the abort.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << LogPrefix('F', file, line) << "CHECK failed: " << condition
            << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    EmitLogLine(stream_.str());
    std::abort();
  }
  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed FatalLogMessage chain to void so that the CHECK
/// macro's ternary has matching branch types (the glog "voidify" idiom;
/// `&` binds looser than `<<`).
struct Voidify {
  void operator&(FatalLogMessage&) {}
  void operator&(FatalLogMessage&&) {}
  void operator&(LogMessage&) {}
  void operator&(LogMessage&&) {}
};

}  // namespace internal
}  // namespace snakes

/// Streams an informational/warning/error line with the standard prefix
/// (severity, monotonic timestamp, thread id, source location):
///   SNAKES_LOG(INFO) << "packed " << n << " pages";
#define SNAKES_LOG_SEVERITY_INFO 'I'
#define SNAKES_LOG_SEVERITY_WARNING 'W'
#define SNAKES_LOG_SEVERITY_ERROR 'E'
#define SNAKES_LOG(severity)                         \
  ::snakes::internal::LogMessage(                    \
      SNAKES_LOG_SEVERITY_##severity, __FILE__, __LINE__)

/// Aborts the process with a message when `cond` is false. Streaming extra
/// context is supported: SNAKES_CHECK(n > 0) << "n=" << n;
/// Internal-invariant checks only; user-input validation must return Status.
#define SNAKES_CHECK(cond)                               \
  (cond) ? (void)0                                       \
         : ::snakes::internal::Voidify() &               \
               ::snakes::internal::FatalLogMessage(__FILE__, __LINE__, #cond)

#define SNAKES_CHECK_OK(expr)                                            \
  do {                                                                   \
    const ::snakes::Status _s = (expr);                                  \
    if (!_s.ok()) {                                                      \
      ::snakes::internal::FatalLogMessage(__FILE__, __LINE__, #expr)     \
          << _s.ToString();                                              \
    }                                                                    \
  } while (0)

#ifndef NDEBUG
#define SNAKES_DCHECK(cond) SNAKES_CHECK(cond)
#else
#define SNAKES_DCHECK(cond) SNAKES_CHECK(true || (cond))
#endif

#endif  // SNAKES_UTIL_LOGGING_H_
