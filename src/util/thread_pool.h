#ifndef SNAKES_UTIL_THREAD_POOL_H_
#define SNAKES_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/result.h"

namespace snakes {

/// A fixed-size worker pool with a task-futures interface, built for the
/// evaluation engine's fan-out: many independent, pure tasks whose results
/// must come back in a deterministic order.
///
/// Determinism contract: workers race over the queue, but every submission
/// returns a future (Submit) or writes to a caller-chosen index (ParallelFor),
/// so result *placement* is fixed by submission order regardless of worker
/// scheduling. Tasks that are themselves deterministic therefore yield
/// bit-identical aggregate results at any pool size.
///
/// Submitting from inside a pool task is allowed (the queue is unbounded and
/// workers never block on other tasks' results), but *waiting* on another
/// task's future from inside a task can deadlock a fully-busy pool; the
/// library only ever fans out from the caller thread.
class ThreadPool {
 public:
  /// Threads to use when the caller does not care: hardware concurrency,
  /// at least 1.
  static int DefaultThreads();

  /// Spawns `num_threads` workers; <= 0 means DefaultThreads(). A pool of
  /// size 1 is a valid serial executor (one worker, FIFO order).
  explicit ThreadPool(int num_threads = 0);

  /// Calls Shutdown(): pending tasks are completed first, then the workers
  /// join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Drain-on-shutdown: stops admission (TrySubmit fails, Submit returns a
  /// broken-promise future), lets every task submitted *before* the call run
  /// to completion, then joins the workers. Idempotent, and safe to race
  /// with concurrent submitters (they are cleanly rejected); concurrent
  /// Shutdown calls from two threads are not supported — the owner shuts
  /// the pool down, exactly like destruction.
  void Shutdown();

  /// True once Shutdown() has begun (admission closed). Tasks may still be
  /// draining.
  bool IsShutdown() const;

  /// Enqueues `fn` and returns its future. Exceptions thrown by `fn` are
  /// captured into the future (rethrown by get()), never onto a worker.
  /// After Shutdown() the task is rejected and never runs: the returned
  /// future is broken (get() throws std::future_error{broken_promise}) —
  /// well-defined, but prefer TrySubmit when shutdown can race submission.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Submit with explicit admission: FailedPrecondition after Shutdown(),
  /// otherwise the task's future. The service layer uses this so a request
  /// arriving during teardown becomes a status, not a broken future.
  template <typename F>
  auto TrySubmit(F&& fn)
      -> Result<std::future<std::invoke_result_t<std::decay_t<F>>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (!Enqueue([task]() { (*task)(); })) {
      return Status::FailedPrecondition(
          "ThreadPool: submit after Shutdown()");
    }
    return future;
  }

  /// Runs fn(i) for every i in [0, n) across the pool and blocks until all
  /// complete. If any invocation throws, the exception of the *lowest failing
  /// index* is rethrown (deterministic regardless of scheduling); the
  /// remaining invocations still run to completion. n == 0 is a no-op, and a
  /// 1-thread pool degrades to a plain sequential loop — as does a pool that
  /// has been Shutdown() (the caller's thread runs every index itself, so
  /// ParallelFor stays total instead of deadlocking on rejected tasks).
  template <typename Fn>
  void ParallelFor(uint64_t n, Fn&& fn) {
    if (n == 0) return;
    if (num_threads() == 1 || n == 1 || IsShutdown()) {
      for (uint64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      pending.push_back(Submit([&fn, i]() { fn(i); }));
    }
    std::exception_ptr first_error;
    for (auto& f : pending) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  /// Queues `task`; false when admission is closed (shutting down).
  bool Enqueue(std::function<void()> task);
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace snakes

#endif  // SNAKES_UTIL_THREAD_POOL_H_
