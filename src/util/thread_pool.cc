#include "util/thread_pool.h"

#include <algorithm>

namespace snakes {

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads <= 0 ? DefaultThreads() : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  // Idempotence: a second Shutdown finds every worker already joined.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::IsShutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutting_down_;
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return false;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task wrappers capture exceptions into their futures; a bare
    // throwing closure would terminate, which Submit/ParallelFor never enqueue.
    task();
  }
}

}  // namespace snakes
