#include "util/thread_pool.h"

#include <algorithm>

namespace snakes {

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads <= 0 ? DefaultThreads() : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task wrappers capture exceptions into their futures; a bare
    // throwing closure would terminate, which Submit/ParallelFor never enqueue.
    task();
  }
}

}  // namespace snakes
