#ifndef SNAKES_UTIL_FIXED_VECTOR_H_
#define SNAKES_UTIL_FIXED_VECTOR_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>

#include "util/logging.h"

namespace snakes {

/// A fixed-capacity, inline-storage vector. Lattice points and grid
/// coordinates are tiny (k <= 8 dimensions in any realistic star schema) and
/// sit in the innermost loops of every cost computation, so we avoid heap
/// allocation entirely. Exceeding the capacity is a programming error and
/// aborts.
template <typename T, size_t N>
class FixedVector {
 public:
  FixedVector() = default;

  /// A vector of `count` copies of `value`.
  FixedVector(size_t count, const T& value) {
    SNAKES_CHECK(count <= N) << "FixedVector overflow: " << count << " > " << N;
    size_ = count;
    std::fill_n(data_.begin(), count, value);
  }

  FixedVector(std::initializer_list<T> init) {
    SNAKES_CHECK(init.size() <= N)
        << "FixedVector overflow: " << init.size() << " > " << N;
    size_ = init.size();
    std::copy(init.begin(), init.end(), data_.begin());
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr size_t capacity() { return N; }

  T& operator[](size_t i) {
    SNAKES_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    SNAKES_DCHECK(i < size_);
    return data_[i];
  }

  T& back() {
    SNAKES_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }
  const T& back() const {
    SNAKES_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  void push_back(const T& v) {
    SNAKES_CHECK(size_ < N) << "FixedVector overflow: capacity " << N;
    data_[size_++] = v;
  }
  void pop_back() {
    SNAKES_DCHECK(size_ > 0);
    --size_;
  }
  void clear() { size_ = 0; }

  /// Resizes; new elements (if any) are value-initialized.
  void resize(size_t n) {
    SNAKES_CHECK(n <= N) << "FixedVector overflow: " << n << " > " << N;
    for (size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  T* begin() { return data_.data(); }
  T* end() { return data_.data() + size_; }
  const T* begin() const { return data_.data(); }
  const T* end() const { return data_.data() + size_; }

  bool operator==(const FixedVector& o) const {
    return size_ == o.size_ &&
           std::equal(begin(), end(), o.begin());
  }
  bool operator!=(const FixedVector& o) const { return !(*this == o); }
  bool operator<(const FixedVector& o) const {
    return std::lexicographical_compare(begin(), end(), o.begin(), o.end());
  }

 private:
  std::array<T, N> data_{};
  size_t size_ = 0;
};

}  // namespace snakes

#endif  // SNAKES_UTIL_FIXED_VECTOR_H_
