#ifndef SNAKES_UTIL_RESULT_H_
#define SNAKES_UTIL_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace snakes {

/// A value-or-error wrapper, the sibling of `Status` for functions that
/// produce a value. Modeled after arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<Workload> w = Workload::Product(...);
///   if (!w.ok()) return w.status();
///   Use(w.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Passing an OK status is
  /// a programming error and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SNAKES_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; requires ok().
  const T& value() const& {
    SNAKES_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SNAKES_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  /// Rvalue overload returns by value (one move) so that idioms like
  /// `for (auto& x : Compute().value())` stay safe: returning T&& into the
  /// dying Result temporary would dangle, since range-for does not extend
  /// the lifetime of intermediate temporaries before C++23.
  T value() && {
    SNAKES_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Dereference sugar; requires ok().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or aborts with the error message. Convenient in
  /// examples and benches where the inputs are known-good.
  T ValueOrDie() && { return std::move(*this).value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define SNAKES_RESULT_CONCAT_INNER_(a, b) a##b
#define SNAKES_RESULT_CONCAT_(a, b) SNAKES_RESULT_CONCAT_INNER_(a, b)
#define SNAKES_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()
#define SNAKES_ASSIGN_OR_RETURN(lhs, rexpr) \
  SNAKES_ASSIGN_OR_RETURN_IMPL_(            \
      SNAKES_RESULT_CONCAT_(_snakes_result_, __LINE__), lhs, rexpr)

}  // namespace snakes

#endif  // SNAKES_UTIL_RESULT_H_
