#ifndef SNAKES_UTIL_FRACTION_H_
#define SNAKES_UTIL_FRACTION_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

/// Exact non-negative rational arithmetic. The paper reports per-class costs
/// as exact fractions (e.g. 16/8, 49/36); all analytic cost computations in
/// this library are integer edge counts divided by integer query counts, so
/// we carry them exactly and only convert to double at the reporting edge.
class Fraction {
 public:
  /// Zero.
  constexpr Fraction() = default;

  /// The integer `n`.
  constexpr Fraction(uint64_t n) : num_(n), den_(1) {}  // NOLINT

  /// n/d reduced to lowest terms; d must be non-zero.
  Fraction(uint64_t n, uint64_t d) : num_(n), den_(d) {
    SNAKES_CHECK(d != 0) << "Fraction with zero denominator";
    Reduce();
  }

  uint64_t numerator() const { return num_; }
  uint64_t denominator() const { return den_; }

  double ToDouble() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// "n/d", or just "n" when the denominator is 1.
  std::string ToString() const {
    if (den_ == 1) return std::to_string(num_);
    return std::to_string(num_) + "/" + std::to_string(den_);
  }

  Fraction operator+(const Fraction& o) const {
    const uint64_t g = Gcd(den_, o.den_);
    const uint64_t scale = o.den_ / g;
    return Fraction(
        CheckedAdd(CheckedMul(num_, scale), CheckedMul(o.num_, den_ / g)),
        CheckedMul(den_, scale));
  }

  Fraction operator-(const Fraction& o) const {
    const uint64_t g = Gcd(den_, o.den_);
    const uint64_t scale = o.den_ / g;
    const uint64_t lhs = CheckedMul(num_, scale);
    const uint64_t rhs = CheckedMul(o.num_, den_ / g);
    SNAKES_CHECK(lhs >= rhs) << "Fraction subtraction would go negative";
    return Fraction(lhs - rhs, CheckedMul(den_, scale));
  }

  Fraction operator*(const Fraction& o) const {
    // Cross-reduce first to delay overflow.
    const uint64_t g1 = Gcd(num_, o.den_);
    const uint64_t g2 = Gcd(o.num_, den_);
    return Fraction(CheckedMul(num_ / g1, o.num_ / g2),
                    CheckedMul(den_ / g2, o.den_ / g1));
  }

  Fraction operator/(const Fraction& o) const {
    SNAKES_CHECK(o.num_ != 0) << "Fraction division by zero";
    return *this * Fraction(o.den_, o.num_);
  }

  bool operator==(const Fraction& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Fraction& o) const { return !(*this == o); }
  bool operator<(const Fraction& o) const {
    return static_cast<__uint128_t>(num_) * o.den_ <
           static_cast<__uint128_t>(o.num_) * den_;
  }
  bool operator<=(const Fraction& o) const { return !(o < *this); }
  bool operator>(const Fraction& o) const { return o < *this; }
  bool operator>=(const Fraction& o) const { return !(*this < o); }

 private:
  void Reduce() {
    const uint64_t g = Gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  uint64_t num_ = 0;
  uint64_t den_ = 1;
};

inline std::ostream& operator<<(std::ostream& os, const Fraction& f) {
  return os << f.ToString();
}

}  // namespace snakes

#endif  // SNAKES_UTIL_FRACTION_H_
