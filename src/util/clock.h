#ifndef SNAKES_UTIL_CLOCK_H_
#define SNAKES_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace snakes {

/// Injectable monotonic nanosecond clock. Timing paths (FileStore::
/// ExecuteTimed, the calibration sweep) take a Clock* so tests can substitute
/// a FakeClock and assert exact elapsed values instead of sleeping.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual uint64_t NowNs() = 0;
};

/// The real clock: std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  uint64_t NowNs() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Shared process-wide instance for callers that pass no clock.
  static SteadyClock* Default() {
    static SteadyClock clock;
    return &clock;
  }
};

/// Deterministic clock for tests: every NowNs() reading returns the current
/// time and then advances it by a fixed step, so a measured interval spanning
/// k readings is exactly k * step (plus whatever Advance() added).
class FakeClock : public Clock {
 public:
  explicit FakeClock(uint64_t start_ns = 0, uint64_t step_ns = 0)
      : now_ns_(start_ns), step_ns_(step_ns) {}

  uint64_t NowNs() override {
    const uint64_t t = now_ns_;
    now_ns_ += step_ns_;
    return t;
  }

  /// Moves time forward without a reading.
  void Advance(uint64_t ns) { now_ns_ += ns; }
  void set_step_ns(uint64_t step_ns) { step_ns_ = step_ns; }
  uint64_t now_ns() const { return now_ns_; }

 private:
  uint64_t now_ns_;
  uint64_t step_ns_;
};

}  // namespace snakes

#endif  // SNAKES_UTIL_CLOCK_H_
