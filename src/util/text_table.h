#ifndef SNAKES_UTIL_TEXT_TABLE_H_
#define SNAKES_UTIL_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace snakes {

/// Builds aligned plain-text tables for the bench binaries, which print the
/// same rows the paper's tables report. Cells are strings; the renderer
/// right-pads to column width and separates columns with two spaces and an
/// optional ASCII rule under the header.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing trailing cells render empty, extra cells extend
  /// the column count.
  void AddRow(std::vector<std::string> row);

  /// Renders the table, header first, then a dashed rule, then the rows.
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double v, int digits);

/// Formats a ratio as a percentage with `digits` decimals, e.g. "72.1%".
std::string FormatPercent(double ratio, int digits);

}  // namespace snakes

#endif  // SNAKES_UTIL_TEXT_TABLE_H_
