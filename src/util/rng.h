#ifndef SNAKES_UTIL_RNG_H_
#define SNAKES_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace snakes {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. All randomized components of the library (data generation,
/// query sampling, property tests) take an explicit Rng so every run is
/// reproducible from a single seed.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit value is acceptable, including 0.
  explicit Rng(uint64_t seed = 0x5eed5a1ad5eed5a1ULL) { Reseed(seed); }

  /// Re-initializes the state from `seed` (SplitMix64 expansion).
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  /// Next raw 64 random bits.
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless rejection method.
  uint64_t Below(uint64_t bound) {
    SNAKES_DCHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(Next64()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    SNAKES_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t state_[4];
};

/// Zipf(theta) sampler over {0, ..., n-1} using the rejection-inversion
/// method is overkill for our sizes; we precompute the CDF once. Used by the
/// optional skewed TPC-D generator extension.
class ZipfSampler {
 public:
  /// Builds a sampler over `n` items with exponent `theta` >= 0
  /// (theta = 0 is uniform; larger is more skewed).
  ZipfSampler(uint64_t n, double theta);

  /// Draws an item index in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  // Cumulative probabilities; cdf_[i] = P(X <= i).
  std::vector<double> cdf_;
};

}  // namespace snakes

#endif  // SNAKES_UTIL_RNG_H_
