#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace snakes {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n) {
  SNAKES_CHECK(n > 0) << "ZipfSampler over empty domain";
  SNAKES_CHECK(theta >= 0.0) << "Zipf exponent must be non-negative";
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace snakes
