#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

namespace snakes {

uint64_t ThisThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

namespace {

/// Fixed at first use; every log timestamp is relative to it.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

LogSink& CurrentSink() {
  static LogSink sink;  // empty = stderr default
  return sink;
}

}  // namespace

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink previous = std::move(CurrentSink());
  CurrentSink() = std::move(sink);
  return previous;
}

void EmitLogLine(std::string_view line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  const LogSink& sink = CurrentSink();
  if (sink) {
    sink(line);
  } else {
    std::cerr << line << std::endl;
  }
}

std::string LogPrefix(char severity, const char* file, int line) {
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    ProcessEpoch())
          .count();
  // Trim the path to its basename; full paths bury the signal.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%c %.6f t%llu %s:%d] ", severity, seconds,
                static_cast<unsigned long long>(ThisThreadId()), base, line);
  return buf;
}

}  // namespace internal
}  // namespace snakes
