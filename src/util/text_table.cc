#include "util/text_table.h"

#include <algorithm>
#include <cstdio>

namespace snakes {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](std::string* out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out->append(cell);
      if (c + 1 < cols) out->append(width[c] - cell.size() + 2, ' ');
    }
    out->push_back('\n');
  };

  std::string out;
  emit(&out, headers_);
  size_t rule = 0;
  for (size_t c = 0; c < cols; ++c) rule += width[c] + (c + 1 < cols ? 2 : 0);
  out.append(rule, '-');
  out.push_back('\n');
  for (const auto& r : rows_) emit(&out, r);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatPercent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace snakes
