#ifndef SNAKES_UTIL_STATUS_H_
#define SNAKES_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace snakes {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap, value-typed success-or-error result used by all fallible
/// operations in the library. The public API never throws; operations that
/// can fail return `Status` (or `Result<T>`, see result.h).
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not be
  /// kOk (use the default constructor for success).
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Requires the enclosing function
/// to return `Status` (or anything constructible from it).
#define SNAKES_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::snakes::Status _snakes_status = (expr);          \
    if (!_snakes_status.ok()) return _snakes_status;   \
  } while (0)

}  // namespace snakes

#endif  // SNAKES_UTIL_STATUS_H_
