#ifndef SNAKES_UTIL_MATH_H_
#define SNAKES_UTIL_MATH_H_

#include <cstdint>

#include "util/logging.h"

namespace snakes {

/// Ceiling division for non-negative integers; CeilDiv(0, d) == 0.
constexpr uint64_t CeilDiv(uint64_t num, uint64_t den) {
  return den == 0 ? 0 : (num + den - 1) / den;
}

/// True iff `v` is a power of two (1, 2, 4, ...). Zero is not a power of two.
constexpr bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v >= 1.
constexpr int FloorLog2(uint64_t v) {
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// Largest power of two <= v, for v >= 1.
constexpr uint64_t FloorPowerOfTwo(uint64_t v) {
  return uint64_t{1} << FloorLog2(v);
}

/// Smallest power of two >= v, for v >= 1.
constexpr uint64_t CeilPowerOfTwo(uint64_t v) {
  return IsPowerOfTwo(v) ? v : FloorPowerOfTwo(v) << 1;
}

/// Multiplies two unsigned values, aborting on overflow. Grid extents and
/// path lengths are products of fanouts; silent wraparound here would corrupt
/// every downstream cost, so we fail loudly instead.
inline uint64_t CheckedMul(uint64_t a, uint64_t b) {
  const __uint128_t wide = static_cast<__uint128_t>(a) * b;
  SNAKES_CHECK(wide <= UINT64_MAX) << "integer overflow: " << a << " * " << b;
  return static_cast<uint64_t>(wide);
}

/// Adds two unsigned values, aborting on overflow.
inline uint64_t CheckedAdd(uint64_t a, uint64_t b) {
  SNAKES_CHECK(a <= UINT64_MAX - b) << "integer overflow: " << a << " + " << b;
  return a + b;
}

/// Greatest common divisor (non-negative inputs; Gcd(0, b) == b).
constexpr uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    const uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace snakes

#endif  // SNAKES_UTIL_MATH_H_
