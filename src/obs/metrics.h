#ifndef SNAKES_OBS_METRICS_H_
#define SNAKES_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace snakes {

/// Monotonically increasing event count. Updates are relaxed atomics — no
/// lock, no fence beyond the RMW itself — so counters are safe to bump from
/// thread-pool tasks and cost one uncontended atomic add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written-wins instantaneous value (table sizes, hit rates). Doubles
/// cover both byte counts (exact to 2^53) and ratios.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale (power-of-two bucket) histogram of non-negative integer samples
/// — durations in nanoseconds, run lengths in pages. Bucket b collects the
/// values whose bit width is b (bucket 0 holds the value 0), so 64 buckets
/// cover the whole uint64 range with <= 2x relative quantile error, refined
/// by linear interpolation inside the bucket. Record is a handful of relaxed
/// atomic adds; quantiles are computed at snapshot time only.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit widths 0..64

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded sample; 0 when empty.
  uint64_t min() const;
  uint64_t max() const;
  /// Interpolated quantile (q in [0, 1]) from the bucket counts; 0 when
  /// empty. Exact for single-valued buckets, otherwise within the bucket.
  double Quantile(double q) const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Interpolated quantile (q in [0, 1]) over raw power-of-two bucket counts
/// laid out as Histogram stores them (bucket b = samples of bit width b).
/// Returns 0 when all buckets are empty. Shared by Histogram::Quantile and
/// the SLO windows, which merge bucket arrays from several time slices
/// before asking for a quantile.
double LogBucketQuantile(const uint64_t (&buckets)[Histogram::kNumBuckets],
                         double q);

/// One histogram, condensed for reporting.
struct HistogramStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time copy of every registered metric, detached from the
/// registry (safe to keep after the registry dies). Names are sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// Counter value by exact name; 0 when absent.
  uint64_t counter(std::string_view name) const;
  /// Gauge value by exact name; 0 when absent.
  double gauge(std::string_view name) const;
  /// Histogram stats by exact name; empty stats when absent.
  HistogramStats histogram(std::string_view name) const;

  /// Aligned text tables (one per metric kind), for terminal reports.
  std::string ToTable() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  /// min, max, p50, p95, p99}}}. `pretty` adds newlines and indentation;
  /// compact output is a single line for embedding in other JSON documents.
  std::string ToJson(bool pretty = true) const;
};

/// Name -> metric registry. Registration (Get*) takes a mutex and interns
/// the name; the returned pointer is stable for the registry's lifetime, so
/// instrumented code resolves its metrics once and then updates lock-free.
/// A name registers one kind only: requesting an existing name as a
/// different kind is a programming error (checked).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// control characters). Shared by the metrics and trace serializers.
std::string JsonEscape(std::string_view s);

}  // namespace snakes

#endif  // SNAKES_OBS_METRICS_H_
