#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {

namespace {

/// Lowest / highest value mapping to bucket `b` (bit width b).
uint64_t BucketLo(int b) { return b == 0 ? 0 : uint64_t{1} << (b - 1); }
uint64_t BucketHi(int b) {
  if (b == 0) return 0;
  if (b == 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

template <typename Map, typename Key>
auto* FindOrNull(const Map& map, const Key& key) {
  const auto it = map.find(key);
  return it == map.end() ? nullptr : &it->second;
}

}  // namespace

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  const uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX && count() == 0 ? 0 : v;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double LogBucketQuantile(const uint64_t (&buckets)[Histogram::kNumBuckets],
                         double q) {
  uint64_t n = 0;
  for (const uint64_t b : buckets) n += b;
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  double last_hi = 0.0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0) continue;
    const double lo = static_cast<double>(BucketLo(b));
    const double hi = static_cast<double>(BucketHi(b));
    last_hi = hi;
    if (cumulative + in_bucket >= target) {
      const double frac = (target - cumulative) / in_bucket;
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return last_hi;
}

double Histogram::Quantile(double q) const {
  if (count() == 0) return 0.0;
  uint64_t buckets[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  // The true extremes are tracked exactly; never report beyond them.
  return std::clamp(LogBucketQuantile(buckets, q),
                    static_cast<double>(min()), static_cast<double>(max()));
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  SNAKES_CHECK(gauges_.find(name) == gauges_.end() &&
               histograms_.find(name) == histograms_.end())
      << "metric '" << std::string(name) << "' already registered as another kind";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  SNAKES_CHECK(counters_.find(name) == counters_.end() &&
               histograms_.find(name) == histograms_.end())
      << "metric '" << std::string(name) << "' already registered as another kind";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  SNAKES_CHECK(counters_.find(name) == counters_.end() &&
               gauges_.find(name) == gauges_.end())
      << "metric '" << std::string(name) << "' already registered as another kind";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramStats stats;
    stats.count = hist->count();
    stats.sum = hist->sum();
    stats.min = hist->min();
    stats.max = hist->max();
    stats.p50 = hist->Quantile(0.50);
    stats.p95 = hist->Quantile(0.95);
    stats.p99 = hist->Quantile(0.99);
    snap.histograms.emplace_back(name, stats);
  }
  return snap;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

HistogramStats MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return v;
  }
  return {};
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  if (!counters.empty()) {
    TextTable table({"counter", "value"});
    for (const auto& [name, value] : counters) {
      table.AddRow({name, std::to_string(value)});
    }
    out += table.Render();
  }
  if (!gauges.empty()) {
    TextTable table({"gauge", "value"});
    for (const auto& [name, value] : gauges) {
      table.AddRow({name, FormatDouble(value, 4)});
    }
    out += table.Render();
  }
  if (!histograms.empty()) {
    TextTable table({"histogram", "count", "sum", "min", "p50", "p95", "p99",
                     "max"});
    for (const auto& [name, h] : histograms) {
      table.AddRow({name, std::to_string(h.count), std::to_string(h.sum),
                    std::to_string(h.min), FormatDouble(h.p50, 1),
                    FormatDouble(h.p95, 1), FormatDouble(h.p99, 1),
                    std::to_string(h.max)});
    }
    out += table.Render();
  }
  return out;
}

namespace {

/// Shortest round-trippable representation (%.17g trims trailing digits for
/// representable values like 0.5); JSON has no Inf/NaN, clamp to null.
std::string JsonNumber(double v) {
  if (!(v == v) || v > 1.7e308 || v < -1.7e308) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed == v) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == v) return shorter;
    }
  }
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson(bool pretty) const {
  const char* nl = pretty ? "\n" : "";
  const char* ind1 = pretty ? "  " : "";
  const char* ind2 = pretty ? "    " : "";
  std::string out = "{";
  out += nl;

  const auto section = [&](const char* name, auto&& body, bool last) {
    out += ind1;
    out += "\"";
    out += name;
    out += "\": {";
    out += nl;
    body();
    out += ind1;
    out += "}";
    if (!last) out += ",";
    out += nl;
  };

  section("counters", [&] {
    for (size_t i = 0; i < counters.size(); ++i) {
      out += ind2;
      out += "\"" + JsonEscape(counters[i].first) +
             "\": " + std::to_string(counters[i].second);
      if (i + 1 < counters.size()) out += ",";
      out += nl;
    }
  }, false);
  section("gauges", [&] {
    for (size_t i = 0; i < gauges.size(); ++i) {
      out += ind2;
      out += "\"" + JsonEscape(gauges[i].first) +
             "\": " + JsonNumber(gauges[i].second);
      if (i + 1 < gauges.size()) out += ",";
      out += nl;
    }
  }, false);
  section("histograms", [&] {
    for (size_t i = 0; i < histograms.size(); ++i) {
      const HistogramStats& h = histograms[i].second;
      out += ind2;
      out += "\"" + JsonEscape(histograms[i].first) + "\": {";
      out += "\"count\": " + std::to_string(h.count);
      out += ", \"sum\": " + std::to_string(h.sum);
      out += ", \"min\": " + std::to_string(h.min);
      out += ", \"max\": " + std::to_string(h.max);
      out += ", \"p50\": " + JsonNumber(h.p50);
      out += ", \"p95\": " + JsonNumber(h.p95);
      out += ", \"p99\": " + JsonNumber(h.p99);
      out += "}";
      if (i + 1 < histograms.size()) out += ",";
      out += nl;
    }
  }, true);

  out += "}";
  if (pretty) out += "\n";
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace snakes
