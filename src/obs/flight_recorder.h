#ifndef SNAKES_OBS_FLIGHT_RECORDER_H_
#define SNAKES_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/request_context.h"

namespace snakes {

/// One completed request, condensed to plain integers so a record fits in a
/// handful of atomic words: who (tenant), what (verb), when (enqueue/start/
/// finish on the service's epoch clock), how it ended (status), and what it
/// touched (pages, partitions pruned).
struct RequestRecord {
  uint64_t id = 0;
  uint64_t tenant = kNoTenant;
  RequestVerb verb = RequestVerb::kUnknown;
  StatusCode status = StatusCode::kOk;
  uint64_t enqueue_ns = 0;
  uint64_t start_ns = 0;
  uint64_t finish_ns = 0;
  uint64_t pages = 0;
  uint64_t partitions_pruned = 0;

  uint64_t queue_ns() const {
    return start_ns >= enqueue_ns ? start_ns - enqueue_ns : 0;
  }
  uint64_t compute_ns() const {
    return finish_ns >= start_ns ? finish_ns - start_ns : 0;
  }

  /// One-line JSON object ({"id": .., "tenant": .., ...}).
  std::string ToJson() const;
};

/// Always-on, fixed-capacity ring buffer of the last `capacity` completed
/// RequestRecords — the "flight recorder" a production incident is debugged
/// from. Designed to stay enabled under full traffic:
///
///  * Record is lock-free across threads: a writer claims a slot with one
///    relaxed fetch_add on the ticket counter, then publishes the payload
///    under a per-slot sequence word (seqlock: odd = being written, even =
///    ticket of the last complete write). Writers colliding on the same
///    slot (a wrap race, capacity apart) spin only against each other for
///    the nanoseconds a 9-word copy takes; readers never block writers.
///  * Snapshot is safe concurrently with any number of writers: it reads
///    each slot's payload between two acquire-loads of the sequence word
///    and drops the record if the slot changed in between — torn records
///    are impossible by construction, they are re-read or skipped, never
///    returned. Returned records are sorted by id (strictly increasing).
///
/// Payload fields are relaxed atomics, so the recorder is exactly as safe
/// under TSan as it claims to be. On the first record whose status is not
/// OK, a one-shot error hook fires (SetErrorHook) — the service wires this
/// to dump the recorder to disk, so the artifact of "what led up to the
/// first failure" exists without anyone asking for it.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one completed request. Lock-free; safe from any thread.
  void Record(const RequestRecord& record);

  size_t capacity() const { return slots_.size(); }
  /// Total records ever written (recorded() - capacity() have been
  /// overwritten when recorded() > capacity()).
  uint64_t recorded() const {
    return next_ticket_.load(std::memory_order_relaxed);
  }

  /// Consistent point-in-time copy of the resident records, sorted by id.
  /// Slots mid-write (or overwritten while being read) are skipped, so the
  /// result may briefly hold fewer than min(recorded, capacity) records —
  /// never a torn one.
  std::vector<RequestRecord> Snapshot() const;

  /// {"capacity": .., "recorded": .., "requests": [...]}. `pretty` puts one
  /// record per line.
  std::string ToJson(bool pretty = true) const;

  /// Installs the one-shot hook invoked (once, from the recording thread)
  /// on the first non-OK record. Passing nullptr uninstalls.
  void SetErrorHook(std::function<void(const RequestRecord&)> hook);

 private:
  static constexpr int kPayloadWords = 9;

  struct Slot {
    /// 0 = never written; odd = write in progress; even = 2 * (ticket + 1)
    /// of the completed write.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kPayloadWords] = {};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_ticket_{0};
  std::atomic<bool> error_fired_{false};
  mutable std::mutex hook_mu_;
  std::function<void(const RequestRecord&)> error_hook_;
};

}  // namespace snakes

#endif  // SNAKES_OBS_FLIGHT_RECORDER_H_
