#ifndef SNAKES_OBS_TRACE_H_
#define SNAKES_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace snakes {

/// One completed span, timed on the monotonic clock relative to the owning
/// Tracer's epoch. Serialized as a Chrome trace_event "complete" ("X")
/// event; about:tracing / Perfetto nest same-thread events by containment,
/// so no explicit parent links are needed.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t thread_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Extra key/values shown in the trace viewer's detail pane. The second
  /// element is a pre-serialized JSON value (already quoted when a string).
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects spans from any thread. Recording takes a short mutex-protected
/// append — spans are recorded once, at destruction, so the lock sits off
/// the timed region. The epoch is fixed at construction, making every
/// event's timestamp comparable within one trace file.
///
/// The buffer is bounded: once `capacity` spans are resident, further
/// records are counted (dropped_spans()) and discarded instead of growing
/// without limit — a tracer left on in a long-lived service must not become
/// an unbounded allocation. The earliest spans win, matching the usual use
/// (trace the start of a run, dump, inspect).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity)
      : epoch_(std::chrono::steady_clock::now()),
        capacity_(capacity == 0 ? 1 : capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Nanoseconds since this tracer was created (monotonic).
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  void Record(TraceEvent event);

  size_t capacity() const { return capacity_; }
  /// Spans discarded because the buffer was full.
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  size_t num_events() const;
  std::vector<TraceEvent> events() const;

  /// The full trace as Chrome trace_event JSON ({"traceEvents": [...]}),
  /// loadable by chrome://tracing and ui.perfetto.dev. Timestamps are
  /// microseconds with nanosecond precision.
  std::string ToChromeJson() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  const size_t capacity_;
  std::atomic<uint64_t> dropped_spans_{0};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: times construction-to-destruction and records the completed
/// event into the tracer. A null tracer disables the span entirely — the
/// constructor and destructor then cost one branch each, no clock read.
/// Move-only is unnecessary (spans live on the stack); non-copyable.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name,
             std::string_view category = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool enabled() const { return tracer_ != nullptr; }

  /// Attaches a key/value pair to the span (no-ops when disabled).
  void AddArg(std::string_view key, std::string_view value);
  void AddArg(std::string_view key, uint64_t value);
  void AddArg(std::string_view key, double value);

  /// Nanoseconds since the span started; 0 when disabled.
  uint64_t ElapsedNs() const;

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace snakes

#endif  // SNAKES_OBS_TRACE_H_
