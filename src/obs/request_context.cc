#include "obs/request_context.h"

namespace snakes {

namespace {
thread_local RequestContext* tls_current_request = nullptr;
}  // namespace

const char* RequestVerbName(RequestVerb verb) {
  switch (verb) {
    case RequestVerb::kUnknown:
      return "unknown";
    case RequestVerb::kIngest:
      return "ingest";
    case RequestVerb::kEndEpoch:
      return "end-epoch";
    case RequestVerb::kAdvise:
      return "advise";
    case RequestVerb::kQuery:
      return "query";
    case RequestVerb::kMeasure:
      return "measure";
    case RequestVerb::kRecluster:
      return "recluster";
    case RequestVerb::kBackend:
      return "backend";
    case RequestVerb::kStatus:
      return "status";
    case RequestVerb::kRegister:
      return "register";
    case RequestVerb::kTelemetry:
      return "telemetry";
    case RequestVerb::kCostModel:
      return "costmodel";
  }
  return "unknown";
}

RequestVerb ParseRequestVerb(std::string_view verb) {
  if (verb == "ingest") return RequestVerb::kIngest;
  if (verb == "end-epoch") return RequestVerb::kEndEpoch;
  if (verb == "advise") return RequestVerb::kAdvise;
  if (verb == "query") return RequestVerb::kQuery;
  if (verb == "measure") return RequestVerb::kMeasure;
  if (verb == "recluster") return RequestVerb::kRecluster;
  if (verb == "backend") return RequestVerb::kBackend;
  if (verb == "status") return RequestVerb::kStatus;
  if (verb == "register") return RequestVerb::kRegister;
  if (verb == "telemetry") return RequestVerb::kTelemetry;
  if (verb == "costmodel") return RequestVerb::kCostModel;
  return RequestVerb::kUnknown;
}

RequestContext* RequestContext::Current() { return tls_current_request; }

RequestContextScope::RequestContextScope(RequestContext* ctx)
    : prev_(tls_current_request), active_(ctx != nullptr) {
  if (active_) tls_current_request = ctx;
}

RequestContextScope::~RequestContextScope() {
  if (active_) tls_current_request = prev_;
}

}  // namespace snakes
