#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"
#include "obs/request_context.h"
#include "util/logging.h"

namespace snakes {

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<TraceEvent> events = this->events();
  std::string out = "{\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    char times[96];
    // trace_event timestamps are microseconds; keep the nanoseconds as the
    // fractional part.
    std::snprintf(times, sizeof(times), "\"ts\": %.3f, \"dur\": %.3f",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3);
    out += "  {\"name\": \"" + JsonEscape(e.name) + "\", \"cat\": \"" +
           JsonEscape(e.category.empty() ? "snakes" : e.category) +
           "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
           std::to_string(e.thread_id) + ", " + times;
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ", ";
        out += "\"" + JsonEscape(e.args[a].first) +
               "\": " + e.args[a].second;
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name,
                       std::string_view category)
    : tracer_(tracer) {
  if (tracer_ == nullptr) return;
  event_.name.assign(name);
  event_.category.assign(category);
  event_.thread_id = ThisThreadId();
  // Attribute the span to the request being served on this thread, if any:
  // the "rid" arg is what groups advisor/storage spans under their request
  // when reading a trace.
  if (const RequestContext* ctx = RequestContext::Current()) {
    event_.args.emplace_back("rid", std::to_string(ctx->id));
  }
  event_.start_ns = tracer_->NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  event_.duration_ns = tracer_->NowNs() - event_.start_ns;
  tracer_->Record(std::move(event_));
}

void ScopedSpan::AddArg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::string(key),
                           "\"" + JsonEscape(value) + "\"");
}

void ScopedSpan::AddArg(std::string_view key, uint64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::AddArg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  event_.args.emplace_back(std::string(key), buf);
}

uint64_t ScopedSpan::ElapsedNs() const {
  return tracer_ == nullptr ? 0 : tracer_->NowNs() - event_.start_ns;
}

}  // namespace snakes
