#ifndef SNAKES_OBS_OBS_H_
#define SNAKES_OBS_OBS_H_

namespace snakes {

class MetricsRegistry;
class Tracer;

/// The null-object handle instrumented code carries: a pair of optional
/// backends. Both default to nullptr, so an uninstrumented caller pays one
/// pointer test per instrumentation site and nothing else — no allocation,
/// no clock read, no atomic. Cheap to copy; the caller owns the backends and
/// must keep them alive across the instrumented call.
///
/// This header is deliberately dependency-free (forward declarations only)
/// so that hot-path headers in src/path and src/storage can accept an
/// ObsSink without pulling in the metrics/tracing machinery.
struct ObsSink {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

}  // namespace snakes

#endif  // SNAKES_OBS_OBS_H_
