#include "obs/flight_recorder.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace snakes {

namespace {

void Pack(const RequestRecord& r, uint64_t out[9]) {
  out[0] = r.id;
  out[1] = r.tenant;
  out[2] = static_cast<uint64_t>(r.verb);
  out[3] = static_cast<uint64_t>(r.status);
  out[4] = r.enqueue_ns;
  out[5] = r.start_ns;
  out[6] = r.finish_ns;
  out[7] = r.pages;
  out[8] = r.partitions_pruned;
}

RequestRecord Unpack(const uint64_t w[9]) {
  RequestRecord r;
  r.id = w[0];
  r.tenant = w[1];
  r.verb = static_cast<RequestVerb>(w[2]);
  r.status = static_cast<StatusCode>(w[3]);
  r.enqueue_ns = w[4];
  r.start_ns = w[5];
  r.finish_ns = w[6];
  r.pages = w[7];
  r.partitions_pruned = w[8];
  return r;
}

}  // namespace

std::string RequestRecord::ToJson() const {
  std::string out = "{\"id\": " + std::to_string(id);
  out += ", \"tenant\": ";
  out += tenant == kNoTenant ? std::string("null") : std::to_string(tenant);
  out += ", \"verb\": \"" + std::string(RequestVerbName(verb)) + "\"";
  out += ", \"status\": \"" + std::string(StatusCodeName(status)) + "\"";
  out += ", \"enqueue_ns\": " + std::to_string(enqueue_ns);
  out += ", \"queue_ns\": " + std::to_string(queue_ns());
  out += ", \"compute_ns\": " + std::to_string(compute_ns());
  out += ", \"pages\": " + std::to_string(pages);
  out += ", \"partitions_pruned\": " + std::to_string(partitions_pruned);
  out += "}";
  return out;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::Record(const RequestRecord& record) {
  const uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];

  // Claim the slot: flip its sequence to "writing" (odd). A concurrent
  // writer a full wrap ahead/behind holds it for the duration of one
  // 9-word copy; spin until it finishes. Claims are resolved by CAS so two
  // writers can never both think they own the slot. The sequence must be
  // reloaded every iteration — an odd value short-circuits the CAS, and
  // spinning on the stale load would never observe the owner's publish.
  // Yield while the slot is held: the owner may be preempted mid-copy, and
  // on few cores a hot spin would keep it off the CPU.
  for (;;) {
    uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) == 0 &&
        slot.seq.compare_exchange_weak(seq, seq | 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      break;
    }
    std::this_thread::yield();
  }
  uint64_t words[kPayloadWords];
  Pack(record, words);
  for (int i = 0; i < kPayloadWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  // Publish: even sequence encoding the ticket, release so a reader that
  // acquires it sees the full payload.
  slot.seq.store(2 * (ticket + 1), std::memory_order_release);

  if (record.status != StatusCode::kOk &&
      !error_fired_.exchange(true, std::memory_order_relaxed)) {
    std::function<void(const RequestRecord&)> hook;
    {
      std::lock_guard<std::mutex> lock(hook_mu_);
      hook = error_hook_;
    }
    if (hook) hook(record);
  }
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  std::vector<RequestRecord> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    uint64_t words[kPayloadWords];
    for (int i = 0; i < kPayloadWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    out.push_back(Unpack(words));
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  return out;
}

std::string FlightRecorder::ToJson(bool pretty) const {
  const std::vector<RequestRecord> records = Snapshot();
  const char* nl = pretty ? "\n" : "";
  const char* ind = pretty ? "  " : "";
  std::string out = "{";
  out += nl;
  out += ind;
  out += "\"capacity\": " + std::to_string(capacity()) + ",";
  out += nl;
  out += ind;
  out += "\"recorded\": " + std::to_string(recorded()) + ",";
  out += nl;
  out += ind;
  out += "\"requests\": [";
  out += nl;
  for (size_t i = 0; i < records.size(); ++i) {
    out += ind;
    out += ind;
    out += records[i].ToJson();
    if (i + 1 < records.size()) out += ",";
    out += nl;
  }
  out += ind;
  out += "]";
  out += nl;
  out += "}";
  return out;
}

void FlightRecorder::SetErrorHook(
    std::function<void(const RequestRecord&)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  error_hook_ = std::move(hook);
}

}  // namespace snakes
