#include "obs/slo_window.h"

#include <bit>
#include <cstring>

namespace snakes {

SloWindow::SloWindow(int buckets)
    : num_buckets_(buckets < 1 ? 1 : buckets),
      cells_(static_cast<size_t>(num_buckets_) * kNumRequestVerbs) {}

void SloWindow::Record(RequestVerb verb, uint64_t latency_ns, bool error) {
  const uint64_t slice = current_.load(std::memory_order_relaxed);
  Cell& c = cell(slice, static_cast<int>(verb));
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(latency_ns, std::memory_order_relaxed);
  c.hist[std::bit_width(latency_ns)].fetch_add(1, std::memory_order_relaxed);
  if (error) c.errors.fetch_add(1, std::memory_order_relaxed);
}

void SloWindow::Advance() {
  const uint64_t next =
      (current_.load(std::memory_order_relaxed) + 1) %
      static_cast<uint64_t>(num_buckets_);
  // Clear the slice being retired before making it current. A request racing
  // this loop may lose its sample — the window is statistical (class doc).
  for (int v = 0; v < kNumRequestVerbs; ++v) {
    Cell& c = cell(next, v);
    c.count.store(0, std::memory_order_relaxed);
    c.errors.store(0, std::memory_order_relaxed);
    c.sum.store(0, std::memory_order_relaxed);
    for (auto& h : c.hist) h.store(0, std::memory_order_relaxed);
  }
  current_.store(next, std::memory_order_relaxed);
  advances_.fetch_add(1, std::memory_order_relaxed);
}

SloWindow::Snapshot SloWindow::Snap() const {
  Snapshot snap;
  snap.advances = advances();
  for (int v = 0; v < kNumRequestVerbs; ++v) {
    VerbStats& stats = snap.verbs[static_cast<size_t>(v)];
    uint64_t merged[Histogram::kNumBuckets];
    std::memset(merged, 0, sizeof(merged));
    for (int s = 0; s < num_buckets_; ++s) {
      const Cell& c = cell(static_cast<uint64_t>(s), v);
      stats.count += c.count.load(std::memory_order_relaxed);
      stats.errors += c.errors.load(std::memory_order_relaxed);
      stats.sum_ns += c.sum.load(std::memory_order_relaxed);
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        merged[b] += c.hist[b].load(std::memory_order_relaxed);
      }
    }
    if (stats.count > 0) {
      stats.error_rate = static_cast<double>(stats.errors) /
                         static_cast<double>(stats.count);
      stats.p50_ns = LogBucketQuantile(merged, 0.50);
      stats.p99_ns = LogBucketQuantile(merged, 0.99);
    }
    snap.total += stats.count;
  }
  return snap;
}

}  // namespace snakes
