#ifndef SNAKES_OBS_SLO_WINDOW_H_
#define SNAKES_OBS_SLO_WINDOW_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_context.h"

namespace snakes {

/// Sliding-window latency / error-rate tracker for one tenant: a ring of
/// `buckets` time slices, each holding a per-verb log-scale histogram plus
/// error counts. Requests record into the current slice lock-free (relaxed
/// atomics, same discipline as Histogram); a periodic sampler calls
/// Advance() to rotate the ring, which retires the oldest slice — so a
/// Snapshot always reflects roughly the last `buckets * cadence` of
/// traffic instead of the whole process lifetime. That recency is what
/// makes the p99 an SLO signal: a latency regression shows up within one
/// window instead of being averaged away by hours of healthy history.
///
/// Rotation is deliberately approximate: a request racing an Advance() may
/// land in the slice being cleared and be partially dropped. The window is
/// a statistical signal, not an audit log (the FlightRecorder is the audit
/// log) — in exchange, Record stays a handful of relaxed atomic adds.
class SloWindow {
 public:
  static constexpr int kDefaultBuckets = 8;

  explicit SloWindow(int buckets = kDefaultBuckets);
  SloWindow(const SloWindow&) = delete;
  SloWindow& operator=(const SloWindow&) = delete;

  /// Records one completed request of `verb` into the current slice.
  void Record(RequestVerb verb, uint64_t latency_ns, bool error);

  /// Rotates the ring: the oldest slice is cleared and becomes current.
  void Advance();

  int num_buckets() const { return num_buckets_; }
  uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }

  /// Windowed aggregates for one verb.
  struct VerbStats {
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t sum_ns = 0;
    double error_rate = 0.0;  // errors / count (0 when empty)
    double p50_ns = 0.0;
    double p99_ns = 0.0;
  };

  /// Point-in-time merge of every live slice, per verb.
  struct Snapshot {
    std::array<VerbStats, kNumRequestVerbs> verbs;
    uint64_t advances = 0;
    /// Requests across all verbs in the window.
    uint64_t total = 0;
  };

  Snapshot Snap() const;

 private:
  /// One (slice, verb) accumulator.
  struct Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> hist[Histogram::kNumBuckets] = {};
  };

  Cell& cell(uint64_t slice, int verb) {
    return cells_[slice * kNumRequestVerbs + static_cast<uint64_t>(verb)];
  }
  const Cell& cell(uint64_t slice, int verb) const {
    return cells_[slice * kNumRequestVerbs + static_cast<uint64_t>(verb)];
  }

  const int num_buckets_;
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> advances_{0};
  std::vector<Cell> cells_;
};

}  // namespace snakes

#endif  // SNAKES_OBS_SLO_WINDOW_H_
