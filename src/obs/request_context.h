#ifndef SNAKES_OBS_REQUEST_CONTEXT_H_
#define SNAKES_OBS_REQUEST_CONTEXT_H_

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace snakes {

/// The request verbs a serving layer attributes work to. One enum shared by
/// the request context, the flight recorder, and the SLO windows so a
/// record's verb is a single byte instead of an interned string.
enum class RequestVerb : uint8_t {
  kUnknown = 0,
  kIngest,
  kEndEpoch,
  kAdvise,
  kQuery,
  kMeasure,
  kRecluster,
  kBackend,
  kStatus,
  kRegister,
  kTelemetry,
  kCostModel,
};

/// Number of distinct RequestVerb values (array-index bound).
inline constexpr int kNumRequestVerbs = 12;

/// Short stable name ("query", "end-epoch", ...) for reports and JSON.
const char* RequestVerbName(RequestVerb verb);

/// Parses the textual Dispatch verb ("advise", "end-epoch", ...) into a
/// RequestVerb; kUnknown for anything unrecognized.
RequestVerb ParseRequestVerb(std::string_view verb);

/// Sentinel tenant for requests that never resolved one (unknown tenant
/// names, registration failures).
inline constexpr uint64_t kNoTenant = UINT64_MAX;

/// One in-flight request: a monotonic id, the tenant and verb it serves,
/// its enqueue/start/finish timestamps (nanoseconds on the owning service's
/// epoch clock), the result status, and the I/O it touched. The serving
/// layer stacks the active context in a thread-local (RequestContextScope),
/// so instrumentation deep in the library — ScopedSpan in particular — can
/// attribute work to a real request id without any parameter plumbing:
/// every span recorded while a context is active carries an "rid" arg, which
/// is what nests advisor/storage spans under the request in a Chrome trace.
struct RequestContext {
  uint64_t id = 0;
  uint64_t tenant = kNoTenant;
  RequestVerb verb = RequestVerb::kUnknown;
  uint64_t enqueue_ns = 0;  // submit time (== start_ns for sync calls)
  uint64_t start_ns = 0;    // when the handler began computing
  uint64_t finish_ns = 0;   // when the handler returned
  StatusCode status = StatusCode::kOk;
  uint64_t pages = 0;              // pages the request touched
  uint64_t partitions_pruned = 0;  // partitions zone maps skipped

  /// The innermost active context on this thread; null outside any request.
  /// Nested handlers (a Dispatch verb calling the sync surface) see the
  /// outermost request they serve — scopes stack.
  static RequestContext* Current();
};

/// RAII: makes `ctx` the thread's current request context, restoring the
/// previous one (usually null) on destruction. Null `ctx` is a no-op scope,
/// so callers can pass "no context" without branching.
class RequestContextScope {
 public:
  explicit RequestContextScope(RequestContext* ctx);
  ~RequestContextScope();
  RequestContextScope(const RequestContextScope&) = delete;
  RequestContextScope& operator=(const RequestContextScope&) = delete;

 private:
  RequestContext* prev_;
  bool active_;
};

}  // namespace snakes

#endif  // SNAKES_OBS_REQUEST_CONTEXT_H_
