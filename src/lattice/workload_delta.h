#ifndef SNAKES_LATTICE_WORKLOAD_DELTA_H_
#define SNAKES_LATTICE_WORKLOAD_DELTA_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "lattice/lattice.h"
#include "lattice/workload.h"
#include "util/result.h"

namespace snakes {

/// Exact 64-bit fingerprint of a workload: FNV-1a over the lattice shape
/// (levels and fanout bit patterns) and the bit pattern of every class
/// probability. Two workloads fingerprint equal iff they are bit-identical
/// over the same lattice (up to hash collisions — callers that must not
/// tolerate collisions verify with SameProbabilities). The incremental
/// advisor keys its memoized DP tables and its last recommendation on this.
uint64_t WorkloadFingerprint(const Workload& mu);

/// True iff the two workloads assign bit-identical probability to every
/// class (requires equal lattices).
bool SameProbabilities(const Workload& a, const Workload& b);

/// The per-class probability change between two workloads over one lattice —
/// the unit of drift the reclustering engine reasons about. An epoch's delta
/// tells the engine how much mass moved (l1 / total-variation) and which
/// classes moved beyond its recompute threshold.
class WorkloadDelta {
 public:
  /// Delta from `from` to `to`; the lattices must be equal.
  static Result<WorkloadDelta> Between(const Workload& from,
                                       const Workload& to);

  const QueryClassLattice& lattice() const { return lattice_; }

  /// Signed probability change of the class at dense lattice index `i`.
  double delta_at(uint64_t i) const { return delta_[i]; }

  /// sum_c |p_to(c) - p_from(c)|.
  double l1() const { return l1_; }

  /// Total-variation distance, l1 / 2 — the fraction of probability mass
  /// that moved, in [0, 1].
  double total_variation() const { return l1_ / 2.0; }

  /// max_c |p_to(c) - p_from(c)|.
  double linf() const { return linf_; }

  /// Number of classes with |delta| > threshold.
  uint64_t NumChanged(double threshold) const;

  /// Dense lattice indices of the classes with |delta| > threshold,
  /// ascending.
  std::vector<uint64_t> ChangedClasses(double threshold) const;

 private:
  WorkloadDelta(QueryClassLattice lattice, std::vector<double> delta);

  QueryClassLattice lattice_;
  std::vector<double> delta_;
  double l1_ = 0.0;
  double linf_ = 0.0;
};

/// Exponentially-weighted drift tracker over a sequence of workload epochs.
/// Observe() folds each epoch's distribution into a smoothed estimate
/// p_hat = (1 - alpha) * p_hat + alpha * p_epoch (the first epoch seeds it),
/// and records the drift the epoch caused: the total-variation distance
/// between the incoming epoch and the previous smoothed estimate. The
/// smoothed estimate is what the reclustering engine advises on — a single
/// noisy epoch moves it by at most alpha, which damps plan flapping at the
/// source.
class EwmaDriftEstimator {
 public:
  /// `alpha` in (0, 1]: weight of the newest epoch (1.0 = no smoothing).
  EwmaDriftEstimator(QueryClassLattice lattice, double alpha);

  /// Folds one epoch. Fails if the epoch's lattice differs.
  Status Observe(const Workload& epoch);

  /// The smoothed distribution (uniform before any epoch was observed).
  Workload Smoothed() const;

  /// Total-variation distance between the last observed epoch and the
  /// smoothed estimate it was folded into; 0 before the second epoch.
  double LastDrift() const { return last_drift_; }

  int epochs() const { return epochs_; }
  const QueryClassLattice& lattice() const { return lattice_; }

 private:
  QueryClassLattice lattice_;
  double alpha_;
  std::vector<double> smoothed_;
  double last_drift_ = 0.0;
  int epochs_ = 0;
};

/// Sliding-window drift tracker: the estimate is the plain average of the
/// last `window` epoch distributions. Forgets abruptly where the EWMA
/// forgets geometrically; useful when the workload shifts in regimes rather
/// than continuously.
class WindowDriftEstimator {
 public:
  WindowDriftEstimator(QueryClassLattice lattice, int window);

  Status Observe(const Workload& epoch);

  /// Average of the retained epochs (uniform before any epoch).
  Workload Smoothed() const;

  /// Total-variation distance between the last epoch and the window average
  /// it joined; 0 before the second epoch.
  double LastDrift() const { return last_drift_; }

  int epochs() const { return epochs_; }
  int window() const { return window_; }

 private:
  QueryClassLattice lattice_;
  int window_;
  std::deque<std::vector<double>> history_;
  double last_drift_ = 0.0;
  int epochs_ = 0;
};

}  // namespace snakes

#endif  // SNAKES_LATTICE_WORKLOAD_DELTA_H_
