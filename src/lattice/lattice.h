#ifndef SNAKES_LATTICE_LATTICE_H_
#define SNAKES_LATTICE_LATTICE_H_

#include <cstdint>
#include <vector>

#include "hierarchy/star_schema.h"
#include "lattice/query_class.h"
#include "util/result.h"

namespace snakes {

/// The query-class lattice (L, <=) of a star schema (Section 3): the product
/// of the per-dimension level ranges {0..l_d}, ordered pointwise, with
/// bottom (0,...,0) and top (l_1,...,l_k). Edges connect d-successors and
/// carry weight f(d, i_d + 1), the average fanout crossed by the step.
///
/// The lattice also fixes a dense index for query classes (mixed-radix,
/// dimension 0 slowest) used by Workload and every DP table.
class QueryClassLattice {
 public:
  /// Builds the lattice of `schema` (copies the level counts and fanouts;
  /// the schema need not outlive the lattice).
  explicit QueryClassLattice(const StarSchema& schema);

  /// Builds a lattice directly from per-dimension fanout lists:
  /// fanouts[d][i-1] = f(d, i). Levels are fanouts[d].size(). This is the
  /// cost-model-only entry point (no physical grid attached); fractional
  /// average fanouts are allowed.
  static Result<QueryClassLattice> FromFanouts(
      std::vector<std::vector<double>> fanouts);

  int num_dims() const { return static_cast<int>(levels_.size()); }

  /// l_d: the top level of dimension d.
  int levels(int d) const { return levels_[static_cast<size_t>(d)]; }

  /// Average fanout f(d, i), 1 <= i <= levels(d).
  double fanout(int d, int i) const;

  /// Number of lattice points, prod_d (l_d + 1).
  uint64_t size() const { return size_; }

  QueryClass Bottom() const;
  QueryClass Top() const;

  /// Dense index of a class (mixed radix, dimension 0 slowest).
  uint64_t Index(const QueryClass& c) const;

  /// Inverse of Index.
  QueryClass ClassAt(uint64_t index) const;

  /// Weight of the edge from `u` to its d-successor: f(d, u.level(d) + 1).
  /// Requires u.level(d) < levels(d).
  double EdgeWeight(const QueryClass& u, int d) const;

  /// Length of any monotone path from `lo` up to `hi` (requires lo <= hi):
  /// the product of all fanouts crossed, independent of the route (Section 4).
  double LenBetween(const QueryClass& lo, const QueryClass& hi) const;

  /// All lattice points in index order (materialized; lattices are tiny).
  std::vector<QueryClass> AllClasses() const;

  /// Number of grid queries in class `c` when the lattice was built from a
  /// physical schema: prod_d num_blocks(d, c.level(d)). Requires the
  /// StarSchema constructor (block counts known).
  uint64_t NumQueriesInClass(const QueryClass& c) const;

  /// True when built from a physical schema (block counts available).
  bool has_block_counts() const { return !block_counts_.empty(); }

  bool operator==(const QueryClassLattice& o) const {
    return levels_ == o.levels_ && fanouts_ == o.fanouts_;
  }

 private:
  QueryClassLattice() = default;
  void ComputeSize();

  std::vector<int> levels_;
  // fanouts_[d][i-1] = f(d, i).
  std::vector<std::vector<double>> fanouts_;
  // block_counts_[d][l] = number of level-l blocks of dimension d (only when
  // built from a schema).
  std::vector<std::vector<uint64_t>> block_counts_;
  uint64_t size_ = 0;
  // stride_[d] for the dense index (dimension 0 slowest).
  std::vector<uint64_t> stride_;
};

}  // namespace snakes

#endif  // SNAKES_LATTICE_LATTICE_H_
