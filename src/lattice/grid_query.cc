#include "lattice/grid_query.h"

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

std::string GridQuery::ToString() const {
  std::string out = "class " + cls.ToString() + " blocks (";
  for (size_t d = 0; d < block.size(); ++d) {
    if (d) out += ",";
    out += std::to_string(block[d]);
  }
  out += ")";
  return out;
}

CellBox BoxOf(const StarSchema& schema, const GridQuery& query) {
  SNAKES_DCHECK(query.cls.num_dims() == schema.num_dims());
  CellBox box;
  box.lo.resize(static_cast<size_t>(schema.num_dims()));
  box.hi.resize(static_cast<size_t>(schema.num_dims()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    uint64_t first, last;
    schema.dim(d).BlockLeafRange(query.cls.level(d),
                                 query.block[static_cast<size_t>(d)], &first,
                                 &last);
    box.lo[static_cast<size_t>(d)] = first;
    box.hi[static_cast<size_t>(d)] = last;
  }
  return box;
}

uint64_t NumQueriesInClass(const StarSchema& schema, const QueryClass& cls) {
  uint64_t n = 1;
  for (int d = 0; d < schema.num_dims(); ++d) {
    n = CheckedMul(n, schema.dim(d).num_blocks(cls.level(d)));
  }
  return n;
}

GridQuery QueryAt(const StarSchema& schema, const QueryClass& cls,
                  uint64_t index) {
  GridQuery q;
  q.cls = cls;
  q.block.resize(static_cast<size_t>(schema.num_dims()));
  // Dense order: dimension 0 slowest.
  uint64_t stride = 1;
  FixedVector<uint64_t, kMaxDimensions> strides;
  strides.resize(static_cast<size_t>(schema.num_dims()));
  for (int d = schema.num_dims() - 1; d >= 0; --d) {
    strides[static_cast<size_t>(d)] = stride;
    stride *= schema.dim(d).num_blocks(cls.level(d));
  }
  SNAKES_DCHECK(index < stride);
  for (int d = 0; d < schema.num_dims(); ++d) {
    q.block[static_cast<size_t>(d)] = index / strides[static_cast<size_t>(d)];
    index %= strides[static_cast<size_t>(d)];
  }
  return q;
}

std::vector<GridQuery> AllQueriesInClass(const StarSchema& schema,
                                         const QueryClass& cls) {
  const uint64_t n = NumQueriesInClass(schema, cls);
  std::vector<GridQuery> queries;
  queries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    queries.push_back(QueryAt(schema, cls, i));
  }
  return queries;
}

GridQuery SampleQuery(const StarSchema& schema, const QueryClass& cls,
                      Rng* rng) {
  GridQuery q;
  q.cls = cls;
  q.block.resize(static_cast<size_t>(schema.num_dims()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    q.block[static_cast<size_t>(d)] =
        rng->Below(schema.dim(d).num_blocks(cls.level(d)));
  }
  return q;
}

GridQuery QueryContaining(const StarSchema& schema, const QueryClass& cls,
                          const CellCoord& coord) {
  GridQuery q;
  q.cls = cls;
  q.block.resize(static_cast<size_t>(schema.num_dims()));
  for (int d = 0; d < schema.num_dims(); ++d) {
    q.block[static_cast<size_t>(d)] = schema.dim(d).AncestorAt(
        coord[static_cast<size_t>(d)], cls.level(d));
  }
  return q;
}

}  // namespace snakes
