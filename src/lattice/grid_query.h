#ifndef SNAKES_LATTICE_GRID_QUERY_H_
#define SNAKES_LATTICE_GRID_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/star_schema.h"
#include "lattice/query_class.h"
#include "util/fixed_vector.h"
#include "util/math.h"
#include "util/result.h"
#include "util/rng.h"

namespace snakes {

/// An axis-aligned box of cells, given as half-open per-dimension leaf
/// ranges. Every grid query selects exactly one box.
struct CellBox {
  FixedVector<uint64_t, kMaxDimensions> lo;  // inclusive
  FixedVector<uint64_t, kMaxDimensions> hi;  // exclusive

  /// Number of cells in the box. Checked: a product overflowing uint64
  /// aborts instead of wrapping.
  uint64_t NumCells() const {
    uint64_t n = 1;
    for (size_t d = 0; d < lo.size(); ++d) n = CheckedMul(n, hi[d] - lo[d]);
    return n;
  }

  /// True iff `coord` lies inside the box.
  bool Contains(const CellCoord& coord) const {
    for (size_t d = 0; d < lo.size(); ++d) {
      if (coord[d] < lo[d] || coord[d] >= hi[d]) return false;
    }
    return true;
  }
};

/// A grid query (Section 1): a vector of (dimension, hierarchy value) pairs,
/// normalized here to its query class plus the per-dimension block index of
/// the selected hierarchy node. The query selects the box of cells under
/// those nodes.
struct GridQuery {
  QueryClass cls;
  /// block[d] in [0, num_blocks(d, cls.level(d))).
  FixedVector<uint64_t, kMaxDimensions> block;

  std::string ToString() const;
};

/// Returns the cell box selected by `query` against `schema`.
CellBox BoxOf(const StarSchema& schema, const GridQuery& query);

/// Number of distinct grid queries in class `cls`:
/// prod_d num_blocks(d, level_d).
uint64_t NumQueriesInClass(const StarSchema& schema, const QueryClass& cls);

/// Enumerates every query of class `cls` (dense order, dimension 0 slowest).
/// Intended for exact per-class averaging on small/medium schemas.
std::vector<GridQuery> AllQueriesInClass(const StarSchema& schema,
                                         const QueryClass& cls);

/// The i-th query of class `cls` in the same dense order, without
/// materializing the full list.
GridQuery QueryAt(const StarSchema& schema, const QueryClass& cls,
                  uint64_t index);

/// Draws a query uniformly from class `cls`.
GridQuery SampleQuery(const StarSchema& schema, const QueryClass& cls,
                      Rng* rng);

/// The class-`cls` query that contains `coord` (each dimension's block is the
/// coordinate's ancestor at the class level).
GridQuery QueryContaining(const StarSchema& schema, const QueryClass& cls,
                          const CellCoord& coord);

}  // namespace snakes

#endif  // SNAKES_LATTICE_GRID_QUERY_H_
