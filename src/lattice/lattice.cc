#include "lattice/lattice.h"

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

QueryClassLattice::QueryClassLattice(const StarSchema& schema) {
  const int k = schema.num_dims();
  levels_.resize(static_cast<size_t>(k));
  fanouts_.resize(static_cast<size_t>(k));
  block_counts_.resize(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) {
    const Hierarchy& h = schema.dim(d);
    levels_[static_cast<size_t>(d)] = h.num_levels();
    auto& f = fanouts_[static_cast<size_t>(d)];
    f.resize(static_cast<size_t>(h.num_levels()));
    for (int i = 1; i <= h.num_levels(); ++i) {
      f[static_cast<size_t>(i - 1)] = h.avg_fanout(i);
    }
    auto& b = block_counts_[static_cast<size_t>(d)];
    b.resize(static_cast<size_t>(h.num_levels()) + 1);
    for (int l = 0; l <= h.num_levels(); ++l) {
      b[static_cast<size_t>(l)] = h.num_blocks(l);
    }
  }
  ComputeSize();
}

Result<QueryClassLattice> QueryClassLattice::FromFanouts(
    std::vector<std::vector<double>> fanouts) {
  if (fanouts.empty() || fanouts.size() > kMaxDimensions) {
    return Status::InvalidArgument("lattice needs 1.." +
                                   std::to_string(kMaxDimensions) +
                                   " dimensions");
  }
  for (const auto& dim : fanouts) {
    for (double f : dim) {
      if (f < 1.0) {
        return Status::InvalidArgument("fanouts must be >= 1");
      }
    }
  }
  QueryClassLattice lat;
  lat.levels_.resize(fanouts.size());
  for (size_t d = 0; d < fanouts.size(); ++d) {
    lat.levels_[d] = static_cast<int>(fanouts[d].size());
  }
  lat.fanouts_ = std::move(fanouts);
  lat.ComputeSize();
  return lat;
}

void QueryClassLattice::ComputeSize() {
  const size_t k = levels_.size();
  stride_.resize(k);
  uint64_t stride = 1;
  for (size_t d = k; d-- > 0;) {
    stride_[d] = stride;
    stride = CheckedMul(stride, static_cast<uint64_t>(levels_[d]) + 1);
  }
  size_ = stride;
}

double QueryClassLattice::fanout(int d, int i) const {
  SNAKES_DCHECK(d >= 0 && d < num_dims());
  SNAKES_DCHECK(i >= 1 && i <= levels(d));
  return fanouts_[static_cast<size_t>(d)][static_cast<size_t>(i - 1)];
}

QueryClass QueryClassLattice::Bottom() const {
  return QueryClass(num_dims());
}

QueryClass QueryClassLattice::Top() const {
  QueryClass top(num_dims());
  for (int d = 0; d < num_dims(); ++d) top.set_level(d, levels(d));
  return top;
}

uint64_t QueryClassLattice::Index(const QueryClass& c) const {
  SNAKES_DCHECK(c.num_dims() == num_dims());
  uint64_t index = 0;
  for (int d = 0; d < num_dims(); ++d) {
    SNAKES_DCHECK(c.level(d) >= 0 && c.level(d) <= levels(d));
    index += static_cast<uint64_t>(c.level(d)) * stride_[static_cast<size_t>(d)];
  }
  return index;
}

QueryClass QueryClassLattice::ClassAt(uint64_t index) const {
  SNAKES_DCHECK(index < size_);
  QueryClass c(num_dims());
  for (int d = 0; d < num_dims(); ++d) {
    c.set_level(d, static_cast<int>(index / stride_[static_cast<size_t>(d)]));
    index %= stride_[static_cast<size_t>(d)];
  }
  return c;
}

double QueryClassLattice::EdgeWeight(const QueryClass& u, int d) const {
  SNAKES_DCHECK(u.level(d) < levels(d));
  return fanout(d, u.level(d) + 1);
}

double QueryClassLattice::LenBetween(const QueryClass& lo,
                                     const QueryClass& hi) const {
  SNAKES_DCHECK(lo.DominatedBy(hi));
  double len = 1.0;
  for (int d = 0; d < num_dims(); ++d) {
    for (int i = lo.level(d) + 1; i <= hi.level(d); ++i) {
      len *= fanout(d, i);
    }
  }
  return len;
}

std::vector<QueryClass> QueryClassLattice::AllClasses() const {
  std::vector<QueryClass> all;
  all.reserve(size_);
  for (uint64_t i = 0; i < size_; ++i) all.push_back(ClassAt(i));
  return all;
}

uint64_t QueryClassLattice::NumQueriesInClass(const QueryClass& c) const {
  SNAKES_CHECK(has_block_counts())
      << "NumQueriesInClass requires a schema-built lattice";
  uint64_t n = 1;
  for (int d = 0; d < num_dims(); ++d) {
    n = CheckedMul(n, block_counts_[static_cast<size_t>(d)]
                                   [static_cast<size_t>(c.level(d))]);
  }
  return n;
}

}  // namespace snakes
