#include "lattice/estimator.h"

#include "util/logging.h"

namespace snakes {

WorkloadEstimator::WorkloadEstimator(QueryClassLattice lattice,
                                     double smoothing, double decay)
    : lattice_(std::move(lattice)),
      smoothing_(smoothing),
      decay_(decay),
      counts_(lattice_.size(), 0.0) {
  SNAKES_CHECK(smoothing_ >= 0.0) << "negative smoothing";
  SNAKES_CHECK(decay_ > 0.0 && decay_ <= 1.0) << "decay must be in (0, 1]";
}

Status WorkloadEstimator::Observe(const QueryClass& cls) {
  return ObserveCount(cls, 1.0);
}

Status WorkloadEstimator::ObserveCount(const QueryClass& cls, double weight) {
  if (cls.num_dims() != lattice_.num_dims()) {
    return Status::InvalidArgument("class dimensionality mismatch");
  }
  for (int d = 0; d < cls.num_dims(); ++d) {
    if (cls.level(d) < 0 || cls.level(d) > lattice_.levels(d)) {
      return Status::OutOfRange("class " + cls.ToString() +
                                " outside the lattice");
    }
  }
  if (weight < 0.0) {
    return Status::InvalidArgument("negative observation weight");
  }
  if (decay_ < 1.0) {
    for (double& c : counts_) c *= decay_;
    total_ *= decay_;
  }
  counts_[lattice_.Index(cls)] += weight;
  total_ += weight;
  return Status::OK();
}

Workload WorkloadEstimator::Estimate() const {
  std::vector<std::pair<QueryClass, double>> masses;
  masses.reserve(counts_.size());
  for (uint64_t i = 0; i < counts_.size(); ++i) {
    masses.emplace_back(lattice_.ClassAt(i), counts_[i] + smoothing_);
  }
  auto workload = Workload::FromMasses(lattice_, masses, /*normalize=*/true);
  SNAKES_CHECK(workload.ok()) << workload.status().ToString();
  return std::move(workload).value();
}

}  // namespace snakes
