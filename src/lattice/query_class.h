#ifndef SNAKES_LATTICE_QUERY_CLASS_H_
#define SNAKES_LATTICE_QUERY_CLASS_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>

#include "hierarchy/hierarchy.h"
#include "util/fixed_vector.h"

namespace snakes {

/// A query class (Definition 1): a k-vector of hierarchy level numbers,
/// one per dimension, with 0 <= level(d) <= l_d. A grid query whose selected
/// value in dimension d comes from level i_d of that dimension's hierarchy
/// belongs to class (i_1, ..., i_k).
///
/// Query classes form a complete lattice under the pointwise order
/// (Section 3); see QueryClassLattice.
class QueryClass {
 public:
  QueryClass() = default;

  /// A class with `k` dimensions, all levels zero (the bottom of a lattice).
  explicit QueryClass(int k) : levels_(static_cast<size_t>(k), 0) {}

  /// Brace construction: QueryClass{1, 0} is the class (1,0).
  QueryClass(std::initializer_list<int> levels) {
    for (int l : levels) levels_.push_back(l);
  }

  int num_dims() const { return static_cast<int>(levels_.size()); }

  int level(int d) const { return levels_[static_cast<size_t>(d)]; }
  void set_level(int d, int value) { levels_[static_cast<size_t>(d)] = value; }

  /// Pointwise dominance: *this <= other in the lattice order.
  bool DominatedBy(const QueryClass& other) const {
    if (levels_.size() != other.levels_.size()) return false;
    for (size_t d = 0; d < levels_.size(); ++d) {
      if (levels_[d] > other.levels_[d]) return false;
    }
    return true;
  }

  /// True iff `other` is the d-successor of *this for some dimension d
  /// (differs by +1 in exactly one coordinate).
  bool IsSuccessor(const QueryClass& other) const {
    if (levels_.size() != other.levels_.size()) return false;
    int bumped = -1;
    for (size_t d = 0; d < levels_.size(); ++d) {
      if (levels_[d] == other.levels_[d]) continue;
      if (other.levels_[d] != levels_[d] + 1 || bumped >= 0) return false;
      bumped = static_cast<int>(d);
    }
    return bumped >= 0;
  }

  /// The d-successor (level(d) incremented).
  QueryClass Successor(int d) const {
    QueryClass next = *this;
    ++next.levels_[static_cast<size_t>(d)];
    return next;
  }

  bool operator==(const QueryClass& o) const { return levels_ == o.levels_; }
  bool operator!=(const QueryClass& o) const { return levels_ != o.levels_; }
  /// Arbitrary total order for use in maps; not the lattice order.
  bool operator<(const QueryClass& o) const { return levels_ < o.levels_; }

  /// "(1,0,2)".
  std::string ToString() const {
    std::string out = "(";
    for (size_t d = 0; d < levels_.size(); ++d) {
      if (d) out += ",";
      out += std::to_string(levels_[d]);
    }
    out += ")";
    return out;
  }

 private:
  FixedVector<int, kMaxDimensions> levels_;
};

inline std::ostream& operator<<(std::ostream& os, const QueryClass& c) {
  return os << c.ToString();
}

}  // namespace snakes

#endif  // SNAKES_LATTICE_QUERY_CLASS_H_
