#ifndef SNAKES_LATTICE_WORKLOAD_H_
#define SNAKES_LATTICE_WORKLOAD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "lattice/lattice.h"
#include "lattice/query_class.h"
#include "util/result.h"
#include "util/rng.h"

namespace snakes {

/// A workload (Definition 2): a probability distribution over the query
/// classes of a lattice. This is the paper's central workload abstraction —
/// per-class frequencies are stable and compact where per-query frequencies
/// are not.
class Workload {
 public:
  /// The uniform distribution over all classes (toy workload 1 of Section 2).
  static Workload Uniform(const QueryClassLattice& lattice);

  /// Uniform over a subset of classes, zero elsewhere (toy workloads 2-3).
  static Result<Workload> UniformOver(const QueryClassLattice& lattice,
                                      const std::vector<QueryClass>& classes);

  /// All mass on a single class.
  static Result<Workload> Point(const QueryClassLattice& lattice,
                                const QueryClass& cls);

  /// Product-form workload (Section 6.2): per-dimension distributions over
  /// levels, multiplied. `level_probs[d]` must have lattice.levels(d) + 1
  /// entries summing to ~1.
  static Result<Workload> Product(
      const QueryClassLattice& lattice,
      const std::vector<std::vector<double>>& level_probs);

  /// Explicit per-class probabilities (sparse). Remaining classes get zero.
  /// If `normalize`, the masses are rescaled to sum to 1; otherwise they must
  /// already sum to 1 within 1e-9.
  static Result<Workload> FromMasses(
      const QueryClassLattice& lattice,
      const std::vector<std::pair<QueryClass, double>>& masses,
      bool normalize = false);

  /// Dense per-class probabilities, indexed by lattice index. `p` must have
  /// lattice.size() non-negative entries; with `normalize` they are rescaled
  /// to sum to 1, otherwise they must already sum to 1 within 1e-9. The
  /// entry point for drift estimators and epoch traces, which naturally
  /// produce dense vectors.
  static Result<Workload> FromDense(const QueryClassLattice& lattice,
                                    std::vector<double> p,
                                    bool normalize = false);

  /// Random workload (Dirichlet-ish: independent exponentials, normalized).
  /// Used by property tests and ablations.
  static Workload Random(const QueryClassLattice& lattice, Rng* rng);

  const QueryClassLattice& lattice() const { return lattice_; }

  /// Probability of class `c`.
  double probability(const QueryClass& c) const {
    return p_[lattice_.Index(c)];
  }

  /// Probability by dense lattice index.
  double probability_at(uint64_t index) const { return p_[index]; }

  /// Draws a class according to the distribution.
  QueryClass Sample(Rng* rng) const;

  /// Number of classes (== lattice().size()).
  uint64_t size() const { return p_.size(); }

 private:
  Workload(QueryClassLattice lattice, std::vector<double> p)
      : lattice_(std::move(lattice)), p_(std::move(p)) {
    BuildCdf();
  }
  void BuildCdf();

  QueryClassLattice lattice_;
  std::vector<double> p_;
  std::vector<double> cdf_;
};

}  // namespace snakes

#endif  // SNAKES_LATTICE_WORKLOAD_H_
