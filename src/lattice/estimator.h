#ifndef SNAKES_LATTICE_ESTIMATOR_H_
#define SNAKES_LATTICE_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "lattice/lattice.h"
#include "lattice/query_class.h"
#include "lattice/workload.h"
#include "util/result.h"

namespace snakes {

/// Builds a Workload from an observed query stream — the Section-1 premise
/// that per-class statistics are compact and stable where per-query
/// statistics are not. Feed it the class of every grid query the warehouse
/// executes (the class is immediate from the query's selection levels) and
/// snapshot a distribution whenever the advisor should re-evaluate the
/// clustering.
///
/// `smoothing` is a Laplace pseudo-count per class: with the default 1.0 a
/// fresh estimator yields the uniform workload and rare-but-possible classes
/// never get probability zero. Optional exponential decay ages out old
/// queries so the estimate tracks drifting workloads.
class WorkloadEstimator {
 public:
  /// `decay` in (0, 1]: every observation first multiplies all existing
  /// counts by `decay` (1.0 = never forget).
  explicit WorkloadEstimator(QueryClassLattice lattice, double smoothing = 1.0,
                             double decay = 1.0);

  /// Records one executed query of class `cls`.
  Status Observe(const QueryClass& cls);

  /// Records `weight` queries of class `cls` at once (e.g. from a log).
  Status ObserveCount(const QueryClass& cls, double weight);

  /// Total (decayed) observations so far, excluding smoothing.
  double TotalObservations() const { return total_; }

  /// The current estimate.
  Workload Estimate() const;

  const QueryClassLattice& lattice() const { return lattice_; }

 private:
  QueryClassLattice lattice_;
  double smoothing_;
  double decay_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace snakes

#endif  // SNAKES_LATTICE_ESTIMATOR_H_
