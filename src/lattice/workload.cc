#include "lattice/workload.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace snakes {

Workload Workload::Uniform(const QueryClassLattice& lattice) {
  std::vector<double> p(lattice.size(),
                        1.0 / static_cast<double>(lattice.size()));
  return Workload(lattice, std::move(p));
}

Result<Workload> Workload::UniformOver(const QueryClassLattice& lattice,
                                       const std::vector<QueryClass>& classes) {
  if (classes.empty()) {
    return Status::InvalidArgument("UniformOver needs at least one class");
  }
  std::vector<double> p(lattice.size(), 0.0);
  for (const auto& c : classes) {
    if (c.num_dims() != lattice.num_dims()) {
      return Status::InvalidArgument("class dimensionality mismatch");
    }
    for (int d = 0; d < c.num_dims(); ++d) {
      if (c.level(d) < 0 || c.level(d) > lattice.levels(d)) {
        return Status::OutOfRange("class " + c.ToString() +
                                  " outside the lattice");
      }
    }
    p[lattice.Index(c)] += 1.0 / static_cast<double>(classes.size());
  }
  return Workload(lattice, std::move(p));
}

Result<Workload> Workload::Point(const QueryClassLattice& lattice,
                                 const QueryClass& cls) {
  return UniformOver(lattice, {cls});
}

Result<Workload> Workload::Product(
    const QueryClassLattice& lattice,
    const std::vector<std::vector<double>>& level_probs) {
  if (static_cast<int>(level_probs.size()) != lattice.num_dims()) {
    return Status::InvalidArgument("Product needs one distribution per dim");
  }
  for (int d = 0; d < lattice.num_dims(); ++d) {
    const auto& dist = level_probs[static_cast<size_t>(d)];
    if (static_cast<int>(dist.size()) != lattice.levels(d) + 1) {
      return Status::InvalidArgument(
          "dimension " + std::to_string(d) + " needs " +
          std::to_string(lattice.levels(d) + 1) + " level probabilities");
    }
    double sum = 0.0;
    for (double v : dist) {
      if (v < 0.0) return Status::InvalidArgument("negative probability");
      sum += v;
    }
    if (std::abs(sum - 1.0) > 1e-9) {
      return Status::InvalidArgument("dimension " + std::to_string(d) +
                                     " probabilities sum to " +
                                     std::to_string(sum) + ", expected 1");
    }
  }
  std::vector<double> p(lattice.size());
  for (uint64_t i = 0; i < lattice.size(); ++i) {
    const QueryClass c = lattice.ClassAt(i);
    double prob = 1.0;
    for (int d = 0; d < lattice.num_dims(); ++d) {
      prob *= level_probs[static_cast<size_t>(d)]
                         [static_cast<size_t>(c.level(d))];
    }
    p[i] = prob;
  }
  return Workload(lattice, std::move(p));
}

Result<Workload> Workload::FromMasses(
    const QueryClassLattice& lattice,
    const std::vector<std::pair<QueryClass, double>>& masses, bool normalize) {
  std::vector<double> p(lattice.size(), 0.0);
  double sum = 0.0;
  for (const auto& [cls, mass] : masses) {
    if (mass < 0.0) return Status::InvalidArgument("negative mass");
    p[lattice.Index(cls)] += mass;
    sum += mass;
  }
  if (normalize) {
    if (sum <= 0.0) return Status::InvalidArgument("total mass must be > 0");
    for (double& v : p) v /= sum;
  } else if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("masses sum to " + std::to_string(sum) +
                                   ", expected 1 (or pass normalize=true)");
  }
  return Workload(lattice, std::move(p));
}

Result<Workload> Workload::FromDense(const QueryClassLattice& lattice,
                                     std::vector<double> p, bool normalize) {
  if (p.size() != lattice.size()) {
    return Status::InvalidArgument(
        "FromDense needs lattice.size() = " + std::to_string(lattice.size()) +
        " probabilities, got " + std::to_string(p.size()));
  }
  double sum = 0.0;
  for (double v : p) {
    if (v < 0.0) return Status::InvalidArgument("negative probability");
    sum += v;
  }
  if (normalize) {
    if (sum <= 0.0) return Status::InvalidArgument("total mass must be > 0");
    for (double& v : p) v /= sum;
  } else if (std::abs(sum - 1.0) > 1e-9) {
    return Status::InvalidArgument("probabilities sum to " +
                                   std::to_string(sum) +
                                   ", expected 1 (or pass normalize=true)");
  }
  return Workload(lattice, std::move(p));
}

Workload Workload::Random(const QueryClassLattice& lattice, Rng* rng) {
  std::vector<double> p(lattice.size());
  double sum = 0.0;
  for (double& v : p) {
    // Exponential(1) draws normalize to a flat Dirichlet sample.
    v = -std::log(1.0 - rng->NextDouble());
    sum += v;
  }
  for (double& v : p) v /= sum;
  return Workload(lattice, std::move(p));
}

void Workload::BuildCdf() {
  cdf_.resize(p_.size());
  double acc = 0.0;
  for (size_t i = 0; i < p_.size(); ++i) {
    acc += p_[i];
    cdf_[i] = acc;
  }
  SNAKES_CHECK(std::abs(acc - 1.0) < 1e-6)
      << "workload probabilities sum to " << acc;
  cdf_.back() = 1.0;
}

QueryClass Workload::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return lattice_.ClassAt(static_cast<uint64_t>(it - cdf_.begin()));
}

}  // namespace snakes
