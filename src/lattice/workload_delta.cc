#include "lattice/workload_delta.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "util/logging.h"

namespace snakes {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashU64(uint64_t v, uint64_t* h) {
  for (int byte = 0; byte < 8; ++byte) {
    *h ^= (v >> (8 * byte)) & 0xffULL;
    *h *= kFnvPrime;
  }
}

void HashDouble(double v, uint64_t* h) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(bits, h);
}

}  // namespace

uint64_t WorkloadFingerprint(const Workload& mu) {
  const QueryClassLattice& lat = mu.lattice();
  uint64_t h = kFnvOffset;
  HashU64(static_cast<uint64_t>(lat.num_dims()), &h);
  for (int d = 0; d < lat.num_dims(); ++d) {
    HashU64(static_cast<uint64_t>(lat.levels(d)), &h);
    for (int i = 1; i <= lat.levels(d); ++i) HashDouble(lat.fanout(d, i), &h);
  }
  for (uint64_t i = 0; i < mu.size(); ++i) HashDouble(mu.probability_at(i), &h);
  return h;
}

bool SameProbabilities(const Workload& a, const Workload& b) {
  if (!(a.lattice() == b.lattice())) return false;
  for (uint64_t i = 0; i < a.size(); ++i) {
    // Bit comparison, not ==: two NaNs compare equal, +0/-0 do not.
    uint64_t x, y;
    const double pa = a.probability_at(i), pb = b.probability_at(i);
    std::memcpy(&x, &pa, sizeof(x));
    std::memcpy(&y, &pb, sizeof(y));
    if (x != y) return false;
  }
  return true;
}

WorkloadDelta::WorkloadDelta(QueryClassLattice lattice,
                             std::vector<double> delta)
    : lattice_(std::move(lattice)), delta_(std::move(delta)) {
  for (const double d : delta_) {
    l1_ += std::abs(d);
    linf_ = std::max(linf_, std::abs(d));
  }
}

Result<WorkloadDelta> WorkloadDelta::Between(const Workload& from,
                                             const Workload& to) {
  if (!(from.lattice() == to.lattice())) {
    return Status::InvalidArgument(
        "WorkloadDelta requires workloads over equal lattices");
  }
  std::vector<double> delta(from.size());
  for (uint64_t i = 0; i < from.size(); ++i) {
    delta[i] = to.probability_at(i) - from.probability_at(i);
  }
  return WorkloadDelta(from.lattice(), std::move(delta));
}

uint64_t WorkloadDelta::NumChanged(double threshold) const {
  uint64_t n = 0;
  for (const double d : delta_) {
    if (std::abs(d) > threshold) ++n;
  }
  return n;
}

std::vector<uint64_t> WorkloadDelta::ChangedClasses(double threshold) const {
  std::vector<uint64_t> out;
  for (uint64_t i = 0; i < delta_.size(); ++i) {
    if (std::abs(delta_[i]) > threshold) out.push_back(i);
  }
  return out;
}

namespace {

double TotalVariation(const std::vector<double>& a, const Workload& b) {
  double l1 = 0.0;
  for (uint64_t i = 0; i < b.size(); ++i) {
    l1 += std::abs(a[i] - b.probability_at(i));
  }
  return l1 / 2.0;
}

}  // namespace

EwmaDriftEstimator::EwmaDriftEstimator(QueryClassLattice lattice, double alpha)
    : lattice_(std::move(lattice)),
      alpha_(alpha),
      smoothed_(lattice_.size(),
                1.0 / static_cast<double>(lattice_.size())) {
  SNAKES_CHECK(alpha > 0.0 && alpha <= 1.0)
      << "EWMA alpha must be in (0, 1], got " << alpha;
}

Status EwmaDriftEstimator::Observe(const Workload& epoch) {
  if (!(epoch.lattice() == lattice_)) {
    return Status::InvalidArgument("epoch lattice does not match estimator");
  }
  if (epochs_ == 0) {
    // The first epoch seeds the estimate; there is no prior to drift from.
    for (uint64_t i = 0; i < lattice_.size(); ++i) {
      smoothed_[i] = epoch.probability_at(i);
    }
    last_drift_ = 0.0;
  } else {
    last_drift_ = TotalVariation(smoothed_, epoch);
    for (uint64_t i = 0; i < lattice_.size(); ++i) {
      smoothed_[i] =
          (1.0 - alpha_) * smoothed_[i] + alpha_ * epoch.probability_at(i);
    }
  }
  ++epochs_;
  return Status::OK();
}

Workload EwmaDriftEstimator::Smoothed() const {
  // Convex combinations of distributions stay normalized up to rounding;
  // normalize to absorb the accumulated floating error.
  return Workload::FromDense(lattice_, smoothed_, /*normalize=*/true)
      .ValueOrDie();
}

WindowDriftEstimator::WindowDriftEstimator(QueryClassLattice lattice,
                                           int window)
    : lattice_(std::move(lattice)), window_(window) {
  SNAKES_CHECK(window >= 1) << "window must be >= 1, got " << window;
}

Status WindowDriftEstimator::Observe(const Workload& epoch) {
  if (!(epoch.lattice() == lattice_)) {
    return Status::InvalidArgument("epoch lattice does not match estimator");
  }
  if (epochs_ == 0) {
    last_drift_ = 0.0;
  } else {
    std::vector<double> avg(lattice_.size(), 0.0);
    for (const auto& h : history_) {
      for (uint64_t i = 0; i < lattice_.size(); ++i) avg[i] += h[i];
    }
    for (double& v : avg) v /= static_cast<double>(history_.size());
    last_drift_ = TotalVariation(avg, epoch);
  }
  std::vector<double> probs(lattice_.size());
  for (uint64_t i = 0; i < lattice_.size(); ++i) {
    probs[i] = epoch.probability_at(i);
  }
  history_.push_back(std::move(probs));
  if (static_cast<int>(history_.size()) > window_) history_.pop_front();
  ++epochs_;
  return Status::OK();
}

Workload WindowDriftEstimator::Smoothed() const {
  if (history_.empty()) return Workload::Uniform(lattice_);
  std::vector<double> avg(lattice_.size(), 0.0);
  for (const auto& h : history_) {
    for (uint64_t i = 0; i < lattice_.size(); ++i) avg[i] += h[i];
  }
  return Workload::FromDense(lattice_, std::move(avg), /*normalize=*/true)
      .ValueOrDie();
}

}  // namespace snakes
