#ifndef SNAKES_CORE_STRATEGY_H_
#define SNAKES_CORE_STRATEGY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "curves/linearization.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "util/result.h"

namespace snakes {

/// Everything a strategy factory may consult when building its candidates
/// for one evaluation: the schema, the workload, and the two DP solutions
/// (computed once by the planner so path-based factories never re-run them).
struct StrategyContext {
  std::shared_ptr<const StarSchema> schema;
  const Workload* workload = nullptr;
  /// Section-4 optimal lattice path (FindOptimalLatticePath).
  const OptimalPathResult* optimal_path = nullptr;
  /// Corollary-1 optimal snaked lattice path (FindOptimalSnakedLatticePath).
  const OptimalPathResult* optimal_snaked_path = nullptr;
};

/// One pluggable family of clustering strategies. The advisor no longer
/// hard-codes its candidate set: every family — row-major orders, classical
/// curves, snaked lattice paths, future chunked hybrids — implements this
/// interface and is looked up in a StrategyRegistry, so new strategies plug
/// in without touching the evaluation engine.
class StrategyFactory {
 public:
  virtual ~StrategyFactory() = default;

  /// Stable family name used to select strategies in an EvaluationRequest
  /// ("lattice-paths", "row-major", "z-curve", "gray-curve", "hilbert").
  virtual std::string name() const = 0;

  /// OK when this family can linearize `schema`; otherwise the reason it
  /// cannot (e.g. bit-interleaved curves on non-power-of-two extents). The
  /// planner records non-OK factories as skipped instead of failing.
  virtual Status Applicable(const StarSchema& schema) const = 0;

  /// The family's candidate linearizations for `ctx` (a family may yield
  /// several, e.g. all k! row-major axis orders). Requires Applicable OK.
  virtual Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const = 0;
};

/// An ordered set of strategy factories with unique names. Registration
/// order is evaluation order, which fixes the tie-break among equal-cost
/// strategies in the final ranking.
class StrategyRegistry {
 public:
  StrategyRegistry() = default;

  /// Adds a factory. Fails on a duplicate name.
  Status Register(std::shared_ptr<const StrategyFactory> factory);

  /// The factory named `name`, or nullptr.
  const StrategyFactory* Find(std::string_view name) const;

  const std::vector<std::shared_ptr<const StrategyFactory>>& factories()
      const {
    return factories_;
  }

  /// The built-in families, in the advisor's canonical ranking order:
  /// lattice-paths, row-major, z-curve, gray-curve, hilbert.
  static const StrategyRegistry& BuiltIns();

 private:
  std::vector<std::shared_ptr<const StrategyFactory>> factories_;
};

/// Built-in factory constructors, exposed so custom registries can mix the
/// standard families with their own.
std::shared_ptr<const StrategyFactory> MakeLatticePathStrategyFactory();
std::shared_ptr<const StrategyFactory> MakeRowMajorStrategyFactory();
std::shared_ptr<const StrategyFactory> MakeZCurveStrategyFactory();
std::shared_ptr<const StrategyFactory> MakeGrayCurveStrategyFactory();
std::shared_ptr<const StrategyFactory> MakeHilbertStrategyFactory();

}  // namespace snakes

#endif  // SNAKES_CORE_STRATEGY_H_
