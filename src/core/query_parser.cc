#include "core/query_parser.h"

#include <string>

namespace snakes {

namespace {

// Splits into clauses on unquoted whitespace; double quotes may wrap any
// part of a clause and are stripped. Single quotes are ordinary characters —
// member labels like "levi's" contain them.
Result<std::vector<std::string>> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  char quote = 0;
  for (const char c : text) {
    if (quote != 0) {
      if (c == quote) {
        quote = 0;
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      quote = c;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (quote != 0) {
    return Status::InvalidArgument("unterminated quote in query");
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace

Result<GridQuery> ParseGridQuery(const StarSchema& schema,
                                 const std::vector<DimensionTable>& tables,
                                 std::string_view text) {
  if (static_cast<int>(tables.size()) != schema.num_dims()) {
    return Status::InvalidArgument(
        "need one dimension table per schema dimension");
  }
  for (int d = 0; d < schema.num_dims(); ++d) {
    const DimensionTable& table = tables[static_cast<size_t>(d)];
    if (table.name() != schema.dim(d).name() ||
        table.hierarchy().num_leaves() != schema.dim(d).num_leaves()) {
      return Status::InvalidArgument("dimension table '" + table.name() +
                                     "' does not match schema dimension '" +
                                     schema.dim(d).name() + "'");
    }
  }

  GridQuery query;
  query.cls = QueryClass(schema.num_dims());
  query.block.resize(static_cast<size_t>(schema.num_dims()));
  std::vector<bool> selected(static_cast<size_t>(schema.num_dims()), false);
  // Default: the "all" member of every dimension.
  for (int d = 0; d < schema.num_dims(); ++d) {
    query.cls.set_level(d, schema.dim(d).num_levels());
    query.block[static_cast<size_t>(d)] = 0;
  }

  SNAKES_ASSIGN_OR_RETURN(std::vector<std::string> clauses, Tokenize(text));
  for (const std::string& clause : clauses) {
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      return Status::InvalidArgument("clause '" + clause +
                                     "' is not dimension=label");
    }
    std::string target = clause.substr(0, eq);
    const std::string label = clause.substr(eq + 1);

    std::string level_name;
    if (const size_t dot = target.find('.'); dot != std::string::npos) {
      level_name = target.substr(dot + 1);
      target.erase(dot);
    }

    int dim = -1;
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (schema.dim(d).name() == target) {
        dim = d;
        break;
      }
    }
    if (dim < 0) {
      return Status::NotFound("no dimension named '" + target + "'");
    }
    if (selected[static_cast<size_t>(dim)]) {
      return Status::InvalidArgument("dimension '" + target +
                                     "' selected twice");
    }
    const DimensionTable& table = tables[static_cast<size_t>(dim)];

    int level = -1;
    uint64_t block = 0;
    if (!level_name.empty()) {
      for (int l = 0; l <= table.hierarchy().num_levels(); ++l) {
        if (table.hierarchy().level_name(l) == level_name) {
          level = l;
          break;
        }
      }
      if (level < 0) {
        return Status::NotFound("dimension '" + target + "' has no level '" +
                                level_name + "'");
      }
      SNAKES_ASSIGN_OR_RETURN(block, table.BlockOf(level, label));
    } else {
      SNAKES_ASSIGN_OR_RETURN(auto found, table.Find(label));
      level = found.first;
      block = found.second;
    }
    query.cls.set_level(dim, level);
    query.block[static_cast<size_t>(dim)] = block;
    selected[static_cast<size_t>(dim)] = true;
  }
  return query;
}

}  // namespace snakes
