#ifndef SNAKES_CORE_ADVISOR_H_
#define SNAKES_CORE_ADVISOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "cost/cost_cache.h"
#include "curves/linearization.h"
#include "path/dp_cache.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "util/logging.h"
#include "util/result.h"

namespace snakes {

/// One evaluated strategy in a recommendation report.
struct StrategyReport {
  std::string name;
  /// Expected seek cost under the analytic cell-granularity model
  /// (cost_mu of Section 4 / the extended CV cost of Section 5). Model-
  /// independent: the ranking key, and what the class-cost cache memoizes.
  double expected_cost = 0.0;
  /// Expected per-query elapsed time under the request's CostModel: priced
  /// from the measured WorkloadIoStats when storage was measured, else from
  /// the seek surrogate alone (expected_cost * the model's per-seek ms).
  double expected_ms = 0.0;
  /// Measured expected I/O when the request set measure_storage.
  std::optional<WorkloadIoStats> io;
  /// The evaluated cell order itself, shared with the plan — lets callers
  /// (the recluster engine, storage) act on a recommendation without
  /// re-deriving the strategy from its name.
  std::shared_ptr<const Linearization> linearization;
};

/// The advisor's answer for one workload.
struct Recommendation {
  /// The optimal lattice path from the dynamic program (Section 4).
  LatticePath optimal_path;
  /// The path whose snaked clustering is cheapest (the snaked-cost DP,
  /// src/path/snaked_dp.h — Corollary 1's "optimal snaked lattice path").
  /// Often equal to optimal_path; never worse snaked.
  LatticePath optimal_snaked_path;
  /// cost_mu of the optimal path, unsnaked / snaked, and of the snaked
  /// optimum.
  double optimal_path_cost = 0.0;
  double snaked_optimal_cost = 0.0;
  double optimal_snaked_cost = 0.0;
  /// Every evaluated strategy, ascending expected cost. The first entry is
  /// the recommendation; on complete binary 2-D schemas Theorem 2 makes the
  /// optimal snaked path globally optimal, and it is first in almost every
  /// practical configuration.
  std::vector<StrategyReport> ranked;

  /// True when at least one strategy was evaluated. `ranked` is empty only
  /// when the request restricted the families and every one was inapplicable.
  bool has_best() const { return !ranked.empty(); }

  /// The cheapest evaluated strategy. Aborts with a clear message when no
  /// strategy was evaluated (check has_best() on restricted requests).
  const StrategyReport& best() const {
    SNAKES_CHECK(!ranked.empty())
        << "Recommendation::best(): no strategy was evaluated — every "
           "requested family was inapplicable to the schema";
    return ranked.front();
  }

  /// Plain-text report table.
  std::string ToString() const;
};

/// Bitwise recommendation equality: both DP paths, every cost double
/// compared by bit pattern (no epsilon), and the full ranking (names, order,
/// expected costs). This is the contract the memoized paths are held to —
/// AdviseIncremental vs a cold Advise, and the service's warm serving path
/// vs a direct library call. Shared so benches, tests, and the service
/// simulator all check the same predicate.
bool BitIdenticalRecommendations(const Recommendation& a,
                                 const Recommendation& b);

/// Memoized state threaded through AdviseIncremental calls. One instance
/// per (advisor, strategy set) sequence of workload epochs: the caller keeps
/// it alive across epochs and the advisor fills it as it goes. The caches
/// only ever hold workload-independent per-class integers (cost_cache) and
/// exactly-verified DP solutions (dp_cache), so reuse across epochs is
/// bit-identical to advising from scratch — just cheaper.
struct IncrementalAdvisorState {
  ClassCostCache cost_cache;
  DpCache dp_cache;
  /// Completed AdviseIncremental calls.
  uint64_t advises = 0;
  /// Per-class cost evaluations (cache misses) and avoided re-evaluations
  /// (cache hits) during the most recent advise — the incremental-speedup
  /// numbers the recluster engine and the bench guard report.
  uint64_t last_cost_evaluations = 0;
  uint64_t last_cost_hits = 0;
  uint64_t last_dp_hits = 0;
  uint64_t last_dp_misses = 0;
};

/// The library's top-level API: given a star schema and an expected workload
/// over its query-class lattice, finds the optimal lattice path (DP), applies
/// snaking, evaluates the requested strategy families in parallel, and
/// recommends a clustering.
///
///   auto schema = ...; Workload mu = ...;
///   ClusteringAdvisor advisor(schema);
///   EvaluationRequest request{mu};
///   Result<Recommendation> rec = advisor.Advise(request);
///   auto order = advisor.RecommendedOrder(mu);   // rank <-> cell
///
/// Advise = Plan + Evaluate. Plan resolves the request against a strategy
/// registry (running the path DPs); Evaluate scores every planned candidate
/// — the analytic cost and, when requested, the packed-storage measurement —
/// as an independent task on a fixed-size thread pool. The ranking is
/// deterministic: identical at every thread count.
class ClusteringAdvisor {
 public:
  explicit ClusteringAdvisor(std::shared_ptr<const StarSchema> schema)
      : schema_(std::move(schema)) {}

  const StarSchema& schema() const { return *schema_; }

  /// Resolves `request` into a concrete evaluation plan: validates the
  /// workload, runs the optimal-path and snaked-path DPs, consults the
  /// strategy registry, and materializes every applicable candidate.
  /// Inapplicable families are recorded in plan.skipped.
  Result<EvaluationPlan> Plan(const EvaluationRequest& request) const;

  /// Scores every planned candidate across the thread pool and assembles the
  /// ranked recommendation.
  Result<Recommendation> Evaluate(const EvaluationPlan& plan) const;

  /// Plan + Evaluate in one call.
  Result<Recommendation> Advise(const EvaluationRequest& request) const;

  /// Advise through `state`'s memos: per-class strategy costs computed in
  /// earlier calls are reused (they are workload-independent), and the path
  /// DPs are reused when the workload is bit-identical to a previous epoch.
  /// The recommendation is bit-identical to Advise(request) on the same
  /// workload — same costs, same ranking — while re-advising after a small
  /// drift performs evaluations only for classes never costed before.
  /// Ignores request.cost_cache / request.dp_cache (the state's are used).
  /// `state` must outlive the call; one advise at a time per state.
  Result<Recommendation> AdviseIncremental(const EvaluationRequest& request,
                                           IncrementalAdvisorState* state) const;

  /// The physical cell order to hand to the storage layer: the snaked
  /// clustering of the optimal snaked lattice path for `mu`.
  Result<std::unique_ptr<Linearization>> RecommendedOrder(
      const Workload& mu) const;

  /// The workload's query-class lattice for this schema.
  QueryClassLattice Lattice() const { return QueryClassLattice(*schema_); }

 private:
  std::shared_ptr<const StarSchema> schema_;
};

}  // namespace snakes

#endif  // SNAKES_CORE_ADVISOR_H_
