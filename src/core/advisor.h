#ifndef SNAKES_CORE_ADVISOR_H_
#define SNAKES_CORE_ADVISOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "curves/linearization.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/result.h"

namespace snakes {

/// Knobs for ClusteringAdvisor::Advise.
struct AdvisorOptions {
  /// Evaluate every row-major axis order (k! strategies) as baselines.
  bool include_row_majors = true;
  /// Evaluate the classical curves where the schema shape permits
  /// (power-of-two extents for Z/Gray; equal power-of-two for Hilbert).
  bool include_curves = true;
  /// Also pack a fact table and report measured page/seek I/O per strategy.
  /// Requires `facts` in Advise.
  bool measure_storage = false;
  StorageConfig storage;
};

/// One evaluated strategy in a recommendation report.
struct StrategyReport {
  std::string name;
  /// Expected seek cost under the analytic cell-granularity model
  /// (cost_mu of Section 4 / the extended CV cost of Section 5).
  double expected_cost = 0.0;
  /// Measured expected I/O when options.measure_storage was set.
  std::optional<WorkloadIoStats> io;
};

/// The advisor's answer for one workload.
struct Recommendation {
  /// The optimal lattice path from the dynamic program (Section 4).
  LatticePath optimal_path;
  /// The path whose snaked clustering is cheapest (the snaked-cost DP,
  /// src/path/snaked_dp.h — Corollary 1's "optimal snaked lattice path").
  /// Often equal to optimal_path; never worse snaked.
  LatticePath optimal_snaked_path;
  /// cost_mu of the optimal path, unsnaked / snaked, and of the snaked
  /// optimum.
  double optimal_path_cost = 0.0;
  double snaked_optimal_cost = 0.0;
  double optimal_snaked_cost = 0.0;
  /// Every evaluated strategy, ascending expected cost. The first entry is
  /// the recommendation; on complete binary 2-D schemas Theorem 2 makes the
  /// optimal snaked path globally optimal, and it is first in almost every
  /// practical configuration.
  std::vector<StrategyReport> ranked;

  const StrategyReport& best() const { return ranked.front(); }

  /// Plain-text report table.
  std::string ToString() const;
};

/// The library's top-level API: given a star schema and an expected workload
/// over its query-class lattice, finds the optimal lattice path (DP), applies
/// snaking, evaluates the requested baselines, and recommends a clustering.
///
///   auto schema = ...; Workload mu = ...;
///   ClusteringAdvisor advisor(schema);
///   Recommendation rec = advisor.Advise(mu).ValueOrDie();
///   auto order = advisor.RecommendedOrder(mu).ValueOrDie();  // rank <-> cell
class ClusteringAdvisor {
 public:
  explicit ClusteringAdvisor(std::shared_ptr<const StarSchema> schema)
      : schema_(std::move(schema)) {}

  const StarSchema& schema() const { return *schema_; }

  /// Evaluates strategies under `mu`. `facts` is only consulted when
  /// options.measure_storage is set.
  Result<Recommendation> Advise(
      const Workload& mu, const AdvisorOptions& options = {},
      std::shared_ptr<const FactTable> facts = nullptr) const;

  /// The physical cell order to hand to the storage layer: the snaked
  /// clustering of the optimal snaked lattice path for `mu`.
  Result<std::unique_ptr<Linearization>> RecommendedOrder(
      const Workload& mu) const;

  /// The workload's query-class lattice for this schema.
  QueryClassLattice Lattice() const { return QueryClassLattice(*schema_); }

 private:
  std::shared_ptr<const StarSchema> schema_;
};

}  // namespace snakes

#endif  // SNAKES_CORE_ADVISOR_H_
