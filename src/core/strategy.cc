#include "core/strategy.h"

#include <utility>

#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "util/logging.h"

namespace snakes {
namespace {

/// A non-owning shared_ptr view of `schema` (aliasing constructor with an
/// empty control block). Lets applicability checks delegate to the curve
/// Make() factories — the single source of truth for their requirements —
/// without copying the schema. The result must not outlive the reference.
std::shared_ptr<const StarSchema> Unowned(const StarSchema& schema) {
  return std::shared_ptr<const StarSchema>(std::shared_ptr<void>(), &schema);
}

/// The lattice-path family: the Corollary-1 snaked optimum, the snaked
/// Section-4 optimum (when it is a different path), and the plain Section-4
/// optimum — exactly the advisor's historical candidate list.
class LatticePathStrategyFactory : public StrategyFactory {
 public:
  std::string name() const override { return "lattice-paths"; }

  Status Applicable(const StarSchema&) const override { return Status::OK(); }

  Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const override {
    SNAKES_CHECK(ctx.optimal_path != nullptr &&
                 ctx.optimal_snaked_path != nullptr)
        << "lattice-paths factory needs the planner's DP results";
    std::vector<std::shared_ptr<const Linearization>> out;
    SNAKES_ASSIGN_OR_RETURN(
        auto best_snaked,
        MakePathOrder(ctx.schema, ctx.optimal_snaked_path->path, true));
    out.emplace_back(std::move(best_snaked));
    if (ctx.optimal_snaked_path->path != ctx.optimal_path->path) {
      SNAKES_ASSIGN_OR_RETURN(
          auto snaked, MakePathOrder(ctx.schema, ctx.optimal_path->path, true));
      out.emplace_back(std::move(snaked));
    }
    SNAKES_ASSIGN_OR_RETURN(
        auto plain, MakePathOrder(ctx.schema, ctx.optimal_path->path, false));
    out.emplace_back(std::move(plain));
    return out;
  }
};

/// All k! row-major axis orders (the Section-6 baseline family).
class RowMajorStrategyFactory : public StrategyFactory {
 public:
  std::string name() const override { return "row-major"; }

  Status Applicable(const StarSchema&) const override { return Status::OK(); }

  Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const override {
    std::vector<std::shared_ptr<const Linearization>> out;
    for (auto& rm : AllRowMajorOrders(ctx.schema)) {
      out.emplace_back(std::move(rm));
    }
    return out;
  }
};

class ZCurveStrategyFactory : public StrategyFactory {
 public:
  std::string name() const override { return "z-curve"; }

  Status Applicable(const StarSchema& schema) const override {
    return curve_internal::AllocateBits(schema).status();
  }

  Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const override {
    SNAKES_ASSIGN_OR_RETURN(auto z, ZCurve::Make(ctx.schema));
    return std::vector<std::shared_ptr<const Linearization>>{std::move(z)};
  }
};

class GrayCurveStrategyFactory : public StrategyFactory {
 public:
  std::string name() const override { return "gray-curve"; }

  Status Applicable(const StarSchema& schema) const override {
    return curve_internal::AllocateBits(schema).status();
  }

  Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const override {
    SNAKES_ASSIGN_OR_RETURN(auto g, GrayCurve::Make(ctx.schema));
    return std::vector<std::shared_ptr<const Linearization>>{std::move(g)};
  }
};

class HilbertStrategyFactory : public StrategyFactory {
 public:
  std::string name() const override { return "hilbert"; }

  Status Applicable(const StarSchema& schema) const override {
    return HilbertCurve::Make(Unowned(schema)).status();
  }

  Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const override {
    SNAKES_ASSIGN_OR_RETURN(auto h, HilbertCurve::Make(ctx.schema));
    return std::vector<std::shared_ptr<const Linearization>>{std::move(h)};
  }
};

}  // namespace

Status StrategyRegistry::Register(
    std::shared_ptr<const StrategyFactory> factory) {
  SNAKES_CHECK(factory != nullptr);
  if (Find(factory->name()) != nullptr) {
    return Status::InvalidArgument("strategy factory '" + factory->name() +
                                   "' is already registered");
  }
  factories_.push_back(std::move(factory));
  return Status::OK();
}

const StrategyFactory* StrategyRegistry::Find(std::string_view name) const {
  for (const auto& factory : factories_) {
    if (factory->name() == name) return factory.get();
  }
  return nullptr;
}

const StrategyRegistry& StrategyRegistry::BuiltIns() {
  static const StrategyRegistry* registry = []() {
    auto* r = new StrategyRegistry();
    SNAKES_CHECK_OK(r->Register(MakeLatticePathStrategyFactory()));
    SNAKES_CHECK_OK(r->Register(MakeRowMajorStrategyFactory()));
    SNAKES_CHECK_OK(r->Register(MakeZCurveStrategyFactory()));
    SNAKES_CHECK_OK(r->Register(MakeGrayCurveStrategyFactory()));
    SNAKES_CHECK_OK(r->Register(MakeHilbertStrategyFactory()));
    return r;
  }();
  return *registry;
}

std::shared_ptr<const StrategyFactory> MakeLatticePathStrategyFactory() {
  return std::make_shared<LatticePathStrategyFactory>();
}
std::shared_ptr<const StrategyFactory> MakeRowMajorStrategyFactory() {
  return std::make_shared<RowMajorStrategyFactory>();
}
std::shared_ptr<const StrategyFactory> MakeZCurveStrategyFactory() {
  return std::make_shared<ZCurveStrategyFactory>();
}
std::shared_ptr<const StrategyFactory> MakeGrayCurveStrategyFactory() {
  return std::make_shared<GrayCurveStrategyFactory>();
}
std::shared_ptr<const StrategyFactory> MakeHilbertStrategyFactory() {
  return std::make_shared<HilbertStrategyFactory>();
}

}  // namespace snakes
