#ifndef SNAKES_CORE_SPEC_H_
#define SNAKES_CORE_SPEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "util/result.h"

namespace snakes {

/// Plain-text schema and workload specs for the CLI and for configuration
/// files. Line-oriented; `#` starts a comment; blank lines are ignored.
///
/// Schema spec — one `dimension` line per dimension, fanouts listed from the
/// leaf level up:
///
///   # TPC-D LineItem
///   dimension parts    40 5     # part -> mfgr -> all
///   dimension supplier 10       # supplier -> all
///   dimension time     12 7     # month -> year -> all
///
/// Workload spec — one `class` line per query class with positive weight
/// (weights are normalized); levels are comma-separated, one per dimension:
///
///   class 2,0,1  0.5            # all parts, one supplier, one year
///   class 1,1,1  0.3
///   class 0,0,0  0.2
Result<StarSchema> ParseSchemaSpec(std::string_view text);

/// Parses a workload spec against `lattice` (see ParseSchemaSpec).
Result<Workload> ParseWorkloadSpec(const QueryClassLattice& lattice,
                                   std::string_view text);

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace snakes

#endif  // SNAKES_CORE_SPEC_H_
