#include "core/spec.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

namespace snakes {

namespace {

// Strips comments and surrounding whitespace; returns the payload.
std::string CleanLine(std::string line) {
  const size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const size_t last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

Result<uint64_t> ParseUint(const std::string& token, int line_no) {
  try {
    size_t used = 0;
    const unsigned long long v = std::stoull(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return static_cast<uint64_t>(v);
  } catch (...) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": expected an integer, got '" + token +
                                   "'");
  }
}

Result<double> ParseDouble(const std::string& token, int line_no) {
  try {
    size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (...) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": expected a number, got '" + token + "'");
  }
}

}  // namespace

Result<StarSchema> ParseSchemaSpec(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string raw;
  std::vector<Hierarchy> dims;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    if (keyword != "dimension") {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'dimension', got '" +
                                     keyword + "'");
    }
    std::string name;
    if (!(tokens >> name)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": dimension needs a name");
    }
    std::vector<uint64_t> fanouts;
    std::string token;
    while (tokens >> token) {
      SNAKES_ASSIGN_OR_RETURN(uint64_t fanout, ParseUint(token, line_no));
      fanouts.push_back(fanout);
    }
    SNAKES_ASSIGN_OR_RETURN(Hierarchy h,
                            Hierarchy::Uniform(name, std::move(fanouts)));
    dims.push_back(std::move(h));
  }
  if (dims.empty()) {
    return Status::InvalidArgument("schema spec declares no dimensions");
  }
  return StarSchema::Make("spec", std::move(dims));
}

Result<Workload> ParseWorkloadSpec(const QueryClassLattice& lattice,
                                   std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string raw;
  std::vector<std::pair<QueryClass, double>> masses;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    std::istringstream tokens(line);
    std::string keyword, levels_token, weight_token;
    tokens >> keyword;
    if (keyword != "class") {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 'class', got '" + keyword +
                                     "'");
    }
    if (!(tokens >> levels_token >> weight_token)) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) +
          ": expected 'class l1,l2,... weight'");
    }
    QueryClass cls(lattice.num_dims());
    {
      std::istringstream levels(levels_token);
      std::string item;
      int dim = 0;
      while (std::getline(levels, item, ',')) {
        SNAKES_ASSIGN_OR_RETURN(uint64_t level, ParseUint(item, line_no));
        if (dim >= lattice.num_dims() ||
            level > static_cast<uint64_t>(lattice.levels(dim))) {
          return Status::OutOfRange("line " + std::to_string(line_no) +
                                    ": class outside the lattice");
        }
        cls.set_level(dim, static_cast<int>(level));
        ++dim;
      }
      if (dim != lattice.num_dims()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": class needs one level per "
                                       "dimension");
      }
    }
    SNAKES_ASSIGN_OR_RETURN(double weight, ParseDouble(weight_token, line_no));
    if (weight <= 0.0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": weights must be positive");
    }
    masses.emplace_back(cls, weight);
  }
  if (masses.empty()) {
    return Status::InvalidArgument("workload spec declares no classes");
  }
  return Workload::FromMasses(lattice, masses, /*normalize=*/true);
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace snakes
