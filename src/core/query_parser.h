#ifndef SNAKES_CORE_QUERY_PARSER_H_
#define SNAKES_CORE_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "hierarchy/dimension_table.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "util/result.h"

namespace snakes {

/// Parses a textual member selection into a grid query — the surface form
/// of the paper's Q1/Q2:
///
///   location=NY jeans=levi's          -> class (1,1) grid query
///   location.state=ONT                -> class (1,2): jeans unselected
///   jeans="men's levi's"              -> double-quoted labels may contain
///                                        spaces (apostrophes are ordinary)
///
/// Each clause is `dimension=label` or `dimension.levelname=label`; the bare
/// form searches the dimension's levels bottom-up. Dimensions without a
/// clause select their "all" member (top level), exactly like a missing
/// WHERE predicate. `tables` must hold one DimensionTable per schema
/// dimension, in schema order.
Result<GridQuery> ParseGridQuery(const StarSchema& schema,
                                 const std::vector<DimensionTable>& tables,
                                 std::string_view text);

}  // namespace snakes

#endif  // SNAKES_CORE_QUERY_PARSER_H_
