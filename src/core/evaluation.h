#ifndef SNAKES_CORE_EVALUATION_H_
#define SNAKES_CORE_EVALUATION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "cost/cost_model.h"
#include "cost/workload_cost.h"
#include "lattice/workload.h"
#include "obs/obs.h"
#include "path/dpkd.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "util/result.h"

namespace snakes {

class ClassCostCache;  // cost/cost_cache.h
class DpCache;         // path/dp_cache.h

/// What to evaluate and how — the explicit replacement for the old
/// AdvisorOptions flag set. A request names strategy *families* from a
/// registry instead of toggling booleans, so new families need no new flags:
///
///   EvaluationRequest request{mu};
///   request.strategies = {"lattice-paths", "hilbert"};  // empty = all
///   request.num_threads = 4;                            // 0 = hardware
///   auto plan = advisor.Plan(request);                  // inspectable
///   auto rec = advisor.Evaluate(*plan);                 // or Advise(request)
struct EvaluationRequest {
  explicit EvaluationRequest(Workload mu) : workload(std::move(mu)) {}

  /// The expected workload; its lattice must match the advisor's schema.
  Workload workload;
  /// Factory names to evaluate (see StrategyRegistry). Empty = every
  /// registered family. Unknown names fail Plan with InvalidArgument;
  /// inapplicable families are planned as skipped, not errors.
  std::vector<std::string> strategies;
  /// Worker threads for the evaluation engine: 0 = hardware concurrency,
  /// 1 = serial. Results are identical at any thread count.
  int num_threads = 0;
  /// Also pack `facts` under every strategy and report measured I/O.
  bool measure_storage = false;
  StorageConfig storage;
  /// Storage representation measured strategies are packed into. Measured
  /// QueryIo is bit-identical across backends (zone-map pruning is
  /// conservative); the knob selects what pruning/movement structure the
  /// downstream recluster and serving layers inherit.
  StorageBackendKind backend = StorageBackendKind::kPacked;
  std::shared_ptr<const FactTable> facts;
  /// The factory registry to plan from; nullptr = StrategyRegistry::BuiltIns().
  const StrategyRegistry* registry = nullptr;
  /// How Evaluate measures expected cost: interval-based rank-run counting
  /// or the edge-histogram cell walk. kAuto picks per strategy/workload;
  /// both give bit-identical costs.
  CostEvalMode cost_mode = CostEvalMode::kAuto;
  /// Optional observability backends (obs/metrics.h, obs/trace.h). Both
  /// default to nullptr — the null object — so uninstrumented callers pay
  /// one pointer test per instrumentation site. When set, the advisor, the
  /// DP solvers and the storage simulator record counters, histograms and
  /// nested spans (request -> strategy -> DP phase -> storage I/O) into
  /// them; the recommendation itself is bit-identical either way. The
  /// caller keeps ownership and must outlive Plan/Evaluate.
  ObsSink obs;
  /// Time model pricing each strategy's expected_ms (cost/cost_model.h).
  /// Null selects the analytic default (the seed's DiskModel constants).
  /// The model never affects ranking or expected_cost — those stay the
  /// model-independent seek surrogate — only the ms conversion at the edge,
  /// so cached per-class integers are shared across models.
  std::shared_ptr<const CostModel> cost_model;
  /// Optional memo of per-class strategy costs (cost/cost_cache.h). When
  /// set, Evaluate scores candidates through the cache: classes already
  /// costed in a previous advise are not re-measured, and the result is
  /// bit-identical to the uncached evaluation. Caller owns; must outlive
  /// Evaluate. AdviseIncremental wires this from its state automatically.
  ClassCostCache* cost_cache = nullptr;
  /// Optional memo of the two path DPs (path/dp_cache.h). When set, Plan
  /// reuses DP solutions for bit-identical workloads instead of re-solving.
  DpCache* dp_cache = nullptr;
};

/// One concrete candidate the plan will score.
struct PlannedStrategy {
  /// Name of the factory family that produced it.
  std::string factory;
  std::shared_ptr<const Linearization> linearization;
};

/// A factory the planner consulted but could not apply to the schema.
struct SkippedStrategy {
  std::string factory;
  Status reason;
};

/// The resolved middle stage of the request -> registry -> plan pipeline:
/// the DP solutions plus every concrete candidate, ready for the parallel
/// scoring pass. Produced by ClusteringAdvisor::Plan, consumed by Evaluate;
/// self-contained (owns copies/refs of everything scoring needs).
struct EvaluationPlan {
  Workload workload;
  /// Section-4 optimal lattice path and the Corollary-1 snaked optimum.
  OptimalPathResult optimal_path;
  OptimalPathResult optimal_snaked_path;
  /// cost_mu of snaking optimal_path (the paper's recipe).
  double snaked_cost_of_optimal = 0.0;
  /// Candidates in canonical order (registration order within each family);
  /// this order is the tie-break among equal-cost strategies.
  std::vector<PlannedStrategy> strategies;
  std::vector<SkippedStrategy> skipped;
  int num_threads = 0;
  bool measure_storage = false;
  StorageConfig storage;
  StorageBackendKind backend = StorageBackendKind::kPacked;
  std::shared_ptr<const FactTable> facts;
  /// Copied from the request; consulted by Evaluate's scoring tasks.
  ObsSink obs;
  CostEvalMode cost_mode = CostEvalMode::kAuto;
  /// Carried over from the request; null = analytic default.
  std::shared_ptr<const CostModel> cost_model;
  /// Carried over from the request; consulted by Evaluate when non-null.
  ClassCostCache* cost_cache = nullptr;

  /// Human-readable plan summary (candidates and skip reasons).
  std::string ToString() const;
};

}  // namespace snakes

#endif  // SNAKES_CORE_EVALUATION_H_
