#include "core/advisor.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "cost/workload_cost.h"
#include "curves/path_order.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "util/logging.h"
#include "util/text_table.h"
#include "util/thread_pool.h"

namespace snakes {

std::string Recommendation::ToString() const {
  std::string out = "optimal lattice path: " + optimal_path.ToString() + "\n";
  out += "cost " + FormatDouble(optimal_path_cost, 4) + " unsnaked, " +
         FormatDouble(snaked_optimal_cost, 4) + " snaked\n";
  out += "optimal snaked path:  " + optimal_snaked_path.ToString() +
         ", cost " + FormatDouble(optimal_snaked_cost, 4) + "\n\n";
  if (ranked.empty()) {
    out += "(no strategy evaluated: every requested family was "
           "inapplicable to the schema)\n";
    return out;
  }
  TextTable table(
      {"strategy", "expected cost", "expected ms", "seeks/query",
       "norm blocks"});
  for (const StrategyReport& report : ranked) {
    std::vector<std::string> row{report.name,
                                 FormatDouble(report.expected_cost, 4),
                                 FormatDouble(report.expected_ms, 4)};
    if (report.io.has_value()) {
      row.push_back(FormatDouble(report.io->expected_seeks, 2));
      row.push_back(FormatDouble(report.io->expected_normalized_blocks, 2));
    }
    table.AddRow(std::move(row));
  }
  out += table.Render();
  return out;
}

namespace {

bool SameBits(double a, double b) {
  uint64_t x, y;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

}  // namespace

bool BitIdenticalRecommendations(const Recommendation& a,
                                 const Recommendation& b) {
  if (!(a.optimal_path == b.optimal_path) ||
      !(a.optimal_snaked_path == b.optimal_snaked_path)) {
    return false;
  }
  if (!SameBits(a.optimal_path_cost, b.optimal_path_cost) ||
      !SameBits(a.snaked_optimal_cost, b.snaked_optimal_cost) ||
      !SameBits(a.optimal_snaked_cost, b.optimal_snaked_cost)) {
    return false;
  }
  if (a.ranked.size() != b.ranked.size()) return false;
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].name != b.ranked[i].name ||
        !SameBits(a.ranked[i].expected_cost, b.ranked[i].expected_cost)) {
      return false;
    }
  }
  return true;
}

std::string EvaluationPlan::ToString() const {
  std::string out = "evaluation plan: " +
                    std::to_string(strategies.size()) + " candidate(s), " +
                    std::to_string(num_threads) + " thread(s)\n";
  out += "optimal lattice path: " + optimal_path.path.ToString() + "\n";
  out += "optimal snaked path:  " + optimal_snaked_path.path.ToString() + "\n";
  for (const PlannedStrategy& s : strategies) {
    out += "  evaluate [" + s.factory + "] " + s.linearization->name() + "\n";
  }
  for (const SkippedStrategy& s : skipped) {
    out += "  skip     [" + s.factory + "] " + s.reason.message() + "\n";
  }
  return out;
}

Result<EvaluationPlan> ClusteringAdvisor::Plan(
    const EvaluationRequest& request) const {
  ScopedSpan span(request.obs.tracer, "advisor/plan", "advisor");
  if (request.measure_storage && request.facts == nullptr) {
    return Status::InvalidArgument("measure_storage requires a fact table");
  }
  {
    const QueryClassLattice expected(*schema_);
    if (!(request.workload.lattice() == expected)) {
      return Status::InvalidArgument(
          "workload lattice does not match the advisor's schema");
    }
  }

  // Resolve the requested families against the registry before doing any
  // work, so typos fail fast.
  const StrategyRegistry& registry =
      request.registry != nullptr ? *request.registry
                                  : StrategyRegistry::BuiltIns();
  std::vector<const StrategyFactory*> selected;
  if (request.strategies.empty()) {
    for (const auto& factory : registry.factories()) {
      selected.push_back(factory.get());
    }
  } else {
    for (const std::string& name : request.strategies) {
      const StrategyFactory* factory = registry.Find(name);
      if (factory == nullptr) {
        std::string known;
        for (const auto& f : registry.factories()) {
          if (!known.empty()) known += ", ";
          known += f->name();
        }
        return Status::InvalidArgument("unknown strategy family '" + name +
                                       "' (registered: " + known + ")");
      }
      selected.push_back(factory);
    }
  }

  const int num_threads = request.num_threads <= 0
                              ? ThreadPool::DefaultThreads()
                              : request.num_threads;

  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);
  std::optional<OptimalPathResult> dp_opt;
  std::optional<OptimalPathResult> snaked_dp_opt;
  if (request.dp_cache != nullptr) {
    // Memoized DPs: bit-identical reuse when the workload is exactly a
    // previously solved one (exact probability verification inside).
    SNAKES_ASSIGN_OR_RETURN(
        OptimalPathResult dp,
        request.dp_cache->OptimalPath(request.workload,
                                      pool ? &*pool : nullptr, request.obs));
    SNAKES_ASSIGN_OR_RETURN(
        OptimalPathResult snaked_dp,
        request.dp_cache->OptimalSnakedPath(request.workload, request.obs));
    dp_opt.emplace(std::move(dp));
    snaked_dp_opt.emplace(std::move(snaked_dp));
  } else {
    SNAKES_ASSIGN_OR_RETURN(
        OptimalPathResult dp,
        FindOptimalLatticePath(request.workload, pool ? &*pool : nullptr,
                               request.obs));
    SNAKES_ASSIGN_OR_RETURN(
        OptimalPathResult snaked_dp,
        FindOptimalSnakedLatticePath(request.workload, request.obs));
    dp_opt.emplace(std::move(dp));
    snaked_dp_opt.emplace(std::move(snaked_dp));
  }
  OptimalPathResult& dp = *dp_opt;
  OptimalPathResult& snaked_dp = *snaked_dp_opt;

  EvaluationPlan plan{request.workload,
                      std::move(dp),
                      std::move(snaked_dp),
                      0.0,
                      {},
                      {},
                      num_threads,
                      request.measure_storage,
                      request.storage,
                      request.backend,
                      request.facts,
                      request.obs,
                      request.cost_mode};
  plan.cost_model =
      request.cost_model != nullptr ? request.cost_model : DefaultCostModel();
  plan.cost_cache = request.cost_cache;
  plan.snaked_cost_of_optimal =
      ExpectedSnakedPathCost(plan.workload, plan.optimal_path.path);

  const StrategyContext ctx{schema_, &plan.workload, &plan.optimal_path,
                            &plan.optimal_snaked_path};
  for (const StrategyFactory* factory : selected) {
    const Status applicable = factory->Applicable(*schema_);
    if (!applicable.ok()) {
      plan.skipped.push_back({factory->name(), applicable});
      continue;
    }
    SNAKES_ASSIGN_OR_RETURN(auto candidates, factory->Build(ctx));
    for (auto& lin : candidates) {
      plan.strategies.push_back({factory->name(), std::move(lin)});
    }
  }
  if (request.obs.metrics != nullptr) {
    MetricsRegistry& metrics = *request.obs.metrics;
    metrics.GetCounter("advisor.factories_considered")->Inc(selected.size());
    metrics.GetCounter("advisor.factories_skipped")->Inc(plan.skipped.size());
    metrics.GetCounter("advisor.strategies_planned")
        ->Inc(plan.strategies.size());
  }
  span.AddArg("candidates", static_cast<uint64_t>(plan.strategies.size()));
  span.AddArg("skipped", static_cast<uint64_t>(plan.skipped.size()));
  return plan;
}

Result<Recommendation> ClusteringAdvisor::Evaluate(
    const EvaluationPlan& plan) const {
  ScopedSpan eval_span(plan.obs.tracer, "advisor/evaluate", "advisor");
  eval_span.AddArg("candidates", static_cast<uint64_t>(plan.strategies.size()));
  eval_span.AddArg("threads", static_cast<uint64_t>(plan.num_threads));
  Recommendation rec{plan.optimal_path.path,
                     plan.optimal_snaked_path.path,
                     plan.optimal_path.cost,
                     plan.snaked_cost_of_optimal,
                     plan.optimal_snaked_path.cost,
                     {}};

  // One task per candidate. Tasks are pure functions of the (shared,
  // immutable) plan, and futures are collected in submission order, so the
  // ranking below is identical at every pool size. `enqueued` is when the
  // task was submitted; the gap to the task actually starting is the
  // queue-wait (all zeros on the serial path), split out from compute time
  // so saturation is visible in the metrics.
  using Clock = std::chrono::steady_clock;
  const ObsSink& obs = plan.obs;
  const auto score = [&plan, &obs](const PlannedStrategy& candidate,
                                   Clock::time_point enqueued)
      -> Result<StrategyReport> {
    const Clock::time_point started = obs.enabled() ? Clock::now() : Clock::time_point();
    ScopedSpan span(obs.tracer, candidate.linearization->name(), "strategy");
    span.AddArg("factory", candidate.factory);
    // One run arena per task: cost measurement and storage simulation of
    // this candidate reuse its storage across every class; tasks never share
    // one (the arena is single-threaded state).
    RunArena arena;
    StrategyReport report;
    report.name = candidate.linearization->name();
    report.linearization = candidate.linearization;
    report.expected_cost =
        plan.cost_cache != nullptr
            ? MeasureExpectedCostCached(plan.workload,
                                        *candidate.linearization,
                                        plan.cost_cache, obs, plan.cost_mode,
                                        &arena)
            : MeasureExpectedCost(plan.workload, *candidate.linearization,
                                  obs, plan.cost_mode, &arena);
    if (plan.measure_storage) {
      SNAKES_ASSIGN_OR_RETURN(
          std::shared_ptr<const StorageBackend> backend,
          MakeStorageBackend(plan.backend, candidate.linearization,
                             plan.facts, plan.storage, obs));
      const IoSimulator sim(*backend, obs, &arena);
      report.io = IoSimulator::Expect(plan.workload, sim.MeasureAllClasses());
    }
    // The ms conversion happens here at the edge: the model prices the
    // measured I/O when storage was measured, else the seek surrogate.
    const CostModel& model =
        plan.cost_model != nullptr ? *plan.cost_model : *DefaultCostModel();
    report.expected_ms =
        report.io.has_value()
            ? model.ExpectedMs(*report.io, plan.storage.page_size_bytes)
            : report.expected_cost * model.SeekMs();
    if (obs.metrics != nullptr) {
      const auto ns = [](Clock::duration d) {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
      };
      MetricsRegistry& metrics = *obs.metrics;
      metrics.GetCounter("advisor.strategies_evaluated")->Inc();
      metrics.GetHistogram("advisor.queue_wait_ns")
          ->Record(ns(started - enqueued));
      metrics.GetHistogram("advisor.strategy_compute_ns")
          ->Record(ns(Clock::now() - started));
    }
    return report;
  };

  std::vector<Result<StrategyReport>> reports;
  reports.reserve(plan.strategies.size());
  if (plan.num_threads == 1 || plan.strategies.size() <= 1) {
    for (const PlannedStrategy& candidate : plan.strategies) {
      reports.push_back(score(candidate, Clock::now()));
    }
  } else {
    ThreadPool pool(plan.num_threads);
    std::vector<std::future<Result<StrategyReport>>> pending;
    pending.reserve(plan.strategies.size());
    for (const PlannedStrategy& candidate : plan.strategies) {
      pending.push_back(pool.Submit([&score, &candidate,
                                     enqueued = Clock::now()]() {
        return score(candidate, enqueued);
      }));
    }
    for (auto& future : pending) {
      reports.push_back(future.get());
    }
  }
  for (Result<StrategyReport>& report : reports) {
    if (!report.ok()) return report.status();
    rec.ranked.push_back(std::move(report).value());
  }
  std::stable_sort(rec.ranked.begin(), rec.ranked.end(),
                   [](const StrategyReport& x, const StrategyReport& y) {
                     return x.expected_cost < y.expected_cost;
                   });
  return rec;
}

Result<Recommendation> ClusteringAdvisor::Advise(
    const EvaluationRequest& request) const {
  SNAKES_ASSIGN_OR_RETURN(EvaluationPlan plan, Plan(request));
  return Evaluate(plan);
}

Result<Recommendation> ClusteringAdvisor::AdviseIncremental(
    const EvaluationRequest& request, IncrementalAdvisorState* state) const {
  SNAKES_CHECK(state != nullptr) << "AdviseIncremental requires state";
  ScopedSpan span(request.obs.tracer, "advisor/advise_incremental", "advisor");
  EvaluationRequest cached = request;
  cached.cost_cache = &state->cost_cache;
  cached.dp_cache = &state->dp_cache;
  const ClassCostCache::Stats cost_before = state->cost_cache.stats();
  const DpCache::Stats dp_before = state->dp_cache.stats();
  SNAKES_ASSIGN_OR_RETURN(EvaluationPlan plan, Plan(cached));
  SNAKES_ASSIGN_OR_RETURN(Recommendation rec, Evaluate(plan));
  const ClassCostCache::Stats cost_after = state->cost_cache.stats();
  const DpCache::Stats dp_after = state->dp_cache.stats();
  state->last_cost_evaluations = cost_after.misses - cost_before.misses;
  state->last_cost_hits = cost_after.hits - cost_before.hits;
  state->last_dp_hits = dp_after.hits - dp_before.hits;
  state->last_dp_misses = dp_after.misses - dp_before.misses;
  ++state->advises;
  span.AddArg("cost_evaluations", state->last_cost_evaluations);
  span.AddArg("cost_hits", state->last_cost_hits);
  if (request.obs.metrics != nullptr) {
    MetricsRegistry& metrics = *request.obs.metrics;
    metrics.GetCounter("advisor.incremental_advises")->Inc();
    metrics.GetCounter("advisor.incremental_cost_evaluations")
        ->Inc(state->last_cost_evaluations);
    metrics.GetCounter("advisor.incremental_cost_hits")
        ->Inc(state->last_cost_hits);
  }
  return rec;
}

Result<std::unique_ptr<Linearization>> ClusteringAdvisor::RecommendedOrder(
    const Workload& mu) const {
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult dp,
                          FindOptimalSnakedLatticePath(mu));
  return MakePathOrder(schema_, dp.path, /*snaked=*/true);
}

}  // namespace snakes
