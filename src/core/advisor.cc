#include "core/advisor.h"

#include <algorithm>
#include <future>
#include <utility>

#include "cost/workload_cost.h"
#include "curves/path_order.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "util/logging.h"
#include "util/text_table.h"
#include "util/thread_pool.h"

namespace snakes {

std::string Recommendation::ToString() const {
  std::string out = "optimal lattice path: " + optimal_path.ToString() + "\n";
  out += "cost " + FormatDouble(optimal_path_cost, 4) + " unsnaked, " +
         FormatDouble(snaked_optimal_cost, 4) + " snaked\n";
  out += "optimal snaked path:  " + optimal_snaked_path.ToString() +
         ", cost " + FormatDouble(optimal_snaked_cost, 4) + "\n\n";
  if (ranked.empty()) {
    out += "(no strategy evaluated: every requested family was "
           "inapplicable to the schema)\n";
    return out;
  }
  TextTable table({"strategy", "expected cost", "seeks/query", "norm blocks"});
  for (const StrategyReport& report : ranked) {
    std::vector<std::string> row{report.name,
                                 FormatDouble(report.expected_cost, 4)};
    if (report.io.has_value()) {
      row.push_back(FormatDouble(report.io->expected_seeks, 2));
      row.push_back(FormatDouble(report.io->expected_normalized_blocks, 2));
    }
    table.AddRow(std::move(row));
  }
  out += table.Render();
  return out;
}

std::string EvaluationPlan::ToString() const {
  std::string out = "evaluation plan: " +
                    std::to_string(strategies.size()) + " candidate(s), " +
                    std::to_string(num_threads) + " thread(s)\n";
  out += "optimal lattice path: " + optimal_path.path.ToString() + "\n";
  out += "optimal snaked path:  " + optimal_snaked_path.path.ToString() + "\n";
  for (const PlannedStrategy& s : strategies) {
    out += "  evaluate [" + s.factory + "] " + s.linearization->name() + "\n";
  }
  for (const SkippedStrategy& s : skipped) {
    out += "  skip     [" + s.factory + "] " + s.reason.message() + "\n";
  }
  return out;
}

Result<EvaluationPlan> ClusteringAdvisor::Plan(
    const EvaluationRequest& request) const {
  if (request.measure_storage && request.facts == nullptr) {
    return Status::InvalidArgument("measure_storage requires a fact table");
  }
  {
    const QueryClassLattice expected(*schema_);
    if (!(request.workload.lattice() == expected)) {
      return Status::InvalidArgument(
          "workload lattice does not match the advisor's schema");
    }
  }

  // Resolve the requested families against the registry before doing any
  // work, so typos fail fast.
  const StrategyRegistry& registry =
      request.registry != nullptr ? *request.registry
                                  : StrategyRegistry::BuiltIns();
  std::vector<const StrategyFactory*> selected;
  if (request.strategies.empty()) {
    for (const auto& factory : registry.factories()) {
      selected.push_back(factory.get());
    }
  } else {
    for (const std::string& name : request.strategies) {
      const StrategyFactory* factory = registry.Find(name);
      if (factory == nullptr) {
        std::string known;
        for (const auto& f : registry.factories()) {
          if (!known.empty()) known += ", ";
          known += f->name();
        }
        return Status::InvalidArgument("unknown strategy family '" + name +
                                       "' (registered: " + known + ")");
      }
      selected.push_back(factory);
    }
  }

  const int num_threads = request.num_threads <= 0
                              ? ThreadPool::DefaultThreads()
                              : request.num_threads;

  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);
  SNAKES_ASSIGN_OR_RETURN(
      OptimalPathResult dp,
      FindOptimalLatticePath(request.workload, pool ? &*pool : nullptr));
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult snaked_dp,
                          FindOptimalSnakedLatticePath(request.workload));

  EvaluationPlan plan{request.workload,
                      std::move(dp),
                      std::move(snaked_dp),
                      0.0,
                      {},
                      {},
                      num_threads,
                      request.measure_storage,
                      request.storage,
                      request.facts};
  plan.snaked_cost_of_optimal =
      ExpectedSnakedPathCost(plan.workload, plan.optimal_path.path);

  const StrategyContext ctx{schema_, &plan.workload, &plan.optimal_path,
                            &plan.optimal_snaked_path};
  for (const StrategyFactory* factory : selected) {
    const Status applicable = factory->Applicable(*schema_);
    if (!applicable.ok()) {
      plan.skipped.push_back({factory->name(), applicable});
      continue;
    }
    SNAKES_ASSIGN_OR_RETURN(auto candidates, factory->Build(ctx));
    for (auto& lin : candidates) {
      plan.strategies.push_back({factory->name(), std::move(lin)});
    }
  }
  return plan;
}

Result<Recommendation> ClusteringAdvisor::Evaluate(
    const EvaluationPlan& plan) const {
  Recommendation rec{plan.optimal_path.path,
                     plan.optimal_snaked_path.path,
                     plan.optimal_path.cost,
                     plan.snaked_cost_of_optimal,
                     plan.optimal_snaked_path.cost,
                     {}};

  // One task per candidate. Tasks are pure functions of the (shared,
  // immutable) plan, and futures are collected in submission order, so the
  // ranking below is identical at every pool size.
  const auto score = [&plan](const PlannedStrategy& candidate)
      -> Result<StrategyReport> {
    StrategyReport report;
    report.name = candidate.linearization->name();
    report.expected_cost =
        MeasureExpectedCost(plan.workload, *candidate.linearization);
    if (plan.measure_storage) {
      SNAKES_ASSIGN_OR_RETURN(
          PackedLayout layout,
          PackedLayout::Pack(candidate.linearization, plan.facts,
                             plan.storage));
      const IoSimulator sim(layout);
      report.io = IoSimulator::Expect(plan.workload, sim.MeasureAllClasses());
    }
    return report;
  };

  std::vector<Result<StrategyReport>> reports;
  reports.reserve(plan.strategies.size());
  if (plan.num_threads == 1 || plan.strategies.size() <= 1) {
    for (const PlannedStrategy& candidate : plan.strategies) {
      reports.push_back(score(candidate));
    }
  } else {
    ThreadPool pool(plan.num_threads);
    std::vector<std::future<Result<StrategyReport>>> pending;
    pending.reserve(plan.strategies.size());
    for (const PlannedStrategy& candidate : plan.strategies) {
      pending.push_back(
          pool.Submit([&score, &candidate]() { return score(candidate); }));
    }
    for (auto& future : pending) {
      reports.push_back(future.get());
    }
  }
  for (Result<StrategyReport>& report : reports) {
    if (!report.ok()) return report.status();
    rec.ranked.push_back(std::move(report).value());
  }
  std::stable_sort(rec.ranked.begin(), rec.ranked.end(),
                   [](const StrategyReport& x, const StrategyReport& y) {
                     return x.expected_cost < y.expected_cost;
                   });
  return rec;
}

Result<Recommendation> ClusteringAdvisor::Advise(
    const EvaluationRequest& request) const {
  SNAKES_ASSIGN_OR_RETURN(EvaluationPlan plan, Plan(request));
  return Evaluate(plan);
}

Result<Recommendation> ClusteringAdvisor::Advise(
    const Workload& mu, const AdvisorOptions& options,
    std::shared_ptr<const FactTable> facts) const {
  EvaluationRequest request{mu};
  request.strategies = {"lattice-paths"};
  if (options.include_row_majors) request.strategies.push_back("row-major");
  if (options.include_curves) {
    request.strategies.push_back("z-curve");
    request.strategies.push_back("gray-curve");
    request.strategies.push_back("hilbert");
  }
  request.measure_storage = options.measure_storage;
  request.storage = options.storage;
  request.facts = std::move(facts);
  return Advise(request);
}

Result<std::unique_ptr<Linearization>> ClusteringAdvisor::RecommendedOrder(
    const Workload& mu) const {
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult dp,
                          FindOptimalSnakedLatticePath(mu));
  return MakePathOrder(schema_, dp.path, /*snaked=*/true);
}

}  // namespace snakes
