#include "core/advisor.h"

#include <algorithm>

#include "cost/workload_cost.h"
#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "util/logging.h"
#include "util/text_table.h"

namespace snakes {

std::string Recommendation::ToString() const {
  TextTable table({"strategy", "expected cost", "seeks/query", "norm blocks"});
  for (const StrategyReport& report : ranked) {
    std::vector<std::string> row{report.name,
                                 FormatDouble(report.expected_cost, 4)};
    if (report.io.has_value()) {
      row.push_back(FormatDouble(report.io->expected_seeks, 2));
      row.push_back(FormatDouble(report.io->expected_normalized_blocks, 2));
    }
    table.AddRow(std::move(row));
  }
  std::string out = "optimal lattice path: " + optimal_path.ToString() + "\n";
  out += "cost " + FormatDouble(optimal_path_cost, 4) + " unsnaked, " +
         FormatDouble(snaked_optimal_cost, 4) + " snaked\n";
  out += "optimal snaked path:  " + optimal_snaked_path.ToString() +
         ", cost " + FormatDouble(optimal_snaked_cost, 4) + "\n\n";
  out += table.Render();
  return out;
}

Result<Recommendation> ClusteringAdvisor::Advise(
    const Workload& mu, const AdvisorOptions& options,
    std::shared_ptr<const FactTable> facts) const {
  if (options.measure_storage && facts == nullptr) {
    return Status::InvalidArgument(
        "measure_storage requires a fact table");
  }
  {
    const QueryClassLattice expected(*schema_);
    if (!(mu.lattice() == expected)) {
      return Status::InvalidArgument(
          "workload lattice does not match the advisor's schema");
    }
  }

  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult dp, FindOptimalLatticePath(mu));
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult snaked_dp,
                          FindOptimalSnakedLatticePath(mu));

  Recommendation rec{dp.path,
                     snaked_dp.path,
                     dp.cost,
                     ExpectedSnakedPathCost(mu, dp.path),
                     snaked_dp.cost,
                     {}};

  // Candidate strategies: the snaked optimum, the (snaked and plain)
  // Section-4 optimum, and the baselines.
  std::vector<std::shared_ptr<const Linearization>> candidates;
  {
    SNAKES_ASSIGN_OR_RETURN(auto best_snaked,
                            MakePathOrder(schema_, snaked_dp.path, true));
    candidates.emplace_back(std::move(best_snaked));
    if (snaked_dp.path != dp.path) {
      SNAKES_ASSIGN_OR_RETURN(auto snaked,
                              MakePathOrder(schema_, dp.path, true));
      candidates.emplace_back(std::move(snaked));
    }
    SNAKES_ASSIGN_OR_RETURN(auto plain, MakePathOrder(schema_, dp.path, false));
    candidates.emplace_back(std::move(plain));
  }
  if (options.include_row_majors) {
    for (auto& rm : AllRowMajorOrders(schema_)) {
      candidates.emplace_back(std::move(rm));
    }
  }
  if (options.include_curves) {
    if (auto z = ZCurve::Make(schema_); z.ok()) {
      candidates.emplace_back(std::move(z).value());
    }
    if (auto g = GrayCurve::Make(schema_); g.ok()) {
      candidates.emplace_back(std::move(g).value());
    }
    if (auto h = HilbertCurve::Make(schema_); h.ok()) {
      candidates.emplace_back(std::move(h).value());
    }
  }

  for (const auto& lin : candidates) {
    StrategyReport report;
    report.name = lin->name();
    report.expected_cost = MeasureExpectedCost(mu, *lin);
    if (options.measure_storage) {
      SNAKES_ASSIGN_OR_RETURN(
          PackedLayout layout,
          PackedLayout::Pack(lin, facts, options.storage));
      const IoSimulator sim(layout);
      report.io = IoSimulator::Expect(mu, sim.MeasureAllClasses());
    }
    rec.ranked.push_back(std::move(report));
  }
  std::stable_sort(rec.ranked.begin(), rec.ranked.end(),
                   [](const StrategyReport& x, const StrategyReport& y) {
                     return x.expected_cost < y.expected_cost;
                   });
  return rec;
}

Result<std::unique_ptr<Linearization>> ClusteringAdvisor::RecommendedOrder(
    const Workload& mu) const {
  SNAKES_ASSIGN_OR_RETURN(OptimalPathResult dp,
                          FindOptimalSnakedLatticePath(mu));
  return MakePathOrder(schema_, dp.path, /*snaked=*/true);
}

}  // namespace snakes
