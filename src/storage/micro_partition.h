#ifndef SNAKES_STORAGE_MICRO_PARTITION_H_
#define SNAKES_STORAGE_MICRO_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hierarchy/star_schema.h"
#include "obs/obs.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "util/result.h"

namespace snakes {

/// Snowflake-style storage backend: the same rank-order page packing as
/// PackedLayout, with consecutive rank runs of pages grouped into immutable
/// micro-partitions that carry per-dimension cell-coordinate min/max zone
/// maps. Queries prune the partition directory with the zone maps before
/// scanning rank runs inside the survivors, and reclustering rewrites whole
/// partitions — immutable files are replaced, never patched in place.
///
/// Partitions tile the rank space exactly: every rank belongs to one
/// partition, partitions cover disjoint page ranges, and a partition closes
/// at the first clean page boundary once it spans at least
/// config.micro_partition_pages pages. Zone maps aggregate only non-empty
/// cells, so pruning is conservative: a pruned partition holds no record of
/// the query box and measured QueryIo stays bit-identical to PackedLayout.
class MicroPartitionStore : public StorageBackend {
 public:
  struct Partition {
    uint64_t first_rank = 0;
    uint64_t num_ranks = 0;
    /// Inclusive page span; inverted (first > last) when records == 0.
    uint64_t first_page = 1;
    uint64_t last_page = 0;
    uint64_t records = 0;
    /// Per-dimension min/max leaf coordinates over the partition's
    /// non-empty cells (inclusive); meaningful only when records > 0.
    CellCoord zone_lo;
    CellCoord zone_hi;
    /// Record-level min/max of the measure attribute over the partition's
    /// records (from FactTable's exact per-cell tracking); meaningful only
    /// when records > 0.
    double measure_lo = 0.0;
    double measure_hi = 0.0;

    uint64_t end_rank() const { return first_rank + num_ranks; }
    uint64_t num_data_pages() const {
      return records == 0 ? 0 : last_page - first_page + 1;
    }
  };

  /// Packs `facts` along `lin` and builds the partition directory. Fails on
  /// the same degenerate configs as PackedLayout::Pack, and additionally
  /// when config.micro_partition_pages == 0.
  static Result<MicroPartitionStore> Pack(
      std::shared_ptr<const Linearization> lin,
      std::shared_ptr<const FactTable> facts, StorageConfig config = {},
      const ObsSink& obs = {});

  StorageBackendKind kind() const override {
    return StorageBackendKind::kMicroPartition;
  }

  uint64_t num_partitions() const override { return partitions_.size(); }
  const Partition& partition(uint64_t index) const {
    return partitions_[index];
  }

  /// Index of the partition whose rank range contains `rank`.
  uint64_t PartitionOf(uint64_t rank) const;

  /// Zone-map pruning: a partition survives iff it holds records and its
  /// zone box intersects `box` in every dimension.
  PruneStats PruneBox(const CellBox& box) const override;

  /// PruneBox with the record-level measure zone maps consulted too: a
  /// partition additionally prunes when [measure_lo, measure_hi] misses
  /// `bounds`. Conservative — a pruned partition holds no record of the box
  /// with its measure in `bounds` (the brute-force soundness contract
  /// micro_partition_test checks record by record).
  PruneStats PruneBoxMeasure(const CellBox& box,
                             const MeasureBounds& bounds) const override;

  /// Partition-granularity rewrite pricing: every partition whose rank
  /// range intersects `ranges` with >= 1 record is read (written) in full.
  RewriteIo RewriteReadIo(const std::vector<RankRun>& ranges) const override;
  RewriteIo RewriteWriteIo(const std::vector<RankRun>& ranges) const override;

 private:
  MicroPartitionStore() = default;

  Status BuildPartitions();
  RewriteIo PartitionGranularityIo(const std::vector<RankRun>& ranges) const;

  std::vector<Partition> partitions_;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_MICRO_PARTITION_H_
