#ifndef SNAKES_STORAGE_EXECUTOR_H_
#define SNAKES_STORAGE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "curves/run_arena.h"
#include "lattice/grid_query.h"
#include "lattice/lattice.h"
#include "lattice/workload.h"
#include "obs/obs.h"
#include "storage/backend.h"
#include "util/logging.h"
#include "util/result.h"

namespace snakes {

class Counter;
class Histogram;

/// Exact aggregates over every query of one query class.
struct ClassIoStats {
  uint64_t num_queries = 0;   // all queries in the class
  uint64_t num_nonempty = 0;  // queries selecting >= 1 record
  uint64_t total_pages = 0;
  uint64_t total_seeks = 0;
  double total_normalized = 0.0;  // sum of per-query NormalizedBlocks()

  /// Average seeks per non-empty query (empty queries read nothing; the
  /// paper's per-query minimum of 1 seek only applies to queries that
  /// retrieve data).
  double AvgSeeks() const {
    return num_nonempty == 0
               ? 0.0
               : static_cast<double>(total_seeks) /
                     static_cast<double>(num_nonempty);
  }

  /// Average normalized blocks read per non-empty query.
  double AvgNormalizedBlocks() const {
    return num_nonempty == 0 ? 0.0 : total_normalized /
                                         static_cast<double>(num_nonempty);
  }

  /// Average pages read per non-empty query.
  double AvgPages() const {
    return num_nonempty == 0
               ? 0.0
               : static_cast<double>(total_pages) /
                     static_cast<double>(num_nonempty);
  }
};

/// Expected I/O of a layout under a workload (the Table-4 metrics, plus the
/// raw page expectation used by the DiskModel time estimate).
struct WorkloadIoStats {
  double expected_seeks = 0.0;
  double expected_normalized_blocks = 0.0;
  double expected_pages = 0.0;
};

/// Measures grid-query I/O against any StorageBackend, exactly (aggregating
/// over every query of a class in one linear pass) or per query.
///
/// Queries are evaluated interval-first: the linearization decomposes the
/// query box into rank runs (Linearization::AppendRuns) and each run's page
/// footprint comes from StorageBackend::MeasureRange in O(1), so a query
/// costs O(runs) instead of O(cells in box). The seed's cell-walk evaluators
/// are kept as MeasureCellWalk / MeasureClassCellWalk — they are the
/// reference the run path is property-tested against, and remain the better
/// choice when queries are cell-sized (MeasureClass falls back
/// automatically).
///
/// On partitioned backends the run paths first consult the zone maps
/// (StorageBackend::PruneBox). Pruning is conservative, so measured QueryIo
/// is bit-identical across backends; what changes is the evaluation work —
/// a query whose box misses every partition skips its run decomposition
/// entirely, and the storage.partitions_scanned / storage.partitions_pruned
/// counters expose the pruning power of the directory.
///
/// With an ObsSink the simulator mirrors its measurements into the registry
/// — storage.pages_read / storage.seeks counters on every path,
/// storage.cells_scanned on the cell-walk paths, curves.runs_emitted and a
/// curves.cells_per_run histogram on the run paths, plus a
/// storage.run_length_pages histogram of sequential-run lengths — and
/// wraps MeasureAllClasses in a "storage/measure_all" span. Metric pointers
/// are resolved once here, so the per-measurement cost is a null test.
class IoSimulator {
 public:
  /// `arena`, when non-null, is the run storage every measurement on this
  /// simulator reuses (per-box scratch and batched per-class emission);
  /// otherwise the simulator owns one. Either way the arena makes the
  /// simulator single-threaded state: one IoSimulator (and one external
  /// arena) per thread. Results are bit-identical with or without a shared
  /// arena — only allocation traffic changes.
  explicit IoSimulator(const StorageBackend& backend, const ObsSink& obs = {},
                       RunArena* arena = nullptr);

  /// I/O of one query from its rank-run decomposition, O(runs). When
  /// `prune` is non-null it receives the zone-map outcome for this query
  /// (zeros on unpartitioned backends) — the per-request attribution the
  /// service's flight recorder records; the aggregate counters are
  /// unaffected. Wrapped in a "storage/measure" span when tracing, so a
  /// request's trace nests request -> verb -> storage.
  QueryIo Measure(const GridQuery& query, PruneStats* prune = nullptr) const;

  /// I/O of one query by walking the query's cells in rank order. Reference
  /// implementation; identical results to Measure on every layout.
  QueryIo MeasureCellWalk(const GridQuery& query) const;

  /// Exact per-class aggregates. Uses the run decomposition query-by-query
  /// when the layout's strategy decomposes cheaply and the class is coarse
  /// enough for intervals to win (fewer queries than cells); otherwise the
  /// cell-walk pass. Both paths produce identical stats.
  ClassIoStats MeasureClass(const QueryClass& cls) const;

  /// Exact per-class aggregates in one pass over the layout: every cell is
  /// attributed to its enclosing class-`cls` query and per-query page runs
  /// are tracked incrementally. O(cells) time, O(queries-in-class) space.
  ClassIoStats MeasureClassCellWalk(const QueryClass& cls) const;

  /// MeasureClass for every lattice point, indexed by lattice index.
  std::vector<ClassIoStats> MeasureAllClasses() const;

  /// Workload expectation of the per-class averages. `per_class` must come
  /// from MeasureAllClasses on the same schema.
  static WorkloadIoStats Expect(const Workload& mu,
                                const std::vector<ClassIoStats>& per_class);

 private:
  /// Run-based per-class pass; requires run-decomposition to be worthwhile.
  /// On unpartitioned backends all queries of the class are emitted in one
  /// batched AppendClassRuns pass through the arena; partitioned backends
  /// keep the per-query loop so zone-map pruning (and its counters) applies
  /// before each decomposition. Both produce identical stats.
  ClassIoStats MeasureClassRuns(const QueryClass& cls) const;

  /// Consults the backend's zone maps for `box` and mirrors the outcome
  /// into the pruning counters (and `prune`, when non-null). True iff every
  /// partition was pruned (the caller may skip run decomposition; the box
  /// holds no records).
  bool AllPartitionsPruned(const CellBox& box,
                           PruneStats* prune = nullptr) const;

  const StorageBackend& backend_;
  // Reused run storage; `mutable` because measurement is logically const.
  // Points at the caller's arena when one was supplied.
  mutable RunArena owned_arena_;
  RunArena* arena_ = nullptr;
  Tracer* tracer_ = nullptr;
  Counter* pages_read_ = nullptr;
  Counter* seeks_ = nullptr;
  Counter* cells_scanned_ = nullptr;
  Counter* runs_emitted_ = nullptr;
  Counter* partitions_scanned_ = nullptr;
  Counter* partitions_pruned_ = nullptr;
  Histogram* run_length_ = nullptr;
  Histogram* cells_per_run_ = nullptr;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_EXECUTOR_H_
