#ifndef SNAKES_STORAGE_PAGER_H_
#define SNAKES_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "curves/linearization.h"
#include "obs/obs.h"
#include "storage/fact_table.h"
#include "util/result.h"

namespace snakes {

/// Physical parameters of the simulated disk (Section 6.1 uses 125-byte
/// records on 8 KB pages).
struct StorageConfig {
  uint64_t page_size_bytes = 8192;
  uint64_t record_size_bytes = 125;

  /// Records that fit a fresh page.
  uint64_t RecordsPerPage() const {
    return page_size_bytes / record_size_bytes;
  }
};

/// The on-disk image of a fact table under one clustering strategy: records
/// are packed page by page following the linearization's rank order. A cell's
/// records may span a page boundary, but single records never split — when a
/// page's remainder is smaller than one record the page is closed and the
/// record starts the next page (Section 6.1).
class PackedLayout {
 public:
  /// Packs `facts` along `lin`. Fails if config is degenerate (page smaller
  /// than a record) or the linearization belongs to a different schema.
  /// `obs` (optional) records a "storage/pack" span and the
  /// storage.pages_packed / storage.records_packed counters.
  static Result<PackedLayout> Pack(std::shared_ptr<const Linearization> lin,
                                   std::shared_ptr<const FactTable> facts,
                                   StorageConfig config = {},
                                   const ObsSink& obs = {});

  const Linearization& linearization() const { return *lin_; }
  const FactTable& facts() const { return *facts_; }
  const StorageConfig& config() const { return config_; }

  /// Total pages used.
  uint64_t num_pages() const { return num_pages_; }

  /// True iff the cell at `rank` holds no records.
  bool CellEmpty(uint64_t rank) const { return first_page_[rank] > last_page_[rank]; }

  /// First/last page (inclusive) holding records of the cell at `rank`;
  /// meaningful only when !CellEmpty(rank).
  uint64_t CellFirstPage(uint64_t rank) const { return first_page_[rank]; }
  uint64_t CellLastPage(uint64_t rank) const { return last_page_[rank]; }

  /// Record count of the cell at `rank` (cached from the fact table).
  uint32_t CellRecords(uint64_t rank) const { return records_[rank]; }

  /// Aggregate I/O footprint of a rank run. Because records pack in rank
  /// order, the pages of any consecutive-rank range form one contiguous
  /// interval with no internal gaps; empty ranges use the same inverted
  /// convention as CellEmpty (first > last).
  struct RangeIo {
    uint64_t records = 0;
    uint64_t first_page = 1;
    uint64_t last_page = 0;
  };

  /// Footprint of ranks [start, start + len) in O(1), from prefix sums
  /// built at pack time.
  RangeIo MeasureRange(uint64_t start, uint64_t len) const;

 private:
  PackedLayout(std::shared_ptr<const Linearization> lin,
               std::shared_ptr<const FactTable> facts, StorageConfig config)
      : lin_(std::move(lin)), facts_(std::move(facts)), config_(config) {}

  std::shared_ptr<const Linearization> lin_;
  std::shared_ptr<const FactTable> facts_;
  StorageConfig config_;
  uint64_t num_pages_ = 0;
  // Indexed by rank. Empty cells have first > last.
  std::vector<uint64_t> first_page_;
  std::vector<uint64_t> last_page_;
  std::vector<uint32_t> records_;
  // Rank-range accelerators for MeasureRange. cum_records_[r] = records in
  // ranks [0, r) (n + 1 entries); next_first_page_[r] = first page of the
  // first non-empty cell at rank >= r; prev_last_page_[r] = last page of
  // the last non-empty cell at rank <= r. The page sentinels are only read
  // when the queried range holds >= 1 record.
  std::vector<uint64_t> cum_records_;
  std::vector<uint64_t> next_first_page_;
  std::vector<uint64_t> prev_last_page_;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_PAGER_H_
