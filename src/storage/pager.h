#ifndef SNAKES_STORAGE_PAGER_H_
#define SNAKES_STORAGE_PAGER_H_

#include <memory>

#include "obs/obs.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "util/result.h"

namespace snakes {

/// The paper's storage backend: one flat run of pages in rank order with no
/// partition structure. All behavior lives in StorageBackend — PackedLayout
/// is exactly the shared page representation, priced at run granularity.
class PackedLayout : public StorageBackend {
 public:
  /// Packs `facts` along `lin`. Fails if config is degenerate (page smaller
  /// than a record) or the linearization belongs to a different schema.
  /// `obs` (optional) records a "storage/pack" span and the
  /// storage.pages_packed / storage.records_packed counters.
  static Result<PackedLayout> Pack(std::shared_ptr<const Linearization> lin,
                                   std::shared_ptr<const FactTable> facts,
                                   StorageConfig config = {},
                                   const ObsSink& obs = {});

  StorageBackendKind kind() const override {
    return StorageBackendKind::kPacked;
  }

 private:
  PackedLayout() = default;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_PAGER_H_
