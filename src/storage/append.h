#ifndef SNAKES_STORAGE_APPEND_H_
#define SNAKES_STORAGE_APPEND_H_

#include <cstdint>
#include <vector>

#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "storage/executor.h"
#include "storage/pager.h"

namespace snakes {

/// Models warehouse growth between reorganizations: a clustered base file
/// plus an append-only overflow region. New records land at the end of the
/// file in arrival order, so a query must read its clustered base pages AND
/// every overflow page holding at least one matching record — the classical
/// degradation that makes periodic re-clustering worthwhile (the paper
/// optimizes the layout; this class quantifies how fast its benefit erodes
/// and when to re-run the advisor).
class OverflowLayout {
 public:
  explicit OverflowLayout(const PackedLayout& base) : base_(base) {}

  /// Appends one record in arrival order.
  void Append(const CellCoord& coord, double measure = 0.0);

  /// Pages in the overflow region.
  uint64_t overflow_pages() const;

  uint64_t overflow_records() const { return overflow_cells_.size(); }

  /// I/O of one query against base + overflow: the base contribution comes
  /// from the clustered layout; every overflow page containing a matching
  /// record is read, with maximal runs of consecutive overflow pages
  /// counted as single seeks.
  QueryIo Measure(const GridQuery& query) const;

  /// Expected I/O over a workload, aggregating every query of every class
  /// exactly (like IoSimulator) plus the overflow contribution.
  WorkloadIoStats Expect(const Workload& mu) const;

 private:
  const PackedLayout& base_;
  // Flattened cell id of every appended record, in arrival order; record i
  // lives on overflow page i / records_per_page.
  std::vector<CellId> overflow_cells_;
  std::vector<double> overflow_measures_;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_APPEND_H_
