#ifndef SNAKES_STORAGE_QUERY_ENGINE_H_
#define SNAKES_STORAGE_QUERY_ENGINE_H_

#include <cstdint>

#include "lattice/grid_query.h"
#include "storage/backend.h"
#include "storage/executor.h"

namespace snakes {

/// Answer of an aggregate grid query, with the I/O it cost.
struct QueryAnswer {
  uint64_t count = 0;       // records selected
  double sum = 0.0;         // SUM of the measure attribute
  QueryIo io;               // pages/seeks actually incurred
  double AvgMeasure() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Executes aggregate grid queries (COUNT / SUM / AVG of the measure) against
/// a storage backend — the operations the paper's OLAP sessions issue (Q1/Q2
/// of the motivating example are exactly this shape). Results are computed
/// from the fact table; I/O is accounted against the backend, so callers see
/// both the answer and what it cost under the chosen clustering. Answers are
/// bit-identical across backends: zone-map pruning only changes how much
/// metadata the simulator consults, never what a query reads or returns.
class QueryEngine {
 public:
  /// `obs` is forwarded to the I/O simulator: storage counters mirror each
  /// query's cost and Execute runs under a "storage/measure" span.
  explicit QueryEngine(const StorageBackend& backend, const ObsSink& obs = {})
      : backend_(backend), simulator_(backend, obs) {}

  /// Runs one grid query. `prune`, when non-null, receives the zone-map
  /// outcome of the query's I/O measurement (see IoSimulator::Measure).
  QueryAnswer Execute(const GridQuery& query,
                      PruneStats* prune = nullptr) const;

  /// Runs the grid query of class `cls` containing `coord` (point-style
  /// drill-down sugar).
  QueryAnswer ExecuteAt(const QueryClass& cls, const CellCoord& coord) const;

 private:
  const StorageBackend& backend_;
  IoSimulator simulator_;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_QUERY_ENGINE_H_
