#include "storage/chunks.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

Result<std::shared_ptr<const StarSchema>> ChunkGridSchema(
    const StarSchema& schema, const QueryClass& chunk_class) {
  if (chunk_class.num_dims() != schema.num_dims()) {
    return Status::InvalidArgument("chunk class dimensionality mismatch");
  }
  std::vector<Hierarchy> dims;
  for (int d = 0; d < schema.num_dims(); ++d) {
    const Hierarchy& h = schema.dim(d);
    if (!h.is_uniform()) {
      return Status::InvalidArgument(
          "chunking requires uniform hierarchies (dimension " + h.name() +
          ")");
    }
    const int level = chunk_class.level(d);
    if (level < 0 || level > h.num_levels()) {
      return Status::OutOfRange("chunk level out of range in dimension " +
                                h.name());
    }
    // Keep the fanouts above the chunk level: the chunk grid's "leaves" are
    // the level-`level` blocks.
    std::vector<uint64_t> fanouts;
    for (int i = level + 1; i <= h.num_levels(); ++i) {
      fanouts.push_back(h.uniform_fanout(i));
    }
    SNAKES_ASSIGN_OR_RETURN(
        Hierarchy coarse, Hierarchy::Uniform(h.name(), std::move(fanouts)));
    dims.push_back(std::move(coarse));
  }
  SNAKES_ASSIGN_OR_RETURN(
      StarSchema chunk_schema,
      StarSchema::Make(schema.name() + "-chunks", std::move(dims)));
  return std::shared_ptr<const StarSchema>(
      std::make_shared<StarSchema>(std::move(chunk_schema)));
}

Result<std::unique_ptr<ChunkedOrder>> ChunkedOrder::Make(
    std::shared_ptr<const StarSchema> schema, const QueryClass& chunk_class,
    std::shared_ptr<const Linearization> chunk_order) {
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const StarSchema> chunk_grid,
                          ChunkGridSchema(*schema, chunk_class));
  // The supplied chunk order must linearize exactly that grid shape.
  if (chunk_order->schema().num_dims() != chunk_grid->num_dims()) {
    return Status::InvalidArgument("chunk order dimensionality mismatch");
  }
  FixedVector<uint64_t, kMaxDimensions> chunk_extent;
  chunk_extent.resize(static_cast<size_t>(schema->num_dims()));
  uint64_t volume = 1;
  for (int d = 0; d < schema->num_dims(); ++d) {
    if (chunk_order->schema().extent(d) != chunk_grid->extent(d)) {
      return Status::InvalidArgument(
          "chunk order linearizes a " +
          std::to_string(chunk_order->schema().extent(d)) +
          "-wide dimension, chunk grid has " +
          std::to_string(chunk_grid->extent(d)));
    }
    // Cells per chunk along d = leaves per level-c_d block.
    uint64_t first, last;
    schema->dim(d).BlockLeafRange(chunk_class.level(d), 0, &first, &last);
    chunk_extent[static_cast<size_t>(d)] = last - first;
    volume = CheckedMul(volume, last - first);
  }
  return std::unique_ptr<ChunkedOrder>(
      new ChunkedOrder(std::move(schema), chunk_class, std::move(chunk_order),
                       chunk_extent, volume));
}

std::string ChunkedOrder::name() const {
  return "chunked" + chunk_class_.ToString() + "[" + chunk_order_->name() +
         "]";
}

CellCoord ChunkedOrder::CellAt(uint64_t rank) const {
  const uint64_t chunk_rank = rank / chunk_volume_;
  uint64_t within = rank % chunk_volume_;
  const CellCoord chunk = chunk_order_->CellAt(chunk_rank);
  CellCoord coord;
  const int k = schema().num_dims();
  coord.resize(static_cast<size_t>(k));
  // Within-chunk cells are row-major (last dimension fastest), as in [2].
  for (int d = k - 1; d >= 0; --d) {
    const uint64_t extent = chunk_extent_[static_cast<size_t>(d)];
    coord[static_cast<size_t>(d)] =
        chunk[static_cast<size_t>(d)] * extent + within % extent;
    within /= extent;
  }
  return coord;
}

uint64_t ChunkedOrder::RankOf(const CellCoord& coord) const {
  const int k = schema().num_dims();
  CellCoord chunk;
  chunk.resize(static_cast<size_t>(k));
  uint64_t within = 0;
  for (int d = 0; d < k; ++d) {
    const uint64_t extent = chunk_extent_[static_cast<size_t>(d)];
    chunk[static_cast<size_t>(d)] = coord[static_cast<size_t>(d)] / extent;
    within = within * extent + coord[static_cast<size_t>(d)] % extent;
  }
  return chunk_order_->RankOf(chunk) * chunk_volume_ + within;
}

void ChunkedOrder::AppendRuns(const CellBox& box,
                              std::vector<RankRun>* runs) const {
  const int k = schema().num_dims();
  for (int d = 0; d < k; ++d) {
    if (box.hi[static_cast<size_t>(d)] <= box.lo[static_cast<size_t>(d)]) {
      return;
    }
  }
  // Chunks intersecting the box form a box of the chunk grid.
  CellBox chunk_box;
  chunk_box.lo.resize(static_cast<size_t>(k));
  chunk_box.hi.resize(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) {
    const uint64_t extent = chunk_extent_[static_cast<size_t>(d)];
    chunk_box.lo[static_cast<size_t>(d)] =
        box.lo[static_cast<size_t>(d)] / extent;
    chunk_box.hi[static_cast<size_t>(d)] =
        CeilDiv(box.hi[static_cast<size_t>(d)], extent);
  }
  std::vector<RankRun> chunk_runs;
  chunk_order_->AppendRuns(chunk_box, &chunk_runs);

  const size_t floor = runs->size();
  uint64_t extents[kMaxRankRunDims];
  uint64_t lo[kMaxRankRunDims];
  uint64_t hi[kMaxRankRunDims];
  for (int d = 0; d < k; ++d) {
    extents[d] = chunk_extent_[static_cast<size_t>(d)];
  }
  // One emitter for every partially-covered chunk: the within-chunk grid is
  // the same for all of them, so the strides are set up once.
  const RowMajorBoxEmitter emitter(extents, k);
  for (const RankRun& chunk_run : chunk_runs) {
    for (uint64_t cr = chunk_run.start; cr < chunk_run.end(); ++cr) {
      const CellCoord chunk = chunk_order_->CellAt(cr);
      const uint64_t base = cr * chunk_volume_;
      bool full = true;
      for (int d = 0; d < k; ++d) {
        const uint64_t extent = chunk_extent_[static_cast<size_t>(d)];
        const uint64_t cell_lo = chunk[static_cast<size_t>(d)] * extent;
        lo[d] = std::max(box.lo[static_cast<size_t>(d)], cell_lo) - cell_lo;
        hi[d] = std::min(box.hi[static_cast<size_t>(d)], cell_lo + extent) -
                cell_lo;
        full = full && lo[d] == 0 && hi[d] == extent;
      }
      if (full) {
        AppendRun(runs, floor, base, chunk_volume_);
      } else {
        emitter.Append(lo, hi, base, floor, runs);
      }
    }
  }
}

void ChunkedOrder::Walk(
    const std::function<void(uint64_t, const CellCoord&)>& fn) const {
  const int k = schema().num_dims();
  uint64_t rank = 0;
  CellCoord coord;
  coord.resize(static_cast<size_t>(k));
  chunk_order_->Walk([&](uint64_t chunk_rank, const CellCoord& chunk) {
    (void)chunk_rank;
    // Row-major sweep of the chunk's box.
    FixedVector<uint64_t, kMaxDimensions> offset(static_cast<size_t>(k), 0);
    for (uint64_t i = 0; i < chunk_volume_; ++i) {
      for (int d = 0; d < k; ++d) {
        coord[static_cast<size_t>(d)] =
            chunk[static_cast<size_t>(d)] *
                chunk_extent_[static_cast<size_t>(d)] +
            offset[static_cast<size_t>(d)];
      }
      fn(rank++, coord);
      for (int d = k - 1; d >= 0; --d) {
        if (++offset[static_cast<size_t>(d)] <
            chunk_extent_[static_cast<size_t>(d)]) {
          break;
        }
        offset[static_cast<size_t>(d)] = 0;
      }
    }
  });
}

}  // namespace snakes
