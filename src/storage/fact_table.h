#ifndef SNAKES_STORAGE_FACT_TABLE_H_
#define SNAKES_STORAGE_FACT_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hierarchy/star_schema.h"
#include "util/logging.h"

namespace snakes {

/// The fact table of a star schema, reduced to what physical clustering
/// needs: for every grid cell, the number of records mapping to that cell
/// and the sum of their measure attribute (enough to answer COUNT/SUM grid
/// queries exactly). Cells may be empty — real warehouses are sparse
/// (Section 6.1: "Each cell ... was populated with zero or more records").
class FactTable {
 public:
  explicit FactTable(std::shared_ptr<const StarSchema> schema)
      : schema_(std::move(schema)),
        counts_(schema_->num_cells(), 0),
        measure_sums_(schema_->num_cells(), 0.0),
        measure_mins_(schema_->num_cells(), 0.0),
        measure_maxs_(schema_->num_cells(), 0.0) {}

  const StarSchema& schema() const { return *schema_; }
  std::shared_ptr<const StarSchema> schema_ptr() const { return schema_; }

  /// Adds one record in `coord`'s cell with the given measure value.
  void AddRecord(const CellCoord& coord, double measure = 0.0) {
    const CellId id = schema_->Flatten(coord);
    if (counts_[id] == 0) {
      measure_mins_[id] = measure;
      measure_maxs_[id] = measure;
    } else {
      if (measure < measure_mins_[id]) measure_mins_[id] = measure;
      if (measure > measure_maxs_[id]) measure_maxs_[id] = measure;
    }
    ++counts_[id];
    measure_sums_[id] += measure;
    ++total_records_;
  }

  /// Record count of a cell.
  uint32_t count(CellId id) const {
    SNAKES_DCHECK(id < counts_.size());
    return counts_[id];
  }

  /// Sum of the measure attribute over a cell's records.
  double measure_sum(CellId id) const { return measure_sums_[id]; }

  /// Record-level min/max of the measure attribute over a cell's records —
  /// exact (tracked per AddRecord), not derived from the sum. Meaningful
  /// only when count(id) > 0; empty cells report 0.
  double measure_min(CellId id) const { return measure_mins_[id]; }
  double measure_max(CellId id) const { return measure_maxs_[id]; }

  uint64_t total_records() const { return total_records_; }
  uint64_t num_cells() const { return counts_.size(); }

  /// Number of cells with at least one record.
  uint64_t NumOccupiedCells() const {
    uint64_t n = 0;
    for (uint32_t c : counts_) n += c > 0;
    return n;
  }

 private:
  std::shared_ptr<const StarSchema> schema_;
  std::vector<uint32_t> counts_;
  std::vector<double> measure_sums_;
  std::vector<double> measure_mins_;
  std::vector<double> measure_maxs_;
  uint64_t total_records_ = 0;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_FACT_TABLE_H_
