#include "storage/file_store.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

namespace {

// Slot header preceding the padding in every on-disk record.
struct RecordHeader {
  uint64_t cell_id;
  double measure;
};
static_assert(sizeof(RecordHeader) == 16, "header layout");

// Sentinel cell id marking an unused slot (page tail).
constexpr uint64_t kEmptySlot = UINT64_MAX;

}  // namespace

Result<FileStore> FileStore::Create(
    const std::string& path, std::shared_ptr<const PackedLayout> layout) {
  const StorageConfig& config = layout->config();
  if (config.record_size_bytes < sizeof(RecordHeader)) {
    return Status::InvalidArgument(
        "record size must hold the 16-byte header");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot create " + path);

  const uint64_t page_size = config.page_size_bytes;
  const uint64_t record_size = config.record_size_bytes;
  std::vector<char> page(page_size, 0);
  std::vector<char> record(record_size, 0);
  uint64_t used = 0;       // bytes used on the current page
  uint64_t pages_out = 0;  // pages flushed

  auto init_page = [&]() {
    std::fill(page.begin(), page.end(), 0);
    // Pre-mark every slot empty.
    RecordHeader empty{kEmptySlot, 0.0};
    for (uint64_t offset = 0; offset + record_size <= page_size;
         offset += record_size) {
      std::memcpy(page.data() + offset, &empty, sizeof(empty));
    }
  };
  auto flush_page = [&]() {
    out.write(page.data(), static_cast<std::streamsize>(page_size));
    ++pages_out;
    used = 0;
    init_page();
  };
  init_page();

  const StarSchema& schema = layout->linearization().schema();
  const FactTable& facts = layout->facts();
  Status status = Status::OK();
  layout->linearization().Walk([&](uint64_t rank, const CellCoord& coord) {
    if (!status.ok()) return;
    const CellId id = schema.Flatten(coord);
    const uint32_t count = facts.count(id);
    if (count == 0) return;
    const double measure_each =
        facts.measure_sum(id) / static_cast<double>(count);
    for (uint32_t r = 0; r < count; ++r) {
      if (page_size - used < record_size) flush_page();
      const RecordHeader header{id, measure_each};
      std::memcpy(record.data(), &header, sizeof(header));
      std::memcpy(page.data() + used, record.data(), record_size);
      used += record_size;
    }
    // Cross-check against the pager's placement for this cell.
    const uint64_t expected_last = layout->CellLastPage(rank);
    const uint64_t actual_last = pages_out;  // current page index
    if (expected_last != actual_last) {
      status = Status::Internal("file writer diverged from the pager at rank " +
                                std::to_string(rank));
    }
  });
  SNAKES_RETURN_IF_ERROR(status);
  if (used > 0) flush_page();
  if (pages_out != layout->num_pages()) {
    return Status::Internal("file has " + std::to_string(pages_out) +
                            " pages, pager expected " +
                            std::to_string(layout->num_pages()));
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return FileStore(path, std::move(layout), pages_out * page_size);
}

Result<QueryAnswer> FileStore::Execute(const GridQuery& query) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::Internal("cannot open " + path_);

  const Linearization& lin = layout_->linearization();
  const StarSchema& schema = lin.schema();
  const StorageConfig& config = layout_->config();
  const CellBox box = BoxOf(schema, query);

  // Ranks of the query's cells, in disk order.
  std::vector<uint64_t> ranks;
  ranks.reserve(box.NumCells());
  {
    CellCoord coord = box.lo;
    const int k = schema.num_dims();
    for (;;) {
      ranks.push_back(lin.RankOf(coord));
      int d = k - 1;
      for (; d >= 0; --d) {
        if (++coord[static_cast<size_t>(d)] < box.hi[static_cast<size_t>(d)]) {
          break;
        }
        coord[static_cast<size_t>(d)] = box.lo[static_cast<size_t>(d)];
      }
      if (d < 0) break;
    }
    std::sort(ranks.begin(), ranks.end());
  }

  QueryAnswer answer;
  std::vector<char> page(config.page_size_bytes);
  int64_t last_page = -1;
  for (const uint64_t rank : ranks) {
    if (layout_->CellEmpty(rank)) continue;
    const int64_t first = static_cast<int64_t>(layout_->CellFirstPage(rank));
    const int64_t last = static_cast<int64_t>(layout_->CellLastPage(rank));
    if (first > last_page + 1 || last_page < 0) ++answer.io.seeks;
    for (int64_t p = std::max(first, last_page + 1); p <= last; ++p) {
      in.seekg(static_cast<std::streamoff>(p) *
               static_cast<std::streamoff>(config.page_size_bytes));
      in.read(page.data(),
              static_cast<std::streamsize>(config.page_size_bytes));
      if (!in.good()) {
        return Status::Internal("short read at page " + std::to_string(p));
      }
      ++answer.io.pages;
      for (uint64_t offset = 0;
           offset + config.record_size_bytes <= config.page_size_bytes;
           offset += config.record_size_bytes) {
        RecordHeader header;
        std::memcpy(&header, page.data() + offset, sizeof(header));
        if (header.cell_id == kEmptySlot) continue;
        if (!box.Contains(schema.Unflatten(header.cell_id))) continue;
        ++answer.count;
        answer.sum += header.measure;
      }
    }
    last_page = std::max(last_page, last);
  }
  answer.io.records = answer.count;
  answer.io.min_pages = CeilDiv(answer.count * config.record_size_bytes,
                                config.page_size_bytes);
  return answer;
}

Result<FileStore::TimedAnswer> FileStore::ExecuteTimed(const GridQuery& query,
                                                       Clock* clock) {
  if (clock == nullptr) clock = SteadyClock::Default();
  TimedAnswer timed;
  const uint64_t start_ns = clock->NowNs();
  SNAKES_ASSIGN_OR_RETURN(timed.answer, Execute(query));
  const uint64_t finish_ns = clock->NowNs();
  timed.elapsed_ns = finish_ns >= start_ns ? finish_ns - start_ns : 0;
  return timed;
}

}  // namespace snakes
