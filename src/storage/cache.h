#ifndef SNAKES_STORAGE_CACHE_H_
#define SNAKES_STORAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "obs/obs.h"
#include "storage/backend.h"
#include "util/rng.h"

namespace snakes {

class Counter;

/// An LRU buffer pool over the simulated disk pages. The paper's related
/// work (WATCHMAN, Deshpande et al.'s chunk caching) attacks OLAP I/O from
/// the caching side; this simulator lets the two effects be studied
/// together — good clustering concentrates a query class's pages, which
/// also makes a fixed-size cache far more effective.
class LruPageCache {
 public:
  /// `capacity_pages` = 0 disables caching (every access misses).
  /// With an ObsSink, every hit/miss/eviction is mirrored into the
  /// registry's cache.hits / cache.misses / cache.evictions counters
  /// (resolved once here; per-access cost is a null test each).
  explicit LruPageCache(uint64_t capacity_pages, const ObsSink& obs = {});

  /// Touches a page; returns true on a hit. Misses evict the least recently
  /// used page when full.
  bool Access(uint64_t page);

  void Clear();

  /// Zeroes hits/misses/evictions but keeps the cached pages resident, so
  /// callers replaying a multi-epoch stream can report per-epoch hit rates
  /// without cold-starting the pool each epoch. (The obs counters are
  /// cumulative by design and are not reset.)
  void ResetStats();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Pages dropped to make room (0-capacity rejects are not evictions).
  uint64_t evictions() const { return evictions_; }
  uint64_t size() const { return lru_.size(); }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

 private:
  uint64_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Counter* evictions_counter_ = nullptr;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> index_;
};

/// Result of replaying a query stream against a backend through a cache.
struct CachedRunStats {
  uint64_t queries = 0;
  uint64_t page_accesses = 0;  // page touches incl. cache hits
  uint64_t disk_reads = 0;     // cache misses = pages actually read
  double HitRate() const {
    return page_accesses == 0
               ? 0.0
               : 1.0 - static_cast<double>(disk_reads) /
                           static_cast<double>(page_accesses);
  }
};

/// Replays `num_queries` random grid queries drawn from `mu` against
/// `backend`, touching each query's pages in disk order through `cache`.
/// Deterministic for a given rng seed.
CachedRunStats ReplayWorkload(const StorageBackend& backend, const Workload& mu,
                              uint64_t num_queries, LruPageCache* cache,
                              Rng* rng);

}  // namespace snakes

#endif  // SNAKES_STORAGE_CACHE_H_
