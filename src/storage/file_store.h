#ifndef SNAKES_STORAGE_FILE_STORE_H_
#define SNAKES_STORAGE_FILE_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "lattice/grid_query.h"
#include "storage/pager.h"
#include "storage/query_engine.h"
#include "util/clock.h"
#include "util/result.h"

namespace snakes {

/// A real on-disk fact file behind the simulator: records are serialized
/// into page-aligned blocks in exactly the PackedLayout order (cells may
/// straddle pages, records never do), and grid queries are answered by
/// reading actual pages back. The measured I/O — pages touched, physical
/// seeks (non-consecutive page reads), bytes — must agree with IoSimulator,
/// which the test suite asserts; the aggregates must agree with the fact
/// table.
///
/// On disk every record slot is `config.record_size_bytes` wide and starts
/// with a 16-byte header {cell_id : u64, measure : f64}; the remainder pads
/// to the configured record size (125 bytes reproduces the paper's setup).
class FileStore {
 public:
  /// Serializes `layout` into `path` (overwrites). Fails if the record size
  /// cannot hold the 16-byte header.
  static Result<FileStore> Create(const std::string& path,
                                  std::shared_ptr<const PackedLayout> layout);

  /// Reads the query's pages from disk and aggregates its records.
  /// `io.pages`/`io.seeks` reflect the physical reads performed.
  Result<QueryAnswer> Execute(const GridQuery& query);

  /// An executed query with the wall time it took.
  struct TimedAnswer {
    QueryAnswer answer;
    uint64_t elapsed_ns = 0;
  };

  /// Execute wrapped in exactly two clock readings (before the file open,
  /// after the last page) — the measurement side of the calibration loop
  /// (cost/calibration.h). `clock` null = the process steady clock; a
  /// FakeClock makes the elapsed time deterministic for tests.
  Result<TimedAnswer> ExecuteTimed(const GridQuery& query,
                                   Clock* clock = nullptr);

  /// Total file size in bytes (num_pages * page_size).
  uint64_t file_bytes() const { return file_bytes_; }

  const PackedLayout& layout() const { return *layout_; }

 private:
  FileStore(std::string path, std::shared_ptr<const PackedLayout> layout,
            uint64_t file_bytes)
      : path_(std::move(path)),
        layout_(std::move(layout)),
        file_bytes_(file_bytes) {}

  std::string path_;
  std::shared_ptr<const PackedLayout> layout_;
  uint64_t file_bytes_ = 0;
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_FILE_STORE_H_
