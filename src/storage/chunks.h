#ifndef SNAKES_STORAGE_CHUNKS_H_
#define SNAKES_STORAGE_CHUNKS_H_

#include <functional>
#include <memory>
#include <string>

#include "curves/linearization.h"
#include "lattice/query_class.h"
#include "util/result.h"

namespace snakes {

/// The chunked file organization of Deshpande et al. (SIGMOD 1998), the
/// closest related work the paper discusses (Section 7): the grid is
/// partitioned into chunks along hierarchy boundaries — every chunk is the
/// box under one combination of level-c ancestors, for a chunk class c —
/// cells are stored contiguously within a chunk, and chunks are laid out in
/// some order. [2] always orders chunks row-major; the paper points out
/// that its lattice-path machinery applies directly to the chunk order.
///
/// ChunkedOrder composes both choices into a single cell linearization:
///   * `chunk_class` — the hierarchy levels delimiting chunks (e.g. (1,0,1)
///     chunks the TPC-D grid by manufacturer x supplier x year);
///   * `chunk_order` — any Linearization over the *chunk grid* (row-major
///     for [2]; a snaked optimal path for this paper's improvement);
///   * cells within a chunk are row-major.
///
/// Requires uniform hierarchies (chunks must tile the grid evenly).
class ChunkedOrder : public Linearization {
 public:
  /// `chunk_order`'s schema must be the chunk grid of `schema` at
  /// `chunk_class`: one "leaf" per level-c block in every dimension.
  static Result<std::unique_ptr<ChunkedOrder>> Make(
      std::shared_ptr<const StarSchema> schema, const QueryClass& chunk_class,
      std::shared_ptr<const Linearization> chunk_order);

  std::string name() const override;
  CellCoord CellAt(uint64_t rank) const override;
  uint64_t RankOf(const CellCoord& coord) const override;
  void Walk(const std::function<void(uint64_t, const CellCoord&)>& fn)
      const override;
  /// Composition: the box's chunk cover decomposes under the chunk order,
  /// then each covered chunk contributes its whole rank block (fully inside
  /// the box) or the row-major runs of the clipped intra-chunk box.
  void AppendRuns(const CellBox& box, std::vector<RankRun>* runs)
      const override;
  /// Cheap whenever the chunk order decomposes; intra-chunk boxes always do
  /// (row-major closed form).
  bool HasRunDecomposition() const override {
    return chunk_order_->HasRunDecomposition();
  }

  const QueryClass& chunk_class() const { return chunk_class_; }

  /// Cells per chunk.
  uint64_t chunk_volume() const { return chunk_volume_; }

 private:
  ChunkedOrder(std::shared_ptr<const StarSchema> schema,
               QueryClass chunk_class,
               std::shared_ptr<const Linearization> chunk_order,
               FixedVector<uint64_t, kMaxDimensions> chunk_extent,
               uint64_t chunk_volume)
      : Linearization(std::move(schema)),
        chunk_class_(std::move(chunk_class)),
        chunk_order_(std::move(chunk_order)),
        chunk_extent_(chunk_extent),
        chunk_volume_(chunk_volume) {}

  QueryClass chunk_class_;
  std::shared_ptr<const Linearization> chunk_order_;
  // chunk_extent_[d] = cells per chunk along dimension d.
  FixedVector<uint64_t, kMaxDimensions> chunk_extent_;
  uint64_t chunk_volume_;
};

/// Builds the chunk-grid schema for `schema` at `chunk_class`: dimension d
/// keeps its hierarchy levels above chunk_class.level(d) (so lattice paths
/// and the DP run on the coarsened lattice), with one leaf per chunk.
Result<std::shared_ptr<const StarSchema>> ChunkGridSchema(
    const StarSchema& schema, const QueryClass& chunk_class);

}  // namespace snakes

#endif  // SNAKES_STORAGE_CHUNKS_H_
