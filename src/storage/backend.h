#ifndef SNAKES_STORAGE_BACKEND_H_
#define SNAKES_STORAGE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "curves/linearization.h"
#include "curves/rank_run.h"
#include "lattice/grid_query.h"
#include "obs/obs.h"
#include "storage/fact_table.h"
#include "util/logging.h"
#include "util/result.h"

namespace snakes {

/// Physical parameters of the simulated disk (Section 6.1 uses 125-byte
/// records on 8 KB pages).
struct StorageConfig {
  uint64_t page_size_bytes = 8192;
  uint64_t record_size_bytes = 125;
  /// Target size (in pages) of one micro-partition. Only the
  /// micro-partition backend reads it; PackedLayout ignores it.
  uint64_t micro_partition_pages = 16;

  /// Records that fit a fresh page.
  uint64_t RecordsPerPage() const {
    return page_size_bytes / record_size_bytes;
  }
};

/// The storage representations a fact table can be packed into.
enum class StorageBackendKind {
  /// One flat run of pages in rank order (the paper's Section 6.1 disk).
  kPacked,
  /// Pages grouped into immutable micro-partitions with per-dimension
  /// min/max zone maps (Snowflake-style cloud storage).
  kMicroPartition,
};

/// Stable lowercase name ("packed" / "micropartition").
const char* StorageBackendKindName(StorageBackendKind kind);

/// Inverse of StorageBackendKindName; InvalidArgument on unknown names.
Result<StorageBackendKind> ParseStorageBackendKind(std::string_view name);

/// Measured I/O of a single grid query against a storage backend.
struct QueryIo {
  uint64_t records = 0;    // records selected
  uint64_t pages = 0;      // distinct pages read
  uint64_t seeks = 0;      // non-sequential accesses (maximal page runs)
  uint64_t min_pages = 0;  // ceil(records * record_size / page_size)

  /// Pages read over the perfectly-clustered minimum (Section 6.1's
  /// normalized blocks). Defined only for non-empty queries; asking for it
  /// on an empty one aborts instead of silently returning inf/NaN.
  double NormalizedBlocks() const {
    SNAKES_CHECK(min_pages > 0)
        << "NormalizedBlocks is undefined for empty queries";
    return static_cast<double>(pages) / static_cast<double>(min_pages);
  }
};

/// A closed range predicate on the measure attribute — the record-level
/// filter measure zone maps prune against (SELECT ... WHERE measure BETWEEN
/// lo AND hi on top of the grid box).
struct MeasureBounds {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return v >= lo && v <= hi; }
};

/// Outcome of zone-map pruning a query box against a backend's partition
/// directory. Non-partitioned backends report all-zero stats ("nothing to
/// prune"); partitioned ones satisfy scanned + pruned == partitions.
struct PruneStats {
  uint64_t partitions = 0;  // directory size consulted
  uint64_t scanned = 0;     // partitions whose zone map overlaps the box
  uint64_t pruned = 0;      // partitions skipped without touching data

  double PrunedFraction() const {
    return partitions == 0
               ? 0.0
               : static_cast<double>(pruned) / static_cast<double>(partitions);
  }
};

/// One side of a relayout priced at the backend's native rewrite
/// granularity: PackedLayout moves individual rank runs, MicroPartitionStore
/// rewrites whole partitions (immutable files are replaced, never patched).
struct RewriteIo {
  uint64_t pages = 0;       // pages read from / written to this side
  uint64_t units = 0;       // sequential transfer units (runs or partitions)
  uint64_t partitions = 0;  // whole partitions touched; 0 at run granularity
};

/// Abstract storage backend: the on-disk image of a fact table under one
/// clustering strategy. Every backend packs records page by page following
/// the linearization's rank order (a cell's records may span a page
/// boundary, but single records never split — when a page's remainder is
/// smaller than one record the page is closed and the record starts the next
/// page, Section 6.1), so rank-range measurement, query evaluation, and
/// movement-cost diffs share one representation. Backends differ in the
/// metadata layered on top: how pages group into partitions, what a query
/// may skip without reading (PruneBox), and the granularity at which a
/// relayout rewrites data (RewriteReadIo / RewriteWriteIo).
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Which concrete representation this is.
  virtual StorageBackendKind kind() const = 0;
  const char* kind_name() const { return StorageBackendKindName(kind()); }

  const Linearization& linearization() const { return *lin_; }
  std::shared_ptr<const Linearization> linearization_ptr() const {
    return lin_;
  }
  const FactTable& facts() const { return *facts_; }
  const StorageConfig& config() const { return config_; }

  /// Total pages used.
  uint64_t num_pages() const { return num_pages_; }

  /// Partition directory size; 0 means the backend has no partition
  /// structure (every page lives in one implicit unit).
  virtual uint64_t num_partitions() const { return 0; }

  /// True iff the cell at `rank` holds no records.
  bool CellEmpty(uint64_t rank) const {
    return first_page_[rank] > last_page_[rank];
  }

  /// First/last page (inclusive) holding records of the cell at `rank`;
  /// meaningful only when !CellEmpty(rank).
  uint64_t CellFirstPage(uint64_t rank) const { return first_page_[rank]; }
  uint64_t CellLastPage(uint64_t rank) const { return last_page_[rank]; }

  /// Record count of the cell at `rank` (cached from the fact table).
  uint32_t CellRecords(uint64_t rank) const { return records_[rank]; }

  /// Aggregate I/O footprint of a rank run. Because records pack in rank
  /// order, the pages of any consecutive-rank range form one contiguous
  /// interval with no internal gaps; empty ranges use the same inverted
  /// convention as CellEmpty (first > last).
  struct RangeIo {
    uint64_t records = 0;
    uint64_t first_page = 1;
    uint64_t last_page = 0;
  };

  /// Footprint of ranks [start, start + len) in O(1), from prefix sums
  /// built at pack time. Checked: a range reaching past the grid aborts
  /// instead of reading out of bounds (ranks approach 2^63 on wide
  /// schemas, so start + len itself is guarded against wraparound).
  RangeIo MeasureRange(uint64_t start, uint64_t len) const;

  /// I/O of a sorted, disjoint, coalesced run decomposition (the output of
  /// Linearization::AppendRuns): one linear pass merging adjacent page
  /// spans, O(runs). The uninstrumented core of IoSimulator::Measure.
  QueryIo MeasureRuns(const std::vector<RankRun>& runs) const;

  /// Zone-map pruning of a query box: how much of the partition directory a
  /// query can skip before scanning survivors. Pruning is conservative — a
  /// pruned partition holds no cell of the box, so it never changes the
  /// measured QueryIo, only the evaluation work. The base backend has no
  /// partitions and returns all-zero stats.
  virtual PruneStats PruneBox(const CellBox& box) const {
    (void)box;
    return PruneStats{};
  }

  /// Zone-map pruning of a query box with a measure predicate layered on
  /// top: a partition may additionally be skipped when its record-level
  /// measure min/max range misses `bounds`. Same conservativeness contract
  /// as PruneBox — a pruned partition holds no record of the box whose
  /// measure lies in `bounds`. The base backend has no partitions and
  /// returns all-zero stats.
  virtual PruneStats PruneBoxMeasure(const CellBox& box,
                                     const MeasureBounds& bounds) const {
    (void)bounds;
    return PruneBox(box);
  }

  /// Read-side I/O of relocating the record ranges in `ranges` (disjoint
  /// rank runs on *this* backend, any order). The default prices run
  /// granularity: each range with >= 1 record costs its contiguous page
  /// span as one sequential unit.
  virtual RewriteIo RewriteReadIo(const std::vector<RankRun>& ranges) const {
    return RunGranularityIo(ranges);
  }

  /// Write-side I/O of materializing the record ranges in `ranges` at their
  /// destination on *this* backend. Same default granularity as reads.
  virtual RewriteIo RewriteWriteIo(const std::vector<RankRun>& ranges) const {
    return RunGranularityIo(ranges);
  }

 protected:
  StorageBackend() = default;
  // Copy/move stay available to concrete backends (Result<T> needs moves and
  // callers hold layouts by value) but are protected here against slicing.
  StorageBackend(const StorageBackend&) = default;
  StorageBackend& operator=(const StorageBackend&) = default;
  StorageBackend(StorageBackend&&) = default;
  StorageBackend& operator=(StorageBackend&&) = default;

  /// Validates the inputs and packs `facts` along `lin` into the shared
  /// page representation (per-rank page spans plus the O(1) MeasureRange
  /// prefix structures). Fails if config is degenerate (page smaller than a
  /// record) or the linearization belongs to a different grid. `obs`
  /// (optional) records a "storage/pack" span and the storage.pages_packed /
  /// storage.records_packed counters.
  Status PackPages(std::shared_ptr<const Linearization> lin,
                   std::shared_ptr<const FactTable> facts,
                   StorageConfig config, const ObsSink& obs);

  /// Shared run-granularity rewrite pricing (the PackedLayout model).
  RewriteIo RunGranularityIo(const std::vector<RankRun>& ranges) const;

 private:
  std::shared_ptr<const Linearization> lin_;
  std::shared_ptr<const FactTable> facts_;
  StorageConfig config_;
  uint64_t num_pages_ = 0;
  // Indexed by rank. Empty cells have first > last.
  std::vector<uint64_t> first_page_;
  std::vector<uint64_t> last_page_;
  std::vector<uint32_t> records_;
  // Rank-range accelerators for MeasureRange. cum_records_[r] = records in
  // ranks [0, r) (n + 1 entries); next_first_page_[r] = first page of the
  // first non-empty cell at rank >= r; prev_last_page_[r] = last page of
  // the last non-empty cell at rank <= r. The page sentinels are only read
  // when the queried range holds >= 1 record.
  std::vector<uint64_t> cum_records_;
  std::vector<uint64_t> next_first_page_;
  std::vector<uint64_t> prev_last_page_;
};

/// Packs `facts` along `lin` into a heap-allocated backend of the requested
/// kind — the single construction path the recluster engine, the advisor's
/// storage-measure scoring, and the service all share. Defined in
/// micro_partition.cc, where both concrete backends are visible.
Result<std::shared_ptr<const StorageBackend>> MakeStorageBackend(
    StorageBackendKind kind, std::shared_ptr<const Linearization> lin,
    std::shared_ptr<const FactTable> facts, StorageConfig config = {},
    const ObsSink& obs = {});

}  // namespace snakes

#endif  // SNAKES_STORAGE_BACKEND_H_
