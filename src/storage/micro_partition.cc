#include "storage/micro_partition.h"

#include <algorithm>
#include <utility>

#include "storage/pager.h"
#include "util/logging.h"

namespace snakes {

Result<MicroPartitionStore> MicroPartitionStore::Pack(
    std::shared_ptr<const Linearization> lin,
    std::shared_ptr<const FactTable> facts, StorageConfig config,
    const ObsSink& obs) {
  if (config.micro_partition_pages == 0) {
    return Status::InvalidArgument(
        "micro_partition_pages must be >= 1 page per partition");
  }
  MicroPartitionStore store;
  Status packed =
      store.PackPages(std::move(lin), std::move(facts), config, obs);
  if (!packed.ok()) return packed;
  Status built = store.BuildPartitions();
  if (!built.ok()) return built;
  return store;
}

Status MicroPartitionStore::BuildPartitions() {
  const Linearization& lin = linearization();
  const StarSchema& schema = lin.schema();
  const uint64_t n = lin.num_cells();
  const uint64_t target_pages = config().micro_partition_pages;
  partitions_.clear();
  if (n == 0) return Status::OK();

  Partition open;
  open.first_rank = 0;
  lin.Walk([&](uint64_t rank, const CellCoord& coord) {
    if (CellEmpty(rank)) return;  // empty cells ride along with their run
    const uint64_t first = CellFirstPage(rank);
    // Close the open partition at a clean page boundary once it is full:
    // the next cell must start a fresh page, or the two partitions would
    // share one (mutable) page and lose their immutability.
    if (open.records > 0 && open.last_page - open.first_page + 1 >= target_pages &&
        first > open.last_page) {
      open.num_ranks = rank - open.first_rank;
      partitions_.push_back(open);
      open = Partition{};
      open.first_rank = rank;
    }
    const CellId id = schema.Flatten(coord);
    const double cell_min = facts().measure_min(id);
    const double cell_max = facts().measure_max(id);
    if (open.records == 0) {
      open.first_page = first;
      open.zone_lo = coord;
      open.zone_hi = coord;
      open.measure_lo = cell_min;
      open.measure_hi = cell_max;
    } else {
      for (size_t d = 0; d < coord.size(); ++d) {
        open.zone_lo[d] = std::min(open.zone_lo[d], coord[d]);
        open.zone_hi[d] = std::max(open.zone_hi[d], coord[d]);
      }
      open.measure_lo = std::min(open.measure_lo, cell_min);
      open.measure_hi = std::max(open.measure_hi, cell_max);
    }
    open.last_page = CellLastPage(rank);
    open.records += CellRecords(rank);
  });
  open.num_ranks = n - open.first_rank;
  partitions_.push_back(open);
  return Status::OK();
}

uint64_t MicroPartitionStore::PartitionOf(uint64_t rank) const {
  SNAKES_DCHECK(!partitions_.empty() && rank < partitions_.back().end_rank());
  // Last partition whose first_rank <= rank.
  const auto it = std::upper_bound(
      partitions_.begin(), partitions_.end(), rank,
      [](uint64_t r, const Partition& p) { return r < p.first_rank; });
  return static_cast<uint64_t>(it - partitions_.begin()) - 1;
}

PruneStats MicroPartitionStore::PruneBox(const CellBox& box) const {
  PruneStats stats;
  stats.partitions = partitions_.size();
  for (const Partition& p : partitions_) {
    bool overlaps = p.records > 0;
    for (size_t d = 0; overlaps && d < box.lo.size(); ++d) {
      overlaps = p.zone_lo[d] < box.hi[d] && p.zone_hi[d] >= box.lo[d];
    }
    if (overlaps) {
      ++stats.scanned;
    } else {
      ++stats.pruned;
    }
  }
  return stats;
}

PruneStats MicroPartitionStore::PruneBoxMeasure(
    const CellBox& box, const MeasureBounds& bounds) const {
  PruneStats stats;
  stats.partitions = partitions_.size();
  for (const Partition& p : partitions_) {
    bool overlaps = p.records > 0;
    for (size_t d = 0; overlaps && d < box.lo.size(); ++d) {
      overlaps = p.zone_lo[d] < box.hi[d] && p.zone_hi[d] >= box.lo[d];
    }
    // Record-level measure zones: the partition's [lo, hi] envelope covers
    // every record measure inside it, so an empty intersection with `bounds`
    // proves no record qualifies.
    if (overlaps) {
      overlaps = p.measure_lo <= bounds.hi && p.measure_hi >= bounds.lo;
    }
    if (overlaps) {
      ++stats.scanned;
    } else {
      ++stats.pruned;
    }
  }
  return stats;
}

RewriteIo MicroPartitionStore::PartitionGranularityIo(
    const std::vector<RankRun>& ranges) const {
  RewriteIo io;
  if (partitions_.empty()) return io;
  std::vector<char> touched(partitions_.size(), 0);
  for (const RankRun& r : ranges) {
    if (r.len == 0 || MeasureRange(r.start, r.len).records == 0) continue;
    const uint64_t end = r.start + r.len;
    for (uint64_t p = PartitionOf(r.start);
         p < partitions_.size() && partitions_[p].first_rank < end; ++p) {
      if (touched[p] != 0) continue;
      // Only the intersection's records matter: a partition overlapped
      // purely by empty cells is not rewritten.
      const Partition& part = partitions_[p];
      const uint64_t lo = std::max(r.start, part.first_rank);
      const uint64_t hi = std::min(end, part.end_rank());
      if (MeasureRange(lo, hi - lo).records > 0) touched[p] = 1;
    }
  }
  for (uint64_t p = 0; p < partitions_.size(); ++p) {
    if (touched[p] == 0) continue;
    io.pages += partitions_[p].num_data_pages();
    ++io.units;
    ++io.partitions;
  }
  return io;
}

RewriteIo MicroPartitionStore::RewriteReadIo(
    const std::vector<RankRun>& ranges) const {
  return PartitionGranularityIo(ranges);
}

RewriteIo MicroPartitionStore::RewriteWriteIo(
    const std::vector<RankRun>& ranges) const {
  return PartitionGranularityIo(ranges);
}

Result<std::shared_ptr<const StorageBackend>> MakeStorageBackend(
    StorageBackendKind kind, std::shared_ptr<const Linearization> lin,
    std::shared_ptr<const FactTable> facts, StorageConfig config,
    const ObsSink& obs) {
  switch (kind) {
    case StorageBackendKind::kPacked: {
      SNAKES_ASSIGN_OR_RETURN(
          PackedLayout layout,
          PackedLayout::Pack(std::move(lin), std::move(facts), config, obs));
      return std::shared_ptr<const StorageBackend>(
          std::make_shared<const PackedLayout>(std::move(layout)));
    }
    case StorageBackendKind::kMicroPartition: {
      SNAKES_ASSIGN_OR_RETURN(MicroPartitionStore store,
                              MicroPartitionStore::Pack(
                                  std::move(lin), std::move(facts), config, obs));
      return std::shared_ptr<const StorageBackend>(
          std::make_shared<const MicroPartitionStore>(std::move(store)));
    }
  }
  return Status::InvalidArgument("unknown storage backend kind");
}

}  // namespace snakes
