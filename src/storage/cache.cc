#include "storage/cache.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace snakes {

LruPageCache::LruPageCache(uint64_t capacity_pages, const ObsSink& obs)
    : capacity_(capacity_pages) {
  if (obs.metrics != nullptr) {
    hits_counter_ = obs.metrics->GetCounter("cache.hits");
    misses_counter_ = obs.metrics->GetCounter("cache.misses");
    evictions_counter_ = obs.metrics->GetCounter("cache.evictions");
  }
}

bool LruPageCache::Access(uint64_t page) {
  if (capacity_ == 0) {
    ++misses_;
    if (misses_counter_ != nullptr) misses_counter_->Inc();
    return false;
  }
  const auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    if (hits_counter_ != nullptr) hits_counter_->Inc();
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (misses_counter_ != nullptr) misses_counter_->Inc();
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    if (evictions_counter_ != nullptr) evictions_counter_->Inc();
  }
  lru_.push_front(page);
  index_[page] = lru_.begin();
  return false;
}

void LruPageCache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void LruPageCache::Clear() {
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

CachedRunStats ReplayWorkload(const StorageBackend& backend, const Workload& mu,
                              uint64_t num_queries, LruPageCache* cache,
                              Rng* rng) {
  const Linearization& lin = backend.linearization();
  const StarSchema& schema = lin.schema();
  CachedRunStats stats;
  std::vector<uint64_t> ranks;
  for (uint64_t q = 0; q < num_queries; ++q) {
    const QueryClass cls = mu.Sample(rng);
    const GridQuery query = SampleQuery(schema, cls, rng);
    const CellBox box = BoxOf(schema, query);

    ranks.clear();
    CellCoord coord = box.lo;
    const int k = schema.num_dims();
    for (;;) {
      ranks.push_back(lin.RankOf(coord));
      int d = k - 1;
      for (; d >= 0; --d) {
        if (++coord[static_cast<size_t>(d)] < box.hi[static_cast<size_t>(d)]) {
          break;
        }
        coord[static_cast<size_t>(d)] = box.lo[static_cast<size_t>(d)];
      }
      if (d < 0) break;
    }
    std::sort(ranks.begin(), ranks.end());

    ++stats.queries;
    int64_t last_page = -1;
    for (const uint64_t rank : ranks) {
      if (backend.CellEmpty(rank)) continue;
      const int64_t first = static_cast<int64_t>(backend.CellFirstPage(rank));
      const int64_t last = static_cast<int64_t>(backend.CellLastPage(rank));
      for (int64_t page = std::max(first, last_page + 1); page <= last;
           ++page) {
        ++stats.page_accesses;
        if (!cache->Access(static_cast<uint64_t>(page))) ++stats.disk_reads;
      }
      last_page = std::max(last_page, last);
    }
  }
  return stats;
}

}  // namespace snakes
