#include "storage/query_engine.h"

namespace snakes {

QueryAnswer QueryEngine::Execute(const GridQuery& query,
                                 PruneStats* prune) const {
  const StarSchema& schema = backend_.linearization().schema();
  const FactTable& facts = backend_.facts();
  QueryAnswer answer;
  answer.io = simulator_.Measure(query, prune);

  const CellBox box = BoxOf(schema, query);
  CellCoord coord = box.lo;
  const int k = schema.num_dims();
  for (;;) {
    const CellId id = schema.Flatten(coord);
    answer.count += facts.count(id);
    answer.sum += facts.measure_sum(id);
    int d = k - 1;
    for (; d >= 0; --d) {
      if (++coord[static_cast<size_t>(d)] < box.hi[static_cast<size_t>(d)]) {
        break;
      }
      coord[static_cast<size_t>(d)] = box.lo[static_cast<size_t>(d)];
    }
    if (d < 0) break;
  }
  return answer;
}

QueryAnswer QueryEngine::ExecuteAt(const QueryClass& cls,
                                   const CellCoord& coord) const {
  const StarSchema& schema = backend_.linearization().schema();
  return Execute(QueryContaining(schema, cls, coord));
}

}  // namespace snakes
