#ifndef SNAKES_STORAGE_DISK_MODEL_H_
#define SNAKES_STORAGE_DISK_MODEL_H_

#include "storage/executor.h"

namespace snakes {

/// Translates the simulator's seek/page counts into elapsed-time estimates
/// for a rotating disk — the device class the paper's cost model targets
/// (seeks dominate; sequential transfer is cheap). Defaults approximate a
/// late-90s server drive so the examples' numbers line up with the paper's
/// era; tune for modern hardware as needed.
struct DiskModel {
  /// Average positioning time per non-sequential access (seek + half a
  /// rotation), milliseconds.
  double seek_ms = 9.5;
  /// Sustained sequential transfer rate, bytes per millisecond.
  double transfer_bytes_per_ms = 15'000.0;

  /// Estimated elapsed time for one measured query.
  double QueryMs(const QueryIo& io, uint64_t page_size_bytes) const {
    return static_cast<double>(io.seeks) * seek_ms +
           static_cast<double>(io.pages) *
               static_cast<double>(page_size_bytes) / transfer_bytes_per_ms;
  }

  /// Expected elapsed time per query under a workload, from the executor's
  /// expected seeks and an expected page count. `expected_pages` should be
  /// the workload expectation of per-query pages read.
  double ExpectedMs(double expected_seeks, double expected_pages,
                    uint64_t page_size_bytes) const {
    return expected_seeks * seek_ms +
           expected_pages * static_cast<double>(page_size_bytes) /
               transfer_bytes_per_ms;
  }
};

}  // namespace snakes

#endif  // SNAKES_STORAGE_DISK_MODEL_H_
