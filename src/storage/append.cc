#include "storage/append.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

void OverflowLayout::Append(const CellCoord& coord, double measure) {
  overflow_cells_.push_back(base_.linearization().schema().Flatten(coord));
  overflow_measures_.push_back(measure);
}

uint64_t OverflowLayout::overflow_pages() const {
  return CeilDiv(overflow_cells_.size(), base_.config().RecordsPerPage());
}

namespace {

/// Run tracker over the (monotone) overflow page sequence of one query.
struct OverflowRun {
  int64_t last = -1;
  uint64_t pages = 0;
  uint64_t seeks = 0;
  uint64_t records = 0;

  void Add(int64_t page) {
    ++records;
    if (page == last) return;
    ++pages;
    if (page > last + 1 || last < 0) ++seeks;
    last = page;
  }
};

}  // namespace

QueryIo OverflowLayout::Measure(const GridQuery& query) const {
  const IoSimulator sim(base_);
  QueryIo io = sim.Measure(query);
  const StarSchema& schema = base_.linearization().schema();
  const CellBox box = BoxOf(schema, query);
  const uint64_t rpp = base_.config().RecordsPerPage();
  OverflowRun run;
  for (size_t i = 0; i < overflow_cells_.size(); ++i) {
    if (!box.Contains(schema.Unflatten(overflow_cells_[i]))) continue;
    run.Add(static_cast<int64_t>(i / rpp));
  }
  io.records += run.records;
  io.pages += run.pages;
  io.seeks += run.seeks;
  io.min_pages = CeilDiv(io.records * base_.config().record_size_bytes,
                         base_.config().page_size_bytes);
  return io;
}

WorkloadIoStats OverflowLayout::Expect(const Workload& mu) const {
  const Linearization& lin = base_.linearization();
  const StarSchema& schema = lin.schema();
  const int k = schema.num_dims();
  const QueryClassLattice& lat = mu.lattice();
  const uint64_t rpp = base_.config().RecordsPerPage();
  const uint64_t record_size = base_.config().record_size_bytes;
  const uint64_t page_size = base_.config().page_size_bytes;

  WorkloadIoStats out;
  for (uint64_t ci = 0; ci < lat.size(); ++ci) {
    const double prob = mu.probability_at(ci);
    if (prob == 0.0) continue;
    const QueryClass cls = lat.ClassAt(ci);

    FixedVector<uint64_t, kMaxDimensions> strides;
    strides.resize(static_cast<size_t>(k));
    uint64_t num_queries = 1;
    for (int d = k - 1; d >= 0; --d) {
      strides[static_cast<size_t>(d)] = num_queries;
      num_queries *= schema.dim(d).num_blocks(cls.level(d));
    }
    auto qid_of = [&](const CellCoord& coord) {
      uint64_t qid = 0;
      for (int d = 0; d < k; ++d) {
        qid += schema.dim(d).AncestorAt(coord[static_cast<size_t>(d)],
                                        cls.level(d)) *
               strides[static_cast<size_t>(d)];
      }
      return qid;
    };

    struct State {
      int64_t base_last = -1;
      uint64_t base_pages = 0;
      uint64_t base_seeks = 0;
      uint64_t records = 0;
      OverflowRun overflow;
    };
    std::vector<State> state(num_queries);

    lin.Walk([&](uint64_t rank, const CellCoord& coord) {
      if (base_.CellEmpty(rank)) return;
      State& s = state[qid_of(coord)];
      s.records += base_.CellRecords(rank);
      const int64_t f = static_cast<int64_t>(base_.CellFirstPage(rank));
      const int64_t l = static_cast<int64_t>(base_.CellLastPage(rank));
      if (f > s.base_last + 1 || s.base_last < 0) ++s.base_seeks;
      if (l > s.base_last) {
        s.base_pages +=
            static_cast<uint64_t>(l - std::max(s.base_last + 1, f) + 1);
        s.base_last = l;
      }
    });
    for (size_t i = 0; i < overflow_cells_.size(); ++i) {
      State& s = state[qid_of(schema.Unflatten(overflow_cells_[i]))];
      s.overflow.Add(static_cast<int64_t>(i / rpp));
    }

    uint64_t nonempty = 0, pages = 0, seeks = 0;
    double normalized = 0.0;
    for (const State& s : state) {
      const uint64_t records = s.records + s.overflow.records;
      if (records == 0) continue;
      ++nonempty;
      const uint64_t q_pages = s.base_pages + s.overflow.pages;
      pages += q_pages;
      seeks += s.base_seeks + s.overflow.seeks;
      const uint64_t min_pages = CeilDiv(records * record_size, page_size);
      normalized +=
          static_cast<double>(q_pages) / static_cast<double>(min_pages);
    }
    if (nonempty == 0) continue;
    const double denom = static_cast<double>(nonempty);
    out.expected_seeks += prob * static_cast<double>(seeks) / denom;
    out.expected_pages += prob * static_cast<double>(pages) / denom;
    out.expected_normalized_blocks += prob * normalized / denom;
  }
  return out;
}

}  // namespace snakes
