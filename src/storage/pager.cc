#include "storage/pager.h"

#include <utility>

namespace snakes {

Result<PackedLayout> PackedLayout::Pack(
    std::shared_ptr<const Linearization> lin,
    std::shared_ptr<const FactTable> facts, StorageConfig config,
    const ObsSink& obs) {
  PackedLayout layout;
  Status packed =
      layout.PackPages(std::move(lin), std::move(facts), config, obs);
  if (!packed.ok()) return packed;
  return layout;
}

}  // namespace snakes
