#include "storage/pager.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace snakes {

Result<PackedLayout> PackedLayout::Pack(
    std::shared_ptr<const Linearization> lin,
    std::shared_ptr<const FactTable> facts, StorageConfig config,
    const ObsSink& obs) {
  ScopedSpan span(obs.tracer, "storage/pack", "storage");
  span.AddArg("strategy", lin->name());
  if (config.record_size_bytes == 0 ||
      config.page_size_bytes < config.record_size_bytes) {
    return Status::InvalidArgument(
        "page must hold at least one whole record");
  }
  if (&lin->schema() != &facts->schema() &&
      lin->num_cells() != facts->num_cells()) {
    return Status::InvalidArgument(
        "linearization and fact table describe different grids");
  }
  PackedLayout layout(std::move(lin), std::move(facts), config);
  const uint64_t n = layout.lin_->num_cells();
  layout.first_page_.resize(n);
  layout.last_page_.resize(n);
  layout.records_.resize(n);

  uint64_t page = 0;
  uint64_t used = 0;  // bytes used on the current page
  const StarSchema& schema = layout.lin_->schema();
  layout.lin_->Walk([&](uint64_t rank, const CellCoord& coord) {
    const uint32_t records = layout.facts_->count(schema.Flatten(coord));
    layout.records_[rank] = records;
    if (records == 0) {
      // Empty cell: occupies nothing; mark with an inverted span.
      layout.first_page_[rank] = 1;
      layout.last_page_[rank] = 0;
      return;
    }
    uint64_t placed = 0;
    uint64_t first = UINT64_MAX;
    while (placed < records) {
      if (config.page_size_bytes - used < config.record_size_bytes) {
        // Close the page: the remainder cannot hold a whole record.
        ++page;
        used = 0;
      }
      // Place as many of the cell's remaining records as fit on this page.
      const uint64_t fit =
          (config.page_size_bytes - used) / config.record_size_bytes;
      const uint64_t take = std::min<uint64_t>(fit, records - placed);
      if (first == UINT64_MAX) first = page;
      used += take * config.record_size_bytes;
      placed += take;
    }
    layout.first_page_[rank] = first;
    layout.last_page_[rank] = page;
  });
  layout.num_pages_ = page + (used > 0 ? 1 : 0);
  layout.cum_records_.resize(n + 1);
  layout.next_first_page_.resize(n);
  layout.prev_last_page_.resize(n);
  layout.cum_records_[0] = 0;
  uint64_t last_page_so_far = 0;
  for (uint64_t rank = 0; rank < n; ++rank) {
    layout.cum_records_[rank + 1] =
        layout.cum_records_[rank] + layout.records_[rank];
    if (!layout.CellEmpty(rank)) last_page_so_far = layout.last_page_[rank];
    layout.prev_last_page_[rank] = last_page_so_far;
  }
  uint64_t first_page_so_far = 0;
  for (uint64_t rank = n; rank-- > 0;) {
    if (!layout.CellEmpty(rank)) first_page_so_far = layout.first_page_[rank];
    layout.next_first_page_[rank] = first_page_so_far;
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("storage.pages_packed")->Inc(layout.num_pages_);
    obs.metrics->GetCounter("storage.records_packed")
        ->Inc(layout.facts_->total_records());
  }
  return layout;
}

PackedLayout::RangeIo PackedLayout::MeasureRange(uint64_t start,
                                                 uint64_t len) const {
  SNAKES_DCHECK(start + len <= records_.size());
  RangeIo io;
  if (len == 0) return io;
  io.records = cum_records_[start + len] - cum_records_[start];
  if (io.records == 0) return io;
  // Non-empty range: the first non-empty cell at rank >= start and the last
  // one at rank <= start + len - 1 both lie inside the range, and packing
  // makes every page in between hold records of in-range cells.
  io.first_page = next_first_page_[start];
  io.last_page = prev_last_page_[start + len - 1];
  return io;
}

}  // namespace snakes
