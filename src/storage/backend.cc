#include "storage/backend.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {

const char* StorageBackendKindName(StorageBackendKind kind) {
  switch (kind) {
    case StorageBackendKind::kPacked:
      return "packed";
    case StorageBackendKind::kMicroPartition:
      return "micropartition";
  }
  SNAKES_CHECK(false) << "unknown StorageBackendKind";
  return "";
}

Result<StorageBackendKind> ParseStorageBackendKind(std::string_view name) {
  if (name == "packed") return StorageBackendKind::kPacked;
  if (name == "micropartition" || name == "micro-partition") {
    return StorageBackendKind::kMicroPartition;
  }
  return Status::InvalidArgument("unknown storage backend: \"" +
                                 std::string(name) +
                                 "\" (expected packed|micropartition)");
}

Status StorageBackend::PackPages(std::shared_ptr<const Linearization> lin,
                                 std::shared_ptr<const FactTable> facts,
                                 StorageConfig config, const ObsSink& obs) {
  ScopedSpan span(obs.tracer, "storage/pack", "storage");
  span.AddArg("strategy", lin->name());
  if (config.record_size_bytes == 0 ||
      config.page_size_bytes < config.record_size_bytes) {
    return Status::InvalidArgument(
        "page must hold at least one whole record");
  }
  if (&lin->schema() != &facts->schema() &&
      lin->num_cells() != facts->num_cells()) {
    return Status::InvalidArgument(
        "linearization and fact table describe different grids");
  }
  lin_ = std::move(lin);
  facts_ = std::move(facts);
  config_ = config;
  const uint64_t n = lin_->num_cells();
  first_page_.resize(n);
  last_page_.resize(n);
  records_.resize(n);

  uint64_t page = 0;
  uint64_t used = 0;  // bytes used on the current page
  const StarSchema& schema = lin_->schema();
  lin_->Walk([&](uint64_t rank, const CellCoord& coord) {
    const uint32_t records = facts_->count(schema.Flatten(coord));
    records_[rank] = records;
    if (records == 0) {
      // Empty cell: occupies nothing; mark with an inverted span.
      first_page_[rank] = 1;
      last_page_[rank] = 0;
      return;
    }
    uint64_t placed = 0;
    uint64_t first = UINT64_MAX;
    while (placed < records) {
      if (config.page_size_bytes - used < config.record_size_bytes) {
        // Close the page: the remainder cannot hold a whole record.
        ++page;
        used = 0;
      }
      // Place as many of the cell's remaining records as fit on this page.
      const uint64_t fit =
          (config.page_size_bytes - used) / config.record_size_bytes;
      const uint64_t take = std::min<uint64_t>(fit, records - placed);
      if (first == UINT64_MAX) first = page;
      used += take * config.record_size_bytes;
      placed += take;
    }
    first_page_[rank] = first;
    last_page_[rank] = page;
  });
  num_pages_ = page + (used > 0 ? 1 : 0);
  cum_records_.resize(n + 1);
  next_first_page_.resize(n);
  prev_last_page_.resize(n);
  cum_records_[0] = 0;
  uint64_t last_page_so_far = 0;
  for (uint64_t rank = 0; rank < n; ++rank) {
    // Checked: near-2^63-cell grids must abort rather than wrap the prefix
    // sums MeasureRange subtracts (the CellBox::NumCells convention).
    cum_records_[rank + 1] = CheckedAdd(cum_records_[rank], records_[rank]);
    if (!CellEmpty(rank)) last_page_so_far = last_page_[rank];
    prev_last_page_[rank] = last_page_so_far;
  }
  uint64_t first_page_so_far = 0;
  for (uint64_t rank = n; rank-- > 0;) {
    if (!CellEmpty(rank)) first_page_so_far = first_page_[rank];
    next_first_page_[rank] = first_page_so_far;
  }
  if (obs.metrics != nullptr) {
    obs.metrics->GetCounter("storage.pages_packed")->Inc(num_pages_);
    obs.metrics->GetCounter("storage.records_packed")
        ->Inc(facts_->total_records());
  }
  return Status::OK();
}

StorageBackend::RangeIo StorageBackend::MeasureRange(uint64_t start,
                                                     uint64_t len) const {
  // Explicit overflow-safe bounds check: start + len may wrap uint64 when
  // cell counts approach 2^63, so compare against the grid without adding.
  SNAKES_CHECK(len <= records_.size() && start <= records_.size() - len)
      << "MeasureRange past the grid: start=" << start << " len=" << len
      << " cells=" << records_.size();
  RangeIo io;
  if (len == 0) return io;
  io.records = cum_records_[start + len] - cum_records_[start];
  if (io.records == 0) return io;
  // Non-empty range: the first non-empty cell at rank >= start and the last
  // one at rank <= start + len - 1 both lie inside the range, and packing
  // makes every page in between hold records of in-range cells.
  io.first_page = next_first_page_[start];
  io.last_page = prev_last_page_[start + len - 1];
  return io;
}

QueryIo StorageBackend::MeasureRuns(const std::vector<RankRun>& runs) const {
  QueryIo io;
  int64_t last_page = -1;
  for (const RankRun& r : runs) {
    const RangeIo range = MeasureRange(r.start, r.len);
    if (range.records == 0) continue;
    io.records += range.records;
    const int64_t f = static_cast<int64_t>(range.first_page);
    const int64_t l = static_cast<int64_t>(range.last_page);
    if (f > last_page + 1 || last_page < 0) ++io.seeks;
    if (l > last_page) {
      const int64_t from = std::max(last_page + 1, f);
      io.pages += static_cast<uint64_t>(l - from + 1);
      last_page = l;
    }
  }
  io.min_pages = CeilDiv(CheckedMul(io.records, config_.record_size_bytes),
                         config_.page_size_bytes);
  return io;
}

RewriteIo StorageBackend::RunGranularityIo(
    const std::vector<RankRun>& ranges) const {
  RewriteIo io;
  for (const RankRun& r : ranges) {
    const RangeIo range = MeasureRange(r.start, r.len);
    if (range.records == 0) continue;
    io.pages += range.last_page - range.first_page + 1;
    ++io.units;
  }
  return io;
}

}  // namespace snakes
