#include "storage/executor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math.h"

namespace snakes {

namespace {

/// Incremental page-run tracker for one query. Cells arrive in rank order,
/// so page spans are non-decreasing. When `run_hist` is non-null the length
/// of every completed sequential run is recorded (the open run is flushed
/// by CloseRun); the branch costs nothing extra on the common in-run path.
struct RunState {
  int64_t last_page = -1;
  uint64_t pages = 0;
  uint64_t seeks = 0;
  uint64_t records = 0;
  uint64_t run_start_pages = 0;  // `pages` when the current run began

  void Add(uint64_t first, uint64_t last, uint64_t recs,
           Histogram* run_hist = nullptr) {
    records += recs;
    const int64_t f = static_cast<int64_t>(first);
    const int64_t l = static_cast<int64_t>(last);
    if (f > last_page + 1 || last_page < 0) {
      // Gap (or very first access): a new non-sequential access.
      ++seeks;
      if (run_hist != nullptr) {
        CloseRun(run_hist);
        run_start_pages = pages;
      }
    }
    if (l > last_page) {
      const int64_t from = std::max(last_page + 1, f);
      pages += static_cast<uint64_t>(l - from + 1);
      last_page = l;
    }
  }

  /// Records the in-progress run's length, if any.
  void CloseRun(Histogram* run_hist) const {
    if (pages > run_start_pages) run_hist->Record(pages - run_start_pages);
  }
};

}  // namespace

IoSimulator::IoSimulator(const StorageBackend& backend, const ObsSink& obs,
                         RunArena* arena)
    : backend_(backend),
      arena_(arena != nullptr ? arena : &owned_arena_),
      tracer_(obs.tracer) {
  if (obs.metrics != nullptr) {
    pages_read_ = obs.metrics->GetCounter("storage.pages_read");
    seeks_ = obs.metrics->GetCounter("storage.seeks");
    cells_scanned_ = obs.metrics->GetCounter("storage.cells_scanned");
    runs_emitted_ = obs.metrics->GetCounter("curves.runs_emitted");
    partitions_scanned_ =
        obs.metrics->GetCounter("storage.partitions_scanned");
    partitions_pruned_ = obs.metrics->GetCounter("storage.partitions_pruned");
    run_length_ = obs.metrics->GetHistogram("storage.run_length_pages");
    cells_per_run_ = obs.metrics->GetHistogram("curves.cells_per_run");
  }
}

bool IoSimulator::AllPartitionsPruned(const CellBox& box,
                                      PruneStats* prune_out) const {
  if (backend_.num_partitions() == 0) return false;
  const PruneStats prune = backend_.PruneBox(box);
  if (partitions_scanned_ != nullptr) {
    partitions_scanned_->Inc(prune.scanned);
    partitions_pruned_->Inc(prune.pruned);
  }
  if (prune_out != nullptr) *prune_out = prune;
  return prune.scanned == 0;
}

QueryIo IoSimulator::Measure(const GridQuery& query,
                             PruneStats* prune) const {
  ScopedSpan span(tracer_, "storage/measure", "storage");
  const Linearization& lin = backend_.linearization();
  const CellBox box = BoxOf(lin.schema(), query);
  // Zone maps first: a box every partition prunes holds no records, so the
  // run decomposition (and its I/O) is skipped outright.
  if (AllPartitionsPruned(box, prune)) return QueryIo{};
  std::vector<RankRun>& runs = arena_->scratch();
  runs.clear();
  lin.AppendRuns(box, &runs);

  RunState run;
  for (const RankRun& r : runs) {
    const StorageBackend::RangeIo range = backend_.MeasureRange(r.start, r.len);
    if (range.records == 0) continue;
    run.Add(range.first_page, range.last_page, range.records, run_length_);
  }
  QueryIo io;
  io.records = run.records;
  io.pages = run.pages;
  io.seeks = run.seeks;
  io.min_pages = CeilDiv(CheckedMul(run.records, backend_.config().record_size_bytes),
                         backend_.config().page_size_bytes);
  if (run_length_ != nullptr) run.CloseRun(run_length_);
  if (pages_read_ != nullptr) {
    pages_read_->Inc(io.pages);
    seeks_->Inc(io.seeks);
    runs_emitted_->Inc(runs.size());
    for (const RankRun& r : runs) cells_per_run_->Record(r.len);
  }
  return io;
}

QueryIo IoSimulator::MeasureCellWalk(const GridQuery& query) const {
  const Linearization& lin = backend_.linearization();
  const StarSchema& schema = lin.schema();
  const CellBox box = BoxOf(schema, query);

  // Collect the ranks of the query's cells, then scan them in order.
  std::vector<uint64_t> ranks;
  ranks.reserve(box.NumCells());
  CellCoord coord = box.lo;
  const int k = schema.num_dims();
  for (;;) {
    ranks.push_back(lin.RankOf(coord));
    int d = k - 1;
    for (; d >= 0; --d) {
      if (++coord[static_cast<size_t>(d)] < box.hi[static_cast<size_t>(d)]) {
        break;
      }
      coord[static_cast<size_t>(d)] = box.lo[static_cast<size_t>(d)];
    }
    if (d < 0) break;
  }
  std::sort(ranks.begin(), ranks.end());

  RunState run;
  for (uint64_t rank : ranks) {
    if (backend_.CellEmpty(rank)) continue;
    run.Add(backend_.CellFirstPage(rank), backend_.CellLastPage(rank),
            backend_.CellRecords(rank), run_length_);
  }
  QueryIo io;
  io.records = run.records;
  io.pages = run.pages;
  io.seeks = run.seeks;
  io.min_pages = CeilDiv(CheckedMul(run.records, backend_.config().record_size_bytes),
                         backend_.config().page_size_bytes);
  if (run_length_ != nullptr) run.CloseRun(run_length_);
  if (pages_read_ != nullptr) {
    pages_read_->Inc(io.pages);
    seeks_->Inc(io.seeks);
    cells_scanned_->Inc(ranks.size());
  }
  return io;
}

ClassIoStats IoSimulator::MeasureClass(const QueryClass& cls) const {
  const Linearization& lin = backend_.linearization();
  // Intervals pay off when each query covers many cells; at the fine end
  // (as many queries as cells) the single cell-walk pass is cheaper than
  // one decomposition per query. Classes whose runs provably degenerate to
  // single cells take the cell walk too — materializing num_cells() runs
  // buys nothing over walking the cells once.
  if (lin.HasRunDecomposition() &&
      NumQueriesInClass(lin.schema(), cls) < lin.num_cells() &&
      !lin.ClassRunsDegenerate(cls)) {
    return MeasureClassRuns(cls);
  }
  return MeasureClassCellWalk(cls);
}

ClassIoStats IoSimulator::MeasureClassRuns(const QueryClass& cls) const {
  const Linearization& lin = backend_.linearization();
  const StarSchema& schema = lin.schema();
  const uint64_t num_queries = NumQueriesInClass(schema, cls);

  ClassIoStats stats;
  stats.num_queries = num_queries;
  const uint64_t record_size = backend_.config().record_size_bytes;
  const uint64_t page_size = backend_.config().page_size_bytes;
  uint64_t total_runs = 0;
  if (backend_.num_partitions() == 0) {
    // Batched: one AppendClassRuns pass emits every query's runs in global
    // rank order; per-query page-run state is keyed by dense query id,
    // exactly as MeasureClassCellWalk keys cells. Aggregation then visits
    // queries in the same ascending id order as the per-query loop below,
    // so the stats (including the float normalized sum) are bit-identical.
    lin.AppendClassRuns(cls, arena_);
    std::vector<RunState> state(num_queries);
    const size_t n = arena_->num_runs();
    for (size_t i = 0; i < n; ++i) {
      const RankRun& r = arena_->run(i);
      const StorageBackend::RangeIo range =
          backend_.MeasureRange(r.start, r.len);
      if (cells_per_run_ != nullptr) cells_per_run_->Record(r.len);
      if (range.records == 0) continue;
      state[arena_->run_qid(i)].Add(range.first_page, range.last_page,
                                    range.records, run_length_);
    }
    total_runs = n;
    for (const RunState& run : state) {
      if (run.records == 0) continue;
      ++stats.num_nonempty;
      stats.total_pages += run.pages;
      stats.total_seeks += run.seeks;
      if (run_length_ != nullptr) run.CloseRun(run_length_);
      const uint64_t min_pages =
          CeilDiv(CheckedMul(run.records, record_size), page_size);
      stats.total_normalized +=
          static_cast<double>(run.pages) / static_cast<double>(min_pages);
    }
  } else {
    // Partitioned: keep the per-query loop so the zone maps can veto each
    // box before any decomposition (and the pruning counters stay per
    // query). The run vector is the arena's reusable scratch.
    std::vector<RankRun>& runs = arena_->scratch();
    for (uint64_t i = 0; i < num_queries; ++i) {
      const CellBox box = BoxOf(schema, QueryAt(schema, cls, i));
      if (AllPartitionsPruned(box)) continue;
      runs.clear();
      lin.AppendRuns(box, &runs);
      RunState run;
      for (const RankRun& r : runs) {
        const StorageBackend::RangeIo range =
            backend_.MeasureRange(r.start, r.len);
        if (range.records == 0) continue;
        run.Add(range.first_page, range.last_page, range.records, run_length_);
      }
      total_runs += runs.size();
      if (cells_per_run_ != nullptr) {
        for (const RankRun& r : runs) cells_per_run_->Record(r.len);
      }
      if (run.records == 0) continue;
      ++stats.num_nonempty;
      stats.total_pages += run.pages;
      stats.total_seeks += run.seeks;
      if (run_length_ != nullptr) run.CloseRun(run_length_);
      const uint64_t min_pages =
          CeilDiv(CheckedMul(run.records, record_size), page_size);
      stats.total_normalized +=
          static_cast<double>(run.pages) / static_cast<double>(min_pages);
    }
  }
  if (pages_read_ != nullptr) {
    pages_read_->Inc(stats.total_pages);
    seeks_->Inc(stats.total_seeks);
    runs_emitted_->Inc(total_runs);
  }
  return stats;
}

ClassIoStats IoSimulator::MeasureClassCellWalk(const QueryClass& cls) const {
  const Linearization& lin = backend_.linearization();
  const StarSchema& schema = lin.schema();
  const int k = schema.num_dims();

  // Dense query-id strides for this class.
  FixedVector<uint64_t, kMaxDimensions> strides;
  strides.resize(static_cast<size_t>(k));
  uint64_t num_queries = 1;
  for (int d = k - 1; d >= 0; --d) {
    strides[static_cast<size_t>(d)] = num_queries;
    num_queries *= schema.dim(d).num_blocks(cls.level(d));
  }

  std::vector<RunState> state(num_queries);
  lin.Walk([&](uint64_t rank, const CellCoord& coord) {
    if (backend_.CellEmpty(rank)) return;
    uint64_t qid = 0;
    for (int d = 0; d < k; ++d) {
      qid += schema.dim(d).AncestorAt(coord[static_cast<size_t>(d)],
                                      cls.level(d)) *
             strides[static_cast<size_t>(d)];
    }
    state[qid].Add(backend_.CellFirstPage(rank), backend_.CellLastPage(rank),
                   backend_.CellRecords(rank), run_length_);
  });

  ClassIoStats stats;
  stats.num_queries = num_queries;
  const uint64_t record_size = backend_.config().record_size_bytes;
  const uint64_t page_size = backend_.config().page_size_bytes;
  for (const RunState& run : state) {
    if (run.records == 0) continue;
    ++stats.num_nonempty;
    stats.total_pages += run.pages;
    stats.total_seeks += run.seeks;
    if (run_length_ != nullptr) run.CloseRun(run_length_);
    const uint64_t min_pages = CeilDiv(CheckedMul(run.records, record_size), page_size);
    stats.total_normalized +=
        static_cast<double>(run.pages) / static_cast<double>(min_pages);
  }
  if (pages_read_ != nullptr) {
    pages_read_->Inc(stats.total_pages);
    seeks_->Inc(stats.total_seeks);
    cells_scanned_->Inc(schema.num_cells());
  }
  return stats;
}

std::vector<ClassIoStats> IoSimulator::MeasureAllClasses() const {
  const QueryClassLattice lat(backend_.linearization().schema());
  ScopedSpan span(tracer_, "storage/measure_all", "storage");
  span.AddArg("strategy", backend_.linearization().name());
  span.AddArg("classes", lat.size());
  std::vector<ClassIoStats> all;
  all.reserve(lat.size());
  for (uint64_t i = 0; i < lat.size(); ++i) {
    all.push_back(MeasureClass(lat.ClassAt(i)));
  }
  return all;
}

WorkloadIoStats IoSimulator::Expect(const Workload& mu,
                                    const std::vector<ClassIoStats>& per_class) {
  SNAKES_CHECK(per_class.size() == mu.lattice().size())
      << "per-class stats do not cover the workload lattice";
  WorkloadIoStats out;
  for (uint64_t i = 0; i < per_class.size(); ++i) {
    const double p = mu.probability_at(i);
    if (p == 0.0) continue;
    out.expected_seeks += p * per_class[i].AvgSeeks();
    out.expected_normalized_blocks += p * per_class[i].AvgNormalizedBlocks();
    out.expected_pages += p * per_class[i].AvgPages();
  }
  return out;
}

}  // namespace snakes
