#include "recluster/movement.h"

#include <vector>

namespace snakes {

namespace {

/// Pages of a RangeIo span; 0 when the range holds no records.
uint64_t PagesOf(const PackedLayout::RangeIo& io) {
  if (io.records == 0) return 0;
  return io.last_page - io.first_page + 1;
}

}  // namespace

Result<MovementCost> ComputeMovementCost(const PackedLayout& current,
                                         const PackedLayout& proposed) {
  const uint64_t n = current.linearization().num_cells();
  if (proposed.linearization().num_cells() != n) {
    return Status::InvalidArgument(
        "movement cost requires layouts over the same grid");
  }
  const uint64_t total_records = current.MeasureRange(0, n).records;
  if (proposed.MeasureRange(0, n).records != total_records) {
    return Status::InvalidArgument(
        "movement cost requires layouts of the same fact table");
  }

  MovementCost cost;
  cost.total_cells = n;

  // Where each proposed rank's cell lives today.
  std::vector<uint64_t> source(n);
  for (uint64_t r = 0; r < n; ++r) {
    source[r] =
        current.linearization().RankOf(proposed.linearization().CellAt(r));
  }

  uint64_t stable = 0;
  while (stable < n && source[stable] == stable) ++stable;
  cost.stable_prefix_cells = stable;

  // Decompose the remainder into maximal runs consecutive in the source;
  // each run is one sequential copy, priced by its page span on both sides.
  uint64_t r = stable;
  while (r < n) {
    uint64_t len = 1;
    while (r + len < n && source[r + len] == source[r] + len) ++len;
    const PackedLayout::RangeIo src = current.MeasureRange(source[r], len);
    if (src.records > 0) {
      const PackedLayout::RangeIo dst = proposed.MeasureRange(r, len);
      ++cost.moved_runs;
      cost.moved_records += src.records;
      cost.pages_read += PagesOf(src);
      cost.pages_written += PagesOf(dst);
    }
    r += len;
  }
  return cost;
}

}  // namespace snakes
