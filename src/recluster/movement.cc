#include "recluster/movement.h"

#include <vector>

namespace snakes {

Result<MovementCost> ComputeMovementCost(const StorageBackend& current,
                                         const StorageBackend& proposed) {
  const uint64_t n = current.linearization().num_cells();
  if (proposed.linearization().num_cells() != n) {
    return Status::InvalidArgument(
        "movement cost requires backends over the same grid");
  }
  const uint64_t total_records = current.MeasureRange(0, n).records;
  if (proposed.MeasureRange(0, n).records != total_records) {
    return Status::InvalidArgument(
        "movement cost requires backends of the same fact table");
  }

  MovementCost cost;
  cost.total_cells = n;

  // Where each proposed rank's cell lives today.
  std::vector<uint64_t> source(n);
  for (uint64_t r = 0; r < n; ++r) {
    source[r] =
        current.linearization().RankOf(proposed.linearization().CellAt(r));
  }

  uint64_t stable = 0;
  while (stable < n && source[stable] == stable) ++stable;
  cost.stable_prefix_cells = stable;

  // Decompose the remainder into maximal runs consecutive in the source.
  // The permutation structure (moved_runs, moved_records) is granularity
  // independent; each backend then prices the same run lists at its own
  // rewrite granularity.
  std::vector<RankRun> src_ranges;  // disjoint on `current`, unsorted
  std::vector<RankRun> dst_ranges;  // sorted and disjoint on `proposed`
  uint64_t r = stable;
  while (r < n) {
    uint64_t len = 1;
    while (r + len < n && source[r + len] == source[r] + len) ++len;
    const StorageBackend::RangeIo src = current.MeasureRange(source[r], len);
    if (src.records > 0) {
      ++cost.moved_runs;
      cost.moved_records += src.records;
      src_ranges.push_back(RankRun{source[r], len});
      dst_ranges.push_back(RankRun{r, len});
    }
    r += len;
  }
  const RewriteIo read = current.RewriteReadIo(src_ranges);
  const RewriteIo write = proposed.RewriteWriteIo(dst_ranges);
  cost.pages_read = read.pages;
  cost.pages_written = write.pages;
  cost.partitions_read = read.partitions;
  cost.partitions_written = write.partitions;
  return cost;
}

}  // namespace snakes
