#ifndef SNAKES_RECLUSTER_MOVEMENT_H_
#define SNAKES_RECLUSTER_MOVEMENT_H_

#include <cstdint>

#include "storage/pager.h"
#include "util/result.h"

namespace snakes {

/// Physical price of re-laying a packed fact table from one clustering to
/// another, measured in pages touched. Computed from the rank-run structure
/// of the permutation between the two layouts, not record by record: the
/// proposed rank order is decomposed into maximal runs that are already
/// consecutive in the current layout, and each run is priced by its page
/// footprint in both layouts (O(1) per run via the layouts' prefix sums).
struct MovementCost {
  /// Cells of the grid (ranks in either layout).
  uint64_t total_cells = 0;
  /// Length of the leading stretch of ranks whose cells already sit at the
  /// same rank in the current layout. A rewrite can leave these pages in
  /// place entirely; they are charged nothing.
  uint64_t stable_prefix_cells = 0;
  /// Maximal already-consecutive source runs (with >= 1 record) that the
  /// rewrite copies; the number of sequential read passes.
  uint64_t moved_runs = 0;
  /// Records copied (everything outside the stable prefix).
  uint64_t moved_records = 0;
  /// Pages fetched from the current layout to assemble the moved runs.
  uint64_t pages_read = 0;
  /// Pages produced in the proposed layout for the moved region.
  uint64_t pages_written = 0;

  /// Total page traffic of the rewrite — the movement cost the recluster
  /// planner charges against expected-cost improvement.
  uint64_t pages_moved() const { return pages_read + pages_written; }
};

/// Prices rewriting `current` into `proposed`. Both layouts must pack the
/// same number of cells and records (same grid, same fact table). Identical
/// cell orders cost exactly zero.
Result<MovementCost> ComputeMovementCost(const PackedLayout& current,
                                         const PackedLayout& proposed);

}  // namespace snakes

#endif  // SNAKES_RECLUSTER_MOVEMENT_H_
