#ifndef SNAKES_RECLUSTER_MOVEMENT_H_
#define SNAKES_RECLUSTER_MOVEMENT_H_

#include <cstdint>

#include "storage/backend.h"
#include "util/result.h"

namespace snakes {

/// Physical price of re-laying a packed fact table from one clustering to
/// another, measured in pages touched. Computed from the rank-run structure
/// of the permutation between the two backends, not record by record: the
/// proposed rank order is decomposed into maximal runs that are already
/// consecutive in the current order, and each side prices those runs at its
/// own rewrite granularity (StorageBackend::RewriteReadIo / RewriteWriteIo
/// — page spans per run for PackedLayout, whole immutable partitions for
/// MicroPartitionStore).
struct MovementCost {
  /// Cells of the grid (ranks in either backend).
  uint64_t total_cells = 0;
  /// Length of the leading stretch of ranks whose cells already sit at the
  /// same rank in the current order. A rewrite can leave these pages in
  /// place entirely; they are charged nothing.
  uint64_t stable_prefix_cells = 0;
  /// Maximal already-consecutive source runs (with >= 1 record) that the
  /// rewrite copies — the permutation's structure, independent of either
  /// backend's rewrite granularity.
  uint64_t moved_runs = 0;
  /// Records copied (everything outside the stable prefix).
  uint64_t moved_records = 0;
  /// Pages fetched from the current backend to assemble the moved runs.
  uint64_t pages_read = 0;
  /// Pages produced in the proposed backend for the moved region.
  uint64_t pages_written = 0;
  /// Whole partitions fetched / produced; 0 when the corresponding side
  /// rewrites at run granularity (PackedLayout).
  uint64_t partitions_read = 0;
  uint64_t partitions_written = 0;

  /// Total page traffic of the rewrite — the movement cost the recluster
  /// planner charges against expected-cost improvement.
  uint64_t pages_moved() const { return pages_read + pages_written; }
};

/// Prices rewriting `current` into `proposed`. Both backends must pack the
/// same number of cells and records (same grid, same fact table); they need
/// not be the same backend kind — each side is priced at its own rewrite
/// granularity. Identical cell orders cost exactly zero.
Result<MovementCost> ComputeMovementCost(const StorageBackend& current,
                                         const StorageBackend& proposed);

}  // namespace snakes

#endif  // SNAKES_RECLUSTER_MOVEMENT_H_
