#ifndef SNAKES_RECLUSTER_ENGINE_H_
#define SNAKES_RECLUSTER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/cost_model.h"
#include "cost/workload_cost.h"
#include "lattice/workload.h"
#include "lattice/workload_delta.h"
#include "obs/obs.h"
#include "recluster/movement.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "util/result.h"

namespace snakes {

/// Knobs of the incremental reclustering engine.
struct ReclusterConfig {
  /// EWMA smoothing weight for the workload estimate (lattice/workload_delta).
  double ewma_alpha = 0.3;
  /// Skip re-advising entirely when the epoch's total-variation drift
  /// against the running estimate is below this (0 = always re-advise).
  double readvise_drift_threshold = 0.0;
  /// Queries expected per epoch: converts per-query expected-cost
  /// improvement into the benefit side of the net-benefit score.
  double queries_per_epoch = 1000.0;
  /// Unitless multiplier on the modeled movement time (a write-amplification
  /// fudge: rewrite pipelines rarely run at the model's read bandwidth).
  /// Historically this was "seek units per page moved"; both sides of the
  /// net-benefit score are now denominated in model milliseconds.
  double movement_cost_per_page = 1.0;
  /// Hard ceiling on pages a single re-layout may touch (0 = unlimited).
  uint64_t movement_budget_pages = 0;
  /// Flap guard: adopt only when the relative improvement
  /// (current - proposed) / current exceeds this fraction.
  double hysteresis_min_improvement = 0.0;
  /// Flap guard: epochs after an adoption during which no further
  /// re-layout is adopted.
  int cooldown_epochs = 0;
  /// Strategy families to evaluate (empty = all registered).
  std::vector<std::string> strategies;
  /// Threads for the advisor's evaluation engine (0 = hardware).
  int num_threads = 1;
  CostEvalMode cost_mode = CostEvalMode::kAuto;
  StorageConfig storage;
  /// Storage representation the engine packs adopted layouts into.
  StorageBackendKind backend = StorageBackendKind::kPacked;
  /// Time model pricing both sides of the net-benefit score
  /// (cost/cost_model.h). Null = the analytic default. The model never
  /// changes which strategy ranks best — only whether an improvement is
  /// worth its movement, so an hdd and an ssd model can legitimately
  /// disagree about adopting the same re-layout.
  std::shared_ptr<const CostModel> cost_model;
  ObsSink obs;
};

/// Why an epoch kept or changed the physical layout.
enum class ReclusterDecision {
  /// First advised epoch: the initial layout is adopted unconditionally.
  kInitialAdopt,
  /// A cheaper layout cleared every guard; the re-layout is adopted.
  kAdopt,
  /// Drift since the running estimate was below readvise_drift_threshold;
  /// no re-advise was performed.
  kKeepDriftBelowThreshold,
  /// The advisor's best strategy is the current one (or no cheaper one).
  kKeepAlreadyOptimal,
  /// Within the post-adoption cooldown window.
  kKeepCooldown,
  /// Improvement below the hysteresis threshold.
  kKeepBelowHysteresis,
  /// The re-layout would exceed movement_budget_pages.
  kKeepOverBudget,
  /// Improvement positive but the movement cost eats it: net benefit <= 0.
  kKeepNegativeNetBenefit,
};

/// Short stable name ("adopt", "keep-cooldown", ...) for reports.
const char* ReclusterDecisionName(ReclusterDecision decision);

/// What one epoch did and what it cost to find out.
struct EpochReport {
  uint64_t epoch = 0;
  /// Total-variation drift of the epoch against the running estimate.
  double drift = 0.0;
  ReclusterDecision decision = ReclusterDecision::kKeepDriftBelowThreshold;
  std::string current_strategy;
  std::string proposed_strategy;
  /// Expected cost (seeks/query) of the current and the proposed layout
  /// under the smoothed workload estimate; equal when no change proposed.
  double current_cost = 0.0;
  double proposed_cost = 0.0;
  /// (current - proposed) / current; 0 when nothing cheaper was found.
  double relative_improvement = 0.0;
  /// benefit_ms - movement_ms * movement_cost_per_page; both sides priced by
  /// the engine's CostModel so the score is denominated in milliseconds.
  double net_benefit = 0.0;
  /// improvement_in_seeks * model.SeekMs() * queries_per_epoch — the epoch's
  /// modeled query-time savings from adopting the proposed layout.
  double benefit_ms = 0.0;
  /// Modeled time of the rewrite itself (read + write sides of `movement`
  /// priced through the CostModel), before the movement_cost_per_page scale.
  double movement_ms = 0.0;
  /// Rank-run movement price of the proposed re-layout (all zero when no
  /// move was priced — analytic mode, or the epoch kept early).
  MovementCost movement;
  /// Per-class cost evaluations this epoch (cache misses) and evaluations
  /// avoided (hits) — the incremental-recompute savings.
  uint64_t cost_evaluations = 0;
  uint64_t cost_cache_hits = 0;
  /// Full advisor output when the epoch re-advised.
  std::optional<Recommendation> recommendation;

  std::string ToString() const;
};

/// Replays a sequence of workload epochs against a fact table, re-advising
/// incrementally and re-laying the table only when the net benefit is
/// positive and every guard (hysteresis, budget, cooldown) passes:
///
///   ReclusterEngine engine(schema, facts, config);
///   for (const Workload& mu : epochs) {
///     auto report = engine.OnEpoch(mu);          // advises + decides
///     ... engine.current() is the live layout ...
///   }
///
/// `facts` may be null: the engine then scores layouts analytically and
/// adopts without pricing movement (movement stays zero, the budget is not
/// consulted). Not thread-safe; one epoch at a time.
class ReclusterEngine {
 public:
  ReclusterEngine(std::shared_ptr<const StarSchema> schema,
                  std::shared_ptr<const FactTable> facts,
                  ReclusterConfig config);

  /// Observes one epoch's workload, re-advises (incrementally) when drift
  /// warrants, prices the best re-layout, and adopts or keeps.
  Result<EpochReport> OnEpoch(const Workload& epoch_mu);

  /// The live clustering; null until the first advised epoch adopts.
  std::shared_ptr<const Linearization> current() const { return current_; }
  /// The live storage backend; null until first adoption or when `facts` is
  /// null. Shared so a serving layer can publish the backend as an epoch and
  /// let in-flight readers keep it alive after the engine adopts a
  /// replacement (double-buffering: the engine never mutates a published
  /// backend, it swaps in a freshly packed one).
  std::shared_ptr<const StorageBackend> current_backend() const {
    return current_backend_;
  }

  /// The representation adopted layouts are packed into.
  StorageBackendKind backend_kind() const { return config_.backend; }

  /// Repacks the live clustering into `kind` and makes it the engine's
  /// storage representation for every later adoption. Returns the new live
  /// backend — the same object when the kind is already current, null when
  /// nothing is adopted yet or the engine is analytic (null facts; the kind
  /// still switches for later use).
  Result<std::shared_ptr<const StorageBackend>> SwitchBackend(
      StorageBackendKind kind);

  /// Swaps the time model used by every later epoch's net-benefit score
  /// (null = back to the analytic default). Cached per-class costs are
  /// model-independent and stay valid — switching models never invalidates
  /// the advisor state.
  void SetCostModel(std::shared_ptr<const CostModel> model) {
    config_.cost_model = std::move(model);
  }
  /// The model the next epoch will price with (the analytic default when the
  /// config holds none).
  const CostModel& cost_model() const {
    return config_.cost_model != nullptr ? *config_.cost_model
                                         : *DefaultCostModel();
  }

  const IncrementalAdvisorState& state() const { return state_; }
  const EwmaDriftEstimator& estimator() const { return estimator_; }
  uint64_t epochs_seen() const { return epochs_seen_; }
  uint64_t adoptions() const { return adoptions_; }

 private:
  /// Expected cost of the current strategy under `mu`, from the ranked
  /// report when present, else measured through the cost cache.
  double CurrentCostUnder(const Workload& mu, const Recommendation& rec);

  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const FactTable> facts_;
  ReclusterConfig config_;
  ClusteringAdvisor advisor_;
  EwmaDriftEstimator estimator_;
  IncrementalAdvisorState state_;
  std::shared_ptr<const Linearization> current_;
  std::shared_ptr<const StorageBackend> current_backend_;
  uint64_t epochs_seen_ = 0;
  uint64_t adoptions_ = 0;
  int cooldown_remaining_ = 0;
};

}  // namespace snakes

#endif  // SNAKES_RECLUSTER_ENGINE_H_
