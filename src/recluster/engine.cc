#include "recluster/engine.h"

#include <utility>

#include "cost/cost_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/text_table.h"

namespace snakes {

const char* ReclusterDecisionName(ReclusterDecision decision) {
  switch (decision) {
    case ReclusterDecision::kInitialAdopt:
      return "initial-adopt";
    case ReclusterDecision::kAdopt:
      return "adopt";
    case ReclusterDecision::kKeepDriftBelowThreshold:
      return "keep-drift-below-threshold";
    case ReclusterDecision::kKeepAlreadyOptimal:
      return "keep-already-optimal";
    case ReclusterDecision::kKeepCooldown:
      return "keep-cooldown";
    case ReclusterDecision::kKeepBelowHysteresis:
      return "keep-below-hysteresis";
    case ReclusterDecision::kKeepOverBudget:
      return "keep-over-budget";
    case ReclusterDecision::kKeepNegativeNetBenefit:
      return "keep-negative-net-benefit";
  }
  return "unknown";
}

std::string EpochReport::ToString() const {
  std::string out = "epoch " + std::to_string(epoch) + ": " +
                    ReclusterDecisionName(decision) +
                    " (drift " + FormatDouble(drift, 4) + ")\n";
  out += "  current  " + current_strategy + " cost " +
         FormatDouble(current_cost, 4) + "\n";
  out += "  proposed " + proposed_strategy + " cost " +
         FormatDouble(proposed_cost, 4) + " (improvement " +
         FormatDouble(100.0 * relative_improvement, 2) + "%, net benefit " +
         FormatDouble(net_benefit, 2) + " ms = " +
         FormatDouble(benefit_ms, 2) + " saved - " +
         FormatDouble(movement_ms, 2) + " rewrite)\n";
  out += "  movement: " + std::to_string(movement.pages_moved()) +
         " pages (" + std::to_string(movement.moved_runs) + " runs, " +
         std::to_string(movement.moved_records) + " records, stable prefix " +
         std::to_string(movement.stable_prefix_cells) + "/" +
         std::to_string(movement.total_cells) + " cells";
  if (movement.partitions_read + movement.partitions_written > 0) {
    out += ", partitions " + std::to_string(movement.partitions_read) +
           " read / " + std::to_string(movement.partitions_written) +
           " written";
  }
  out += ")\n";
  out += "  recompute: " + std::to_string(cost_evaluations) +
         " class evaluations, " + std::to_string(cost_cache_hits) +
         " cached\n";
  return out;
}

ReclusterEngine::ReclusterEngine(std::shared_ptr<const StarSchema> schema,
                                 std::shared_ptr<const FactTable> facts,
                                 ReclusterConfig config)
    : schema_(std::move(schema)),
      facts_(std::move(facts)),
      config_(std::move(config)),
      advisor_(schema_),
      estimator_(QueryClassLattice(*schema_), config_.ewma_alpha) {}

double ReclusterEngine::CurrentCostUnder(const Workload& mu,
                                         const Recommendation& rec) {
  for (const StrategyReport& report : rec.ranked) {
    if (report.name == current_->name()) return report.expected_cost;
  }
  // The live strategy fell out of the evaluated set (config change between
  // epochs); measure it directly, still through the memo.
  return MeasureExpectedCostCached(mu, *current_, &state_.cost_cache,
                                   config_.obs, config_.cost_mode);
}

Result<EpochReport> ReclusterEngine::OnEpoch(const Workload& epoch_mu) {
  ScopedSpan span(config_.obs.tracer, "recluster/epoch", "recluster");
  {
    Status observed = estimator_.Observe(epoch_mu);
    if (!observed.ok()) return observed;
  }
  ++epochs_seen_;
  const bool in_cooldown = cooldown_remaining_ > 0;
  if (in_cooldown) --cooldown_remaining_;

  EpochReport report;
  report.epoch = epochs_seen_;
  report.drift = estimator_.LastDrift();
  report.current_strategy = current_ != nullptr ? current_->name() : "";
  span.AddArg("drift", report.drift);
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("recluster.epochs")->Inc();
  }

  // A quiet epoch (and an already-adopted layout) skips the advisor
  // entirely; the drift estimator alone absorbs the observation.
  if (current_ != nullptr && state_.advises > 0 &&
      report.drift < config_.readvise_drift_threshold) {
    report.decision = ReclusterDecision::kKeepDriftBelowThreshold;
    report.proposed_strategy = report.current_strategy;
    span.AddArg("decision", ReclusterDecisionName(report.decision));
    return report;
  }

  const Workload mu = estimator_.Smoothed();
  EvaluationRequest request{mu};
  request.strategies = config_.strategies;
  request.num_threads = config_.num_threads;
  request.cost_mode = config_.cost_mode;
  request.obs = config_.obs;
  SNAKES_ASSIGN_OR_RETURN(Recommendation rec,
                          advisor_.AdviseIncremental(request, &state_));
  report.cost_evaluations = state_.last_cost_evaluations;
  report.cost_cache_hits = state_.last_cost_hits;
  if (config_.obs.metrics != nullptr) {
    MetricsRegistry& metrics = *config_.obs.metrics;
    metrics.GetCounter("recluster.classes_recomputed")
        ->Inc(report.cost_evaluations);
    metrics.GetCounter("recluster.cache_hits")->Inc(report.cost_cache_hits);
    metrics.GetCounter("recluster.cache_misses")->Inc(report.cost_evaluations);
  }
  if (!rec.has_best()) {
    return Status::InvalidArgument(
        "recluster: no strategy family applies to the schema");
  }
  const std::string best_name = rec.best().name;
  const double best_cost = rec.best().expected_cost;
  std::shared_ptr<const Linearization> best_lin = rec.best().linearization;
  report.proposed_strategy = best_name;
  report.proposed_cost = best_cost;

  const auto finish = [&](ReclusterDecision decision) -> EpochReport {
    report.decision = decision;
    span.AddArg("decision", ReclusterDecisionName(decision));
    report.recommendation = std::move(rec);
    return std::move(report);
  };

  const auto adopt = [&]() -> Status {
    current_ = best_lin;
    if (facts_ != nullptr) {
      // Initial adoption packs fresh; re-adoptions already packed the
      // proposed backend to price the movement.
      if (current_backend_ == nullptr ||
          &current_backend_->linearization() != best_lin.get()) {
        SNAKES_ASSIGN_OR_RETURN(
            current_backend_,
            MakeStorageBackend(config_.backend, best_lin, facts_,
                               config_.storage, config_.obs));
      }
    }
    ++adoptions_;
    cooldown_remaining_ = config_.cooldown_epochs;
    if (config_.obs.metrics != nullptr) {
      config_.obs.metrics->GetCounter("recluster.adoptions")->Inc();
    }
    return Status::OK();
  };

  if (current_ == nullptr) {
    report.current_strategy = best_name;
    report.current_cost = best_cost;
    SNAKES_RETURN_IF_ERROR(adopt());
    return finish(ReclusterDecision::kInitialAdopt);
  }

  report.current_cost = CurrentCostUnder(mu, rec);
  if (best_name == current_->name() || best_cost >= report.current_cost ||
      report.current_cost <= 0.0) {
    report.proposed_cost = best_cost;
    return finish(ReclusterDecision::kKeepAlreadyOptimal);
  }
  const double improvement_seeks = report.current_cost - best_cost;
  report.relative_improvement = improvement_seeks / report.current_cost;
  if (in_cooldown) return finish(ReclusterDecision::kKeepCooldown);
  if (report.relative_improvement < config_.hysteresis_min_improvement) {
    return finish(ReclusterDecision::kKeepBelowHysteresis);
  }

  uint64_t pages_moved = 0;
  std::shared_ptr<const StorageBackend> proposed_backend;
  if (facts_ != nullptr && current_backend_ != nullptr) {
    SNAKES_ASSIGN_OR_RETURN(
        proposed_backend,
        MakeStorageBackend(config_.backend, best_lin, facts_, config_.storage,
                           config_.obs));
    SNAKES_ASSIGN_OR_RETURN(
        report.movement,
        ComputeMovementCost(*current_backend_, *proposed_backend));
    pages_moved = report.movement.pages_moved();
    if (config_.movement_budget_pages > 0 &&
        pages_moved > config_.movement_budget_pages) {
      return finish(ReclusterDecision::kKeepOverBudget);
    }
  }
  // Both sides of the score in model milliseconds: the benefit is the
  // epoch's saved query time (expected_cost is seeks/query), the cost is
  // the modeled rewrite time. Read and write sides each pay one positioning
  // op per moved run (or per partition at partition granularity) plus their
  // page traffic; movement_cost_per_page scales the total as a unitless
  // write-amplification multiplier.
  const CostModel& model = cost_model();
  report.benefit_ms =
      improvement_seeks * model.SeekMs() * config_.queries_per_epoch;
  if (pages_moved > 0) {
    CostFeatures rewrite;
    rewrite.seeks = static_cast<double>(
        report.movement.partitions_read + report.movement.partitions_written >
                0
            ? report.movement.partitions_read +
                  report.movement.partitions_written
            : 2 * report.movement.moved_runs);
    rewrite.pages = static_cast<double>(pages_moved);
    rewrite.records = static_cast<double>(report.movement.moved_records);
    rewrite.runs = static_cast<double>(report.movement.moved_runs);
    report.movement_ms =
        model.EstimateMs(rewrite, config_.storage.page_size_bytes);
  }
  report.net_benefit =
      report.benefit_ms - report.movement_ms * config_.movement_cost_per_page;
  if (proposed_backend != nullptr && report.net_benefit <= 0.0) {
    return finish(ReclusterDecision::kKeepNegativeNetBenefit);
  }

  if (proposed_backend != nullptr) {
    current_backend_ = std::move(proposed_backend);
  }
  SNAKES_RETURN_IF_ERROR(adopt());
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("recluster.pages_moved")->Inc(pages_moved);
  }
  return finish(ReclusterDecision::kAdopt);
}

Result<std::shared_ptr<const StorageBackend>> ReclusterEngine::SwitchBackend(
    StorageBackendKind kind) {
  if (kind == config_.backend) return current_backend_;
  config_.backend = kind;
  if (current_ == nullptr || facts_ == nullptr) {
    // Nothing adopted yet (or analytic engine): later adoptions pack into
    // the new representation; there is no live backend to convert.
    return std::shared_ptr<const StorageBackend>();
  }
  SNAKES_ASSIGN_OR_RETURN(
      current_backend_,
      MakeStorageBackend(kind, current_, facts_, config_.storage,
                         config_.obs));
  if (config_.obs.metrics != nullptr) {
    config_.obs.metrics->GetCounter("recluster.backend_switches")->Inc();
  }
  return current_backend_;
}

}  // namespace snakes
