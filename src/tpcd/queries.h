#ifndef SNAKES_TPCD_QUERIES_H_
#define SNAKES_TPCD_QUERIES_H_

#include <string>
#include <vector>

#include "lattice/query_class.h"
#include "lattice/workload.h"
#include "util/result.h"

namespace snakes {
namespace tpcd {

/// One of the TPC-D benchmark query types that reads LineItem as a grid
/// query (Section 6.1 found 7 of the 17 query types qualify; the rest skip
/// LineItem or join it through Orders first). The class vector follows the
/// paper's "slight modifications ... to fit our choices of dimension
/// hierarchies": selections are rounded to the nearest hierarchy level in
/// (parts, supplier, time) order.
struct BenchmarkQuery {
  std::string name;         // "Q6"
  std::string description;  // what the query selects after adaptation
  QueryClass cls;           // grid query class (parts, supplier, time)
};

/// The seven adapted LineItem query types.
std::vector<BenchmarkQuery> BenchmarkQueries();

/// A workload putting the given weights on the benchmark query classes
/// (weights need not be normalized). With equal weights this is the "TPC-D
/// query mix" used by the examples.
Result<Workload> BenchmarkMixWorkload(const QueryClassLattice& lattice,
                                      const std::vector<double>& weights = {});

}  // namespace tpcd
}  // namespace snakes

#endif  // SNAKES_TPCD_QUERIES_H_
