#ifndef SNAKES_TPCD_WORKLOADS_H_
#define SNAKES_TPCD_WORKLOADS_H_

#include <string>
#include <vector>

#include "lattice/workload.h"
#include "util/result.h"

namespace snakes {
namespace tpcd {

/// Per-dimension level-probability ramps of Section 6.2: the workload
/// generator divides each dimension's probability mass across its levels
/// either evenly, ramping up (mass toward high/coarse levels), or ramping
/// down (mass toward low/fine levels).
enum class Ramp {
  kUp = 0,    // 3 levels: (0.1, 0.3, 0.6); 2 levels: (0.2, 0.8)
  kEven = 1,  // 3 levels: (0.33, 0.33, 0.34); 2 levels: (0.5, 0.5)
  kDown = 2,  // 3 levels: (0.6, 0.3, 0.1); 2 levels: (0.8, 0.2)
};

/// The probability of each of the `num_levels` lattice levels under `ramp`.
/// Uses the paper's exact vectors for 2 and 3 levels and a ratio-3 geometric
/// ramp for other level counts.
std::vector<double> RampProbabilities(int num_levels, Ramp ramp);

/// One of the paper's 27 product-form workloads over a 3-dimensional
/// lattice. Ids run 1..27 as
///   id = 1 + 9 * ramp(parts) + 3 * ramp(supplier) + ramp(time)
/// with Ramp codes up=0, even=1, down=2; this numbering makes workload 7 =
/// (parts up, supplier down, time up), the workload Section 6.3 singles out
/// ("low probabilities in lower levels of the time and parts hierarchies ...
/// the opposite in the supplier dimension").
Result<Workload> SectionSixWorkload(const QueryClassLattice& lattice, int id);

/// All 27 workloads, in id order.
Result<std::vector<Workload>> AllSectionSixWorkloads(
    const QueryClassLattice& lattice);

/// "parts:up supplier:down time:up" — the ramp assignment behind `id`.
std::string DescribeWorkload(int id);

}  // namespace tpcd
}  // namespace snakes

#endif  // SNAKES_TPCD_WORKLOADS_H_
