#include "tpcd/workloads.h"

#include "util/logging.h"

namespace snakes {
namespace tpcd {

std::vector<double> RampProbabilities(int num_levels, Ramp ramp) {
  SNAKES_CHECK(num_levels >= 1);
  if (num_levels == 1) return {1.0};
  if (ramp == Ramp::kEven) {
    if (num_levels == 2) return {0.5, 0.5};
    if (num_levels == 3) return {0.33, 0.33, 0.34};
    return std::vector<double>(static_cast<size_t>(num_levels),
                               1.0 / num_levels);
  }
  std::vector<double> probs;
  if (num_levels == 2) {
    probs = {0.2, 0.8};
  } else if (num_levels == 3) {
    probs = {0.1, 0.3, 0.6};
  } else {
    // Ratio-3 geometric ramp, normalized (generalizes the paper's vectors).
    double w = 1.0, total = 0.0;
    probs.resize(static_cast<size_t>(num_levels));
    for (auto& p : probs) {
      p = w;
      total += w;
      w *= 3.0;
    }
    for (auto& p : probs) p /= total;
  }
  if (ramp == Ramp::kDown) {
    std::vector<double> reversed(probs.rbegin(), probs.rend());
    return reversed;
  }
  return probs;
}

namespace {

constexpr int kNumWorkloads = 27;

Ramp RampOfCode(int code) {
  switch (code) {
    case 0:
      return Ramp::kUp;
    case 1:
      return Ramp::kEven;
    default:
      return Ramp::kDown;
  }
}

const char* RampName(int code) {
  switch (code) {
    case 0:
      return "up";
    case 1:
      return "even";
    default:
      return "down";
  }
}

}  // namespace

Result<Workload> SectionSixWorkload(const QueryClassLattice& lattice, int id) {
  if (id < 1 || id > kNumWorkloads) {
    return Status::InvalidArgument("workload id must be 1..27");
  }
  if (lattice.num_dims() != 3) {
    return Status::InvalidArgument(
        "Section 6 workloads need the 3-dimensional TPC-D lattice");
  }
  const int index = id - 1;
  const int codes[3] = {index / 9, (index / 3) % 3, index % 3};
  std::vector<std::vector<double>> level_probs;
  for (int d = 0; d < 3; ++d) {
    level_probs.push_back(
        RampProbabilities(lattice.levels(d) + 1, RampOfCode(codes[d])));
  }
  return Workload::Product(lattice, level_probs);
}

Result<std::vector<Workload>> AllSectionSixWorkloads(
    const QueryClassLattice& lattice) {
  std::vector<Workload> all;
  all.reserve(kNumWorkloads);
  for (int id = 1; id <= kNumWorkloads; ++id) {
    SNAKES_ASSIGN_OR_RETURN(Workload w, SectionSixWorkload(lattice, id));
    all.push_back(std::move(w));
  }
  return all;
}

std::string DescribeWorkload(int id) {
  SNAKES_CHECK(id >= 1 && id <= kNumWorkloads);
  const int index = id - 1;
  std::string out = "parts:";
  out += RampName(index / 9);
  out += " supplier:";
  out += RampName((index / 3) % 3);
  out += " time:";
  out += RampName(index % 3);
  return out;
}

}  // namespace tpcd
}  // namespace snakes
