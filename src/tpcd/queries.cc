#include "tpcd/queries.h"

namespace snakes {
namespace tpcd {

std::vector<BenchmarkQuery> BenchmarkQueries() {
  // Levels: parts part(0)/mfgr(1)/all(2); supplier supplier(0)/all(1);
  // time month(0)/year(1)/all(2).
  return {
      {"Q1", "pricing summary: ship month cutoff; no part/supplier selection",
       QueryClass{2, 1, 0}},
      {"Q5", "local supplier volume: one supplier group, one year",
       QueryClass{2, 0, 1}},
      {"Q6", "forecast revenue: one ship year; no part/supplier selection",
       QueryClass{2, 1, 1}},
      {"Q7", "volume shipping: one supplier, one year", QueryClass{2, 0, 1}},
      {"Q8", "market share: one manufacturer, one year",
       QueryClass{1, 1, 1}},
      {"Q9", "product-type profit: one manufacturer, one supplier, one year",
       QueryClass{1, 0, 1}},
      {"Q14", "promotion effect: one manufacturer, one ship month",
       QueryClass{1, 1, 0}},
  };
}

Result<Workload> BenchmarkMixWorkload(const QueryClassLattice& lattice,
                                      const std::vector<double>& weights) {
  const std::vector<BenchmarkQuery> queries = BenchmarkQueries();
  if (!weights.empty() && weights.size() != queries.size()) {
    return Status::InvalidArgument("need one weight per benchmark query (" +
                                   std::to_string(queries.size()) + ")");
  }
  std::vector<std::pair<QueryClass, double>> masses;
  for (size_t i = 0; i < queries.size(); ++i) {
    masses.emplace_back(queries[i].cls, weights.empty() ? 1.0 : weights[i]);
  }
  return Workload::FromMasses(lattice, masses, /*normalize=*/true);
}

}  // namespace tpcd
}  // namespace snakes
