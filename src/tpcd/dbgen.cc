#include "tpcd/dbgen.h"

#include <algorithm>
#include <memory>

namespace snakes {
namespace tpcd {

Result<std::shared_ptr<const FactTable>> GenerateLineItems(
    const Config& config, std::shared_ptr<const StarSchema> schema,
    uint64_t seed) {
  if (schema->num_dims() != 3 ||
      schema->extent(kPartsDim) != config.num_parts() ||
      schema->extent(kSupplierDim) != config.num_suppliers ||
      schema->extent(kTimeDim) != config.num_months()) {
    return Status::InvalidArgument("schema does not match the TPC-D config");
  }
  Rng rng(seed);
  auto facts = std::make_shared<FactTable>(schema);

  std::unique_ptr<ZipfSampler> part_sampler;
  if (config.part_skew_theta > 0.0) {
    part_sampler = std::make_unique<ZipfSampler>(config.num_parts(),
                                                 config.part_skew_theta);
  }

  const uint64_t num_months = config.num_months();
  CellCoord coord;
  coord.resize(3);
  for (uint64_t order = 0; order < config.num_orders; ++order) {
    const uint64_t order_month = rng.Below(num_months);
    const uint64_t lineitems = 1 + rng.Below(7);
    for (uint64_t l = 0; l < lineitems; ++l) {
      const uint64_t part = part_sampler ? part_sampler->Sample(&rng)
                                         : rng.Below(config.num_parts());
      const uint64_t supplier = rng.Below(config.num_suppliers);
      // Ship 0..3 months after the order (the spec's 1..121-day delay),
      // clamped to the observation window.
      const uint64_t ship_month =
          std::min(order_month + rng.Below(4), num_months - 1);
      const double quantity = 1.0 + static_cast<double>(rng.Below(50));
      const double unit_price = 900.0 + static_cast<double>(rng.Below(100'000)) / 100.0;
      coord[kPartsDim] = part;
      coord[kSupplierDim] = supplier;
      coord[kTimeDim] = ship_month;
      facts->AddRecord(coord, quantity * unit_price);
    }
  }
  return std::shared_ptr<const FactTable>(std::move(facts));
}

Result<Warehouse> GenerateWarehouse(const Config& config, uint64_t seed) {
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const StarSchema> schema,
                          BuildSharedSchema(config));
  SNAKES_ASSIGN_OR_RETURN(std::shared_ptr<const FactTable> facts,
                          GenerateLineItems(config, schema, seed));
  return Warehouse{config, std::move(schema), std::move(facts)};
}

}  // namespace tpcd
}  // namespace snakes
