#ifndef SNAKES_TPCD_SCHEMA_H_
#define SNAKES_TPCD_SCHEMA_H_

#include <cstdint>
#include <memory>

#include "hierarchy/star_schema.h"
#include "util/result.h"

namespace snakes {
namespace tpcd {

/// Shape of the TPC-D–style warehouse of Section 6.1. The fact table is
/// LineItem; the dimensions and hierarchies are
///   parts:    part(0)     -> manufacturer(1) -> all(2),  fanouts (parts_per_mfgr, num_mfgrs)
///   supplier: supplier(0) -> all(1),                     fanout  (num_suppliers)
///   time:     month(0)    -> year(1) -> all(2),          fanouts (months_per_year, num_years)
/// matching the paper's "12 months, 7 years, 5 manufacturers supplying an
/// average of 40 parts, and 10 suppliers". `parts_per_mfgr` is the fanout
/// swept by Tables 5 and 6 (4 / 10 / 40).
struct Config {
  uint64_t parts_per_mfgr = 40;
  uint64_t num_mfgrs = 5;
  uint64_t num_suppliers = 10;
  uint64_t months_per_year = 12;
  uint64_t num_years = 7;

  /// LineItem generation scale: the expected number of order rows; each
  /// order carries 1..7 lineitems (TPC-D's L_ORDERKEY multiplicity), so the
  /// fact table holds ~4x this many records. The paper does not state its
  /// TPC-D scale factor; the default (~1.6M lineitems, TPC-D SF ~0.27,
  /// ~9.5 records / ~1.2 KB per cell of the 200x10x84 grid) is calibrated so
  /// the measured I/O regime matches the magnitudes Tables 4-6 report: the
  /// snaked optimal path wins seeks nearly everywhere with single-digit
  /// averages, and the worst row-major reads ~4x the minimum blocks at
  /// fanout 40. bench/ablation_density sweeps this knob; at much higher
  /// density page-level seeks converge to the cell-level cost model, at
  /// much lower density scattered queries degrade into sequential scans.
  uint64_t num_orders = 400'000;

  /// Optional Zipf exponent skewing part popularity (0 = uniform, the TPC-D
  /// default). An extension knob for sensitivity studies.
  double part_skew_theta = 0.0;

  uint64_t num_parts() const { return parts_per_mfgr * num_mfgrs; }
  uint64_t num_months() const { return months_per_year * num_years; }
};

/// Dimension indices of the TPC-D schema, in schema order.
inline constexpr int kPartsDim = 0;
inline constexpr int kSupplierDim = 1;
inline constexpr int kTimeDim = 2;

/// Builds the 3-dimensional star schema for `config`.
Result<StarSchema> BuildSchema(const Config& config);

/// Convenience: BuildSchema wrapped in a shared_ptr.
Result<std::shared_ptr<const StarSchema>> BuildSharedSchema(
    const Config& config);

}  // namespace tpcd
}  // namespace snakes

#endif  // SNAKES_TPCD_SCHEMA_H_
