#ifndef SNAKES_TPCD_DBGEN_H_
#define SNAKES_TPCD_DBGEN_H_

#include <memory>

#include "storage/fact_table.h"
#include "tpcd/schema.h"
#include "util/result.h"
#include "util/rng.h"

namespace snakes {
namespace tpcd {

/// Synthetic LineItem generator — the library's substitute for the TPC-D
/// `dbgen` tool (which ships scripts and C sources we reimplement from the
/// spec's distributions):
///   * orders arrive uniformly over the num_years * months_per_year window;
///   * each order carries 1..7 lineitems (uniform, per L_ORDERKEY fanout);
///   * every lineitem picks a part (uniform, or Zipf when
///     config.part_skew_theta > 0) and a supplier (uniform);
///   * SHIPDATE = order month + a 0..3-month ship delay (the spec's 1..121
///     days), clamped to the window;
///   * the measure is an extended-price-like value quantity * unit price.
/// Deterministic for a given seed.
Result<std::shared_ptr<const FactTable>> GenerateLineItems(
    const Config& config, std::shared_ptr<const StarSchema> schema,
    uint64_t seed = 19990601);

/// BuildSharedSchema + GenerateLineItems in one call.
struct Warehouse {
  Config config;
  std::shared_ptr<const StarSchema> schema;
  std::shared_ptr<const FactTable> facts;
};
Result<Warehouse> GenerateWarehouse(const Config& config,
                                    uint64_t seed = 19990601);

}  // namespace tpcd
}  // namespace snakes

#endif  // SNAKES_TPCD_DBGEN_H_
