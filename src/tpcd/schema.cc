#include "tpcd/schema.h"

namespace snakes {
namespace tpcd {

Result<StarSchema> BuildSchema(const Config& config) {
  if (config.parts_per_mfgr == 0 || config.num_mfgrs == 0 ||
      config.num_suppliers == 0 || config.months_per_year == 0 ||
      config.num_years == 0) {
    return Status::InvalidArgument("all TPC-D extents must be >= 1");
  }
  SNAKES_ASSIGN_OR_RETURN(
      Hierarchy parts,
      Hierarchy::Uniform("parts", {config.parts_per_mfgr, config.num_mfgrs},
                         {"part", "mfgr", "all"}));
  SNAKES_ASSIGN_OR_RETURN(
      Hierarchy supplier,
      Hierarchy::Uniform("supplier", {config.num_suppliers},
                         {"supplier", "all"}));
  SNAKES_ASSIGN_OR_RETURN(
      Hierarchy time,
      Hierarchy::Uniform("time", {config.months_per_year, config.num_years},
                         {"month", "year", "all"}));
  return StarSchema::Make(
      "tpcd-lineitem",
      {std::move(parts), std::move(supplier), std::move(time)});
}

Result<std::shared_ptr<const StarSchema>> BuildSharedSchema(
    const Config& config) {
  SNAKES_ASSIGN_OR_RETURN(StarSchema schema, BuildSchema(config));
  return std::shared_ptr<const StarSchema>(
      std::make_shared<StarSchema>(std::move(schema)));
}

}  // namespace tpcd
}  // namespace snakes
