#ifndef SNAKES_HIERARCHY_DIMENSION_TABLE_H_
#define SNAKES_HIERARCHY_DIMENSION_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "util/result.h"

namespace snakes {

/// A dimension table: the labels of every hierarchy member, level by level —
/// the paper's `location(state, city, lid)` and `jeans(type, gender, jid)`
/// relations. Grid queries select members by label ("state = NY"); this
/// class resolves labels to the (level, block) positions the grid machinery
/// works with.
class DimensionTable {
 public:
  /// Builds from a hierarchy plus labels for every level:
  /// labels_per_level[l][b] names block b of level l, for l = 0..num_levels
  /// (level num_levels has the single label of the "all" member). Labels
  /// must be unique within a level.
  static Result<DimensionTable> Make(
      Hierarchy hierarchy, std::vector<std::vector<std::string>> labels);

  /// Builds hierarchy and labels together from a member tree (leaves may be
  /// unbalanced; dummy nodes spliced per Section 4.1 inherit the label of
  /// the member they stand for). The root's label names the top level.
  static Result<DimensionTable> FromTree(std::string name,
                                         const HierarchyNode& root);

  const Hierarchy& hierarchy() const { return hierarchy_; }
  const std::string& name() const { return hierarchy_.name(); }

  /// The label of block `block` at `level`.
  const std::string& label(int level, uint64_t block) const;

  /// The block with label `label` at `level`, or NotFound.
  Result<uint64_t> BlockOf(int level, std::string_view label) const;

  /// Searches every level bottom-up for `label`; returns (level, block).
  /// Ambiguous labels resolve to the lowest level carrying them.
  Result<std::pair<int, uint64_t>> Find(std::string_view label) const;

 private:
  DimensionTable(Hierarchy hierarchy,
                 std::vector<std::vector<std::string>> labels)
      : hierarchy_(std::move(hierarchy)), labels_(std::move(labels)) {}

  Hierarchy hierarchy_;
  // labels_[l][b] — label of block b at level l.
  std::vector<std::vector<std::string>> labels_;
};

}  // namespace snakes

#endif  // SNAKES_HIERARCHY_DIMENSION_TABLE_H_
