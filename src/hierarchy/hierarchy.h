#ifndef SNAKES_HIERARCHY_HIERARCHY_H_
#define SNAKES_HIERARCHY_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace snakes {

/// Maximum number of dimensions supported by the fixed-capacity coordinate
/// types. Real star schemas have a handful of dimensions; the paper uses 2-3.
inline constexpr int kMaxDimensions = 8;

/// A node of a user-supplied dimension-hierarchy tree, used to build
/// (possibly unbalanced) hierarchies from explicit member trees. Leaves are
/// nodes without children. See Hierarchy::FromTree.
struct HierarchyNode {
  /// Member label ("levi's", "NY", ...). Used in reports only.
  std::string label;
  std::vector<HierarchyNode> children;
};

/// A balanced level hierarchy on one dimension of a star schema.
///
/// Levels are counted from the leaves: level 0 is the leaf (finest) level and
/// level `num_levels()` is the single root ("all"). `fanout(i)` for
/// 1 <= i <= num_levels() is the paper's f(d, i): the average number of
/// level-(i-1) children per level-i node.
///
/// Two representations are supported behind one interface:
///  * uniform  — every level-i node has exactly the same child count; all
///    block computations are closed-form (this covers the paper's balanced
///    complete hierarchies and the TPC-D schema);
///  * explicit — per-node child counts vary; leaf->ancestor maps use sorted
///    block-boundary arrays. Unbalanced trees are first balanced by inserting
///    dummy chain nodes (Section 4.1 of the paper), which yields per-level
///    *average* fanouts that may be fractional.
class Hierarchy {
 public:
  /// Builds a uniform hierarchy. `fanouts[i-1]` is the exact child count of
  /// every node at level i, for i = 1..fanouts.size(). Every fanout must be
  /// >= 1; an empty list yields the trivial one-cell hierarchy.
  /// `level_names`, if non-empty, must have fanouts.size() + 1 entries naming
  /// levels 0..num_levels (e.g. {"part", "mfgr", "all"}).
  static Result<Hierarchy> Uniform(std::string name,
                                   std::vector<uint64_t> fanouts,
                                   std::vector<std::string> level_names = {});

  /// Builds a (balanced) hierarchy with per-node child counts.
  /// `children_per_level[i-1]` lists, left to right, the child count of every
  /// node at level i; the node counts must telescope (the number of entries
  /// at level i equals the sum of entries one level up, with a single root).
  static Result<Hierarchy> Explicit(
      std::string name, std::vector<std::vector<uint64_t>> children_per_level,
      std::vector<std::string> level_names = {});

  /// Builds a hierarchy from an explicit member tree whose leaves may sit at
  /// different depths. The tree is balanced by splicing in dummy chain nodes
  /// (one parent, one child) directly above shallow leaves, exactly as
  /// Section 4.1 prescribes, then converted to the explicit representation.
  static Result<Hierarchy> FromTree(std::string name,
                                    const HierarchyNode& root);

  /// Dimension name ("parts", "time", ...).
  const std::string& name() const { return name_; }

  /// Number of aggregation levels above the leaves (the paper's l_d). The
  /// trivial hierarchy has 0.
  int num_levels() const { return static_cast<int>(num_blocks_.size()) - 1; }

  /// Total leaf count (the extent of this dimension in the data grid).
  uint64_t num_leaves() const { return num_blocks_[0]; }

  /// Number of blocks (nodes) at `level`; level 0 gives num_leaves() and
  /// level num_levels() gives 1.
  uint64_t num_blocks(int level) const;

  /// Average fanout f(d, level) for 1 <= level <= num_levels():
  /// num_blocks(level-1) / num_blocks(level). Integral for uniform
  /// hierarchies; may be fractional after dummy-node balancing.
  double avg_fanout(int level) const;

  /// Exact integral fanout at `level` for uniform hierarchies. Requires
  /// is_uniform().
  uint64_t uniform_fanout(int level) const;

  /// True when every node at each level has the same child count.
  bool is_uniform() const { return uniform_; }

  /// Index (within its level) of the level-`level` ancestor of `leaf`.
  /// AncestorAt(x, 0) == x; AncestorAt(x, num_levels()) == 0.
  uint64_t AncestorAt(uint64_t leaf, int level) const;

  /// Half-open leaf range [first, last) covered by block `block` of `level`.
  void BlockLeafRange(int level, uint64_t block, uint64_t* first,
                      uint64_t* last) const;

  /// Number of leaves under block `block` of `level`.
  uint64_t BlockLeafCount(int level, uint64_t block) const;

  /// Name of `level` if provided at construction, else "L<level>".
  std::string level_name(int level) const;

 private:
  Hierarchy() = default;

  Status Validate() const;

  std::string name_;
  std::vector<std::string> level_names_;
  bool uniform_ = true;
  // uniform representation: block_size_[i] = leaves per level-i block.
  std::vector<uint64_t> block_size_;
  // num_blocks_[i] = node count at level i (num_blocks_[0] = leaves).
  std::vector<uint64_t> num_blocks_;
  // explicit representation: boundaries_[i][b] = first leaf of block b at
  // level i+1 (boundaries_[i] has num_blocks_[i+1] + 1 entries, the last
  // being num_leaves()). Empty when uniform_.
  std::vector<std::vector<uint64_t>> boundaries_;
};

}  // namespace snakes

#endif  // SNAKES_HIERARCHY_HIERARCHY_H_
