#include "hierarchy/hierarchy.h"

#include <algorithm>

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

Result<Hierarchy> Hierarchy::Uniform(std::string name,
                                     std::vector<uint64_t> fanouts,
                                     std::vector<std::string> level_names) {
  Hierarchy h;
  h.name_ = std::move(name);
  h.uniform_ = true;
  const int levels = static_cast<int>(fanouts.size());
  for (int i = 0; i < levels; ++i) {
    if (fanouts[i] == 0) {
      return Status::InvalidArgument("fanout at level " + std::to_string(i + 1) +
                                     " must be >= 1 in dimension " + h.name_);
    }
  }
  h.block_size_.resize(levels + 1);
  h.num_blocks_.resize(levels + 1);
  h.block_size_[0] = 1;
  for (int i = 1; i <= levels; ++i) {
    h.block_size_[i] = CheckedMul(h.block_size_[i - 1], fanouts[i - 1]);
  }
  for (int i = 0; i <= levels; ++i) {
    h.num_blocks_[i] = h.block_size_[levels] / h.block_size_[i];
  }
  if (!level_names.empty()) {
    if (static_cast<int>(level_names.size()) != levels + 1) {
      return Status::InvalidArgument(
          "level_names must have num_levels + 1 entries in dimension " +
          h.name_);
    }
    h.level_names_ = std::move(level_names);
  }
  SNAKES_RETURN_IF_ERROR(h.Validate());
  return h;
}

Result<Hierarchy> Hierarchy::Explicit(
    std::string name, std::vector<std::vector<uint64_t>> children_per_level,
    std::vector<std::string> level_names) {
  // Check the telescoping shape: level L has a single root; the entry count
  // at level i equals the number of children declared one level up.
  const int levels = static_cast<int>(children_per_level.size());
  if (levels == 0) return Uniform(std::move(name), {}, std::move(level_names));

  // children_per_level[i-1] describes level i's nodes. Walk top-down.
  uint64_t expected_nodes = 1;
  for (int i = levels; i >= 1; --i) {
    const auto& counts = children_per_level[i - 1];
    if (counts.size() != expected_nodes) {
      return Status::InvalidArgument(
          "dimension " + name + ": level " + std::to_string(i) + " declares " +
          std::to_string(counts.size()) + " nodes, expected " +
          std::to_string(expected_nodes));
    }
    uint64_t total = 0;
    for (uint64_t c : counts) {
      if (c == 0) {
        return Status::InvalidArgument("dimension " + name +
                                       ": zero child count at level " +
                                       std::to_string(i));
      }
      total = CheckedAdd(total, c);
    }
    expected_nodes = total;
  }
  const uint64_t num_leaves = expected_nodes;

  Hierarchy h;
  h.name_ = std::move(name);
  h.num_blocks_.resize(levels + 1);
  h.num_blocks_[0] = num_leaves;
  for (int i = 1; i <= levels; ++i) {
    h.num_blocks_[i] = children_per_level[i - 1].size();
  }

  // Detect the uniform case so the fast path still applies.
  h.uniform_ = true;
  for (int i = 1; i <= levels && h.uniform_; ++i) {
    const auto& counts = children_per_level[i - 1];
    for (uint64_t c : counts) {
      if (c != counts[0]) {
        h.uniform_ = false;
        break;
      }
    }
  }

  if (h.uniform_) {
    h.block_size_.resize(levels + 1);
    h.block_size_[0] = 1;
    for (int i = 1; i <= levels; ++i) {
      h.block_size_[i] =
          CheckedMul(h.block_size_[i - 1], children_per_level[i - 1][0]);
    }
  } else {
    // Build leaf boundaries bottom-up: at level 1 the blocks partition leaves
    // directly; at level i each block spans a run of level-(i-1) blocks.
    h.boundaries_.resize(levels);
    std::vector<uint64_t> below_start(num_leaves + 1);  // leaf start of each
    for (uint64_t b = 0; b <= num_leaves; ++b) below_start[b] = b;
    uint64_t below_count = num_leaves;
    for (int i = 1; i <= levels; ++i) {
      const auto& counts = children_per_level[i - 1];
      auto& bounds = h.boundaries_[i - 1];
      bounds.resize(counts.size() + 1);
      uint64_t child = 0;
      for (size_t b = 0; b < counts.size(); ++b) {
        bounds[b] = below_start[child];
        child += counts[b];
      }
      SNAKES_CHECK(child == below_count)
          << "hierarchy level " << i << " child counts do not telescope";
      bounds[counts.size()] = below_start[below_count];
      // Prepare for next level: current blocks become the children.
      below_start.assign(bounds.begin(), bounds.end());
      below_count = counts.size();
    }
  }

  if (!level_names.empty()) {
    if (static_cast<int>(level_names.size()) != levels + 1) {
      return Status::InvalidArgument(
          "level_names must have num_levels + 1 entries in dimension " +
          h.name_);
    }
    h.level_names_ = std::move(level_names);
  }
  SNAKES_RETURN_IF_ERROR(h.Validate());
  return h;
}

namespace {

int TreeDepth(const HierarchyNode& node) {
  int depth = 0;
  for (const auto& child : node.children) {
    depth = std::max(depth, 1 + TreeDepth(child));
  }
  return depth;
}

// Collects, per level (1-based, counted from the *bottom* of the balanced
// tree), the child count of every node in DFS order. Dummy chain nodes
// (child count 1) are added above leaves shallower than `depth`.
void CollectCounts(const HierarchyNode& node, int height,
                   std::vector<std::vector<uint64_t>>* counts) {
  // `height` = number of levels below this node in the balanced tree.
  if (node.children.empty()) {
    // A leaf lifted to height > 0 becomes a dummy chain down to level 0.
    for (int h = height; h >= 1; --h) {
      (*counts)[h - 1].push_back(1);
    }
    return;
  }
  (*counts)[height - 1].push_back(node.children.size());
  for (const auto& child : node.children) {
    CollectCounts(child, height - 1, counts);
  }
}

}  // namespace

Result<Hierarchy> Hierarchy::FromTree(std::string name,
                                      const HierarchyNode& root) {
  const int depth = TreeDepth(root);
  if (depth == 0) return Uniform(std::move(name), {});
  std::vector<std::vector<uint64_t>> counts(depth);
  CollectCounts(root, depth, &counts);
  // CollectCounts appends per level in DFS order, which for a balanced tree
  // is exactly left-to-right within each level.
  return Explicit(std::move(name), std::move(counts));
}

Status Hierarchy::Validate() const {
  if (num_blocks_.empty() || num_blocks_.back() != 1) {
    return Status::Internal("dimension " + name_ + ": no single root");
  }
  for (size_t i = 1; i < num_blocks_.size(); ++i) {
    if (num_blocks_[i] > num_blocks_[i - 1]) {
      return Status::Internal("dimension " + name_ +
                              ": node counts must shrink going up");
    }
  }
  return Status::OK();
}

uint64_t Hierarchy::num_blocks(int level) const {
  SNAKES_CHECK(level >= 0 && level <= num_levels())
      << "level " << level << " out of range in dimension " << name_;
  return num_blocks_[level];
}

double Hierarchy::avg_fanout(int level) const {
  SNAKES_CHECK(level >= 1 && level <= num_levels())
      << "fanout level " << level << " out of range in dimension " << name_;
  return static_cast<double>(num_blocks_[level - 1]) /
         static_cast<double>(num_blocks_[level]);
}

uint64_t Hierarchy::uniform_fanout(int level) const {
  SNAKES_CHECK(uniform_) << "uniform_fanout on non-uniform dimension " << name_;
  SNAKES_CHECK(level >= 1 && level <= num_levels())
      << "fanout level " << level << " out of range in dimension " << name_;
  return block_size_[level] / block_size_[level - 1];
}

uint64_t Hierarchy::AncestorAt(uint64_t leaf, int level) const {
  SNAKES_DCHECK(leaf < num_leaves());
  SNAKES_DCHECK(level >= 0 && level <= num_levels());
  if (level == 0) return leaf;
  if (uniform_) return leaf / block_size_[level];
  const auto& bounds = boundaries_[level - 1];
  // Find the block whose [bounds[b], bounds[b+1]) range contains the leaf.
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), leaf);
  return static_cast<uint64_t>(it - bounds.begin()) - 1;
}

void Hierarchy::BlockLeafRange(int level, uint64_t block, uint64_t* first,
                               uint64_t* last) const {
  SNAKES_DCHECK(level >= 0 && level <= num_levels());
  SNAKES_DCHECK(block < num_blocks(level));
  if (level == 0) {
    *first = block;
    *last = block + 1;
    return;
  }
  if (uniform_) {
    *first = block * block_size_[level];
    *last = *first + block_size_[level];
    return;
  }
  const auto& bounds = boundaries_[level - 1];
  *first = bounds[block];
  *last = bounds[block + 1];
}

uint64_t Hierarchy::BlockLeafCount(int level, uint64_t block) const {
  uint64_t first, last;
  BlockLeafRange(level, block, &first, &last);
  return last - first;
}

std::string Hierarchy::level_name(int level) const {
  SNAKES_CHECK(level >= 0 && level <= num_levels());
  if (!level_names_.empty()) return level_names_[level];
  return "L" + std::to_string(level);
}

}  // namespace snakes
