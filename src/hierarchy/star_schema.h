#ifndef SNAKES_HIERARCHY_STAR_SCHEMA_H_
#define SNAKES_HIERARCHY_STAR_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "util/fixed_vector.h"
#include "util/result.h"

namespace snakes {

/// A cell coordinate in the k-dimensional data grid: one leaf index per
/// dimension.
using CellCoord = FixedVector<uint64_t, kMaxDimensions>;

/// A flattened cell id in [0, num_cells()). The flattening is row-major with
/// the *last* dimension varying fastest; it is a storage-independent identity
/// for cells, not a clustering order.
using CellId = uint64_t;

/// A star schema: k dimensions, each with a balanced level hierarchy, viewed
/// together as a k-dimensional grid of cells (the cross product of the leaf
/// domains). The fact table conceptually assigns zero or more records to each
/// cell; this class only describes the geometry.
class StarSchema {
 public:
  /// Builds a schema from 1..kMaxDimensions dimensions. Fails if the cell
  /// count would overflow uint64.
  static Result<StarSchema> Make(std::string name,
                                 std::vector<Hierarchy> dimensions);

  /// Convenience: the paper's representative schema — `k` dimensions, each a
  /// complete `levels`-level hierarchy of uniform `fanout` (Section 5's
  /// square binary grids are Symmetric(2, n, 2)).
  static Result<StarSchema> Symmetric(int k, int levels, uint64_t fanout);

  const std::string& name() const { return name_; }
  int num_dims() const { return static_cast<int>(dims_.size()); }
  const Hierarchy& dim(int d) const { return dims_[static_cast<size_t>(d)]; }

  /// Total number of grid cells (product of leaf counts).
  uint64_t num_cells() const { return num_cells_; }

  /// Extent (leaf count) of dimension `d`.
  uint64_t extent(int d) const { return dims_[static_cast<size_t>(d)].num_leaves(); }

  /// Flattens a coordinate to a cell id (last dimension fastest).
  CellId Flatten(const CellCoord& coord) const;

  /// Inverse of Flatten.
  CellCoord Unflatten(CellId id) const;

  /// Sum over dimensions of hierarchy levels (the paper's "total number of
  /// hierarchy levels"); the lattice has prod(l_d + 1) points.
  int total_levels() const;

  /// Number of points in the query-class lattice, prod_d (l_d + 1).
  uint64_t lattice_size() const;

 private:
  StarSchema() = default;

  std::string name_;
  std::vector<Hierarchy> dims_;
  uint64_t num_cells_ = 1;
  // stride_[d] = product of extents of dimensions after d.
  std::vector<uint64_t> stride_;
};

}  // namespace snakes

#endif  // SNAKES_HIERARCHY_STAR_SCHEMA_H_
