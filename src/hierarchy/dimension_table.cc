#include "hierarchy/dimension_table.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace snakes {

Result<DimensionTable> DimensionTable::Make(
    Hierarchy hierarchy, std::vector<std::vector<std::string>> labels) {
  if (static_cast<int>(labels.size()) != hierarchy.num_levels() + 1) {
    return Status::InvalidArgument(
        "need one label vector per level (0.." +
        std::to_string(hierarchy.num_levels()) + ") in dimension " +
        hierarchy.name());
  }
  for (int l = 0; l <= hierarchy.num_levels(); ++l) {
    const auto& level_labels = labels[static_cast<size_t>(l)];
    if (level_labels.size() != hierarchy.num_blocks(l)) {
      return Status::InvalidArgument(
          "level " + std::to_string(l) + " of dimension " + hierarchy.name() +
          " has " + std::to_string(hierarchy.num_blocks(l)) +
          " members but " + std::to_string(level_labels.size()) + " labels");
    }
    std::set<std::string> seen;
    for (const std::string& label : level_labels) {
      if (!seen.insert(label).second) {
        return Status::InvalidArgument("duplicate label '" + label +
                                       "' at level " + std::to_string(l) +
                                       " of dimension " + hierarchy.name());
      }
    }
  }
  return DimensionTable(std::move(hierarchy), std::move(labels));
}

namespace {

int TreeDepth(const HierarchyNode& node) {
  int depth = 0;
  for (const auto& child : node.children) {
    depth = std::max(depth, 1 + TreeDepth(child));
  }
  return depth;
}

// Mirrors hierarchy.cc's CollectCounts, but also records labels. A leaf
// lifted through dummy levels contributes its own label at every spliced
// level.
void Collect(const HierarchyNode& node, int height,
             std::vector<std::vector<uint64_t>>* counts,
             std::vector<std::vector<std::string>>* labels) {
  if (node.children.empty()) {
    // Dummy chain nodes occupy levels height..1; the leaf itself sits at
    // level 0. All of them carry the member's own label.
    for (int h = height; h >= 1; --h) {
      (*counts)[static_cast<size_t>(h - 1)].push_back(1);
      (*labels)[static_cast<size_t>(h)].push_back(node.label);
    }
    (*labels)[0].push_back(node.label);
    return;
  }
  (*labels)[static_cast<size_t>(height)].push_back(node.label);
  (*counts)[static_cast<size_t>(height - 1)].push_back(
      static_cast<uint64_t>(node.children.size()));
  for (const auto& child : node.children) {
    Collect(child, height - 1, counts, labels);
  }
}

}  // namespace

Result<DimensionTable> DimensionTable::FromTree(std::string name,
                                                const HierarchyNode& root) {
  const int depth = TreeDepth(root);
  if (depth == 0) {
    SNAKES_ASSIGN_OR_RETURN(Hierarchy h, Hierarchy::Uniform(name, {}));
    return Make(std::move(h), {{root.label}});
  }
  std::vector<std::vector<uint64_t>> counts(static_cast<size_t>(depth));
  // labels[l] for levels 0..depth; Collect writes level-l labels into
  // labels[l] except leaves, which it appends to labels[0].
  std::vector<std::vector<std::string>> labels(static_cast<size_t>(depth) + 1);
  Collect(root, depth, &counts, &labels);
  SNAKES_ASSIGN_OR_RETURN(Hierarchy h,
                          Hierarchy::Explicit(name, std::move(counts)));
  return Make(std::move(h), std::move(labels));
}

const std::string& DimensionTable::label(int level, uint64_t block) const {
  SNAKES_CHECK(level >= 0 && level <= hierarchy_.num_levels());
  SNAKES_CHECK(block < hierarchy_.num_blocks(level));
  return labels_[static_cast<size_t>(level)][block];
}

Result<uint64_t> DimensionTable::BlockOf(int level,
                                         std::string_view label) const {
  if (level < 0 || level > hierarchy_.num_levels()) {
    return Status::OutOfRange("level " + std::to_string(level) +
                              " out of range in dimension " + name());
  }
  const auto& level_labels = labels_[static_cast<size_t>(level)];
  for (uint64_t b = 0; b < level_labels.size(); ++b) {
    if (level_labels[b] == label) return b;
  }
  return Status::NotFound("no member '" + std::string(label) +
                          "' at level " + std::to_string(level) +
                          " of dimension " + name());
}

Result<std::pair<int, uint64_t>> DimensionTable::Find(
    std::string_view label) const {
  for (int l = 0; l <= hierarchy_.num_levels(); ++l) {
    auto block = BlockOf(l, label);
    if (block.ok()) return std::make_pair(l, block.value());
  }
  return Status::NotFound("no member '" + std::string(label) +
                          "' in dimension " + name());
}

}  // namespace snakes
