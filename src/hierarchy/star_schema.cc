#include "hierarchy/star_schema.h"

#include "util/logging.h"
#include "util/math.h"

namespace snakes {

Result<StarSchema> StarSchema::Make(std::string name,
                                    std::vector<Hierarchy> dimensions) {
  if (dimensions.empty()) {
    return Status::InvalidArgument("star schema needs at least one dimension");
  }
  if (dimensions.size() > kMaxDimensions) {
    return Status::InvalidArgument("star schema limited to " +
                                   std::to_string(kMaxDimensions) +
                                   " dimensions");
  }
  StarSchema s;
  s.name_ = std::move(name);
  s.dims_ = std::move(dimensions);
  s.num_cells_ = 1;
  for (const auto& d : s.dims_) {
    s.num_cells_ = CheckedMul(s.num_cells_, d.num_leaves());
  }
  s.stride_.resize(s.dims_.size());
  uint64_t stride = 1;
  for (int d = s.num_dims() - 1; d >= 0; --d) {
    s.stride_[static_cast<size_t>(d)] = stride;
    stride = CheckedMul(stride, s.dims_[static_cast<size_t>(d)].num_leaves());
  }
  return s;
}

Result<StarSchema> StarSchema::Symmetric(int k, int levels, uint64_t fanout) {
  if (k < 1 || levels < 0) {
    return Status::InvalidArgument("Symmetric: k >= 1, levels >= 0 required");
  }
  std::vector<Hierarchy> dims;
  dims.reserve(static_cast<size_t>(k));
  for (int d = 0; d < k; ++d) {
    std::vector<uint64_t> fanouts(static_cast<size_t>(levels), fanout);
    SNAKES_ASSIGN_OR_RETURN(
        Hierarchy h,
        Hierarchy::Uniform(std::string(1, static_cast<char>('A' + d)),
                           std::move(fanouts)));
    dims.push_back(std::move(h));
  }
  return Make("symmetric", std::move(dims));
}

CellId StarSchema::Flatten(const CellCoord& coord) const {
  SNAKES_DCHECK(static_cast<int>(coord.size()) == num_dims());
  CellId id = 0;
  for (int d = 0; d < num_dims(); ++d) {
    SNAKES_DCHECK(coord[static_cast<size_t>(d)] < extent(d));
    id += coord[static_cast<size_t>(d)] * stride_[static_cast<size_t>(d)];
  }
  return id;
}

CellCoord StarSchema::Unflatten(CellId id) const {
  SNAKES_DCHECK(id < num_cells_);
  CellCoord coord;
  coord.resize(static_cast<size_t>(num_dims()));
  for (int d = 0; d < num_dims(); ++d) {
    coord[static_cast<size_t>(d)] = id / stride_[static_cast<size_t>(d)];
    id %= stride_[static_cast<size_t>(d)];
  }
  return coord;
}

int StarSchema::total_levels() const {
  int total = 0;
  for (const auto& d : dims_) total += d.num_levels();
  return total;
}

uint64_t StarSchema::lattice_size() const {
  uint64_t size = 1;
  for (const auto& d : dims_) {
    size = CheckedMul(size, static_cast<uint64_t>(d.num_levels()) + 1);
  }
  return size;
}

}  // namespace snakes
