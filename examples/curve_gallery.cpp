// A gallery of clustering strategies on an 8x8 grid (3-level binary
// hierarchies): row-major, Z, Gray, Hilbert, and a snaked lattice path —
// each printed as a visit-rank grid with its characteristic vector,
// diagonal-edge count, and cost under two contrasting workloads. A compact
// tour of Sections 2, 3 and 5.

#include <cstdio>
#include <memory>
#include <vector>

#include "cost/edge_model.h"
#include "cost/workload_cost.h"
#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "cv/characteristic_vector.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/lattice_path.h"

using namespace snakes;

namespace {

void Show(const Linearization& lin, const Workload& uniform,
          const Workload& skewed) {
  const StarSchema& schema = lin.schema();
  const uint64_t rows = schema.extent(0), cols = schema.extent(1);
  std::vector<uint64_t> rank_of(rows * cols);
  lin.Walk([&](uint64_t rank, const CellCoord& coord) {
    rank_of[coord[0] * cols + coord[1]] = rank + 1;
  });
  std::printf("--- %s ---\n", lin.name().c_str());
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      std::printf("%3llu ",
                  static_cast<unsigned long long>(rank_of[r * cols + c]));
    }
    std::printf("\n");
  }
  const EdgeHistogram hist = MeasureEdgeHistogram(lin);
  const BinaryCV cv = BinaryCV::FromHistogram(hist).ValueOrDie();
  const ClassCostTable costs = CostsFromHistogram(schema, hist);
  std::printf("CV %s, %llu diagonal edges\n", cv.ToString().c_str(),
              static_cast<unsigned long long>(hist.NumDiagonal()));
  std::printf("expected cost: uniform %.3f | column-heavy %.3f\n\n",
              ExpectedCost(uniform, costs), ExpectedCost(skewed, costs));
}

}  // namespace

int main() {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 3, 2).ValueOrDie());
  const QueryClassLattice lattice(*schema);
  const Workload uniform = Workload::Uniform(lattice);
  // All mass on "one leaf column, all rows" queries — the class row-major
  // orders handle worst.
  QueryClass column{3, 0};
  const Workload skewed = Workload::Point(lattice, column).ValueOrDie();

  Show(*RowMajorOrder::Make(schema, {0, 1}).ValueOrDie(), uniform, skewed);
  Show(*ZCurve::Make(schema).ValueOrDie(), uniform, skewed);
  Show(*GrayCurve::Make(schema).ValueOrDie(), uniform, skewed);
  Show(*HilbertCurve::Make(schema, true).ValueOrDie(), uniform, skewed);

  const LatticePath round_robin = LatticePath::RoundRobin(lattice);
  Show(*PathOrder::Make(schema, round_robin, false).ValueOrDie(), uniform,
       skewed);
  Show(*PathOrder::Make(schema, round_robin, true).ValueOrDie(), uniform,
       skewed);

  std::printf(
      "Note how snaking zeroes the diagonal count of the round-robin path\n"
      "and how the column-heavy workload inverts the ranking: the curves\n"
      "that are good on average (Hilbert, Z) are beaten by a lattice path\n"
      "aligned with the workload (Section 7's point).\n");
  return 0;
}
