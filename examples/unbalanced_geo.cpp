// Section 4.1 end to end: a warehouse whose geography dimension is an
// UNBALANCED member tree (countries with and without a state level). The
// library balances it with dummy chain nodes, the lattice gets fractional
// average fanouts, and the whole pipeline — DP, snaking, packing, measured
// I/O — runs unchanged.
//
//   $ ./unbalanced_geo

#include <cstdio>
#include <memory>

#include "core/advisor.h"
#include "curves/path_order.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/snaked_dp.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/rng.h"

using namespace snakes;

int main() {
  // geography: two countries; the US has states above its cities, tiny
  // Monaco does not — an unbalanced tree straight from Section 4.1.
  HierarchyNode geo{
      "all",
      {
          {"us",
           {{"ny", {{"nyc", {}}, {"albany", {}}}},
            {"ca", {{"sf", {}}, {"la", {}}}}}},
          {"monaco", {{"monaco-ville", {}}}},
      }};
  Hierarchy geography = Hierarchy::FromTree("geo", geo).ValueOrDie();
  std::printf("geo dimension: %llu leaves, %d levels after balancing\n",
              static_cast<unsigned long long>(geography.num_leaves()),
              geography.num_levels());
  for (int l = 1; l <= geography.num_levels(); ++l) {
    std::printf("  level %d: %llu blocks, average fanout %.3f\n", l,
                static_cast<unsigned long long>(geography.num_blocks(l)),
                geography.avg_fanout(l));
  }

  Hierarchy product =
      Hierarchy::Uniform("product", {6, 4}, {"sku", "brand", "all"})
          .ValueOrDie();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("orders", {geography, product}).ValueOrDie());

  // Random-ish fact data.
  auto facts = std::make_shared<FactTable>(schema);
  Rng rng(99);
  for (int r = 0; r < 20000; ++r) {
    CellCoord coord;
    coord.resize(2);
    coord[0] = rng.Below(schema->extent(0));
    coord[1] = rng.Below(schema->extent(1));
    facts->AddRecord(coord, 1.0);
  }

  // Workload: mostly by-state/brand rollups, some city drill-downs.
  const QueryClassLattice lattice(*schema);
  const Workload mu =
      Workload::FromMasses(lattice,
                           {
                               {QueryClass{2, 1}, 0.5},  // state x brand
                               {QueryClass{0, 1}, 0.3},  // city x brand
                               {QueryClass{3, 0}, 0.2},  // sku everywhere
                           })
          .ValueOrDie();

  const auto dp = FindOptimalSnakedLatticePath(mu).ValueOrDie();
  std::printf("\noptimal snaked path on the balanced lattice: %s (cost %.3f)\n",
              dp.path.ToString().c_str(), dp.cost);

  // Non-uniform fanouts force the generative sweep inside MakePathOrder.
  auto order = MakePathOrder(schema, dp.path, /*snaked=*/true).ValueOrDie();
  auto layout =
      PackedLayout::Pack(std::move(order), facts, StorageConfig{8192, 125})
          .ValueOrDie();
  const auto io =
      IoSimulator::Expect(mu, IoSimulator(layout).MeasureAllClasses());
  std::printf(
      "packed %llu records into %llu pages; expected %.2f seeks and %.2fx\n"
      "minimum blocks per query under the workload.\n",
      static_cast<unsigned long long>(facts->total_records()),
      static_cast<unsigned long long>(layout.num_pages()), io.expected_seeks,
      io.expected_normalized_blocks);
  return 0;
}
