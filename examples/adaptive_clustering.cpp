// Adaptive physical design: watch a drifting query stream through the
// WorkloadEstimator, periodically re-run the snaked-cost DP, and compare the
// adaptive clustering against the static one chosen on day 1. This is the
// loop the paper's introduction motivates ("statistics compiled over the
// query stream can be used to obtain a fairly good and stable
// characterization of the distribution of queries across query classes"),
// closed end to end.
//
//   $ ./adaptive_clustering

#include <cstdio>
#include <vector>

#include "cost/workload_cost.h"
#include "lattice/estimator.h"
#include "path/snaked_dp.h"
#include "tpcd/schema.h"
#include "tpcd/workloads.h"
#include "util/rng.h"
#include "util/text_table.h"

using namespace snakes;

int main() {
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).ValueOrDie();
  const QueryClassLattice lattice(*schema);

  // The "true" workload drifts across three phases: month-grain reporting,
  // then manufacturer rollups, then supplier-centric probing.
  const std::vector<Workload> phases = {
      tpcd::SectionSixWorkload(lattice, 3).ValueOrDie(),   // time-heavy
      tpcd::SectionSixWorkload(lattice, 19).ValueOrDie(),  // parts-heavy
      tpcd::SectionSixWorkload(lattice, 7).ValueOrDie(),   // supplier probing
  };

  WorkloadEstimator estimator(lattice, /*smoothing=*/0.5, /*decay=*/0.999);
  Rng rng(515);

  // Static design: optimize once against the phase-1 estimate.
  for (int q = 0; q < 2000; ++q) {
    SNAKES_CHECK_OK(estimator.Observe(phases[0].Sample(&rng)));
  }
  const LatticePath static_path =
      FindOptimalSnakedLatticePath(estimator.Estimate()).ValueOrDie().path;

  std::printf(
      "Adaptive vs static clustering under workload drift (expected seeks\n"
      "per query on the current TRUE workload; lower is better)\n\n");
  TextTable table({"phase", "queries seen", "adaptive path", "adaptive",
                   "static (day-1)", "penalty of static"});
  for (size_t phase = 0; phase < phases.size(); ++phase) {
    const Workload& truth = phases[phase];
    for (int q = 0; q < 4000; ++q) {
      SNAKES_CHECK_OK(estimator.Observe(truth.Sample(&rng)));
    }
    const Workload estimate = estimator.Estimate();
    const LatticePath adaptive_path =
        FindOptimalSnakedLatticePath(estimate).ValueOrDie().path;
    const double adaptive = ExpectedSnakedPathCost(truth, adaptive_path);
    const double fixed = ExpectedSnakedPathCost(truth, static_path);
    table.AddRow({std::to_string(phase + 1),
                  FormatDouble(estimator.TotalObservations(), 0),
                  adaptive_path.ToString(), FormatDouble(adaptive, 2),
                  FormatDouble(fixed, 2),
                  FormatPercent(fixed / adaptive - 1.0, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The estimator's decayed counts follow the drift, the DP re-optimizes\n"
      "in O(k^2 |L|), and re-clustering recovers the widening penalty of\n"
      "the day-1 layout.\n");
  return 0;
}
