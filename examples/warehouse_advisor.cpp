// A realistic session against the TPC-D LineItem warehouse: generate the
// data (dbgen substitute), pick one of the paper's 27 workloads, get a
// clustering recommendation with measured I/O, then actually execute a few
// grid queries (COUNT + SUM of the measure) against the packed layout.
//
// The advisor run is instrumented (src/obs): the session ends with the
// metrics the run produced — where the evaluation time and the simulated
// I/O actually went.
//
//   $ ./warehouse_advisor [workload-id 1..27]   (default 7)

#include <cstdio>
#include <cstdlib>

#include "core/advisor.h"
#include "core/evaluation.h"
#include "lattice/grid_query.h"
#include "obs/metrics.h"
#include "storage/executor.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"
#include "tpcd/workloads.h"
#include "util/rng.h"

using namespace snakes;

namespace {

[[noreturn]] void Fail(const Status& status) {
  std::fprintf(stderr, "warehouse_advisor: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const int workload_id = argc > 1 ? std::atoi(argv[1]) : 7;

  tpcd::Config config;
  std::printf("generating TPC-D LineItem: %llu orders over a %llux%llux%llu "
              "grid...\n",
              static_cast<unsigned long long>(config.num_orders),
              static_cast<unsigned long long>(config.num_parts()),
              static_cast<unsigned long long>(config.num_suppliers),
              static_cast<unsigned long long>(config.num_months()));
  auto warehouse_result = tpcd::GenerateWarehouse(config);
  if (!warehouse_result.ok()) Fail(warehouse_result.status());
  const auto warehouse = std::move(warehouse_result).value();
  std::printf("%llu records, %llu of %llu cells occupied\n\n",
              static_cast<unsigned long long>(warehouse.facts->total_records()),
              static_cast<unsigned long long>(
                  warehouse.facts->NumOccupiedCells()),
              static_cast<unsigned long long>(warehouse.facts->num_cells()));

  const ClusteringAdvisor advisor(warehouse.schema);
  auto mu = tpcd::SectionSixWorkload(advisor.Lattice(), workload_id);
  if (!mu.ok()) Fail(mu.status());
  std::printf("workload %d: %s\n\n", workload_id,
              tpcd::DescribeWorkload(workload_id).c_str());

  // The request/plan API: name the families to score, ask for measured
  // storage I/O, and let the engine fan the candidates out across threads.
  MetricsRegistry metrics;
  EvaluationRequest request(mu.value());
  request.measure_storage = true;
  request.facts = warehouse.facts;
  request.obs = {&metrics, nullptr};
  auto rec = advisor.Advise(request);
  if (!rec.ok()) Fail(rec.status());
  std::printf("%s\n", rec->ToString().c_str());

  // Bulk-load along the recommendation and run a few queries for real.
  auto order_result = advisor.RecommendedOrder(mu.value());
  if (!order_result.ok()) Fail(order_result.status());
  auto layout_result =
      PackedLayout::Pack(std::move(order_result).value(), warehouse.facts);
  if (!layout_result.ok()) Fail(layout_result.status());
  const auto layout = std::move(layout_result).value();
  const IoSimulator sim(layout);
  std::printf("packed into %llu pages of %llu bytes\n\n",
              static_cast<unsigned long long>(layout.num_pages()),
              static_cast<unsigned long long>(layout.config().page_size_bytes));

  Rng rng(2026);
  std::printf("sample grid queries against the packed layout:\n");
  for (const tpcd::BenchmarkQuery& bq : tpcd::BenchmarkQueries()) {
    const GridQuery q = SampleQuery(*warehouse.schema, bq.cls, &rng);
    const QueryIo io = sim.Measure(q);
    // Aggregate the measure over the selected cells (a real SUM answer).
    const CellBox box = BoxOf(*warehouse.schema, q);
    double sum = 0.0;
    for (uint64_t p = box.lo[0]; p < box.hi[0]; ++p) {
      for (uint64_t s = box.lo[1]; s < box.hi[1]; ++s) {
        for (uint64_t t = box.lo[2]; t < box.hi[2]; ++t) {
          CellCoord coord;
          coord.resize(3);
          coord[0] = p;
          coord[1] = s;
          coord[2] = t;
          sum += warehouse.facts->measure_sum(warehouse.schema->Flatten(coord));
        }
      }
    }
    std::printf(
        "  %-4s class %s: %8llu rows, SUM(price*qty) = %14.2f | %5llu pages, "
        "%3llu seeks (min %llu pages)\n",
        bq.name.c_str(), bq.cls.ToString().c_str(),
        static_cast<unsigned long long>(io.records), sum,
        static_cast<unsigned long long>(io.pages),
        static_cast<unsigned long long>(io.seeks),
        static_cast<unsigned long long>(io.min_pages));
  }

  std::printf("\nadvisor run metrics (see tools/obs_report for traces):\n%s",
              metrics.Snapshot().ToTable().c_str());
  return 0;
}
