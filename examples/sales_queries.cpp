// The paper's Section-2 warehouse, end to end and on real disk pages:
// build the jeans/location star schema WITH member labels (the dimension
// tables of Figure 1), load sales records, cluster the fact file with the
// advisor's snaked optimal path, write an actual binary file, and run the
// paper's queries Q1 and Q2 — typed as text — against it.
//
//   $ ./sales_queries

#include <cstdio>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "core/query_parser.h"
#include "hierarchy/dimension_table.h"
#include "storage/disk_model.h"
#include "storage/file_store.h"
#include "storage/pager.h"
#include "util/rng.h"

using namespace snakes;

int main() {
  // Dimension tables, exactly Figure 1's members.
  const DimensionTable location =
      DimensionTable::Make(
          Hierarchy::Uniform("location", {2, 2}, {"city", "state", "all"})
              .ValueOrDie(),
          {{"toronto", "ottawa", "albany", "nyc"}, {"ONT", "NY"}, {"any"}})
          .ValueOrDie();
  const DimensionTable jeans =
      DimensionTable::Make(
          Hierarchy::Uniform("jeans", {2, 2}, {"style", "type", "all"})
              .ValueOrDie(),
          {{"men's levi's", "women's levi's", "men's gitano",
            "women's gitano"},
           {"levi's", "gitano"},
           {"any jeans"}})
          .ValueOrDie();
  const std::vector<DimensionTable> tables{location, jeans};
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("sales", {location.hierarchy(), jeans.hierarchy()})
          .ValueOrDie());

  // Sales records (amounts are the measure; several rows per cell).
  auto facts = std::make_shared<FactTable>(schema);
  Rng rng(1999);
  for (int r = 0; r < 5000; ++r) {
    CellCoord coord;
    coord.resize(2);
    coord[0] = rng.Below(4);
    coord[1] = rng.Below(4);
    facts->AddRecord(coord, 10.0 + static_cast<double>(rng.Below(90)));
  }

  // Expected workload: Q1-style state x type queries dominate, with some
  // Q2-style state rollups and point lookups.
  const ClusteringAdvisor advisor(schema);
  const Workload mu =
      Workload::FromMasses(advisor.Lattice(),
                           {{QueryClass{1, 1}, 0.5},
                            {QueryClass{1, 2}, 0.3},
                            {QueryClass{0, 0}, 0.2}})
          .ValueOrDie();
  auto order = advisor.RecommendedOrder(mu).ValueOrDie();
  std::printf("clustering: %s\n", order->name().c_str());

  // Pack and write a real file (tiny pages so the toy data spans several).
  auto layout = std::make_shared<PackedLayout>(
      PackedLayout::Pack(std::move(order), facts, StorageConfig{512, 32})
          .ValueOrDie());
  const std::string path = "/tmp/snakes_sales.bin";
  auto store = FileStore::Create(path, layout).ValueOrDie();
  std::printf("wrote %llu bytes (%llu pages) to %s\n\n",
              static_cast<unsigned long long>(store.file_bytes()),
              static_cast<unsigned long long>(layout->num_pages()),
              path.c_str());

  // The paper's queries, as text.
  const DiskModel disk;
  for (const char* text : {
           "location=NY jeans=levi's",  // Q1
           "location=ONT",              // Q2 (grouped fetch)
           "location.city=toronto jeans=\"women's gitano\"",
           "",  // full scan
       }) {
    const GridQuery q =
        ParseGridQuery(*schema, tables, text).ValueOrDie();
    const QueryAnswer a = store.Execute(q).ValueOrDie();
    std::printf(
        "select sum(sale) where %-45s -> class %s: SUM=%9.0f over %4llu "
        "rows; %3llu pages, %2llu seeks (~%.1f ms)\n",
        text[0] ? text : "(nothing: whole grid)", q.cls.ToString().c_str(),
        a.sum, static_cast<unsigned long long>(a.count),
        static_cast<unsigned long long>(a.io.pages),
        static_cast<unsigned long long>(a.io.seeks),
        disk.QueryMs(a.io, layout->config().page_size_bytes));
  }
  return 0;
}
