// Quickstart: the toy warehouse of the paper's Figure 1 — a sales fact
// table over a jeans dimension (style -> type -> all) and a location
// dimension (city -> state -> all) — advised end to end.
//
//   $ ./quickstart
//
// Steps: declare hierarchies, state an expected workload over query
// classes, build an EvaluationRequest, inspect the advisor's plan, evaluate
// it in parallel, and print the recommended snaked clustering as a grid.
// Every fallible step checks its Status instead of dying on the happy path.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "core/evaluation.h"
#include "curves/path_order.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "util/logging.h"

using namespace snakes;

namespace {

[[noreturn]] void Fail(const Status& status) {
  std::fprintf(stderr, "quickstart: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  // 1. Dimensions. Both hierarchies are 2-level binary, as in Figure 1:
  //    jeans: {men's levi's, women's levi's, men's gitano, women's gitano}
  //    grouped by type; location: {toronto, ottawa, albany, nyc} grouped by
  //    state.
  auto location =
      Hierarchy::Uniform("location", {2, 2}, {"city", "state", "all"});
  if (!location.ok()) Fail(location.status());
  auto jeans = Hierarchy::Uniform("jeans", {2, 2}, {"style", "type", "all"});
  if (!jeans.ok()) Fail(jeans.status());
  auto schema_result =
      StarSchema::Make("sales", {location.value(), jeans.value()});
  if (!schema_result.ok()) Fail(schema_result.status());
  auto schema =
      std::make_shared<StarSchema>(std::move(schema_result).value());
  std::printf("schema '%s': %d dims, %llu cells, %llu query classes\n\n",
              schema->name().c_str(), schema->num_dims(),
              static_cast<unsigned long long>(schema->num_cells()),
              static_cast<unsigned long long>(schema->lattice_size()));

  // 2. Workload: "30% of queries ask about sales of jeans by type across
  //    some state; 25% ask overall jeans sales by individual city; the rest
  //    spread evenly" — frequencies per query class, exactly the statistics
  //    a DBA collects from a query log.
  const ClusteringAdvisor advisor(schema);
  const QueryClassLattice lattice = advisor.Lattice();
  auto mu = Workload::FromMasses(lattice,
                                 {
                                     {QueryClass{1, 1}, 0.30},  // state x type
                                     {QueryClass{0, 2}, 0.25},  // city, any jeans
                                     {QueryClass{0, 0}, 0.15},  // cell lookups
                                     {QueryClass{2, 2}, 0.10},  // full scans
                                     {QueryClass{1, 2}, 0.10},  // state totals
                                     {QueryClass{2, 1}, 0.10},  // type totals
                                 });
  if (!mu.ok()) Fail(mu.status());

  // 3. Request -> plan -> evaluate. The request names strategy families from
  //    the registry (empty = all of them) and picks the engine's thread
  //    count; the plan shows what will be scored and why anything was
  //    skipped, before any evaluation work happens.
  EvaluationRequest request(mu.value());
  request.num_threads = 0;  // 0 = one worker per hardware thread
  auto plan = advisor.Plan(request);
  if (!plan.ok()) Fail(plan.status());
  std::printf("%s\n", plan->ToString().c_str());

  auto rec = advisor.Evaluate(*plan);
  if (!rec.ok()) Fail(rec.status());
  std::printf("%s\n", rec->ToString().c_str());

  // 4. The physical order to bulk-load with: rank -> cell.
  auto order = advisor.RecommendedOrder(mu.value());
  if (!order.ok()) Fail(order.status());
  std::printf("recommended clustering '%s' as a grid (visit ranks):\n\n",
              (*order)->name().c_str());
  std::vector<uint64_t> rank_of(schema->num_cells());
  (*order)->Walk([&](uint64_t rank, const CellCoord& coord) {
    rank_of[coord[0] * 4 + coord[1]] = rank + 1;
  });
  for (uint64_t r = 0; r < 4; ++r) {
    for (uint64_t c = 0; c < 4; ++c) {
      std::printf("%3llu ",
                  static_cast<unsigned long long>(rank_of[r * 4 + c]));
    }
    std::printf("\n");
  }
  std::printf(
      "\nrows = location cities, columns = jeans styles; snaked loops keep\n"
      "every state x type block contiguous for the dominant query class.\n");
  return 0;
}
