// Quickstart: the toy warehouse of the paper's Figure 1 — a sales fact
// table over a jeans dimension (style -> type -> all) and a location
// dimension (city -> state -> all) — advised end to end.
//
//   $ ./quickstart
//
// Steps: declare hierarchies, state an expected workload over query
// classes, let the advisor run the optimal-lattice-path DP, and print the
// recommended snaked clustering as a grid.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "curves/path_order.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "util/logging.h"

using namespace snakes;

int main() {
  // 1. Dimensions. Both hierarchies are 2-level binary, as in Figure 1:
  //    jeans: {men's levi's, women's levi's, men's gitano, women's gitano}
  //    grouped by type; location: {toronto, ottawa, albany, nyc} grouped by
  //    state.
  Hierarchy location =
      Hierarchy::Uniform("location", {2, 2}, {"city", "state", "all"})
          .ValueOrDie();
  Hierarchy jeans =
      Hierarchy::Uniform("jeans", {2, 2}, {"style", "type", "all"})
          .ValueOrDie();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("sales", {location, jeans}).ValueOrDie());
  std::printf("schema '%s': %d dims, %llu cells, %llu query classes\n\n",
              schema->name().c_str(), schema->num_dims(),
              static_cast<unsigned long long>(schema->num_cells()),
              static_cast<unsigned long long>(schema->lattice_size()));

  // 2. Workload: "30% of queries ask about sales of jeans by type across
  //    some state; 25% ask overall jeans sales by individual city; the rest
  //    spread evenly" — frequencies per query class, exactly the statistics
  //    a DBA collects from a query log.
  const ClusteringAdvisor advisor(schema);
  const QueryClassLattice lattice = advisor.Lattice();
  const Workload mu =
      Workload::FromMasses(lattice,
                           {
                               {QueryClass{1, 1}, 0.30},  // state x type
                               {QueryClass{0, 2}, 0.25},  // city, any jeans
                               {QueryClass{0, 0}, 0.15},  // cell lookups
                               {QueryClass{2, 2}, 0.10},  // full scans
                               {QueryClass{1, 2}, 0.10},  // state totals
                               {QueryClass{2, 1}, 0.10},  // type totals
                           })
          .ValueOrDie();

  // 3. Advise: runs the Figure-4 dynamic program, applies snaking
  //    (Section 5), and compares against row-major and curve baselines.
  const Recommendation rec = advisor.Advise(mu).ValueOrDie();
  std::printf("%s\n", rec.ToString().c_str());

  // 4. The physical order to bulk-load with: rank -> cell.
  const auto order = advisor.RecommendedOrder(mu).ValueOrDie();
  std::printf("recommended clustering '%s' as a grid (visit ranks):\n\n",
              order->name().c_str());
  std::vector<uint64_t> rank_of(schema->num_cells());
  order->Walk([&](uint64_t rank, const CellCoord& coord) {
    rank_of[coord[0] * 4 + coord[1]] = rank + 1;
  });
  for (uint64_t r = 0; r < 4; ++r) {
    for (uint64_t c = 0; c < 4; ++c) {
      std::printf("%3llu ",
                  static_cast<unsigned long long>(rank_of[r * 4 + c]));
    }
    std::printf("\n");
  }
  std::printf(
      "\nrows = location cities, columns = jeans styles; snaked loops keep\n"
      "every state x type block contiguous for the dominant query class.\n");
  return 0;
}
