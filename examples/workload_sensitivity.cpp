// How the optimal lattice path tracks the workload: sweeps a one-parameter
// family of workloads on the TPC-D schema — interpolating from "all mass on
// fine per-part queries" to "all mass on coarse rollups" — and reports the
// DP's chosen path, its cost, the snaked cost, and the snaking benefit at
// each step. Demonstrates the core thesis: clustering should follow the
// workload, and the DP makes that cheap to recompute.

#include <cstdio>
#include <vector>

#include "cost/workload_cost.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "path/snaking.h"
#include "tpcd/schema.h"
#include "util/text_table.h"

using namespace snakes;

int main() {
  tpcd::Config config;
  const auto schema = tpcd::BuildSharedSchema(config).ValueOrDie();
  const QueryClassLattice lattice(*schema);

  std::printf(
      "Optimal lattice path vs workload mix on the TPC-D schema\n"
      "(alpha interpolates fine, per-part probing -> coarse rollups)\n\n");
  TextTable table({"alpha", "optimal path (parts,supplier,time)", "cost",
                   "snaked cost", "snaking gain"});
  for (int step = 0; step <= 10; ++step) {
    const double alpha = step / 10.0;
    // Fine endpoint: drill-downs at part/supplier/month granularity.
    // Coarse endpoint: rollups by manufacturer/year and full aggregates.
    std::vector<std::pair<QueryClass, double>> masses = {
        {QueryClass{0, 0, 0}, (1 - alpha) * 0.5},
        {QueryClass{0, 1, 0}, (1 - alpha) * 0.3},
        {QueryClass{0, 0, 1}, (1 - alpha) * 0.2},
        {QueryClass{1, 1, 1}, alpha * 0.4},
        {QueryClass{2, 1, 1}, alpha * 0.3},
        {QueryClass{1, 1, 2}, alpha * 0.3},
    };
    const Workload mu =
        Workload::FromMasses(lattice, masses, /*normalize=*/true)
            .ValueOrDie();
    const auto dp = FindOptimalLatticePath(mu).ValueOrDie();
    const double snaked = ExpectedSnakedPathCost(mu, dp.path);
    table.AddRow({FormatDouble(alpha, 1), dp.path.ToString(),
                  FormatDouble(dp.cost, 3), FormatDouble(snaked, 3),
                  FormatPercent(1.0 - snaked / dp.cost, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "As mass shifts to coarse classes the path climbs the dimensions in a\n"
      "different order — physical design follows the query log, computed in\n"
      "microseconds by the dynamic program (Section 4).\n");
  return 0;
}
