#!/usr/bin/env bash
# CI gate: build Release and ThreadSanitizer configurations and run the full
# test suite under both. Usage: tools/check.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${1:-$(nproc)}"

run_matrix_entry() {
  local name="$1"; shift
  local build_dir="$ROOT/build-$name"
  echo "==> [$name] configure"
  cmake -B "$build_dir" -S "$ROOT" "$@"
  echo "==> [$name] build"
  cmake --build "$build_dir" -j "$JOBS"
  echo "==> [$name] ctest"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_matrix_entry release -DCMAKE_BUILD_TYPE=Release
# TSAN_OPTIONS makes any race a hard failure instead of a report.
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  run_matrix_entry tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSNAKES_SANITIZE=thread

echo "==> all configurations passed"
