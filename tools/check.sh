#!/usr/bin/env bash
# CI gate: build Release, ASan+UBSan and ThreadSanitizer configurations and
# run the full test suite under each. Usage: tools/check.sh [jobs]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${1:-$(nproc)}"

run_matrix_entry() {
  local name="$1"; shift
  local build_dir="$ROOT/build-$name"
  echo "==> [$name] configure"
  cmake -B "$build_dir" -S "$ROOT" "$@"
  echo "==> [$name] build"
  cmake --build "$build_dir" -j "$JOBS"
  echo "==> [$name] ctest"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_matrix_entry release -DCMAKE_BUILD_TYPE=Release
# ASan+UBSan catches lifetime/bounds bugs the run-decomposition recursions
# could hide; halt_on_error turns any report into a hard failure.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  run_matrix_entry asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNAKES_SANITIZE=address,undefined
# TSAN_OPTIONS makes any race a hard failure instead of a report.
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  run_matrix_entry tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSNAKES_SANITIZE=thread

# Portable-kernels leg: rebuild with the BMI2 interleave kernels pinned out
# (-DSNAKES_FORCE_PORTABLE_KERNELS=ON) and rerun the curve/run suites — the
# differential half of the kernel-parity contract, proving the portable
# fallback carries the same bits on a build that can never dispatch to BMI2.
echo "==> [portable-kernels] configure"
cmake -B "$ROOT/build-portable" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DSNAKES_FORCE_PORTABLE_KERNELS=ON
echo "==> [portable-kernels] build"
cmake --build "$ROOT/build-portable" -j "$JOBS"
echo "==> [portable-kernels] ctest (curves / rank runs / kernels)"
ctest --test-dir "$ROOT/build-portable" --output-on-failure -j "$JOBS" \
  -R 'Curve|Curves|Hilbert|ZCurve|Gray|RankRun|BitInterleave|PathOrder|Linearization'

# Service concurrency leg: the epoch-publication and reader-pinning contract
# of src/service is the part of the tree where a silent race would corrupt
# results instead of crashing, so the service suites (including the seeded
# InterleaveDriver schedules) get an explicit pass under both the Release
# and the TSan builds on top of the full-matrix runs above.
echo "==> [service] release leg"
ctest --test-dir "$ROOT/build-release" --output-on-failure -j "$JOBS" \
  -R 'Service(Registration|Advise|Query|Epoch|Submit|Dispatch|Interleave|Fuzz|Telemetry)|FlightRecorder|SloWindow'
echo "==> [service] tsan leg"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -j "$JOBS" \
  -R 'Service(Registration|Advise|Query|Epoch|Submit|Dispatch|Interleave|Fuzz|Telemetry)|FlightRecorder|SloWindow'

# Observability smoke: run the instrumented end-to-end report on the tiny
# TPC-D grid and validate that both artifacts parse and carry the headline
# metrics (obs_report exercises advisor + DP + simulator + cache with live
# metrics and tracing backends).
echo "==> [obs] smoke"
OBS_OUT="$ROOT/build-release/obs-smoke"
"$ROOT/build-release/tools/obs_report" --out "$OBS_OUT" --queries 200 > /dev/null
python3 - "$OBS_OUT" <<'EOF'
import json, sys
out = sys.argv[1]
m = json.load(open(out + "/metrics.json"))
for key in ["advisor.strategies_evaluated", "cache.hits", "cache.misses",
            "cache.evictions", "dp.cells_relaxed", "storage.pages_read",
            "storage.seeks", "curves.runs_emitted"]:
    assert key in m["counters"], "missing counter " + key
for key in ["cache.hit_rate", "dp.table_bytes"]:
    assert key in m["gauges"], "missing gauge " + key
for key in ["advisor.strategy_compute_ns", "storage.run_length_pages",
            "curves.cells_per_run"]:
    assert key in m["histograms"], "missing histogram " + key
trace = json.load(open(out + "/trace.json"))
events = trace["traceEvents"]
assert events and all(e["ph"] == "X" for e in events)
names = {e["name"] for e in events}
for name in ["advisor/plan", "advisor/evaluate", "storage/measure_all"]:
    assert name in names, "missing span " + name
print("obs smoke ok: %d metrics, %d spans" %
      (len(m["counters"]) + len(m["gauges"]) + len(m["histograms"]),
       len(events)))
EOF

# Service throughput smoke: drive the daemon with mixed batched traffic and
# a background-recluster storm across 8 tenants, then validate the guard
# artifact — headline numbers plus the embedded MetricsRegistry snapshot.
# The binary SNAKES_CHECKs its own bounds (sustained req/s, query p99,
# epoch pin-wait p99, zero storm failures, bit-identical warm advice), so
# reaching the python validation means the guards held.
echo "==> [service] throughput smoke"
SERVICE_BENCH="$ROOT/build-release/BENCH_service_throughput.json"
(cd "$ROOT/build-release" && ./tools/service_sim --requests 2000 \
  --out "$SERVICE_BENCH" > /dev/null)
python3 - "$SERVICE_BENCH" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["bench"] == "service_throughput"
assert d["tenants"] >= 8, "guard must cover >= 8 tenants"
assert d["bit_identical"] is True, "service advice diverged from the library"
assert d["storm_failures"] == 0, "queries failed during background recluster"
assert d["sustained_rps"] >= d["required_rps"]
assert d["pin_wait_p99_ns"] <= d["pin_p99_bound_ns"], "readers blocked"
assert d["query_compute_p99_ns"] <= d["query_p99_bound_ns"]
m = d["metrics"]
for key in ["service.tenants", "service.epochs_published",
            "service.epochs_closed", "service.requests.completed"]:
    assert key in m["counters"], "missing counter " + key
for key in ["service.query.queue_ns", "service.query.compute_ns",
            "service.advise.compute_ns", "service.epoch.pin_ns"]:
    assert key in m["histograms"], "missing histogram " + key
t = d["telemetry"]
assert t["recorder"]["requests"], "embedded flight recorder is empty"
assert len(t["tenants"]) == d["tenants"], "telemetry missing tenants"
assert t["audit"], "recluster audit log is empty after the storm"
print("service smoke ok: %.0f req/s over %d tenants, pin p99 %.0f ns" %
      (d["sustained_rps"], d["tenants"], d["pin_wait_p99_ns"]))
EOF

# Micro-partition smoke: the storage-backend API must serve the same advice
# and queries when tenants pack into zone-mapped micro-partitions. service_sim
# reruns its full guard suite on the alternate backend, and the pruning bench
# SNAKES_CHECKs bit-identical answers across backends plus >= 50% of
# partitions pruned on restricted classes before emitting its artifact.
echo "==> [micropartition] service smoke"
MICRO_BENCH="$ROOT/build-release/BENCH_service_micropartition.json"
(cd "$ROOT/build-release" && ./tools/service_sim --requests 2000 \
  --backend micropartition --out "$MICRO_BENCH" > /dev/null)
python3 - "$MICRO_BENCH" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["bench"] == "service_throughput"
assert d["backend"] == "micropartition", "backend selector did not stick"
assert d["bit_identical"] is True, "micro-partition advice diverged"
assert d["storm_failures"] == 0
print("micropartition service smoke ok: %.0f req/s" % d["sustained_rps"])
EOF
echo "==> [micropartition] pruning bench"
(cd "$ROOT/build-release" && ./bench/micro_micropartition > /dev/null)
python3 - "$ROOT/build-release/BENCH_micropartition.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["bench"] == "micropartition"
assert d["bit_identical"] is True
assert d["partitions"] > 0
assert d["restricted_pruned_fraction"] >= d["required_fraction"]
print("micropartition bench ok: %d partitions, %.1f%% pruned" %
      (d["partitions"], 100.0 * d["restricted_pruned_fraction"]))
EOF

# Calibration smoke: the measured-cost loop end to end. calibrate_cost
# sweeps real file_store executions on a small TPC-D warehouse, fits the
# linear time model in-repo, and writes both artifacts; python validates the
# samples/coefficients JSON shapes, that the coefficients load as a model
# (the service's `costmodel calibrated <path>` payload), and that the fit
# explains the measurements within the 25% median-relative-error bound. The
# bench additionally SNAKES_CHECKs that picking a strategy by the fitted
# model costs <= 10% measured regret against the actual fastest.
echo "==> [calibration] fit smoke"
CAL_SAMPLES="$ROOT/build-release/calibration-samples.json"
CAL_COEF="$ROOT/build-release/calibration-coefficients.json"
(cd "$ROOT/build-release" && ./tools/calibrate_cost --orders 2000 \
  --queries 2 --reps 2 --samples "$CAL_SAMPLES" \
  --coefficients "$CAL_COEF" > /dev/null)
python3 - "$CAL_SAMPLES" "$CAL_COEF" <<'EOF'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["page_size_bytes"] > 0 and s["record_size_bytes"] > 0
assert s["samples"], "sweep produced no samples"
for sample in s["samples"]:
    assert sample["measured_ns"] >= 0, "negative measured time"
    for key in ("class", "strategy", "backend", "seeks", "pages"):
        assert key in sample, "sample missing " + key
c = json.load(open(sys.argv[2]))
assert c["model"] == "calibrated", "coefficients not model-loadable"
assert "intercept_ms" in c and c["coefficients"], "missing fit terms"
for v in [c["intercept_ms"], *c["coefficients"].values()]:
    assert v == v and abs(v) != float("inf"), "non-finite coefficient"
assert c["samples"] == len(s["samples"]), "fit did not use the sweep"
assert c["median_relative_error"] <= 0.25, \
    "calibrated model median relative error %.3f exceeds the 25%% bound" \
    % c["median_relative_error"]
assert c["per_class_relative_error"], "no per-class error report"
print("calibration smoke ok: %d samples, r^2 %.3f, median rel error %.3f" %
      (c["samples"], c["r_squared"], c["median_relative_error"]))
EOF
echo "==> [calibration] ranking bench"
(cd "$ROOT/build-release" && ./bench/micro_calibration > /dev/null)
python3 - "$ROOT/build-release/BENCH_calibration.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["bench"] == "calibration"
assert d["median_relative_error"] <= d["required_median_relative_error"]
assert d["model_pick_measured_regret"] <= d["required_regret"]
assert d["per_strategy"], "no per-strategy aggregates"
print("calibration bench ok: median rel error %.3f, model-pick regret %.2f%%"
      % (d["median_relative_error"],
         100.0 * d["model_pick_measured_regret"]))
EOF

# Telemetry smoke: the always-on request-telemetry layer end to end.
#  1. service_sim --telemetry dumps the flight recorder + SLO windows +
#     audit log; python checks request ids are strictly increasing with
#     monotone timestamps, SLO windows are non-empty, and every audit entry
#     names a decision with its inputs.
#  2. telemetry_report renders the same surface as Prometheus text
#     exposition via the Dispatch verb; python validates the exposition
#     grammar (every sample belongs to a TYPE-declared family) and that the
#     SLO summary carries both quantiles.
#  3. micro_telemetry SNAKES_CHECKs the per-request telemetry cost under 2%
#     of the mixed-request path and python re-checks the artifact.
echo "==> [telemetry] service_sim dump"
TELEMETRY_DUMP="$ROOT/build-release/telemetry-smoke.json"
(cd "$ROOT/build-release" && ./tools/service_sim --requests 2000 \
  --out BENCH_telemetry_smoke_throughput.json \
  --telemetry "$TELEMETRY_DUMP" > /dev/null)
python3 - "$TELEMETRY_DUMP" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
reqs = t["recorder"]["requests"]
assert reqs, "flight recorder dumped no requests"
ids = [r["id"] for r in reqs]
assert all(a < b for a, b in zip(ids, ids[1:])), "ids not strictly increasing"
for r in reqs:
    assert r["queue_ns"] >= 0 and r["compute_ns"] >= 0, "negative latency"
assert t["tenants"], "no tenants in telemetry snapshot"
for tenant in t["tenants"]:
    assert tenant["slo"], "SLO window empty for " + tenant["name"]
    for verb, s in tenant["slo"].items():
        assert s["count"] > 0 and s["p99_ns"] >= s["p50_ns"] >= 0.0, verb
assert t["audit"], "no recluster decisions audited"
for entry in t["audit"]:
    assert entry["decision"], "audit entry without a decision"
    assert "drift" in entry and "budget_pages" in entry and \
        "net_benefit" in entry, "audit entry missing inputs"
print("telemetry dump ok: %d requests, %d tenants, %d audited decisions" %
      (len(reqs), len(t["tenants"]), len(t["audit"])))
EOF
echo "==> [telemetry] prometheus exposition"
TELEMETRY_PROM="$ROOT/build-release/telemetry-smoke.prom"
(cd "$ROOT/build-release" && ./tools/telemetry_report --format prom \
  --requests 400 --out "$TELEMETRY_PROM")
python3 - "$TELEMETRY_PROM" <<'EOF'
import sys
families = set()
samples = 0
quantiles = set()
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    assert line, "blank line in exposition"
    if line.startswith("# TYPE "):
        name, kind = line[len("# TYPE "):].split(" ")
        assert kind in ("counter", "gauge", "summary"), kind
        families.add(name)
        continue
    assert not line.startswith("#"), "unexpected comment: " + line
    body, value = line.rsplit(" ", 1)
    float(value)  # must parse
    name = body.split("{", 1)[0]
    base = name
    for suffix in ("_sum", "_count"):
        if base.endswith(suffix) and base not in families:
            base = base[: -len(suffix)]
    assert base in families, "sample from undeclared family: " + line
    if "{" in body:
        assert body.endswith("}"), "unclosed label set: " + line
        if 'quantile="' in body:
            quantiles.add(body.split('quantile="', 1)[1].split('"', 1)[0])
    samples += 1
assert "snakes_slo_request_latency_ns" in families, "missing SLO summary"
assert quantiles == {"0.5", "0.99"}, "missing quantiles: %s" % quantiles
print("exposition ok: %d samples across %d families" %
      (samples, len(families)))
EOF
echo "==> [telemetry] overhead bench"
(cd "$ROOT/build-release" && ./bench/micro_telemetry > /dev/null)
python3 - "$ROOT/build-release/BENCH_telemetry.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["bench"] == "telemetry_overhead"
assert d["overhead_bound_pct"] < d["budget_pct"]
print("telemetry bench ok: %.3f%% bound (budget %.1f%%)" %
      (d["overhead_bound_pct"], d["budget_pct"]))
EOF

# Coverage gate: instrument with gcc --coverage, rerun the suite, and hold
# the modules whose correctness rests on tests alone (the CV sandwich
# machinery, the reclustering engine, and the advisor service) to >= 80%
# line coverage. gcovr is
# not available in the image, so the .gcda files are digested with plain
# gcov --json-format and a stdlib-only python gate.
echo "==> [coverage] configure"
COV_DIR="$ROOT/build-coverage"
cmake -B "$COV_DIR" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage
echo "==> [coverage] build"
cmake --build "$COV_DIR" -j "$JOBS"
echo "==> [coverage] ctest"
ctest --test-dir "$COV_DIR" --output-on-failure -j "$JOBS"
echo "==> [coverage] gcov gate"
: > "$COV_DIR/gcov.jsonl"
find "$COV_DIR/src" -name '*.gcda' | while read -r gcda; do
  gcov --stdout --json-format "$gcda" >> "$COV_DIR/gcov.jsonl"
done
python3 - "$COV_DIR/gcov.jsonl" <<'EOF'
import json, sys

# Line hit counts per source file, merged across translation units. The
# storage-backend entry gates the two files behind the StorageBackend API
# (backend.cc, micro_partition.cc) rather than all of src/storage,
# obs-telemetry gates the request-telemetry primitives (request context,
# flight recorder, SLO windows) rather than all of src/obs, and cost-model
# gates the pluggable CostModel + calibration fit rather than all of
# src/cost (the older analytic estimators live there too), and
# curves-kernels gates the bit-interleave kernel layer plus the run arena
# (src/curves/bit_interleave*, run_arena*) rather than all of src/curves.
cov = {"src/cv": {}, "src/recluster": {}, "src/service": {},
       "storage-backend": {}, "obs-telemetry": {}, "cost-model": {},
       "curves-kernels": {}}
backend_files = ("src/storage/backend.cc", "src/storage/micro_partition.cc")
telemetry_files = ("src/obs/request_context.cc", "src/obs/flight_recorder.cc",
                   "src/obs/slo_window.cc")
cost_files = ("src/cost/cost_model.cc", "src/cost/calibration.cc")
kernel_files = ("src/curves/bit_interleave.cc", "src/curves/run_arena.cc")
with open(sys.argv[1]) as jsonl:
    for line in jsonl:
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        for f in doc.get("files", []):
            name = f["file"]
            if name.endswith(backend_files):
                module = "storage-backend"
            elif name.endswith(telemetry_files):
                module = "obs-telemetry"
            elif name.endswith(cost_files):
                module = "cost-model"
            elif name.endswith(kernel_files):
                module = "curves-kernels"
            else:
                module = next(
                    (m for m in cov if "/" + m + "/" in "/" + name), None)
            if module is None:
                continue
            lines = cov[module].setdefault(name, {})
            for ln in f.get("lines", []):
                n = ln["line_number"]
                lines[n] = max(lines.get(n, 0), ln["count"])
failed = False
for module, files in sorted(cov.items()):
    total = sum(len(v) for v in files.values())
    hit = sum(1 for v in files.values() for c in v.values() if c > 0)
    pct = 100.0 * hit / total if total else 0.0
    print("coverage %-14s %5d/%5d lines = %5.1f%%" % (module, hit, total, pct))
    if total == 0 or pct < 80.0:
        failed = True
if failed:
    sys.exit("coverage gate failed: a module is below 80% line coverage")
print("coverage gate ok")
EOF

echo "==> all configurations passed"
