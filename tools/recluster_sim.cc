// recluster_sim — replay a drifting TPC-D workload trace through the
// incremental reclustering engine.
//
//   recluster_sim [--epochs N] [--queries N] [--cache-pages N]
//                 [--from ID] [--to ID] [--drift-threshold D]
//                 [--hysteresis H] [--budget PAGES] [--cooldown N]
//                 [--alpha A] [--seed S]
//                 [--backend packed|micropartition]
//                 [--telemetry PATH]
//
// --telemetry PATH writes a TelemetrySnapshot JSON at exit: each epoch's
// OnEpoch call is recorded as a `recluster` request (and its replay as a
// `query` request) in a flight recorder + SLO window, and every
// ReclusterDecision lands in the audit log with its inputs — the same
// artifact shape the advisor service's `telemetry` verb serves, so the
// check.sh validators apply to both.
//
// The trace interpolates between two Section-6 workloads (--from, --to;
// ids 1..27): epoch e's observed workload is the normalized blend
// (1 - t) * from + t * to with t = e / (epochs - 1), so probability mass
// migrates gradually across the lattice the way a reporting calendar
// shifts analyst behavior. Each epoch the engine re-advises incrementally
// (memoized per-class costs + DP cache), prices the best re-layout by
// rank-run movement, and adopts only when the net benefit clears the
// hysteresis/budget/cooldown guards. After each decision the epoch's
// queries replay through an LRU page cache over the live layout;
// LruPageCache::ResetStats() isolates per-epoch hit rates (the pool stays
// warm across epochs, and is cleared when a re-layout lands).
//
// With --backend micropartition the engine packs adopted layouts into
// micro-partitions and the table gains a live pruned% column — the fraction
// of the partition directory a sample of the epoch's own queries skips via
// zone maps. Sweeping --from/--to under both backends compares how
// clustering depth (movement spent reordering) trades against pruning
// power (partitions skipped without reordering anything).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo_window.h"
#include "recluster/engine.h"
#include "service/telemetry.h"
#include "storage/backend.h"
#include "storage/cache.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/text_table.h"

namespace snakes {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

Result<Workload> Blend(const Workload& from, const Workload& to, double t) {
  std::vector<double> p(from.size());
  for (uint64_t i = 0; i < from.size(); ++i) {
    p[i] = (1.0 - t) * from.probability_at(i) + t * to.probability_at(i);
  }
  return Workload::FromDense(from.lattice(), std::move(p),
                             /*normalize=*/true);
}

int Run(int argc, char** argv) {
  const int epochs =
      std::atoi(FlagValue(argc, argv, "--epochs", "12").c_str());
  const uint64_t queries = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--queries", "400").c_str()));
  const uint64_t cache_pages = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--cache-pages", "64").c_str()));
  const int from_id = std::atoi(FlagValue(argc, argv, "--from", "7").c_str());
  const int to_id = std::atoi(FlagValue(argc, argv, "--to", "21").c_str());
  const double drift_threshold =
      std::atof(FlagValue(argc, argv, "--drift-threshold", "0.01").c_str());
  const double hysteresis =
      std::atof(FlagValue(argc, argv, "--hysteresis", "0.02").c_str());
  const uint64_t budget = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--budget", "0").c_str()));
  const int cooldown =
      std::atoi(FlagValue(argc, argv, "--cooldown", "2").c_str());
  const double alpha =
      std::atof(FlagValue(argc, argv, "--alpha", "0.4").c_str());
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "1999").c_str()));
  const std::string telemetry_path =
      FlagValue(argc, argv, "--telemetry", "");
  auto backend_kind =
      ParseStorageBackendKind(FlagValue(argc, argv, "--backend", "packed"));
  if (!backend_kind.ok()) return Fail(backend_kind.status());
  if (epochs < 2) return Fail(Status::InvalidArgument("--epochs must be >= 2"));

  // Small warehouse: each epoch's full pipeline (advise + pack + replay)
  // stays fast enough for CI while still spanning thousands of pages.
  tpcd::Config config;
  config.parts_per_mfgr = 4;
  config.num_mfgrs = 3;
  config.num_suppliers = 4;
  config.months_per_year = 6;
  config.num_years = 2;
  config.num_orders = 8'000;
  auto warehouse = tpcd::GenerateWarehouse(config, seed);
  if (!warehouse.ok()) return Fail(warehouse.status());
  const auto& schema = warehouse.value().schema;
  const QueryClassLattice lat(*schema);

  auto from = tpcd::SectionSixWorkload(lat, from_id);
  if (!from.ok()) return Fail(from.status());
  auto to = tpcd::SectionSixWorkload(lat, to_id);
  if (!to.ok()) return Fail(to.status());
  std::printf("drifting trace: %s  ->  %s over %d epochs\n",
              tpcd::DescribeWorkload(from_id).c_str(),
              tpcd::DescribeWorkload(to_id).c_str(), epochs);

  MetricsRegistry metrics;
  const ObsSink obs{&metrics, nullptr};

  ReclusterConfig rc;
  rc.ewma_alpha = alpha;
  rc.readvise_drift_threshold = drift_threshold;
  rc.queries_per_epoch = static_cast<double>(queries);
  rc.movement_cost_per_page = 1.0;
  rc.movement_budget_pages = budget;
  rc.hysteresis_min_improvement = hysteresis;
  rc.cooldown_epochs = cooldown;
  rc.storage = StorageConfig{2048, 125};
  rc.backend = backend_kind.value();
  rc.obs = obs;
  ReclusterEngine engine(schema, warehouse.value().facts, rc);

  LruPageCache cache(cache_pages, obs);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  // Telemetry sinks, populated per epoch when --telemetry is set: OnEpoch
  // and the replay become flight-recorder requests, decisions become audit
  // entries.
  const auto clock_epoch = std::chrono::steady_clock::now();
  const auto now_ns = [&clock_epoch]() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - clock_epoch)
            .count());
  };
  FlightRecorder recorder(256);
  SloWindow slo;
  ReclusterAuditLog audit(static_cast<size_t>(epochs) + 1);
  uint64_t next_request_id = 1;

  TextTable table({"epoch", "drift", "decision", "layout", "cost", "evals",
                   "cached", "pages moved", "cache hit%", "pruned%"});
  for (int e = 0; e < epochs; ++e) {
    const double t = static_cast<double>(e) / (epochs - 1);
    auto mu = Blend(from.value(), to.value(), t);
    if (!mu.ok()) return Fail(mu.status());
    const uint64_t epoch_start = now_ns();
    auto report = engine.OnEpoch(mu.value());
    {
      RequestRecord rec;
      rec.id = next_request_id++;
      rec.verb = RequestVerb::kRecluster;
      rec.status = report.status().code();
      rec.enqueue_ns = epoch_start;
      rec.start_ns = epoch_start;
      rec.finish_ns = now_ns();
      recorder.Record(rec);
      slo.Record(RequestVerb::kRecluster, rec.compute_ns(), !report.ok());
    }
    if (!report.ok()) return Fail(report.status());
    const EpochReport& r = report.value();
    {
      ReclusterAuditEntry entry;
      entry.timestamp_ns = now_ns();
      entry.request_id = next_request_id - 1;
      entry.engine_epoch = r.epoch;
      entry.decision = r.decision;
      entry.drift = r.drift;
      entry.budget_pages = rc.movement_budget_pages;
      entry.current_cost = r.current_cost;
      entry.proposed_cost = r.proposed_cost;
      entry.relative_improvement = r.relative_improvement;
      entry.net_benefit = r.net_benefit;
      entry.pages_moved = r.movement.pages_moved();
      entry.current_strategy = r.current_strategy;
      entry.proposed_strategy = r.proposed_strategy;
      audit.Record(std::move(entry));
    }

    // Replay this epoch's queries against the live layout. An adopted
    // re-layout invalidates the pool (same page ids, different bytes);
    // otherwise only the stats reset so the hit rate is per-epoch.
    double hit_rate = 0.0;
    double pruned_fraction = 0.0;
    const auto backend = engine.current_backend();
    if (backend != nullptr) {
      if (r.decision == ReclusterDecision::kAdopt ||
          r.decision == ReclusterDecision::kInitialAdopt) {
        cache.Clear();
      } else {
        cache.ResetStats();
      }
      const uint64_t replay_start = now_ns();
      ReplayWorkload(*backend, mu.value(), queries, &cache, &rng);
      {
        RequestRecord rec;
        rec.id = next_request_id++;
        rec.verb = RequestVerb::kQuery;
        rec.enqueue_ns = replay_start;
        rec.start_ns = replay_start;
        rec.finish_ns = now_ns();
        recorder.Record(rec);
        slo.Record(RequestVerb::kQuery, rec.compute_ns(), /*error=*/false);
      }
      hit_rate = cache.HitRate();

      // Zone-map pruning power under this epoch's own workload: the
      // fraction of the partition directory a query sample skips. A
      // dedicated rng keeps the replay stream identical across backends.
      if (backend->num_partitions() > 0) {
        Rng prune_rng(seed + static_cast<uint64_t>(e) * 0x9e3779b9ULL);
        const StarSchema& schema = backend->linearization().schema();
        uint64_t scanned = 0, pruned = 0;
        for (int q = 0; q < 64; ++q) {
          const QueryClass cls = mu.value().Sample(&prune_rng);
          const GridQuery query = SampleQuery(schema, cls, &prune_rng);
          const PruneStats stats = backend->PruneBox(BoxOf(schema, query));
          scanned += stats.scanned;
          pruned += stats.pruned;
        }
        pruned_fraction = scanned + pruned == 0
                              ? 0.0
                              : static_cast<double>(pruned) /
                                    static_cast<double>(scanned + pruned);
      }
    }

    table.AddRow({std::to_string(r.epoch), FormatDouble(r.drift, 4),
                  ReclusterDecisionName(r.decision),
                  engine.current() != nullptr ? engine.current()->name() : "-",
                  FormatDouble(r.proposed_cost, 3),
                  std::to_string(r.cost_evaluations),
                  std::to_string(r.cost_cache_hits),
                  std::to_string(r.movement.pages_moved()),
                  FormatDouble(100.0 * hit_rate, 1),
                  FormatDouble(100.0 * pruned_fraction, 1)});
  }
  std::printf("%s\n", table.Render().c_str());

  const ClassCostCache::Stats cost_stats = engine.state().cost_cache.stats();
  const DpCache::Stats dp_stats = engine.state().dp_cache.stats();
  std::printf(
      "epochs %llu, adoptions %llu; per-class cost evaluations %llu, "
      "avoided by cache %llu; DP solves %llu, DP cache hits %llu\n",
      static_cast<unsigned long long>(engine.epochs_seen()),
      static_cast<unsigned long long>(engine.adoptions()),
      static_cast<unsigned long long>(cost_stats.misses),
      static_cast<unsigned long long>(cost_stats.hits),
      static_cast<unsigned long long>(dp_stats.misses),
      static_cast<unsigned long long>(dp_stats.hits));
  std::printf("\n%s\n", metrics.Snapshot().ToTable().c_str());

  if (!telemetry_path.empty()) {
    TelemetrySnapshot snap;
    snap.now_ns = now_ns();
    snap.recorder_capacity = recorder.capacity();
    snap.recorder_recorded = recorder.recorded();
    snap.requests = recorder.Snapshot();
    TenantTelemetry trace;
    trace.name = "trace";
    trace.slo = slo.Snap();
    snap.tenants.push_back(std::move(trace));
    snap.audit = audit.Snapshot();
    std::ofstream tout(telemetry_path);
    tout << snap.ToJson(/*pretty=*/true);
    if (!tout.good()) {
      return Fail(Status::Internal("failed to write " + telemetry_path));
    }
    std::printf("wrote %s (%zu requests, %zu audit entries)\n",
                telemetry_path.c_str(), snap.requests.size(),
                snap.audit.size());
  }
  return 0;
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) { return snakes::Run(argc, argv); }
