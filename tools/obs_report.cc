// obs_report — end-to-end observability demo and smoke tool.
//
//   obs_report [--out DIR] [--workload 1..27] [--queries N]
//
// Generates a small TPC-D-style warehouse, runs an instrumented Advise over
// every applicable strategy family (with storage measurement), replays a
// query stream through an instrumented LRU page cache under the recommended
// snaked layout, and writes:
//
//   DIR/metrics.json — every counter/gauge/histogram (cache hit rate, seeks,
//                      per-strategy timings, DP work, ...)
//   DIR/trace.json   — Chrome trace_event JSON; open in chrome://tracing or
//                      https://ui.perfetto.dev to see spans nested
//                      request -> strategy -> DP phase -> storage I/O.
//
// The metrics table and the recommendation summary go to stdout.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "core/advisor.h"
#include "core/evaluation.h"
#include "curves/path_order.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/cache.h"
#include "storage/pager.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"
#include "util/result.h"
#include "util/rng.h"

namespace snakes {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

Status WriteFile(const std::filesystem::path& path,
                 const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open " + path.string() + " for writing");
  }
  out << content;
  out.flush();
  if (!out) return Status::Internal("short write to " + path.string());
  return Status::OK();
}

int Run(int argc, char** argv) {
  const std::filesystem::path out_dir =
      FlagValue(argc, argv, "--out", ".");
  const int workload_id = std::atoi(
      FlagValue(argc, argv, "--workload", "7").c_str());
  const uint64_t num_queries = static_cast<uint64_t>(std::atoll(
      FlagValue(argc, argv, "--queries", "500").c_str()));

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Fail(Status::Internal("cannot create " + out_dir.string() + ": " +
                                 ec.message()));
  }

  // A deliberately small warehouse: every strategy family measurable in
  // well under a second, so the tool works as a CI smoke step.
  tpcd::Config config;
  config.parts_per_mfgr = 4;
  config.num_mfgrs = 3;
  config.num_suppliers = 4;
  config.months_per_year = 6;
  config.num_years = 2;
  config.num_orders = 6'000;
  auto warehouse = tpcd::GenerateWarehouse(config, 31);
  if (!warehouse.ok()) return Fail(warehouse.status());
  const auto& schema = warehouse.value().schema;

  const QueryClassLattice lat(*schema);
  auto mu = tpcd::SectionSixWorkload(lat, workload_id);
  if (!mu.ok()) return Fail(mu.status());

  // Both backends live for the whole run; every phase appends to them.
  MetricsRegistry metrics;
  Tracer tracer;
  const ObsSink obs{&metrics, &tracer};

  EvaluationRequest request{mu.value()};
  request.measure_storage = true;
  request.storage = StorageConfig{2048, 125};
  request.facts = warehouse.value().facts;
  request.obs = obs;
  const ClusteringAdvisor advisor(schema);
  auto rec = advisor.Advise(request);
  if (!rec.ok()) return Fail(rec.status());

  // Replay a query stream through an LRU cache sized at ~5% of the data
  // under the recommended snaked layout, then derive the hit-rate gauge.
  {
    ScopedSpan span(obs.tracer, "cache/replay", "storage");
    auto order =
        MakePathOrder(schema, rec.value().optimal_snaked_path, true);
    if (!order.ok()) return Fail(order.status());
    auto layout =
        PackedLayout::Pack(std::move(order).value(), warehouse.value().facts,
                           request.storage, obs);
    if (!layout.ok()) return Fail(layout.status());
    LruPageCache cache(std::max<uint64_t>(1, layout.value().num_pages() / 20),
                       obs);
    Rng rng(11);
    const CachedRunStats stats = ReplayWorkload(
        layout.value(), mu.value(), num_queries, &cache, &rng);
    metrics.GetGauge("cache.hit_rate")->Set(cache.HitRate());
    span.AddArg("queries", stats.queries);
    span.AddArg("page_accesses", stats.page_accesses);
    span.AddArg("disk_reads", stats.disk_reads);
  }

  const MetricsSnapshot snap = metrics.Snapshot();
  const auto metrics_path = out_dir / "metrics.json";
  const auto trace_path = out_dir / "trace.json";
  if (Status s = WriteFile(metrics_path, snap.ToJson()); !s.ok()) {
    return Fail(s);
  }
  if (Status s = WriteFile(trace_path, tracer.ToChromeJson()); !s.ok()) {
    return Fail(s);
  }

  std::printf("%s\n", rec.value().ToString().c_str());
  std::printf("%s\n", snap.ToTable().c_str());
  std::printf("wrote %s (%zu metrics) and %s (%zu spans)\n",
              metrics_path.string().c_str(),
              snap.counters.size() + snap.gauges.size() +
                  snap.histograms.size(),
              trace_path.string().c_str(), tracer.num_events());
  return 0;
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) { return snakes::Run(argc, argv); }
