// calibrate_cost — fit the CostModel coefficients to measured executions.
//
//   calibrate_cost [--samples PATH] [--coefficients PATH]
//                  [--queries N] [--reps N] [--seed S]
//                  [--orders N] [--scratch PATH]
//                  [--backends packed,micropartition]
//                  [--features seeks,pages,...]
//
// The in-repo calibration loop: generate a small TPC-D warehouse, plan the
// registered strategy families on the uniform workload, sweep sampled
// queries per (strategy, backend, lattice class) through IoSimulator (the
// features) and a real FileStore execution (the measured nanoseconds), then
// fit measured time against the features by ordinary least squares — no
// external solver. Writes the raw samples and the fitted coefficients as
// JSON; the coefficients file loads straight into CalibratedLinearModel::
// FromJson / the service's `costmodel calibrated <path>` verb.
//
// Exit status: 0 on a successful fit, 1 on any sweep or fit error (a
// singular design matrix is an error, never NaN coefficients).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "lattice/workload.h"
#include "tpcd/dbgen.h"
#include "util/result.h"
#include "util/text_table.h"

namespace snakes {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const std::string piece =
        s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int Run(int argc, char** argv) {
  const std::string samples_path =
      FlagValue(argc, argv, "--samples", "calibration_samples.json");
  const std::string coefficients_path =
      FlagValue(argc, argv, "--coefficients", "calibration_coefficients.json");
  const int queries_per_class =
      std::atoi(FlagValue(argc, argv, "--queries", "4").c_str());
  const int repetitions =
      std::atoi(FlagValue(argc, argv, "--reps", "3").c_str());
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "19990601").c_str()));
  const uint64_t orders = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--orders", "4000").c_str()));
  const std::string scratch = FlagValue(argc, argv, "--scratch",
                                        "snakes_calibration_scratch.bin");
  const std::vector<std::string> backend_names =
      SplitCommas(FlagValue(argc, argv, "--backends", "packed"));
  const std::vector<std::string> features =
      SplitCommas(FlagValue(argc, argv, "--features", "seeks,pages"));

  // Small warehouse: the sweep times thousands of real file reads, so the
  // default stays CI-sized while spanning every lattice class.
  tpcd::Config config;
  config.parts_per_mfgr = 4;
  config.num_mfgrs = 3;
  config.num_suppliers = 4;
  config.months_per_year = 6;
  config.num_years = 2;
  config.num_orders = orders;
  auto warehouse = tpcd::GenerateWarehouse(config, seed);
  if (!warehouse.ok()) return Fail(warehouse.status());
  const auto& schema = warehouse.value().schema;
  std::fprintf(stderr, "warehouse: %llu records\n",
               static_cast<unsigned long long>(
                   warehouse.value().facts->total_records()));

  // Every registered strategy family, materialized for the uniform workload
  // — the sweep wants layout diversity (different seek/page mixes), not a
  // recommendation.
  const ClusteringAdvisor advisor(schema);
  EvaluationRequest request{Workload::Uniform(advisor.Lattice())};
  auto plan = advisor.Plan(request);
  if (!plan.ok()) return Fail(plan.status());
  std::vector<std::shared_ptr<const Linearization>> strategies;
  for (const PlannedStrategy& s : plan.value().strategies) {
    strategies.push_back(s.linearization);
  }
  std::fprintf(stderr, "sweeping %zu strategies...\n", strategies.size());

  CalibrationSweepConfig sweep;
  sweep.queries_per_class = queries_per_class;
  sweep.repetitions = repetitions;
  sweep.seed = seed;
  sweep.scratch_path = scratch;
  sweep.backends.clear();
  for (const std::string& name : backend_names) {
    auto kind = ParseStorageBackendKind(name);
    if (!kind.ok()) return Fail(kind.status());
    sweep.backends.push_back(kind.value());
  }

  auto samples =
      CollectCalibrationSamples(warehouse.value().facts, strategies, sweep);
  if (!samples.ok()) return Fail(samples.status());
  std::fprintf(stderr, "collected %zu samples\n", samples.value().size());
  {
    std::ofstream out(samples_path);
    out << CalibrationSamplesToJson(samples.value(), sweep.storage);
    if (!out.good()) {
      return Fail(Status::Internal("failed to write " + samples_path));
    }
  }

  CalibrationFitOptions options;
  options.features = features;
  auto fit = FitCalibration(samples.value(), options);
  if (!fit.ok()) return Fail(fit.status());
  {
    std::ofstream out(coefficients_path);
    out << fit.value().ToJson() << "\n";
    if (!out.good()) {
      return Fail(Status::Internal("failed to write " + coefficients_path));
    }
  }

  std::printf("fit over %llu samples:\n",
              static_cast<unsigned long long>(fit.value().num_samples));
  std::printf("  intercept %s ms\n",
              FormatDouble(fit.value().intercept_ms, 6).c_str());
  for (const CostFeatureField& field : CostFeatureFields()) {
    const double coef = fit.value().coefficients_ms.*(field.member);
    if (coef == 0.0) continue;
    std::printf("  %-20s %s ms each\n", field.name,
                FormatDouble(coef, 6).c_str());
  }
  std::printf("  r_squared %s\n",
              FormatDouble(fit.value().r_squared, 4).c_str());
  std::printf("  median relative error %s\n",
              FormatDouble(fit.value().median_relative_error, 4).c_str());

  TextTable table({"class", "median rel error"});
  for (const auto& entry : fit.value().per_class_relative_error) {
    table.AddRow({entry.first, FormatDouble(entry.second, 4)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("wrote %s and %s\n", samples_path.c_str(),
              coefficients_path.c_str());
  return 0;
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) { return snakes::Run(argc, argv); }
