// snakes_cli — command-line front end for the clustering advisor.
//
//   snakes_cli advise  --schema FILE --workload FILE [--export-order CSV]
//   snakes_cli lattice --schema FILE
//   snakes_cli demo    [workload-id 1..27]
//
// Schema and workload files use the spec format of src/core/spec.h.
// `advise` prints the advisor report; with --export-order it writes the
// recommended clustering as CSV rows "rank,cell_id,<coord per dimension>"
// ready for a bulk loader's ORDER BY.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/advisor.h"
#include "core/spec.h"
#include "tpcd/schema.h"
#include "tpcd/workloads.h"
#include "util/result.h"

namespace snakes {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  snakes_cli advise  --schema FILE --workload FILE "
      "[--export-order CSV]\n"
      "  snakes_cli lattice --schema FILE\n"
      "  snakes_cli demo    [workload-id 1..27]\n");
  return 2;
}

Result<std::string> ArgValue(int argc, char** argv, const char* flag) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::string(argv[i + 1]);
  }
  return Status::NotFound(std::string("missing ") + flag);
}

Status ExportOrder(const Linearization& order, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path);
  const StarSchema& schema = order.schema();
  out << "rank,cell_id";
  for (int d = 0; d < schema.num_dims(); ++d) {
    out << "," << schema.dim(d).name();
  }
  out << "\n";
  order.Walk([&](uint64_t rank, const CellCoord& coord) {
    out << rank << "," << schema.Flatten(coord);
    for (size_t d = 0; d < coord.size(); ++d) out << "," << coord[d];
    out << "\n";
  });
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

int RunAdvise(int argc, char** argv) {
  auto schema_path = ArgValue(argc, argv, "--schema");
  auto workload_path = ArgValue(argc, argv, "--workload");
  if (!schema_path.ok() || !workload_path.ok()) return Usage();

  auto schema_text = ReadFileToString(schema_path.value());
  if (!schema_text.ok()) return Fail(schema_text.status());
  auto schema = ParseSchemaSpec(schema_text.value());
  if (!schema.ok()) return Fail(schema.status());
  auto shared = std::make_shared<StarSchema>(std::move(schema).value());

  const ClusteringAdvisor advisor(shared);
  auto workload_text = ReadFileToString(workload_path.value());
  if (!workload_text.ok()) return Fail(workload_text.status());
  auto mu = ParseWorkloadSpec(advisor.Lattice(), workload_text.value());
  if (!mu.ok()) return Fail(mu.status());

  auto rec = advisor.Advise(EvaluationRequest{mu.value()});
  if (!rec.ok()) return Fail(rec.status());
  std::printf("%s", rec->ToString().c_str());

  if (auto csv = ArgValue(argc, argv, "--export-order"); csv.ok()) {
    auto order = advisor.RecommendedOrder(mu.value());
    if (!order.ok()) return Fail(order.status());
    const Status written = ExportOrder(*order.value(), csv.value());
    if (!written.ok()) return Fail(written);
    std::printf("\nwrote %llu rows to %s\n",
                static_cast<unsigned long long>(shared->num_cells()),
                csv.value().c_str());
  }
  return 0;
}

int RunLattice(int argc, char** argv) {
  auto schema_path = ArgValue(argc, argv, "--schema");
  if (!schema_path.ok()) return Usage();
  auto schema_text = ReadFileToString(schema_path.value());
  if (!schema_text.ok()) return Fail(schema_text.status());
  auto schema = ParseSchemaSpec(schema_text.value());
  if (!schema.ok()) return Fail(schema.status());
  const QueryClassLattice lattice(schema.value());
  std::printf("%d dimensions, %llu cells, %llu query classes:\n",
              schema->num_dims(),
              static_cast<unsigned long long>(schema->num_cells()),
              static_cast<unsigned long long>(lattice.size()));
  for (uint64_t i = 0; i < lattice.size(); ++i) {
    const QueryClass c = lattice.ClassAt(i);
    uint64_t queries = 1;
    for (int d = 0; d < schema->num_dims(); ++d) {
      queries *= schema->dim(d).num_blocks(c.level(d));
    }
    std::printf("  %-12s %llu queries\n", c.ToString().c_str(),
                static_cast<unsigned long long>(queries));
  }
  return 0;
}

int RunDemo(int argc, char** argv) {
  const int id = argc > 2 ? std::atoi(argv[2]) : 7;
  tpcd::Config config;
  auto schema = tpcd::BuildSharedSchema(config);
  if (!schema.ok()) return Fail(schema.status());
  const ClusteringAdvisor advisor(schema.value());
  auto mu = tpcd::SectionSixWorkload(advisor.Lattice(), id);
  if (!mu.ok()) return Fail(mu.status());
  std::printf("TPC-D LineItem schema, workload %d (%s)\n\n", id,
              tpcd::DescribeWorkload(id).c_str());
  auto rec = advisor.Advise(EvaluationRequest{mu.value()});
  if (!rec.ok()) return Fail(rec.status());
  std::printf("%s", rec->ToString().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "advise") return RunAdvise(argc, argv);
  if (command == "lattice") return RunLattice(argc, argv);
  if (command == "demo") return RunDemo(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) { return snakes::Main(argc, argv); }
