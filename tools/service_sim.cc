// service_sim — throughput and safety guard for the AdvisorService daemon.
//
//   service_sim [--tenants N] [--requests N] [--threads T] [--rounds R]
//               [--seed S] [--out PATH] [--backend packed|micropartition]
//               [--telemetry PATH]
//
// Registers N tenants (N >= 8 in the guard configuration), then drives two
// phases against the service:
//
//  1. Mixed traffic: thousands of query/measure/ingest/advise/end-epoch
//     requests batched onto the request pool across all tenants, measuring
//     sustained requests/sec and per-type queue-wait/compute latency
//     (p50/p95/p99 from the obs histograms).
//  2. Recluster storm: every round shifts each tenant's workload and closes
//     an epoch, firing background reclusters that repack and publish fresh
//     layout epochs while readers keep querying on the request pool. The
//     double-buffering contract makes this safe AND non-blocking: readers
//     pin epochs with a pointer copy, so the pin-wait histogram must stay
//     microseconds even though relayouts take milliseconds.
//
// Afterwards every tenant's warm Advise must be bit-identical to a direct
// ClusteringAdvisor::AdviseIncremental on the same smoothed workload
// (BitIdenticalRecommendations) — the service adds batching, never numerics.
//
// Hard guards (SNAKES_CHECK):
//   * sustained throughput >= 200 req/s over the mixed phase,
//   * query compute p99 <= 250 ms, epoch pin-wait p99 <= 5 ms (the
//     zero-reader-blocking bound) with every storm query answered,
//   * >= 1 background adoption per tenant during the storm,
//   * warm Advise bit-identical to the direct library call for all tenants.
//
// Writes BENCH_service_throughput.json with the headline numbers plus the
// full MetricsRegistry snapshot embedded under "metrics" and the service's
// TelemetrySnapshot under "telemetry" (validated by tools/check.sh like the
// obs_report artifacts). With --telemetry PATH the same snapshot — flight
// recorder, per-tenant SLO windows, recluster audit log — is also dumped
// standalone to PATH for the check.sh exposition/consistency validators.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/advisor.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "service/telemetry.h"
#include "storage/backend.h"
#include "storage/fact_table.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/text_table.h"

namespace snakes {
namespace {

using Clock = std::chrono::steady_clock;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

std::shared_ptr<const FactTable> RandomFacts(
    const std::shared_ptr<const StarSchema>& schema, Rng* rng) {
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    const uint64_t records = 1 + rng->Below(4);
    for (uint64_t r = 0; r < records; ++r) {
      facts->AddRecord(schema->Unflatten(id), rng->NextDouble());
    }
  }
  return facts;
}

// The alternating point workloads whose optimal row-major orders differ, so
// each storm round flips the optimum and forces a background adoption.
Workload RoundWorkload(const QueryClassLattice& lat, int round) {
  return Workload::Point(lat, round % 2 == 0 ? QueryClass{2, 0}
                                             : QueryClass{0, 2})
      .value();
}

int Run(int argc, char** argv) {
  const int tenants =
      std::atoi(FlagValue(argc, argv, "--tenants", "8").c_str());
  const int requests =
      std::atoi(FlagValue(argc, argv, "--requests", "4000").c_str());
  const int threads =
      std::atoi(FlagValue(argc, argv, "--threads", "2").c_str());
  const int rounds = std::atoi(FlagValue(argc, argv, "--rounds", "6").c_str());
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "1999").c_str()));
  const std::string out_path =
      FlagValue(argc, argv, "--out", "BENCH_service_throughput.json");
  const std::string telemetry_path =
      FlagValue(argc, argv, "--telemetry", "");
  auto backend_kind =
      ParseStorageBackendKind(FlagValue(argc, argv, "--backend", "packed"));
  if (!backend_kind.ok()) return Fail(backend_kind.status());
  if (tenants < 1) return Fail(Status::InvalidArgument("--tenants >= 1"));

  MetricsRegistry metrics;
  ServiceConfig config;
  config.request_threads = threads;
  config.window_epochs = 1;  // the storm flips the whole window each round
  config.recluster_on_epoch_close = true;
  config.recluster.strategies = {"row-major"};
  config.storage = StorageConfig{512, 60};
  config.obs.metrics = &metrics;
  AdvisorService service(config);

  // One 4x4 schema family, per-tenant fact tables and initial workloads.
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).ValueOrDie());
  const QueryClassLattice lat(*schema);
  Rng rng(seed);
  std::vector<TenantId> ids;
  for (int t = 0; t < tenants; ++t) {
    TenantSpec spec;
    spec.name = "tenant" + std::to_string(t);
    spec.schema = schema;
    spec.facts = RandomFacts(schema, &rng);
    spec.backend = backend_kind.value();
    spec.initial_workload = Workload::Random(lat, &rng);
    auto id = service.RegisterTenant(std::move(spec));
    if (!id.ok()) return Fail(id.status());
    ids.push_back(id.value());
  }
  std::printf("registered %d tenants (%llu cells each, %llu classes)\n",
              tenants, static_cast<unsigned long long>(schema->num_cells()),
              static_cast<unsigned long long>(lat.size()));

  // ---- Phase 1: mixed traffic -----------------------------------------
  const Workload sampler = Workload::Uniform(lat);
  std::vector<std::future<Status>> ingests;
  std::vector<std::future<Result<QueryAnswer>>> queries;
  std::vector<std::future<Result<QueryIo>>> measures;
  std::vector<std::future<Result<Recommendation>>> advises;
  std::vector<int> ingested_since_close(static_cast<size_t>(tenants), 0);
  uint64_t submitted = 0, end_epochs = 0;

  const auto drain = [&]() -> Status {
    for (auto& f : ingests) SNAKES_RETURN_IF_ERROR(f.get());
    for (auto& f : queries) SNAKES_RETURN_IF_ERROR(f.get().status());
    for (auto& f : measures) SNAKES_RETURN_IF_ERROR(f.get().status());
    for (auto& f : advises) SNAKES_RETURN_IF_ERROR(f.get().status());
    ingests.clear();
    queries.clear();
    measures.clear();
    advises.clear();
    return Status::OK();
  };

  const auto mixed_start = Clock::now();
  for (int r = 0; r < requests; ++r) {
    const size_t t = rng.Below(static_cast<uint64_t>(tenants));
    const TenantId id = ids[t];
    const QueryClass cls = sampler.Sample(&rng);
    const GridQuery query = SampleQuery(*schema, cls, &rng);
    const double dice = rng.NextDouble();
    if (dice < 0.60) {
      queries.push_back(service.SubmitQuery(id, query));
    } else if (dice < 0.75) {
      measures.push_back(service.SubmitMeasure(id, query));
    } else if (dice < 0.93) {
      ingests.push_back(service.SubmitIngest(id, query));
      ++ingested_since_close[t];
    } else if (dice < 0.97 && ingested_since_close[t] > 0) {
      // Close only when this tenant certainly has ingested queries: the
      // request pool completes tasks in submission order per tenant stream.
      (void)service.SubmitEndEpoch(id);
      ingested_since_close[t] = 0;
      ++end_epochs;
    } else {
      advises.push_back(service.SubmitAdvise(id));
    }
    ++submitted;
    if (queries.size() + measures.size() + ingests.size() + advises.size() >=
        512) {
      if (Status s = drain(); !s.ok()) return Fail(s);
    }
  }
  if (Status s = drain(); !s.ok()) return Fail(s);
  const double mixed_s =
      std::chrono::duration<double>(Clock::now() - mixed_start).count();
  const double rps = static_cast<double>(submitted) / mixed_s;

  // ---- Phase 2: recluster storm ---------------------------------------
  uint64_t storm_queries = 0, storm_failures = 0;
  for (int round = 0; round < rounds; ++round) {
    for (int t = 0; t < tenants; ++t) {
      const Workload target = RoundWorkload(lat, round);
      for (int i = 0; i < 4; ++i) {
        const QueryClass cls = target.Sample(&rng);
        Status ingested =
            service.Ingest(ids[static_cast<size_t>(t)],
                           SampleQuery(*schema, cls, &rng));
        if (!ingested.ok()) return Fail(ingested);
      }
      // Closing the epoch fires the background recluster for this tenant.
      auto closed = service.EndEpoch(ids[static_cast<size_t>(t)]);
      if (!closed.ok()) return Fail(closed.status());
      // Readers keep hammering the pool while the relayout packs.
      for (int q = 0; q < 8; ++q) {
        const QueryClass cls = sampler.Sample(&rng);
        queries.push_back(service.SubmitQuery(
            ids[static_cast<size_t>(t)], SampleQuery(*schema, cls, &rng)));
      }
    }
    for (auto& f : queries) {
      ++storm_queries;
      if (!f.get().ok()) ++storm_failures;
    }
    queries.clear();
  }
  // Drain the background reclusters so the adoption counts are final.
  service.Shutdown();

  // ---- Bit-exactness: warm serving path == direct library call --------
  // (Sync surface still works after Shutdown; only the pools are closed.)
  bool bit_identical = true;
  uint64_t total_adoptions = 0;
  for (int t = 0; t < tenants; ++t) {
    const TenantId id = ids[static_cast<size_t>(t)];
    const Workload mu = service.SmoothedWorkload(id).ValueOrDie();
    const Recommendation served = service.Advise(id).ValueOrDie();
    const ClusteringAdvisor advisor(schema);
    IncrementalAdvisorState state;
    EvaluationRequest request{mu};
    request.strategies = config.recluster.strategies;
    request.num_threads = 1;
    request.cost_mode = config.recluster.cost_mode;
    const Recommendation direct =
        advisor.AdviseIncremental(request, &state).ValueOrDie();
    bit_identical = bit_identical && BitIdenticalRecommendations(served, direct);
    const TenantStatus status = service.StatusOf(id).ValueOrDie();
    total_adoptions += status.recluster_adoptions;
  }

  // The final warm advises above are the freshest entries in the SLO
  // windows, so the telemetry snapshot is taken after them.
  const TelemetrySnapshot telemetry = service.Telemetry();
  const MetricsSnapshot snapshot = metrics.Snapshot();
  const HistogramStats query_compute =
      snapshot.histogram("service.query.compute_ns");
  const HistogramStats query_queue =
      snapshot.histogram("service.query.queue_ns");
  const HistogramStats pin_wait = snapshot.histogram("service.epoch.pin_ns");
  const uint64_t published = snapshot.counter("service.epochs_published");

  TextTable table({"metric", "value"});
  table.AddRow({"mixed requests", std::to_string(submitted)});
  table.AddRow({"sustained req/s", FormatDouble(rps, 0)});
  table.AddRow({"query compute p99 (us)",
                FormatDouble(query_compute.p99 / 1e3, 1)});
  table.AddRow({"query queue p99 (us)",
                FormatDouble(query_queue.p99 / 1e3, 1)});
  table.AddRow({"pin wait p99 (ns)", FormatDouble(pin_wait.p99, 0)});
  table.AddRow({"pin wait max (ns)", std::to_string(pin_wait.max)});
  table.AddRow({"storm queries", std::to_string(storm_queries)});
  table.AddRow({"storm failures", std::to_string(storm_failures)});
  table.AddRow({"epochs published", std::to_string(published)});
  table.AddRow({"background adoptions",
                std::to_string(total_adoptions -
                               static_cast<uint64_t>(tenants))});
  table.AddRow({"warm == direct", bit_identical ? "bit-identical" : "NO"});
  std::printf("%s\n", table.Render().c_str());

  // ---- Guards ----------------------------------------------------------
  const double required_rps = 200.0;
  const double query_p99_bound_ns = 250e6;  // 250 ms
  const double pin_p99_bound_ns = 5e6;      // 5 ms: readers never block
  SNAKES_CHECK(tenants < 8 || rps >= required_rps)
      << "sustained " << rps << " req/s < required " << required_rps;
  SNAKES_CHECK(query_compute.p99 <= query_p99_bound_ns)
      << "query compute p99 " << query_compute.p99 << " ns over bound";
  SNAKES_CHECK(pin_wait.p99 <= pin_p99_bound_ns)
      << "epoch pin p99 " << pin_wait.p99
      << " ns: readers blocked on publication";
  SNAKES_CHECK(storm_failures == 0)
      << storm_failures << " queries failed during background reclustering";
  SNAKES_CHECK(total_adoptions >= static_cast<uint64_t>(2 * tenants))
      << "storm produced no background adoptions";
  SNAKES_CHECK(bit_identical)
      << "service Advise diverged from AdviseIncremental";

  // ---- Artifact --------------------------------------------------------
  std::string json = "{\n  \"bench\": \"service_throughput\",\n";
  json += "  \"backend\": \"" +
          std::string(StorageBackendKindName(backend_kind.value())) + "\",\n";
  json += "  \"tenants\": " + std::to_string(tenants) + ",\n";
  json += "  \"request_threads\": " + std::to_string(threads) + ",\n";
  json += "  \"mixed_requests\": " + std::to_string(submitted) + ",\n";
  json += "  \"mixed_seconds\": " + FormatDouble(mixed_s, 3) + ",\n";
  json += "  \"sustained_rps\": " + FormatDouble(rps, 1) + ",\n";
  json += "  \"required_rps\": " + FormatDouble(required_rps, 1) + ",\n";
  json += "  \"query_compute_p99_ns\": " + FormatDouble(query_compute.p99, 0) +
          ",\n";
  json += "  \"query_queue_p99_ns\": " + FormatDouble(query_queue.p99, 0) +
          ",\n";
  json += "  \"query_p99_bound_ns\": " + FormatDouble(query_p99_bound_ns, 0) +
          ",\n";
  json += "  \"pin_wait_p99_ns\": " + FormatDouble(pin_wait.p99, 0) + ",\n";
  json += "  \"pin_wait_max_ns\": " + std::to_string(pin_wait.max) + ",\n";
  json += "  \"pin_p99_bound_ns\": " + FormatDouble(pin_p99_bound_ns, 0) +
          ",\n";
  json += "  \"storm_queries\": " + std::to_string(storm_queries) + ",\n";
  json += "  \"storm_failures\": " + std::to_string(storm_failures) + ",\n";
  json += "  \"end_epochs\": " + std::to_string(end_epochs) + ",\n";
  json += "  \"epochs_published\": " + std::to_string(published) + ",\n";
  json += "  \"recluster_adoptions\": " + std::to_string(total_adoptions) +
          ",\n";
  json += "  \"bit_identical\": ";
  json += bit_identical ? "true" : "false";
  json += ",\n  \"metrics\": " + snapshot.ToJson(/*pretty=*/false);
  json += ",\n  \"telemetry\": " + telemetry.ToJson(/*pretty=*/false) + "\n}\n";
  std::ofstream out(out_path);
  out << json;
  SNAKES_CHECK(out.good()) << "failed to write " << out_path;
  std::printf("wrote %s\n", out_path.c_str());

  if (!telemetry_path.empty()) {
    std::ofstream tout(telemetry_path);
    tout << telemetry.ToJson(/*pretty=*/true);
    SNAKES_CHECK(tout.good()) << "failed to write " << telemetry_path;
    std::printf("wrote %s (%zu requests, %zu tenants, %zu audit entries)\n",
                telemetry_path.c_str(), telemetry.requests.size(),
                telemetry.tenants.size(), telemetry.audit.size());
  }
  return 0;
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) { return snakes::Run(argc, argv); }
