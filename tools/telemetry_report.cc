// telemetry_report — drive a small multi-tenant advisor service and print
// its live telemetry, as Prometheus text exposition or JSON.
//
//   telemetry_report [--format prom|json|recorder] [--tenants N]
//                    [--requests N] [--seed S] [--out PATH]
//
// Registers N tenants, runs a mixed request storm (queries, measures,
// ingests, advises, epoch closes with background reclusters), then renders
// the service's TelemetrySnapshot:
//
//   prom      Prometheus exposition: SLO latency summaries (p50/p99 per
//             tenant x verb), error rates, epoch age, recluster backlog,
//             audit decision counts — what a scraper would pull from a
//             /metrics endpoint.
//   json      The full snapshot: flight-recorder requests, per-tenant SLO
//             windows, the recluster decision audit log, tracer stats.
//   recorder  Just the flight recorder (the "what were the last 4096
//             requests" crash-cart view).
//
// The exposition comes from the same Dispatch verb the service serves
// (`telemetry prom` / `telemetry` / `telemetry recorder`), so this tool
// exercises the real surface, not a parallel rendering path.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "storage/fact_table.h"
#include "util/result.h"
#include "util/rng.h"

namespace snakes {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

std::string FlagValue(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

std::shared_ptr<const FactTable> RandomFacts(
    const std::shared_ptr<const StarSchema>& schema, Rng* rng) {
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    const uint64_t records = 1 + rng->Below(3);
    for (uint64_t r = 0; r < records; ++r) {
      facts->AddRecord(schema->Unflatten(id), rng->NextDouble());
    }
  }
  return facts;
}

int Run(int argc, char** argv) {
  const std::string format = FlagValue(argc, argv, "--format", "prom");
  const int tenants = std::atoi(FlagValue(argc, argv, "--tenants", "3").c_str());
  const int requests =
      std::atoi(FlagValue(argc, argv, "--requests", "600").c_str());
  const uint64_t seed = static_cast<uint64_t>(
      std::atoll(FlagValue(argc, argv, "--seed", "1999").c_str()));
  const std::string out_path = FlagValue(argc, argv, "--out", "");
  if (format != "prom" && format != "json" && format != "recorder") {
    return Fail(Status::InvalidArgument(
        "--format must be prom, json, or recorder; got '" + format + "'"));
  }
  if (tenants < 1) return Fail(Status::InvalidArgument("--tenants >= 1"));

  MetricsRegistry metrics;
  Tracer tracer;
  ServiceConfig config;
  config.request_threads = 2;
  config.window_epochs = 1;
  config.recluster_on_epoch_close = true;
  config.recluster.strategies = {"row-major"};
  config.storage = StorageConfig{512, 60};
  config.obs = ObsSink{&metrics, &tracer};
  AdvisorService service(config);

  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).ValueOrDie());
  const QueryClassLattice lat(*schema);
  Rng rng(seed);
  std::vector<TenantId> ids;
  for (int t = 0; t < tenants; ++t) {
    TenantSpec spec;
    spec.name = "tenant" + std::to_string(t);
    spec.schema = schema;
    spec.facts = RandomFacts(schema, &rng);
    spec.initial_workload = Workload::Random(lat, &rng);
    auto id = service.RegisterTenant(std::move(spec));
    if (!id.ok()) return Fail(id.status());
    ids.push_back(id.value());
  }

  // Mixed traffic: enough of every verb that the SLO windows, the flight
  // recorder, and the audit log all have something to show.
  const Workload sampler = Workload::Uniform(lat);
  std::vector<int> ingested(static_cast<size_t>(tenants), 0);
  for (int r = 0; r < requests; ++r) {
    const size_t t = rng.Below(static_cast<uint64_t>(tenants));
    const TenantId id = ids[t];
    const GridQuery query =
        SampleQuery(*schema, sampler.Sample(&rng), &rng);
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      (void)service.Query(id, query);
    } else if (dice < 0.70) {
      (void)service.Measure(id, query);
    } else if (dice < 0.90) {
      (void)service.Ingest(id, query);
      ++ingested[t];
    } else if (dice < 0.96 && ingested[t] > 0) {
      (void)service.EndEpoch(id);  // fires a background recluster
      ingested[t] = 0;
    } else {
      (void)service.Advise(id);
    }
  }
  service.Shutdown();  // drain background reclusters into the recorder

  const char* verb = format == "prom"       ? "telemetry prom"
                     : format == "recorder" ? "telemetry recorder"
                                            : "telemetry";
  const Result<std::string> rendered = service.Dispatch("tenant0", verb);
  if (!rendered.ok()) return Fail(rendered.status());

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << rendered.value();
    if (!out.good()) {
      return Fail(Status::Internal("failed to write " + out_path));
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(rendered.value().c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace snakes

int main(int argc, char** argv) { return snakes::Run(argc, argv); }
