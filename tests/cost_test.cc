#include <gtest/gtest.h>

#include <memory>

#include "cost/class_cost.h"
#include "cost/edge_model.h"
#include "cost/workload_cost.h"
#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/lattice_path.h"
#include "util/rng.h"

namespace snakes {
namespace {

// The Section-2 toy warehouse: 4x4 grid, complete binary 2-level hierarchies.
// Dimension 0 is the paper's A (first class coordinate), dimension 1 is B.
class ToyCostTest : public ::testing::Test {
 protected:
  ToyCostTest()
      : schema_(std::make_shared<StarSchema>(
            StarSchema::Symmetric(2, 2, 2).value())),
        lattice_(*schema_),
        p1_(LatticePath::FromSteps(lattice_, {1, 1, 0, 0}).value()),
        p2_(LatticePath::FromSteps(lattice_, {1, 0, 1, 0}).value()) {}

  Fraction Avg(const Linearization& lin, int i, int j) {
    return MeasureClassCosts(lin).Avg(QueryClass{i, j});
  }

  std::shared_ptr<const StarSchema> schema_;
  QueryClassLattice lattice_;
  LatticePath p1_;  // row-major (Figure 1)
  LatticePath p2_;  // quadrant / Z (Figure 2a)
};

// ---------------------------------------------------------------------------
// Table 1, column by column. Entries are written <total>/<num queries> in the
// paper; Fraction reduces them, so we compare values.
// ---------------------------------------------------------------------------

TEST_F(ToyCostTest, Table1ColumnP1) {
  auto lin = PathOrder::Make(schema_, p1_, false).value();
  EXPECT_EQ(Avg(*lin, 0, 0), Fraction(16, 16));
  EXPECT_EQ(Avg(*lin, 1, 1), Fraction(8, 4));
  EXPECT_EQ(Avg(*lin, 2, 2), Fraction(1, 1));
  EXPECT_EQ(Avg(*lin, 1, 0), Fraction(16, 8));
  EXPECT_EQ(Avg(*lin, 0, 1), Fraction(8, 8));
  EXPECT_EQ(Avg(*lin, 2, 0), Fraction(16, 4));
  EXPECT_EQ(Avg(*lin, 0, 2), Fraction(4, 4));
  EXPECT_EQ(Avg(*lin, 2, 1), Fraction(8, 2));
  EXPECT_EQ(Avg(*lin, 1, 2), Fraction(2, 2));
}

TEST_F(ToyCostTest, Table1ColumnP2) {
  auto lin = PathOrder::Make(schema_, p2_, false).value();
  EXPECT_EQ(Avg(*lin, 0, 0), Fraction(16, 16));
  EXPECT_EQ(Avg(*lin, 1, 1), Fraction(4, 4));
  EXPECT_EQ(Avg(*lin, 2, 2), Fraction(1, 1));
  EXPECT_EQ(Avg(*lin, 1, 0), Fraction(16, 8));
  EXPECT_EQ(Avg(*lin, 0, 1), Fraction(8, 8));
  EXPECT_EQ(Avg(*lin, 2, 0), Fraction(16, 4));
  EXPECT_EQ(Avg(*lin, 0, 2), Fraction(8, 4));
  EXPECT_EQ(Avg(*lin, 2, 1), Fraction(4, 2));
  EXPECT_EQ(Avg(*lin, 1, 2), Fraction(2, 2));
}

TEST_F(ToyCostTest, Table1ColumnHilbert) {
  // swap_first_two = true is the paper's Figure 2(b) orientation.
  auto lin = HilbertCurve::Make(schema_, /*swap_first_two=*/true).value();
  EXPECT_EQ(Avg(*lin, 0, 0), Fraction(16, 16));
  EXPECT_EQ(Avg(*lin, 1, 1), Fraction(4, 4));
  EXPECT_EQ(Avg(*lin, 2, 2), Fraction(1, 1));
  EXPECT_EQ(Avg(*lin, 1, 0), Fraction(10, 8));
  EXPECT_EQ(Avg(*lin, 0, 1), Fraction(10, 8));
  EXPECT_EQ(Avg(*lin, 2, 0), Fraction(8, 4));
  EXPECT_EQ(Avg(*lin, 0, 2), Fraction(9, 4));
  EXPECT_EQ(Avg(*lin, 2, 1), Fraction(2, 2));
  EXPECT_EQ(Avg(*lin, 1, 2), Fraction(3, 2));
}

TEST_F(ToyCostTest, Table1ColumnSnakedP1) {
  auto lin = PathOrder::Make(schema_, p1_, true).value();
  EXPECT_EQ(Avg(*lin, 0, 0), Fraction(16, 16));
  EXPECT_EQ(Avg(*lin, 1, 1), Fraction(6, 4));
  EXPECT_EQ(Avg(*lin, 2, 2), Fraction(1, 1));
  EXPECT_EQ(Avg(*lin, 1, 0), Fraction(14, 8));
  EXPECT_EQ(Avg(*lin, 0, 1), Fraction(8, 8));
  EXPECT_EQ(Avg(*lin, 2, 0), Fraction(13, 4));
  EXPECT_EQ(Avg(*lin, 0, 2), Fraction(4, 4));
  EXPECT_EQ(Avg(*lin, 2, 1), Fraction(5, 2));
  EXPECT_EQ(Avg(*lin, 1, 2), Fraction(2, 2));
}

TEST_F(ToyCostTest, Table1ColumnSnakedP2) {
  auto lin = PathOrder::Make(schema_, p2_, true).value();
  EXPECT_EQ(Avg(*lin, 0, 0), Fraction(16, 16));
  EXPECT_EQ(Avg(*lin, 1, 1), Fraction(4, 4));
  EXPECT_EQ(Avg(*lin, 2, 2), Fraction(1, 1));
  EXPECT_EQ(Avg(*lin, 1, 0), Fraction(12, 8));
  EXPECT_EQ(Avg(*lin, 0, 1), Fraction(8, 8));
  // The paper's table prints 12/4 here, but that entry is internally
  // inconsistent: for ANY linearization, covered(2,0) = a1+a2 and
  // covered(0,1) = b1 and covered(2,1) = a1+a2+b1 must be additive; the
  // paper's 12/4, 8/8, 3/2 give 4 + 8 != 10. Every valid snaked P2 order
  // yields 11/4 (and Lemma 3's CV (4,1;8,2) agrees).
  EXPECT_EQ(Avg(*lin, 2, 0), Fraction(11, 4));
  EXPECT_EQ(Avg(*lin, 0, 2), Fraction(6, 4));
  EXPECT_EQ(Avg(*lin, 2, 1), Fraction(3, 2));
  EXPECT_EQ(Avg(*lin, 1, 2), Fraction(2, 2));
}

// ---------------------------------------------------------------------------
// Table 2: expected cost over the three toy workloads.
// ---------------------------------------------------------------------------

class ToyWorkloadTest : public ToyCostTest {
 protected:
  Workload W1() { return Workload::Uniform(lattice_); }
  Workload W2() {
    // All classes except (0,1), (0,2), (1,1), equally likely.
    return Workload::UniformOver(
               lattice_, {QueryClass{0, 0}, QueryClass{2, 2}, QueryClass{1, 0},
                          QueryClass{2, 0}, QueryClass{2, 1}, QueryClass{1, 2}})
        .value();
  }
  Workload W3() {
    return Workload::UniformOver(lattice_,
                                 {QueryClass{0, 0}, QueryClass{0, 1},
                                  QueryClass{0, 2}, QueryClass{1, 2}})
        .value();
  }
};

TEST_F(ToyWorkloadTest, Table2UnsnakedPaths) {
  EXPECT_NEAR(ExpectedPathCost(W1(), p1_), 17.0 / 9, 1e-12);
  EXPECT_NEAR(ExpectedPathCost(W1(), p2_), 15.0 / 9, 1e-12);
  EXPECT_NEAR(ExpectedPathCost(W2(), p1_), 13.0 / 6, 1e-12);
  EXPECT_NEAR(ExpectedPathCost(W2(), p2_), 11.0 / 6, 1e-12);
  EXPECT_NEAR(ExpectedPathCost(W3(), p1_), 1.0, 1e-12);
  EXPECT_NEAR(ExpectedPathCost(W3(), p2_), 5.0 / 4, 1e-12);
}

TEST_F(ToyWorkloadTest, Table2Hilbert) {
  auto h = HilbertCurve::Make(schema_, true).value();
  EXPECT_NEAR(MeasureExpectedCost(W1(), *h), 49.0 / 36, 1e-12);
  EXPECT_NEAR(MeasureExpectedCost(W2(), *h), 31.0 / 24, 1e-12);
  EXPECT_NEAR(MeasureExpectedCost(W3(), *h), 3.0 / 2, 1e-12);
}

TEST_F(ToyWorkloadTest, Table2SnakedPaths) {
  EXPECT_NEAR(ExpectedSnakedPathCost(W1(), p1_), 14.0 / 9, 1e-12);
  EXPECT_NEAR(ExpectedSnakedPathCost(W2(), p1_), 21.0 / 12, 1e-12);
  EXPECT_NEAR(ExpectedSnakedPathCost(W3(), p1_), 1.0, 1e-12);
  // Snaked P2 under workloads 1 and 2 inherits the (2,0) correction:
  // 49/36 instead of the paper's 25/18, 35/24 instead of 9/6.
  EXPECT_NEAR(ExpectedSnakedPathCost(W1(), p2_), 49.0 / 36, 1e-12);
  EXPECT_NEAR(ExpectedSnakedPathCost(W2(), p2_), 35.0 / 24, 1e-12);
  EXPECT_NEAR(ExpectedSnakedPathCost(W3(), p2_), 9.0 / 8, 1e-12);
}

// ---------------------------------------------------------------------------
// Model cross-validation.
// ---------------------------------------------------------------------------

TEST_F(ToyCostTest, DistMatchesPaperExamples) {
  // Section 4: dist_P1(0,1) = 1 (on path), dist_P1(2,0) = 4.
  EXPECT_DOUBLE_EQ(DistToPath(p1_, QueryClass{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(DistToPath(p1_, QueryClass{2, 0}), 4.0);
  // Section 5.2: P3 = (0,0),(0,1),(1,1),(2,1),(2,2); dist(2,0) = 4,
  // snaked dist(2,0) = 10/4, benefit 1.6.
  const LatticePath p3 =
      LatticePath::FromSteps(lattice_, {1, 0, 0, 1}).value();
  EXPECT_DOUBLE_EQ(DistToPath(p3, QueryClass{2, 0}), 4.0);
  EXPECT_DOUBLE_EQ(DistToSnakedPath(p3, QueryClass{2, 0}), 10.0 / 4);
}

TEST_F(ToyCostTest, AnalyticMatchesMeasuredForAllPaths) {
  const auto paths = EnumerateAllPaths(lattice_).value();
  ASSERT_EQ(paths.size(), 6u);  // C(4,2)
  for (const LatticePath& path : paths) {
    auto plain = PathOrder::Make(schema_, path, false).value();
    auto snaked = PathOrder::Make(schema_, path, true).value();
    const ClassCostTable measured_plain = MeasureClassCosts(*plain);
    const ClassCostTable measured_snaked = MeasureClassCosts(*snaked);
    const ClassCostTable analytic_plain =
        AnalyticPathCosts(*schema_, path).value();
    const ClassCostTable analytic_snaked =
        AnalyticSnakedPathCosts(*schema_, path).value();
    for (uint64_t i = 0; i < lattice_.size(); ++i) {
      const QueryClass c = lattice_.ClassAt(i);
      EXPECT_EQ(measured_plain.Avg(c), analytic_plain.Avg(c))
          << path.ToString() << " class " << c.ToString();
      EXPECT_EQ(measured_snaked.Avg(c), analytic_snaked.Avg(c))
          << path.ToString() << " class " << c.ToString();
    }
  }
}

TEST(EdgeModelTest, HistogramCountsTotalEdges) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  auto h = HilbertCurve::Make(schema).value();
  const EdgeHistogram hist = MeasureEdgeHistogram(*h);
  EXPECT_EQ(hist.Total(), schema->num_cells() - 1);
  EXPECT_EQ(hist.NumDiagonal(), 0u);  // Hilbert is non-diagonal
}

TEST(EdgeModelTest, RowMajorHasDiagonalEdges) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  const QueryClassLattice lat(*schema);
  const LatticePath p1 = LatticePath::FromSteps(lat, {1, 1, 0, 0}).value();
  auto lin = PathOrder::Make(schema, p1, false).value();
  const EdgeHistogram hist = MeasureEdgeHistogram(*lin);
  // CV(P1) = (8,4;0,0;0,2;0,1) in the paper's (a;b;d) order, i.e. the B
  // dimension carries the axis edges and the wrap-arounds are diagonal.
  EXPECT_EQ(hist.OfType(QueryClass{0, 1}), 8u);
  EXPECT_EQ(hist.OfType(QueryClass{0, 2}), 4u);
  EXPECT_EQ(hist.OfType(QueryClass{1, 2}), 2u);
  EXPECT_EQ(hist.OfType(QueryClass{2, 2}), 1u);
  EXPECT_EQ(hist.NumDiagonal(), 3u);
}

TEST(EdgeModelTest, SnakedPathsNeverDiagonalProperty) {
  // Property: snaking removes every diagonal edge, on assorted schemas.
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Hierarchy> dims;
    const int k = 2 + static_cast<int>(rng.Below(2));
    for (int d = 0; d < k; ++d) {
      std::vector<uint64_t> fanouts;
      const int levels = 1 + static_cast<int>(rng.Below(2));
      for (int l = 0; l < levels; ++l) fanouts.push_back(2 + rng.Below(3));
      dims.push_back(
          Hierarchy::Uniform("d" + std::to_string(d), fanouts).value());
    }
    auto schema = std::make_shared<StarSchema>(
        StarSchema::Make("rand", std::move(dims)).value());
    const QueryClassLattice lat(*schema);
    // Random path: shuffle a step multiset.
    std::vector<int> steps;
    for (int d = 0; d < k; ++d) {
      for (int l = 0; l < lat.levels(d); ++l) steps.push_back(d);
    }
    for (size_t i = steps.size(); i > 1; --i) {
      std::swap(steps[i - 1], steps[rng.Below(i)]);
    }
    const LatticePath path = LatticePath::FromSteps(lat, steps).value();
    auto snaked = PathOrder::Make(schema, path, true).value();
    EXPECT_EQ(MeasureEdgeHistogram(*snaked).NumDiagonal(), 0u)
        << path.ToString();
  }
}

TEST(WorkloadCostTest, ExpectedCostMatchesManualSum) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  const QueryClassLattice lat(*schema);
  const Workload mu =
      Workload::FromMasses(lat, {{QueryClass{1, 0}, 0.5},
                                 {QueryClass{2, 1}, 0.5}})
          .value();
  auto h = HilbertCurve::Make(schema, true).value();
  const ClassCostTable costs = MeasureClassCosts(*h);
  EXPECT_NEAR(ExpectedCost(mu, costs),
              0.5 * (10.0 / 8) + 0.5 * 1.0, 1e-12);
}

}  // namespace
}  // namespace snakes
