// Tests for the redesigned Advisor API: the EvaluationRequest -> registry ->
// EvaluationPlan pipeline, the parallel evaluation engine's determinism, and
// strategy-factory applicability.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/evaluation.h"
#include "core/strategy.h"
#include "cost/cost_model.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "storage/fact_table.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> SymmetricSchema(uint64_t fanout) {
  auto schema = StarSchema::Symmetric(2, 2, fanout);
  EXPECT_TRUE(schema.ok());
  return std::make_shared<StarSchema>(std::move(schema).value());
}

/// A 2-D schema with extents 4 and 8 (both powers of two, unequal).
std::shared_ptr<const StarSchema> UnequalPow2Schema() {
  auto a = Hierarchy::Uniform("a", {2, 2}, {"leaf", "mid", "all"});
  auto b = Hierarchy::Uniform("b", {2, 4}, {"leaf", "mid", "all"});
  EXPECT_TRUE(a.ok() && b.ok());
  auto schema = StarSchema::Make("t", {a.value(), b.value()});
  EXPECT_TRUE(schema.ok());
  return std::make_shared<StarSchema>(std::move(schema).value());
}

std::shared_ptr<const FactTable> DenseFacts(
    std::shared_ptr<const StarSchema> schema, uint64_t seed) {
  auto facts = std::make_shared<FactTable>(schema);
  Rng rng(seed);
  const uint64_t rows = schema->extent(0);
  const uint64_t cols = schema->extent(1);
  CellCoord coord;
  coord.resize(2);
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      coord[0] = r;
      coord[1] = c;
      const uint64_t records = rng.Below(40);
      for (uint64_t n = 0; n < records; ++n) {
        facts->AddRecord(coord, static_cast<double>(n));
      }
    }
  }
  return facts;
}

void ExpectIdenticalRecommendations(const Recommendation& a,
                                    const Recommendation& b) {
  EXPECT_EQ(a.optimal_path.steps(), b.optimal_path.steps());
  EXPECT_EQ(a.optimal_snaked_path.steps(), b.optimal_snaked_path.steps());
  EXPECT_EQ(a.optimal_path_cost, b.optimal_path_cost);
  EXPECT_EQ(a.snaked_optimal_cost, b.snaked_optimal_cost);
  EXPECT_EQ(a.optimal_snaked_cost, b.optimal_snaked_cost);
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].name, b.ranked[i].name) << "rank " << i;
    // Bit-identical, not approximately equal: the engine promises the same
    // arithmetic per candidate at every thread count.
    EXPECT_EQ(a.ranked[i].expected_cost, b.ranked[i].expected_cost)
        << a.ranked[i].name;
    ASSERT_EQ(a.ranked[i].io.has_value(), b.ranked[i].io.has_value());
    if (a.ranked[i].io.has_value()) {
      EXPECT_EQ(a.ranked[i].io->expected_seeks, b.ranked[i].io->expected_seeks);
      EXPECT_EQ(a.ranked[i].io->expected_normalized_blocks,
                b.ranked[i].io->expected_normalized_blocks);
      EXPECT_EQ(a.ranked[i].io->expected_pages, b.ranked[i].io->expected_pages);
    }
  }
}

TEST(EvaluationTest, ParallelAdviseIsReportForReportIdenticalToSerial) {
  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  const QueryClassLattice lattice = advisor.Lattice();
  Rng rng(2026);
  for (int trial = 0; trial < 5; ++trial) {
    const Workload mu = Workload::Random(lattice, &rng);
    EvaluationRequest serial(mu);
    serial.num_threads = 1;
    EvaluationRequest parallel(mu);
    parallel.num_threads = 4;
    const auto serial_rec = advisor.Advise(serial);
    const auto parallel_rec = advisor.Advise(parallel);
    ASSERT_TRUE(serial_rec.ok());
    ASSERT_TRUE(parallel_rec.ok());
    ExpectIdenticalRecommendations(serial_rec.value(), parallel_rec.value());
  }
}

TEST(EvaluationTest, ParallelAdviseWithStorageMeasurementIsDeterministic) {
  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(advisor.Lattice());
  auto facts = DenseFacts(schema, 99);

  EvaluationRequest serial(mu);
  serial.num_threads = 1;
  serial.measure_storage = true;
  serial.storage.page_size_bytes = 512;
  serial.facts = facts;
  EvaluationRequest parallel(mu);
  parallel.num_threads = 4;
  parallel.measure_storage = true;
  parallel.storage.page_size_bytes = 512;
  parallel.facts = facts;

  const auto serial_rec = advisor.Advise(serial);
  const auto parallel_rec = advisor.Advise(parallel);
  ASSERT_TRUE(serial_rec.ok());
  ASSERT_TRUE(parallel_rec.ok());
  ASSERT_TRUE(serial_rec.value().ranked.front().io.has_value());
  ExpectIdenticalRecommendations(serial_rec.value(), parallel_rec.value());
}

TEST(EvaluationTest, ParallelDpMatchesSerialDpExactly) {
  auto schema = StarSchema::Symmetric(3, 2, 2);
  ASSERT_TRUE(schema.ok());
  const QueryClassLattice lattice(schema.value());
  Rng rng(7);
  ThreadPool pool(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Workload mu = Workload::Random(lattice, &rng);
    const auto serial = FindOptimalLatticePath(mu);
    const auto parallel = FindOptimalLatticePath(mu, &pool);
    ASSERT_TRUE(serial.ok() && parallel.ok());
    EXPECT_EQ(serial.value().path.steps(), parallel.value().path.steps());
    EXPECT_EQ(serial.value().cost, parallel.value().cost);
    EXPECT_EQ(serial.value().cost_table, parallel.value().cost_table);
  }
}

TEST(EvaluationTest, PlanThenEvaluateMatchesAdvise) {
  // Advise is exactly Plan + Evaluate; the split pipeline and the one-shot
  // call must produce bit-identical recommendations.
  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  Rng rng(11);
  const Workload mu = Workload::Random(advisor.Lattice(), &rng);
  const auto plan = advisor.Plan(EvaluationRequest(mu));
  ASSERT_TRUE(plan.ok());
  const auto staged = advisor.Evaluate(plan.value());
  const auto one_shot = advisor.Advise(EvaluationRequest(mu));
  ASSERT_TRUE(staged.ok() && one_shot.ok());
  ExpectIdenticalRecommendations(staged.value(), one_shot.value());
}

TEST(EvaluationTest, NonPowerOfTwoExtentsRejectCurvesExactlyAsBefore) {
  auto schema = SymmetricSchema(3);  // extents 9x9
  const StrategyRegistry& registry = StrategyRegistry::BuiltIns();
  for (const std::string name : {"z-curve", "gray-curve", "hilbert"}) {
    const StrategyFactory* factory = registry.Find(name);
    ASSERT_NE(factory, nullptr) << name;
    const Status applicable = factory->Applicable(*schema);
    EXPECT_FALSE(applicable.ok()) << name;
    EXPECT_EQ(applicable.code(), StatusCode::kInvalidArgument) << name;
  }
  // The factory verdict is the curve constructor's own, not a re-derivation.
  EXPECT_EQ(registry.Find("z-curve")->Applicable(*schema),
            ZCurve::Make(schema).status());
  EXPECT_EQ(registry.Find("gray-curve")->Applicable(*schema),
            GrayCurve::Make(schema).status());

  // Planning still succeeds; the curves land in `skipped` with their reason.
  const ClusteringAdvisor advisor(schema);
  const auto plan =
      advisor.Plan(EvaluationRequest(Workload::Uniform(advisor.Lattice())));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->skipped.size(), 3u);
  EXPECT_EQ(plan->skipped[0].factory, "z-curve");
  EXPECT_EQ(plan->skipped[1].factory, "gray-curve");
  EXPECT_EQ(plan->skipped[2].factory, "hilbert");
  for (const SkippedStrategy& s : plan->skipped) {
    EXPECT_FALSE(s.reason.ok());
  }
  for (const PlannedStrategy& s : plan->strategies) {
    EXPECT_TRUE(s.factory == "lattice-paths" || s.factory == "row-major")
        << s.factory;
  }
}

TEST(EvaluationTest, UnequalPowerOfTwoExtentsRejectOnlyHilbert) {
  auto schema = UnequalPow2Schema();
  const StrategyRegistry& registry = StrategyRegistry::BuiltIns();
  EXPECT_TRUE(registry.Find("z-curve")->Applicable(*schema).ok());
  EXPECT_TRUE(registry.Find("gray-curve")->Applicable(*schema).ok());
  EXPECT_FALSE(registry.Find("hilbert")->Applicable(*schema).ok());

  const ClusteringAdvisor advisor(schema);
  const auto plan =
      advisor.Plan(EvaluationRequest(Workload::Uniform(advisor.Lattice())));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->skipped.size(), 1u);
  EXPECT_EQ(plan->skipped[0].factory, "hilbert");
}

TEST(EvaluationTest, UnknownStrategyFamilyFailsFast) {
  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  EvaluationRequest request(Workload::Uniform(advisor.Lattice()));
  request.strategies = {"lattice-paths", "bogus"};
  const auto plan = advisor.Plan(request);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("unknown strategy family 'bogus'"),
            std::string::npos)
      << plan.status().ToString();
}

TEST(EvaluationTest, RestrictedRequestCanYieldEmptyRanking) {
  auto schema = SymmetricSchema(3);  // curves inapplicable
  const ClusteringAdvisor advisor(schema);
  EvaluationRequest request(Workload::Uniform(advisor.Lattice()));
  request.strategies = {"hilbert"};
  const auto rec = advisor.Advise(request);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->ranked.empty());
  EXPECT_FALSE(rec->has_best());
  EXPECT_NE(rec->ToString().find("no strategy evaluated"), std::string::npos);
}

TEST(EvaluationDeathTest, BestOnEmptyRankingAbortsWithClearMessage) {
  auto schema = SymmetricSchema(3);
  const ClusteringAdvisor advisor(schema);
  EvaluationRequest request(Workload::Uniform(advisor.Lattice()));
  request.strategies = {"hilbert"};
  const auto rec = advisor.Advise(request);
  ASSERT_TRUE(rec.ok());
  EXPECT_DEATH(rec->best(), "no strategy was evaluated");
}

TEST(EvaluationTest, CostModelPricesExpectedMsOnlyAtTheEdge) {
  // The default (no request.cost_model) prices the seek surrogate with the
  // seed's DiskModel seek time; swapping the model repriced expected_ms but
  // leaves expected_cost — the ranking key — bit-identical.
  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(advisor.Lattice());

  EvaluationRequest plain(mu);
  plain.num_threads = 1;
  const Recommendation by_default = advisor.Advise(plain).value();
  ASSERT_FALSE(by_default.ranked.empty());
  for (const StrategyReport& report : by_default.ranked) {
    EXPECT_EQ(report.expected_ms,
              report.expected_cost * DefaultCostModel()->SeekMs())
        << report.name;
  }

  EvaluationRequest priced(mu);
  priced.num_threads = 1;
  priced.cost_model = MakeCostModel(CostModelKind::kSsd).value();
  const Recommendation by_ssd = advisor.Advise(priced).value();
  ASSERT_EQ(by_ssd.ranked.size(), by_default.ranked.size());
  for (size_t i = 0; i < by_ssd.ranked.size(); ++i) {
    EXPECT_EQ(by_ssd.ranked[i].name, by_default.ranked[i].name);
    EXPECT_EQ(by_ssd.ranked[i].expected_cost,
              by_default.ranked[i].expected_cost);
    EXPECT_EQ(by_ssd.ranked[i].expected_ms,
              by_ssd.ranked[i].expected_cost * priced.cost_model->SeekMs());
  }

  // With storage measured, the model prices the measured I/O instead.
  EvaluationRequest measured(mu);
  measured.num_threads = 1;
  measured.measure_storage = true;
  measured.facts = DenseFacts(schema, 5);
  measured.cost_model = MakeCostModel(CostModelKind::kHdd).value();
  const Recommendation by_io = advisor.Advise(measured).value();
  for (const StrategyReport& report : by_io.ranked) {
    ASSERT_TRUE(report.io.has_value()) << report.name;
    EXPECT_EQ(report.expected_ms,
              measured.cost_model->ExpectedMs(
                  *report.io, measured.storage.page_size_bytes))
        << report.name;
  }
}

TEST(EvaluationTest, MeasureStorageWithoutFactsFails) {
  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  EvaluationRequest request(Workload::Uniform(advisor.Lattice()));
  request.measure_storage = true;
  const auto plan = advisor.Plan(request);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("fact table"), std::string::npos);
}

TEST(EvaluationTest, MismatchedWorkloadLatticeFails) {
  const ClusteringAdvisor advisor(SymmetricSchema(2));
  const QueryClassLattice other(*SymmetricSchema(3));
  const auto plan = advisor.Plan(EvaluationRequest(Workload::Uniform(other)));
  EXPECT_FALSE(plan.ok());
}

TEST(EvaluationTest, PlanToStringListsCandidatesAndSkips) {
  auto schema = SymmetricSchema(3);
  const ClusteringAdvisor advisor(schema);
  const auto plan =
      advisor.Plan(EvaluationRequest(Workload::Uniform(advisor.Lattice())));
  ASSERT_TRUE(plan.ok());
  const std::string text = plan->ToString();
  EXPECT_NE(text.find("evaluate [lattice-paths]"), std::string::npos) << text;
  EXPECT_NE(text.find("skip     [hilbert]"), std::string::npos) << text;
}

/// New families plug in through the registry without advisor changes.
class ReverseRowMajorFactory : public StrategyFactory {
 public:
  std::string name() const override { return "reverse-row-major"; }
  Status Applicable(const StarSchema&) const override { return Status::OK(); }
  Result<std::vector<std::shared_ptr<const Linearization>>> Build(
      const StrategyContext& ctx) const override {
    SNAKES_ASSIGN_OR_RETURN(auto rm,
                            RowMajorOrder::Make(ctx.schema, {1, 0}));
    return std::vector<std::shared_ptr<const Linearization>>{std::move(rm)};
  }
};

TEST(EvaluationTest, CustomFactoryPlugsInThroughRegistry) {
  StrategyRegistry registry;
  ASSERT_TRUE(registry.Register(MakeLatticePathStrategyFactory()).ok());
  ASSERT_TRUE(
      registry.Register(std::make_shared<ReverseRowMajorFactory>()).ok());
  // Duplicate names are rejected.
  EXPECT_FALSE(
      registry.Register(std::make_shared<ReverseRowMajorFactory>()).ok());

  auto schema = SymmetricSchema(2);
  const ClusteringAdvisor advisor(schema);
  EvaluationRequest request(Workload::Uniform(advisor.Lattice()));
  request.registry = &registry;
  const auto rec = advisor.Advise(request);
  ASSERT_TRUE(rec.ok());
  bool found = false;
  for (const StrategyReport& report : rec->ranked) {
    found |= report.name.rfind("row-major", 0) == 0;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace snakes
