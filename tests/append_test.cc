#include <gtest/gtest.h>

#include <memory>

#include "curves/row_major.h"
#include "hierarchy/star_schema.h"
#include "storage/append.h"
#include "util/rng.h"

namespace snakes {
namespace {

class AppendTest : public ::testing::Test {
 protected:
  AppendTest() {
    auto a = Hierarchy::Uniform("a", {2, 2}).value();
    auto b = Hierarchy::Uniform("b", {2, 2}).value();
    schema_ = std::make_shared<StarSchema>(
        StarSchema::Make("s", {a, b}).value());
    auto facts = std::make_shared<FactTable>(schema_);
    Rng rng(3);
    for (int r = 0; r < 200; ++r) {
      facts->AddRecord(schema_->Unflatten(rng.Below(schema_->num_cells())),
                       1.0);
    }
    facts_ = facts;
    lin_ = std::shared_ptr<const Linearization>(
        RowMajorOrder::Make(schema_, {0, 1}).value());
    layout_ = std::make_shared<PackedLayout>(
        PackedLayout::Pack(lin_, facts_, StorageConfig{64, 16}).value());
  }

  CellCoord At(uint64_t x, uint64_t y) {
    CellCoord c;
    c.resize(2);
    c[0] = x;
    c[1] = y;
    return c;
  }

  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const FactTable> facts_;
  std::shared_ptr<const Linearization> lin_;
  std::shared_ptr<const PackedLayout> layout_;
};

TEST_F(AppendTest, EmptyOverflowMatchesBase) {
  OverflowLayout overflow(*layout_);
  EXPECT_EQ(overflow.overflow_pages(), 0u);
  const IoSimulator sim(*layout_);
  const QueryClassLattice lat(*schema_);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const GridQuery q = SampleQuery(
        *schema_, lat.ClassAt(rng.Below(lat.size())), &rng);
    const QueryIo with = overflow.Measure(q);
    const QueryIo base = sim.Measure(q);
    EXPECT_EQ(with.pages, base.pages);
    EXPECT_EQ(with.seeks, base.seeks);
    EXPECT_EQ(with.records, base.records);
  }
  const Workload mu = Workload::Uniform(lat);
  const WorkloadIoStats a = overflow.Expect(mu);
  const WorkloadIoStats b = IoSimulator::Expect(mu, sim.MeasureAllClasses());
  EXPECT_NEAR(a.expected_seeks, b.expected_seeks, 1e-9);
  EXPECT_NEAR(a.expected_pages, b.expected_pages, 1e-9);
  EXPECT_NEAR(a.expected_normalized_blocks, b.expected_normalized_blocks,
              1e-9);
}

TEST_F(AppendTest, AppendsAccumulatePagesAndRecords) {
  OverflowLayout overflow(*layout_);
  // 64-byte pages, 16-byte records: 4 records per overflow page.
  for (int i = 0; i < 9; ++i) overflow.Append(At(0, 0), 1.0);
  EXPECT_EQ(overflow.overflow_records(), 9u);
  EXPECT_EQ(overflow.overflow_pages(), 3u);

  GridQuery cell{QueryClass{0, 0}, {0, 0}};
  const QueryIo io = overflow.Measure(cell);
  const QueryIo base = IoSimulator(*layout_).Measure(cell);
  EXPECT_EQ(io.records, base.records + 9);
  // The overflow pages are consecutive: one extra seek, three extra pages.
  EXPECT_EQ(io.pages, base.pages + 3);
  EXPECT_EQ(io.seeks, base.seeks + 1);
}

TEST_F(AppendTest, ScatteredAppendsHitManyQueries) {
  OverflowLayout overflow(*layout_);
  // One record in every cell: every single-cell query gains exactly one
  // overflow page.
  for (uint64_t id = 0; id < schema_->num_cells(); ++id) {
    overflow.Append(schema_->Unflatten(id), 1.0);
  }
  GridQuery first{QueryClass{0, 0}, {0, 0}};
  GridQuery last{QueryClass{0, 0}, {3, 3}};
  const IoSimulator sim(*layout_);
  for (const GridQuery& q : {first, last}) {
    const QueryIo io = overflow.Measure(q);
    EXPECT_EQ(io.pages, sim.Measure(q).pages + 1) << q.ToString();
  }
}

TEST_F(AppendTest, ExpectMatchesPerQueryAggregation) {
  OverflowLayout overflow(*layout_);
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    overflow.Append(schema_->Unflatten(rng.Below(schema_->num_cells())), 1.0);
  }
  const QueryClassLattice lat(*schema_);
  const Workload mu = Workload::Uniform(lat);
  const WorkloadIoStats expected = overflow.Expect(mu);

  double manual_seeks = 0.0;
  for (uint64_t ci = 0; ci < lat.size(); ++ci) {
    const QueryClass cls = lat.ClassAt(ci);
    uint64_t seeks = 0, nonempty = 0;
    for (const GridQuery& q : AllQueriesInClass(*schema_, cls)) {
      const QueryIo io = overflow.Measure(q);
      if (io.records == 0) continue;
      ++nonempty;
      seeks += io.seeks;
    }
    if (nonempty > 0) {
      manual_seeks += mu.probability_at(ci) * static_cast<double>(seeks) /
                      static_cast<double>(nonempty);
    }
  }
  EXPECT_NEAR(expected.expected_seeks, manual_seeks, 1e-9);
}

TEST_F(AppendTest, DegradationGrowsWithOverflow) {
  const QueryClassLattice lat(*schema_);
  const Workload mu = Workload::Uniform(lat);
  OverflowLayout overflow(*layout_);
  Rng rng(13);
  double previous = overflow.Expect(mu).expected_seeks;
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 40; ++i) {
      overflow.Append(schema_->Unflatten(rng.Below(schema_->num_cells())),
                      1.0);
    }
    const double now = overflow.Expect(mu).expected_seeks;
    EXPECT_GE(now, previous - 1e-9);
    previous = now;
  }
  EXPECT_GT(previous, IoSimulator::Expect(
                          mu, IoSimulator(*layout_).MeasureAllClasses())
                          .expected_seeks);
}

}  // namespace
}  // namespace snakes
