#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/fixed_vector.h"
#include "util/fraction.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/text_table.h"

namespace snakes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad fanout");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad fanout");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad fanout");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

Status Fails() { return Status::NotFound("nope"); }
Status Propagates() {
  SNAKES_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  SNAKES_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 4);
  EXPECT_EQ(*good, 4);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 8), 0u);
  EXPECT_EQ(CeilDiv(1, 8), 1u);
  EXPECT_EQ(CeilDiv(8, 8), 1u);
  EXPECT_EQ(CeilDiv(9, 8), 2u);
}

TEST(MathTest, PowersOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1023));
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(5), 2);
  EXPECT_EQ(FloorPowerOfTwo(5), 4u);
  EXPECT_EQ(CeilPowerOfTwo(5), 8u);
  EXPECT_EQ(CeilPowerOfTwo(8), 8u);
}

TEST(MathTest, Gcd) {
  EXPECT_EQ(Gcd(12, 18), 6u);
  EXPECT_EQ(Gcd(0, 7), 7u);
  EXPECT_EQ(Gcd(7, 0), 7u);
  EXPECT_EQ(Gcd(35, 64), 1u);
}

TEST(MathTest, CheckedMulAddWork) {
  EXPECT_EQ(CheckedMul(1u << 20, 1u << 20), uint64_t{1} << 40);
  EXPECT_EQ(CheckedAdd(UINT64_MAX - 1, 1), UINT64_MAX);
}

TEST(FractionTest, ReducesToLowestTerms) {
  Fraction f(16, 8);
  EXPECT_EQ(f.numerator(), 2u);
  EXPECT_EQ(f.denominator(), 1u);
  EXPECT_EQ(f.ToString(), "2");
  EXPECT_EQ(Fraction(49, 36).ToString(), "49/36");
}

TEST(FractionTest, Arithmetic) {
  const Fraction a(1, 3), b(1, 6);
  EXPECT_EQ(a + b, Fraction(1, 2));
  EXPECT_EQ(a - b, Fraction(1, 6));
  EXPECT_EQ(a * b, Fraction(1, 18));
  EXPECT_EQ(a / b, Fraction(2));
}

TEST(FractionTest, Comparisons) {
  EXPECT_LT(Fraction(49, 36), Fraction(17, 9));
  EXPECT_GT(Fraction(17, 9), Fraction(15, 9));
  EXPECT_LE(Fraction(1, 2), Fraction(2, 4));
  EXPECT_GE(Fraction(1, 2), Fraction(2, 4));
}

TEST(FractionTest, ZeroNormalizes) {
  EXPECT_EQ(Fraction(0, 7), Fraction());
  EXPECT_DOUBLE_EQ(Fraction(0, 7).ToDouble(), 0.0);
}

TEST(FixedVectorTest, BasicOperations) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(3);
  v.push_back(5);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v.back(), 5);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  v.resize(3);
  EXPECT_EQ(v[2], 0);
}

TEST(FixedVectorTest, ComparisonsAreLexicographic) {
  FixedVector<int, 4> a{1, 2};
  FixedVector<int, 4> b{1, 3};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == (FixedVector<int, 4>{1, 2}));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u) << "all residues should appear in 1000 draws";
}

TEST(RngTest, UniformInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Rng rng(13);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 40000; ++i) ++hits[zipf.Sample(&rng)];
  for (int h : hits) EXPECT_NEAR(h, 10000, 600);
}

TEST(ZipfTest, SkewPrefersSmallIndices) {
  Rng rng(13);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 20000; ++i) ++hits[zipf.Sample(&rng)];
  EXPECT_GT(hits[0], hits[50] * 5);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "cost"});
  t.AddRow({"row-major", "17/9"});
  t.AddRow({"hilbert", "49/36"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("hilbert    49/36"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatPercent(0.721, 1), "72.1%");
}

/// Installs a capturing sink for the test's lifetime, restoring the
/// previous sink (stderr by default) afterwards.
class CapturedLog {
 public:
  CapturedLog() {
    previous_ = internal::SetLogSink(
        [this](std::string_view line) { lines_.emplace_back(line); });
  }
  ~CapturedLog() { internal::SetLogSink(std::move(previous_)); }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  internal::LogSink previous_;
  std::vector<std::string> lines_;
};

TEST(LoggingTest, ThreadIdsAreDenseAndStable) {
  const uint64_t self = ThisThreadId();
  EXPECT_GE(self, 1u);
  EXPECT_EQ(ThisThreadId(), self);  // stable within a thread
  uint64_t other = 0;
  std::thread t([&other] { other = ThisThreadId(); });
  t.join();
  EXPECT_NE(other, self);
  // Dense counter, not an opaque hash: new threads get small sequential ids.
  EXPECT_LT(other, self + 1000);
}

TEST(LoggingTest, PrefixCarriesSeverityTimestampThreadAndLocation) {
  const std::string prefix = internal::LogPrefix('W', "dir/file.cc", 42);
  EXPECT_EQ(prefix[0], 'W');
  EXPECT_NE(prefix.find("file.cc:42] "), std::string::npos);
  EXPECT_NE(prefix.find("t" + std::to_string(ThisThreadId())),
            std::string::npos);
  // Monotonic seconds with fixed sub-second digits between the severity and
  // the thread id ("W 12.345678 t1 file.cc:42] ").
  const size_t dot = prefix.find('.');
  ASSERT_NE(dot, std::string::npos);
  EXPECT_EQ(prefix.find(" t"), dot + 7);
}

TEST(LoggingTest, SinkCapturesLogLines) {
  CapturedLog captured;
  SNAKES_LOG(INFO) << "packed " << 3 << " pages";
  ASSERT_EQ(captured.lines().size(), 1u);
  const std::string& line = captured.lines()[0];
  EXPECT_EQ(line[0], 'I');
  EXPECT_NE(line.find("packed 3 pages"), std::string::npos);
  EXPECT_NE(line.find("util_test.cc"), std::string::npos);
}

TEST(LoggingTest, TimestampsAreMonotonicAcrossLines) {
  CapturedLog captured;
  SNAKES_LOG(INFO) << "first";
  SNAKES_LOG(INFO) << "second";
  ASSERT_EQ(captured.lines().size(), 2u);
  auto seconds = [](const std::string& line) {
    return std::stod(line.substr(2, line.find(" t") - 2));
  };
  EXPECT_LE(seconds(captured.lines()[0]), seconds(captured.lines()[1]));
}

TEST(LoggingDeathTest, FatalCheckRoutesThroughTheSinkWithPrefix) {
  // The death regex runs against stderr, which is the default sink — the
  // fatal line must arrive there with the same prefix shape as every other
  // line (severity F, timestamp, thread id, location, condition text).
  EXPECT_DEATH(SNAKES_CHECK(1 == 2) << "context 77",
               "F .* t[0-9]+ util_test\\.cc:[0-9]+\\] CHECK failed: "
               "1 == 2 context 77");
}

}  // namespace
}  // namespace snakes
