// Tests for src/service: the multi-tenant AdvisorService daemon. Covers
// registration/validation, the bit-identical-to-the-library serving
// contract (BitIdenticalRecommendations vs a direct AdviseIncremental),
// double-buffered epoch publication with pinned readers, the batched
// Submit* surface and its shutdown semantics, the textual Dispatch surface,
// and — via tests/interleave_driver.h — schedule-independence of the final
// recommendation across >= 100 seeded interleavings of
// {ingest, advise, query, measure, pin, recluster}, serially and on real
// threads (the TSan leg of tools/check.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/advisor.h"
#include "cost/cost_model.h"
#include "hierarchy/dimension_table.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/workload.h"
#include "lattice/workload_delta.h"
#include "obs/metrics.h"
#include "service/service.h"
#include "service/telemetry.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "storage/query_engine.h"
#include "interleave_driver.h"
#include "util/result.h"

namespace snakes {
namespace {

// 2-D schema, two levels per dimension, 4x4 leaf grid, 9 lattice classes —
// large enough for row-major(a,b) and row-major(b,a) to rank differently,
// small enough for hundreds of registrations per test binary.
std::shared_ptr<const StarSchema> SmallSchema() {
  auto a = Hierarchy::Uniform("a", {2, 2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2}).value();
  return std::make_shared<StarSchema>(StarSchema::Make("s", {a, b}).value());
}

std::shared_ptr<const FactTable> DenseFacts(
    const std::shared_ptr<const StarSchema>& schema, uint64_t per_cell) {
  auto facts = std::make_shared<FactTable>(schema);
  CellCoord c;
  c.resize(2);
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t y = 0; y < 4; ++y) {
      c[0] = x;
      c[1] = y;
      for (uint64_t r = 0; r < per_cell; ++r) {
        facts->AddRecord(c, static_cast<double>(x + y));
      }
    }
  }
  return facts;
}

ServiceConfig SmallConfig() {
  ServiceConfig config;
  config.request_threads = 2;
  config.recluster_on_epoch_close = false;  // deterministic unless opted in
  config.recluster.strategies = {"row-major"};
  config.storage = StorageConfig{256, 125};
  return config;
}

bool SameBits(double a, double b) {
  uint64_t x, y;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

GridQuery MakeQuery(int l0, int l1, uint64_t b0, uint64_t b1) {
  GridQuery query;
  query.cls = QueryClass{l0, l1};
  query.block.resize(2);
  query.block[0] = b0;
  query.block[1] = b1;
  return query;
}

// Point mass on "aggregate all of b, drill into a" and its mirror — the
// pair of workloads whose optimal row-major orders differ, so moving the
// window from one to the other forces an adoption (see recluster_test).
Workload PreferAB(const QueryClassLattice& lat) {
  return Workload::Point(lat, QueryClass{0, 2}).value();
}
Workload PreferBA(const QueryClassLattice& lat) {
  return Workload::Point(lat, QueryClass{2, 0}).value();
}

/// The reference serving path: a fresh advisor + fresh incremental state on
/// the same workload the service advises on. AdviseIncremental is
/// bit-identical to a cold Advise, so a fresh state is a valid reference
/// for the service's warm memo.
Recommendation DirectAdvise(const std::shared_ptr<const StarSchema>& schema,
                            const ServiceConfig& config, const Workload& mu) {
  const ClusteringAdvisor advisor(schema);
  IncrementalAdvisorState state;
  EvaluationRequest request{mu};
  request.strategies = config.recluster.strategies;
  request.num_threads = 1;
  request.cost_mode = config.recluster.cost_mode;
  return advisor.AdviseIncremental(request, &state).value();
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

TEST(ServiceRegistrationTest, ValidatesSpecs) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());

  TenantSpec unnamed;
  unnamed.schema = schema;
  EXPECT_FALSE(service.RegisterTenant(std::move(unnamed)).ok());

  TenantSpec no_schema;
  no_schema.name = "t";
  EXPECT_FALSE(service.RegisterTenant(std::move(no_schema)).ok());

  // Facts built against a different StarSchema instance.
  auto other = SmallSchema();
  TenantSpec cross;
  cross.name = "t";
  cross.schema = schema;
  cross.facts = DenseFacts(other, 1);
  EXPECT_FALSE(service.RegisterTenant(std::move(cross)).ok());

  // An initial workload over a different lattice shape.
  auto schema3 = std::make_shared<StarSchema>(
      StarSchema::Symmetric(3, 1, 2).value());
  TenantSpec wrong_workload;
  wrong_workload.name = "t";
  wrong_workload.schema = schema;
  wrong_workload.initial_workload =
      Workload::Uniform(QueryClassLattice(*schema3));
  EXPECT_FALSE(service.RegisterTenant(std::move(wrong_workload)).ok());

  TenantSpec good;
  good.name = "t";
  good.schema = schema;
  good.facts = DenseFacts(schema, 2);
  ASSERT_TRUE(service.RegisterTenant(std::move(good)).ok());

  TenantSpec duplicate;
  duplicate.name = "t";
  duplicate.schema = schema;
  EXPECT_FALSE(service.RegisterTenant(std::move(duplicate)).ok());
  EXPECT_EQ(service.num_tenants(), 1u);
}

TEST(ServiceRegistrationTest, PublishesEpochOneBeforeReturning) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "sales";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  spec.initial_workload = PreferAB(QueryClassLattice(*schema));
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  EXPECT_EQ(service.FindTenant("sales").value(), id);
  EXPECT_FALSE(service.FindTenant("nope").ok());

  const auto epoch = service.PinEpoch(id).value();
  EXPECT_EQ(epoch->sequence, 1u);
  ASSERT_NE(epoch->linearization, nullptr);
  ASSERT_NE(epoch->backend, nullptr);
  EXPECT_EQ(&epoch->backend->linearization(), epoch->linearization.get());

  const TenantStatus status = service.StatusOf(id).value();
  EXPECT_EQ(status.published_sequence, 1u);
  EXPECT_EQ(status.recluster_epochs, 1u);
  EXPECT_EQ(status.recluster_adoptions, 1u);
  EXPECT_FALSE(status.current_strategy.empty());
  EXPECT_NE(status.ToString().find("sales"), std::string::npos);
}

TEST(ServiceRegistrationTest, AnalyticTenantAdvisesButDoesNotServeQueries) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "analytic";
  spec.schema = schema;  // no facts
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  EXPECT_EQ(service.PinEpoch(id).value()->backend, nullptr);
  EXPECT_TRUE(service.Advise(id).ok());
  const auto query = service.Query(id, MakeQuery(0, 0, 0, 0));
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(service.Measure(id, MakeQuery(0, 0, 0, 0)).ok());
}

// ---------------------------------------------------------------------------
// Serving contract: bit-identical to the library
// ---------------------------------------------------------------------------

TEST(ServiceAdviseTest, BitIdenticalToDirectAdviseIncremental) {
  auto schema = SmallSchema();
  const ServiceConfig config = SmallConfig();
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  spec.initial_workload = PreferAB(QueryClassLattice(*schema));
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  // Cold: smoothed == initial workload.
  const Recommendation first = service.Advise(id).value();
  EXPECT_TRUE(BitIdenticalRecommendations(
      first, DirectAdvise(schema, config,
                          service.SmoothedWorkload(id).value())));

  // Warm: ingest a shifted epoch, close it, advise again through the memo.
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(service.Ingest(id, MakeQuery(2, 0, 0, b)).ok());
  }
  ASSERT_EQ(service.EndEpoch(id).value(), 1u);
  const Recommendation warm = service.Advise(id).value();
  EXPECT_TRUE(BitIdenticalRecommendations(
      warm, DirectAdvise(schema, config,
                         service.SmoothedWorkload(id).value())));
  // The shift actually moved the estimate: the two advises differ.
  EXPECT_FALSE(BitIdenticalRecommendations(first, warm));
}

TEST(ServiceQueryTest, AnswersMatchADirectEngineOnThePinnedLayout) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 3);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  const auto epoch = service.PinEpoch(id).value();
  const QueryEngine direct(*epoch->backend);
  const IoSimulator simulator(*epoch->backend);
  const std::vector<GridQuery> queries = {
      MakeQuery(0, 0, 3, 1), MakeQuery(1, 1, 0, 1), MakeQuery(2, 2, 0, 0),
      MakeQuery(0, 2, 2, 0), MakeQuery(2, 0, 0, 3)};
  for (const GridQuery& q : queries) {
    const QueryAnswer expected = direct.Execute(q);
    const QueryAnswer got = service.Query(id, q).value();
    EXPECT_EQ(got.count, expected.count) << q.ToString();
    EXPECT_EQ(got.sum, expected.sum) << q.ToString();
    EXPECT_EQ(got.io.pages, expected.io.pages) << q.ToString();
    EXPECT_EQ(got.io.seeks, expected.io.seeks) << q.ToString();

    const QueryIo io = service.Measure(id, q).value();
    const QueryIo direct_io = simulator.Measure(q);
    EXPECT_EQ(io.records, direct_io.records) << q.ToString();
    EXPECT_EQ(io.pages, direct_io.pages) << q.ToString();
    EXPECT_EQ(io.seeks, direct_io.seeks) << q.ToString();
  }
}

TEST(ServiceQueryTest, RejectsMalformedTypedQueries) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 1);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  GridQuery wrong_dims;
  wrong_dims.cls = QueryClass{0};
  wrong_dims.block.resize(1);
  wrong_dims.block[0] = 0;
  EXPECT_FALSE(service.Query(id, wrong_dims).ok());
  EXPECT_FALSE(service.Ingest(id, wrong_dims).ok());

  const auto bad_level = service.Query(id, MakeQuery(5, 0, 0, 0));
  ASSERT_FALSE(bad_level.ok());
  EXPECT_EQ(bad_level.status().code(), StatusCode::kOutOfRange);

  // Level 1 has 2 blocks; block 7 is out of range.
  EXPECT_FALSE(service.Query(id, MakeQuery(1, 0, 7, 0)).ok());
  EXPECT_FALSE(service.Measure(id, MakeQuery(1, 0, 7, 0)).ok());

  EXPECT_FALSE(service.Query(99, MakeQuery(0, 0, 0, 0)).ok());
}

// ---------------------------------------------------------------------------
// Epochs and reclustering
// ---------------------------------------------------------------------------

TEST(ServiceEpochTest, EndEpochRequiresIngestedQueries) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  const auto empty = service.EndEpoch(id);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(service.Ingest(id, MakeQuery(0, 0, 0, 0)).ok());
  EXPECT_EQ(service.EndEpoch(id).value(), 1u);
  EXPECT_FALSE(service.EndEpoch(id).ok());  // empty again after the close
}

TEST(ServiceEpochTest, IngestsPerEpochClosesAutomatically) {
  auto schema = SmallSchema();
  ServiceConfig config = SmallConfig();
  config.ingests_per_epoch = 3;
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Ingest(id, MakeQuery(0, 0, 0, 0)).ok());
  }
  TenantStatus status = service.StatusOf(id).value();
  EXPECT_EQ(status.epochs_closed, 1u);
  EXPECT_EQ(status.ingested_this_epoch, 0u);
  EXPECT_EQ(status.ingested_total, 3u);

  ASSERT_TRUE(service.Ingest(id, MakeQuery(0, 0, 1, 0)).ok());
  status = service.StatusOf(id).value();
  EXPECT_EQ(status.epochs_closed, 1u);
  EXPECT_EQ(status.ingested_this_epoch, 1u);
}

TEST(ServiceEpochTest, ReclusterPublishesWhilePinnedReadersKeepTheOldEpoch) {
  auto schema = SmallSchema();
  ServiceConfig config = SmallConfig();
  config.window_epochs = 1;  // smoothed == the most recent epoch
  AdvisorService service(config);
  const QueryClassLattice lat(*schema);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 3);
  spec.initial_workload = PreferAB(lat);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  const auto pinned = service.PinEpoch(id).value();
  ASSERT_EQ(pinned->sequence, 1u);
  const std::string before =
      service.StatusOf(id).value().current_strategy;

  // Move the whole window to the mirrored workload and recluster: the
  // optimal row-major order flips, the engine adopts, a new epoch publishes.
  for (uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(service.Ingest(id, MakeQuery(2, 0, 0, b)).ok());
  }
  ASSERT_TRUE(service.EndEpoch(id).ok());
  ASSERT_TRUE(SameProbabilities(service.SmoothedWorkload(id).value(),
                                PreferBA(lat)));
  const EpochReport report = service.ReclusterNow(id).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kAdopt);

  const auto fresh = service.PinEpoch(id).value();
  EXPECT_EQ(fresh->sequence, 2u);
  EXPECT_NE(fresh->backend, pinned->backend);
  EXPECT_NE(service.StatusOf(id).value().current_strategy, before);

  // The superseded epoch stays fully usable for as long as it is pinned —
  // readers in flight during the publish never see a torn layout.
  const GridQuery q = MakeQuery(1, 1, 1, 0);
  const QueryAnswer old_answer = QueryEngine(*pinned->backend).Execute(q);
  const QueryAnswer new_answer = service.Query(id, q).value();
  EXPECT_EQ(old_answer.count, new_answer.count);
  EXPECT_EQ(old_answer.sum, new_answer.sum);
  EXPECT_EQ(pinned->sequence, 1u);
}

// ---------------------------------------------------------------------------
// Batched surface and shutdown
// ---------------------------------------------------------------------------

TEST(ServiceSubmitTest, BatchedRequestsMatchTheSynchronousSurface) {
  auto schema = SmallSchema();
  MetricsRegistry metrics;
  ServiceConfig config = SmallConfig();
  config.obs.metrics = &metrics;
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  auto advise = service.SubmitAdvise(id);
  auto query = service.SubmitQuery(id, MakeQuery(1, 1, 0, 0));
  auto measure = service.SubmitMeasure(id, MakeQuery(0, 2, 1, 0));
  auto ingest = service.SubmitIngest(id, MakeQuery(0, 0, 2, 2));
  ASSERT_TRUE(advise.get().ok());
  ASSERT_TRUE(query.get().ok());
  ASSERT_TRUE(measure.get().ok());
  ASSERT_TRUE(ingest.get().ok());
  auto end_epoch = service.SubmitEndEpoch(id);
  ASSERT_TRUE(end_epoch.get().ok());
  auto recluster = service.SubmitRecluster(id);
  ASSERT_TRUE(recluster.get().ok());

  // Queue-wait/compute histograms recorded one sample per request type.
  const MetricsSnapshot snapshot = metrics.Snapshot();
  for (const char* type :
       {"advise", "query", "measure", "ingest", "end_epoch", "recluster"}) {
    const std::string prefix = std::string("service.") + type;
    EXPECT_EQ(snapshot.histogram(prefix + ".queue_ns").count, 1u) << type;
    EXPECT_EQ(snapshot.histogram(prefix + ".compute_ns").count, 1u) << type;
  }
  EXPECT_GE(snapshot.counter("service.tenant.t.requests"), 6u);
}

TEST(ServiceSubmitTest, ShutdownTurnsSubmissionsIntoStatusErrors) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 1);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  ASSERT_TRUE(service.SubmitAdvise(id).get().ok());
  service.Shutdown();
  service.Shutdown();  // idempotent

  auto advise = service.SubmitAdvise(id);
  const Result<Recommendation> rejected = advise.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.SubmitIngest(id, MakeQuery(0, 0, 0, 0)).get().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(service.SubmitRecluster(id).get().ok());
  EXPECT_FALSE(service.SubmitDispatch("t", "status").get().ok());
}

// ---------------------------------------------------------------------------
// Textual surface
// ---------------------------------------------------------------------------

struct LabeledService {
  std::shared_ptr<const StarSchema> schema;
  std::vector<DimensionTable> tables;
};

LabeledService LabeledSchema() {
  std::vector<Hierarchy> hierarchies;
  std::vector<DimensionTable> tables;
  for (int d = 0; d < 2; ++d) {
    Hierarchy h =
        Hierarchy::Uniform("dim" + std::to_string(d), {2, 2}).value();
    std::vector<std::vector<std::string>> labels(3);
    for (int l = 0; l <= 2; ++l) {
      for (uint64_t b = 0; b < h.num_blocks(l); ++b) {
        labels[static_cast<size_t>(l)].push_back(
            "d" + std::to_string(d) + "l" + std::to_string(l) + "b" +
            std::to_string(b));
      }
    }
    tables.push_back(DimensionTable::Make(h, std::move(labels)).value());
    hierarchies.push_back(std::move(h));
  }
  return {std::make_shared<StarSchema>(
              StarSchema::Make("svc", hierarchies).value()),
          std::move(tables)};
}

TEST(ServiceDispatchTest, ServesTextualRequests) {
  LabeledService ls = LabeledSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = ls.schema;
  spec.facts = DenseFacts(ls.schema, 2);
  spec.tables = ls.tables;
  ASSERT_TRUE(service.RegisterTenant(std::move(spec)).ok());

  EXPECT_EQ(service.Dispatch("t", "advise").value().rfind("best ", 0), 0u);
  EXPECT_NE(service.Dispatch("t", "status").value().find("tenant t"),
            std::string::npos);
  EXPECT_TRUE(service.Dispatch("t", "ingest dim0=d0l0b1").ok());
  EXPECT_NE(service.Dispatch("t", "end-epoch").value().find("closed epoch 1"),
            std::string::npos);
  const std::string answer =
      service.Dispatch("t", "query dim0=d0l1b0 dim1=d1l0b2").value();
  EXPECT_EQ(answer.rfind("count ", 0), 0u);
  EXPECT_TRUE(service.Dispatch("t", "measure dim1=d1l1b1").ok());
  EXPECT_TRUE(service.Dispatch("t", "recluster").ok());

  EXPECT_FALSE(service.Dispatch("nope", "status").ok());
  EXPECT_FALSE(service.Dispatch("t", "frobnicate").ok());
  EXPECT_FALSE(service.Dispatch("t", "").ok());
  EXPECT_FALSE(service.Dispatch("t", "query dim0=nosuchlabel").ok());
  EXPECT_FALSE(service.Dispatch("t", "ingest dim0==").ok());
}

TEST(ServiceDispatchTest, CostModelVerbReportsAndSwitches) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  // Bare verb reports the current model (name + its JSON description).
  const std::string initial = service.Dispatch("t", "costmodel").value();
  EXPECT_EQ(initial.rfind("costmodel analytic", 0), 0u);
  EXPECT_NE(initial.find("{"), std::string::npos);

  // Presets switch live; status and telemetry pick the new name up.
  EXPECT_EQ(service.Dispatch("t", "costmodel hdd").value(), "costmodel hdd");
  EXPECT_EQ(service.StatusOf(id).value().cost_model, "hdd");
  EXPECT_NE(service.Dispatch("t", "status").value().find("cost model hdd"),
            std::string::npos);
  EXPECT_EQ(service.Dispatch("t", "costmodel ssd").value(), "costmodel ssd");
  EXPECT_EQ(service.Dispatch("t", "costmodel").value().rfind("costmodel ssd",
                                                             0),
            0u);

  // Calibrated with inline coefficients JSON.
  EXPECT_EQ(service
                .Dispatch("t",
                          "costmodel calibrated {\"intercept_ms\": 0.5, "
                          "\"coefficients\": {\"seeks\": 2.0}}")
                .value(),
            "costmodel calibrated");
  EXPECT_EQ(service.StatusOf(id).value().cost_model, "calibrated");
  const TelemetrySnapshot telemetry = service.Telemetry();
  ASSERT_EQ(telemetry.tenants.size(), 1u);
  EXPECT_EQ(telemetry.tenants[0].cost_model, "calibrated");
  EXPECT_NE(telemetry.ToJson().find("\"cost_model\": \"calibrated\""),
            std::string::npos);

  // Malformed payloads are errors and leave the model untouched.
  EXPECT_FALSE(service.Dispatch("t", "costmodel floppy").ok());
  EXPECT_FALSE(service.Dispatch("t", "costmodel calibrated").ok());
  EXPECT_FALSE(
      service.Dispatch("t", "costmodel calibrated {\"bad\": 1}").ok());
  EXPECT_EQ(service.StatusOf(id).value().cost_model, "calibrated");
}

TEST(ServiceCostModelTest, SwitchKeepsWarmAdviseCacheHitting) {
  // The acceptance criterion: switching a tenant's cost model must NOT
  // invalidate its class-cost memo — the cached integers are model-
  // independent (the seek surrogate); only the ms conversion at the edge
  // changes. A re-advise after the switch evaluates zero classes, keeps
  // expected_cost bit-identical, and reprices expected_ms.
  auto schema = SmallSchema();
  MetricsRegistry metrics;
  ServiceConfig config = SmallConfig();
  config.obs.metrics = &metrics;
  AdvisorService service(config);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  const Recommendation cold = service.Advise(id).value();
  const uint64_t evals_after_cold =
      metrics.GetCounter("advisor.incremental_cost_evaluations")->value();
  EXPECT_GT(evals_after_cold, 0u);

  CostModelSpec hdd;
  hdd.kind = CostModelKind::kHdd;
  ASSERT_TRUE(service.SetCostModel(id, hdd).ok());
  const Recommendation warm = service.Advise(id).value();

  // Zero new class evaluations, all hits: the memo survived the switch.
  EXPECT_EQ(metrics.GetCounter("advisor.incremental_cost_evaluations")->value(),
            evals_after_cold);
  EXPECT_GT(metrics.GetCounter("advisor.incremental_cost_hits")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("service.costmodel_switches")->value(), 0u);

  // Ranking key bit-identical; the priced edge moved with the model.
  ASSERT_EQ(warm.ranked.size(), cold.ranked.size());
  const auto hdd_model = MakeCostModel(CostModelKind::kHdd).value();
  for (size_t i = 0; i < warm.ranked.size(); ++i) {
    EXPECT_EQ(warm.ranked[i].name, cold.ranked[i].name);
    EXPECT_TRUE(
        SameBits(warm.ranked[i].expected_cost, cold.ranked[i].expected_cost));
    EXPECT_NE(warm.ranked[i].expected_ms, cold.ranked[i].expected_ms);
    // Unmeasured advises price the seek surrogate directly.
    EXPECT_EQ(warm.ranked[i].expected_ms,
              warm.ranked[i].expected_cost * hdd_model->SeekMs());
    EXPECT_EQ(cold.ranked[i].expected_ms,
              cold.ranked[i].expected_cost * DefaultCostModel()->SeekMs());
  }

  EXPECT_FALSE(service.SetCostModel(9999, hdd).ok());  // unknown tenant
}

TEST(ServiceCostModelTest, RegistrationSpecSeedsTheTenantModel) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  spec.cost_model.kind = CostModelKind::kSsd;
  const TenantId id = service.RegisterTenant(std::move(spec)).value();
  EXPECT_EQ(service.StatusOf(id).value().cost_model, "ssd");
  const auto ssd = MakeCostModel(CostModelKind::kSsd).value();
  const Recommendation rec = service.Advise(id).value();
  ASSERT_TRUE(rec.has_best());
  EXPECT_EQ(rec.best().expected_ms, rec.best().expected_cost * ssd->SeekMs());

  // A bad registration spec fails cleanly.
  TenantSpec bad;
  bad.name = "u";
  bad.schema = schema;
  bad.cost_model.kind = CostModelKind::kCalibrated;  // no payload
  EXPECT_FALSE(service.RegisterTenant(std::move(bad)).ok());
}

TEST(ServiceDispatchTest, QueryVerbsRequireDimensionTables) {
  auto schema = SmallSchema();
  AdvisorService service(SmallConfig());
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 1);  // no tables
  ASSERT_TRUE(service.RegisterTenant(std::move(spec)).ok());

  const auto query = service.Dispatch("t", "query dim0=x");
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(service.Dispatch("t", "advise").ok());  // non-query verbs fine
}

// ---------------------------------------------------------------------------
// Interleaving: schedule-independence of the served state
// ---------------------------------------------------------------------------

/// One mixed op set against one tenant: ingests whose per-class counts
/// commute, advises, reclusters, and pinned-epoch queries. After any
/// permutation the final close + advise must be bit-identical to a direct
/// library call on the final smoothed workload, because the ops commute on
/// the state the advise reads (the window) and publication never mutates a
/// pinned layout.
std::vector<InterleaveDriver::Op> MixedOps(AdvisorService* service,
                                           TenantId id) {
  std::vector<InterleaveDriver::Op> ops;
  for (uint64_t b = 0; b < 3; ++b) {
    ops.push_back([service, id, b]() {
      ASSERT_TRUE(service->Ingest(id, MakeQuery(0, 2, b, 0)).ok());
    });
  }
  for (uint64_t b = 0; b < 2; ++b) {
    ops.push_back([service, id, b]() {
      ASSERT_TRUE(service->Ingest(id, MakeQuery(2, 0, 0, b)).ok());
    });
  }
  ops.push_back(
      [service, id]() { ASSERT_TRUE(service->Advise(id).ok()); });
  ops.push_back(
      [service, id]() { ASSERT_TRUE(service->ReclusterNow(id).ok()); });
  ops.push_back([service, id]() {
    // Pin, then read through the pin: must stay coherent even if a
    // recluster publishes a fresh epoch in between.
    const auto epoch = service->PinEpoch(id).value();
    const QueryAnswer a = QueryEngine(*epoch->backend).Execute(
        MakeQuery(1, 1, 0, 1));
    const QueryAnswer b = service->Query(id, MakeQuery(1, 1, 0, 1)).value();
    ASSERT_EQ(a.count, b.count);
    ASSERT_EQ(a.sum, b.sum);
  });
  ops.push_back([service, id]() {
    ASSERT_TRUE(service->Measure(id, MakeQuery(0, 0, 1, 1)).ok());
  });
  return ops;
}

class ServiceInterleaveTest : public ::testing::TestWithParam<int> {};

TEST_P(ServiceInterleaveTest, SeededScheduleYieldsBitIdenticalAdvice) {
  auto schema = SmallSchema();
  const ServiceConfig config = SmallConfig();
  AdvisorService service(config);
  const QueryClassLattice lat(*schema);
  TenantSpec spec;
  spec.name = "t";
  spec.schema = schema;
  spec.facts = DenseFacts(schema, 2);
  spec.initial_workload = PreferAB(lat);
  const TenantId id = service.RegisterTenant(std::move(spec)).value();

  InterleaveDriver driver(0xD15C0 + static_cast<uint64_t>(GetParam()));
  driver.RunSerial(MixedOps(&service, id));

  ASSERT_TRUE(service.EndEpoch(id).ok());
  const Recommendation final_rec = service.Advise(id).value();

  // The schedule-independent reference: the window saw exactly two epochs —
  // the initial workload and the closed epoch (3 queries on (0,2), 2 on
  // (2,0)) — regardless of permutation.
  std::vector<double> dense(lat.size(), 0.0);
  dense[lat.Index(QueryClass{0, 2})] = 3.0;
  dense[lat.Index(QueryClass{2, 0})] = 2.0;
  const Workload epoch_w =
      Workload::FromDense(lat, std::move(dense), /*normalize=*/true).value();
  std::vector<double> avg(lat.size(), 0.0);
  for (uint64_t i = 0; i < lat.size(); ++i) {
    avg[i] = (PreferAB(lat).probability_at(i) + epoch_w.probability_at(i)) / 2;
  }
  const Workload expected =
      Workload::FromDense(lat, std::move(avg), /*normalize=*/true).value();
  ASSERT_TRUE(SameProbabilities(service.SmoothedWorkload(id).value(),
                                expected));
  EXPECT_TRUE(BitIdenticalRecommendations(
      final_rec, DirectAdvise(schema, config, expected)));
}

// 112 serial schedules + the 16 concurrent seeds below >= 100 interleavings.
INSTANTIATE_TEST_SUITE_P(Seeds, ServiceInterleaveTest,
                         ::testing::Range(0, 112));

TEST(ServiceInterleaveTest, ConcurrentSchedulesMatchTheSerialResult) {
  auto schema = SmallSchema();
  const ServiceConfig config = SmallConfig();
  const QueryClassLattice lat(*schema);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    AdvisorService service(config);
    TenantSpec spec;
    spec.name = "t";
    spec.schema = schema;
    spec.facts = DenseFacts(schema, 2);
    spec.initial_workload = PreferAB(lat);
    const TenantId id = service.RegisterTenant(std::move(spec)).value();

    InterleaveDriver driver(0xC0C0 + seed);
    driver.RunConcurrent(3, MixedOps(&service, id));

    ASSERT_TRUE(service.EndEpoch(id).ok());
    EXPECT_TRUE(BitIdenticalRecommendations(
        service.Advise(id).value(),
        DirectAdvise(schema, config, service.SmoothedWorkload(id).value())));
  }
}

TEST(ServiceInterleaveTest, BackgroundReclusterNeverBlocksOrTearsReaders) {
  auto schema = SmallSchema();
  ServiceConfig config = SmallConfig();
  config.recluster_on_epoch_close = true;
  config.window_epochs = 1;
  const QueryClassLattice lat(*schema);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    AdvisorService service(config);
    TenantSpec spec;
    spec.name = "t";
    spec.schema = schema;
    spec.facts = DenseFacts(schema, 2);
    spec.initial_workload = PreferAB(lat);
    const TenantId id = service.RegisterTenant(std::move(spec)).value();

    // Readers hammer queries while epoch closes trigger background
    // reclusters that flip the layout under them.
    std::vector<InterleaveDriver::Op> ops;
    for (int i = 0; i < 6; ++i) {
      ops.push_back([&service, id]() {
        const QueryAnswer a = service.Query(id, MakeQuery(1, 1, 1, 1)).value();
        ASSERT_EQ(a.count, 2u * 2u * 2u);  // 2x2 cells, 2 records each
      });
    }
    ops.push_back([&service, id]() {
      for (uint64_t b = 0; b < 4; ++b) {
        ASSERT_TRUE(service.Ingest(id, MakeQuery(2, 0, 0, b)).ok());
      }
      ASSERT_TRUE(service.EndEpoch(id).ok());
    });
    InterleaveDriver driver(0xF00D + seed);
    driver.RunConcurrent(3, ops);

    // Drain the background recluster, then check a fresh epoch published.
    service.Shutdown();
    const TenantStatus status = service.StatusOf(id).value();
    EXPECT_GE(status.recluster_epochs, 2u);
    EXPECT_EQ(service.PinEpoch(id).value()->sequence,
              status.recluster_adoptions);
  }
}

}  // namespace
}  // namespace snakes
