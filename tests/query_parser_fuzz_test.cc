// Differential fuzzing for core/query_parser: random (spec -> text -> parse)
// round trips must reproduce the spec exactly, and randomly malformed inputs
// must come back as error Statuses — never crashes or UB. The whole file
// runs under the sanitizer legs of tools/check.sh like every other test.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/query_parser.h"
#include "hierarchy/dimension_table.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "util/rng.h"

namespace snakes {
namespace {

struct LabeledSchema {
  StarSchema schema;
  std::vector<DimensionTable> tables;
};

/// A random schema of 1..3 dimensions, 1..3 levels each, fanouts 2..3, with
/// globally unique labels per dimension (so the parser's bottom-up bare
/// lookup is unambiguous). ~30% of labels contain a space and must be
/// rendered double-quoted; some contain apostrophes, which are ordinary.
LabeledSchema RandomLabeledSchema(Rng* rng) {
  const int num_dims = 1 + static_cast<int>(rng->Below(3));
  std::vector<Hierarchy> hierarchies;
  std::vector<DimensionTable> tables;
  for (int d = 0; d < num_dims; ++d) {
    const int levels = 1 + static_cast<int>(rng->Below(3));
    std::vector<uint64_t> fanouts;
    std::vector<std::string> level_names;
    for (int l = 0; l < levels; ++l) {
      fanouts.push_back(2 + rng->Below(2));
      level_names.push_back("lv" + std::to_string(l));
    }
    level_names.push_back("all");
    Hierarchy h = Hierarchy::Uniform("dim" + std::to_string(d), fanouts,
                                     level_names)
                      .value();
    std::vector<std::vector<std::string>> labels(
        static_cast<size_t>(levels) + 1);
    for (int l = 0; l <= levels; ++l) {
      for (uint64_t b = 0; b < h.num_blocks(l); ++b) {
        std::string label = "d" + std::to_string(d) + "l" + std::to_string(l) +
                            "b" + std::to_string(b);
        if (rng->Chance(0.15)) label += "'s";
        if (rng->Chance(0.3)) label += " x";  // forces quoting
        labels[static_cast<size_t>(l)].push_back(std::move(label));
      }
    }
    tables.push_back(DimensionTable::Make(h, std::move(labels)).value());
    hierarchies.push_back(std::move(h));
  }
  return LabeledSchema{StarSchema::Make("fuzz", hierarchies).value(),
                       std::move(tables)};
}

bool NeedsQuoting(const std::string& label) {
  return label.find(' ') != std::string::npos;
}

class QueryParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryParserFuzzTest, RoundTripReproducesTheSpec) {
  Rng rng(0x51A9 + static_cast<uint64_t>(GetParam()) * 7919);
  LabeledSchema ls = RandomLabeledSchema(&rng);
  const StarSchema& schema = ls.schema;

  for (int trial = 0; trial < 25; ++trial) {
    // Draw a spec: a level per dimension, a block within that level.
    std::vector<int> levels(static_cast<size_t>(schema.num_dims()));
    std::vector<uint64_t> blocks(static_cast<size_t>(schema.num_dims()));
    std::string text;
    for (int d = 0; d < schema.num_dims(); ++d) {
      const Hierarchy& h = schema.dim(d);
      levels[static_cast<size_t>(d)] =
          static_cast<int>(rng.Below(static_cast<uint64_t>(h.num_levels()) + 1));
      const int level = levels[static_cast<size_t>(d)];
      blocks[static_cast<size_t>(d)] =
          level == h.num_levels() ? 0 : rng.Below(h.num_blocks(level));
      if (level == h.num_levels()) continue;  // "all": no clause
      const std::string& label =
          ls.tables[static_cast<size_t>(d)].label(level,
                                                  blocks[static_cast<size_t>(d)]);
      std::string clause = h.name();
      // Bare and explicit-level forms must agree (labels are unique).
      if (rng.Chance(0.5)) clause += "." + h.level_name(level);
      clause += "=";
      clause += NeedsQuoting(label) || rng.Chance(0.2)
                    ? "\"" + label + "\""
                    : label;
      if (!text.empty()) text += " ";
      text += clause;
    }

    const Result<GridQuery> parsed = ParseGridQuery(schema, ls.tables, text);
    ASSERT_TRUE(parsed.ok())
        << "failed to parse rendered query '" << text
        << "': " << parsed.status().ToString();
    for (int d = 0; d < schema.num_dims(); ++d) {
      EXPECT_EQ(parsed.value().cls.level(d), levels[static_cast<size_t>(d)])
          << "dim " << d << " of '" << text << "'";
      EXPECT_EQ(parsed.value().block[static_cast<size_t>(d)],
                blocks[static_cast<size_t>(d)])
          << "dim " << d << " of '" << text << "'";
    }
  }
}

TEST_P(QueryParserFuzzTest, MalformedInputsReturnErrorsNotCrashes) {
  Rng rng(0xBAD + static_cast<uint64_t>(GetParam()) * 104729);
  LabeledSchema ls = RandomLabeledSchema(&rng);
  const StarSchema& schema = ls.schema;
  const std::string dim0 = schema.dim(0).name();
  const std::string label0 = ls.tables[0].label(0, 0);

  // Structured malformations: each must fail cleanly.
  const std::vector<std::string> malformed = {
      dim0 + "=" + label0 + " " + dim0 + "=" + label0,  // duplicate dim
      "nosuchdim=" + label0,                            // unknown dimension
      dim0 + "=nosuchlabel",                            // unknown label
      dim0 + ".nosuchlevel=" + label0,                  // unknown level
      dim0 + ".all=" + label0,       // top level label is not selectable by
                                     // every hierarchy's label set
      "=" + label0,                  // missing dimension
      dim0 + "=",                    // missing label
      dim0,                          // missing '='
      dim0 + "=\"" + label0,         // unterminated quote
      "\"",                          // lone quote
      dim0 + "==" + label0,          // double '='
  };
  for (const std::string& text : malformed) {
    const Result<GridQuery> parsed = ParseGridQuery(schema, ls.tables, text);
    // "dim.all=<top label>" can legitimately parse; everything else must not.
    if (text.find(".all=") == std::string::npos) {
      EXPECT_FALSE(parsed.ok()) << "accepted malformed '" << text << "'";
    }
  }

  // Byte soup: printable garbage must never crash; ok() is allowed only if
  // the parser found a real query in the noise (vanishingly unlikely).
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789 .=\"'\t";
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const uint64_t len = rng.Below(40);
    for (uint64_t i = 0; i < len; ++i) {
      text += alphabet[rng.Below(alphabet.size())];
    }
    const Result<GridQuery> parsed = ParseGridQuery(schema, ls.tables, text);
    (void)parsed;  // any Status is fine; crashing/UB is the failure mode
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryParserFuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace snakes
