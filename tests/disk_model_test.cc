#include <gtest/gtest.h>

#include "storage/disk_model.h"

namespace snakes {
namespace {

TEST(DiskModelTest, QueryTimeDecomposes) {
  DiskModel disk;
  disk.seek_ms = 10.0;
  disk.transfer_bytes_per_ms = 8192.0;  // one 8K page per ms
  QueryIo io;
  io.seeks = 3;
  io.pages = 5;
  EXPECT_DOUBLE_EQ(disk.QueryMs(io, 8192), 3 * 10.0 + 5 * 1.0);
}

TEST(DiskModelTest, ZeroIoIsFree) {
  DiskModel disk;
  QueryIo io;
  EXPECT_DOUBLE_EQ(disk.QueryMs(io, 8192), 0.0);
}

TEST(DiskModelTest, ExpectedTimeMatchesComponents) {
  DiskModel disk;
  disk.seek_ms = 5.0;
  disk.transfer_bytes_per_ms = 4096.0;
  // 2 expected seeks, 10 expected pages of 8K: 10ms + 20ms.
  EXPECT_DOUBLE_EQ(disk.ExpectedMs(2.0, 10.0, 8192), 10.0 + 20.0);
}

TEST(DiskModelTest, SeeksDominateScatteredIo) {
  // The premise of the paper's seek-count objective: for scattered reads,
  // positioning time swamps transfer time on rotating disks.
  DiskModel disk;  // defaults: 9.5 ms seek, 15 MB/s
  QueryIo scattered;
  scattered.seeks = 100;
  scattered.pages = 100;  // one page per seek
  QueryIo sequential;
  sequential.seeks = 1;
  sequential.pages = 100;
  const double scattered_ms = disk.QueryMs(scattered, 8192);
  const double sequential_ms = disk.QueryMs(sequential, 8192);
  EXPECT_GT(scattered_ms, 10.0 * sequential_ms);
}

}  // namespace
}  // namespace snakes
