#include <gtest/gtest.h>

#include <memory>

#include "curves/path_order.h"
#include "curves/row_major.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "path/snaked_dp.h"
#include "storage/cache.h"
#include "storage/pager.h"
#include "storage/query_engine.h"
#include "tpcd/dbgen.h"
#include "tpcd/workloads.h"

namespace snakes {
namespace {

TEST(LruCacheTest, BasicHitMissEvict) {
  LruPageCache cache(2);
  EXPECT_FALSE(cache.Access(1));  // miss
  EXPECT_FALSE(cache.Access(2));  // miss
  EXPECT_TRUE(cache.Access(1));   // hit, 1 becomes MRU
  EXPECT_FALSE(cache.Access(3));  // miss, evicts 2
  EXPECT_TRUE(cache.Access(1));   // still cached
  EXPECT_FALSE(cache.Access(2));  // was evicted
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NEAR(cache.HitRate(), 2.0 / 6, 1e-12);
}

TEST(LruCacheTest, ZeroCapacityNeverHits) {
  LruPageCache cache(0);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_FALSE(cache.Access(1));
  EXPECT_EQ(cache.hits(), 0u);
  // Rejects at zero capacity drop nothing, so they are not evictions.
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, ClearResets) {
  LruPageCache cache(4);
  cache.Access(1);
  cache.Access(1);
  cache.Clear();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_FALSE(cache.Access(1));
}

TEST(LruCacheTest, ResetStatsKeepsResidentPages) {
  LruPageCache cache(4);
  cache.Access(1);
  cache.Access(2);
  cache.Access(1);
  for (uint64_t p = 3; p < 7; ++p) cache.Access(p);  // evicts 1 then 2
  ASSERT_GT(cache.hits(), 0u);
  ASSERT_GT(cache.evictions(), 0u);

  cache.ResetStats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  // Unlike Clear, the resident set survives: pages 3..6 still hit.
  EXPECT_EQ(cache.size(), 4u);
  for (uint64_t p = 3; p < 7; ++p) EXPECT_TRUE(cache.Access(p));
  EXPECT_EQ(cache.hits(), 4u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, EvictionCountMatchesOverflow) {
  LruPageCache cache(3);
  for (uint64_t p = 0; p < 3; ++p) cache.Access(p);
  EXPECT_EQ(cache.evictions(), 0u);
  // Each further distinct page displaces exactly one resident page.
  for (uint64_t p = 3; p < 10; ++p) cache.Access(p);
  EXPECT_EQ(cache.evictions(), 7u);
  EXPECT_EQ(cache.size(), 3u);
  // Hits reorder but never evict.
  EXPECT_TRUE(cache.Access(9));
  EXPECT_EQ(cache.evictions(), 7u);
}

TEST(LruCacheTest, MirrorsEventsIntoRegistryCounters) {
  MetricsRegistry metrics;
  LruPageCache cache(2, ObsSink{&metrics, nullptr});
  cache.Access(1);  // miss
  cache.Access(2);  // miss
  cache.Access(1);  // hit
  cache.Access(3);  // miss, evicts 2
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter("cache.hits"), cache.hits());
  EXPECT_EQ(snap.counter("cache.misses"), cache.misses());
  EXPECT_EQ(snap.counter("cache.evictions"), cache.evictions());
  EXPECT_EQ(snap.counter("cache.evictions"), 1u);
}

TEST(LruCacheTest, RepeatedScanHitRateDependsOnCapacity) {
  // An LRU classic: cyclically scanning N distinct pages through a cache
  // smaller than N hits never (each page is evicted just before its reuse);
  // a cache of at least N pages hits on every pass after the first.
  constexpr uint64_t kPages = 16;
  constexpr int kPasses = 8;

  LruPageCache small(kPages - 1);
  LruPageCache big(kPages);
  for (int pass = 0; pass < kPasses; ++pass) {
    for (uint64_t p = 0; p < kPages; ++p) {
      small.Access(p);
      big.Access(p);
    }
  }
  EXPECT_EQ(small.hits(), 0u);
  EXPECT_EQ(small.evictions(), kPasses * kPages - (kPages - 1));
  EXPECT_EQ(big.hits(), (kPasses - 1) * kPages);
  EXPECT_EQ(big.evictions(), 0u);
  EXPECT_NEAR(big.HitRate(), static_cast<double>(kPasses - 1) / kPasses,
              1e-12);
}

class WarehouseCacheTest : public ::testing::Test {
 protected:
  WarehouseCacheTest() {
    tpcd::Config config;
    config.parts_per_mfgr = 4;
    config.num_mfgrs = 3;
    config.num_suppliers = 4;
    config.months_per_year = 6;
    config.num_years = 2;
    config.num_orders = 6'000;
    warehouse_ = tpcd::GenerateWarehouse(config, 31).value();
  }
  tpcd::Warehouse warehouse_;
};

TEST_F(WarehouseCacheTest, InfiniteCacheReadsDistinctPagesOnce) {
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse_.schema, {0, 1, 2}).value());
  const auto layout = PackedLayout::Pack(lin, warehouse_.facts).value();
  const QueryClassLattice lat(*warehouse_.schema);
  const Workload mu = Workload::Uniform(lat);
  LruPageCache cache(layout.num_pages() + 1);
  Rng rng(7);
  const CachedRunStats stats = ReplayWorkload(layout, mu, 400, &cache, &rng);
  EXPECT_EQ(stats.queries, 400u);
  // With capacity >= every page, disk reads equal distinct pages touched.
  EXPECT_LE(stats.disk_reads, layout.num_pages());
  EXPECT_GT(stats.HitRate(), 0.5);
}

TEST_F(WarehouseCacheTest, BetterClusteringReducesDiskReads) {
  // Random queries carry no extra temporal locality, so clustering barely
  // moves the HIT RATE — its effect is the page footprint: under the snaked
  // optimal layout each query touches fewer pages, so the replay issues
  // fewer disk reads through the same cache than the worst row-major.
  const QueryClassLattice lat(*warehouse_.schema);
  const Workload mu = tpcd::SectionSixWorkload(lat, 7).value();
  const auto dp = FindOptimalSnakedLatticePath(mu).value();

  auto reads_per_query = [&](std::shared_ptr<const Linearization> lin) {
    const auto layout = PackedLayout::Pack(std::move(lin), warehouse_.facts,
                                           StorageConfig{2048, 125})
                            .value();
    LruPageCache cache(layout.num_pages() / 20);  // 5% of the data
    Rng rng(11);
    const CachedRunStats stats = ReplayWorkload(layout, mu, 600, &cache, &rng);
    return static_cast<double>(stats.disk_reads) /
           static_cast<double>(stats.queries);
  };

  const double snaked = reads_per_query(
      MakePathOrder(warehouse_.schema, dp.path, true).value());
  double worst_rm = 0.0;
  for (auto& rm : AllRowMajorOrders(warehouse_.schema)) {
    worst_rm = std::max(worst_rm, reads_per_query(std::move(rm)));
  }
  EXPECT_LT(snaked, worst_rm);
}

TEST_F(WarehouseCacheTest, QueryEngineAnswersMatchFactTable) {
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(warehouse_.schema, {2, 1, 0}).value());
  const auto layout = PackedLayout::Pack(lin, warehouse_.facts).value();
  const QueryEngine engine(layout);

  // Whole-table query equals the generator totals.
  QueryClass top{2, 1, 2};
  GridQuery all{top, {0, 0, 0}};
  const QueryAnswer everything = engine.Execute(all);
  EXPECT_EQ(everything.count, warehouse_.facts->total_records());
  EXPECT_GT(everything.sum, 0.0);
  EXPECT_EQ(everything.io.seeks, 1u);

  // Partition property: the per-manufacturer counts sum to the total.
  uint64_t sum_counts = 0;
  double sum_sums = 0.0;
  for (uint64_t m = 0; m < 3; ++m) {
    GridQuery q{QueryClass{1, 1, 2}, {m, 0, 0}};
    const QueryAnswer a = engine.Execute(q);
    sum_counts += a.count;
    sum_sums += a.sum;
  }
  EXPECT_EQ(sum_counts, everything.count);
  EXPECT_NEAR(sum_sums, everything.sum, 1e-6 * everything.sum);

  // ExecuteAt drills into the class containing a coordinate.
  CellCoord coord;
  coord.resize(3);
  coord[0] = 5;
  coord[1] = 2;
  coord[2] = 9;
  const QueryAnswer at = engine.ExecuteAt(QueryClass{1, 0, 1}, coord);
  const QueryAnswer direct =
      engine.Execute(QueryContaining(*warehouse_.schema, QueryClass{1, 0, 1},
                                     coord));
  EXPECT_EQ(at.count, direct.count);
  EXPECT_DOUBLE_EQ(at.sum, direct.sum);
  if (at.count > 0) {
    EXPECT_GT(at.AvgMeasure(), 0.0);
  }
}

}  // namespace
}  // namespace snakes
