// Cross-check between the two cost pipelines: the storage simulator's
// *measured* seeks and pages (storage/executor.cc, surfaced through the obs
// counters) must reconcile exactly with the *analytic* edge-model costs
// (cost/edge_model.cc) on layouts built to make the two comparable.
//
// The bridge: give every cell exactly one record and set
// page_size == record_size, so each cell occupies exactly one page and pages
// coincide with cells. Then a query's page runs are its curve fragments —
// MeasureClass(cls).total_seeks must equal ClassCostTable::TotalFragments(cls)
// for every class of the lattice, and the workload expectations agree too.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cost/edge_model.h"
#include "cost/workload_cost.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/lattice.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "path/snaked_dp.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "storage/pager.h"

namespace snakes {
namespace {

/// One record in every cell, so no query is empty and cell == page below.
std::shared_ptr<const FactTable> OneRecordPerCell(
    std::shared_ptr<const StarSchema> schema) {
  auto facts = std::make_shared<FactTable>(schema);
  const int k = schema->num_dims();
  CellCoord coord;
  coord.resize(static_cast<size_t>(k));
  for (size_t d = 0; d < coord.size(); ++d) coord[d] = 0;
  for (;;) {
    facts->AddRecord(coord, 1.0);
    int d = k - 1;
    for (; d >= 0; --d) {
      if (++coord[static_cast<size_t>(d)] <
          schema->extent(d)) {
        break;
      }
      coord[static_cast<size_t>(d)] = 0;
    }
    if (d < 0) break;
  }
  return facts;
}

/// Asserts that the simulator and the analytic model agree class by class on
/// `lin`, and that the obs counters record exactly the simulated totals.
void ExpectSimulatorMatchesAnalyticModel(
    std::shared_ptr<const Linearization> lin,
    std::shared_ptr<const FactTable> facts) {
  const StarSchema& schema = lin->schema();
  // One page per cell: pages are cells, page runs are curve fragments.
  const StorageConfig config{125, 125};
  MetricsRegistry metrics;
  const ObsSink obs{&metrics, nullptr};
  const auto layout = PackedLayout::Pack(lin, std::move(facts), config, obs);
  ASSERT_TRUE(layout.ok()) << layout.status().message();
  ASSERT_EQ(layout.value().num_pages(), schema.num_cells());

  const ClassCostTable analytic = MeasureClassCosts(*lin);
  const IoSimulator sim(layout.value(), obs);
  const QueryClassLattice lat(schema);

  uint64_t total_seeks = 0;
  uint64_t total_pages = 0;
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    const ClassIoStats measured = sim.MeasureClass(cls);
    EXPECT_EQ(measured.total_seeks, analytic.TotalFragments(cls))
        << lin->name() << " class " << cls.ToString();
    EXPECT_EQ(measured.num_queries, analytic.NumQueries(cls))
        << lin->name() << " class " << cls.ToString();
    EXPECT_EQ(measured.num_nonempty, measured.num_queries);
    // Each class's queries partition the grid, and every cell is one page.
    EXPECT_EQ(measured.total_pages, schema.num_cells());
    total_seeks += measured.total_seeks;
    total_pages += measured.total_pages;
  }

  // The registry saw exactly what MeasureClass returned.
  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter("storage.seeks"), total_seeks);
  EXPECT_EQ(snap.counter("storage.pages_read"), total_pages);
  EXPECT_EQ(snap.counter("storage.pages_packed"), schema.num_cells());

  // Workload-level: the simulator's expected seeks equal the edge model's
  // expected cost (same per-class ratios, probability-weighted).
  const Workload mu = Workload::Uniform(lat);
  const WorkloadIoStats io = IoSimulator::Expect(mu, sim.MeasureAllClasses());
  const double analytic_cost = MeasureExpectedCost(mu, *lin);
  EXPECT_NEAR(io.expected_seeks, analytic_cost, 1e-9 * analytic_cost)
      << lin->name();
}

std::shared_ptr<const StarSchema> MakeSchema(
    std::vector<Hierarchy> dims) {
  auto schema = StarSchema::Make("t", std::move(dims));
  EXPECT_TRUE(schema.ok());
  return std::make_shared<StarSchema>(std::move(schema).value());
}

TEST(ObsCostCrosscheckTest, RowMajorsOn2D) {
  auto schema = MakeSchema({
      Hierarchy::Uniform("a", {2, 2}, {"leaf", "mid", "all"}).value(),
      Hierarchy::Uniform("b", {2, 4}, {"leaf", "mid", "all"}).value(),
  });
  const auto facts = OneRecordPerCell(schema);
  for (auto& rm : AllRowMajorOrders(schema)) {
    ExpectSimulatorMatchesAnalyticModel(std::move(rm), facts);
  }
}

TEST(ObsCostCrosscheckTest, SnakedOptimalPathOn2D) {
  auto schema = MakeSchema({
      Hierarchy::Uniform("a", {2, 2}, {"leaf", "mid", "all"}).value(),
      Hierarchy::Uniform("b", {2, 4}, {"leaf", "mid", "all"}).value(),
  });
  const QueryClassLattice lat(*schema);
  const Workload mu = Workload::Uniform(lat);
  const auto dp = FindOptimalSnakedLatticePath(mu);
  ASSERT_TRUE(dp.ok());
  auto lin = MakePathOrder(schema, dp.value().path, /*snaked=*/true);
  ASSERT_TRUE(lin.ok());
  ExpectSimulatorMatchesAnalyticModel(std::move(lin).value(),
                                      OneRecordPerCell(schema));
}

TEST(ObsCostCrosscheckTest, ZCurveOnPow2Grid) {
  auto schema = MakeSchema({
      Hierarchy::Uniform("a", {2, 2}, {"leaf", "mid", "all"}).value(),
      Hierarchy::Uniform("b", {2, 2}, {"leaf", "mid", "all"}).value(),
  });
  auto z = ZCurve::Make(schema);
  ASSERT_TRUE(z.ok());
  ExpectSimulatorMatchesAnalyticModel(std::move(z).value(),
                                      OneRecordPerCell(schema));
}

TEST(ObsCostCrosscheckTest, ThreeDimensionalGrid) {
  auto schema = MakeSchema({
      Hierarchy::Uniform("a", {3}, {"leaf", "all"}).value(),
      Hierarchy::Uniform("b", {2, 2}, {"leaf", "mid", "all"}).value(),
      Hierarchy::Uniform("c", {2}, {"leaf", "all"}).value(),
  });
  const auto facts = OneRecordPerCell(schema);
  ExpectSimulatorMatchesAnalyticModel(
      RowMajorOrder::Make(schema, {0, 1, 2}).value(), facts);
  ExpectSimulatorMatchesAnalyticModel(
      RowMajorOrder::Make(schema, {2, 0, 1}).value(), facts);
}

}  // namespace
}  // namespace snakes
