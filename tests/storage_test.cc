#include <gtest/gtest.h>

#include <memory>

#include "curves/row_major.h"
#include "hierarchy/star_schema.h"
#include "storage/executor.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/rng.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> SmallSchema() {
  auto a = Hierarchy::Uniform("a", {2, 2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2}).value();
  return std::make_shared<StarSchema>(StarSchema::Make("s", {a, b}).value());
}

CellCoord At(uint64_t x, uint64_t y) {
  CellCoord c;
  c.resize(2);
  c[0] = x;
  c[1] = y;
  return c;
}

TEST(FactTableTest, CountsAndMeasures) {
  auto schema = SmallSchema();
  FactTable facts(schema);
  EXPECT_EQ(facts.total_records(), 0u);
  facts.AddRecord(At(1, 2), 10.0);
  facts.AddRecord(At(1, 2), 5.0);
  facts.AddRecord(At(3, 0), 1.0);
  EXPECT_EQ(facts.total_records(), 3u);
  EXPECT_EQ(facts.count(schema->Flatten(At(1, 2))), 2u);
  EXPECT_DOUBLE_EQ(facts.measure_sum(schema->Flatten(At(1, 2))), 15.0);
  EXPECT_EQ(facts.NumOccupiedCells(), 2u);
}

class PackTest : public ::testing::Test {
 protected:
  PackTest() : schema_(SmallSchema()) {
    auto facts = std::make_shared<FactTable>(schema_);
    // Cell (x,y) gets x + y records: total sum = 48 records; cell (0,0)
    // stays empty.
    for (uint64_t x = 0; x < 4; ++x) {
      for (uint64_t y = 0; y < 4; ++y) {
        for (uint64_t r = 0; r < x + y; ++r) {
          facts->AddRecord(At(x, y), 1.0);
        }
      }
    }
    facts_ = facts;
    lin_ = std::shared_ptr<const Linearization>(
        RowMajorOrder::Make(schema_, {0, 1}).value());
  }

  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<const FactTable> facts_;
  std::shared_ptr<const Linearization> lin_;
};

TEST_F(PackTest, ConservationInvariants) {
  // 10-byte records, 35-byte pages: 3 records per page.
  StorageConfig config{35, 10};
  const PackedLayout layout =
      PackedLayout::Pack(lin_, facts_, config).value();
  // 48 records, 3 per page -> at least 16 pages (cell splits can't waste
  // space here because pages close only when full).
  EXPECT_EQ(layout.num_pages(), 16u);
  // Page spans are non-decreasing along the linearization and cells report
  // their record counts faithfully.
  uint64_t expected_records = 0;
  int64_t last_first = -1;
  for (uint64_t rank = 0; rank < layout.linearization().num_cells(); ++rank) {
    expected_records += layout.CellRecords(rank);
    if (!layout.CellEmpty(rank)) {
      EXPECT_GE(static_cast<int64_t>(layout.CellFirstPage(rank)), last_first);
      EXPECT_GE(layout.CellLastPage(rank), layout.CellFirstPage(rank));
      EXPECT_LT(layout.CellLastPage(rank), layout.num_pages());
      last_first = static_cast<int64_t>(layout.CellFirstPage(rank));
    }
  }
  EXPECT_EQ(expected_records, facts_->total_records());
  // Rank 0 is cell (0,0): empty.
  EXPECT_TRUE(layout.CellEmpty(0));
}

TEST_F(PackTest, RecordsNeverSplitAcrossPages) {
  // 10-byte records on 25-byte pages: 2 records per page, 5 bytes lost per
  // page. 48 records -> 24 pages.
  StorageConfig config{25, 10};
  const PackedLayout layout =
      PackedLayout::Pack(lin_, facts_, config).value();
  EXPECT_EQ(layout.num_pages(), 24u);
}

TEST_F(PackTest, PackValidation) {
  EXPECT_FALSE(PackedLayout::Pack(lin_, facts_, StorageConfig{5, 10}).ok());
  EXPECT_FALSE(PackedLayout::Pack(lin_, facts_, StorageConfig{10, 0}).ok());
}

TEST_F(PackTest, SingleQueryMeasurement) {
  StorageConfig config{35, 10};
  const PackedLayout layout =
      PackedLayout::Pack(lin_, facts_, config).value();
  const IoSimulator sim(layout);
  // The whole-grid query reads every page with one seek.
  GridQuery all{QueryClass{2, 2}, {0, 0}};
  const QueryIo io = sim.Measure(all);
  EXPECT_EQ(io.records, 48u);
  EXPECT_EQ(io.pages, layout.num_pages());
  EXPECT_EQ(io.seeks, 1u);
  // ceil(48 records * 10 B / 35 B pages) = 14: the normalization divisor
  // assumes perfect byte packing, so even a perfectly clustered layout can
  // exceed 1.0 when records don't tile pages exactly.
  EXPECT_EQ(io.min_pages, 14u);
  EXPECT_DOUBLE_EQ(io.NormalizedBlocks(), 16.0 / 14.0);
  // An empty query: the (0,0) cell.
  GridQuery empty{QueryClass{0, 0}, {0, 0}};
  const QueryIo none = sim.Measure(empty);
  EXPECT_EQ(none.records, 0u);
  EXPECT_EQ(none.pages, 0u);
  EXPECT_EQ(none.seeks, 0u);
}

TEST_F(PackTest, ClassMeasurementMatchesPerQueryMeasurement) {
  StorageConfig config{35, 10};
  const PackedLayout layout =
      PackedLayout::Pack(lin_, facts_, config).value();
  const IoSimulator sim(layout);
  const QueryClassLattice lat(*schema_);
  for (uint64_t ci = 0; ci < lat.size(); ++ci) {
    const QueryClass cls = lat.ClassAt(ci);
    const ClassIoStats stats = sim.MeasureClass(cls);
    ClassIoStats manual;
    manual.num_queries = NumQueriesInClass(*schema_, cls);
    for (const GridQuery& q : AllQueriesInClass(*schema_, cls)) {
      const QueryIo io = sim.Measure(q);
      if (io.records == 0) continue;
      ++manual.num_nonempty;
      manual.total_pages += io.pages;
      manual.total_seeks += io.seeks;
      manual.total_normalized += io.NormalizedBlocks();
    }
    EXPECT_EQ(stats.num_queries, manual.num_queries) << cls.ToString();
    EXPECT_EQ(stats.num_nonempty, manual.num_nonempty) << cls.ToString();
    EXPECT_EQ(stats.total_pages, manual.total_pages) << cls.ToString();
    EXPECT_EQ(stats.total_seeks, manual.total_seeks) << cls.ToString();
    EXPECT_NEAR(stats.total_normalized, manual.total_normalized, 1e-9)
        << cls.ToString();
  }
}

TEST_F(PackTest, WorkloadExpectation) {
  StorageConfig config{35, 10};
  const PackedLayout layout =
      PackedLayout::Pack(lin_, facts_, config).value();
  const IoSimulator sim(layout);
  const QueryClassLattice lat(*schema_);
  const auto per_class = sim.MeasureAllClasses();
  const Workload mu = Workload::Point(lat, QueryClass{2, 2}).value();
  const WorkloadIoStats io = IoSimulator::Expect(mu, per_class);
  EXPECT_DOUBLE_EQ(io.expected_seeks, 1.0);
  EXPECT_DOUBLE_EQ(io.expected_normalized_blocks, 16.0 / 14.0);
}

TEST(StorageRandomizedTest, ClassAggregationMatchesQueriesOnRandomData) {
  // Property: exact class aggregation == per-query measurement, on random
  // occupancy and a non-row-major order.
  auto a = Hierarchy::Uniform("a", {3, 2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("r", {a, b}).value());
  Rng rng(71);
  auto facts = std::make_shared<FactTable>(schema);
  for (CellId id = 0; id < schema->num_cells(); ++id) {
    const uint64_t records = rng.Below(6);  // 0..5 records/cell
    for (uint64_t r = 0; r < records; ++r) {
      facts->AddRecord(schema->Unflatten(id), 1.0);
    }
  }
  auto lin = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(schema, {1, 0}).value());
  const PackedLayout layout =
      PackedLayout::Pack(lin, facts, StorageConfig{64, 10}).value();
  const IoSimulator sim(layout);
  const QueryClassLattice lat(*schema);
  for (uint64_t ci = 0; ci < lat.size(); ++ci) {
    const QueryClass cls = lat.ClassAt(ci);
    const ClassIoStats stats = sim.MeasureClass(cls);
    uint64_t seeks = 0, pages = 0, nonempty = 0;
    for (const GridQuery& q : AllQueriesInClass(*schema, cls)) {
      const QueryIo io = sim.Measure(q);
      if (io.records == 0) continue;
      ++nonempty;
      seeks += io.seeks;
      pages += io.pages;
    }
    EXPECT_EQ(stats.total_seeks, seeks) << cls.ToString();
    EXPECT_EQ(stats.total_pages, pages) << cls.ToString();
    EXPECT_EQ(stats.num_nonempty, nonempty) << cls.ToString();
  }
}

}  // namespace
}  // namespace snakes
