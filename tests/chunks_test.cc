#include <gtest/gtest.h>

#include <memory>

#include "cost/workload_cost.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "storage/chunks.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> Schema() {
  auto a = Hierarchy::Uniform("a", {2, 3}).value();
  auto b = Hierarchy::Uniform("b", {4, 2}).value();
  return std::make_shared<StarSchema>(StarSchema::Make("s", {a, b}).value());
}

TEST(ChunkGridTest, CoarsensHierarchies) {
  auto schema = Schema();
  const auto grid = ChunkGridSchema(*schema, QueryClass{1, 1}).value();
  // a: 6 leaves, chunk level 1 (blocks of 2) -> 3 chunk leaves, 1 level (3).
  EXPECT_EQ(grid->extent(0), 3u);
  EXPECT_EQ(grid->dim(0).num_levels(), 1);
  // b: 8 leaves, blocks of 4 -> 2 chunk leaves.
  EXPECT_EQ(grid->extent(1), 2u);
  EXPECT_EQ(grid->num_cells(), 6u);
}

TEST(ChunkGridTest, LevelZeroIsIdentity) {
  auto schema = Schema();
  const auto grid = ChunkGridSchema(*schema, QueryClass{0, 0}).value();
  EXPECT_EQ(grid->num_cells(), schema->num_cells());
  EXPECT_EQ(grid->dim(0).num_levels(), 2);
}

TEST(ChunkGridTest, Validation) {
  auto schema = Schema();
  EXPECT_FALSE(ChunkGridSchema(*schema, QueryClass{0, 3}).ok());
  EXPECT_FALSE(ChunkGridSchema(*schema, QueryClass{0, 0, 0}).ok());
  auto nonuniform = Hierarchy::Explicit("nu", {{2, 3}, {2}}).value();
  auto other = Hierarchy::Uniform("o", {2}).value();
  auto bad = std::make_shared<StarSchema>(
      StarSchema::Make("bad", {nonuniform, other}).value());
  EXPECT_FALSE(ChunkGridSchema(*bad, QueryClass{1, 1}).ok());
}

TEST(ChunkedOrderTest, RowMajorChunksAreValid) {
  auto schema = Schema();
  const QueryClass chunk_class{1, 1};
  const auto grid = ChunkGridSchema(*schema, chunk_class).value();
  auto chunk_order = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(grid, {0, 1}).value());
  auto chunked = ChunkedOrder::Make(schema, chunk_class, chunk_order).value();
  EXPECT_TRUE(chunked->Validate().ok());
  EXPECT_EQ(chunked->chunk_volume(), 8u);  // 2 x 4 cells per chunk
}

TEST(ChunkedOrderTest, ChunksAreContiguous) {
  auto schema = Schema();
  const QueryClass chunk_class{1, 1};
  const auto grid = ChunkGridSchema(*schema, chunk_class).value();
  auto chunk_order = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(grid, {1, 0}).value());
  auto chunked = ChunkedOrder::Make(schema, chunk_class, chunk_order).value();
  // Every run of chunk_volume ranks stays inside one chunk.
  const uint64_t volume = chunked->chunk_volume();
  for (uint64_t rank = 0; rank < chunked->num_cells(); ++rank) {
    const CellCoord cell = chunked->CellAt(rank);
    const CellCoord first = chunked->CellAt(rank - rank % volume);
    for (int d = 0; d < schema->num_dims(); ++d) {
      EXPECT_EQ(schema->dim(d).AncestorAt(cell[static_cast<size_t>(d)],
                                          chunk_class.level(d)),
                schema->dim(d).AncestorAt(first[static_cast<size_t>(d)],
                                          chunk_class.level(d)))
          << "rank " << rank;
    }
  }
}

TEST(ChunkedOrderTest, TrivialChunkingEqualsChunkOrder) {
  // Chunk class (0,0): each chunk is one cell, so the composed order equals
  // the chunk order itself.
  auto schema = Schema();
  const auto grid = ChunkGridSchema(*schema, QueryClass{0, 0}).value();
  auto chunk_order = std::shared_ptr<const Linearization>(
      RowMajorOrder::Make(grid, {1, 0}).value());
  auto chunked =
      ChunkedOrder::Make(schema, QueryClass{0, 0}, chunk_order).value();
  for (uint64_t rank = 0; rank < chunked->num_cells(); ++rank) {
    EXPECT_EQ(schema->Flatten(chunked->CellAt(rank)),
              schema->Flatten(chunk_order->CellAt(rank)));
  }
}

TEST(ChunkedOrderTest, WalkMatchesCellAtAndRankOf) {
  auto schema = Schema();
  const QueryClass chunk_class{1, 0};
  const auto grid = ChunkGridSchema(*schema, chunk_class).value();
  const QueryClassLattice chunk_lattice(*grid);
  const LatticePath path = LatticePath::RoundRobin(chunk_lattice);
  auto chunk_order = std::shared_ptr<const Linearization>(
      PathOrder::Make(grid, path, true).value());
  auto chunked = ChunkedOrder::Make(schema, chunk_class, chunk_order).value();
  EXPECT_TRUE(chunked->Validate().ok());
  chunked->Walk([&](uint64_t rank, const CellCoord& coord) {
    EXPECT_EQ(schema->Flatten(chunked->CellAt(rank)), schema->Flatten(coord));
    EXPECT_EQ(chunked->RankOf(coord), rank);
  });
}

TEST(ChunkedOrderTest, SnakedChunkOrderBeatsRowMajorChunks) {
  // The paper's Section-7 remark: ordering [2]'s chunks by a snaked optimal
  // lattice path (on the coarsened lattice) improves on the row-major chunk
  // order — here under a workload of coarse rollups.
  auto schema = Schema();
  const QueryClassLattice lat(*schema);
  const QueryClass chunk_class{1, 1};
  const auto grid = ChunkGridSchema(*schema, chunk_class).value();
  const QueryClassLattice chunk_lattice(*grid);

  const Workload mu =
      Workload::FromMasses(lat,
                           {{QueryClass{2, 1}, 0.5}, {QueryClass{1, 2}, 0.5}})
          .value();
  // Project the workload onto the chunk lattice to drive the chunk-order DP:
  // class (i, j) of the full lattice with i, j >= chunk level maps to
  // (i - 1, j - 1).
  const Workload chunk_mu =
      Workload::FromMasses(chunk_lattice,
                           {{QueryClass{1, 0}, 0.5}, {QueryClass{0, 1}, 0.5}})
          .value();
  const auto dp = FindOptimalSnakedLatticePath(chunk_mu).value();
  auto snaked_chunks = ChunkedOrder::Make(
      schema, chunk_class,
      std::shared_ptr<const Linearization>(
          PathOrder::Make(grid, dp.path, true).value()));
  auto rm_chunks = ChunkedOrder::Make(
      schema, chunk_class,
      std::shared_ptr<const Linearization>(
          RowMajorOrder::Make(grid, {0, 1}).value()));
  const double snaked_cost = MeasureExpectedCost(mu, *snaked_chunks.value());
  const double rm_cost = MeasureExpectedCost(mu, *rm_chunks.value());
  EXPECT_LE(snaked_cost, rm_cost);
}

}  // namespace
}  // namespace snakes
