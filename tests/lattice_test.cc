#include <gtest/gtest.h>

#include <cmath>

#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "lattice/lattice.h"
#include "lattice/query_class.h"
#include "lattice/workload.h"
#include "util/rng.h"

namespace snakes {
namespace {

StarSchema ToySchema() {
  // Figure 1: two dimensions, complete 2-level binary hierarchies.
  return StarSchema::Symmetric(2, 2, 2).value();
}

TEST(QueryClassTest, BasicAccessorsAndOrder) {
  QueryClass c{1, 0};
  EXPECT_EQ(c.num_dims(), 2);
  EXPECT_EQ(c.level(0), 1);
  EXPECT_EQ(c.level(1), 0);
  EXPECT_EQ(c.ToString(), "(1,0)");

  EXPECT_TRUE((QueryClass{0, 0}.DominatedBy(QueryClass{1, 0})));
  EXPECT_TRUE((QueryClass{1, 0}.DominatedBy(QueryClass{1, 0})));
  EXPECT_FALSE((QueryClass{1, 0}.DominatedBy(QueryClass{0, 2})));
}

TEST(QueryClassTest, Successors) {
  QueryClass c{1, 1};
  EXPECT_TRUE(c.IsSuccessor(QueryClass{2, 1}));
  EXPECT_TRUE(c.IsSuccessor(QueryClass{1, 2}));
  EXPECT_FALSE(c.IsSuccessor(QueryClass{2, 2}));  // diagonal step
  EXPECT_FALSE(c.IsSuccessor(QueryClass{1, 1}));  // no step
  EXPECT_FALSE(c.IsSuccessor(QueryClass{0, 1}));  // backward
  EXPECT_EQ(c.Successor(0), (QueryClass{2, 1}));
}

TEST(LatticeTest, ShapeOfToyLattice) {
  QueryClassLattice lat(ToySchema());
  EXPECT_EQ(lat.num_dims(), 2);
  EXPECT_EQ(lat.levels(0), 2);
  EXPECT_EQ(lat.size(), 9u);
  EXPECT_EQ(lat.Bottom(), (QueryClass{0, 0}));
  EXPECT_EQ(lat.Top(), (QueryClass{2, 2}));
}

TEST(LatticeTest, IndexRoundTrip) {
  QueryClassLattice lat(ToySchema());
  for (uint64_t i = 0; i < lat.size(); ++i) {
    EXPECT_EQ(lat.Index(lat.ClassAt(i)), i);
  }
}

TEST(LatticeTest, EdgeWeightsAreFanouts) {
  QueryClassLattice lat(ToySchema());
  // wt((1,1),(2,1)) = f(A,2) (Section 3's example).
  EXPECT_DOUBLE_EQ(lat.EdgeWeight(QueryClass{1, 1}, 0), 2.0);
  EXPECT_DOUBLE_EQ(lat.EdgeWeight(QueryClass{0, 1}, 1), 2.0);
}

TEST(LatticeTest, LenBetweenIsPathIndependentProduct) {
  QueryClassLattice lat(ToySchema());
  // (0,0) -> (2,1): climbs A twice (2*2) and B once (2) = 8.
  EXPECT_DOUBLE_EQ(lat.LenBetween(QueryClass{0, 0}, QueryClass{2, 1}), 8.0);
  EXPECT_DOUBLE_EQ(lat.LenBetween(QueryClass{1, 1}, QueryClass{1, 1}), 1.0);
}

TEST(LatticeTest, FromFanoutsFractional) {
  auto lat = QueryClassLattice::FromFanouts({{2.5, 3.0}, {4.0}});
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->size(), 6u);
  EXPECT_DOUBLE_EQ(lat->fanout(0, 1), 2.5);
  EXPECT_FALSE(QueryClassLattice::FromFanouts({{0.5}}).ok());
  EXPECT_FALSE(QueryClassLattice::FromFanouts({}).ok());
}

TEST(LatticeTest, NumQueriesInClassFromSchema) {
  QueryClassLattice lat(ToySchema());
  EXPECT_EQ(lat.NumQueriesInClass(QueryClass{0, 0}), 16u);
  EXPECT_EQ(lat.NumQueriesInClass(QueryClass{1, 1}), 4u);
  EXPECT_EQ(lat.NumQueriesInClass(QueryClass{2, 2}), 1u);
  EXPECT_EQ(lat.NumQueriesInClass(QueryClass{2, 0}), 4u);
}

TEST(WorkloadTest, UniformSumsToOne) {
  QueryClassLattice lat(ToySchema());
  const Workload w = Workload::Uniform(lat);
  double sum = 0.0;
  for (uint64_t i = 0; i < lat.size(); ++i) sum += w.probability_at(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(w.probability(QueryClass{1, 1}), 1.0 / 9, 1e-12);
}

TEST(WorkloadTest, UniformOverSubset) {
  QueryClassLattice lat(ToySchema());
  // Toy workload 3: only (0,0), (0,1), (0,2), (1,2).
  const auto w = Workload::UniformOver(
      lat, {QueryClass{0, 0}, QueryClass{0, 1}, QueryClass{0, 2},
            QueryClass{1, 2}});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w->probability(QueryClass{0, 0}), 0.25, 1e-12);
  EXPECT_NEAR(w->probability(QueryClass{2, 2}), 0.0, 1e-12);
}

TEST(WorkloadTest, UniformOverValidation) {
  QueryClassLattice lat(ToySchema());
  EXPECT_FALSE(Workload::UniformOver(lat, {}).ok());
  EXPECT_FALSE(Workload::UniformOver(lat, {QueryClass{0, 3}}).ok());
  EXPECT_FALSE(Workload::UniformOver(lat, {QueryClass{0, 0, 0}}).ok());
}

TEST(WorkloadTest, PointWorkload) {
  QueryClassLattice lat(ToySchema());
  const auto w = Workload::Point(lat, QueryClass{2, 0});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w->probability(QueryClass{2, 0}), 1.0, 1e-12);
}

TEST(WorkloadTest, ProductWorkload) {
  QueryClassLattice lat(ToySchema());
  const auto w = Workload::Product(lat, {{0.1, 0.3, 0.6}, {0.6, 0.3, 0.1}});
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w->probability(QueryClass{2, 0}), 0.6 * 0.6, 1e-12);
  EXPECT_NEAR(w->probability(QueryClass{1, 1}), 0.09, 1e-12);
}

TEST(WorkloadTest, ProductValidation) {
  QueryClassLattice lat(ToySchema());
  EXPECT_FALSE(Workload::Product(lat, {{0.5, 0.5}, {0.5, 0.5}}).ok());
  EXPECT_FALSE(
      Workload::Product(lat, {{0.1, 0.3, 0.7}, {0.33, 0.33, 0.34}}).ok());
  EXPECT_FALSE(Workload::Product(lat, {{0.33, 0.33, 0.34}}).ok());
}

TEST(WorkloadTest, FromMassesNormalizes) {
  QueryClassLattice lat(ToySchema());
  const auto w = Workload::FromMasses(
      lat, {{QueryClass{0, 0}, 3.0}, {QueryClass{2, 2}, 1.0}}, true);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w->probability(QueryClass{0, 0}), 0.75, 1e-12);
  EXPECT_FALSE(Workload::FromMasses(lat, {{QueryClass{0, 0}, 0.5}}).ok());
}

TEST(WorkloadTest, SampleFollowsDistribution) {
  QueryClassLattice lat(ToySchema());
  const auto w = Workload::FromMasses(
      lat, {{QueryClass{0, 0}, 0.8}, {QueryClass{2, 2}, 0.2}});
  ASSERT_TRUE(w.ok());
  Rng rng(3);
  int bottom = 0;
  const int draws = 10000;
  for (int i = 0; i < draws; ++i) {
    const QueryClass c = w->Sample(&rng);
    EXPECT_TRUE(c == (QueryClass{0, 0}) || c == (QueryClass{2, 2}));
    bottom += c == (QueryClass{0, 0});
  }
  EXPECT_NEAR(bottom, 8000, 200);
}

TEST(WorkloadTest, RandomIsNormalized) {
  QueryClassLattice lat(ToySchema());
  Rng rng(17);
  const Workload w = Workload::Random(lat, &rng);
  double sum = 0.0;
  for (uint64_t i = 0; i < lat.size(); ++i) {
    EXPECT_GE(w.probability_at(i), 0.0);
    sum += w.probability_at(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GridQueryTest, BoxOfQuery) {
  const StarSchema schema = ToySchema();
  GridQuery q{QueryClass{1, 0}, {1, 3}};
  const CellBox box = BoxOf(schema, q);
  EXPECT_EQ(box.lo[0], 2u);
  EXPECT_EQ(box.hi[0], 4u);
  EXPECT_EQ(box.lo[1], 3u);
  EXPECT_EQ(box.hi[1], 4u);
  EXPECT_EQ(box.NumCells(), 2u);
  CellCoord inside;
  inside.resize(2);
  inside[0] = 3;
  inside[1] = 3;
  EXPECT_TRUE(box.Contains(inside));
  inside[1] = 2;
  EXPECT_FALSE(box.Contains(inside));
}

TEST(GridQueryTest, EnumerationCoversClassExactly) {
  const StarSchema schema = ToySchema();
  const QueryClass cls{1, 0};
  EXPECT_EQ(NumQueriesInClass(schema, cls), 8u);
  const auto all = AllQueriesInClass(schema, cls);
  ASSERT_EQ(all.size(), 8u);
  // Every cell is covered exactly once across the class's queries.
  std::vector<int> covered(schema.num_cells(), 0);
  for (const GridQuery& q : all) {
    const CellBox box = BoxOf(schema, q);
    for (uint64_t x = box.lo[0]; x < box.hi[0]; ++x) {
      for (uint64_t y = box.lo[1]; y < box.hi[1]; ++y) {
        CellCoord c;
        c.resize(2);
        c[0] = x;
        c[1] = y;
        ++covered[schema.Flatten(c)];
      }
    }
  }
  for (int count : covered) EXPECT_EQ(count, 1);
}

TEST(GridQueryTest, QueryAtMatchesEnumeration) {
  const StarSchema schema = ToySchema();
  const QueryClass cls{0, 1};
  const auto all = AllQueriesInClass(schema, cls);
  for (uint64_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(QueryAt(schema, cls, i).block, all[i].block);
  }
}

TEST(GridQueryTest, QueryContainingIsConsistent) {
  const StarSchema schema = ToySchema();
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const QueryClass cls{static_cast<int>(rng.Below(3)),
                         static_cast<int>(rng.Below(3))};
    const CellCoord coord = schema.Unflatten(rng.Below(schema.num_cells()));
    const GridQuery q = QueryContaining(schema, cls, coord);
    EXPECT_TRUE(BoxOf(schema, q).Contains(coord));
  }
}

TEST(GridQueryTest, SampleQueryIsValid) {
  const StarSchema schema = ToySchema();
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const GridQuery q = SampleQuery(schema, QueryClass{1, 1}, &rng);
    EXPECT_LT(q.block[0], 2u);
    EXPECT_LT(q.block[1], 2u);
  }
}

}  // namespace
}  // namespace snakes
