#include <gtest/gtest.h>

#include "cost/workload_cost.h"
#include "hierarchy/star_schema.h"
#include "path/robust.h"
#include "path/snaked_dp.h"
#include "util/rng.h"

namespace snakes {
namespace {

QueryClassLattice ToyLattice() {
  return QueryClassLattice(StarSchema::Symmetric(2, 2, 2).value());
}

TEST(MixWorkloadsTest, AveragesProbabilities) {
  const QueryClassLattice lat = ToyLattice();
  const Workload a = Workload::Point(lat, QueryClass{2, 0}).value();
  const Workload b = Workload::Point(lat, QueryClass{0, 2}).value();
  const Workload mix = MixWorkloads({a, b}).value();
  EXPECT_NEAR(mix.probability(QueryClass{2, 0}), 0.5, 1e-12);
  EXPECT_NEAR(mix.probability(QueryClass{0, 2}), 0.5, 1e-12);
  const Workload tilted = MixWorkloads({a, b}, {3.0, 1.0}).value();
  EXPECT_NEAR(tilted.probability(QueryClass{2, 0}), 0.75, 1e-12);
}

TEST(MixWorkloadsTest, LinearityMakesMixtureOptimizationExact) {
  // cost_mu(P) is linear in mu, so the DP on the mixture minimizes the
  // average scenario cost — verified against explicit averaging.
  const QueryClassLattice lat = ToyLattice();
  Rng rng(83);
  const Workload a = Workload::Random(lat, &rng);
  const Workload b = Workload::Random(lat, &rng);
  const Workload mix = MixWorkloads({a, b}).value();
  const auto dp = FindOptimalSnakedLatticePath(mix).value();
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    const double avg = 0.5 * (ExpectedSnakedPathCost(a, path) +
                              ExpectedSnakedPathCost(b, path));
    EXPECT_GE(avg, dp.cost - 1e-9) << path.ToString();
  }
}

TEST(MixWorkloadsTest, Validation) {
  const QueryClassLattice lat = ToyLattice();
  const Workload a = Workload::Uniform(lat);
  EXPECT_FALSE(MixWorkloads({}).ok());
  EXPECT_FALSE(MixWorkloads({a}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MixWorkloads({a}, {-1.0}).ok());
  auto other = QueryClassLattice::FromFanouts({{2.0}, {2.0}}).value();
  EXPECT_FALSE(MixWorkloads({a, Workload::Uniform(other)}).ok());
}

TEST(RobustTest, MatchesBruteForceOnSmallLattices) {
  const QueryClassLattice lat = ToyLattice();
  Rng rng(89);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Workload> scenarios;
    const int n = 2 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < n; ++i) {
      scenarios.push_back(Workload::Random(lat, &rng));
    }
    const auto approx = RobustSnakedPath(scenarios).value();
    const auto exact = RobustSnakedPathBruteForce(scenarios).value();
    // MW plays against the DP oracle; on a 6-path lattice it should find
    // the exact minimax path (allow a small slack for safety).
    EXPECT_LE(approx.minimax_cost, exact.minimax_cost * 1.05 + 1e-9);
    EXPECT_GE(approx.minimax_cost, exact.minimax_cost - 1e-9);
  }
}

TEST(RobustTest, RobustBeatsSingleScenarioOptima) {
  // Two adversarial scenarios: a path tuned to either one is bad for the
  // other; the robust path's worst case must be no worse than the worst
  // case of each single-scenario optimum.
  const QueryClassLattice lat = ToyLattice();
  const Workload a = Workload::Point(lat, QueryClass{2, 0}).value();
  const Workload b = Workload::Point(lat, QueryClass{0, 2}).value();
  const std::vector<Workload> scenarios{a, b};
  const auto robust = RobustSnakedPath(scenarios).value();
  for (const Workload& mu : scenarios) {
    const auto tuned = FindOptimalSnakedLatticePath(mu).value();
    const auto tuned_result =
        RobustSnakedPathBruteForce({mu}).value();  // sanity: cost 1
    EXPECT_NEAR(tuned_result.minimax_cost, 1.0, 1e-12);
    double tuned_worst = 0.0;
    for (const Workload& other : scenarios) {
      tuned_worst =
          std::max(tuned_worst, ExpectedSnakedPathCost(other, tuned.path));
    }
    EXPECT_LE(robust.minimax_cost, tuned_worst + 1e-9);
  }
  // And the per-scenario costs are balanced.
  EXPECT_NEAR(robust.scenario_costs[0], robust.scenario_costs[1],
              1e-9 + 0.5 * robust.minimax_cost);
}

TEST(RobustTest, SingleScenarioReducesToSnakedDp) {
  const QueryClassLattice lat = ToyLattice();
  Rng rng(97);
  const Workload mu = Workload::Random(lat, &rng);
  const auto robust = RobustSnakedPath({mu}).value();
  const auto dp = FindOptimalSnakedLatticePath(mu).value();
  EXPECT_NEAR(robust.minimax_cost, dp.cost, 1e-9);
}

TEST(RobustTest, Validation) {
  EXPECT_FALSE(RobustSnakedPath({}).ok());
  const QueryClassLattice lat = ToyLattice();
  EXPECT_FALSE(RobustSnakedPath({Workload::Uniform(lat)}, 0).ok());
}

}  // namespace
}  // namespace snakes
