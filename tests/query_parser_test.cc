#include <gtest/gtest.h>

#include <vector>

#include "core/query_parser.h"
#include "hierarchy/star_schema.h"

namespace snakes {
namespace {

// The Figure-1 warehouse with its member labels.
class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    auto location =
        Hierarchy::Uniform("location", {2, 2}, {"city", "state", "all"})
            .value();
    auto jeans =
        Hierarchy::Uniform("jeans", {2, 2}, {"style", "type", "all"}).value();
    schema_ = StarSchema::Make("sales", {location, jeans}).value();
    tables_.push_back(
        DimensionTable::Make(
            location,
            {{"toronto", "ottawa", "albany", "nyc"}, {"ONT", "NY"}, {"any"}})
            .value());
    tables_.push_back(
        DimensionTable::Make(jeans, {{"men's levi's", "women's levi's",
                                      "men's gitano", "women's gitano"},
                                     {"levi's", "gitano"},
                                     {"any jeans"}})
            .value());
  }

  Result<GridQuery> Parse(std::string_view text) {
    return ParseGridQuery(schema_.value(), tables_, text);
  }

  Result<StarSchema> schema_ = Status::Internal("unset");
  std::vector<DimensionTable> tables_;
};

TEST_F(ParserTest, PaperQ1) {
  // Q1: location.state = NY and jeans.type = levi's -> class (1,1).
  const GridQuery q = Parse("location=NY jeans=levi's").value();
  EXPECT_EQ(q.cls, (QueryClass{1, 1}));
  EXPECT_EQ(q.block[0], 1u);  // NY
  EXPECT_EQ(q.block[1], 0u);  // levi's
}

TEST_F(ParserTest, PaperQ2) {
  // Q2: location.state = ONT, no jeans selection -> class (1,2).
  const GridQuery q = Parse("location=ONT").value();
  EXPECT_EQ(q.cls, (QueryClass{1, 2}));
  EXPECT_EQ(q.block[0], 0u);
  EXPECT_EQ(q.block[1], 0u);
}

TEST_F(ParserTest, EmptySelectionIsWholeGrid) {
  const GridQuery q = Parse("").value();
  EXPECT_EQ(q.cls, (QueryClass{2, 2}));
}

TEST_F(ParserTest, ExplicitLevelName) {
  const GridQuery q = Parse("location.city=ottawa").value();
  EXPECT_EQ(q.cls, (QueryClass{0, 2}));
  EXPECT_EQ(q.block[0], 1u);
  EXPECT_FALSE(Parse("location.county=ottawa").ok());
}

TEST_F(ParserTest, DoubleQuotedLabels) {
  const GridQuery q = Parse("jeans=\"women's gitano\"").value();
  EXPECT_EQ(q.cls, (QueryClass{2, 0}));
  EXPECT_EQ(q.block[1], 3u);
}

TEST_F(ParserTest, Errors) {
  EXPECT_FALSE(Parse("color=red").ok());
  EXPECT_FALSE(Parse("location=mars").ok());
  EXPECT_FALSE(Parse("location=NY location=ONT").ok());
  EXPECT_FALSE(Parse("location").ok());
  EXPECT_FALSE(Parse("=NY").ok());
  EXPECT_FALSE(Parse("jeans=\"unterminated").ok());
}

TEST_F(ParserTest, TableValidation) {
  // Mismatched table order / count is rejected.
  std::vector<DimensionTable> reversed{tables_[1], tables_[0]};
  EXPECT_FALSE(
      ParseGridQuery(schema_.value(), reversed, "location=NY").ok());
  std::vector<DimensionTable> one{tables_[0]};
  EXPECT_FALSE(ParseGridQuery(schema_.value(), one, "location=NY").ok());
}

}  // namespace
}  // namespace snakes
