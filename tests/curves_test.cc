#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "curves/hilbert.h"
#include "curves/linearization.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "hierarchy/star_schema.h"
#include "path/lattice_path.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> Toy() {
  return std::make_shared<StarSchema>(StarSchema::Symmetric(2, 2, 2).value());
}

std::shared_ptr<const StarSchema> Mixed() {
  // Non-power-of-two, non-square, 3-D.
  auto a = Hierarchy::Uniform("a", {3, 2}).value();
  auto b = Hierarchy::Uniform("b", {5}).value();
  auto c = Hierarchy::Uniform("c", {2, 2}).value();
  return std::make_shared<StarSchema>(
      StarSchema::Make("mixed", {a, b, c}).value());
}

LatticePath PathFromSteps(const StarSchema& schema, std::vector<int> steps) {
  return LatticePath::FromSteps(QueryClassLattice(schema), std::move(steps))
      .value();
}

TEST(RowMajorTest, MatchesClosedForm) {
  auto schema = Mixed();
  auto rm = RowMajorOrder::Make(schema, {1, 0, 2}).value();
  EXPECT_EQ(rm->name(), "row-major(b,a,c)");
  ASSERT_TRUE(rm->Validate().ok());
  // rank = b * (6*4) + a * 4 + c.
  CellCoord coord;
  coord.resize(3);
  coord[0] = 2;  // a
  coord[1] = 3;  // b
  coord[2] = 1;  // c
  EXPECT_EQ(rm->RankOf(coord), 3u * 24 + 2u * 4 + 1u);
}

TEST(RowMajorTest, AllOrdersAreValidAndDistinct) {
  auto schema = Mixed();
  auto all = AllRowMajorOrders(schema);
  ASSERT_EQ(all.size(), 6u);  // 3!
  for (const auto& rm : all) {
    EXPECT_TRUE(rm->Validate().ok()) << rm->name();
  }
  // Distinct names.
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i]->name(), all[j]->name());
    }
  }
}

TEST(RowMajorTest, RejectsBadPermutation) {
  auto schema = Toy();
  EXPECT_FALSE(RowMajorOrder::Make(schema, {0}).ok());
  EXPECT_FALSE(RowMajorOrder::Make(schema, {0, 0}).ok());
  EXPECT_FALSE(RowMajorOrder::Make(schema, {0, 2}).ok());
}

TEST(ZCurveTest, MatchesFigure2aOnToyGrid) {
  // Figure 2(a): within each 2x2 quadrant row-major, quadrants row-major.
  auto z = ZCurve::Make(Toy()).value();
  ASSERT_TRUE(z->Validate().ok());
  const uint64_t expected[4][4] = {// expected[row][col] = rank
                                   {0, 1, 4, 5},
                                   {2, 3, 6, 7},
                                   {8, 9, 12, 13},
                                   {10, 11, 14, 15}};
  for (uint64_t r = 0; r < 4; ++r) {
    for (uint64_t c = 0; c < 4; ++c) {
      CellCoord coord;
      coord.resize(2);
      coord[0] = r;
      coord[1] = c;
      EXPECT_EQ(z->RankOf(coord), expected[r][c]) << r << "," << c;
    }
  }
}

TEST(ZCurveTest, HandlesUnequalPowerOfTwoExtents) {
  auto a = Hierarchy::Uniform("a", {2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2, 2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("rect", {a, b}).value());
  auto z = ZCurve::Make(schema).value();
  EXPECT_TRUE(z->Validate().ok());
}

TEST(ZCurveTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(ZCurve::Make(Mixed()).ok());
}

TEST(GrayCurveTest, ValidAndUnitHammingSteps) {
  auto g = GrayCurve::Make(Toy()).value();
  ASSERT_TRUE(g->Validate().ok());
  // Consecutive interleaved codes differ in exactly one bit, so consecutive
  // cells differ in exactly one coordinate (by a power of two).
  CellCoord prev = g->CellAt(0);
  for (uint64_t r = 1; r < g->num_cells(); ++r) {
    const CellCoord cur = g->CellAt(r);
    int changed = 0;
    for (size_t d = 0; d < 2; ++d) changed += cur[d] != prev[d];
    EXPECT_EQ(changed, 1) << "rank " << r;
    prev = cur;
  }
}

TEST(HilbertTest, ValidBijectionAndAdjacency) {
  for (bool swap : {false, true}) {
    auto h = HilbertCurve::Make(Toy(), swap).value();
    ASSERT_TRUE(h->Validate().ok());
    CellCoord prev = h->CellAt(0);
    for (uint64_t r = 1; r < h->num_cells(); ++r) {
      const CellCoord cur = h->CellAt(r);
      uint64_t manhattan = 0;
      for (size_t d = 0; d < 2; ++d) {
        manhattan += cur[d] > prev[d] ? cur[d] - prev[d] : prev[d] - cur[d];
      }
      EXPECT_EQ(manhattan, 1u) << "rank " << r;
      prev = cur;
    }
  }
}

TEST(HilbertTest, ThreeDimensionalAdjacency) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(3, 2, 2).value());  // 4x4x4
  auto h = HilbertCurve::Make(schema).value();
  ASSERT_TRUE(h->Validate().ok());
  CellCoord prev = h->CellAt(0);
  for (uint64_t r = 1; r < h->num_cells(); ++r) {
    const CellCoord cur = h->CellAt(r);
    uint64_t manhattan = 0;
    for (size_t d = 0; d < 3; ++d) {
      manhattan += cur[d] > prev[d] ? cur[d] - prev[d] : prev[d] - cur[d];
    }
    EXPECT_EQ(manhattan, 1u) << "rank " << r;
    prev = cur;
  }
}

TEST(HilbertTest, RequiresSquarePowerOfTwo) {
  EXPECT_FALSE(HilbertCurve::Make(Mixed()).ok());
  auto a = Hierarchy::Uniform("a", {2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2}).value();
  auto rect = std::make_shared<StarSchema>(
      StarSchema::Make("rect", {a, b}).value());
  EXPECT_FALSE(HilbertCurve::Make(rect).ok());
}

TEST(PathOrderTest, P1IsRowMajor) {
  auto schema = Toy();
  // P1 = (0,0)-(0,1)-(0,2)-(1,2)-(2,2): loops B1, B2, A1, A2 — dimension B
  // varies fastest, i.e. row-major with A outer.
  const LatticePath p1 = PathFromSteps(*schema, {1, 1, 0, 0});
  auto order = PathOrder::Make(schema, p1, /*snaked=*/false).value();
  ASSERT_TRUE(order->Validate().ok());
  auto rm = RowMajorOrder::Make(schema, {0, 1}).value();
  for (uint64_t r = 0; r < order->num_cells(); ++r) {
    EXPECT_EQ(schema->Flatten(order->CellAt(r)),
              schema->Flatten(rm->CellAt(r)));
  }
}

TEST(PathOrderTest, P2EqualsZCurve) {
  auto schema = Toy();
  // P2 alternates B,A,B,A — exactly the quadrant/Z recursion on a binary
  // grid (Figure 2(a)).
  const LatticePath p2 = PathFromSteps(*schema, {1, 0, 1, 0});
  auto order = PathOrder::Make(schema, p2, /*snaked=*/false).value();
  auto z = ZCurve::Make(schema).value();
  for (uint64_t r = 0; r < order->num_cells(); ++r) {
    EXPECT_EQ(schema->Flatten(order->CellAt(r)), schema->Flatten(z->CellAt(r)));
  }
}

TEST(PathOrderTest, SnakedOrdersAreValid) {
  auto schema = Mixed();
  const QueryClassLattice lat(*schema);
  const LatticePath path = LatticePath::RoundRobin(lat);
  for (bool snaked : {false, true}) {
    auto order = PathOrder::Make(schema, path, snaked).value();
    EXPECT_TRUE(order->Validate().ok()) << order->name();
  }
}

TEST(PathOrderTest, SnakedStepsChangeOneDigitByOne) {
  auto schema = Mixed();
  const QueryClassLattice lat(*schema);
  for (const std::vector<int>& steps :
       {std::vector<int>{2, 1, 0, 2, 0}, std::vector<int>{0, 0, 1, 2, 2}}) {
    const LatticePath path = PathFromSteps(*schema, steps);
    auto order = PathOrder::Make(schema, path, /*snaked=*/true).value();
    CellCoord prev = order->CellAt(0);
    for (uint64_t r = 1; r < order->num_cells(); ++r) {
      const CellCoord cur = order->CellAt(r);
      int changed = 0;
      for (size_t d = 0; d < 3; ++d) changed += cur[d] != prev[d];
      EXPECT_EQ(changed, 1) << "diagonal step at rank " << r;
      prev = cur;
    }
  }
}

TEST(PathOrderTest, WalkAgreesWithCellAt) {
  auto schema = Mixed();
  const LatticePath path = PathFromSteps(*schema, {2, 1, 0, 2, 0});
  for (bool snaked : {false, true}) {
    auto order = PathOrder::Make(schema, path, snaked).value();
    order->Walk([&](uint64_t rank, const CellCoord& coord) {
      EXPECT_EQ(schema->Flatten(order->CellAt(rank)), schema->Flatten(coord));
    });
  }
}

TEST(PathOrderTest, SnakedFigure5P1) {
  // Snaked P1 boustrophedons at EVERY loop level: the B1 loop reverses on
  // each re-entry (so row 0 visits columns 0,1,3,2), the B2 loop reverses
  // per row, and the A loops snake the row order (0,1,3,2). This is the
  // order whose class costs reproduce the paper's snaked-P1 column of
  // Table 1 exactly (see cost_test.cc).
  auto schema = Toy();
  const LatticePath p1 = PathFromSteps(*schema, {1, 1, 0, 0});
  auto order = PathOrder::Make(schema, p1, /*snaked=*/true).value();
  const uint64_t expected[16][2] = {
      {0, 0}, {0, 1}, {0, 3}, {0, 2}, {1, 2}, {1, 3}, {1, 1}, {1, 0},
      {3, 0}, {3, 1}, {3, 3}, {3, 2}, {2, 2}, {2, 3}, {2, 1}, {2, 0}};
  for (uint64_t rank = 0; rank < 16; ++rank) {
    const CellCoord c = order->CellAt(rank);
    EXPECT_EQ(c[0], expected[rank][0]) << "rank " << rank;
    EXPECT_EQ(c[1], expected[rank][1]) << "rank " << rank;
  }
}

TEST(MakePathOrderTest, NonUniformHierarchiesSupported) {
  auto geo = Hierarchy::Explicit("geo", {{2, 3, 1}, {3}}).value();
  auto other = Hierarchy::Uniform("o", {2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("nu", {geo, other}).value());
  const QueryClassLattice lat(*schema);
  const LatticePath path =
      LatticePath::FromSteps(lat, {0, 1, 0}).value();
  for (bool snaked : {false, true}) {
    auto order = MakePathOrder(schema, path, snaked).value();
    EXPECT_TRUE(order->Validate().ok()) << order->name();
  }
}

TEST(MakePathOrderTest, GenerativeMatchesClosedFormOnUniform) {
  // Force the generative sweep through a materialized copy and compare with
  // the closed-form PathOrder on a uniform schema.
  auto schema = Mixed();
  const LatticePath path = PathFromSteps(*schema, {1, 0, 2, 0, 2});
  for (bool snaked : {false, true}) {
    auto closed = PathOrder::Make(schema, path, snaked).value();
    auto materialized = MaterializedLinearization::From(*closed);
    for (uint64_t r = 0; r < closed->num_cells(); ++r) {
      EXPECT_EQ(schema->Flatten(closed->CellAt(r)),
                schema->Flatten(materialized->CellAt(r)));
      EXPECT_EQ(materialized->RankOf(closed->CellAt(r)), r);
    }
  }
}

TEST(MaterializedTest, RejectsNonPermutations) {
  auto schema = Toy();
  std::vector<CellId> dup(16, 0);
  EXPECT_FALSE(
      MaterializedLinearization::Make(schema, "dup", std::move(dup)).ok());
  std::vector<CellId> truncated(3, 0);
  EXPECT_FALSE(
      MaterializedLinearization::Make(schema, "short", std::move(truncated))
          .ok());
}

}  // namespace
}  // namespace snakes
