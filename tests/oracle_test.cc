// Independent oracle for the analytic cost model: the library computes
// per-class average seek costs from the edge-type histogram (the internality
// identity); this suite recomputes them the slow, literal way — enumerate
// every query of the class, collect its cells' ranks, sort, and count
// maximal runs of consecutive ranks — and demands exact agreement, for every
// strategy family on assorted schemas.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cost/edge_model.h"
#include "curves/hilbert.h"
#include "curves/path_order.h"
#include "curves/row_major.h"
#include "curves/z_curve.h"
#include "hierarchy/star_schema.h"
#include "lattice/grid_query.h"
#include "path/lattice_path.h"
#include "storage/chunks.h"

namespace snakes {
namespace {

// Summed fragment count over every query of `cls`, by brute force.
uint64_t BruteForceFragments(const Linearization& lin, const QueryClass& cls) {
  const StarSchema& schema = lin.schema();
  uint64_t total = 0;
  for (const GridQuery& q : AllQueriesInClass(schema, cls)) {
    const CellBox box = BoxOf(schema, q);
    std::vector<uint64_t> ranks;
    ranks.reserve(box.NumCells());
    CellCoord coord = box.lo;
    const int k = schema.num_dims();
    for (;;) {
      ranks.push_back(lin.RankOf(coord));
      int d = k - 1;
      for (; d >= 0; --d) {
        if (++coord[static_cast<size_t>(d)] < box.hi[static_cast<size_t>(d)]) {
          break;
        }
        coord[static_cast<size_t>(d)] = box.lo[static_cast<size_t>(d)];
      }
      if (d < 0) break;
    }
    std::sort(ranks.begin(), ranks.end());
    uint64_t fragments = 1;
    for (size_t i = 1; i < ranks.size(); ++i) {
      fragments += ranks[i] != ranks[i - 1] + 1;
    }
    total += fragments;
  }
  return total;
}

void CheckAllClasses(const Linearization& lin) {
  const ClassCostTable costs = MeasureClassCosts(lin);
  const QueryClassLattice& lat = costs.lattice();
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass cls = lat.ClassAt(i);
    EXPECT_EQ(costs.TotalFragments(cls), BruteForceFragments(lin, cls))
        << lin.name() << " class " << cls.ToString();
  }
}

TEST(OracleTest, ToyGridAllStrategies) {
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Symmetric(2, 2, 2).value());
  const QueryClassLattice lat(*schema);
  CheckAllClasses(*ZCurve::Make(schema).value());
  CheckAllClasses(*GrayCurve::Make(schema).value());
  CheckAllClasses(*HilbertCurve::Make(schema).value());
  CheckAllClasses(*HilbertCurve::Make(schema, true).value());
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    CheckAllClasses(*PathOrder::Make(schema, path, false).value());
    CheckAllClasses(*PathOrder::Make(schema, path, true).value());
  }
}

TEST(OracleTest, MixedThreeDimensionalSchema) {
  auto a = Hierarchy::Uniform("a", {3, 2}).value();
  auto b = Hierarchy::Uniform("b", {4}).value();
  auto c = Hierarchy::Uniform("c", {2, 2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("mixed", {a, b, c}).value());
  const QueryClassLattice lat(*schema);
  for (auto& rm : AllRowMajorOrders(schema)) CheckAllClasses(*rm);
  const LatticePath rr = LatticePath::RoundRobin(lat);
  CheckAllClasses(*PathOrder::Make(schema, rr, false).value());
  CheckAllClasses(*PathOrder::Make(schema, rr, true).value());
}

TEST(OracleTest, NonUniformHierarchy) {
  auto geo = Hierarchy::Explicit("geo", {{2, 3, 1}, {3}}).value();
  auto other = Hierarchy::Uniform("o", {2, 2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("nu", {geo, other}).value());
  const QueryClassLattice lat(*schema);
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    auto plain = MakePathOrder(schema, path, false).value();
    auto snaked = MakePathOrder(schema, path, true).value();
    CheckAllClasses(*plain);
    CheckAllClasses(*snaked);
  }
}

TEST(OracleTest, ChunkedOrders) {
  auto a = Hierarchy::Uniform("a", {2, 3}).value();
  auto b = Hierarchy::Uniform("b", {4, 2}).value();
  auto schema = std::make_shared<StarSchema>(
      StarSchema::Make("s", {a, b}).value());
  const QueryClass chunk_class{1, 1};
  const auto grid = ChunkGridSchema(*schema, chunk_class).value();
  for (auto& order : AllRowMajorOrders(grid)) {
    auto chunked =
        ChunkedOrder::Make(schema, chunk_class,
                           std::shared_ptr<const Linearization>(
                               std::move(order)))
            .value();
    CheckAllClasses(*chunked);
  }
}

}  // namespace
}  // namespace snakes
