#include <gtest/gtest.h>

#include <memory>

#include "cost/workload_cost.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "path/dp2d.h"
#include "path/dpkd.h"
#include "path/lattice_path.h"
#include "path/snaking.h"
#include "util/rng.h"

namespace snakes {
namespace {

QueryClassLattice ToyLattice() {
  return QueryClassLattice(StarSchema::Symmetric(2, 2, 2).value());
}

TEST(LatticePathTest, FromStepsValidation) {
  const QueryClassLattice lat = ToyLattice();
  EXPECT_TRUE(LatticePath::FromSteps(lat, {0, 0, 1, 1}).ok());
  EXPECT_FALSE(LatticePath::FromSteps(lat, {0, 0, 0, 1}).ok());
  EXPECT_FALSE(LatticePath::FromSteps(lat, {0, 0, 1}).ok());
  EXPECT_FALSE(LatticePath::FromSteps(lat, {0, 0, 1, 2}).ok());
}

TEST(LatticePathTest, FromPointsMatchesExample2) {
  const QueryClassLattice lat = ToyLattice();
  // P1 and P2 exactly as Example 2 writes them.
  const auto p1 = LatticePath::FromPoints(
      lat, {QueryClass{0, 0}, QueryClass{0, 1}, QueryClass{0, 2},
            QueryClass{1, 2}, QueryClass{2, 2}});
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->steps(), (std::vector<int>{1, 1, 0, 0}));
  const auto p2 = LatticePath::FromPoints(
      lat, {QueryClass{0, 0}, QueryClass{0, 1}, QueryClass{1, 1},
            QueryClass{1, 2}, QueryClass{2, 2}});
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->steps(), (std::vector<int>{1, 0, 1, 0}));
  EXPECT_EQ(p1->ToString(), "(0,0)-(0,1)-(0,2)-(1,2)-(2,2)");
}

TEST(LatticePathTest, FromPointsValidation) {
  const QueryClassLattice lat = ToyLattice();
  EXPECT_FALSE(LatticePath::FromPoints(lat, {}).ok());
  EXPECT_FALSE(LatticePath::FromPoints(
                   lat, {QueryClass{0, 0}, QueryClass{2, 2}})
                   .ok());
  EXPECT_FALSE(LatticePath::FromPoints(
                   lat, {QueryClass{0, 1}, QueryClass{0, 2},
                         QueryClass{1, 2}, QueryClass{2, 2}})
                   .ok());
}

TEST(LatticePathTest, ContainsAndMaxPointBelow) {
  const QueryClassLattice lat = ToyLattice();
  const LatticePath p1 = LatticePath::FromSteps(lat, {1, 1, 0, 0}).value();
  EXPECT_TRUE(p1.Contains(QueryClass{0, 1}));
  EXPECT_FALSE(p1.Contains(QueryClass{1, 1}));
  EXPECT_EQ(p1.MaxPointBelow(QueryClass{1, 1}), (QueryClass{0, 1}));
  EXPECT_EQ(p1.MaxPointBelow(QueryClass{2, 0}), (QueryClass{0, 0}));
  EXPECT_EQ(p1.MaxPointBelow(QueryClass{2, 2}), (QueryClass{2, 2}));
}

TEST(LatticePathTest, RowMajorAndRoundRobinFactories) {
  const QueryClassLattice lat = ToyLattice();
  const LatticePath p1 = LatticePath::RowMajor(lat, {0, 1}).value();
  EXPECT_EQ(p1.steps(), (std::vector<int>{1, 1, 0, 0}));
  const LatticePath rr = LatticePath::RoundRobin(lat);
  EXPECT_EQ(rr.steps(), (std::vector<int>{0, 1, 0, 1}));
  EXPECT_FALSE(LatticePath::RowMajor(lat, {0}).ok());
  EXPECT_FALSE(LatticePath::RowMajor(lat, {1, 1}).ok());
}

TEST(LatticePathTest, EnumerateAllCountsMultinomial) {
  const QueryClassLattice lat = ToyLattice();
  EXPECT_EQ(EnumerateAllPaths(lat).value().size(), 6u);  // 4!/(2!2!)
  auto lat3 = QueryClassLattice::FromFanouts({{2.0}, {2.0}, {2.0}}).value();
  EXPECT_EQ(EnumerateAllPaths(lat3).value().size(), 6u);  // 3!
  EXPECT_FALSE(EnumerateAllPaths(lat, 3).ok());  // cap enforced
}

// ---------------------------------------------------------------------------
// Dynamic program: correctness against brute force, 2-D and k-D agreement.
// ---------------------------------------------------------------------------

struct DpCase {
  std::vector<std::vector<double>> fanouts;
  uint64_t seed;
};

void PrintTo(const DpCase& c, std::ostream* os) {
  *os << "fanouts[";
  for (size_t d = 0; d < c.fanouts.size(); ++d) {
    if (d) *os << "|";
    for (size_t i = 0; i < c.fanouts[d].size(); ++i) {
      if (i) *os << ",";
      *os << c.fanouts[d][i];
    }
  }
  *os << "] seed " << c.seed;
}

class DpPropertyTest : public ::testing::TestWithParam<DpCase> {};

TEST_P(DpPropertyTest, DpMatchesBruteForce) {
  const DpCase& param = GetParam();
  const auto lat = QueryClassLattice::FromFanouts(param.fanouts).value();
  Rng rng(param.seed);
  for (int trial = 0; trial < 20; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto dp = FindOptimalLatticePath(mu).value();
    const auto brute = FindOptimalLatticePathBruteForce(mu).value();
    EXPECT_NEAR(dp.cost, brute.cost, 1e-9 * (1 + brute.cost));
    // The DP's reported cost must equal its own path's analytic cost.
    EXPECT_NEAR(ExpectedPathCost(mu, dp.path), dp.cost,
                1e-9 * (1 + dp.cost));
  }
}

class Dp2dAgreementTest : public ::testing::TestWithParam<DpCase> {};

TEST_P(Dp2dAgreementTest, TwoDimMatchesKDim) {
  const DpCase& param = GetParam();
  const auto lat = QueryClassLattice::FromFanouts(param.fanouts).value();
  Rng rng(param.seed + 1);
  for (int trial = 0; trial < 20; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto kd = FindOptimalLatticePath(mu).value();
    const auto two = FindOptimalLatticePath2D(mu).value();
    EXPECT_NEAR(kd.cost, two.cost, 1e-9 * (1 + kd.cost));
    EXPECT_NEAR(ExpectedPathCost(mu, two.path), two.cost,
                1e-9 * (1 + two.cost));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lattices, DpPropertyTest,
    ::testing::Values(
        DpCase{{{2, 2}, {2, 2}}, 101},
        DpCase{{{2, 2, 2}, {2, 2, 2}}, 102},
        DpCase{{{3, 4}, {2, 5}}, 103},
        DpCase{{{2.5, 3.5}, {4.0, 1.5}}, 104},       // fractional fanouts
        DpCase{{{2, 3}, {4}, {2, 2}}, 105},          // 3 dims
        DpCase{{{2}, {3}, {2}, {2}}, 106},           // 4 dims
        DpCase{{{7, 2, 3}, {2}}, 107}));

// The literal Figure-4 algorithm only exists for k = 2.
INSTANTIATE_TEST_SUITE_P(
    TwoDimLattices, Dp2dAgreementTest,
    ::testing::Values(
        DpCase{{{2, 2}, {2, 2}}, 101},
        DpCase{{{2, 2, 2}, {2, 2, 2}}, 102},
        DpCase{{{3, 4}, {2, 5}}, 103},
        DpCase{{{2.5, 3.5}, {4.0, 1.5}}, 104},
        DpCase{{{7, 2, 3}, {2}}, 107}));

TEST(Dp2dTest, RejectsNon2D) {
  auto lat = QueryClassLattice::FromFanouts({{2.0}, {2.0}, {2.0}}).value();
  EXPECT_FALSE(FindOptimalLatticePath2D(Workload::Uniform(lat)).ok());
}

TEST(DpTest, PointWorkloadPullsPathThroughClass) {
  // With all mass on one class, any optimal path passes through it
  // (cost 1 = the minimum possible).
  const QueryClassLattice lat = ToyLattice();
  for (uint64_t i = 0; i < lat.size(); ++i) {
    const QueryClass target = lat.ClassAt(i);
    const Workload mu = Workload::Point(lat, target).value();
    const auto dp = FindOptimalLatticePath(mu).value();
    EXPECT_TRUE(dp.path.Contains(target)) << target.ToString();
    EXPECT_NEAR(dp.cost, 1.0, 1e-12);
  }
}

TEST(DpTest, UniformToyWorkloadOptimum) {
  // Brute force over the 6 paths for workload 1 shows P2-style alternation
  // wins (cost 15/9, Table 2).
  const QueryClassLattice lat = ToyLattice();
  const auto dp = FindOptimalLatticePath(Workload::Uniform(lat)).value();
  EXPECT_NEAR(dp.cost, 15.0 / 9, 1e-12);
}

TEST(DpTest, CostTablesExposeSublatticeOptima) {
  const QueryClassLattice lat = ToyLattice();
  const Workload mu = Workload::Uniform(lat);
  const auto dp = FindOptimalLatticePath(mu).value();
  // cost_table at top = p_top.
  EXPECT_NEAR(dp.cost_table[lat.Index(lat.Top())],
              mu.probability(lat.Top()), 1e-12);
  EXPECT_NEAR(dp.cost_table[lat.Index(lat.Bottom())], dp.cost, 1e-12);
}

// ---------------------------------------------------------------------------
// Snaking: never hurts, Theorem 3 bound, Section 5.2 example.
// ---------------------------------------------------------------------------

TEST(SnakingTest, BenefitExampleFromSection52) {
  const QueryClassLattice lat = ToyLattice();
  const LatticePath p3 = LatticePath::FromSteps(lat, {1, 0, 0, 1}).value();
  EXPECT_NEAR(SnakingBenefit(p3, QueryClass{2, 0}), 1.6, 1e-12);
}

TEST(SnakingTest, SnakingNeverIncreasesAnyClassCost) {
  // Property over every path of binary lattices with n = 2 and 3.
  for (int n : {2, 3}) {
    const auto lat = QueryClassLattice::FromFanouts(
                         {std::vector<double>(n, 2.0),
                          std::vector<double>(n, 2.0)})
                         .value();
    for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
      for (uint64_t i = 0; i < lat.size(); ++i) {
        const QueryClass cls = lat.ClassAt(i);
        EXPECT_LE(DistToSnakedPath(path, cls),
                  DistToPath(path, cls) + 1e-12)
            << path.ToString() << " " << cls.ToString();
      }
    }
  }
}

TEST(SnakingTest, TheoremThreeBoundHoldsExhaustively) {
  // ben_P(c) < the n-level bound for every path and class (Theorem 3).
  for (int n : {2, 3}) {
    const auto lat = QueryClassLattice::FromFanouts(
                         {std::vector<double>(n, 2.0),
                          std::vector<double>(n, 2.0)})
                         .value();
    const double bound = TheoremThreeBound(n);
    EXPECT_LT(bound, 2.0);
    for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
      EXPECT_LE(MaxSnakingBenefit(path), bound + 1e-12) << path.ToString();
    }
  }
}

TEST(SnakingTest, BoundIsTightForWorstCaseClass) {
  // The proof's extremal configuration: one B step, then all n A steps
  // (P3's pattern generalized); class (n, 0) then realizes the bound
  // exactly — for n = 2 this is Section 5.2's benefit 1.6.
  for (int n : {2, 3, 4}) {
    const auto lat = QueryClassLattice::FromFanouts(
                         {std::vector<double>(n, 2.0),
                          std::vector<double>(n, 2.0)})
                         .value();
    std::vector<int> steps{1};
    steps.insert(steps.end(), static_cast<size_t>(n), 0);
    steps.insert(steps.end(), static_cast<size_t>(n - 1), 1);
    const LatticePath path = LatticePath::FromSteps(lat, steps).value();
    QueryClass worst(2);
    worst.set_level(0, n);
    worst.set_level(1, 0);
    EXPECT_NEAR(SnakingBenefit(path, worst), TheoremThreeBound(n), 1e-12);
  }
}

TEST(SnakingTest, WorkloadRatioBelowTwoForRandomWorkloads) {
  const QueryClassLattice lat = ToyLattice();
  Rng rng(77);
  for (const LatticePath& path : EnumerateAllPaths(lat).value()) {
    for (int trial = 0; trial < 10; ++trial) {
      const Workload mu = Workload::Random(lat, &rng);
      const double ratio = SnakingCostRatio(mu, path);
      EXPECT_GE(ratio, 1.0 - 1e-12);
      EXPECT_LT(ratio, 2.0);
    }
  }
}

TEST(SnakingTest, SnakedOptimalWithinTwiceOfOptimalSnaked) {
  // Corollary 1: cost(snaked DP path) <= 2 * min over paths of snaked cost.
  const QueryClassLattice lat = ToyLattice();
  Rng rng(99);
  const auto all = EnumerateAllPaths(lat).value();
  for (int trial = 0; trial < 50; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto dp = FindOptimalLatticePath(mu).value();
    const double snaked_dp = ExpectedSnakedPathCost(mu, dp.path);
    double best_snaked = snaked_dp;
    for (const LatticePath& path : all) {
      best_snaked = std::min(best_snaked, ExpectedSnakedPathCost(mu, path));
    }
    EXPECT_LT(snaked_dp, 2.0 * best_snaked + 1e-12);
  }
}

}  // namespace
}  // namespace snakes
