#include "cost/calibration.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/advisor.h"
#include "lattice/lattice.h"
#include "lattice/workload.h"
#include "tpcd/dbgen.h"
#include "util/clock.h"

namespace snakes {
namespace {

TEST(LeastSquaresTest, RecoversExactCoefficients) {
  // y = 2 + 3*a - 0.5*b, noiseless: the solver must hit the coefficients to
  // numerical round-off (1e-9 is generous; the residual is exactly zero).
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double a = 0.0; a < 5.0; a += 1.0) {
    for (double b = 0.0; b < 4.0; b += 1.0) {
      rows.push_back({1.0, a, b});
      y.push_back(2.0 + 3.0 * a - 0.5 * b);
    }
  }
  const auto solved = SolveLeastSquares(rows, y);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  ASSERT_EQ(solved->size(), 3u);
  EXPECT_NEAR((*solved)[0], 2.0, 1e-9);
  EXPECT_NEAR((*solved)[1], 3.0, 1e-9);
  EXPECT_NEAR((*solved)[2], -0.5, 1e-9);
}

TEST(LeastSquaresTest, SingularDesignIsAnErrorNotNan) {
  // Two identical columns: X^T X is singular. The solver must return
  // InvalidArgument — never NaN coefficients.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double a = 0.0; a < 6.0; a += 1.0) {
    rows.push_back({1.0, a, a});
    y.push_back(1.0 + 2.0 * a);
  }
  const auto solved = SolveLeastSquares(rows, y);
  EXPECT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kInvalidArgument);
}

TEST(LeastSquaresTest, ConstantColumnAgainstInterceptIsSingular) {
  // A feature that never varies is collinear with the intercept.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (double a = 0.0; a < 6.0; a += 1.0) {
    rows.push_back({1.0, 7.0});
    y.push_back(3.0);
  }
  EXPECT_FALSE(SolveLeastSquares(rows, y).ok());
}

TEST(LeastSquaresTest, RejectsDegenerateShapes) {
  // Fewer rows than unknowns.
  EXPECT_FALSE(SolveLeastSquares({{1.0, 2.0, 3.0}}, {1.0}).ok());
  // Empty system.
  EXPECT_FALSE(SolveLeastSquares({}, {}).ok());
  // Ragged rows.
  EXPECT_FALSE(SolveLeastSquares({{1.0, 2.0}, {1.0}}, {1.0, 2.0}).ok());
  // Mismatched y.
  EXPECT_FALSE(SolveLeastSquares({{1.0}, {2.0}}, {1.0}).ok());
}

TEST(LeastSquaresTest, RejectsNonFiniteInput) {
  const double nan = std::nan("");
  EXPECT_FALSE(SolveLeastSquares({{1.0, nan}, {1.0, 2.0}, {1.0, 3.0}},
                                 {1.0, 2.0, 3.0})
                   .ok());
  EXPECT_FALSE(SolveLeastSquares({{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}},
                                 {1.0, nan, 3.0})
                   .ok());
}

CalibrationSample SyntheticSample(double seeks, double pages,
                                  double intercept, double seek_ms,
                                  double page_ms, const char* cls = "(0,0)") {
  CalibrationSample sample;
  sample.query_class = cls;
  sample.strategy = "synthetic";
  sample.backend = "packed";
  sample.features.seeks = seeks;
  sample.features.pages = pages;
  sample.measured_ns = (intercept + seek_ms * seeks + page_ms * pages) * 1e6;
  return sample;
}

TEST(CalibrationFitTest, RecoversSyntheticCoefficients) {
  // Noiseless synthetic time: the fit must recover intercept and both
  // coefficients to 1e-9 and report a perfect fit.
  const double intercept = 0.75, seek_ms = 9.5, page_ms = 0.546;
  std::vector<CalibrationSample> samples;
  for (double s = 1.0; s <= 8.0; s += 1.0) {
    for (double p = s; p <= s + 40.0; p += 10.0) {
      samples.push_back(SyntheticSample(s, p, intercept, seek_ms, page_ms));
    }
  }
  const auto fit = FitCalibration(samples);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_NEAR(fit->intercept_ms, intercept, 1e-9);
  EXPECT_NEAR(fit->coefficients_ms.seeks, seek_ms, 1e-9);
  EXPECT_NEAR(fit->coefficients_ms.pages, page_ms, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit->median_relative_error, 0.0, 1e-9);
  EXPECT_EQ(fit->num_samples, samples.size());

  // The fitted model predicts exactly on the training features.
  const CalibratedLinearModel model = fit->ToModel();
  for (const CalibrationSample& sample : samples) {
    EXPECT_NEAR(model.EstimateMs(sample.features, 8192),
                sample.measured_ns * 1e-6, 1e-9);
  }
}

TEST(CalibrationFitTest, UnknownFeatureAndDegenerateSweepsFail) {
  std::vector<CalibrationSample> samples = {
      SyntheticSample(1.0, 2.0, 0.5, 9.5, 0.5),
      SyntheticSample(2.0, 5.0, 0.5, 9.5, 0.5),
      SyntheticSample(3.0, 9.0, 0.5, 9.5, 0.5),
  };
  CalibrationFitOptions options;
  options.features = {"seeks", "warp_drives"};
  EXPECT_FALSE(FitCalibration(samples, options).ok());
  // A feature that never varies across the sweep is collinear with the
  // intercept: error Status, not a NaN model.
  std::vector<CalibrationSample> constant = {
      SyntheticSample(2.0, 2.0, 0.5, 9.5, 0.5),
      SyntheticSample(2.0, 5.0, 0.5, 9.5, 0.5),
      SyntheticSample(2.0, 9.0, 0.5, 9.5, 0.5),
  };
  EXPECT_FALSE(FitCalibration(constant).ok());
  // Non-finite measurements are rejected up front.
  samples[1].measured_ns = std::nan("");
  EXPECT_FALSE(FitCalibration(samples).ok());
  EXPECT_FALSE(FitCalibration({}).ok());
}

TEST(CalibrationFitTest, FitJsonLoadsBackAsTheSameModel) {
  const auto fit = FitCalibration({
      SyntheticSample(1.0, 2.0, 0.5, 9.5, 0.5),
      SyntheticSample(2.0, 5.0, 0.5, 9.5, 0.5),
      SyntheticSample(3.0, 9.0, 0.5, 9.5, 0.5),
      SyntheticSample(5.0, 11.0, 0.5, 9.5, 0.5),
  });
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // The coefficients JSON carries the fit report, and still loads as a
  // bit-identical model (the service's `costmodel calibrated` path).
  const auto parsed = CalibratedLinearModel::FromJson(fit->ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->intercept_ms(), fit->intercept_ms);
  EXPECT_EQ(parsed->coefficients_ms().seeks, fit->coefficients_ms.seeks);
  EXPECT_EQ(parsed->coefficients_ms().pages, fit->coefficients_ms.pages);
}

class CalibrationSweepTest : public ::testing::Test {
 protected:
  CalibrationSweepTest() {
    tpcd::Config config;
    config.parts_per_mfgr = 3;
    config.num_mfgrs = 2;
    config.num_suppliers = 3;
    config.months_per_year = 4;
    config.num_years = 2;
    config.num_orders = 600;
    warehouse_ = tpcd::GenerateWarehouse(config, 11).value();
    const ClusteringAdvisor advisor(warehouse_.schema);
    EvaluationRequest request{Workload::Uniform(advisor.Lattice())};
    request.strategies = {"row-major"};
    for (const PlannedStrategy& s :
         advisor.Plan(request).value().strategies) {
      strategies_.push_back(s.linearization);
    }
  }

  CalibrationSweepConfig SweepConfig() const {
    CalibrationSweepConfig config;
    config.queries_per_class = 2;
    config.repetitions = 2;
    config.scratch_path = ::testing::TempDir() + "/calibration_scratch.bin";
    return config;
  }

  tpcd::Warehouse warehouse_;
  std::vector<std::shared_ptr<const Linearization>> strategies_;
};

TEST_F(CalibrationSweepTest, FakeClockMakesTheSweepDeterministic) {
  // Under an injected clock every measured_ns is a pure function of the
  // clock parameters: two identical sweeps agree bit-for-bit, and each
  // sample's elapsed time is exactly one clock step (ExecuteTimed reads the
  // clock exactly twice), times the min-of-repetitions estimator.
  const CalibrationSweepConfig config = SweepConfig();
  FakeClock clock_a(/*start_ns=*/1000, /*step_ns=*/250);
  const auto a =
      CollectCalibrationSamples(warehouse_.facts, strategies_, config,
                                &clock_a);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_FALSE(a.value().empty());
  for (const CalibrationSample& sample : a.value()) {
    EXPECT_EQ(sample.measured_ns, 250.0) << sample.query_class;
  }

  FakeClock clock_b(/*start_ns=*/1000, /*step_ns=*/250);
  const auto b =
      CollectCalibrationSamples(warehouse_.facts, strategies_, config,
                                &clock_b);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].query_class, b.value()[i].query_class);
    EXPECT_EQ(a.value()[i].strategy, b.value()[i].strategy);
    EXPECT_EQ(a.value()[i].features.seeks, b.value()[i].features.seeks);
    EXPECT_EQ(a.value()[i].features.pages, b.value()[i].features.pages);
    EXPECT_EQ(a.value()[i].measured_ns, b.value()[i].measured_ns);
  }
}

TEST_F(CalibrationSweepTest, SweepCoversEveryClassAndBackend) {
  CalibrationSweepConfig config = SweepConfig();
  config.backends = {StorageBackendKind::kPacked,
                     StorageBackendKind::kMicroPartition};
  FakeClock clock(0, 100);
  const auto samples = CollectCalibrationSamples(warehouse_.facts, strategies_,
                                                 config, &clock);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  const QueryClassLattice lattice(*warehouse_.schema);
  const size_t expected = strategies_.size() * config.backends.size() *
                          lattice.size() *
                          static_cast<size_t>(config.queries_per_class);
  EXPECT_EQ(samples.value().size(), expected);
  // The micro-partition backend contributes pruning features the packed
  // backend cannot (its directory is one unit).
  bool saw_pruning = false;
  for (const CalibrationSample& sample : samples.value()) {
    if (sample.backend == "micropartition" &&
        sample.features.partitions_pruned > 0) {
      saw_pruning = true;
    }
  }
  EXPECT_TRUE(saw_pruning);
}

TEST_F(CalibrationSweepTest, SweepValidatesInputs) {
  CalibrationSweepConfig config = SweepConfig();
  EXPECT_FALSE(
      CollectCalibrationSamples(nullptr, strategies_, config).ok());
  EXPECT_FALSE(CollectCalibrationSamples(warehouse_.facts, {}, config).ok());
  config.queries_per_class = 0;
  EXPECT_FALSE(
      CollectCalibrationSamples(warehouse_.facts, strategies_, config).ok());
  config = SweepConfig();
  config.repetitions = 0;
  EXPECT_FALSE(
      CollectCalibrationSamples(warehouse_.facts, strategies_, config).ok());
  config = SweepConfig();
  config.backends.clear();
  EXPECT_FALSE(
      CollectCalibrationSamples(warehouse_.facts, strategies_, config).ok());
}

TEST_F(CalibrationSweepTest, EndToEndSweepFitsWithinTheErrorBound) {
  // The real-clock pipeline: sweep, fit, and hold the fitted model to the
  // same bound the bench guards — median relative error within 25%.
  CalibrationSweepConfig config = SweepConfig();
  config.queries_per_class = 3;
  config.repetitions = 3;
  const auto samples =
      CollectCalibrationSamples(warehouse_.facts, strategies_, config);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  const auto fit = FitCalibration(samples.value());
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_GT(fit->r_squared, 0.5);
  EXPECT_LE(fit->median_relative_error, 0.25);
  EXPECT_FALSE(fit->per_class_relative_error.empty());
}

TEST_F(CalibrationSweepTest, SamplesJsonHasTheSweepShape) {
  CalibrationSweepConfig config = SweepConfig();
  FakeClock clock(0, 42);
  const auto samples = CollectCalibrationSamples(warehouse_.facts, strategies_,
                                                 config, &clock);
  ASSERT_TRUE(samples.ok());
  const std::string json =
      CalibrationSamplesToJson(samples.value(), config.storage);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"page_size_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_ns\": 42"), std::string::npos);
}

}  // namespace
}  // namespace snakes
