#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace snakes {
namespace {

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, NonPositiveSizeFallsBackToDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreads());
}

TEST(ThreadPoolTest, SubmitReturnsResultsInSubmissionOrder) {
  ThreadPool pool(4);
  std::vector<std::future<uint64_t>> futures;
  for (uint64_t i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const uint64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&hits](uint64_t i) { hits[i].fetch_add(1); });
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroTasksIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsTasksInFifoOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  // One worker: execution order must equal submission order, so the
  // unsynchronized log below is safe and deterministic.
  std::vector<uint64_t> log;
  std::vector<std::future<void>> futures;
  for (uint64_t i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([&log, i]() { log.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(log.size(), 32u);
  for (uint64_t i = 0; i < 32; ++i) EXPECT_EQ(log[i], i);
}

TEST(ThreadPoolTest, SingleThreadParallelForRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(16, 0);
  pool.ParallelFor(16, [&hits](uint64_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, SubmitCapturesExceptionIntoFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestFailingIndex) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(16, [&completed](uint64_t i) {
      if (i >= 5) throw std::runtime_error(std::to_string(i));
      completed.fetch_add(1);
    });
    FAIL() << "ParallelFor should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "5");
  }
  // Non-throwing invocations all ran despite the failures.
  EXPECT_EQ(completed.load(), 5);
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(500, [&sum](uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500u * 499u / 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsSubmittedTasksThenJoins) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&ran]() { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  // Every task submitted before Shutdown ran to completion.
  EXPECT_EQ(ran.load(), 200);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_TRUE(pool.IsShutdown());
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([]() {}).get();
  pool.Shutdown();
  pool.Shutdown();  // second call must be a harmless no-op
  EXPECT_TRUE(pool.IsShutdown());
}

TEST(ThreadPoolTest, TrySubmitAfterShutdownReturnsStatus) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.IsShutdown());
  auto accepted = pool.TrySubmit([]() { return 41; });
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted.value().get(), 41);
  pool.Shutdown();
  auto rejected = pool.TrySubmit([]() { return 42; });
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ThreadPoolTest, SubmitAfterShutdownBreaksTheFutureNotTheProcess) {
  ThreadPool pool(1);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  auto future = pool.Submit([&ran]() { ran.store(true); });
  // The rejected task never runs; its future reports broken_promise.
  EXPECT_THROW(future.get(), std::future_error);
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, ParallelForAfterShutdownRunsInline) {
  ThreadPool pool(4);
  pool.Shutdown();
  std::vector<int> hits(32, 0);
  pool.ParallelFor(32, [&hits](uint64_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ShutdownRacingSubmittersRejectsCleanly) {
  // Submitters racing a concurrent Shutdown either get their task executed
  // or a clean rejection — never a hang or a lost execution count.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::atomic<int> accepted{0};
  std::thread submitter([&pool, &executed, &accepted]() {
    for (int i = 0; i < 1000; ++i) {
      auto result = pool.TrySubmit([&executed]() { executed.fetch_add(1); });
      if (!result.ok()) break;
      accepted.fetch_add(1);
    }
  });
  pool.Shutdown();
  submitter.join();
  EXPECT_EQ(executed.load(), accepted.load());
}

}  // namespace
}  // namespace snakes
