#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "cost/cost_cache.h"
#include "cost/cost_model.h"
#include "cost/workload_cost.h"
#include "curves/row_major.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "lattice/workload_delta.h"
#include "obs/metrics.h"
#include "path/dp_cache.h"
#include "path/dpkd.h"
#include "path/snaked_dp.h"
#include "recluster/engine.h"
#include "recluster/movement.h"
#include "storage/fact_table.h"
#include "storage/pager.h"
#include "util/rng.h"

namespace snakes {
namespace {

std::shared_ptr<const StarSchema> SmallSchema() {
  auto a = Hierarchy::Uniform("a", {2, 2}).value();
  auto b = Hierarchy::Uniform("b", {2, 2}).value();
  return std::make_shared<StarSchema>(StarSchema::Make("s", {a, b}).value());
}

CellCoord At(uint64_t x, uint64_t y) {
  CellCoord c;
  c.resize(2);
  c[0] = x;
  c[1] = y;
  return c;
}

/// Every cell holds `per_cell` records.
std::shared_ptr<const FactTable> DenseFacts(
    const std::shared_ptr<const StarSchema>& schema, uint64_t per_cell) {
  auto facts = std::make_shared<FactTable>(schema);
  for (uint64_t x = 0; x < 4; ++x) {
    for (uint64_t y = 0; y < 4; ++y) {
      for (uint64_t r = 0; r < per_cell; ++r) {
        facts->AddRecord(At(x, y), 1.0);
      }
    }
  }
  return facts;
}

bool SameBits(double a, double b) {
  uint64_t x, y;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

// ---------------------------------------------------------------------------
// Workload fingerprint / delta / drift estimators
// ---------------------------------------------------------------------------

TEST(WorkloadFingerprintTest, DistinguishesWorkloadsAndIsStable) {
  const QueryClassLattice lat(*SmallSchema());
  const Workload uniform = Workload::Uniform(lat);
  const Workload point = Workload::Point(lat, QueryClass{0, 2}).value();
  EXPECT_EQ(WorkloadFingerprint(uniform), WorkloadFingerprint(uniform));
  EXPECT_NE(WorkloadFingerprint(uniform), WorkloadFingerprint(point));
}

TEST(WorkloadFingerprintTest, SameProbabilitiesIsExact) {
  const QueryClassLattice lat(*SmallSchema());
  const Workload uniform = Workload::Uniform(lat);
  EXPECT_TRUE(SameProbabilities(uniform, Workload::Uniform(lat)));
  std::vector<double> p(lat.size(), 1.0 / static_cast<double>(lat.size()));
  p[0] += 1e-15;
  p[1] -= 1e-15;
  const Workload nudged = Workload::FromDense(lat, p, true).value();
  EXPECT_FALSE(SameProbabilities(uniform, nudged));
}

TEST(WorkloadDeltaTest, NormsAndChangedClasses) {
  const QueryClassLattice lat(*SmallSchema());
  const Workload from = Workload::Point(lat, QueryClass{0, 0}).value();
  const Workload to = Workload::Point(lat, QueryClass{2, 2}).value();
  const WorkloadDelta delta = WorkloadDelta::Between(from, to).value();
  EXPECT_DOUBLE_EQ(delta.l1(), 2.0);
  EXPECT_DOUBLE_EQ(delta.total_variation(), 1.0);
  EXPECT_DOUBLE_EQ(delta.linf(), 1.0);
  EXPECT_EQ(delta.NumChanged(0.5), 2u);
  const std::vector<uint64_t> changed = delta.ChangedClasses(0.5);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], lat.Index(QueryClass{0, 0}));
  EXPECT_EQ(changed[1], lat.Index(QueryClass{2, 2}));
  // Zero drift: every norm zero.
  const WorkloadDelta none = WorkloadDelta::Between(from, from).value();
  EXPECT_DOUBLE_EQ(none.l1(), 0.0);
  EXPECT_EQ(none.NumChanged(0.0), 0u);
}

TEST(WorkloadDeltaTest, RejectsMismatchedLattices) {
  const QueryClassLattice small(*SmallSchema());
  auto c = Hierarchy::Uniform("c", {2}).value();
  auto d = Hierarchy::Uniform("d", {2}).value();
  const QueryClassLattice other(
      StarSchema::Make("t", {c, d}).value());
  EXPECT_FALSE(WorkloadDelta::Between(Workload::Uniform(small),
                                      Workload::Uniform(other))
                   .ok());
}

TEST(EwmaDriftEstimatorTest, FirstEpochSeedsWithZeroDrift) {
  const QueryClassLattice lat(*SmallSchema());
  EwmaDriftEstimator est(lat, 0.5);
  const Workload point = Workload::Point(lat, QueryClass{1, 1}).value();
  ASSERT_TRUE(est.Observe(point).ok());
  EXPECT_EQ(est.epochs(), 1u);
  EXPECT_DOUBLE_EQ(est.LastDrift(), 0.0);
  EXPECT_TRUE(SameProbabilities(est.Smoothed(), point));
}

TEST(EwmaDriftEstimatorTest, BlendsAndMeasuresDrift) {
  const QueryClassLattice lat(*SmallSchema());
  EwmaDriftEstimator est(lat, 0.5);
  const Workload a = Workload::Point(lat, QueryClass{0, 0}).value();
  const Workload b = Workload::Point(lat, QueryClass{2, 2}).value();
  ASSERT_TRUE(est.Observe(a).ok());
  ASSERT_TRUE(est.Observe(b).ok());
  // Drift is measured against the pre-update estimate (= a): TV(a, b) = 1.
  EXPECT_DOUBLE_EQ(est.LastDrift(), 1.0);
  const Workload smoothed = est.Smoothed();
  EXPECT_DOUBLE_EQ(smoothed.probability_at(lat.Index(QueryClass{0, 0})), 0.5);
  EXPECT_DOUBLE_EQ(smoothed.probability_at(lat.Index(QueryClass{2, 2})), 0.5);
}

TEST(WindowDriftEstimatorTest, AveragesTheWindow) {
  const QueryClassLattice lat(*SmallSchema());
  WindowDriftEstimator est(lat, 2);
  const Workload a = Workload::Point(lat, QueryClass{0, 0}).value();
  const Workload b = Workload::Point(lat, QueryClass{2, 2}).value();
  ASSERT_TRUE(est.Observe(a).ok());
  EXPECT_DOUBLE_EQ(est.LastDrift(), 0.0);
  ASSERT_TRUE(est.Observe(b).ok());
  EXPECT_DOUBLE_EQ(est.LastDrift(), 1.0);  // window held {a}, epoch = b
  const Workload smoothed = est.Smoothed();  // average of {a, b}
  EXPECT_DOUBLE_EQ(smoothed.probability_at(lat.Index(QueryClass{0, 0})), 0.5);
  EXPECT_DOUBLE_EQ(smoothed.probability_at(lat.Index(QueryClass{2, 2})), 0.5);
  // A third epoch evicts a: window {b, b}, drift vs b's average.
  ASSERT_TRUE(est.Observe(b).ok());
  EXPECT_DOUBLE_EQ(est.LastDrift(), 0.5);
}

TEST(DriftEstimatorTest, RejectsWrongLattice) {
  const QueryClassLattice lat(*SmallSchema());
  auto c = Hierarchy::Uniform("c", {2}).value();
  auto d = Hierarchy::Uniform("d", {2}).value();
  const QueryClassLattice other(StarSchema::Make("t", {c, d}).value());
  EwmaDriftEstimator ewma(lat, 0.5);
  EXPECT_FALSE(ewma.Observe(Workload::Uniform(other)).ok());
  WindowDriftEstimator window(lat, 3);
  EXPECT_FALSE(window.Observe(Workload::Uniform(other)).ok());
}

// ---------------------------------------------------------------------------
// ClassCostCache
// ---------------------------------------------------------------------------

TEST(ClassCostCacheTest, CachedMatchesUncachedBitwise) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  auto lin = RowMajorOrder::Make(schema, {0, 1}).value();
  Rng rng(7);
  ClassCostCache cache;
  for (int trial = 0; trial < 10; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const double uncached = MeasureExpectedCost(mu, *lin);
    const double cached = MeasureExpectedCostCached(mu, *lin, &cache);
    EXPECT_TRUE(SameBits(uncached, cached)) << "trial " << trial;
  }
}

TEST(ClassCostCacheTest, CountsMissesThenHits) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  auto lin = RowMajorOrder::Make(schema, {0, 1}).value();
  const Workload uniform = Workload::Uniform(lat);
  ClassCostCache cache;
  MeasureExpectedCostCached(uniform, *lin, &cache);
  const ClassCostCache::Stats first = cache.stats();
  EXPECT_EQ(first.misses, lat.size());
  EXPECT_EQ(first.hits, 0u);
  MeasureExpectedCostCached(uniform, *lin, &cache);
  const ClassCostCache::Stats second = cache.stats();
  EXPECT_EQ(second.misses, lat.size());
  EXPECT_EQ(second.hits, lat.size());
  EXPECT_EQ(cache.NumStrategies(), 1u);
}

TEST(ClassCostCacheTest, OnlyNewClassesMissAcrossWorkloads) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  auto lin = RowMajorOrder::Make(schema, {0, 1}).value();
  ClassCostCache cache;
  const Workload a = Workload::Point(lat, QueryClass{0, 0}).value();
  MeasureExpectedCostCached(a, *lin, &cache);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Same class again: pure hit. New class: exactly one more miss.
  MeasureExpectedCostCached(a, *lin, &cache);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  const Workload b =
      Workload::UniformOver(lat, {QueryClass{0, 0}, QueryClass{1, 1}}).value();
  MeasureExpectedCostCached(b, *lin, &cache);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(ClassCostCacheTest, EdgeWalkFillIsBitIdenticalToo) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  auto lin = RowMajorOrder::Make(schema, {1, 0}).value();
  Rng rng(11);
  const Workload mu = Workload::Random(lat, &rng);
  ClassCostCache cache;
  const double cached = MeasureExpectedCostCached(mu, *lin, &cache, {},
                                                 CostEvalMode::kEdgeWalk);
  const double uncached =
      MeasureExpectedCost(mu, *lin, {}, CostEvalMode::kEdgeWalk);
  EXPECT_TRUE(SameBits(cached, uncached));
  // The edge walk costs every class in one pass; a maximally different
  // workload afterwards is all hits.
  const Workload point = Workload::Point(lat, QueryClass{2, 2}).value();
  const ClassCostCache::Stats before = cache.stats();
  const double cached_point = MeasureExpectedCostCached(
      point, *lin, &cache, {}, CostEvalMode::kEdgeWalk);
  EXPECT_EQ(cache.stats().misses, before.misses);
  EXPECT_TRUE(SameBits(cached_point, MeasureExpectedCost(
                                         point, *lin, {},
                                         CostEvalMode::kEdgeWalk)));
}

TEST(ClassCostCacheTest, ClearDropsEverything) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  auto lin = RowMajorOrder::Make(schema, {0, 1}).value();
  ClassCostCache cache;
  MeasureExpectedCostCached(Workload::Uniform(lat), *lin, &cache);
  EXPECT_GT(cache.stats().misses, 0u);
  cache.Clear();
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.NumStrategies(), 0u);
}

// ---------------------------------------------------------------------------
// DpCache
// ---------------------------------------------------------------------------

TEST(DpCacheTest, HitsOnIdenticalWorkloadOnly) {
  const QueryClassLattice lat(*SmallSchema());
  DpCache cache;
  const Workload uniform = Workload::Uniform(lat);
  const auto first = cache.OptimalPath(uniform).value();
  EXPECT_EQ(cache.stats().misses, 1u);
  const auto again = cache.OptimalPath(uniform).value();
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_TRUE(again.path == first.path);
  EXPECT_TRUE(SameBits(again.cost, first.cost));
  const Workload point = Workload::Point(lat, QueryClass{0, 2}).value();
  cache.OptimalPath(point).value();
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(DpCacheTest, MatchesDirectSolversBitwise) {
  const QueryClassLattice lat(*SmallSchema());
  Rng rng(23);
  DpCache cache;
  for (int trial = 0; trial < 5; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    const auto direct = FindOptimalLatticePath(mu).value();
    const auto cached = cache.OptimalPath(mu).value();
    EXPECT_TRUE(direct.path == cached.path);
    EXPECT_TRUE(SameBits(direct.cost, cached.cost));
    const auto direct_snaked = FindOptimalSnakedLatticePath(mu).value();
    const auto cached_snaked = cache.OptimalSnakedPath(mu).value();
    EXPECT_TRUE(direct_snaked.path == cached_snaked.path);
    EXPECT_TRUE(SameBits(direct_snaked.cost, cached_snaked.cost));
  }
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// Movement cost
// ---------------------------------------------------------------------------

TEST(MovementTest, IdenticalLayoutsMoveNothing) {
  auto schema = SmallSchema();
  auto facts = DenseFacts(schema, 3);
  const StorageConfig storage{256, 125};  // 2 records per page
  std::shared_ptr<const Linearization> lin(
      RowMajorOrder::Make(schema, {0, 1}).value());
  const auto layout = PackedLayout::Pack(lin, facts, storage).value();
  const auto other = PackedLayout::Pack(lin, facts, storage).value();
  const MovementCost cost = ComputeMovementCost(layout, other).value();
  EXPECT_EQ(cost.stable_prefix_cells, schema->num_cells());
  EXPECT_EQ(cost.moved_runs, 0u);
  EXPECT_EQ(cost.moved_records, 0u);
  EXPECT_EQ(cost.pages_moved(), 0u);
}

TEST(MovementTest, TransposedLayoutMovesEverythingAfterRankZero) {
  auto schema = SmallSchema();
  auto facts = DenseFacts(schema, 3);
  const StorageConfig storage{256, 125};
  std::shared_ptr<const Linearization> ab(
      RowMajorOrder::Make(schema, {0, 1}).value());
  std::shared_ptr<const Linearization> ba(
      RowMajorOrder::Make(schema, {1, 0}).value());
  const auto cur = PackedLayout::Pack(ab, facts, storage).value();
  const auto prop = PackedLayout::Pack(ba, facts, storage).value();
  const MovementCost cost = ComputeMovementCost(cur, prop).value();
  // The transpose fixes only cell (0,0) at rank 0; every other cell moves.
  EXPECT_EQ(cost.total_cells, 16u);
  EXPECT_EQ(cost.stable_prefix_cells, 1u);
  EXPECT_EQ(cost.moved_records, 45u);
  EXPECT_GT(cost.moved_runs, 1u);
  EXPECT_GT(cost.pages_read, 0u);
  EXPECT_GT(cost.pages_written, 0u);
  EXPECT_EQ(cost.pages_moved(), cost.pages_read + cost.pages_written);
}

TEST(MovementTest, StablePrefixIsNotCharged) {
  auto schema = SmallSchema();
  auto facts = DenseFacts(schema, 2);
  const StorageConfig storage{256, 125};
  std::shared_ptr<const Linearization> ab(
      RowMajorOrder::Make(schema, {0, 1}).value());
  // Proposed = current with only the last two ranks swapped: the stable
  // prefix covers 14 cells and the tail is two single-cell runs.
  std::vector<CellId> order(16);
  for (uint64_t r = 0; r < 16; ++r) {
    order[r] = schema->Flatten(ab->CellAt(r));
  }
  std::swap(order[14], order[15]);
  std::shared_ptr<const Linearization> swapped(
      MaterializedLinearization::Make(schema, "swapped", order)
          .value()
          .release());
  const auto cur = PackedLayout::Pack(ab, facts, storage).value();
  const auto prop = PackedLayout::Pack(swapped, facts, storage).value();
  const MovementCost cost = ComputeMovementCost(cur, prop).value();
  EXPECT_EQ(cost.stable_prefix_cells, 14u);
  EXPECT_EQ(cost.moved_runs, 2u);
  EXPECT_EQ(cost.moved_records, 4u);
}

TEST(MovementTest, RejectsMismatchedLayouts) {
  auto schema = SmallSchema();
  auto facts = DenseFacts(schema, 1);
  auto c = Hierarchy::Uniform("c", {2}).value();
  auto d = Hierarchy::Uniform("d", {2}).value();
  auto other_schema = std::make_shared<StarSchema>(
      StarSchema::Make("t", {c, d}).value());
  auto other_facts = std::make_shared<FactTable>(other_schema);
  other_facts->AddRecord(At(1, 1), 1.0);
  std::shared_ptr<const Linearization> lin(
      RowMajorOrder::Make(schema, {0, 1}).value());
  std::shared_ptr<const Linearization> other_lin(
      RowMajorOrder::Make(other_schema, {0, 1}).value());
  const auto layout = PackedLayout::Pack(lin, facts, {}).value();
  const auto other =
      PackedLayout::Pack(other_lin,
                         std::shared_ptr<const FactTable>(other_facts), {})
          .value();
  EXPECT_FALSE(ComputeMovementCost(layout, other).ok());
}

// ---------------------------------------------------------------------------
// AdviseIncremental
// ---------------------------------------------------------------------------

bool IdenticalRecommendations(const Recommendation& a,
                              const Recommendation& b) {
  if (!(a.optimal_path == b.optimal_path) ||
      !(a.optimal_snaked_path == b.optimal_snaked_path) ||
      a.ranked.size() != b.ranked.size()) {
    return false;
  }
  if (!SameBits(a.optimal_path_cost, b.optimal_path_cost) ||
      !SameBits(a.snaked_optimal_cost, b.snaked_optimal_cost) ||
      !SameBits(a.optimal_snaked_cost, b.optimal_snaked_cost)) {
    return false;
  }
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    if (a.ranked[i].name != b.ranked[i].name ||
        !SameBits(a.ranked[i].expected_cost, b.ranked[i].expected_cost)) {
      return false;
    }
  }
  return true;
}

TEST(AdviseIncrementalTest, BitIdenticalToColdAdvise) {
  auto schema = SmallSchema();
  const ClusteringAdvisor advisor(schema);
  const QueryClassLattice lat(*schema);
  Rng rng(31);
  IncrementalAdvisorState state;
  for (int trial = 0; trial < 5; ++trial) {
    const Workload mu = Workload::Random(lat, &rng);
    EvaluationRequest request{mu};
    request.num_threads = 1;
    const Recommendation cold = advisor.Advise(request).value();
    const Recommendation warm =
        advisor.AdviseIncremental(request, &state).value();
    EXPECT_TRUE(IdenticalRecommendations(cold, warm)) << "trial " << trial;
  }
}

TEST(AdviseIncrementalTest, ZeroDriftReAdviseEvaluatesNothing) {
  auto schema = SmallSchema();
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(QueryClassLattice(*schema));
  EvaluationRequest request{mu};
  request.num_threads = 1;
  IncrementalAdvisorState state;
  const Recommendation first =
      advisor.AdviseIncremental(request, &state).value();
  EXPECT_GT(state.last_cost_evaluations, 0u);
  EXPECT_EQ(state.last_dp_misses, 2u);
  const Recommendation second =
      advisor.AdviseIncremental(request, &state).value();
  EXPECT_EQ(state.last_cost_evaluations, 0u);
  EXPECT_GT(state.last_cost_hits, 0u);
  EXPECT_EQ(state.last_dp_hits, 2u);
  EXPECT_EQ(state.advises, 2u);
  EXPECT_TRUE(IdenticalRecommendations(first, second));
}

TEST(AdviseIncrementalTest, ReportsCarryTheLinearization) {
  auto schema = SmallSchema();
  const ClusteringAdvisor advisor(schema);
  const Workload mu = Workload::Uniform(QueryClassLattice(*schema));
  EvaluationRequest request{mu};
  request.num_threads = 1;
  IncrementalAdvisorState state;
  const Recommendation rec =
      advisor.AdviseIncremental(request, &state).value();
  ASSERT_TRUE(rec.has_best());
  ASSERT_NE(rec.best().linearization, nullptr);
  EXPECT_EQ(rec.best().linearization->name(), rec.best().name);
}

// ---------------------------------------------------------------------------
// ReclusterEngine
// ---------------------------------------------------------------------------

ReclusterConfig RowMajorConfig() {
  ReclusterConfig config;
  config.ewma_alpha = 1.0;  // estimate tracks the epoch exactly
  config.strategies = {"row-major"};
  config.num_threads = 1;
  config.storage = StorageConfig{256, 125};
  return config;
}

// Point mass on "aggregate all of b, drill into a": row-major(a,b) reads one
// contiguous run per query. The mirrored class prefers row-major(b,a).
Workload PreferAB(const QueryClassLattice& lat) {
  return Workload::Point(lat, QueryClass{0, 2}).value();
}
Workload PreferBA(const QueryClassLattice& lat) {
  return Workload::Point(lat, QueryClass{2, 0}).value();
}

TEST(ReclusterEngineTest, FirstEpochAdoptsUnconditionally) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterEngine engine(schema, DenseFacts(schema, 3), RowMajorConfig());
  EXPECT_EQ(engine.current(), nullptr);
  const EpochReport report = engine.OnEpoch(PreferAB(lat)).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kInitialAdopt);
  ASSERT_NE(engine.current(), nullptr);
  EXPECT_EQ(engine.current()->name(), report.proposed_strategy);
  EXPECT_NE(engine.current_backend(), nullptr);
  EXPECT_EQ(engine.adoptions(), 1u);
  EXPECT_GT(report.cost_evaluations, 0u);
  ASSERT_TRUE(report.recommendation.has_value());
}

TEST(ReclusterEngineTest, QuietEpochSkipsTheAdvisor) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterConfig config = RowMajorConfig();
  config.readvise_drift_threshold = 0.5;
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport quiet = engine.OnEpoch(PreferAB(lat)).value();
  EXPECT_EQ(quiet.decision, ReclusterDecision::kKeepDriftBelowThreshold);
  EXPECT_EQ(quiet.cost_evaluations, 0u);
  EXPECT_EQ(quiet.drift, 0.0);
  EXPECT_FALSE(quiet.recommendation.has_value());
  EXPECT_EQ(engine.state().advises, 1u);  // no second advise happened
}

TEST(ReclusterEngineTest, UnchangedWorkloadKeepsAlreadyOptimal) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterEngine engine(schema, DenseFacts(schema, 3), RowMajorConfig());
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport repeat = engine.OnEpoch(PreferAB(lat)).value();
  EXPECT_EQ(repeat.decision, ReclusterDecision::kKeepAlreadyOptimal);
  // Everything came from the memos: no class re-costed, both DPs cached.
  EXPECT_EQ(repeat.cost_evaluations, 0u);
  EXPECT_EQ(engine.state().last_dp_hits, 2u);
  EXPECT_EQ(engine.adoptions(), 1u);
}

TEST(ReclusterEngineTest, AdoptsWhenDriftFlipsTheOptimum) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterEngine engine(schema, DenseFacts(schema, 3), RowMajorConfig());
  engine.OnEpoch(PreferAB(lat)).value();
  const std::string before = engine.current()->name();
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kAdopt);
  EXPECT_NE(engine.current()->name(), before);
  EXPECT_EQ(engine.adoptions(), 2u);
  EXPECT_GT(report.relative_improvement, 0.0);
  EXPECT_GT(report.net_benefit, 0.0);
  EXPECT_GT(report.movement.pages_moved(), 0u);
  // The adopted layout is the proposed one, repacked under the new order.
  EXPECT_EQ(&engine.current_backend()->linearization(),
            engine.current().get());
}

TEST(ReclusterEngineTest, EpochReportCarriesCalibratedMsSides) {
  // Both sides of the net-benefit comparison are in model milliseconds and
  // reconcile exactly: net = benefit - movement * multiplier.
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterConfig config = RowMajorConfig();
  config.movement_cost_per_page = 2.0;
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  ASSERT_EQ(report.decision, ReclusterDecision::kAdopt);
  EXPECT_GT(report.benefit_ms, 0.0);
  EXPECT_GT(report.movement_ms, 0.0);
  EXPECT_EQ(report.net_benefit,
            report.benefit_ms - report.movement_ms * 2.0);
  // The default model prices a saved seek at the seed's 9.5 ms.
  EXPECT_EQ(report.benefit_ms,
            (report.current_cost - report.proposed_cost) *
                DefaultCostModel()->SeekMs() * config.queries_per_epoch);
}

TEST(ReclusterEngineTest, SeekTransferRatioFlipsTheDecision) {
  // The satellite regression: the same workload shift, the same movement,
  // the same queries_per_epoch — only the cost model differs. On an hdd
  // (8 ms seeks) the saved seeks pay for the rewrite; on an ssd (0.05 ms
  // seeks, 13x the transfer rate) the same savings never do.
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  const auto hdd = MakeCostModel(CostModelKind::kHdd).value();
  const auto ssd = MakeCostModel(CostModelKind::kSsd).value();

  // Dense cells make the rewrite transfer-bound (few moved runs, thousands
  // of pages) while the benefit stays seek-bound — exactly the asymmetry
  // the two presets price apart. 4000 records/cell -> ~60k pages moved
  // across 15 runs.
  const auto facts = DenseFacts(schema, 4000);

  // Probe with each model to find its break-even queries/epoch; both
  // reports price the identical improvement and rewrite.
  auto probe = [&](std::shared_ptr<const CostModel> model) {
    ReclusterConfig config = RowMajorConfig();
    config.cost_model = std::move(model);
    ReclusterEngine engine(schema, facts, config);
    engine.OnEpoch(PreferAB(lat)).value();
    const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
    EXPECT_GT(report.benefit_ms, 0.0);
    EXPECT_GT(report.movement_ms, 0.0);
    // benefit_ms scales linearly in queries_per_epoch: break-even is where
    // one epoch's savings equal the rewrite time.
    return report.movement_ms /
           (report.benefit_ms / RowMajorConfig().queries_per_epoch);
  };
  const double breakeven_hdd = probe(hdd);
  const double breakeven_ssd = probe(ssd);
  // Seeks dominate the benefit but not the rewrite, so the ssd needs far
  // more queries per epoch before reclustering pays.
  ASSERT_GT(breakeven_ssd, 3.0 * breakeven_hdd);
  const double qpe = std::sqrt(breakeven_hdd * breakeven_ssd);

  auto run = [&](std::shared_ptr<const CostModel> model) {
    ReclusterConfig config = RowMajorConfig();
    config.cost_model = std::move(model);
    config.queries_per_epoch = qpe;
    ReclusterEngine engine(schema, facts, config);
    engine.OnEpoch(PreferAB(lat)).value();
    return engine.OnEpoch(PreferBA(lat)).value();
  };
  const EpochReport on_hdd = run(hdd);
  const EpochReport on_ssd = run(ssd);
  EXPECT_EQ(on_hdd.decision, ReclusterDecision::kAdopt);
  EXPECT_GT(on_hdd.net_benefit, 0.0);
  EXPECT_EQ(on_ssd.decision, ReclusterDecision::kKeepNegativeNetBenefit);
  EXPECT_LT(on_ssd.net_benefit, 0.0);
}

TEST(ReclusterEngineTest, SetCostModelSwapsLive) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterEngine engine(schema, DenseFacts(schema, 3), RowMajorConfig());
  EXPECT_EQ(engine.cost_model().kind(), CostModelKind::kAnalytic);
  const auto ssd = MakeCostModel(CostModelKind::kSsd).value();
  engine.SetCostModel(ssd);
  EXPECT_EQ(&engine.cost_model(), ssd.get());
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_GT(report.benefit_ms, 0.0);
  EXPECT_EQ(report.benefit_ms,
            (report.current_cost - report.proposed_cost) *
                ssd->SeekMs() * RowMajorConfig().queries_per_epoch);
}

TEST(ReclusterEngineTest, HysteresisBlocksMarginalWins) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterConfig config = RowMajorConfig();
  config.hysteresis_min_improvement = 1.0;  // demand a 100% improvement
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kKeepBelowHysteresis);
  EXPECT_EQ(engine.adoptions(), 1u);
  EXPECT_EQ(report.movement.pages_moved(), 0u);  // never priced
}

TEST(ReclusterEngineTest, MovementBudgetBlocksBigRewrites) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterConfig config = RowMajorConfig();
  config.movement_budget_pages = 1;
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);
  engine.OnEpoch(PreferAB(lat)).value();
  const std::string before = engine.current()->name();
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kKeepOverBudget);
  EXPECT_GT(report.movement.pages_moved(), 1u);
  EXPECT_EQ(engine.current()->name(), before);
}

TEST(ReclusterEngineTest, CooldownBlocksBackToBackAdoptions) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterConfig config = RowMajorConfig();
  config.cooldown_epochs = 2;
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport blocked = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(blocked.decision, ReclusterDecision::kKeepCooldown);
  const EpochReport still_blocked = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(still_blocked.decision, ReclusterDecision::kKeepCooldown);
  const EpochReport adopted = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(adopted.decision, ReclusterDecision::kAdopt);
  EXPECT_EQ(engine.adoptions(), 2u);
}

TEST(ReclusterEngineTest, NegativeNetBenefitKeeps) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterConfig config = RowMajorConfig();
  config.queries_per_epoch = 1e-6;  // improvement can never pay for pages
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);
  engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kKeepNegativeNetBenefit);
  EXPECT_LE(report.net_benefit, 0.0);
  EXPECT_EQ(engine.adoptions(), 1u);
}

TEST(ReclusterEngineTest, AnalyticModeAdoptsWithoutMovement) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterEngine engine(schema, nullptr, RowMajorConfig());
  engine.OnEpoch(PreferAB(lat)).value();
  EXPECT_EQ(engine.current_backend(), nullptr);
  const EpochReport report = engine.OnEpoch(PreferBA(lat)).value();
  EXPECT_EQ(report.decision, ReclusterDecision::kAdopt);
  EXPECT_EQ(report.movement.pages_moved(), 0u);
  EXPECT_GT(report.net_benefit, 0.0);
}

TEST(ReclusterEngineTest, IncrementalRecomputeShrinksAcrossEpochs) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  ReclusterEngine engine(schema, nullptr, RowMajorConfig());
  const EpochReport cold = engine.OnEpoch(Workload::Uniform(lat)).value();
  // Every non-zero class of every candidate was evaluated once.
  EXPECT_EQ(cold.cost_evaluations, 2 * lat.size());
  // A drifted epoch whose support is unchanged re-costs nothing.
  Rng rng(5);
  const EpochReport warm = engine.OnEpoch(Workload::Random(lat, &rng)).value();
  EXPECT_EQ(warm.cost_evaluations, 0u);
  EXPECT_EQ(warm.cost_cache_hits, 2 * lat.size());
}

TEST(ReclusterEngineTest, EmitsObsMetricsAndReadableReports) {
  auto schema = SmallSchema();
  const QueryClassLattice lat(*schema);
  MetricsRegistry metrics;
  ReclusterConfig config = RowMajorConfig();
  config.obs.metrics = &metrics;
  ReclusterEngine engine(schema, DenseFacts(schema, 3), config);

  const EpochReport first = engine.OnEpoch(PreferAB(lat)).value();
  const EpochReport flip = engine.OnEpoch(PreferBA(lat)).value();
  ASSERT_EQ(flip.decision, ReclusterDecision::kAdopt);

  EXPECT_EQ(metrics.GetCounter("recluster.epochs")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("recluster.adoptions")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("recluster.pages_moved")->value(),
            flip.movement.pages_moved());
  EXPECT_EQ(metrics.GetCounter("recluster.classes_recomputed")->value(),
            first.cost_evaluations + flip.cost_evaluations);

  // The human-readable epoch summary names the decision and the movement.
  const std::string text = flip.ToString();
  EXPECT_NE(text.find("adopt"), std::string::npos);
  EXPECT_NE(text.find(flip.proposed_strategy), std::string::npos);
  EXPECT_NE(text.find("pages"), std::string::npos);
  EXPECT_NE(text.find("class evaluations"), std::string::npos);
}

TEST(MovementCostTest, RejectsLayoutsOfDifferentFactTables) {
  auto schema = SmallSchema();
  const StorageConfig config{256, 125};
  std::shared_ptr<const Linearization> lin(
      RowMajorOrder::Make(schema, {0, 1}).value());
  const auto three =
      PackedLayout::Pack(lin, DenseFacts(schema, 3), config).value();
  const auto two =
      PackedLayout::Pack(lin, DenseFacts(schema, 2), config).value();
  const auto status = ComputeMovementCost(three, two);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.status().ToString().find("same fact table"),
            std::string::npos);
}

TEST(ReclusterDecisionTest, NamesAreStable) {
  EXPECT_STREQ(ReclusterDecisionName(ReclusterDecision::kAdopt), "adopt");
  EXPECT_STREQ(ReclusterDecisionName(ReclusterDecision::kInitialAdopt),
               "initial-adopt");
  EXPECT_STREQ(
      ReclusterDecisionName(ReclusterDecision::kKeepDriftBelowThreshold),
      "keep-drift-below-threshold");
}

}  // namespace
}  // namespace snakes
