// Tests for the observability subsystem (src/obs): metric primitives, the
// registry/snapshot/serialization surface, the tracer's Chrome JSON export,
// and the null-object contract (instrumented code paths with no backends
// attached behave exactly like uninstrumented ones).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/evaluation.h"
#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"
#include "lattice/workload.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "storage/fact_table.h"
#include "util/rng.h"

namespace snakes {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_EQ(g.value(), 1.5);
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(7);
  h.Record(0);
  h.Record(1'000'000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1'000'007u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1'000'000u);
}

TEST(HistogramTest, QuantilesAreOrderedAndClamped) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Quantile(0.5);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Power-of-two buckets guarantee <= 2x relative error; interpolation does
  // considerably better on a uniform stream, but only the 2x bound is
  // contractual.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
  // Quantiles never escape the observed range.
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, SingleValueIsExactAtEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(64);
  EXPECT_EQ(h.Quantile(0.0), 64.0);
  EXPECT_EQ(h.Quantile(0.5), 64.0);
  EXPECT_EQ(h.Quantile(1.0), 64.0);
}

TEST(MetricsRegistryTest, GetInternsByNameWithStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.GetCounter("y"), a);
  Gauge* g = registry.GetGauge("g");
  EXPECT_EQ(registry.GetGauge("g"), g);
  Histogram* h = registry.GetHistogram("h");
  EXPECT_EQ(registry.GetHistogram("h"), h);
}

TEST(MetricsRegistryTest, CrossKindNameCollisionDies) {
  MetricsRegistry registry;
  registry.GetCounter("taken");
  EXPECT_DEATH(registry.GetGauge("taken"), "CHECK failed");
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndDetached) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Inc(2);
  registry.GetCounter("a.count")->Inc(1);
  registry.GetGauge("ratio")->Set(0.5);
  registry.GetHistogram("lat")->Record(10);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[1].first, "b.count");
  EXPECT_EQ(snap.counter("b.count"), 2u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauge("ratio"), 0.5);
  EXPECT_EQ(snap.histogram("lat").count, 1u);
  EXPECT_EQ(snap.histogram("lat").min, 10u);

  // Detached: later updates do not bleed into the snapshot.
  registry.GetCounter("a.count")->Inc(100);
  EXPECT_EQ(snap.counter("a.count"), 1u);
}

TEST(MetricsRegistryTest, JsonAndTableSerialization) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Inc(3);
  registry.GetGauge("rate")->Set(0.75);
  registry.GetHistogram("ns")->Record(128);

  const MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rate\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  // Compact mode is single-line for embedding in other JSON documents.
  const std::string compact = snap.ToJson(/*pretty=*/false);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_NE(compact.find("\"hits\": 3"), std::string::npos);

  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("hits"), std::string::npos);
  EXPECT_NE(table.find("rate"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(TracerTest, ScopedSpanRecordsNestedEvents) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    outer.AddArg("n", static_cast<uint64_t>(3));
    { ScopedSpan inner(&tracer, "inner", "test"); }
    EXPECT_GT(outer.ElapsedNs(), 0u);
  }
  ASSERT_EQ(tracer.num_events(), 2u);
  // Spans record at destruction, so the inner span lands first.
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].thread_id, events[1].thread_id);
  // Containment: outer starts no later and ends no earlier than inner.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].start_ns + events[1].duration_ns,
            events[0].start_ns + events[0].duration_ns);
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "phase \"one\"", "cat");
    span.AddArg("k", "v");
    span.AddArg("x", 1.5);
  }
  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase \\\"one\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"cat\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": \"v\""), std::string::npos);
  EXPECT_NE(json.find("\"x\": 1.5"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ScopedSpanTest, NullTracerIsInert) {
  ScopedSpan span(nullptr, "ghost");
  EXPECT_FALSE(span.enabled());
  span.AddArg("k", "v");
  span.AddArg("n", static_cast<uint64_t>(1));
  EXPECT_EQ(span.ElapsedNs(), 0u);
}

TEST(ObsSinkTest, EnabledReflectsEitherBackend) {
  EXPECT_FALSE(ObsSink{}.enabled());
  MetricsRegistry metrics;
  Tracer tracer;
  EXPECT_TRUE((ObsSink{&metrics, nullptr}.enabled()));
  EXPECT_TRUE((ObsSink{nullptr, &tracer}.enabled()));
}

// --- End-to-end: an instrumented Advise run populates both backends and
// changes nothing about the recommendation itself. ---

class InstrumentedAdviseTest : public ::testing::Test {
 protected:
  InstrumentedAdviseTest() {
    auto a = Hierarchy::Uniform("a", {2, 2}, {"leaf", "mid", "all"});
    auto b = Hierarchy::Uniform("b", {2, 4}, {"leaf", "mid", "all"});
    auto schema = StarSchema::Make("t", {a.value(), b.value()});
    schema_ = std::make_shared<StarSchema>(std::move(schema).value());
    facts_ = std::make_shared<FactTable>(schema_);
    Rng rng(13);
    CellCoord coord;
    coord.resize(2);
    for (uint64_t r = 0; r < schema_->extent(0); ++r) {
      for (uint64_t c = 0; c < schema_->extent(1); ++c) {
        coord[0] = r;
        coord[1] = c;
        for (uint64_t n = 0; n < 1 + rng.Below(5); ++n) {
          facts_->AddRecord(coord, 1.0);
        }
      }
    }
  }

  EvaluationRequest MakeRequest() const {
    const QueryClassLattice lat(*schema_);
    EvaluationRequest request{Workload::Uniform(lat)};
    request.measure_storage = true;
    request.facts = facts_;
    request.num_threads = 2;
    return request;
  }

  std::shared_ptr<const StarSchema> schema_;
  std::shared_ptr<FactTable> facts_;
};

TEST_F(InstrumentedAdviseTest, PopulatesMetricsAndTrace) {
  MetricsRegistry metrics;
  Tracer tracer;
  const ClusteringAdvisor advisor(schema_);
  EvaluationRequest request = MakeRequest();
  request.obs = {&metrics, &tracer};
  const auto rec = advisor.Advise(request);
  ASSERT_TRUE(rec.ok()) << rec.status().message();

  const MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.counter("advisor.strategies_evaluated"),
            rec.value().ranked.size());
  EXPECT_EQ(snap.counter("advisor.strategies_planned"),
            rec.value().ranked.size());
  EXPECT_GT(snap.counter("advisor.factories_considered"), 0u);
  EXPECT_GT(snap.counter("dp.cells_relaxed"), 0u);
  EXPECT_GT(snap.gauge("dp.table_bytes"), 0.0);
  EXPECT_GT(snap.counter("cost.cells_scanned"), 0u);
  EXPECT_GT(snap.counter("storage.pages_packed"), 0u);
  EXPECT_GT(snap.counter("storage.pages_read"), 0u);
  EXPECT_GT(snap.counter("storage.seeks"), 0u);
  EXPECT_GT(snap.counter("curves.runs_emitted"), 0u);
  EXPECT_GT(snap.histogram("curves.cells_per_run").count, 0u);
  EXPECT_GT(snap.histogram("storage.run_length_pages").count, 0u);
  EXPECT_EQ(snap.histogram("advisor.queue_wait_ns").count,
            rec.value().ranked.size());
  EXPECT_EQ(snap.histogram("advisor.strategy_compute_ns").count,
            rec.value().ranked.size());

  // The trace nests request -> strategy -> storage spans.
  const std::vector<TraceEvent> events = tracer.events();
  auto has = [&events](std::string_view name, std::string_view cat) {
    return std::any_of(events.begin(), events.end(),
                       [&](const TraceEvent& e) {
                         return e.name == name &&
                                (cat.empty() || e.category == cat);
                       });
  };
  EXPECT_TRUE(has("advisor/plan", "advisor"));
  EXPECT_TRUE(has("advisor/evaluate", "advisor"));
  EXPECT_TRUE(has("dp/kd", ""));
  EXPECT_TRUE(has("dp/snaked", ""));
  EXPECT_TRUE(has("storage/measure_all", "storage"));
  const size_t strategy_spans =
      static_cast<size_t>(std::count_if(events.begin(), events.end(),
                                        [](const TraceEvent& e) {
                                          return e.category == "strategy";
                                        }));
  EXPECT_EQ(strategy_spans, rec.value().ranked.size());
}

TEST_F(InstrumentedAdviseTest, RecommendationIsIdenticalWithAndWithoutObs) {
  const ClusteringAdvisor advisor(schema_);
  const auto plain = advisor.Advise(MakeRequest());
  ASSERT_TRUE(plain.ok());

  MetricsRegistry metrics;
  Tracer tracer;
  EvaluationRequest instrumented = MakeRequest();
  instrumented.obs = {&metrics, &tracer};
  const auto traced = advisor.Advise(instrumented);
  ASSERT_TRUE(traced.ok());

  ASSERT_EQ(plain.value().ranked.size(), traced.value().ranked.size());
  for (size_t i = 0; i < plain.value().ranked.size(); ++i) {
    EXPECT_EQ(plain.value().ranked[i].name, traced.value().ranked[i].name);
    EXPECT_EQ(plain.value().ranked[i].expected_cost,
              traced.value().ranked[i].expected_cost);
  }
  EXPECT_EQ(plain.value().optimal_path_cost, traced.value().optimal_path_cost);
  EXPECT_EQ(plain.value().optimal_snaked_cost,
            traced.value().optimal_snaked_cost);
}

}  // namespace
}  // namespace snakes
