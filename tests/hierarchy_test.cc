#include <gtest/gtest.h>

#include "hierarchy/hierarchy.h"
#include "hierarchy/star_schema.h"

namespace snakes {
namespace {

TEST(HierarchyTest, UniformBasics) {
  // The toy jeans dimension: type(0) -> gender... actually 2 binary levels.
  auto h = Hierarchy::Uniform("jeans", {2, 2}, {"style", "type", "all"});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->name(), "jeans");
  EXPECT_EQ(h->num_levels(), 2);
  EXPECT_EQ(h->num_leaves(), 4u);
  EXPECT_EQ(h->num_blocks(0), 4u);
  EXPECT_EQ(h->num_blocks(1), 2u);
  EXPECT_EQ(h->num_blocks(2), 1u);
  EXPECT_TRUE(h->is_uniform());
  EXPECT_EQ(h->uniform_fanout(1), 2u);
  EXPECT_EQ(h->uniform_fanout(2), 2u);
  EXPECT_DOUBLE_EQ(h->avg_fanout(1), 2.0);
  EXPECT_EQ(h->level_name(0), "style");
  EXPECT_EQ(h->level_name(2), "all");
}

TEST(HierarchyTest, UniformAncestors) {
  auto h = Hierarchy::Uniform("parts", {40, 5}).value();
  EXPECT_EQ(h.num_leaves(), 200u);
  EXPECT_EQ(h.AncestorAt(0, 0), 0u);
  EXPECT_EQ(h.AncestorAt(39, 1), 0u);
  EXPECT_EQ(h.AncestorAt(40, 1), 1u);
  EXPECT_EQ(h.AncestorAt(199, 1), 4u);
  EXPECT_EQ(h.AncestorAt(199, 2), 0u);
  uint64_t first, last;
  h.BlockLeafRange(1, 2, &first, &last);
  EXPECT_EQ(first, 80u);
  EXPECT_EQ(last, 120u);
  EXPECT_EQ(h.BlockLeafCount(1, 2), 40u);
  h.BlockLeafRange(0, 7, &first, &last);
  EXPECT_EQ(first, 7u);
  EXPECT_EQ(last, 8u);
}

TEST(HierarchyTest, TrivialHierarchy) {
  auto h = Hierarchy::Uniform("unit", {}).value();
  EXPECT_EQ(h.num_levels(), 0);
  EXPECT_EQ(h.num_leaves(), 1u);
  EXPECT_EQ(h.AncestorAt(0, 0), 0u);
}

TEST(HierarchyTest, RejectsZeroFanout) {
  EXPECT_FALSE(Hierarchy::Uniform("bad", {4, 0}).ok());
}

TEST(HierarchyTest, RejectsBadLevelNames) {
  EXPECT_FALSE(Hierarchy::Uniform("bad", {4}, {"only-one-name"}).ok());
}

TEST(HierarchyTest, ExplicitVaryingFanouts) {
  // Level 1 has 3 nodes with 2, 3, 1 leaves; level 2 is the root over them.
  auto h = Hierarchy::Explicit("geo", {{2, 3, 1}, {3}}).value();
  EXPECT_FALSE(h.is_uniform());
  EXPECT_EQ(h.num_leaves(), 6u);
  EXPECT_EQ(h.num_blocks(1), 3u);
  EXPECT_DOUBLE_EQ(h.avg_fanout(1), 2.0);
  EXPECT_DOUBLE_EQ(h.avg_fanout(2), 3.0);
  EXPECT_EQ(h.AncestorAt(0, 1), 0u);
  EXPECT_EQ(h.AncestorAt(1, 1), 0u);
  EXPECT_EQ(h.AncestorAt(2, 1), 1u);
  EXPECT_EQ(h.AncestorAt(4, 1), 1u);
  EXPECT_EQ(h.AncestorAt(5, 1), 2u);
  uint64_t first, last;
  h.BlockLeafRange(1, 1, &first, &last);
  EXPECT_EQ(first, 2u);
  EXPECT_EQ(last, 5u);
  EXPECT_EQ(h.BlockLeafCount(1, 2), 1u);
}

TEST(HierarchyTest, ExplicitDetectsUniform) {
  auto h = Hierarchy::Explicit("u", {{2, 2}, {2}}).value();
  EXPECT_TRUE(h.is_uniform());
  EXPECT_EQ(h.num_leaves(), 4u);
}

TEST(HierarchyTest, ExplicitRejectsNonTelescoping) {
  EXPECT_FALSE(Hierarchy::Explicit("bad", {{2, 2}, {3}}).ok());
  EXPECT_FALSE(Hierarchy::Explicit("bad", {{2, 2, 2}, {2}}).ok());
  EXPECT_FALSE(Hierarchy::Explicit("bad", {{2, 0}, {2}}).ok());
}

TEST(HierarchyTest, FromTreeBalancedInput) {
  HierarchyNode root{"all",
                     {{"m1", {{"p1", {}}, {"p2", {}}}},
                      {"m2", {{"p3", {}}, {"p4", {}}}}}};
  auto h = Hierarchy::FromTree("parts", root).value();
  EXPECT_EQ(h.num_levels(), 2);
  EXPECT_EQ(h.num_leaves(), 4u);
  EXPECT_TRUE(h.is_uniform());
}

TEST(HierarchyTest, FromTreeBalancesUnbalancedLeaves) {
  // One branch is one level shallower; Section 4.1 splices dummy nodes.
  HierarchyNode root{"all",
                     {{"deep", {{"d1", {{"x", {}}, {"y", {}}}}}},
                      {"shallow", {}}}};
  auto h = Hierarchy::FromTree("geo", root).value();
  EXPECT_EQ(h.num_levels(), 3);
  // Leaves: x, y (under deep/d1) and the lifted shallow leaf.
  EXPECT_EQ(h.num_leaves(), 3u);
  EXPECT_FALSE(h.is_uniform());
  // The shallow chain has fanout 1 at each dummy level.
  EXPECT_EQ(h.AncestorAt(2, 1), 1u);
  EXPECT_EQ(h.AncestorAt(2, 2), 1u);
  EXPECT_EQ(h.AncestorAt(2, 3), 0u);
  // Average fanouts may be fractional after balancing.
  EXPECT_DOUBLE_EQ(h.avg_fanout(3), 2.0);
  EXPECT_DOUBLE_EQ(h.avg_fanout(1), 3.0 / 2.0);
}

TEST(HierarchyTest, FromTreeSingleLeaf) {
  HierarchyNode root{"only", {}};
  auto h = Hierarchy::FromTree("unit", root).value();
  EXPECT_EQ(h.num_levels(), 0);
  EXPECT_EQ(h.num_leaves(), 1u);
}

TEST(HierarchyTest, FromTreeDepthOneIsUniform) {
  // A root with only leaf children needs no balancing at all.
  HierarchyNode root{"all", {{"a", {}}, {"b", {}}, {"c", {}}}};
  auto h = Hierarchy::FromTree("flat", root).value();
  EXPECT_EQ(h.num_levels(), 1);
  EXPECT_EQ(h.num_leaves(), 3u);
  EXPECT_TRUE(h.is_uniform());
  EXPECT_DOUBLE_EQ(h.avg_fanout(1), 3.0);
  for (uint64_t leaf = 0; leaf < 3; ++leaf) {
    EXPECT_EQ(h.AncestorAt(leaf, 0), leaf);
    EXPECT_EQ(h.AncestorAt(leaf, 1), 0u);
  }
  uint64_t first = 0;
  uint64_t last = 0;
  h.BlockLeafRange(1, 0, &first, &last);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, 3u);
}

TEST(HierarchyTest, SingleLeafDimensionComposesIntoSchemas) {
  // A degenerate one-member dimension must not perturb the grid.
  auto unit = Hierarchy::FromTree("unit", HierarchyNode{"only", {}}).value();
  auto other = Hierarchy::Uniform("other", {2, 3}).value();
  auto schema = StarSchema::Make("mixed", {unit, other}).value();
  EXPECT_EQ(schema.num_cells(), other.num_leaves());
  for (uint64_t c = 0; c < schema.num_cells(); ++c) {
    const CellCoord coord = schema.Unflatten(c);
    EXPECT_EQ(coord[0], 0u);
    EXPECT_EQ(schema.Flatten(coord), c);
  }
}

TEST(HierarchyTest, FromTreeMixedDepthAncestorMaps) {
  // Leaves at depths 1, 2 and 3 of the same tree: x | y1 | y2a, y2b.
  HierarchyNode root{
      "all",
      {{"x", {}},
       {"y", {{"y1", {}}, {"y2", {{"y2a", {}}, {"y2b", {}}}}}}}};
  auto h = Hierarchy::FromTree("mixed", root).value();
  ASSERT_EQ(h.num_levels(), 3);
  ASSERT_EQ(h.num_leaves(), 4u);
  EXPECT_FALSE(h.is_uniform());

  // Level 1 blocks: {x}, {y1}, {y2a, y2b}; level 2: {x}, {y1, y2a, y2b}.
  EXPECT_EQ(h.num_blocks(1), 3u);
  EXPECT_EQ(h.num_blocks(2), 2u);
  const uint64_t want_l1[] = {0, 1, 2, 2};
  const uint64_t want_l2[] = {0, 1, 1, 1};
  for (uint64_t leaf = 0; leaf < 4; ++leaf) {
    EXPECT_EQ(h.AncestorAt(leaf, 1), want_l1[leaf]) << "leaf " << leaf;
    EXPECT_EQ(h.AncestorAt(leaf, 2), want_l2[leaf]) << "leaf " << leaf;
    EXPECT_EQ(h.AncestorAt(leaf, 3), 0u) << "leaf " << leaf;
  }

  // Dummy balancing makes the per-level average fanouts fractional, but
  // they still telescope to the leaf count.
  EXPECT_DOUBLE_EQ(h.avg_fanout(1), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.avg_fanout(2), 3.0 / 2.0);
  EXPECT_DOUBLE_EQ(h.avg_fanout(3), 2.0);
  double product = 1.0;
  for (int l = 1; l <= h.num_levels(); ++l) product *= h.avg_fanout(l);
  EXPECT_DOUBLE_EQ(product, 4.0);

  // Block/leaf bookkeeping stays consistent on unbalanced hierarchies:
  // blocks partition the leaves and agree with the ancestor map.
  for (int level = 0; level <= h.num_levels(); ++level) {
    uint64_t covered = 0;
    for (uint64_t b = 0; b < h.num_blocks(level); ++b) {
      uint64_t first = 0;
      uint64_t last = 0;
      h.BlockLeafRange(level, b, &first, &last);
      EXPECT_EQ(first, covered) << "level " << level << " block " << b;
      EXPECT_EQ(last - first, h.BlockLeafCount(level, b));
      for (uint64_t leaf = first; leaf < last; ++leaf) {
        EXPECT_EQ(h.AncestorAt(leaf, level), b);
      }
      covered = last;
    }
    EXPECT_EQ(covered, h.num_leaves()) << "level " << level;
  }
}

TEST(StarSchemaTest, ToySchemaShape) {
  auto jeans = Hierarchy::Uniform("jeans", {2, 2}).value();
  auto location = Hierarchy::Uniform("location", {2, 2}).value();
  auto schema = StarSchema::Make("sales", {jeans, location}).value();
  EXPECT_EQ(schema.num_dims(), 2);
  EXPECT_EQ(schema.num_cells(), 16u);
  EXPECT_EQ(schema.extent(0), 4u);
  EXPECT_EQ(schema.total_levels(), 4);
  EXPECT_EQ(schema.lattice_size(), 9u);
}

TEST(StarSchemaTest, FlattenUnflattenRoundTrip) {
  auto schema = StarSchema::Symmetric(3, 2, 2).value();
  for (CellId id = 0; id < schema.num_cells(); ++id) {
    EXPECT_EQ(schema.Flatten(schema.Unflatten(id)), id);
  }
}

TEST(StarSchemaTest, FlattenLastDimensionFastest) {
  auto a = Hierarchy::Uniform("a", {3}).value();
  auto b = Hierarchy::Uniform("b", {5}).value();
  auto schema = StarSchema::Make("s", {a, b}).value();
  CellCoord coord;
  coord.resize(2);
  coord[0] = 1;
  coord[1] = 2;
  EXPECT_EQ(schema.Flatten(coord), 1u * 5 + 2);
}

TEST(StarSchemaTest, SymmetricMatchesPaperToyGrid) {
  auto schema = StarSchema::Symmetric(2, 2, 2).value();
  EXPECT_EQ(schema.num_cells(), 16u);
  EXPECT_EQ(schema.dim(0).name(), "A");
  EXPECT_EQ(schema.dim(1).name(), "B");
}

TEST(StarSchemaTest, RejectsEmptyAndOversized) {
  EXPECT_FALSE(StarSchema::Make("empty", {}).ok());
  std::vector<Hierarchy> many;
  for (int i = 0; i < kMaxDimensions + 1; ++i) {
    many.push_back(Hierarchy::Uniform("d" + std::to_string(i), {2}).value());
  }
  EXPECT_FALSE(StarSchema::Make("too-many", std::move(many)).ok());
}

}  // namespace
}  // namespace snakes
